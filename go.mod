module kstm

go 1.24
