// Package server is the kstmd network front-end: it exposes a running
// kstm.Executor over TCP (or any net.Listener) speaking the internal/wire
// protocol. One goroutine per connection reads request frames, submits them
// to the executor, and a per-connection writer streams responses back — out
// of order, as tasks complete, so a pipelining client is never head-of-line
// blocked on a slow transaction.
//
// Error mapping (see DESIGN.md "Network front-end" for the full table):
//
//   - reject-mode backpressure (kstm.ErrQueueFull)   → StatusBusy
//   - connection drop / per-connection cancellation  → StatusCancelled
//     (the executor abandons queued tasks; ExecStats.Cancelled counts them)
//   - executor draining or stopped                   → StatusStopped
//   - opcode above the configured maximum            → StatusBadRequest
//   - workload hard error                            → StatusError + message
//
// Lifecycle: Serve accepts until its context is cancelled or Close is
// called. A graceful shutdown (cmd/kstmd on SIGTERM) first drains the
// executor — in-flight transactions finish, new requests answer
// StatusStopped — then closes the listener and connections.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kstm"
	"kstm/internal/wire"
)

// Stats are the server's own counters, one step above ExecStats: what came
// in over the network and how it was answered.
//
// The statsfold contract (kstmvet, DESIGN.md §8): every field must be
// folded by Stats() below and surfaced on the kstmd operator stats line —
// a counter that is incremented but never reported is a bug.
//
//kstmvet:statsfold Server.Stats kstm/cmd/kstmd.logStats
type Stats struct {
	// Conns counts connections accepted; OpenConns is the current number.
	Conns, OpenConns uint64
	// Requests counts request frames decoded.
	Requests uint64
	// Responses counts response frames written (all statuses).
	Responses uint64
	// Busy / Stopped / BadRequest / Failed count non-OK responses by
	// status. Cancelled counts tasks abandoned by per-connection
	// cancellation; delivery of their StatusCancelled frames is
	// best-effort, since the cancelling event is usually the connection's
	// own death.
	Busy, Cancelled, Stopped, BadRequest, Failed uint64
	// Deadline counts tasks shed with StatusDeadline: their wire deadline
	// expired while they sat queued and the executor never ran them
	// (ExecStats.DeadlineExpired is the executor-side view).
	Deadline uint64
	// Admitted and AdmitRejected count requests through the per-connection
	// token-bucket admission layer (WithAdmission): rejected requests
	// answer StatusBusy with a retry-after hint BEFORE touching the
	// executor, ahead of queue backpressure. Both stay zero with admission
	// off.
	Admitted, AdmitRejected uint64
	// ProtocolErrors counts connections dropped for undecodable input.
	ProtocolErrors uint64
	// Migrations mirrors the executor's shard-state hand-off counters
	// (ExecStats.Migrations), so an operator reading the server's stats
	// line sees re-partition hand-offs without a second probe; all zero
	// unless the executor runs WithMigration(MigrateOnRepartition).
	Migrations kstm.MigrationStats
	// Split mirrors the executor's split-phase counters (ExecStats.Split)
	// for the same reason; all zero unless the executor runs WithSplitPhase.
	Split kstm.SplitStats
}

// Option configures a Server.
type Option func(*Server)

// WithMaxOp rejects requests whose opcode exceeds op with StatusBadRequest
// before they reach the executor. The default (255) passes every opcode
// through to the workload.
func WithMaxOp(op uint8) Option { return func(s *Server) { s.maxOp = op } }

// WithKeyMask folds every request's 64-bit scheduling key into the
// executor's key space (task.Key = req.Key & mask). Without it a key above
// the scheduler's range clamps onto one worker — a client using natural
// 64-bit keys would silently serialize the whole executor. Zero (the
// default) passes keys through untouched.
func WithKeyMask(mask uint64) Option { return func(s *Server) { s.keyMask = mask } }

// WithMaxArg rejects requests whose dictionary argument exceeds max with
// StatusBadRequest. A migrating executor needs it: hand-off ranges live in
// the masked dispatch-key space, so an Arg outside that space would be
// dispatched by its masked key but never matched by a dictionary-key
// extraction — stranded in its old shard across re-partitions. Bounding
// Arg to the dispatch space (kstmd -migrate uses kstm.MaxKey) keeps the
// read-your-writes guarantee airtight. Zero (the default) accepts any Arg.
func WithMaxArg(max uint32) Option { return func(s *Server) { s.maxArg = max } }

// WithLogger sets the connection-error logger (default log.Default; use a
// discarding logger in tests).
func WithLogger(l *log.Logger) Option { return func(s *Server) { s.log = l } }

// WithAdmission enables per-connection token-bucket admission control: each
// connection may submit at most rate requests/second with bursts up to
// burst, and requests over budget answer StatusBusy immediately — with the
// time until the next token in the response's WaitNS as a retry-after hint —
// WITHOUT touching the executor. Admission runs ahead of queue backpressure
// (DESIGN.md §10.2): backpressure protects the executor from accepted work,
// admission protects the executor from ever seeing an abusive client's
// excess. rate <= 0 disables it (the default); burst < 1 is raised to 1.
func WithAdmission(rate float64, burst int) Option {
	return func(s *Server) {
		s.admitRate = rate
		s.admitBurst = max(burst, 1)
	}
}

// WithConnWrapper interposes w on every accepted connection before the
// server reads from it — the hook the internal/fault injector uses to
// corrupt transport behaviour in chaos tests. Production servers leave it
// nil.
func WithConnWrapper(w func(net.Conn) net.Conn) Option {
	return func(s *Server) { s.wrapConn = w }
}

// Server serves one executor over any number of listeners.
type Server struct {
	ex         *kstm.Executor
	maxOp      uint8
	maxArg     uint32
	keyMask    uint64
	admitRate  float64
	admitBurst int
	wrapConn   func(net.Conn) net.Conn
	log        *log.Logger

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	connCtx   context.Context
	connStop  context.CancelFunc
	conns     sync.WaitGroup
	closed    atomic.Bool

	nConns, nOpen, nReq, nResp                 atomic.Uint64
	nBusy, nCancel, nStopped, nBadReq, nFailed atomic.Uint64
	nDeadline, nAdmit, nAdmitRej               atomic.Uint64
	nProtoErr                                  atomic.Uint64
}

// New wraps a (started) executor. The server does not own the executor's
// lifecycle: callers Start it before serving and Drain/Stop it on shutdown.
func New(ex *kstm.Executor, opts ...Option) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		ex:        ex,
		maxOp:     255,
		log:       log.Default(),
		listeners: make(map[net.Listener]struct{}),
		connCtx:   ctx,
		connStop:  cancel,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve accepts connections on ln until ctx is cancelled, Close is called,
// or the listener fails. It always closes ln before returning and returns
// nil on clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Register under the same lock Close uses to sweep listeners, and
	// re-check closed inside it: a Close racing this call either sees the
	// registration and closes ln, or we see closed and bail — either way
	// no listener survives a completed Close.
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		// Register under the sweep lock: either Close observes this
		// handler in conns.Wait, or we observe closed and refuse the
		// connection — Close never returns with a handler it can't see.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.nConns.Add(1)
		s.nOpen.Add(1)
		s.conns.Add(1)
		s.mu.Unlock()
		if s.wrapConn != nil {
			conn = s.wrapConn(conn)
		}
		go func() {
			defer s.conns.Done()
			defer s.nOpen.Add(^uint64(0))
			s.handle(conn)
		}()
	}
}

// Close stops accepting, severs every connection (their queued tasks settle
// as cancelled), and waits for the handlers to exit. For a graceful
// shutdown, Drain the executor first. Safe to call more than once.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// closed is set before taking mu, so a Serve call that wins the lock
	// first still observes it and unregisters itself.
	s.mu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
	s.connStop()
	s.conns.Wait()
	return nil
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:          s.nConns.Load(),
		OpenConns:      s.nOpen.Load(),
		Requests:       s.nReq.Load(),
		Responses:      s.nResp.Load(),
		Busy:           s.nBusy.Load(),
		Cancelled:      s.nCancel.Load(),
		Stopped:        s.nStopped.Load(),
		BadRequest:     s.nBadReq.Load(),
		Failed:         s.nFailed.Load(),
		Deadline:       s.nDeadline.Load(),
		Admitted:       s.nAdmit.Load(),
		AdmitRejected:  s.nAdmitRej.Load(),
		ProtocolErrors: s.nProtoErr.Load(),
		Migrations:     s.ex.MigrationStats(),
		Split:          s.ex.SplitStats(),
	}
}

// connState bundles one connection's buffers — the inflight slot semaphore,
// the response queue, both bufio halves, and the encode/decode scratch —
// so steady-state connection churn recycles them through connPool instead
// of growing per-conn garbage (the semaphore alone is a 1 KiB channel, the
// bufio pair 64 KiB).
type connState struct {
	inflight chan struct{}
	out      *outQueue
	br       *bufio.Reader
	bw       *bufio.Writer
	scratch  []byte          // frame-decode buffer (read loop)
	encBuf   []byte          // frame-encode buffer (writer)
	batch    []wire.Response // writer's take() swap buffer
}

var connPool = sync.Pool{New: func() any {
	return &connState{
		inflight: make(chan struct{}, maxInflightPerConn),
		out:      newOutQueue(),
		br:       bufio.NewReaderSize(nil, 32*1024),
		bw:       bufio.NewWriterSize(nil, 32*1024),
		scratch:  make([]byte, 256),
		encBuf:   make([]byte, 0, 4096),
	}
}}

// recycle returns a quiesced connState to the pool. The caller must have
// proven no task callback can still touch it — see handle's slot-accounting
// argument.
func (cs *connState) recycle() {
	cs.out.reset()
	for i := range cs.batch {
		cs.batch[i] = wire.Response{} // don't pin response values across conns
	}
	cs.batch = cs.batch[:0]
	connPool.Put(cs)
}

// handle runs one connection with exactly TWO goroutines regardless of
// pipelining depth: this read loop, which decodes requests and submits them
// through the executor's callback API (SubmitFunc — no Future, no bridge
// goroutine per request), and a writer draining the connection's response
// queue. Task completions run a small callback on the settling worker that
// parks the response on the queue and returns.
func (s *Server) handle(conn net.Conn) {
	// The connection context cancels when the read loop exits (drop, EOF,
	// protocol error) or the server closes: tasks this connection queued
	// are then abandoned by their workers before execution — the
	// cancelled-task semantics ExecStats.Cancelled accounts for.
	ctx, cancel := context.WithCancel(s.connCtx)
	defer cancel()
	// Context cancellation must also unblock the read loop, which parks in
	// conn.Read: without this, Server.Close would wait forever on a
	// connection whose peer stays silent.
	unblock := context.AfterFunc(ctx, func() { conn.Close() })
	defer unblock()

	// Every request holds one slot from decode until its response clears
	// the writer (written, or discarded on a dead connection). A client
	// that pipelines but never reads fills the writer's queue up to this
	// bound, then the read loop blocks here and TCP backpressure reaches
	// the sender — the buffer cannot grow without limit.
	cs := connPool.Get().(*connState)
	inflight := cs.inflight
	out := cs.out
	// batchOK flips once the peer sends a batch frame: only then may the
	// writer coalesce responses into TypeBatchResponse frames (older
	// clients would drop the connection on an unknown frame type).
	var batchOK atomic.Bool
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.writeLoop(conn, cs, &batchOK, cancel)
	}()

	// Admission bucket: single-owner (only this read loop touches it), so
	// it needs no lock. One bucket per connection — "per client" at the
	// granularity the server can attribute.
	var admit *tokenBucket
	if s.admitRate > 0 {
		admit = newTokenBucket(s.admitRate, s.admitBurst)
	}

	cs.br.Reset(conn)
readLoop:
	for {
		frame, err := wire.ReadFrame(cs.br, &cs.scratch)
		if err != nil {
			// Only undecodable CONTENT is a protocol error. A clean EOF,
			// a local cancellation, or a mid-frame disconnect
			// (ErrTruncated wraps the io error: peer crashed, reset, or
			// vanished) is ordinary connection churn — a busy server must
			// not count or log every dead client as hostile input.
			if err != io.EOF && ctx.Err() == nil &&
				!errors.Is(err, net.ErrClosed) && !errors.Is(err, wire.ErrTruncated) {
				s.nProtoErr.Add(1)
				s.log.Printf("server: %s: dropping connection: %v", conn.RemoteAddr(), err)
			}
			break
		}
		switch frame.Type {
		case wire.TypeRequest, wire.TypeRequestDeadline:
			if !s.serveReq(ctx, out, inflight, admit, frame.Req) {
				break readLoop
			}
		case wire.TypeBatchRequest, wire.TypeBatchRequestDeadline:
			batchOK.Store(true)
			for _, req := range frame.Reqs {
				if !s.serveReq(ctx, out, inflight, admit, req) {
					break readLoop
				}
			}
		default:
			s.nProtoErr.Add(1)
			s.log.Printf("server: %s: unexpected frame type %d", conn.RemoteAddr(), frame.Type)
			break readLoop
		}
	}
	// Read side done: cancel queued work and retire the connection without
	// waiting for stragglers — a wedged executor must not pin dead
	// connections (Drain relies on their cancellation propagating). Tasks
	// still in flight settle later on their workers: their callbacks see
	// the dead context, record the fate in the stats, and release their
	// slots; a push that races the writer's exit parks harmlessly on the
	// orphaned queue until both are collected.
	cancel()
	out.close()
	writerWG.Wait()
	conn.Close()
	// Recycle only when every slot has been released. A slot is held from
	// decode until its task's LAST touch of this connState — the writer
	// releases after writing (post-Wait, the writer is gone), and a
	// dead-connection callback's own release is its final statement — so an
	// empty semaphore proves no straggler can still reach out or inflight.
	// Otherwise the state leaks to the GC, exactly the pre-pool behavior.
	if len(cs.inflight) == 0 {
		cs.recycle()
	}
}

// maxInflightPerConn bounds one connection's outstanding requests (slots
// held from decode to response write); past it the read loop stops decoding
// and TCP backpressure reaches the client.
const maxInflightPerConn = 1024

// serveReq validates and submits one request, enqueueing the response (or
// arranging the completion callback to). It returns false only when the
// connection is being torn down.
func (s *Server) serveReq(ctx context.Context, out *outQueue, inflight chan struct{}, admit *tokenBucket, req wire.Request) bool {
	s.nReq.Add(1)
	select {
	case inflight <- struct{}{}:
	case <-ctx.Done():
		return false
	}
	// Admission runs ahead of everything the executor would charge for:
	// an over-budget client is answered from the read loop — StatusBusy
	// with the time to the next token in WaitNS as a retry-after hint —
	// and its request never contends for a queue slot.
	if admit != nil {
		if retryAfter, ok := admit.take(); !ok {
			s.nAdmitRej.Add(1)
			out.push(wire.Response{
				ID: req.ID, Status: wire.StatusBusy,
				WaitNS: uint64(retryAfter),
				Msg:    "admission rate exceeded",
			})
			return true
		}
		s.nAdmit.Add(1)
	}
	if req.Op > s.maxOp {
		s.nBadReq.Add(1)
		out.push(wire.Response{
			ID: req.ID, Status: wire.StatusBadRequest,
			Msg: fmt.Sprintf("opcode %d above maximum %d", req.Op, s.maxOp),
		})
		return true
	}
	if s.maxArg != 0 && req.Arg > s.maxArg {
		s.nBadReq.Add(1)
		out.push(wire.Response{
			ID: req.ID, Status: wire.StatusBadRequest,
			Msg: fmt.Sprintf("argument %d above maximum %d", req.Arg, s.maxArg),
		})
		return true
	}
	key := req.Key
	if s.keyMask != 0 {
		key &= s.keyMask
	}
	task := kstm.Task{Key: key, Op: kstm.Op(req.Op), Arg: req.Arg}
	id := req.ID
	done := func(res kstm.TaskResult) {
		// Runs on the settling worker: park the response and return. On a
		// dead connection there is no one left to tell — classify the
		// task's true fate for the stats (mirroring the executor's own
		// Completed/Cancelled split) and release the slot directly.
		if ctx.Err() != nil {
			switch {
			case errors.Is(res.Err, kstm.ErrStopped):
				s.nStopped.Add(1)
			case errors.Is(res.Err, kstm.ErrDeadlineExpired):
				s.nDeadline.Add(1)
			case errors.Is(res.Err, context.Canceled), errors.Is(res.Err, context.DeadlineExceeded):
				s.nCancel.Add(1)
			}
			<-inflight
			return
		}
		out.push(s.taskResponse(id, res, res.Err))
	}
	var err error
	if req.DeadlineNS != 0 {
		// The wire deadline is RELATIVE to receipt; the executor sheds the
		// task with ErrDeadlineExpired if it is still queued past it.
		err = s.ex.SubmitFuncTimed(ctx, task, time.Duration(req.DeadlineNS), done)
	} else {
		err = s.ex.SubmitFunc(ctx, task, done)
	}
	if err != nil {
		out.push(s.submitError(id, err))
	}
	return true
}

// tokenBucket is serveReq's per-connection admission meter, in the virtual-
// scheduling (GCRA) formulation: integer-nanos state owned by one read loop
// (no locking), two comparisons and a clock read per request.
type tokenBucket struct {
	interval time.Duration // ns per token (1e9 / rate)
	tau      time.Duration // burst tolerance: (burst-1) * interval
	tat      time.Duration // theoretical arrival time of the next request
	start    time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	iv := time.Duration(float64(time.Second) / rate)
	if iv <= 0 {
		iv = 1
	}
	return &tokenBucket{
		interval: iv,
		tau:      time.Duration(burst-1) * iv,
		start:    time.Now(),
	}
}

// take spends one token. When the bucket is empty it reports ok=false and
// how long until the next request would conform — the retry-after hint.
func (b *tokenBucket) take() (retryAfter time.Duration, ok bool) {
	now := time.Since(b.start)
	tat := max(b.tat, now)
	if tat > now+b.tau {
		return tat - now - b.tau, false
	}
	b.tat = tat + b.interval
	return 0, true
}

// outQueue is one connection's response buffer between task callbacks (any
// worker goroutine) and the connection's writer. push never blocks — the
// bound comes from the inflight slot semaphore, not from here — so a slow
// client can never stall an executor worker.
type outQueue struct {
	mu     sync.Mutex
	buf    []wire.Response
	closed bool
	notify chan struct{} // cap 1: wake the writer, coalescing signals
}

func newOutQueue() *outQueue {
	return &outQueue{notify: make(chan struct{}, 1)}
}

// push parks one response for the writer.
func (q *outQueue) push(resp wire.Response) {
	q.mu.Lock()
	q.buf = append(q.buf, resp)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// reset readies a quiesced queue for the next connection: clear the closed
// mark, drop buffered (never-taken) responses, and drain a stale notify
// token so the next writer does not wake spuriously.
func (q *outQueue) reset() {
	q.mu.Lock()
	q.closed = false
	q.buf = q.buf[:0]
	q.mu.Unlock()
	select {
	case <-q.notify:
	default:
	}
}

// close marks the end of traffic; the writer drains what is buffered and
// exits. Callbacks MAY still push afterwards (the handler closes without
// waiting for in-flight tasks to settle): such pushes land on the orphaned
// buffer, are never taken, and are collected with it — push and take must
// stay safe against that race.
func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// take blocks until responses are buffered (swapping them into into) or the
// queue is closed and empty.
func (q *outQueue) take(into []wire.Response) ([]wire.Response, bool) {
	for {
		q.mu.Lock()
		if len(q.buf) > 0 {
			into = append(into[:0], q.buf...)
			q.buf = q.buf[:0]
			q.mu.Unlock()
			return into, false
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return into[:0], true
		}
		<-q.notify
	}
}

// writeLoop serializes responses onto the socket, batching what the queue
// delivers together: to a batch-speaking peer, a burst of n responses goes
// out as TypeBatchResponse frames (count-prefixed, split at the frame
// bound); otherwise as n single frames in one buffered write. One flush per
// burst either way. A write failure cancels the connection (the read loop
// and pending callbacks then unwind) and the loop keeps draining — slots
// must keep flowing back so the handler's semaphore reclaim terminates.
func (s *Server) writeLoop(conn net.Conn, cs *connState, batchOK *atomic.Bool, cancel context.CancelFunc) {
	out, inflight := cs.out, cs.inflight
	bw := cs.bw
	bw.Reset(conn)
	buf := cs.encBuf
	batch := cs.batch
	defer func() {
		// Hand the (possibly grown) scratch buffers back for reuse by the
		// next connection this state serves.
		cs.encBuf, cs.batch = buf, batch
	}()
	dead := false
	for {
		var closed bool
		batch, closed = out.take(batch)
		if closed {
			if !dead {
				bw.Flush()
			}
			return
		}
		if !dead {
			var werr error
			if batchOK.Load() && len(batch) > 1 {
				buf, werr = s.writeBatched(bw, buf, batch)
			} else {
				buf, werr = s.writeSingles(bw, buf, batch)
			}
			if werr == nil {
				werr = bw.Flush()
			}
			if werr != nil {
				// Socket gone: tear the connection down but keep
				// consuming (and releasing slots) until the handler
				// closes the queue.
				cancel()
				dead = true
			}
		}
		for range batch {
			<-inflight
		}
	}
}

// sanitize replaces a response whose task value is outside the wire
// vocabulary with a per-request error — the request was fine, the workload's
// value type is not encodable; the connection stays up.
func (s *Server) sanitize(resp wire.Response) wire.Response {
	if err := wire.CheckValue(resp.Value); err != nil {
		s.nFailed.Add(1)
		return wire.Response{
			ID: resp.ID, Status: wire.StatusError,
			Msg: fmt.Sprintf("unencodable task value: %v", err),
		}
	}
	return resp
}

// writeSingles writes one TypeResponse frame per response. It returns the
// (possibly grown) encode buffer so the writer's scratch is reused across
// bursts instead of re-allocated per burst.
func (s *Server) writeSingles(bw *bufio.Writer, buf []byte, batch []wire.Response) ([]byte, error) {
	for _, resp := range batch {
		resp = s.sanitize(resp)
		b, err := wire.AppendResponse(buf[:0], resp)
		if err != nil {
			// Sanitized responses encode; a failure here is a bug, but
			// answer the request rather than wedge the connection.
			b, _ = wire.AppendResponse(buf[:0], wire.Response{
				ID: resp.ID, Status: wire.StatusError, Msg: "encode error",
			})
		}
		buf = b
		if _, werr := bw.Write(b); werr != nil {
			return buf, werr
		}
		s.nResp.Add(1)
	}
	return buf, nil
}

// writeBatched packs a burst into TypeBatchResponse frames, splitting at the
// frame bound; a response too large even alone falls back to a single frame
// (AppendResponse truncates oversized messages). Like writeSingles it
// returns the grown encode buffer for reuse.
func (s *Server) writeBatched(bw *bufio.Writer, buf []byte, batch []wire.Response) ([]byte, error) {
	for i := range batch {
		batch[i] = s.sanitize(batch[i])
	}
	for len(batch) > 0 {
		if len(batch) == 1 {
			return s.writeSingles(bw, buf, batch)
		}
		b, n, err := wire.AppendBatchResponses(buf[:0], batch)
		if err != nil {
			// First response alone overflows a batch frame: send it as a
			// single (truncating) frame and continue with the rest.
			if buf, err = s.writeSingles(bw, buf, batch[:1]); err != nil {
				return buf, err
			}
			batch = batch[1:]
			continue
		}
		buf = b
		if _, werr := bw.Write(b); werr != nil {
			return buf, werr
		}
		s.nResp.Add(uint64(n))
		batch = batch[n:]
	}
	return buf, nil
}

// submitError maps a SubmitAsync error to a response.
func (s *Server) submitError(id uint64, err error) wire.Response {
	switch {
	case errors.Is(err, kstm.ErrQueueFull):
		s.nBusy.Add(1)
		return wire.Response{ID: id, Status: wire.StatusBusy, Msg: "server busy"}
	case errors.Is(err, kstm.ErrNotRunning), errors.Is(err, kstm.ErrStopped):
		s.nStopped.Add(1)
		return wire.Response{ID: id, Status: wire.StatusStopped, Msg: "server stopping"}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.nCancel.Add(1)
		return wire.Response{ID: id, Status: wire.StatusCancelled, Msg: err.Error()}
	default:
		s.nFailed.Add(1)
		return wire.Response{ID: id, Status: wire.StatusError, Msg: err.Error()}
	}
}

// taskResponse maps a completed (or abandoned) task to a response.
func (s *Server) taskResponse(id uint64, res kstm.TaskResult, err error) wire.Response {
	resp := wire.Response{
		ID:     id,
		WaitNS: uint64(max(res.Wait, 0)),
		ExecNS: uint64(max(res.Exec, 0)),
	}
	switch {
	case err == nil:
		resp.Status = wire.StatusOK
		resp.Value = res.Value
	case errors.Is(err, kstm.ErrStopped):
		s.nStopped.Add(1)
		resp.Status = wire.StatusStopped
		resp.Msg = "server stopping"
	case errors.Is(err, kstm.ErrDeadlineExpired):
		// The request's wire deadline expired in queue; the executor shed
		// it without executing (DESIGN.md §10.1).
		s.nDeadline.Add(1)
		resp.Status = wire.StatusDeadline
		resp.Msg = "deadline expired in queue"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Abandoned before execution under the corrected cancellation
		// accounting: the task never ran.
		s.nCancel.Add(1)
		resp.Status = wire.StatusCancelled
		resp.Msg = err.Error()
	default:
		s.nFailed.Add(1)
		resp.Status = wire.StatusError
		resp.Msg = err.Error()
	}
	return resp
}
