// Package server is the kstmd network front-end: it exposes a running
// kstm.Executor over TCP (or any net.Listener) speaking the internal/wire
// protocol. One goroutine per connection reads request frames, submits them
// to the executor, and a per-connection writer streams responses back — out
// of order, as tasks complete, so a pipelining client is never head-of-line
// blocked on a slow transaction.
//
// Error mapping (see DESIGN.md "Network front-end" for the full table):
//
//   - reject-mode backpressure (kstm.ErrQueueFull)   → StatusBusy
//   - connection drop / per-connection cancellation  → StatusCancelled
//     (the executor abandons queued tasks; ExecStats.Cancelled counts them)
//   - executor draining or stopped                   → StatusStopped
//   - opcode above the configured maximum            → StatusBadRequest
//   - workload hard error                            → StatusError + message
//
// Lifecycle: Serve accepts until its context is cancelled or Close is
// called. A graceful shutdown (cmd/kstmd on SIGTERM) first drains the
// executor — in-flight transactions finish, new requests answer
// StatusStopped — then closes the listener and connections.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"kstm"
	"kstm/internal/wire"
)

// Stats are the server's own counters, one step above ExecStats: what came
// in over the network and how it was answered.
type Stats struct {
	// Conns counts connections accepted; OpenConns is the current number.
	Conns, OpenConns uint64
	// Requests counts request frames decoded.
	Requests uint64
	// Responses counts response frames written (all statuses).
	Responses uint64
	// Busy / Stopped / BadRequest / Failed count non-OK responses by
	// status. Cancelled counts tasks abandoned by per-connection
	// cancellation; delivery of their StatusCancelled frames is
	// best-effort, since the cancelling event is usually the connection's
	// own death.
	Busy, Cancelled, Stopped, BadRequest, Failed uint64
	// ProtocolErrors counts connections dropped for undecodable input.
	ProtocolErrors uint64
	// Migrations mirrors the executor's shard-state hand-off counters
	// (ExecStats.Migrations), so an operator reading the server's stats
	// line sees re-partition hand-offs without a second probe; all zero
	// unless the executor runs WithMigration(MigrateOnRepartition).
	Migrations kstm.MigrationStats
}

// Option configures a Server.
type Option func(*Server)

// WithMaxOp rejects requests whose opcode exceeds op with StatusBadRequest
// before they reach the executor. The default (255) passes every opcode
// through to the workload.
func WithMaxOp(op uint8) Option { return func(s *Server) { s.maxOp = op } }

// WithKeyMask folds every request's 64-bit scheduling key into the
// executor's key space (task.Key = req.Key & mask). Without it a key above
// the scheduler's range clamps onto one worker — a client using natural
// 64-bit keys would silently serialize the whole executor. Zero (the
// default) passes keys through untouched.
func WithKeyMask(mask uint64) Option { return func(s *Server) { s.keyMask = mask } }

// WithMaxArg rejects requests whose dictionary argument exceeds max with
// StatusBadRequest. A migrating executor needs it: hand-off ranges live in
// the masked dispatch-key space, so an Arg outside that space would be
// dispatched by its masked key but never matched by a dictionary-key
// extraction — stranded in its old shard across re-partitions. Bounding
// Arg to the dispatch space (kstmd -migrate uses kstm.MaxKey) keeps the
// read-your-writes guarantee airtight. Zero (the default) accepts any Arg.
func WithMaxArg(max uint32) Option { return func(s *Server) { s.maxArg = max } }

// WithLogger sets the connection-error logger (default log.Default; use a
// discarding logger in tests).
func WithLogger(l *log.Logger) Option { return func(s *Server) { s.log = l } }

// Server serves one executor over any number of listeners.
type Server struct {
	ex      *kstm.Executor
	maxOp   uint8
	maxArg  uint32
	keyMask uint64
	log     *log.Logger

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	connCtx   context.Context
	connStop  context.CancelFunc
	conns     sync.WaitGroup
	closed    atomic.Bool

	nConns, nOpen, nReq, nResp                 atomic.Uint64
	nBusy, nCancel, nStopped, nBadReq, nFailed atomic.Uint64
	nProtoErr                                  atomic.Uint64
}

// New wraps a (started) executor. The server does not own the executor's
// lifecycle: callers Start it before serving and Drain/Stop it on shutdown.
func New(ex *kstm.Executor, opts ...Option) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		ex:        ex,
		maxOp:     255,
		log:       log.Default(),
		listeners: make(map[net.Listener]struct{}),
		connCtx:   ctx,
		connStop:  cancel,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve accepts connections on ln until ctx is cancelled, Close is called,
// or the listener fails. It always closes ln before returning and returns
// nil on clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Register under the same lock Close uses to sweep listeners, and
	// re-check closed inside it: a Close racing this call either sees the
	// registration and closes ln, or we see closed and bail — either way
	// no listener survives a completed Close.
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		// Register under the sweep lock: either Close observes this
		// handler in conns.Wait, or we observe closed and refuse the
		// connection — Close never returns with a handler it can't see.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.nConns.Add(1)
		s.nOpen.Add(1)
		s.conns.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.conns.Done()
			defer s.nOpen.Add(^uint64(0))
			s.handle(conn)
		}()
	}
}

// Close stops accepting, severs every connection (their queued tasks settle
// as cancelled), and waits for the handlers to exit. For a graceful
// shutdown, Drain the executor first. Safe to call more than once.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// closed is set before taking mu, so a Serve call that wins the lock
	// first still observes it and unregisters itself.
	s.mu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
	s.connStop()
	s.conns.Wait()
	return nil
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:          s.nConns.Load(),
		OpenConns:      s.nOpen.Load(),
		Requests:       s.nReq.Load(),
		Responses:      s.nResp.Load(),
		Busy:           s.nBusy.Load(),
		Cancelled:      s.nCancel.Load(),
		Stopped:        s.nStopped.Load(),
		BadRequest:     s.nBadReq.Load(),
		Failed:         s.nFailed.Load(),
		ProtocolErrors: s.nProtoErr.Load(),
		Migrations:     s.ex.MigrationStats(),
	}
}

// handle runs one connection: a read loop decoding requests and submitting
// them, a writer goroutine streaming responses, and one goroutine per
// in-flight request bridging its Future to the writer.
func (s *Server) handle(conn net.Conn) {
	// The connection context cancels when the read loop exits (drop, EOF,
	// protocol error) or the server closes: tasks this connection queued
	// are then abandoned by their workers before execution — the
	// cancelled-task semantics ExecStats.Cancelled accounts for.
	ctx, cancel := context.WithCancel(s.connCtx)
	defer cancel()
	// Context cancellation must also unblock the read loop, which parks in
	// conn.Read: without this, Server.Close would wait forever on a
	// connection whose peer stays silent.
	unblock := context.AfterFunc(ctx, func() { conn.Close() })
	defer unblock()

	// The writer owns the socket's write half. Responses complete out of
	// order; the channel gives slow-client isolation bounded by its depth —
	// when a client stops reading, request goroutines block here instead of
	// growing an unbounded buffer, and a dropped connection unblocks them
	// via ctx.
	respCh := make(chan wire.Response, 128)
	// inflight bounds this connection's outstanding requests: a client
	// that pipelines but never reads its responses fills respCh, then the
	// bridge goroutines, then this semaphore — at which point the read
	// loop stops decoding and TCP backpressure reaches the sender, instead
	// of goroutines growing without limit.
	inflight := make(chan struct{}, maxInflightPerConn)
	var writerWG, reqWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.writeLoop(conn, respCh, cancel)
	}()

	br := bufio.NewReaderSize(conn, 32*1024)
	scratch := make([]byte, 256)
	for {
		frame, err := wire.ReadFrame(br, &scratch)
		if err != nil {
			// Only undecodable CONTENT is a protocol error. A clean EOF,
			// a local cancellation, or a mid-frame disconnect
			// (ErrTruncated wraps the io error: peer crashed, reset, or
			// vanished) is ordinary connection churn — a busy server must
			// not count or log every dead client as hostile input.
			if err != io.EOF && ctx.Err() == nil &&
				!errors.Is(err, net.ErrClosed) && !errors.Is(err, wire.ErrTruncated) {
				s.nProtoErr.Add(1)
				s.log.Printf("server: %s: dropping connection: %v", conn.RemoteAddr(), err)
			}
			break
		}
		if frame.Type != wire.TypeRequest {
			s.nProtoErr.Add(1)
			s.log.Printf("server: %s: unexpected frame type %d", conn.RemoteAddr(), frame.Type)
			break
		}
		s.nReq.Add(1)
		req := frame.Req
		if req.Op > s.maxOp {
			s.nBadReq.Add(1)
			s.respond(ctx, respCh, wire.Response{
				ID: req.ID, Status: wire.StatusBadRequest,
				Msg: fmt.Sprintf("opcode %d above maximum %d", req.Op, s.maxOp),
			})
			continue
		}
		if s.maxArg != 0 && req.Arg > s.maxArg {
			s.nBadReq.Add(1)
			s.respond(ctx, respCh, wire.Response{
				ID: req.ID, Status: wire.StatusBadRequest,
				Msg: fmt.Sprintf("argument %d above maximum %d", req.Arg, s.maxArg),
			})
			continue
		}
		key := req.Key
		if s.keyMask != 0 {
			key &= s.keyMask
		}
		task := kstm.Task{Key: key, Op: kstm.Op(req.Op), Arg: req.Arg}
		fut, err := s.ex.SubmitAsync(ctx, task)
		if err != nil {
			s.respond(ctx, respCh, s.submitError(req.ID, err))
			continue
		}
		select {
		case inflight <- struct{}{}:
		case <-ctx.Done():
			// Connection dying mid-submit: no bridge to spawn (no one to
			// respond to), but the accepted future still settles — track
			// its fate for the stats.
			go s.countAbandoned(fut)
			continue
		}
		reqWG.Add(1)
		go func(id uint64, fut *kstm.Future) {
			defer reqWG.Done()
			defer func() { <-inflight }()
			res, err := fut.Wait(ctx)
			if err != nil && ctx.Err() != nil {
				// Connection gone: there is no one left to tell, but the
				// future still settles in the background (executed or
				// abandoned). Account its true fate without delaying the
				// connection teardown on it.
				go s.countAbandoned(fut)
				return
			}
			s.respond(ctx, respCh, s.taskResponse(id, res, err))
		}(req.ID, fut)
	}
	// Read side done: cancel queued work, let in-flight bridges settle,
	// then release the writer and the socket.
	cancel()
	reqWG.Wait()
	close(respCh)
	writerWG.Wait()
	conn.Close()
}

// maxInflightPerConn bounds one connection's outstanding requests (its
// bridge goroutines); past it the read loop stops decoding and TCP
// backpressure reaches the client.
const maxInflightPerConn = 1024

// countAbandoned waits for an orphaned future to settle and records its
// fate with the same classification taskResponse uses for live
// connections: executor-stop abandonment under Stopped, context
// abandonment under Cancelled, and nothing for tasks that actually ran —
// a task that executed (with or without a workload error) is completed
// work, mirroring the executor's own Completed/Cancelled split. Futures
// always settle (executed, abandoned, or ErrStopped at halt), so this
// goroutine always terminates.
func (s *Server) countAbandoned(fut *kstm.Future) {
	_, err := fut.Wait(context.Background())
	switch {
	case errors.Is(err, kstm.ErrStopped):
		s.nStopped.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.nCancel.Add(1)
	}
}

// respond enqueues a response unless the connection is already gone.
func (s *Server) respond(ctx context.Context, respCh chan<- wire.Response, resp wire.Response) {
	select {
	case respCh <- resp:
	case <-ctx.Done():
	}
}

// writeLoop serializes responses onto the socket. A write failure cancels
// the connection (the read loop and request bridges then unwind) and drains
// the channel so senders never block on a dead socket.
func (s *Server) writeLoop(conn net.Conn, respCh <-chan wire.Response, cancel context.CancelFunc) {
	bw := bufio.NewWriterSize(conn, 32*1024)
	buf := make([]byte, 0, 256)
	for resp := range respCh {
		var err error
		buf, err = wire.AppendResponse(buf[:0], resp)
		if err != nil {
			// Unencodable workload value: the request was fine, the
			// workload's value type is not in the wire vocabulary.
			// Answer just this request with an error; the connection
			// stays up.
			buf, _ = wire.AppendResponse(buf[:0], wire.Response{
				ID: resp.ID, Status: wire.StatusError,
				Msg: fmt.Sprintf("unencodable task value: %v", err),
			})
			s.nFailed.Add(1)
		}
		_, werr := bw.Write(buf)
		if werr == nil && len(respCh) == 0 {
			// Flush opportunistically: batch while more responses are
			// ready, flush when the channel runs dry.
			werr = bw.Flush()
		}
		if werr != nil {
			cancel()
			for range respCh { // drain until the handler closes it
			}
			return
		}
		s.nResp.Add(1)
	}
	bw.Flush()
}

// submitError maps a SubmitAsync error to a response.
func (s *Server) submitError(id uint64, err error) wire.Response {
	switch {
	case errors.Is(err, kstm.ErrQueueFull):
		s.nBusy.Add(1)
		return wire.Response{ID: id, Status: wire.StatusBusy, Msg: "server busy"}
	case errors.Is(err, kstm.ErrNotRunning), errors.Is(err, kstm.ErrStopped):
		s.nStopped.Add(1)
		return wire.Response{ID: id, Status: wire.StatusStopped, Msg: "server stopping"}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.nCancel.Add(1)
		return wire.Response{ID: id, Status: wire.StatusCancelled, Msg: err.Error()}
	default:
		s.nFailed.Add(1)
		return wire.Response{ID: id, Status: wire.StatusError, Msg: err.Error()}
	}
}

// taskResponse maps a completed (or abandoned) task to a response.
func (s *Server) taskResponse(id uint64, res kstm.TaskResult, err error) wire.Response {
	resp := wire.Response{
		ID:     id,
		WaitNS: uint64(max(res.Wait, 0)),
		ExecNS: uint64(max(res.Exec, 0)),
	}
	switch {
	case err == nil:
		resp.Status = wire.StatusOK
		resp.Value = res.Value
	case errors.Is(err, kstm.ErrStopped):
		s.nStopped.Add(1)
		resp.Status = wire.StatusStopped
		resp.Msg = "server stopping"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Abandoned before execution under the corrected cancellation
		// accounting: the task never ran.
		s.nCancel.Add(1)
		resp.Status = wire.StatusCancelled
		resp.Msg = err.Error()
	default:
		s.nFailed.Add(1)
		resp.Status = wire.StatusError
		resp.Msg = err.Error()
	}
	return resp
}
