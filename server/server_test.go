package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kstm"
	"kstm/client"
	"kstm/internal/harness"
	"kstm/internal/stm"
	"kstm/internal/txds"
	"kstm/server"
)

// quiet discards server connection-error logs in tests that provoke them.
var quiet = log.New(io.Discard, "", 0)

// startServer spins up an executor + server on a loopback listener and
// returns the dial address plus a shutdown func.
func startServer(t *testing.T, exOpts []kstm.Option, srvOpts ...server.Option) (*kstm.Executor, *server.Server, string, func()) {
	t.Helper()
	ex, err := kstm.NewExecutor(exOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := server.New(ex, append([]server.Option{server.WithLogger(quiet)}, srvOpts...)...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), ln) }()
	shutdown := func() {
		ex.Stop()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
	return ex, srv, ln.Addr().String(), shutdown
}

func dictExecutorOpts(t *testing.T, extra ...kstm.Option) []kstm.Option {
	t.Helper()
	table := kstm.NewHashTable(0)
	opts := []kstm.Option{
		kstm.WithWorkload(harness.NewDictWorkload(table)),
		kstm.WithWorkers(2),
		kstm.WithBackpressure(kstm.BackpressureReject),
	}
	return append(opts, extra...)
}

// TestRoundTripLoopback is the acceptance-criteria test: insert, lookup and
// delete round-trip over a real TCP connection with values intact.
func TestRoundTripLoopback(t *testing.T) {
	_, _, addr, shutdown := startServer(t, dictExecutorOpts(t))
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	task := func(op kstm.Op, k uint32) kstm.Task {
		return kstm.Task{Key: uint64(k), Op: op, Arg: k}
	}
	// Fresh key: insert reports "was absent" = true, second insert false.
	if got, err := c.DoBool(ctx, task(kstm.OpInsert, 77)); err != nil || !got {
		t.Fatalf("first insert = %v, %v; want true, nil", got, err)
	}
	if got, err := c.DoBool(ctx, task(kstm.OpInsert, 77)); err != nil || got {
		t.Fatalf("second insert = %v, %v; want false, nil", got, err)
	}
	if got, err := c.DoBool(ctx, task(kstm.OpLookup, 77)); err != nil || !got {
		t.Fatalf("lookup after insert = %v, %v; want true, nil", got, err)
	}
	if got, err := c.DoBool(ctx, task(kstm.OpDelete, 77)); err != nil || !got {
		t.Fatalf("delete = %v, %v; want true, nil", got, err)
	}
	if got, err := c.DoBool(ctx, task(kstm.OpLookup, 77)); err != nil || got {
		t.Fatalf("lookup after delete = %v, %v; want false, nil", got, err)
	}
	// Latency plumbing: a served request reports a non-negative wait and a
	// positive-but-sane service time.
	res, err := c.Do(ctx, task(kstm.OpLookup, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec < 0 || res.Exec > time.Minute || res.Wait < 0 {
		t.Fatalf("implausible latency: wait=%v exec=%v", res.Wait, res.Exec)
	}
}

// TestBatchRoundTrip drives the version-1 batch frames end to end: DoBatch
// sends one TypeBatchRequest frame per chunk, the server fans the requests
// through the callback submit path, coalesces the completions into
// TypeBatchResponse frames, and every call settles with its own task's
// value. Bad requests inside a batch answer individually without touching
// their batch-mates.
func TestBatchRoundTrip(t *testing.T) {
	ex, srv, addr, shutdown := startServer(t, dictExecutorOpts(t), server.WithMaxOp(uint8(kstm.OpNoop)))
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	const n = 500
	tasks := make([]kstm.Task, n)
	for i := range tasks {
		tasks[i] = kstm.Task{Key: uint64(i), Op: kstm.OpInsert, Arg: uint32(i)}
	}
	calls, err := c.DoBatch(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("%d calls for %d tasks", len(calls), n)
	}
	for i, call := range calls {
		res, err := call.Wait(ctx)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if added, _ := res.Value.(bool); !added {
			t.Fatalf("call %d: fresh insert reported %v", i, res.Value)
		}
	}
	// Re-reading the same keys through a second batch observes the inserts.
	for i := range tasks {
		tasks[i].Op = kstm.OpLookup
	}
	calls, err = c.DoBatch(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, call := range calls {
		res, err := call.Wait(ctx)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if hit, _ := res.Value.(bool); !hit {
			t.Fatalf("lookup %d missed its own insert", i)
		}
	}
	// A bad opcode inside a batch fails alone; its batch-mates succeed.
	mixed := []kstm.Task{
		{Key: 1, Op: kstm.OpLookup, Arg: 1},
		{Key: 2, Op: kstm.Op(200), Arg: 2},
		{Key: 3, Op: kstm.OpLookup, Arg: 3},
	}
	calls, err = c.DoBatch(ctx, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := calls[0].Wait(ctx); err != nil {
		t.Errorf("good batch-mate 0: %v", err)
	}
	if _, err := calls[1].Wait(ctx); !errors.Is(err, client.ErrBadRequest) {
		t.Errorf("bad opcode: %v, want ErrBadRequest", err)
	}
	if _, err := calls[2].Wait(ctx); err != nil {
		t.Errorf("good batch-mate 2: %v", err)
	}
	if st := ex.Stats(); st.Completed != 2*n+2 {
		t.Errorf("executor completed %d, want %d", st.Completed, 2*n+2)
	}
	if ss := srv.Stats(); ss.Requests != 2*n+3 || ss.Responses != 2*n+3 || ss.BadRequest != 1 {
		t.Errorf("server req/resp/badreq = %d/%d/%d, want %d/%d/1", ss.Requests, ss.Responses, ss.BadRequest, 2*n+3, 2*n+3)
	}
}

// TestManyClientsPipelined drives N clients × M pipelined requests and
// checks that every response arrives, values are booleans, and the server
// and executor agree on the totals.
func TestManyClientsPipelined(t *testing.T) {
	ex, srv, addr, shutdown := startServer(t, dictExecutorOpts(t))
	defer shutdown()
	const clients, perClient = 8, 200
	var served atomic.Uint64
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			ctx := context.Background()
			calls := make([]*client.Call, 0, perClient)
			for i := 0; i < perClient; i++ {
				k := uint32((ci*perClient + i) % 4096)
				op := kstm.OpInsert
				if i%3 == 0 {
					op = kstm.OpLookup
				}
				call, err := c.DoAsync(ctx, kstm.Task{Key: uint64(k), Op: op, Arg: k})
				if err != nil {
					t.Errorf("client %d: %v", ci, err)
					return
				}
				calls = append(calls, call)
			}
			for i, call := range calls {
				res, err := call.Wait(ctx)
				if err != nil {
					t.Errorf("client %d call %d: %v", ci, i, err)
					return
				}
				if _, ok := res.Value.(bool); !ok {
					t.Errorf("client %d call %d: value %T, want bool", ci, i, res.Value)
					return
				}
				served.Add(1)
			}
		}(ci)
	}
	wg.Wait()
	if served.Load() != clients*perClient {
		t.Fatalf("served %d, want %d", served.Load(), clients*perClient)
	}
	if st := ex.Stats(); st.Completed != clients*perClient || st.Cancelled != 0 {
		t.Errorf("executor Completed/Cancelled = %d/%d, want %d/0", st.Completed, st.Cancelled, clients*perClient)
	}
	if ss := srv.Stats(); ss.Responses != clients*perClient || ss.Requests != clients*perClient {
		t.Errorf("server req/resp = %d/%d, want %d each", ss.Requests, ss.Responses, clients*perClient)
	}
}

// gateWorkload blocks execution until released so tests can pin tasks in
// queues deterministically.
type gateWorkload struct {
	gate     chan struct{}
	executed atomic.Int64
}

func newGate() *gateWorkload { return &gateWorkload{gate: make(chan struct{})} }

func (g *gateWorkload) Execute(th *stm.Thread, task kstm.Task) (any, error) {
	<-g.gate
	g.executed.Add(1)
	return true, nil
}

// TestBusyResponse: with a single worker held at a gate and a queue bound of
// 1, further requests must come back as ErrBusy — the wire mapping of
// reject-mode backpressure — without disturbing the queued work.
func TestBusyResponse(t *testing.T) {
	gate := newGate()
	ex, srv, addr, shutdown := startServer(t, []kstm.Option{
		kstm.WithWorkload(gate),
		kstm.WithWorkers(1),
		kstm.WithBackpressure(kstm.BackpressureReject),
		kstm.WithQueueDepth(1),
	})
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Fill: one task occupies the worker, one sits queued. (The worker may
	// dequeue the first before the second arrives, so allow a third to
	// saturate deterministically.)
	var pending []*client.Call
	busy := 0
	for i := 0; i < 16; i++ {
		call, err := c.DoAsync(ctx, kstm.Task{Key: 1, Arg: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, call)
	}
	// Wait for every response slot to resolve busy-or-queued: with depth 1
	// and one gated worker at most 2 can be in flight; the rest are busy.
	gate.release()
	completed := 0
	for _, call := range pending {
		if _, err := call.Wait(ctx); errors.Is(err, client.ErrBusy) {
			busy++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		} else {
			completed++
		}
	}
	if busy == 0 {
		t.Fatal("no ErrBusy out of 16 requests against a depth-1 queue")
	}
	if completed == 0 {
		t.Fatal("queued work did not complete after release")
	}
	if ss := srv.Stats(); ss.Busy != uint64(busy) {
		t.Errorf("server Busy = %d, client saw %d", ss.Busy, busy)
	}
	if st := ex.Stats(); st.Rejected != uint64(busy) {
		t.Errorf("executor Rejected = %d, want %d", st.Rejected, busy)
	}
}

func (g *gateWorkload) release() { close(g.gate) }

// TestConnDropDoesNotWedgeDrain is the slow/dying-client scenario: a client
// pipelines work behind a gated worker and drops the connection. The
// server-side cancellation must abandon its queued tasks so a subsequent
// Drain returns instead of waiting for results nobody can receive.
func TestConnDropDoesNotWedgeDrain(t *testing.T) {
	gate := newGate()
	ex, srv, addr, shutdown := startServer(t, []kstm.Option{
		kstm.WithWorkload(gate),
		kstm.WithWorkers(1),
		kstm.WithBackpressure(kstm.BackpressureReject),
		kstm.WithQueueDepth(4096),
	})
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := c.DoAsync(ctx, kstm.Task{Key: 1, Arg: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the server has accepted the submissions, then vanish.
	deadline := time.Now().Add(5 * time.Second)
	for ex.Stats().Submitted < n {
		if time.Now().After(deadline) {
			t.Fatalf("server accepted %d/%d submissions", ex.Stats().Submitted, n)
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	// Wait until the server has retired the connection (its context — and
	// with it every queued task's submission context — is then cancelled)
	// before letting the worker advance, so the cancellations are
	// deterministic rather than a race against the gate.
	for srv.Stats().OpenConns > 0 {
		if time.Now().After(deadline) {
			t.Fatal("server did not retire the dropped connection")
		}
		time.Sleep(time.Millisecond)
	}
	gate.release()

	drained := make(chan error, 1)
	go func() { drained <- ex.Drain() }()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain wedged after mid-flight connection drop")
	}
	st := ex.Stats()
	if st.Completed+st.Cancelled != n {
		t.Errorf("Completed %d + Cancelled %d != %d submitted", st.Completed, st.Cancelled, n)
	}
	if st.Cancelled == 0 {
		t.Error("no tasks were cancelled by the connection drop")
	}
	if got := gate.executed.Load(); uint64(got) != st.Completed {
		t.Errorf("workload executed %d, Completed says %d", got, st.Completed)
	}
}

// TestBadRequestMapping: opcodes above the server's maximum are refused
// before submission with StatusBadRequest.
func TestBadRequestMapping(t *testing.T) {
	_, srv, addr, shutdown := startServer(t, dictExecutorOpts(t), server.WithMaxOp(uint8(kstm.OpNoop)))
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(context.Background(), kstm.Task{Key: 1, Op: kstm.Op(42), Arg: 1}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("op 42: %v, want ErrBadRequest", err)
	}
	// The connection survives a bad request.
	if _, err := c.DoBool(context.Background(), kstm.Task{Key: 1, Op: kstm.OpLookup, Arg: 1}); err != nil {
		t.Fatalf("connection dead after bad request: %v", err)
	}
	if ss := srv.Stats(); ss.BadRequest != 1 {
		t.Errorf("BadRequest = %d, want 1", ss.BadRequest)
	}
}

// TestMaxArgBound: with WithMaxArg set (the migrating-server contract —
// hand-off ranges live in the dispatch-key space, so out-of-space Args
// would strand), oversized arguments are refused with StatusBadRequest;
// in-bound requests are unaffected.
func TestMaxArgBound(t *testing.T) {
	_, srv, addr, shutdown := startServer(t, dictExecutorOpts(t), server.WithMaxArg(kstm.MaxKey))
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(context.Background(), kstm.Task{Key: 1, Op: kstm.OpInsert, Arg: 70000}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("arg 70000: %v, want ErrBadRequest", err)
	}
	if _, err := c.DoBool(context.Background(), kstm.Task{Key: 1, Op: kstm.OpInsert, Arg: 42}); err != nil {
		t.Fatalf("in-bound arg after refusal: %v", err)
	}
	if ss := srv.Stats(); ss.BadRequest != 1 {
		t.Errorf("BadRequest = %d, want 1", ss.BadRequest)
	}
}

// TestWorkloadErrorMapping: hard workload errors travel back as ServerError
// with the message intact.
func TestWorkloadErrorMapping(t *testing.T) {
	wl := kstm.WorkloadFunc(func(th *kstm.Thread, task kstm.Task) (any, error) {
		if task.Op == kstm.OpDelete {
			return nil, fmt.Errorf("no deletes today")
		}
		return true, nil
	})
	_, _, addr, shutdown := startServer(t, []kstm.Option{
		kstm.WithWorkload(wl), kstm.WithWorkers(1),
	})
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Do(context.Background(), kstm.Task{Key: 1, Op: kstm.OpDelete})
	var se *client.ServerError
	if !errors.As(err, &se) || se.Msg != "no deletes today" {
		t.Fatalf("got %v, want ServerError(no deletes today)", err)
	}
}

// TestDrainingServerAnswersStopped: after the executor drains, connected
// clients get StatusStopped for new work instead of hangs or resets.
func TestDrainingServerAnswersStopped(t *testing.T) {
	ex, _, addr, shutdown := startServer(t, dictExecutorOpts(t))
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.DoBool(ctx, kstm.Task{Key: 9, Op: kstm.OpInsert, Arg: 9}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(ctx, kstm.Task{Key: 9, Op: kstm.OpLookup, Arg: 9}); !errors.Is(err, client.ErrStopped) {
		t.Fatalf("post-drain request: %v, want ErrStopped", err)
	}
}

// TestGarbageInputDropsConnOnly: a connection sending junk is dropped
// without hurting the listener or other connections.
func TestGarbageInputDropsConnOnly(t *testing.T) {
	_, srv, addr, shutdown := startServer(t, dictExecutorOpts(t))
	defer shutdown()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The server should close on us.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := raw.Read(buf); err != nil {
			break
		}
	}
	raw.Close()
	// A well-behaved client still works.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.DoBool(context.Background(), kstm.Task{Key: 2, Op: kstm.OpInsert, Arg: 2}); err != nil {
		t.Fatal(err)
	}
	if ss := srv.Stats(); ss.ProtocolErrors == 0 {
		t.Error("garbage input not counted as a protocol error")
	}
}

// TestCloseWithIdleConnection: Server.Close must return even while a client
// holds a connection open and silent — the per-connection context has to
// unblock the read loop, not just cancel futures.
func TestCloseWithIdleConnection(t *testing.T) {
	ex, srv, addr, _ := startServer(t, dictExecutorOpts(t))
	defer ex.Stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// One request proves the connection is established and served.
	if _, err := c.DoBool(context.Background(), kstm.Task{Key: 3, Op: kstm.OpInsert, Arg: 3}); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close wedged on an idle open connection")
	}
}

// TestUnencodableValueAnswersError: a workload value outside the wire
// vocabulary fails only that request (StatusError), not the connection.
func TestUnencodableValueAnswersError(t *testing.T) {
	wl := kstm.WorkloadFunc(func(th *kstm.Thread, task kstm.Task) (any, error) {
		if task.Op == kstm.OpNoop {
			return struct{ X int }{1}, nil // not encodable on the wire
		}
		return true, nil
	})
	_, srv, addr, shutdown := startServer(t, []kstm.Option{
		kstm.WithWorkload(wl), kstm.WithWorkers(1),
	})
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	var se *client.ServerError
	if _, err := c.Do(ctx, kstm.Task{Key: 1, Op: kstm.OpNoop}); !errors.As(err, &se) {
		t.Fatalf("unencodable value: %v, want ServerError", err)
	}
	// The connection survives; the next request round-trips.
	if got, err := c.DoBool(ctx, kstm.Task{Key: 1, Op: kstm.OpLookup, Arg: 1}); err != nil || !got {
		t.Fatalf("connection dead after unencodable value: %v %v", got, err)
	}
	if ss := srv.Stats(); ss.Failed == 0 {
		t.Error("unencodable value not counted under Failed")
	}
}

// TestKeyMaskSpreadsBigKeys: clients routing by natural 64-bit keys must
// not collapse onto one worker — the configured mask folds keys into the
// scheduler's range (kstmd's configuration).
func TestKeyMaskSpreadsBigKeys(t *testing.T) {
	table := kstm.NewHashTable(0)
	ex, _, addr, shutdown := startServer(t, []kstm.Option{
		kstm.WithWorkload(harness.NewDictWorkload(table)),
		kstm.WithWorkers(2),
		kstm.WithSchedulerKind(kstm.SchedFixed, 0, kstm.MaxKey),
	}, server.WithKeyMask(kstm.MaxKey))
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	// Two 64-bit keys far above MaxKey whose masked values land in the two
	// fixed halves of the 16-bit space.
	low := uint64(1<<40) | 5      // masks to 5 -> worker 0
	high := uint64(1<<40) | 60000 // masks to 60000 -> worker 1
	for i := 0; i < 8; i++ {
		for _, k := range []uint64{low, high} {
			if _, err := c.Do(ctx, kstm.Task{Key: k, Op: kstm.OpInsert, Arg: uint32(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := ex.Stats()
	if st.PerWorker[0] == 0 || st.PerWorker[1] == 0 {
		t.Fatalf("big keys collapsed onto one worker: per-worker %v", st.PerWorker)
	}
}

// TestPoolRoundTrip stripes concurrent traffic over a connection pool.
func TestPoolRoundTrip(t *testing.T) {
	_, _, addr, shutdown := startServer(t, dictExecutorOpts(t))
	defer shutdown()
	p, err := client.DialPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 4 {
		t.Fatalf("pool size %d, want 4", p.Size())
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 50; i++ {
				k := uint32(g*100 + i)
				if _, err := p.Do(ctx, kstm.Task{Key: uint64(k), Op: kstm.OpInsert, Arg: k}); err != nil {
					errs <- err
					return
				}
				if got, err := p.Do(ctx, kstm.Task{Key: uint64(k), Op: kstm.OpLookup, Arg: k}); err != nil || got.Value != true {
					errs <- fmt.Errorf("lookup %d = %v, %v", k, got.Value, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestShardedServer serves a per-worker sharded executor over the wire: the
// network layer must be oblivious to the sharding mode.
func TestShardedServer(t *testing.T) {
	_, _, addr, shutdown := startServer(t, []kstm.Option{
		kstm.WithSharding(kstm.ShardPerWorker),
		kstm.WithWorkloadFactory(harness.NewDictFactory(txds.KindHashTable, 2)),
		kstm.WithWorkers(2),
	})
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for k := uint32(0); k < 64; k++ {
		if _, err := c.Do(ctx, kstm.Task{Key: uint64(k), Op: kstm.OpInsert, Arg: k}); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint32(0); k < 64; k++ {
		if got, err := c.DoBool(ctx, kstm.Task{Key: uint64(k), Op: kstm.OpLookup, Arg: k}); err != nil || !got {
			t.Fatalf("sharded lookup %d = %v, %v", k, got, err)
		}
	}
}

// TestDeadlineShedOverWire drives deadline propagation end to end: a ctx
// deadline on DoAsync rides the wire as a relative budget, the server sheds
// the task when the budget expires in queue behind a blocker — answering
// StatusDeadline without ever executing it — and both the executor's and the
// server's deadline counters advance.
func TestDeadlineShedOverWire(t *testing.T) {
	release := make(chan struct{})
	var executed atomic.Int64
	exOpts := []kstm.Option{
		kstm.WithWorkload(kstm.WorkloadFunc(func(_ *stm.Thread, tk kstm.Task) (any, error) {
			if tk.Key == 0 {
				<-release
				return true, nil
			}
			executed.Add(1)
			return true, nil
		})),
		kstm.WithWorkers(1),
		kstm.WithBackpressure(kstm.BackpressureReject),
	}
	ex, srv, addr, shutdown := startServer(t, exOpts)
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	blocker, err := c.DoAsync(context.Background(), kstm.Task{Key: 0, Op: kstm.OpLookup})
	if err != nil {
		t.Fatal(err)
	}
	// The victim pipelines behind the blocker on the same connection and
	// the same (single) worker queue; its 5ms budget expires while queued.
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	victim, err := c.DoAsync(dctx, kstm.Task{Key: 1, Op: kstm.OpLookup})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	cancel()

	if _, err := victim.Wait(context.Background()); !errors.Is(err, client.ErrDeadlineExpired) {
		t.Fatalf("victim err = %v, want ErrDeadlineExpired", err)
	}
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatalf("blocker err = %v", err)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("shed task executed %d times, want 0", n)
	}
	if st := ex.Stats(); st.DeadlineExpired != 1 {
		t.Errorf("ExecStats.DeadlineExpired = %d, want 1", st.DeadlineExpired)
	}
	if ss := srv.Stats(); ss.Deadline != 1 {
		t.Errorf("server Stats.Deadline = %d, want 1", ss.Deadline)
	}
}

// TestAdmissionRejectsOverBudget: with WithAdmission(rate, burst) a
// connection gets burst requests through immediately; the next answers
// StatusBusy with a retry-after hint — surfaced as BusyError — before the
// request touches the executor. Buckets are per connection: a fresh conn
// starts with its own burst.
func TestAdmissionRejectsOverBudget(t *testing.T) {
	// 2/s with burst 2: after two instant requests the third would need a
	// 500ms token — rejected with a sizable retry-after.
	_, srv, addr, shutdown := startServer(t, dictExecutorOpts(t), server.WithAdmission(2, 2))
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := c.Do(ctx, kstm.Task{Key: uint64(i), Op: kstm.OpLookup, Arg: uint32(i)}); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	_, err = c.Do(ctx, kstm.Task{Key: 3, Op: kstm.OpLookup, Arg: 3})
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("over-budget request: %v, want ErrBusy", err)
	}
	var be *client.BusyError
	if !errors.As(err, &be) || be.RetryAfter <= 0 {
		t.Fatalf("over-budget request: %v, want BusyError with positive RetryAfter", err)
	}
	// A second connection has its own untouched bucket.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Do(ctx, kstm.Task{Key: 9, Op: kstm.OpLookup, Arg: 9}); err != nil {
		t.Fatalf("fresh connection's first request: %v", err)
	}
	ss := srv.Stats()
	if ss.Admitted < 3 || ss.AdmitRejected < 1 {
		t.Errorf("Admitted = %d (want >= 3), AdmitRejected = %d (want >= 1)", ss.Admitted, ss.AdmitRejected)
	}
}
