package server_test

import (
	"context"
	"testing"

	"kstm"
	"kstm/client"
	"kstm/internal/harness"
	"kstm/server"
)

// counterExecutorOpts mirrors kstmd's -structure counters wiring: the keyed
// aggregate workload on a fixed key partition, with or without split phase.
func counterExecutorOpts(split bool) []kstm.Option {
	opts := []kstm.Option{
		kstm.WithWorkload(harness.NewCounterWorkload(kstm.NewCounters(harness.ContentionCounters))),
		kstm.WithWorkers(2),
		kstm.WithBackpressure(kstm.BackpressureReject),
		kstm.WithSchedulerKind(kstm.SchedFixed, 0, harness.ContentionCounters-1),
	}
	if split {
		// A static split key guarantees the local-accumulator path runs no
		// matter what the detector sees at test-sized traffic.
		opts = append(opts, kstm.WithSplitPhase(kstm.SplitKeys(0)))
	}
	return opts
}

// runCounterScript drives one deterministic client session over loopback TCP
// and returns every lookup's observed sum in order — the complete
// client-visible output of the session.
func runCounterScript(t *testing.T, split bool) ([]int64, kstm.SplitStats) {
	t.Helper()
	_, srv, addr, shutdown := startServer(t, counterExecutorOpts(split),
		server.WithMaxOp(uint8(kstm.OpTopK)),
		server.WithKeyMask(harness.ContentionCounters-1))
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	var sums []int64
	lookup := func(key uint64) {
		res, err := c.Do(ctx, kstm.Task{Key: key, Op: kstm.OpLookup})
		if err != nil {
			t.Fatalf("split=%v lookup key %d: %v", split, key, err)
		}
		sum, ok := res.Value.(int64)
		if !ok {
			t.Fatalf("split=%v lookup key %d: value %T(%v), want int64", split, key, res.Value, res.Value)
		}
		sums = append(sums, sum)
	}
	// Key 0 is split (when enabled), keys 1 and 2 never are: the script
	// interleaves commutative adds on both classes with lookups, so it
	// exercises local absorption, parked reads, and the plain STM path in
	// one session. A synchronous client makes the output deterministic:
	// every add has settled before the next request is sent.
	for round := 0; round < 4; round++ {
		for i := 0; i < 25; i++ {
			key := uint64(i % 3)
			if _, err := c.Do(ctx, kstm.Task{Key: key, Op: kstm.OpAdd, Arg: 2}); err != nil {
				t.Fatalf("split=%v add: %v", split, err)
			}
		}
		lookup(0)
		lookup(1)
		lookup(2)
	}
	return sums, srv.Stats().Split
}

// TestSplitPhaseClientInvisible is the split-phase e2e acceptance test:
// the same scripted session over loopback TCP produces byte-identical
// client-visible results with split phase off and on — split execution is
// an executor-internal optimization, not a semantics change.
func TestSplitPhaseClientInvisible(t *testing.T) {
	off, offStats := runCounterScript(t, false)
	on, onStats := runCounterScript(t, true)
	if len(off) != len(on) {
		t.Fatalf("lookup counts differ: off %d on %d", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Errorf("lookup %d: off %d != on %d", i, off[i], on[i])
		}
	}
	// The off arm must not have touched split machinery; the on arm must
	// actually have exercised it (parked lookups on key 0 force merges).
	if offStats != (kstm.SplitStats{}) {
		t.Errorf("split off: nonzero split stats %+v", offStats)
	}
	if onStats.Keys == 0 || onStats.MergedEpochs == 0 || onStats.ParkedTasks == 0 {
		t.Errorf("split on: split machinery unused: %+v", onStats)
	}
}
