package server_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kstm"
	"kstm/client"
	"kstm/internal/fault"
	"kstm/server"
)

// chaosSeeds picks the seeded matrix width: PR CI runs the short set, the
// nightly sweep drops -short for more seeds per scenario.
func chaosSeeds() []uint64 {
	if testing.Short() {
		return []uint64{1}
	}
	return []uint64{1, 2, 3}
}

// TestTruncationAtEveryByteBoundary cuts the client's connection after every
// possible byte prefix of a request frame — plain (27 bytes) and
// deadline-carrying (35 bytes) — through the fault conn wrapper. The server
// must treat each truncation as a dead connection, never a wedge: after all
// the abuse a healthy client round-trips and Drain completes promptly.
func TestTruncationAtEveryByteBoundary(t *testing.T) {
	ex, _, addr, shutdown := startServer(t, dictExecutorOpts(t))
	defer shutdown()

	// 4 (len) + 1 (ver) + 1 (typ) + body: 21-byte plain bodies, 29-byte
	// deadline bodies. A ctx deadline makes the client emit the wider
	// TypeRequestDeadline frame, so both decode paths see every boundary.
	const plainFrame, deadlineFrame = 27, 35
	for _, fr := range []struct {
		size         int
		withDeadline bool
	}{{plainFrame, false}, {deadlineFrame, true}} {
		for cut := 1; cut < fr.size; cut++ {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			inj := fault.New(uint64(cut), fault.Rule{Every: 1, DropAfter: int64(cut)})
			c := client.NewClient(inj.Conn(raw))
			ctx, cancel := context.Background(), context.CancelFunc(func() {})
			if fr.withDeadline {
				ctx, cancel = context.WithTimeout(ctx, time.Minute)
			}
			_, err = c.Do(ctx, kstm.Task{Key: uint64(cut), Op: kstm.OpInsert, Arg: uint32(cut)})
			cancel()
			if err == nil {
				t.Fatalf("cut %d/%d: truncated request succeeded", cut, fr.size)
			}
			c.Close()
		}
	}

	// The server survived sixty truncated connections: a fresh one works.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, err := c.DoBool(context.Background(), kstm.Task{Key: 999, Op: kstm.OpInsert, Arg: 999}); err != nil || !got {
		t.Fatalf("post-abuse insert = %v, %v; want true, nil", got, err)
	}
	// And the executor drains without getting wedged by any of it.
	drained := make(chan error, 1)
	go func() { drained <- ex.Drain() }()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Drain wedged after truncated connections")
	}
}

// TestPartialIOFullRoundTrip forces every server read and write through
// 1-byte segments (and the client's reads through the resulting boundaries):
// framing must reassemble perfectly — zero errors, all values intact.
func TestPartialIOFullRoundTrip(t *testing.T) {
	inj := fault.New(1, fault.Rule{Every: 1, WriteChunk: 1, ReadChunk: 1})
	_, _, addr, shutdown := startServer(t, dictExecutorOpts(t),
		server.WithConnWrapper(inj.Conn))
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		if got, err := c.DoBool(ctx, kstm.Task{Key: uint64(i), Op: kstm.OpInsert, Arg: uint32(i)}); err != nil || !got {
			t.Fatalf("insert %d = %v, %v; want true, nil", i, got, err)
		}
	}
	// Batch frames cross many 1-byte boundaries in both directions.
	tasks := make([]kstm.Task, 16)
	for i := range tasks {
		tasks[i] = kstm.Task{Key: uint64(i), Op: kstm.OpLookup, Arg: uint32(i)}
	}
	calls, err := c.DoBatch(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, call := range calls {
		res, err := call.Wait(ctx)
		if err != nil {
			t.Fatalf("batch lookup %d: %v", i, err)
		}
		if hit, _ := res.Value.(bool); !hit {
			t.Fatalf("batch lookup %d missed an inserted key", i)
		}
	}
}

// TestChaosMatrix is the seeded fault matrix: drop / stall / partial
// scenarios against pipelined pool clients retrying through DoRetry. The
// invariants, per DESIGN.md §10:
//
//   - zero visibility errors: every insert acknowledged OK is visible to a
//     later lookup, no matter what the transport did;
//   - the pool recovers once the fault clears (breaker probes revive slots);
//   - Drain completes — no fault pattern wedges shutdown.
func TestChaosMatrix(t *testing.T) {
	scenarios := []struct {
		name string
		rule fault.Rule
	}{
		// Half the connections die after ~300±200 response bytes: acks are
		// lost mid-pipeline, clients see resets, the pool must eject/redial.
		{"drop", fault.Rule{Every: 2, DropAfter: 300, Jitter: 200}},
		// Half the connections freeze once for 3ms mid-stream.
		{"stall", fault.Rule{Every: 2, Stall: 3 * time.Millisecond, StallAfter: 200}},
		// Every connection moves 3-byte write / 5-byte read segments:
		// pure reassembly stress, nothing may fail at all.
		{"partial", fault.Rule{Every: 1, WriteChunk: 3, ReadChunk: 5}},
	}
	const (
		goroutines = 4
		opsPerG    = 40
	)
	for _, sc := range scenarios {
		for _, seed := range chaosSeeds() {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				inj := fault.New(seed, sc.rule)
				var faulting atomic.Bool
				faulting.Store(true)
				wrapper := func(c net.Conn) net.Conn {
					if !faulting.Load() {
						return c
					}
					return inj.Conn(c)
				}
				ex, _, addr, shutdown := startServer(t, dictExecutorOpts(t),
					server.WithConnWrapper(wrapper))
				defer shutdown()
				p, err := client.DialPool(addr, 2)
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()

				// Chaos phase: unique-key inserts through DoRetry; every
				// acknowledged key goes into the visibility ledger.
				var mu sync.Mutex
				var acked []uint64
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				defer cancel()
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < opsPerG; i++ {
							key := uint64(g*opsPerG + i + 1)
							opCtx, opCancel := context.WithTimeout(ctx, 2*time.Second)
							_, err := client.DoRetry(opCtx, p, kstm.Task{
								Key: key, Op: kstm.OpInsert, Arg: uint32(key),
							})
							opCancel()
							if err == nil {
								mu.Lock()
								acked = append(acked, key)
								mu.Unlock()
							}
						}
					}(g)
				}
				wg.Wait()
				if len(acked) == 0 {
					t.Fatal("no insert was ever acknowledged; the fault pattern starved the test")
				}

				// Fault clears: the pool must recover via breaker probes.
				faulting.Store(false)
				recoverBy := time.Now().Add(10 * time.Second)
				for {
					_, err := client.DoRetry(ctx, p, kstm.Task{Key: 1, Op: kstm.OpLookup, Arg: 1})
					if err == nil {
						break
					}
					if time.Now().After(recoverBy) {
						t.Fatalf("pool did not recover after fault cleared: %v", err)
					}
					time.Sleep(5 * time.Millisecond)
				}

				// Visibility: every acked insert must be present. Zero
				// tolerance — a lost acked write is a correctness bug, not
				// bad luck.
				for _, key := range acked {
					res, err := client.DoRetry(ctx, p, kstm.Task{Key: key, Op: kstm.OpLookup, Arg: uint32(key)})
					if err != nil {
						t.Fatalf("lookup of acked key %d: %v", key, err)
					}
					if hit, _ := res.Value.(bool); !hit {
						t.Fatalf("visibility error: acked insert of key %d is not visible", key)
					}
				}

				// Shutdown must not wedge under leftover faulted conns.
				drained := make(chan error, 1)
				go func() { drained <- ex.Drain() }()
				select {
				case err := <-drained:
					if err != nil {
						t.Fatalf("drain: %v", err)
					}
				case <-time.After(30 * time.Second):
					t.Fatal("Drain wedged under chaos")
				}
			})
		}
	}
}
