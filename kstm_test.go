package kstm_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kstm"
)

// TestFacadeSTM exercises the whole public STM surface.
func TestFacadeSTM(t *testing.T) {
	s := kstm.New(kstm.WithContentionManager(kstm.NewPolka))
	box := kstm.NewBox(0)
	th := s.NewThread()
	err := th.Atomic(func(tx *kstm.Tx) error {
		v, err := box.Write(tx)
		if err != nil {
			return err
		}
		*v = 7
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := th.Begin()
	v, err := box.Read(tx)
	if err != nil || *v != 7 {
		t.Fatalf("read = (%v, %v)", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Commits != 2 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestFacadeDataStructures(t *testing.T) {
	s := kstm.New()
	th := s.NewThread()
	sets := []kstm.IntSet{kstm.NewHashTable(64), kstm.NewRBTree(), kstm.NewSortedList()}
	for _, set := range sets {
		if added, err := set.Insert(th, 5); err != nil || !added {
			t.Fatalf("%s: Insert = (%v,%v)", set.Name(), added, err)
		}
		if found, err := set.Contains(th, 5); err != nil || !found {
			t.Fatalf("%s: Contains = (%v,%v)", set.Name(), found, err)
		}
		if removed, err := set.Delete(th, 5); err != nil || !removed {
			t.Fatalf("%s: Delete = (%v,%v)", set.Name(), removed, err)
		}
	}
	st := kstm.NewStack()
	if err := st.Push(th, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := st.Pop(th); err != nil || !ok || v != 1 {
		t.Fatalf("stack pop = (%d,%v,%v)", v, ok, err)
	}
}

func TestFacadeExecutorEndToEnd(t *testing.T) {
	s := kstm.New()
	table := kstm.NewHashTable(0)
	sched, err := kstm.NewScheduler(kstm.SchedAdaptive, 0, uint64(table.Buckets()-1), 2, kstm.WithThreshold(500))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := kstm.NewPool(kstm.Config{
		STM: s,
		Workload: kstm.WorkloadFunc(func(th *kstm.Thread, task kstm.Task) (any, error) {
			if task.Op == kstm.OpInsert {
				return table.Insert(th, task.Arg)
			}
			return table.Delete(th, task.Arg)
		}),
		NewSource: func(p int) kstm.TaskSource {
			src := kstm.NewUniform(uint64(p + 1))
			return kstm.SourceFunc(func() kstm.Task {
				key, insert := kstm.SplitKey(src.Next())
				op := kstm.OpInsert
				if !insert {
					op = kstm.OpDelete
				}
				return kstm.Task{Key: uint64(table.Hash(key)), Op: op, Arg: key}
			})
		},
		Workers:   2,
		Producers: 2,
		Model:     kstm.ModelParallel,
		Scheduler: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.RunCount(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5000 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.STM.Commits < 5000 {
		t.Errorf("commits %d < tasks", res.STM.Commits)
	}
}

// TestFacadeOpenExecutor drives the open API end-to-end through the public
// surface: concurrent clients submit dictionary transactions against an
// adaptive executor, one batch goes through SubmitAll, and Drain closes the
// lifecycle with every future resolved.
func TestFacadeOpenExecutor(t *testing.T) {
	table := kstm.NewHashTable(0)
	ex, err := kstm.NewExecutor(
		kstm.WithWorkload(kstm.WorkloadFunc(func(th *kstm.Thread, task kstm.Task) (any, error) {
			if task.Op == kstm.OpInsert {
				return table.Insert(th, task.Arg)
			}
			return table.Delete(th, task.Arg)
		})),
		kstm.WithWorkers(4),
		kstm.WithSchedulerKind(kstm.SchedAdaptive, 0, uint64(table.Buckets()-1), kstm.WithThreshold(500)),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := kstm.NewUniform(uint64(g + 1))
			for i := 0; i < per; i++ {
				key, insert := kstm.SplitKey(src.Next())
				op := kstm.OpDelete
				if insert {
					op = kstm.OpInsert
				}
				if _, err := ex.Submit(ctx, kstm.Task{Key: uint64(table.Hash(key)), Op: op, Arg: key}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	futs, err := ex.SubmitAll(ctx, []kstm.Task{
		{Key: uint64(table.Hash(1)), Op: kstm.OpInsert, Arg: 1},
		{Key: uint64(table.Hash(2)), Op: kstm.OpInsert, Arg: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	const total = goroutines*per + 2
	if st.Completed != total {
		t.Fatalf("completed %d, want %d", st.Completed, total)
	}
	if st.STM.Commits < total {
		t.Errorf("commits %d < completed", st.STM.Commits)
	}
	if _, err := ex.Submit(ctx, kstm.Task{}); !errors.Is(err, kstm.ErrNotRunning) {
		t.Errorf("submit after drain: %v", err)
	}
}

// TestFacadeTypedSharded drives the v2 surface end to end through the
// public API: a sharded executor with per-worker hash tables, typed inserts
// and lookups whose values come back through SubmitTyped, and per-shard
// stats with latency percentiles.
func TestFacadeTypedSharded(t *testing.T) {
	buckets := kstm.NewHashTable(0).Buckets()
	ex, err := kstm.NewExecutor(
		kstm.WithSharding(kstm.ShardPerWorker),
		kstm.WithWorkloadFactory(kstm.WorkloadFactoryFunc(func(worker int) kstm.Workload {
			shard := kstm.NewHashTable(0)
			return kstm.WorkloadFunc(func(th *kstm.Thread, task kstm.Task) (any, error) {
				switch task.Op {
				case kstm.OpInsert:
					return shard.Insert(th, task.Arg)
				case kstm.OpLookup:
					return shard.Contains(th, task.Arg)
				default:
					return shard.Delete(th, task.Arg)
				}
			})
		})),
		kstm.WithWorkers(4),
		// Fixed partitioning: the key→worker mapping is stable, so an
		// insert and its later lookup reach the same shard. (Adaptive
		// works with sharding too, but a mid-run re-partition moves key
		// ranges WITHOUT migrating shard state — the DESIGN.md caveat —
		// which would make this visibility assertion racy.)
		kstm.WithSchedulerKind(kstm.SchedFixed, 0, uint64(buckets-1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		t.Fatal(err)
	}
	hash := func(k uint32) uint64 { return uint64(k) % uint64(buckets) }
	const goroutines, per = 8, 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := uint32(g*per + i)
				added, err := kstm.SubmitTyped[bool](ctx, ex, kstm.Task{Key: hash(key), Op: kstm.OpInsert, Arg: key})
				if err != nil || !added {
					t.Errorf("insert %d = (%v, %v)", key, added, err)
					return
				}
				// The lookup routes by the same key, hence to the same
				// shard: the inserted value must be visible.
				found, err := kstm.SubmitTyped[bool](ctx, ex, kstm.Task{Key: hash(key), Op: kstm.OpLookup, Arg: key})
				if err != nil || !found {
					t.Errorf("lookup %d = (%v, %v)", key, found, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Type mismatch is an error, not a zero value.
	if _, err := kstm.SubmitTyped[string](ctx, ex, kstm.Task{Key: 1, Op: kstm.OpLookup, Arg: 1}); err == nil {
		t.Error("SubmitTyped[string] over a bool value succeeded")
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.Sharding != kstm.ShardPerWorker || len(st.Shards) != 4 {
		t.Fatalf("sharding stats: mode=%q shards=%d", st.Sharding, len(st.Shards))
	}
	var sum uint64
	for _, ss := range st.Shards {
		sum += ss.Completed
	}
	if sum != st.Completed {
		t.Errorf("shard sum %d != completed %d", sum, st.Completed)
	}
	if st.Wait.Count == 0 || st.Service.P99 < st.Service.P50 {
		t.Errorf("latency summaries missing: wait=%v service=%v", st.Wait, st.Service)
	}
}

func TestFacadeSim(t *testing.T) {
	p := kstm.DefaultSimParams()
	p.Workers = 4
	p.Scheduler = kstm.SchedAdaptive
	p.DurationCycles = 30_000_000
	p.WarmupCycles = 10_000_000
	r, err := kstm.SimRun(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 || r.Throughput() <= 0 {
		t.Fatalf("sim result %+v", r)
	}
}

func TestFacadeConcurrentCounter(t *testing.T) {
	s := kstm.New()
	box := kstm.NewBox(0)
	var wg sync.WaitGroup
	const goroutines, per = 4, 250
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < per; i++ {
				if err := th.Atomic(func(tx *kstm.Tx) error {
					v, err := box.Write(tx)
					if err != nil {
						return err
					}
					*v++
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	tx := s.NewThread().Begin()
	v, _ := box.Read(tx)
	if *v != goroutines*per {
		t.Fatalf("counter = %d", *v)
	}
}

func ExampleNewBox() {
	s := kstm.New()
	account := kstm.NewBox(100)
	th := s.NewThread()
	_ = th.Atomic(func(tx *kstm.Tx) error {
		balance, err := account.Write(tx)
		if err != nil {
			return err
		}
		*balance -= 30
		return nil
	})
	tx := th.Begin()
	v, _ := account.Read(tx)
	fmt.Println(*v)
	// Output: 70
}

// migFacadeFactory is the migration quick-start written purely against the
// facade: hash-table shards at full size (every shard agrees with the
// dispatch partition on the key→bucket mapping) exposed as ShardStores.
type migFacadeFactory struct {
	tables []*kstm.HashTable
}

func (f *migFacadeFactory) NewShard(worker int) kstm.Workload {
	table := kstm.NewHashTable(0)
	for len(f.tables) <= worker {
		f.tables = append(f.tables, nil)
	}
	f.tables[worker] = table
	return kstm.WorkloadFunc(func(th *kstm.Thread, t kstm.Task) (any, error) {
		switch t.Op {
		case kstm.OpInsert:
			return table.Insert(th, t.Arg)
		case kstm.OpLookup:
			return table.Contains(th, t.Arg)
		default:
			return nil, fmt.Errorf("bad op %v", t.Op)
		}
	})
}

func (f *migFacadeFactory) Store(worker int) kstm.ShardStore {
	return hashRangeStore{t: f.tables[worker]}
}

// hashRangeStore adapts the exported RangeStore (32-bit scheduling keys) to
// the executor's 64-bit ShardStore ranges.
type hashRangeStore struct{ t *kstm.HashTable }

func (s hashRangeStore) ExtractRange(th *kstm.Thread, lo, hi uint64) ([]uint32, error) {
	if m := uint64(^uint32(0)); hi > m {
		hi = m
	}
	return s.t.ExtractRange(th, uint32(lo), uint32(hi))
}

func (s hashRangeStore) InstallKeys(th *kstm.Thread, keys []uint32) error {
	return s.t.InstallKeys(th, keys)
}

// TestFacadeMigration drives the epoch-fenced migration through exported
// names only: sharded executor, adaptive re-adaptation, WithMigration — a
// key written before the forced re-partition stays readable after it.
func TestFacadeMigration(t *testing.T) {
	factory := &migFacadeFactory{}
	proto := kstm.NewHashTable(0)
	maxKey := uint64(proto.Buckets() - 1)
	keyFn := func(k uint32) uint64 { return uint64(proto.Hash(k)) }
	const threshold = 800
	ex, err := kstm.NewExecutor(
		kstm.WithWorkers(2),
		kstm.WithSharding(kstm.ShardPerWorker),
		kstm.WithWorkloadFactory(factory),
		kstm.WithSchedulerKind(kstm.SchedAdaptive, 0, maxKey,
			kstm.WithThreshold(threshold), kstm.WithReAdaptation()),
		kstm.WithMigration(kstm.MigrateOnRepartition),
	)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Migration() != kstm.MigrateOnRepartition {
		t.Fatalf("Migration() = %q", ex.Migration())
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer ex.Stop()
	// Probe bucket 10000: inside worker 0's uniform half (boundary ~15015
	// of the 30031-bucket space) until the low-key sample mass pulls the
	// PD boundary down to ~2048 and the probe's range moves to worker 1.
	const probe = uint32(10000)
	if found, err := kstm.SubmitTyped[bool](ctx, ex, kstm.Task{Key: keyFn(probe), Op: kstm.OpInsert, Arg: probe}); err != nil || !found {
		t.Fatalf("probe insert: (%v, %v)", found, err)
	}
	// Concentrate sampled mass well below the probe to force a boundary
	// shift on adaptation; the trigger task uses key 1 (never moves).
	for i := 1; i < threshold; i++ {
		k := uint32(i*4) % 4096
		if i == threshold-1 {
			k = 1
		}
		if _, err := ex.Submit(ctx, kstm.Task{Key: keyFn(k), Op: kstm.OpInsert, Arg: k}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for ex.Stats().Migrations.Epochs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no migration epoch after forced re-partition")
		}
		time.Sleep(time.Millisecond)
	}
	found, err := kstm.SubmitTyped[bool](ctx, ex, kstm.Task{Key: keyFn(probe), Op: kstm.OpLookup, Arg: probe})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("pre-migration insert invisible after re-partition with MigrateOnRepartition")
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.Migrations.KeysMoved == 0 || st.SchedulerEpochs == 0 {
		t.Errorf("Migrations = %+v, SchedulerEpochs = %d", st.Migrations, st.SchedulerEpochs)
	}
}
