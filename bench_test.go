// Benchmarks that regenerate every table and figure in the paper's
// evaluation. Each figure family reports the reproduced metric as a custom
// unit: sim_txn/s is throughput on the simulated 16-processor testbed (the
// y axis of Figures 3 and 4), so the *shape* across sub-benchmarks — who
// wins, by what factor, where curves flatten — is the reproduction, not the
// ns/op column. EXPERIMENTS.md records the paper-vs-measured comparison;
// `go run ./cmd/kbench -experiment all` prints the full tables.
package kstm_test

import (
	"fmt"
	"testing"

	"kstm"
	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/harness"
	"kstm/internal/queue"
	"kstm/internal/sim"
	"kstm/internal/stm"
	"kstm/internal/txds"
)

// benchThreads is the paper's 2-16 sweep, thinned to keep -bench runs
// manageable; kbench sweeps every even count.
var benchThreads = []int{2, 8, 16}

// simThroughput runs one simulator configuration per b.N iteration and
// reports mean simulated throughput.
func simThroughput(b *testing.B, p sim.Params) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		r, err := sim.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		total += r.Throughput()
	}
	b.ReportMetric(total/float64(b.N), "sim_txn/s")
}

// benchFig3 is one Figure 3 panel: a distribution swept over schedulers and
// worker counts on the simulated hash table.
func benchFig3(b *testing.B, distName string) {
	for _, sched := range core.SchedulerKinds() {
		for _, w := range benchThreads {
			b.Run(fmt.Sprintf("%s/w%d", sched, w), func(b *testing.B) {
				p := sim.DefaultParams()
				p.Structure = txds.KindHashTable
				p.Dist = distName
				p.Scheduler = sched
				p.Workers = w
				p.Producers = 8
				simThroughput(b, p)
			})
		}
	}
}

func BenchmarkFig3HashtableUniform(b *testing.B)     { benchFig3(b, "uniform") }
func BenchmarkFig3HashtableGaussian(b *testing.B)    { benchFig3(b, "gaussian") }
func BenchmarkFig3HashtableExponential(b *testing.B) { benchFig3(b, "exponential") }

// BenchmarkFig4Overhead reproduces Figure 4: trivial transactions on bare
// threads vs. through the executor (6 producers).
func BenchmarkFig4Overhead(b *testing.B) {
	for _, w := range benchThreads {
		b.Run(fmt.Sprintf("noexecutor/w%d", w), func(b *testing.B) {
			p := sim.DefaultParams()
			p.Structure = sim.Empty
			p.NoExecutor = true
			p.Workers = w
			simThroughput(b, p)
		})
		b.Run(fmt.Sprintf("executor/w%d", w), func(b *testing.B) {
			p := sim.DefaultParams()
			p.Structure = sim.Empty
			p.Workers = w
			p.Producers = 6
			p.Scheduler = core.SchedRoundRobin
			simThroughput(b, p)
		})
	}
}

// benchStructure covers the tech-report companions: red-black tree and
// sorted list under all three distributions (4 producers, as in the paper).
func benchStructure(b *testing.B, kind txds.Kind) {
	for _, d := range dist.Names() {
		for _, sched := range core.SchedulerKinds() {
			b.Run(fmt.Sprintf("%s/%s/w8", d, sched), func(b *testing.B) {
				p := sim.DefaultParams()
				p.Structure = kind
				p.Dist = d
				p.Scheduler = sched
				p.Workers = 8
				p.Producers = 4
				simThroughput(b, p)
			})
		}
	}
}

func BenchmarkTRRBTree(b *testing.B)     { benchStructure(b, txds.KindRBTree) }
func BenchmarkTRSortedList(b *testing.B) { benchStructure(b, txds.KindSortedList) }

// BenchmarkTRContention reports conflicts per transaction (the §4.4 table)
// as a custom metric for the round-robin worst case.
func BenchmarkTRContention(b *testing.B) {
	for _, kind := range txds.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				p := sim.DefaultParams()
				p.Structure = kind
				p.Workers = 8
				p.Scheduler = core.SchedRoundRobin
				p.Seed = uint64(i + 1)
				r, err := sim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				total += r.ContentionRate()
			}
			b.ReportMetric(total/float64(b.N), "conflicts/txn")
		})
	}
}

// BenchmarkAblationThreshold sweeps the adaptive sample threshold.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []int{100, 1000, 10000, 50000} {
		b.Run(fmt.Sprintf("threshold%d", th), func(b *testing.B) {
			p := sim.DefaultParams()
			p.Workers = 8
			p.Scheduler = core.SchedAdaptive
			p.Dist = "exponential"
			p.Threshold = th
			simThroughput(b, p)
		})
	}
}

// BenchmarkAblationWorkSteal measures stealing under skewed fixed
// partitioning.
func BenchmarkAblationWorkSteal(b *testing.B) {
	for _, steal := range []bool{false, true} {
		b.Run(fmt.Sprintf("steal=%v", steal), func(b *testing.B) {
			p := sim.DefaultParams()
			p.Workers = 8
			p.Scheduler = core.SchedFixed
			p.Dist = "exponential"
			p.WorkSteal = steal
			simThroughput(b, p)
		})
	}
}

// BenchmarkAblationQueue compares task-queue implementations on the real
// executor (host-dependent wall-clock numbers).
func BenchmarkAblationQueue(b *testing.B) {
	for _, k := range queue.Kinds() {
		b.Run(string(k), func(b *testing.B) {
			cfg, err := harness.NewRealConfig(txds.KindHashTable, "uniform", core.SchedAdaptive, 2, 2, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg.QueueKind = k
			pool, err := core.NewPool(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.RunCount(2000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationContentionManager stresses each manager on the real STM
// with a deliberately small table.
func BenchmarkAblationContentionManager(b *testing.B) {
	for _, m := range stm.Managers() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			s := stm.New(stm.WithContentionManager(m.New))
			set := txds.NewHashTable(31)
			th := s.NewThread()
			src := dist.NewUniform(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key, insert := dist.Split(src.Next())
				var err error
				if insert {
					_, err = set.Insert(th, key)
				} else {
					_, err = set.Delete(th, key)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSortBatch measures the §2 buffer-reordering capability on
// the real executor.
func BenchmarkAblationSortBatch(b *testing.B) {
	for _, batch := range []int{0, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			cfg, err := harness.NewRealConfig(txds.KindHashTable, "gaussian", core.SchedAdaptive, 2, 2, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg.SortBatch = batch
			pool, err := core.NewPool(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.RunCount(2000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealSTM measures raw STM primitives on this host.
func BenchmarkRealSTM(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		s := kstm.New()
		box := kstm.NewBox(0)
		th := s.NewThread()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Atomic(func(tx *kstm.Tx) error {
				v, err := box.Write(tx)
				if err != nil {
					return err
				}
				*v++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-only", func(b *testing.B) {
		s := kstm.New()
		box := kstm.NewBox(42)
		th := s.NewThread()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Atomic(func(tx *kstm.Tx) error {
				_, err := box.Read(tx)
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, kind := range txds.Kinds() {
		kind := kind
		b.Run(string(kind)+"-ops", func(b *testing.B) {
			s := kstm.New()
			set, err := txds.New(kind)
			if err != nil {
				b.Fatal(err)
			}
			th := s.NewThread()
			src := dist.NewUniform(7)
			// Pre-fill lists modestly so op cost is realistic but bounded.
			limit := uint32(1 << 16)
			if kind == txds.KindSortedList {
				limit = 1 << 10
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key, insert := dist.Split(src.Next())
				key %= limit
				if insert {
					_, err = set.Insert(th, key)
				} else {
					_, err = set.Delete(th, key)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
