package main

import (
	"context"
	"testing"

	"kstm"
	"kstm/internal/txds"
)

func TestBuildExecutorModes(t *testing.T) {
	for _, mode := range []kstm.ShardMode{kstm.ShardShared, kstm.ShardPerWorker} {
		ex, err := buildExecutor(txds.KindHashTable, mode, 2, 64, 10000, false, false)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got := ex.Sharding(); got != mode {
			t.Errorf("sharding = %s, want %s", got, mode)
		}
		if err := ex.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Reject-mode backpressure is wired in: the server sheds, never
		// stalls connection handlers.
		if _, err := ex.Submit(context.Background(), kstm.Task{Key: 1, Op: kstm.OpInsert, Arg: 1}); err != nil {
			t.Fatalf("%s: submit: %v", mode, err)
		}
		if err := ex.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildExecutorRejectsBadConfig(t *testing.T) {
	if _, err := buildExecutor("btree", kstm.ShardShared, 2, 64, 10000, false, false); err == nil {
		t.Error("unknown structure accepted")
	}
	if _, err := buildExecutor(txds.KindHashTable, "replicated", 2, 64, 10000, false, false); err == nil {
		t.Error("unknown sharding mode accepted")
	}
	if _, err := buildExecutor(txds.KindHashTable, kstm.ShardShared, 2, 64, 10000, true, false); err == nil {
		t.Error("-migrate with shared sharding accepted")
	}
}

// TestBuildExecutorMigrate checks the -migrate wiring: perworker shards come
// up migratable and the executor reports the hand-off mode; every structure
// kind builds (all four dictionaries implement RangeStore).
func TestBuildExecutorMigrate(t *testing.T) {
	for _, kind := range []txds.Kind{txds.KindHashTable, txds.KindRBTree, txds.KindSortedList, txds.KindSkipList} {
		ex, err := buildExecutor(kind, kstm.ShardPerWorker, 2, 64, 10000, true, true)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := ex.Migration(); got != kstm.MigrateOnRepartition {
			t.Errorf("%s: Migration() = %q", kind, got)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-structure", "btree", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("unknown structure accepted by run")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
