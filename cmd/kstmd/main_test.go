package main

import (
	"context"
	"testing"

	"kstm"
	"kstm/internal/txds"
)

func TestBuildExecutorModes(t *testing.T) {
	for _, mode := range []kstm.ShardMode{kstm.ShardShared, kstm.ShardPerWorker} {
		ex, err := buildExecutor(string(txds.KindHashTable), mode, 2, 64, 10000, false, false, false)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got := ex.Sharding(); got != mode {
			t.Errorf("sharding = %s, want %s", got, mode)
		}
		if err := ex.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Reject-mode backpressure is wired in: the server sheds, never
		// stalls connection handlers.
		if _, err := ex.Submit(context.Background(), kstm.Task{Key: 1, Op: kstm.OpInsert, Arg: 1}); err != nil {
			t.Fatalf("%s: submit: %v", mode, err)
		}
		if err := ex.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildExecutorRejectsBadConfig(t *testing.T) {
	if _, err := buildExecutor("btree", kstm.ShardShared, 2, 64, 10000, false, false, false); err == nil {
		t.Error("unknown structure accepted")
	}
	if _, err := buildExecutor(string(txds.KindHashTable), "replicated", 2, 64, 10000, false, false, false); err == nil {
		t.Error("unknown sharding mode accepted")
	}
	if _, err := buildExecutor(string(txds.KindHashTable), kstm.ShardShared, 2, 64, 10000, true, false, false); err == nil {
		t.Error("-migrate with shared sharding accepted")
	}
	if _, err := buildExecutor(string(txds.KindHashTable), kstm.ShardShared, 2, 64, 10000, false, false, true); err == nil {
		t.Error("-split without -structure counters accepted")
	}
	if _, err := buildExecutor(structureCounters, kstm.ShardPerWorker, 2, 64, 10000, false, false, true); err == nil {
		t.Error("counters with perworker sharding accepted")
	}
	if _, err := buildExecutor(structureCounters, kstm.ShardShared, 2, 64, 10000, true, false, false); err == nil {
		t.Error("counters with -migrate accepted")
	}
}

// TestBuildExecutorMigrate checks the -migrate wiring: perworker shards come
// up migratable and the executor reports the hand-off mode; every structure
// kind builds (all four dictionaries implement RangeStore).
func TestBuildExecutorMigrate(t *testing.T) {
	for _, kind := range []txds.Kind{txds.KindHashTable, txds.KindRBTree, txds.KindSortedList, txds.KindSkipList} {
		ex, err := buildExecutor(string(kind), kstm.ShardPerWorker, 2, 64, 10000, true, true, false)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := ex.Migration(); got != kstm.MigrateOnRepartition {
			t.Errorf("%s: Migration() = %q", kind, got)
		}
	}
}

// TestBuildExecutorCounters checks the -structure counters wiring, with and
// without -split: the commutative ops round-trip and a lookup reads an int64
// sum either way.
func TestBuildExecutorCounters(t *testing.T) {
	for _, split := range []bool{false, true} {
		ex, err := buildExecutor(structureCounters, kstm.ShardShared, 2, 64, 10000, false, false, split)
		if err != nil {
			t.Fatalf("split=%v: %v", split, err)
		}
		if got := ex.SplitPhase(); got != split {
			t.Errorf("SplitPhase() = %v, want %v", got, split)
		}
		ctx := context.Background()
		if err := ex.Start(ctx); err != nil {
			t.Fatal(err)
		}
		const adds = 50
		for i := 0; i < adds; i++ {
			if res, err := ex.Submit(ctx, kstm.Task{Key: 7, Op: kstm.OpAdd, Arg: 1}); err != nil || res.Err != nil {
				t.Fatalf("split=%v add: %v / %v", split, err, res.Err)
			}
		}
		res, err := ex.Submit(ctx, kstm.Task{Key: 7, Op: kstm.OpLookup})
		if err != nil || res.Err != nil {
			t.Fatalf("split=%v lookup: %v / %v", split, err, res.Err)
		}
		if sum, _ := res.Value.(int64); sum != adds {
			t.Errorf("split=%v: sum = %v, want %d", split, res.Value, adds)
		}
		if err := ex.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-structure", "btree", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("unknown structure accepted by run")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-split", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("-split without -structure counters accepted by run")
	}
}
