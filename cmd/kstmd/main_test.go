package main

import (
	"context"
	"testing"
	"time"

	"kstm"
	"kstm/internal/core"
	"kstm/internal/stm"
	"kstm/internal/txds"
)

func TestBuildExecutorModes(t *testing.T) {
	for _, mode := range []kstm.ShardMode{kstm.ShardShared, kstm.ShardPerWorker} {
		ex, err := buildExecutor(string(txds.KindHashTable), mode, 2, 64, 10000, false, false, false)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got := ex.Sharding(); got != mode {
			t.Errorf("sharding = %s, want %s", got, mode)
		}
		if err := ex.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Reject-mode backpressure is wired in: the server sheds, never
		// stalls connection handlers.
		if _, err := ex.Submit(context.Background(), kstm.Task{Key: 1, Op: kstm.OpInsert, Arg: 1}); err != nil {
			t.Fatalf("%s: submit: %v", mode, err)
		}
		if err := ex.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildExecutorRejectsBadConfig(t *testing.T) {
	if _, err := buildExecutor("btree", kstm.ShardShared, 2, 64, 10000, false, false, false); err == nil {
		t.Error("unknown structure accepted")
	}
	if _, err := buildExecutor(string(txds.KindHashTable), "replicated", 2, 64, 10000, false, false, false); err == nil {
		t.Error("unknown sharding mode accepted")
	}
	if _, err := buildExecutor(string(txds.KindHashTable), kstm.ShardShared, 2, 64, 10000, true, false, false); err == nil {
		t.Error("-migrate with shared sharding accepted")
	}
	if _, err := buildExecutor(string(txds.KindHashTable), kstm.ShardShared, 2, 64, 10000, false, false, true); err == nil {
		t.Error("-split without -structure counters accepted")
	}
	if _, err := buildExecutor(structureCounters, kstm.ShardPerWorker, 2, 64, 10000, false, false, true); err == nil {
		t.Error("counters with perworker sharding accepted")
	}
	if _, err := buildExecutor(structureCounters, kstm.ShardShared, 2, 64, 10000, true, false, false); err == nil {
		t.Error("counters with -migrate accepted")
	}
}

// TestBuildExecutorMigrate checks the -migrate wiring: perworker shards come
// up migratable and the executor reports the hand-off mode; every structure
// kind builds (all four dictionaries implement RangeStore).
func TestBuildExecutorMigrate(t *testing.T) {
	for _, kind := range []txds.Kind{txds.KindHashTable, txds.KindRBTree, txds.KindSortedList, txds.KindSkipList} {
		ex, err := buildExecutor(string(kind), kstm.ShardPerWorker, 2, 64, 10000, true, true, false)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := ex.Migration(); got != kstm.MigrateOnRepartition {
			t.Errorf("%s: Migration() = %q", kind, got)
		}
	}
}

// TestBuildExecutorCounters checks the -structure counters wiring, with and
// without -split: the commutative ops round-trip and a lookup reads an int64
// sum either way.
func TestBuildExecutorCounters(t *testing.T) {
	for _, split := range []bool{false, true} {
		ex, err := buildExecutor(structureCounters, kstm.ShardShared, 2, 64, 10000, false, false, split)
		if err != nil {
			t.Fatalf("split=%v: %v", split, err)
		}
		if got := ex.SplitPhase(); got != split {
			t.Errorf("SplitPhase() = %v, want %v", got, split)
		}
		ctx := context.Background()
		if err := ex.Start(ctx); err != nil {
			t.Fatal(err)
		}
		const adds = 50
		for i := 0; i < adds; i++ {
			if res, err := ex.Submit(ctx, kstm.Task{Key: 7, Op: kstm.OpAdd, Arg: 1}); err != nil || res.Err != nil {
				t.Fatalf("split=%v add: %v / %v", split, err, res.Err)
			}
		}
		res, err := ex.Submit(ctx, kstm.Task{Key: 7, Op: kstm.OpLookup})
		if err != nil || res.Err != nil {
			t.Fatalf("split=%v lookup: %v / %v", split, err, res.Err)
		}
		if sum, _ := res.Value.(int64); sum != adds {
			t.Errorf("split=%v: sum = %v, want %d", split, res.Value, adds)
		}
		if err := ex.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-structure", "btree", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("unknown structure accepted by run")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-split", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("-split without -structure counters accepted by run")
	}
}

// TestDrainTimeoutBounded: -drain-timeout bounds graceful shutdown. A deep
// backlog of slow tasks (which would drain naturally for many seconds) is
// force-stopped when the timer fires: drain returns promptly, the in-flight
// task finishes, and the queued remainder settles under Cancelled — a
// wedged or slow-drained backlog cannot hold shutdown hostage.
func TestDrainTimeoutBounded(t *testing.T) {
	ex, err := core.NewExecutor(
		core.WithWorkers(1),
		core.WithBackpressure(core.BackpressureReject),
		core.WithQueueDepth(1024),
		core.WithWorkload(core.WorkloadFunc(func(_ *stm.Thread, _ core.Task) (any, error) {
			time.Sleep(20 * time.Millisecond)
			return nil, nil
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// ~200 tasks x 20ms on one worker = ~4s of natural drain.
	const backlog = 200
	submitted := 0
	for i := 0; i < backlog; i++ {
		if err := ex.SubmitFunc(ctx, core.Task{Key: uint64(i)}, func(core.TaskResult) {}); err != nil {
			break
		}
		submitted++
	}
	if submitted < 10 {
		t.Fatalf("only %d tasks queued; cannot exercise the timeout", submitted)
	}
	start := time.Now()
	drain(ex, 50*time.Millisecond)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain took %v; timeout did not bound it", elapsed)
	}
	st := ex.Stats()
	if st.Cancelled == 0 {
		t.Error("forced stop settled no queued tasks as cancelled")
	}
	if st.Completed+st.Cancelled != uint64(submitted) {
		t.Errorf("completed(%d)+cancelled(%d) != submitted(%d)",
			st.Completed, st.Cancelled, submitted)
	}
}
