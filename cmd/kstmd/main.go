// Command kstmd serves a transactional dictionary over TCP: a kstm.Executor
// with the paper's adaptive key-based scheduler behind the internal/wire
// protocol (see DESIGN.md "Network front-end"). Clients connect with the
// kstm/client package.
//
// Usage:
//
//	kstmd                                # hash table on :7707, GOMAXPROCS workers
//	kstmd -addr :9000 -workers 8 -structure rbtree
//	kstmd -sharding perworker            # private STM + dictionary per worker
//	kstmd -sharding perworker -migrate   # + epoch-fenced state hand-off on re-adaptation
//	kstmd -queue-depth 1024              # smaller per-worker queues (earlier busy)
//	kstmd -structure counters            # keyed aggregates (add/max/min/topk ops)
//	kstmd -structure counters -split     # + split-phase execution for contended keys
//
// The server sheds load instead of stalling connections: full worker queues
// answer StatusBusy (reject-mode backpressure). A dropped connection cancels
// its queued tasks — they are abandoned before execution and counted under
// ExecStats.Cancelled, never Completed. On SIGINT/SIGTERM the server drains
// gracefully: in-flight transactions finish, new requests answer
// StatusStopped, then the listener and connections close and a final stats
// line is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"kstm"
	"kstm/internal/core"
	"kstm/internal/harness"
	"kstm/internal/txds"
	"kstm/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kstmd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kstmd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":7707", "listen address")
		workers   = fs.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
		structure = fs.String("structure", "hashtable", "structure: hashtable, rbtree, sortedlist, skiplist, or counters (keyed aggregates)")
		sharding  = fs.String("sharding", "shared", "state partitioning: shared or perworker")
		depth     = fs.Int("queue-depth", 4096, "per-worker queue bound (busy above it)")
		threshold = fs.Int("threshold", 10000, "adaptive sample threshold (the paper's 10000)")
		migrate   = fs.Bool("migrate", false, "move shard state on re-partition (requires -sharding perworker); keeps read-your-writes across adaptations")
		readapt   = fs.Bool("readapt", false, "re-estimate the key distribution every threshold samples instead of adapting once")
		split      = fs.Bool("split", false, "split-phase execution for contended keys (requires -structure counters)")
		statsEach  = fs.Duration("stats", 0, "periodic stats line interval (0 = off)")
		admitRate  = fs.Float64("admit-rate", 0, "per-connection admission rate, requests/sec (0 = no admission control)")
		admitBurst = fs.Int("admit-burst", 1, "per-connection admission burst above the steady rate")
		drainTO    = fs.Duration("drain-timeout", 0, "bound on graceful drain at shutdown; on expiry queued tasks are force-stopped (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ex, err := buildExecutor(*structure, kstm.ShardMode(*sharding), *workers, *depth, *threshold, *migrate, *readapt, *split)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := ex.Start(context.Background()); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		ex.Stop()
		return err
	}
	// The dictionary protocol ends at OpNoop; anything above it is a
	// client bug answered with StatusBadRequest before submission. The
	// counter structure additionally speaks the commutative aggregate
	// opcodes (through OpTopK) and dispatches over its own smaller key
	// space. Keys fold into the scheduler's space either way, so clients
	// may route by any 64-bit value (e.g. their own hashes) without
	// collapsing dispatch onto one worker.
	maxOp, keyMask := uint8(kstm.OpNoop), uint64(kstm.MaxKey)
	if *structure == structureCounters {
		maxOp, keyMask = uint8(kstm.OpTopK), harness.ContentionCounters-1
	}
	sopts := []server.Option{
		server.WithMaxOp(maxOp),
		server.WithKeyMask(keyMask),
	}
	if *admitRate > 0 {
		sopts = append(sopts, server.WithAdmission(*admitRate, *admitBurst))
	}
	if *migrate {
		// Hand-off ranges live in the masked dispatch space: an Arg above
		// it would dispatch by its masked key but never be extracted by a
		// dictionary-key range — stranded across re-partitions. Bound Arg
		// to the dictionary space so the migration guarantee is airtight.
		sopts = append(sopts, server.WithMaxArg(kstm.MaxKey))
	}
	srv := server.New(ex, sopts...)
	log.Printf("kstmd: serving %s (%s, %d workers, %s sharding, split=%v) on %s",
		*structure, ex.Scheduler().Name(), ex.Workers(), ex.Sharding(), ex.SplitPhase(), ln.Addr())

	if *statsEach > 0 {
		go func() {
			t := time.NewTicker(*statsEach)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					logStats(ex, srv)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()

	var served bool
	var serveResult error
	select {
	case <-ctx.Done():
	case serveResult = <-serveErr:
		served = true
		// Serve can return (nil) because the signal just closed its
		// listener and win the race against ctx.Done; only a return with
		// no signal pending is a real serve failure.
		if ctx.Err() == nil {
			ex.Stop()
			return serveResult
		}
	}
	// Graceful drain: close submission first so every queued transaction
	// finishes and connected clients see StatusStopped for new requests,
	// then sever connections and stop accepting.
	log.Printf("kstmd: signal received, draining")
	if err := drain(ex, *drainTO); err != nil {
		log.Printf("kstmd: drain: %v", err)
	}
	srv.Close()
	if !served {
		serveResult = <-serveErr
	}
	logStats(ex, srv)
	return serveResult
}

// structureCounters selects the keyed-aggregate counter bank instead of a
// dictionary. It is not a txds.Kind: the counter protocol (commutative
// opcodes, int64 lookups, split-phase support) is the executor layer's,
// not the dictionary benchmarks'.
const structureCounters = "counters"

// buildExecutor assembles the executor for a dictionary structure, shared or
// per-worker sharded, with reject-mode backpressure — a server sheds load
// rather than stalling connection handlers. With migrate set, shards are
// built migratable (hash tables at full prototype size) and the executor
// runs the epoch-fenced hand-off on every re-partition. The counters
// structure serves keyed aggregates instead, optionally under split-phase
// execution for its contended keys.
func buildExecutor(structure string, mode kstm.ShardMode, workers, depth, threshold int, migrate, readapt, split bool) (*kstm.Executor, error) {
	kind := txds.Kind(structure)
	if split && structure != structureCounters {
		return nil, fmt.Errorf("-split requires -structure counters (dictionary ops do not commute)")
	}
	if structure == structureCounters {
		if mode != kstm.ShardShared {
			return nil, fmt.Errorf("-structure counters requires -sharding shared")
		}
		if migrate {
			return nil, fmt.Errorf("-structure counters is incompatible with -migrate")
		}
		opts := []core.Option{
			core.WithBackpressure(core.BackpressureReject),
			core.WithQueueDepth(depth),
			core.WithWorkload(harness.NewCounterWorkload(txds.NewCounters(harness.ContentionCounters))),
			core.WithSchedulerKind(core.SchedFixed, 0, harness.ContentionCounters-1),
		}
		if workers > 0 {
			opts = append(opts, core.WithWorkers(workers))
		}
		if split {
			opts = append(opts, core.WithSplitPhase())
		}
		return core.NewExecutor(opts...)
	}
	opts := []core.Option{
		core.WithBackpressure(core.BackpressureReject),
		core.WithQueueDepth(depth),
	}
	if workers > 0 {
		opts = append(opts, core.WithWorkers(workers))
	}
	switch mode {
	case kstm.ShardShared:
		if migrate {
			return nil, fmt.Errorf("-migrate requires -sharding perworker (shared state needs no migration)")
		}
		set, err := txds.New(kind)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.WithWorkload(harness.NewDictWorkload(set)))
	case kstm.ShardPerWorker:
		n := workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		factory := harness.NewDictFactory(kind, n)
		if migrate {
			// Wire clients dispatch on their own (key-masked) Task.Key —
			// the dictionary key, not a hash output — so hand-off ranges
			// must be dictionary-key ranges too (key-range stores), or a
			// hash table would migrate bucket ranges the partition never
			// moved.
			factory = harness.NewKeyRangeDictFactory(kind)
			opts = append(opts, core.WithMigration(core.MigrateOnRepartition))
		}
		opts = append(opts,
			core.WithSharding(core.ShardPerWorker),
			core.WithWorkloadFactory(factory),
			core.WithWorkers(n))
	default:
		return nil, fmt.Errorf("unknown -sharding %q (want shared or perworker)", mode)
	}
	aopts := []core.AdaptiveOption{core.WithThreshold(threshold)}
	if readapt {
		aopts = append(aopts, core.WithReAdaptation())
	}
	opts = append(opts, core.WithSchedulerKind(core.SchedAdaptive, 0, kstm.MaxKey, aopts...))
	return core.NewExecutor(opts...)
}

// drain runs a graceful executor drain bounded by timeout (0 = unbounded).
// On expiry it forces Stop: in-flight transactions still finish (workers
// exit after their current task), but the queued backlog settles with
// ErrStopped and lands under ExecStats.Cancelled — a wedged or slow-drained
// backlog cannot hold shutdown hostage (DESIGN.md §10.2).
func drain(ex *kstm.Executor, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- ex.Drain() }()
	if timeout <= 0 {
		return <-done
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		log.Printf("kstmd: drain exceeded %v, forcing stop", timeout)
		ex.Stop()
		return <-done
	}
}

// logStats prints one operator line: executor counters (with the corrected
// Completed/Cancelled split) plus the server's own view. It is a statsfold
// target of server.Stats: every server counter must appear here, so the
// pairs below report executor-side/server-side (tasks vs responses — they
// diverge when response delivery is best-effort, e.g. cancellation).
func logStats(ex *kstm.Executor, srv *server.Server) {
	st := ex.Stats()
	ss := srv.Stats()
	log.Printf("kstmd: state=%s conns=%d/%d req=%d resp=%d completed=%d cancelled=%d/%d busy=%d deadline=%d/%d admitted=%d admit_rej=%d failed=%d/%d stopped=%d badreq=%d proto_err=%d imbalance=%.2f wait_p95=%v svc_p95=%v migrations=%d/%dkeys/%v split=%dkeys/%depochs/%dparked/%v",
		st.State, ss.OpenConns, ss.Conns, ss.Requests, ss.Responses,
		st.Completed, st.Cancelled, ss.Cancelled, ss.Busy,
		st.DeadlineExpired, ss.Deadline, ss.Admitted, ss.AdmitRejected,
		st.Failed, ss.Failed,
		ss.Stopped, ss.BadRequest, ss.ProtocolErrors,
		st.LoadImbalance(), st.Wait.P95, st.Service.P95,
		ss.Migrations.Epochs, ss.Migrations.KeysMoved, time.Duration(ss.Migrations.PauseNs),
		ss.Split.Keys, ss.Split.MergedEpochs, ss.Split.ParkedTasks, time.Duration(ss.Split.MergeNs))
}
