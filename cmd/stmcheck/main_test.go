package main

import "testing"

func TestChecksPassWithDefaults(t *testing.T) {
	if err := run([]string{"-ops", "300", "-goroutines", "2", "-manager", "polka"}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksPassAggressive(t *testing.T) {
	if err := run([]string{"-ops", "200", "-goroutines", "3", "-manager", "aggressive"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownManagerRejected(t *testing.T) {
	if err := run([]string{"-manager", "zen"}); err == nil {
		t.Fatal("unknown manager accepted")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestChecksRegistry(t *testing.T) {
	cs := checks()
	if len(cs) < 5 {
		t.Fatalf("only %d checks", len(cs))
	}
	for _, c := range cs {
		if c.name == "" || c.run == nil {
			t.Errorf("incomplete check %+v", c)
		}
	}
}
