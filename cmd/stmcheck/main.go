// Command stmcheck stress-tests the STM's correctness on this host: it runs
// concurrent workloads whose outcomes have checkable invariants (lost-update
// freedom, conserved bank totals, red-black tree shape, dictionary-vs-oracle
// agreement) under every contention manager, and reports the statistics.
//
// Usage:
//
//	stmcheck                  # default: all checks, all managers, ~seconds
//	stmcheck -ops 20000 -goroutines 8
//	stmcheck -manager polka   # a single manager
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"

	"kstm/internal/rng"
	"kstm/internal/stm"
	"kstm/internal/txds"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stmcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stmcheck", flag.ContinueOnError)
	var (
		ops        = fs.Int("ops", 5000, "operations per goroutine per check")
		goroutines = fs.Int("goroutines", 4, "concurrent goroutines per check")
		manager    = fs.String("manager", "", "single contention manager (default: all)")
		seed       = fs.Uint64("seed", 1, "PRNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	managers := stm.Managers()
	if *manager != "" {
		factory, err := stm.ManagerByName(*manager)
		if err != nil {
			return err
		}
		managers = managers[:0]
		managers = append(managers, struct {
			Name string
			New  func() stm.ContentionManager
		}{*manager, factory})
	}

	failures := 0
	for _, m := range managers {
		fmt.Printf("== contention manager: %s\n", m.Name)
		s := stm.New(stm.WithContentionManager(m.New))
		for _, check := range checks() {
			err := check.run(s, *goroutines, *ops, *seed)
			status := "ok"
			if err != nil {
				status = "FAIL: " + err.Error()
				failures++
			}
			fmt.Printf("   %-24s %s\n", check.name, status)
		}
		st := s.Stats()
		fmt.Printf("   stats: %s\n", st)
	}
	if failures > 0 {
		return fmt.Errorf("%d check(s) failed", failures)
	}
	fmt.Println("all checks passed")
	return nil
}

type check struct {
	name string
	run  func(s *stm.STM, goroutines, ops int, seed uint64) error
}

func checks() []check {
	return []check{
		{"lost-update counter", checkCounter},
		{"bank conservation", checkBank},
		{"hashtable vs oracle", func(s *stm.STM, g, o int, seed uint64) error {
			return checkDictionary(s, txds.NewHashTable(64), g, o, seed)
		}},
		{"rbtree invariants", checkRBTree},
		{"sortedlist order", checkSortedList},
	}
}

// checkCounter: concurrent increments must not lose updates.
func checkCounter(s *stm.STM, goroutines, ops int, seed uint64) error {
	box := stm.NewBox(0)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < ops; i++ {
				if err := th.Atomic(func(tx *stm.Tx) error {
					v, err := box.Write(tx)
					if err != nil {
						return err
					}
					*v++
					return nil
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	tx := s.NewThread().Begin()
	v, err := box.Read(tx)
	if err != nil {
		return err
	}
	if *v != goroutines*ops {
		return fmt.Errorf("counter = %d, want %d", *v, goroutines*ops)
	}
	return nil
}

// checkBank: random transfers conserve the total while a concurrent auditor
// reads consistent snapshots.
func checkBank(s *stm.STM, goroutines, ops int, seed uint64) error {
	const accounts = 16
	boxes := make([]stm.Box[int], accounts)
	for i := range boxes {
		boxes[i] = stm.NewBox(1000)
	}
	total := accounts * 1000
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.NewThread()
			r := rng.New(seed + uint64(id))
			for i := 0; i < ops; i++ {
				from := r.Intn(accounts)
				to := r.Intn(accounts)
				if from == to {
					continue
				}
				if err := th.Atomic(func(tx *stm.Tx) error {
					wf, err := boxes[from].Write(tx)
					if err != nil {
						return err
					}
					wt, err := boxes[to].Write(tx)
					if err != nil {
						return err
					}
					*wf--
					*wt++
					return nil
				}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		th := s.NewThread()
		for audits := 0; audits < 50; audits++ {
			sum := 0
			if err := th.Atomic(func(tx *stm.Tx) error {
				// Reinitialize at closure entry: an aborted attempt re-runs
				// the closure, and without this reset the partial sum from
				// the failed attempt would carry over (kstmvet:atomiceffect).
				sum = 0
				for i := range boxes {
					v, err := boxes[i].Read(tx)
					if err != nil {
						return err
					}
					sum += *v
				}
				return nil
			}); err != nil {
				errs <- err
				return
			}
			if sum != total {
				errs <- fmt.Errorf("audit total %d, want %d", sum, total)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	close(errs)
	return <-errs
}

// checkDictionary: concurrent random churn, then a single-threaded diff
// against a replayed oracle is impossible (interleaving unknown), so check
// structural sanity: no duplicates observable through Contains/Delete.
func checkDictionary(s *stm.STM, set txds.IntSet, goroutines, ops int, seed uint64) error {
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.NewThread()
			r := rng.New(seed + uint64(id)*7)
			for i := 0; i < ops; i++ {
				key := uint32(r.Uint64n(256))
				var err error
				if r.Uint64()&1 == 0 {
					_, err = set.Insert(th, key)
				} else {
					_, err = set.Delete(th, key)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	// Deleting every key twice: the second delete must report absent.
	th := s.NewThread()
	for key := uint32(0); key < 256; key++ {
		first, err := set.Delete(th, key)
		if err != nil {
			return err
		}
		second, err := set.Delete(th, key)
		if err != nil {
			return err
		}
		if second {
			return fmt.Errorf("key %d deleted twice (duplicate insert; first=%v)", key, first)
		}
	}
	return nil
}

// checkRBTree: concurrent churn must preserve the red-black invariants.
func checkRBTree(s *stm.STM, goroutines, ops int, seed uint64) error {
	tree := txds.NewRBTree()
	if err := checkDictionaryNoDrain(s, tree, goroutines, ops, seed); err != nil {
		return err
	}
	th := s.NewThread()
	if _, err := tree.CheckInvariants(th); err != nil {
		return err
	}
	keys, err := tree.Keys(th)
	if err != nil {
		return err
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		return fmt.Errorf("in-order walk unsorted")
	}
	return nil
}

// checkSortedList: concurrent churn must keep the list sorted and
// duplicate-free.
func checkSortedList(s *stm.STM, goroutines, ops int, seed uint64) error {
	l := txds.NewSortedList()
	if err := checkDictionaryNoDrain(s, l, goroutines, ops/4, seed); err != nil {
		return err
	}
	th := s.NewThread()
	keys, err := l.Keys(th)
	if err != nil {
		return err
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return fmt.Errorf("list out of order at %d: %d >= %d", i, keys[i-1], keys[i])
		}
	}
	return nil
}

// checkDictionaryNoDrain is the churn phase shared by the structure checks.
func checkDictionaryNoDrain(s *stm.STM, set txds.IntSet, goroutines, ops int, seed uint64) error {
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.NewThread()
			r := rng.New(seed + uint64(id)*13)
			for i := 0; i < ops; i++ {
				key := uint32(r.Uint64n(512))
				var err error
				if r.Uint64()&1 == 0 {
					_, err = set.Insert(th, key)
				} else {
					_, err = set.Delete(th, key)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	return <-errs
}
