// Command kstmvet is this repository's static analyzer suite: seven
// repo-specific checks for contracts the Go compiler cannot see, built on
// the stdlib-only driver and fact-propagation core in internal/analysis
// (DESIGN.md §8).
//
//	atomiceffect   side effects in Atomic closures (aborts re-run them)
//	txerrcheck     dropped/swallowed stm/txds errors (ErrAborted must reach
//	               the retry loop)
//	futureconsume  Future used after the consuming Wait/WaitValue (§3.5)
//	padalign       //kstmvet:padalign structs stay cache-line multiples
//	hotpathalloc   //kstmvet:hotpath functions stay allocation-free,
//	               verified against go build -gcflags=-m escape diagnostics
//	lockorder      cyclic lock acquisition and blocking while a lock is held
//	statsfold      every //kstmvet:statsfold struct field is folded by its
//	               target functions (Stats(), the kstmd stats mirror)
//
// Usage:
//
//	kstmvet ./...             # analyze, print findings, exit 1 if any
//	kstmvet -json ./... > kstmvet.json
//	kstmvet -list             # list analyzers
//	kstmvet -run padalign ./internal/core
//
// Findings are suppressed by a trailing (or directly preceding) comment
//
//	//kstmvet:ignore <reason>
//
// The reason is mandatory; suppressed findings still appear in -json output
// as an auditable inventory. Output is deterministic: diagnostics are
// sorted by (file, line, analyzer) and deduplicated, with paths relative to
// the working directory. Exit codes: 0 clean, 1 findings, 2 failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"kstm/internal/analysis"
	"kstm/internal/analysis/atomiceffect"
	"kstm/internal/analysis/futureconsume"
	"kstm/internal/analysis/hotpathalloc"
	"kstm/internal/analysis/lockorder"
	"kstm/internal/analysis/padalign"
	"kstm/internal/analysis/statsfold"
	"kstm/internal/analysis/txerrcheck"
)

func allAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomiceffect.Analyzer,
		txerrcheck.Analyzer,
		futureconsume.Analyzer,
		padalign.Analyzer,
		hotpathalloc.Analyzer,
		lockorder.Analyzer,
		statsfold.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json document: the full diagnostic inventory plus the
// live/suppressed split the CI artifact graphs.
type report struct {
	Live        int                   `json:"live"`
	Suppressed  int                   `json:"suppressed"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kstmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit the diagnostic inventory as JSON on stdout")
		list    = fs.Bool("list", false, "list analyzers and exit")
		runSel  = fs.String("run", "", "comma-separated analyzer subset (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := allAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runSel != "" {
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*runSel, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range analyzers {
				if a.Name == name {
					selected = append(selected, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "kstmvet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
		}
		analyzers = selected
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load("", patterns)
	if err != nil {
		fmt.Fprintln(stderr, "kstmvet:", err)
		return 2
	}
	// Hand the compiler's escape diagnostics to the fact core: hotpathalloc
	// then checks annotated functions against what the optimizer actually
	// decided, not a syntactic guess. The build replays from cache, so this
	// costs one no-op build of the target packages.
	var pkgPaths []string
	for _, pkg := range prog.Packages {
		pkgPaths = append(pkgPaths, pkg.Path)
	}
	esc, err := analysis.CollectEscapes("", pkgPaths)
	if err != nil {
		fmt.Fprintln(stderr, "kstmvet:", err)
		return 2
	}
	prog.SetEscapes(esc)
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "kstmvet:", err)
		return 2
	}
	relativize(diags)

	live := analysis.Live(diags)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(report{Live: live, Suppressed: len(diags) - live, Diagnostics: diags}); err != nil {
			fmt.Fprintln(stderr, "kstmvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			if !d.Suppressed {
				fmt.Fprintln(stdout, d)
			}
		}
		if n := len(diags) - live; n > 0 {
			fmt.Fprintf(stderr, "kstmvet: %d finding(s) suppressed by kstmvet:ignore\n", n)
		}
	}
	if live > 0 {
		fmt.Fprintf(stderr, "kstmvet: %d finding(s) in %d package(s)\n", live, len(prog.Packages))
		return 1
	}
	return 0
}

// relativize rewrites diagnostic paths relative to the working directory —
// stable output for humans, CI logs, and the golden-file test. Analysis
// itself (and suppression matching) runs on absolute paths; only the
// presentation changes.
func relativize(diags []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}
