// Command kstmvet is this repository's static analyzer suite: four
// repo-specific checks for contracts the Go compiler cannot see, built on
// the stdlib-only driver in internal/analysis (DESIGN.md §8).
//
//	atomiceffect   side effects in Atomic closures (aborts re-run them)
//	txerrcheck     dropped/swallowed stm/txds errors (ErrAborted must reach
//	               the retry loop)
//	futureconsume  Future used after the consuming Wait/WaitValue (§3.5)
//	padalign       //kstmvet:padalign structs stay cache-line multiples
//
// Usage:
//
//	kstmvet ./...             # analyze, print findings, exit 1 if any
//	kstmvet -json ./... > kstmvet.json
//	kstmvet -list             # list analyzers
//	kstmvet -run padalign ./internal/core
//
// Findings are suppressed by a trailing (or directly preceding) comment
//
//	//kstmvet:ignore <reason>
//
// The reason is mandatory; suppressed findings still appear in -json output
// as an auditable inventory. Exit codes: 0 clean, 1 findings, 2 failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kstm/internal/analysis"
	"kstm/internal/analysis/atomiceffect"
	"kstm/internal/analysis/futureconsume"
	"kstm/internal/analysis/padalign"
	"kstm/internal/analysis/txerrcheck"
)

func allAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomiceffect.Analyzer,
		txerrcheck.Analyzer,
		futureconsume.Analyzer,
		padalign.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json document: the full diagnostic inventory plus the
// live/suppressed split the CI artifact graphs.
type report struct {
	Live        int                   `json:"live"`
	Suppressed  int                   `json:"suppressed"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kstmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit the diagnostic inventory as JSON on stdout")
		list    = fs.Bool("list", false, "list analyzers and exit")
		runSel  = fs.String("run", "", "comma-separated analyzer subset (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := allAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runSel != "" {
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*runSel, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range analyzers {
				if a.Name == name {
					selected = append(selected, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "kstmvet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
		}
		analyzers = selected
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load("", patterns)
	if err != nil {
		fmt.Fprintln(stderr, "kstmvet:", err)
		return 2
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "kstmvet:", err)
		return 2
	}

	live := analysis.Live(diags)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(report{Live: live, Suppressed: len(diags) - live, Diagnostics: diags}); err != nil {
			fmt.Fprintln(stderr, "kstmvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			if !d.Suppressed {
				fmt.Fprintln(stdout, d)
			}
		}
		if n := len(diags) - live; n > 0 {
			fmt.Fprintf(stderr, "kstmvet: %d finding(s) suppressed by kstmvet:ignore\n", n)
		}
	}
	if live > 0 {
		fmt.Fprintf(stderr, "kstmvet: %d finding(s) in %d package(s)\n", live, len(prog.Packages))
		return 1
	}
	return 0
}
