// Package golden pins kstmvet's -json output byte for byte (see
// TestGolden in cmd/kstmvet). It plants one finding per contract analyzer
// whose message is independent of the compiler version — lockorder and
// statsfold, whose diagnostics come from the fact core's syntax walk, not
// from escape analysis — plus one suppressed finding, so the golden file
// also pins the auditable-inventory shape. Keep hotpath annotations out of
// this package: escape diagnostics vary across toolchains.
package golden

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// aThenB and bThenA nest the two mutexes in opposite orders: the planted
// lock-order cycle.
func aThenB() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func bThenA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// gauges declares the statsfold contract against snapshot below, which
// folds up and down but not drift — the planted missing fold.
//
//kstmvet:statsfold snapshot
type gauges struct {
	up    uint64
	down  uint64
	drift uint64
}

func snapshot(g *gauges) (uint64, uint64) {
	return g.up, g.down
}

// handoff blocks while holding muA; the suppression carries the reason the
// golden file pins into the JSON inventory.
func handoff(ch chan int) {
	muA.Lock()
	ch <- 1 //kstmvet:ignore golden fixture: audited handoff under lock
	muA.Unlock()
}
