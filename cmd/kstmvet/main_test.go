package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden/golden.json from current output")

// chdirRoot runs the driver from the module root like CI does.
func chdirRoot(t *testing.T) {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
	t.Chdir(dir)
}

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"atomiceffect", "txerrcheck", "futureconsume", "padalign"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCleanPackage(t *testing.T) {
	chdirRoot(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"./internal/rng"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on clean package\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestGolden pins the -json output byte for byte: diagnostic order,
// message text, path relativization, and the suppressed-finding inventory
// are all part of the CLI contract (CI artifacts diff this output). The
// golden package plants only syntax-derived findings — lockorder and
// statsfold — so the bytes do not depend on the compiler's escape analysis.
// Regenerate with: go test ./cmd/kstmvet -run TestGolden -update
func TestGolden(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(wd) != "kstmvet" {
		t.Fatalf("expected to run from cmd/kstmvet, got %s", wd)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./testdata/golden"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 (the golden package plants live findings)\nstderr: %s", code, errOut.String())
	}
	goldenPath := filepath.Join("testdata", "golden", "golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output drifted from %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			goldenPath, out.String(), want)
	}
}

// copyModule copies the module's Go sources (and go.mod) into dst so a
// mutation test can break a contract without touching the real tree.
func copyModule(t *testing.T, root, dst string) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); path != root && (name == ".git" || name == ".github") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") && d.Name() != "go.mod" && d.Name() != "go.sum" {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mutate rewrites one file in the copied module, asserting the edit landed.
func mutate(t *testing.T, dir, rel, old, new string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(old)) {
		t.Fatalf("%s no longer contains %q — update the mutation test", rel, old)
	}
	b = bytes.Replace(b, []byte(old), []byte(new), 1)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

// TestMutationStatsFold is the acceptance check for statsfold: deleting the
// Cancelled fold from Executor.Stats() must reproduce an exit-1 finding.
func TestMutationStatsFold(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation tests copy and re-analyze the module")
	}
	dst := t.TempDir()
	copyModule(t, moduleRoot(t), dst)
	mutate(t, dst, filepath.Join("internal", "core", "executor.go"),
		"s.Cancelled += wc.cancelled.Load()\n", "")
	t.Chdir(dst)
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "statsfold", "./internal/core"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 after deleting the Cancelled fold\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "ExecStats.Cancelled is not folded") {
		t.Errorf("finding does not name the unfolded field:\n%s", out.String())
	}
}

// TestMutationHotPathAlloc is the acceptance check for hotpathalloc: adding
// a fmt.Sprintf to Submit must reproduce an exit-1 finding.
func TestMutationHotPathAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation tests copy and re-analyze the module")
	}
	dst := t.TempDir()
	copyModule(t, moduleRoot(t), dst)
	mutate(t, dst, filepath.Join("internal", "core", "executor.go"),
		"func (e *Executor) Submit(ctx context.Context, t Task) (TaskResult, error) {",
		"func (e *Executor) Submit(ctx context.Context, t Task) (TaskResult, error) {\n\t_ = fmt.Sprintf(\"%x\", t.Key)")
	t.Chdir(dst)
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "hotpathalloc", "./internal/core"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 after planting fmt.Sprintf in Submit\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "deny-listed fmt.Sprintf") {
		t.Errorf("finding does not name the deny-listed call:\n%s", out.String())
	}
}

func TestJSONShape(t *testing.T) {
	chdirRoot(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./internal/rng"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Live != 0 || rep.Diagnostics == nil {
		t.Errorf("unexpected report: %+v", rep)
	}
}
