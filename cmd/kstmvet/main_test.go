package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirRoot runs the driver from the module root like CI does.
func chdirRoot(t *testing.T) {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
	t.Chdir(dir)
}

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"atomiceffect", "txerrcheck", "futureconsume", "padalign"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCleanPackage(t *testing.T) {
	chdirRoot(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"./internal/rng"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on clean package\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

func TestJSONShape(t *testing.T) {
	chdirRoot(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./internal/rng"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Live != 0 || rep.Diagnostics == nil {
		t.Errorf("unexpected report: %+v", rep)
	}
}
