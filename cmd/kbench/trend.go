package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// runTrend folds archived kbench -json snapshots (the BENCH_smoke.json CI
// artifacts) into per-experiment perf-trajectory tables: one row per
// snapshot, one column per experiment configuration, values from each
// table's throughput column (tables without one are skipped). Patterns may
// be file paths or globs; snapshots render in sorted filename order, so
// date- or PR-numbered archives read chronologically.
//
// A bad archive entry must not sink the whole table: unreadable or
// malformed snapshot files, and exact duplicates of an already-loaded
// snapshot under another path, are skipped with a per-file warning on
// stderr. Only an empty result (no usable snapshot at all) is an error.
//
// The rendered table ends with a "Δ% vs prev" row: each configuration's
// relative change from the previous snapshot that has a value to the newest
// one. With gatePct > 0 the delta doubles as a CI perf-regression gate: any
// series whose experiment is named in gateExps (comma-separated table IDs)
// and whose newest value dropped more than gatePct percent fails the run
// with a non-nil error.
func runTrend(w io.Writer, patterns []string, asCSV bool, gatePct float64, gateExps string) error {
	if len(patterns) == 0 {
		return fmt.Errorf("-trend needs snapshot files or globs (e.g. bench/*.json)")
	}
	var files []string
	for _, p := range patterns {
		matches, err := filepath.Glob(p)
		if err != nil {
			return fmt.Errorf("bad pattern %q: %w", p, err)
		}
		if len(matches) == 0 {
			return fmt.Errorf("no snapshots match %q", p)
		}
		files = append(files, matches...)
	}
	// Sort by base name (then path), so PR-numbered archives read
	// chronologically and the current build's BENCH_smoke.json lands last
	// regardless of which directory it sits in.
	sort.Slice(files, func(i, j int) bool {
		bi, bj := filepath.Base(files[i]), filepath.Base(files[j])
		if bi != bj {
			return bi < bj
		}
		return files[i] < files[j]
	})

	type series struct {
		label  string             // e.g. "sharding/throughput mode=1"
		values map[string]float64 // snapshot name -> value
	}
	var order []string
	byLabel := map[string]*series{}
	var snaps []string
	seen := map[string]bool{}
	// Snapshots display as base filenames, unless two distinct files share
	// a base (e.g. bench/BENCH_smoke.json alongside ./BENCH_smoke.json) —
	// those keep their full paths so neither row shadows the other.
	baseCount := map[string]int{}
	for _, f := range files {
		if !seen[f] {
			baseCount[filepath.Base(f)]++
		}
		seen[f] = true
	}
	clear(seen)
	contentOf := map[string]string{} // snapshot content -> first file loaded with it
	for _, f := range files {
		if seen[f] {
			continue
		}
		seen[f] = true
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kbench: trend: skipping %s: %v\n", f, err)
			continue
		}
		if first, dup := contentOf[string(data)]; dup {
			fmt.Fprintf(os.Stderr, "kbench: trend: skipping %s: duplicate of %s\n", f, first)
			continue
		}
		var rep jsonReport
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "kbench: trend: skipping %s: not a kbench -json snapshot: %v\n", f, err)
			continue
		}
		contentOf[string(data)] = f
		snap := filepath.Base(f)
		if baseCount[snap] > 1 {
			snap = f
		}
		snaps = append(snaps, snap)
		for _, tb := range rep.Tables {
			metric, col := metricColumn(tb.Cols)
			if col < 0 {
				continue
			}
			for _, row := range tb.Rows {
				if col >= len(row) {
					continue
				}
				label := fmt.Sprintf("%s/%s %s=%g", tb.ID, metric, tb.Cols[0], row[0])
				s, ok := byLabel[label]
				if !ok {
					s = &series{label: label, values: map[string]float64{}}
					byLabel[label] = s
					order = append(order, label)
				}
				s.values[snap] = row[col]
			}
		}
	}
	if len(order) == 0 {
		return fmt.Errorf("no metric tables found in %d snapshot(s)", len(snaps))
	}

	// Per-series delta: the newest snapshot's value against the most recent
	// earlier snapshot that has one. Series missing from the newest
	// snapshot, or with no earlier value, have no delta.
	deltaOf := map[string]float64{}
	hasDelta := map[string]bool{}
	if len(snaps) >= 2 {
		last := snaps[len(snaps)-1]
		for _, label := range order {
			s := byLabel[label]
			cur, ok := s.values[last]
			if !ok {
				continue
			}
			for i := len(snaps) - 2; i >= 0; i-- {
				if prev, ok := s.values[snaps[i]]; ok && prev != 0 {
					deltaOf[label] = (cur - prev) / prev * 100
					hasDelta[label] = true
					break
				}
			}
		}
	}
	deltaCell := func(label string) string {
		if !hasDelta[label] {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", deltaOf[label])
	}

	// Render: snapshots down, configurations across, the delta row last.
	const deltaRowName = "Δ% vs prev"
	cols := append([]string{"snapshot"}, order...)
	if asCSV {
		fmt.Fprintln(w, strings.Join(cols, ","))
		for _, snap := range snaps {
			cells := []string{snap}
			for _, label := range order {
				cells = append(cells, trendCell(byLabel[label].values, snap))
			}
			fmt.Fprintln(w, strings.Join(cells, ","))
		}
		cells := []string{deltaRowName}
		for _, label := range order {
			cells = append(cells, deltaCell(label))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
		return gateCheck(gatePct, gateExps, order, deltaOf, hasDelta)
	}
	fmt.Fprintf(w, "## perf trajectory — %d snapshot(s)\n\n", len(snaps))
	widths := make([]int, len(cols))
	rows := make([][]string, len(snaps)+1)
	for i, c := range cols {
		widths[i] = len(c)
	}
	for r, snap := range snaps {
		rows[r] = make([]string, len(cols))
		rows[r][0] = snap
		for i, label := range order {
			rows[r][i+1] = trendCell(byLabel[label].values, snap)
		}
	}
	dr := make([]string, len(cols))
	dr[0] = deltaRowName
	for i, label := range order {
		dr[i+1] = deltaCell(label)
	}
	rows[len(snaps)] = dr
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%-*s", widths[i], c)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	return gateCheck(gatePct, gateExps, order, deltaOf, hasDelta)
}

// gateCheck fails the run when a gated experiment's series dropped more than
// gatePct percent between the previous snapshot and the newest. Series
// without a comparable pair (new experiments, missing rows) pass — a gate
// must catch regressions, not block additions.
func gateCheck(gatePct float64, gateExps string, order []string, deltaOf map[string]float64, hasDelta map[string]bool) error {
	if gatePct <= 0 {
		return nil
	}
	gated := map[string]bool{}
	for _, e := range strings.Split(gateExps, ",") {
		if e = strings.TrimSpace(e); e != "" {
			gated[e] = true
		}
	}
	var failures []string
	for _, label := range order {
		exp, _, _ := strings.Cut(label, "/")
		if !gated[exp] || !hasDelta[label] {
			continue
		}
		if d := deltaOf[label]; d < -gatePct {
			failures = append(failures, fmt.Sprintf("%s %+.1f%%", label, d))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate: %d series dropped more than %.0f%% vs the previous snapshot: %s",
			len(failures), gatePct, strings.Join(failures, "; "))
	}
	return nil
}

// metricColumn picks the series to trend: the column named "throughput",
// or another higher-is-better rate column (wake-latency reports
// round_trips_per_sec precisely so its regressions read as drops here).
// Tables without one are skipped — their first data column is typically a
// second config axis (e.g. tr-contention's structure×dist rows), which
// would both trend a meaningless value and collide row labels built from
// the first column alone.
func metricColumn(cols []string) (string, int) {
	for i, c := range cols {
		if c == "throughput" || c == "round_trips_per_sec" {
			return c, i
		}
	}
	return "", -1
}

func trendCell(values map[string]float64, snap string) string {
	v, ok := values[snap]
	if !ok {
		return "-"
	}
	return formatTrend(v)
}

// formatTrend renders a value compactly (throughputs are large, latencies
// small).
func formatTrend(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
