package main

import (
	"testing"
)

func TestParseThreads(t *testing.T) {
	cases := map[string][]int{
		"2":          {2},
		"2,4,8":      {2, 4, 8},
		" 2 , 4 ":    {2, 4},
		"16,2":       {16, 2},
		"2,,4":       {2, 4},
		"not-number": nil,
		"0":          nil,
		"-3":         nil,
		"":           nil,
	}
	for in, want := range cases {
		got, err := parseThreads(in)
		if want == nil {
			if err == nil {
				t.Errorf("parseThreads(%q) succeeded with %v", in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseThreads(%q): %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("parseThreads(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("parseThreads(%q) = %v, want %v", in, got, want)
				break
			}
		}
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no -experiment accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadMode(t *testing.T) {
	if err := run([]string{"-experiment", "fig3-uniform", "-mode", "hybrid"}); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestRunBadThreads(t *testing.T) {
	if err := run([]string{"-experiment", "fig3-uniform", "-threads", "x"}); err == nil {
		t.Fatal("bad threads accepted")
	}
}

func TestRunSmallExperiment(t *testing.T) {
	// One tiny sim point, text and CSV paths.
	args := []string{"-experiment", "tr-balance", "-runs", "1", "-threads", "2", "-cycles", "30000000"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-csv")); err != nil {
		t.Fatal(err)
	}
}
