// Command kbench regenerates the paper's tables and figures.
//
// Usage:
//
//	kbench -list
//	kbench -experiment fig3-uniform
//	kbench -experiment all -runs 10 -mode sim
//	kbench -experiment fig3-exponential -mode real -tasks 50000
//	kbench -experiment fig4-overhead -csv
//	kbench -experiment open-submit -tasks 50000
//	kbench -experiment sharding -tasks 20000 -json > BENCH_smoke.json
//	kbench -experiment network -tasks 20000
//	kbench -experiment migration -tasks 20000
//	kbench -trend bench/*.json BENCH_smoke.json
//
// open-submit exercises the open Executor API (Submit / SubmitAll from
// goroutine-per-client traffic) on the real executor regardless of -mode;
// network drives the same workload through the kstmd wire protocol over
// loopback TCP; migration A/Bs sharded re-adaptation under key drift with
// shard-state migration off vs. on (DESIGN.md §4.1); see DESIGN.md §3 and
// "Network front-end".
//
// -trend folds archived -json snapshots (CI's BENCH_smoke.json artifacts,
// the bench/ directory) into a perf-trajectory table: one row per snapshot,
// one column per experiment configuration. Corrupt or duplicate snapshot
// files are skipped with a per-file warning rather than aborting the table.
//
// In sim mode (default) experiments run on the deterministic discrete-event
// model of the paper's 16-processor SunFire 6800 testbed, so the figure
// shapes reproduce on any host. In real mode the actual STM and executor run
// on host goroutines; scaling curves then require as many hardware threads
// as workers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"kstm/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kbench", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiments and exit")
		experiment = fs.String("experiment", "", "experiment ID, or 'all'")
		mode       = fs.String("mode", "sim", "sim (testbed simulator) or real (host goroutines)")
		runs       = fs.Int("runs", 3, "repetitions per data point (paper uses 10)")
		threads    = fs.String("threads", "2,4,6,8,10,12,14,16", "comma-separated worker counts")
		cycles     = fs.Uint64("cycles", 0, "simulated cycles per run (0 = default 120M)")
		tasks      = fs.Int("tasks", 20000, "tasks per data point in real mode")
		seed       = fs.Uint64("seed", 1, "base PRNG seed")
		csv        = fs.Bool("csv", false, "emit CSV instead of text tables")
		asJSON     = fs.Bool("json", false, "emit one machine-readable JSON document instead of text tables")
		trend      = fs.Bool("trend", false, "fold -json snapshot files (args or globs) into a perf-trajectory table")
		gate       = fs.Float64("gate", 0, "with -trend: fail when a gated experiment's series drops more than this percent vs the previous snapshot (0 = off)")
		gateExps   = fs.String("gate-experiments", "sharding,batching,contention,wake-latency", "with -trend -gate: comma-separated experiment IDs the gate applies to")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *trend {
		return runTrend(os.Stdout, fs.Args(), *csv, *gate, *gateExps)
	}
	if *list {
		fmt.Println("Available experiments (see DESIGN.md §7 for the paper mapping):")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-22s %-38s [%s]\n", e.ID, e.Title, e.Paper)
		}
		fmt.Println("  all                    run everything")
		return nil
	}
	if *experiment == "" {
		fs.Usage()
		return fmt.Errorf("missing -experiment (or -list)")
	}

	opts := harness.DefaultOptions()
	opts.Runs = *runs
	opts.RealTasks = *tasks
	opts.Seed = *seed
	opts.DurationCycles = *cycles
	switch harness.Mode(*mode) {
	case harness.ModeSim, harness.ModeReal:
		opts.Mode = harness.Mode(*mode)
	default:
		return fmt.Errorf("unknown -mode %q (want sim or real)", *mode)
	}
	ts, err := parseThreads(*threads)
	if err != nil {
		return err
	}
	opts.Threads = ts

	var tables []*harness.Table
	if *experiment == "all" {
		tables, err = harness.RunAll(opts)
	} else {
		// -experiment accepts a comma-separated list, so one CI artifact
		// can archive several experiments' tables (e.g. sharding,network).
		for _, id := range strings.Split(*experiment, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			var e harness.Experiment
			e, err = harness.ByID(id)
			if err != nil {
				break
			}
			var ts []*harness.Table
			ts, err = e.Run(opts)
			if err != nil {
				break
			}
			tables = append(tables, ts...)
		}
	}
	if err != nil {
		return err
	}
	if *asJSON {
		return writeJSON(os.Stdout, *experiment, opts, tables)
	}
	for _, t := range tables {
		if *csv {
			fmt.Printf("# %s — %s\n", t.ID, t.Title)
			t.RenderCSV(os.Stdout)
			fmt.Println()
		} else {
			t.Render(os.Stdout)
		}
	}
	return nil
}

// jsonReport is the -json document: enough provenance to compare runs over
// time (CI archives one per build as BENCH_smoke.json) plus every result
// table verbatim — for the sharding experiment that includes throughput and
// the wait/service latency percentiles per mode.
type jsonReport struct {
	Experiment string      `json:"experiment"`
	Mode       string      `json:"mode"`
	Runs       int         `json:"runs"`
	RealTasks  int         `json:"real_tasks"`
	Seed       uint64      `json:"seed"`
	Threads    []int       `json:"threads"`
	Tables     []jsonTable `json:"tables"`
}

type jsonTable struct {
	ID    string      `json:"id"`
	Title string      `json:"title"`
	Cols  []string    `json:"cols"`
	Rows  [][]float64 `json:"rows"`
	Notes []string    `json:"notes,omitempty"`
}

func writeJSON(w io.Writer, experiment string, o harness.Options, tables []*harness.Table) error {
	rep := jsonReport{
		Experiment: experiment,
		Mode:       string(o.Mode),
		Runs:       o.Runs,
		RealTasks:  o.RealTasks,
		Seed:       o.Seed,
		Threads:    o.Threads,
	}
	for _, t := range tables {
		rep.Tables = append(rep.Tables, jsonTable{
			ID: t.ID, Title: t.Title, Cols: t.Cols, Rows: t.Rows, Notes: t.Notes,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -threads list")
	}
	return out, nil
}
