package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnapshot drops a minimal jsonReport into dir.
func writeSnapshot(t *testing.T, dir, name string, thr0, thr1 float64) string {
	t.Helper()
	rep := jsonReport{
		Experiment: "sharding",
		Mode:       "real",
		Tables: []jsonTable{{
			ID:   "sharding",
			Cols: []string{"mode", "throughput", "wait_p50_us"},
			Rows: [][]float64{{0, thr0, 12}, {1, thr1, 9}},
		}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrendFoldsSnapshots(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "BENCH_0002.json", 1000, 1100)
	writeSnapshot(t, dir, "BENCH_0003.json", 1200, 1500)

	var out bytes.Buffer
	if err := runTrend(&out, []string{filepath.Join(dir, "*.json")}, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Both snapshots appear, in sorted (chronological) order.
	i2 := strings.Index(text, "BENCH_0002.json")
	i3 := strings.Index(text, "BENCH_0003.json")
	if i2 < 0 || i3 < 0 || i2 > i3 {
		t.Fatalf("snapshot order wrong in:\n%s", text)
	}
	// The throughput column is the trended metric, per mode.
	for _, want := range []string{"sharding/throughput mode=0", "sharding/throughput mode=1", "1000", "1500"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Latency columns are not trended (throughput wins).
	if strings.Contains(text, "wait_p50_us") {
		t.Errorf("trend picked a latency column:\n%s", text)
	}
}

func TestTrendCSVAndMissingCells(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "a.json", 10, 20)
	// A second snapshot with a different table: cells go missing ("-").
	rep := jsonReport{Tables: []jsonTable{{
		ID:   "network",
		Cols: []string{"mode", "throughput"},
		Rows: [][]float64{{0, 5}},
	}}}
	data, _ := json.Marshal(rep)
	if err := os.WriteFile(filepath.Join(dir, "b.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runTrend(&out, []string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "snapshot,") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(out.String(), "-") {
		t.Error("missing cells not rendered as '-'")
	}
}

// TestTrendSkipsCorruptAndDuplicateSnapshots: one bad archive entry must
// not abort the whole trend table — corrupt files and exact duplicates are
// skipped with a warning, the valid snapshots still fold.
func TestTrendSkipsCorruptAndDuplicateSnapshots(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "BENCH_0001.json", 700, 900)
	good := writeSnapshot(t, dir, "BENCH_0002.json", 1000, 1100)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_corrupt.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An exact duplicate of BENCH_0002 under another name (e.g. the same CI
	// artifact archived twice).
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_dup.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runTrend(&out, []string{filepath.Join(dir, "*.json")}, false); err != nil {
		t.Fatalf("trend aborted on a corrupt snapshot: %v", err)
	}
	text := out.String()
	for _, want := range []string{"BENCH_0001.json", "BENCH_0002.json", "2 snapshot(s)", "1000"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	for _, skip := range []string{"BENCH_corrupt.json", "BENCH_dup.json"} {
		if strings.Contains(text, skip) {
			t.Errorf("skipped snapshot %s leaked into the table:\n%s", skip, text)
		}
	}
}

func TestTrendErrors(t *testing.T) {
	if err := runTrend(&bytes.Buffer{}, nil, false); err == nil {
		t.Error("no-args trend succeeded")
	}
	if err := runTrend(&bytes.Buffer{}, []string{filepath.Join(t.TempDir(), "nope*.json")}, false); err == nil {
		t.Error("empty glob succeeded")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if err := runTrend(&bytes.Buffer{}, []string{bad}, false); err == nil {
		t.Error("malformed snapshot succeeded")
	}
}
