package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnapshot drops a minimal jsonReport into dir.
func writeSnapshot(t *testing.T, dir, name string, thr0, thr1 float64) string {
	t.Helper()
	rep := jsonReport{
		Experiment: "sharding",
		Mode:       "real",
		Tables: []jsonTable{{
			ID:   "sharding",
			Cols: []string{"mode", "throughput", "wait_p50_us"},
			Rows: [][]float64{{0, thr0, 12}, {1, thr1, 9}},
		}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrendFoldsSnapshots(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "BENCH_0002.json", 1000, 1100)
	writeSnapshot(t, dir, "BENCH_0003.json", 1200, 1500)

	var out bytes.Buffer
	if err := runTrend(&out, []string{filepath.Join(dir, "*.json")}, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Both snapshots appear, in sorted (chronological) order.
	i2 := strings.Index(text, "BENCH_0002.json")
	i3 := strings.Index(text, "BENCH_0003.json")
	if i2 < 0 || i3 < 0 || i2 > i3 {
		t.Fatalf("snapshot order wrong in:\n%s", text)
	}
	// The throughput column is the trended metric, per mode.
	for _, want := range []string{"sharding/throughput mode=0", "sharding/throughput mode=1", "1000", "1500"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Latency columns are not trended (throughput wins).
	if strings.Contains(text, "wait_p50_us") {
		t.Errorf("trend picked a latency column:\n%s", text)
	}
}

func TestTrendCSVAndMissingCells(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "a.json", 10, 20)
	// A second snapshot with a different table: cells go missing ("-").
	rep := jsonReport{Tables: []jsonTable{{
		ID:   "network",
		Cols: []string{"mode", "throughput"},
		Rows: [][]float64{{0, 5}},
	}}}
	data, _ := json.Marshal(rep)
	if err := os.WriteFile(filepath.Join(dir, "b.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runTrend(&out, []string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}, true, 0, ""); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want header + 2 rows + delta:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "snapshot,") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[3], "Δ% vs prev,") {
		t.Fatalf("last row is not the delta row: %s", lines[3])
	}
	if !strings.Contains(out.String(), "-") {
		t.Error("missing cells not rendered as '-'")
	}
}

// TestTrendDeltaRow pins the delta computation: newest snapshot vs the most
// recent earlier one carrying the series, rendered as a signed percentage.
func TestTrendDeltaRow(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "BENCH_0001.json", 1000, 2000)
	writeSnapshot(t, dir, "BENCH_0002.json", 1200, 1000)

	var out bytes.Buffer
	if err := runTrend(&out, []string{filepath.Join(dir, "*.json")}, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// mode=0 rose 1000→1200 (+20%), mode=1 halved 2000→1000 (-50%).
	for _, want := range []string{"Δ% vs prev", "+20.0%", "-50.0%"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

// TestTrendGate pins the CI perf gate: a gated experiment dropping past the
// threshold fails the run naming the series; rises, small dips, ungated
// experiments and series without a comparison pass.
func TestTrendGate(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "BENCH_0001.json", 1000, 2000)
	writeSnapshot(t, dir, "BENCH_0002.json", 1200, 1000) // mode=1 down 50%

	glob := []string{filepath.Join(dir, "*.json")}
	err := runTrend(&bytes.Buffer{}, glob, false, 25, "sharding,batching")
	if err == nil {
		t.Fatal("50% drop passed a 25% gate")
	}
	if !strings.Contains(err.Error(), "sharding/throughput mode=1") || !strings.Contains(err.Error(), "-50.0%") {
		t.Errorf("gate error does not name the dropped series: %v", err)
	}
	// A looser gate passes.
	if err := runTrend(&bytes.Buffer{}, glob, false, 60, "sharding,batching"); err != nil {
		t.Errorf("60%% gate failed on a 50%% drop: %v", err)
	}
	// The drop is invisible to a gate scoped to other experiments.
	if err := runTrend(&bytes.Buffer{}, glob, false, 25, "batching"); err != nil {
		t.Errorf("ungated experiment tripped the gate: %v", err)
	}
	// A single snapshot has no deltas, so nothing can trip.
	solo := t.TempDir()
	writeSnapshot(t, solo, "BENCH_0001.json", 10, 10)
	if err := runTrend(&bytes.Buffer{}, []string{filepath.Join(solo, "*.json")}, false, 25, "sharding"); err != nil {
		t.Errorf("single snapshot tripped the gate: %v", err)
	}
}

// TestTrendSkipsCorruptAndDuplicateSnapshots: one bad archive entry must
// not abort the whole trend table — corrupt files and exact duplicates are
// skipped with a warning, the valid snapshots still fold.
func TestTrendSkipsCorruptAndDuplicateSnapshots(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "BENCH_0001.json", 700, 900)
	good := writeSnapshot(t, dir, "BENCH_0002.json", 1000, 1100)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_corrupt.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An exact duplicate of BENCH_0002 under another name (e.g. the same CI
	// artifact archived twice).
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_dup.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runTrend(&out, []string{filepath.Join(dir, "*.json")}, false, 0, ""); err != nil {
		t.Fatalf("trend aborted on a corrupt snapshot: %v", err)
	}
	text := out.String()
	for _, want := range []string{"BENCH_0001.json", "BENCH_0002.json", "2 snapshot(s)", "1000"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	for _, skip := range []string{"BENCH_corrupt.json", "BENCH_dup.json"} {
		if strings.Contains(text, skip) {
			t.Errorf("skipped snapshot %s leaked into the table:\n%s", skip, text)
		}
	}
}

func TestTrendErrors(t *testing.T) {
	if err := runTrend(&bytes.Buffer{}, nil, false, 0, ""); err == nil {
		t.Error("no-args trend succeeded")
	}
	if err := runTrend(&bytes.Buffer{}, []string{filepath.Join(t.TempDir(), "nope*.json")}, false, 0, ""); err == nil {
		t.Error("empty glob succeeded")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if err := runTrend(&bytes.Buffer{}, []string{bad}, false, 0, ""); err == nil {
		t.Error("malformed snapshot succeeded")
	}
}
