// Quickstart: transactional memory basics and a first executor run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kstm"
)

func main() {
	// --- STM in three steps -------------------------------------------
	s := kstm.New() // Polka contention manager by default
	balance := kstm.NewBox(100)
	th := s.NewThread()

	// Atomic retries until the transaction commits.
	err := th.Atomic(func(tx *kstm.Tx) error {
		v, err := balance.Write(tx)
		if err != nil {
			return err
		}
		*v += 23
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	tx := th.Begin()
	v, err := balance.Read(tx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balance after atomic update: %d\n", *v)
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// --- A transactional dictionary -----------------------------------
	table := kstm.NewHashTable(0) // 0 = the paper's 30031 buckets
	for _, key := range []uint32{7, 42, 30031 + 7} {
		added, err := table.Insert(th, key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("insert %5d: added=%v (bucket %d)\n", key, added, table.Hash(key))
	}

	// --- The key-based executor ----------------------------------------
	// Producers generate insert/delete tasks; the adaptive scheduler
	// samples the key distribution and partitions the key space so that
	// similar keys always run on the same worker.
	sched, err := kstm.NewScheduler(kstm.SchedAdaptive, 0, uint64(table.Buckets()-1), 4,
		kstm.WithThreshold(2000))
	if err != nil {
		log.Fatal(err)
	}
	pool, err := kstm.NewPool(kstm.Config{
		STM: s,
		Workload: kstm.WorkloadFunc(func(th *kstm.Thread, t kstm.Task) (any, error) {
			if t.Op == kstm.OpInsert {
				return table.Insert(th, t.Arg)
			}
			return table.Delete(th, t.Arg)
		}),
		NewSource: func(p int) kstm.TaskSource {
			src := kstm.NewUniform(uint64(p) + 1)
			return kstm.SourceFunc(func() kstm.Task {
				key, insert := kstm.SplitKey(src.Next())
				op := kstm.OpInsert
				if !insert {
					op = kstm.OpDelete
				}
				// The transaction key is the hash output, not the
				// dictionary key (paper §4.2).
				return kstm.Task{Key: uint64(table.Hash(key)), Op: op, Arg: key}
			})
		},
		Workers:   4,
		Producers: 2,
		Scheduler: sched,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pool.RunCount(20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecutor: %s\n", res)
	fmt.Printf("per-worker completions: %v\n", res.PerWorker)
	fmt.Printf("STM over the run: %s\n", res.STM)
}
