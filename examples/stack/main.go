// Stack: the paper's §3.1 example of a constant transaction key. Every
// push/pop starts at the top-of-stack element, so the right scheduling hint
// is the same key for every operation — the executor then recognizes that
// stack transactions all race for the same data and runs them on a single
// worker, eliminating conflicts entirely, while a keyless round-robin
// scheduler spreads them across workers and pays for every collision.
//
//	go run ./examples/stack
package main

import (
	"fmt"
	"log"

	"kstm"
)

const ops = 20000

func main() {
	for _, kind := range []kstm.SchedulerKind{kstm.SchedRoundRobin, kstm.SchedFixed} {
		s := kstm.New()
		stack := kstm.NewStack()
		workload := kstm.WorkloadFunc(func(th *kstm.Thread, t kstm.Task) (any, error) {
			if t.Op == kstm.OpInsert {
				return nil, stack.Push(th, t.Arg)
			}
			v, ok, err := stack.Pop(th)
			if !ok {
				return nil, err // empty stack pops carry no value
			}
			return v, err
		})
		newSource := func(p int) kstm.TaskSource {
			src := kstm.NewUniform(uint64(p) + 1)
			return kstm.SourceFunc(func() kstm.Task {
				key, insert := kstm.SplitKey(src.Next())
				op := kstm.OpInsert
				if !insert {
					op = kstm.OpDelete // pop
				}
				// §3.1: the key is constant — every stack access
				// races for the top element.
				return kstm.Task{Key: uint64(stack.Key()), Op: op, Arg: key}
			})
		}
		sched, err := kstm.NewScheduler(kind, 0, kstm.MaxKey, 4)
		if err != nil {
			log.Fatal(err)
		}
		pool, err := kstm.NewPool(kstm.Config{
			STM:       s,
			Workload:  workload,
			NewSource: newSource,
			Workers:   4,
			Producers: 2,
			Scheduler: sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := pool.RunCount(ops)
		if err != nil {
			log.Fatal(err)
		}
		st := res.STM
		fmt.Printf("%-10s: conflicts %6d, aborts %6d, per-worker %v\n",
			kind, st.Conflicts, st.Aborts(), res.PerWorker)
	}
	fmt.Println()
	fmt.Println("With a key-based scheduler and the stack's constant key, every operation")
	fmt.Println("lands on one worker: zero conflicts. Round robin spreads the same stream")
	fmt.Println("across four workers that all fight for the top-of-stack element.")
}
