// Server: the kstmd network front-end end to end — an executor behind the
// wire protocol on a loopback TCP listener, driven by real clients from the
// kstm/client package. This is the networked successor of the old in-process
// simulation this example used to be: every request now crosses a socket,
// responses pipeline back out of order, and the error mapping table from
// DESIGN.md ("Network front-end") is exercised for real:
//
//   - a client fleet inserts/deletes over a connection pool,
//
//   - a read-path client gets lookup hits back as typed booleans,
//
//   - a buggy client's unknown opcode is refused with ErrBadRequest,
//
//   - a slow client distinguishes shed load (ErrBusy → back off and RETRY)
//     from its own deadline (context.DeadlineExceeded → retire) — conflating
//     the two would turn every momentary queue spike into a lost client,
//
//   - SIGTERM-style graceful drain: executor first, then the listener, and
//     the final stats show Completed counting only executed transactions
//     with abandoned work under Cancelled.
//
//     go run ./examples/server
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kstm"
	"kstm/client"
	"kstm/server"
)

const (
	workers   = 4
	clients   = 8
	perOps    = 1500
	poolConns = 4
)

func main() {
	// Server side: a hash-table executor with the paper's adaptive
	// scheduler. Reject-mode backpressure, because a server sheds load
	// rather than stalling connection handlers. The workload is written
	// against the public API — this is the code an external module would
	// write; every operation returns its typed value so responses carry a
	// payload over the wire.
	table := kstm.NewHashTable(0)
	workload := kstm.WorkloadFunc(func(th *kstm.Thread, t kstm.Task) (any, error) {
		switch t.Op {
		case kstm.OpInsert:
			return table.Insert(th, t.Arg)
		case kstm.OpDelete:
			return table.Delete(th, t.Arg)
		case kstm.OpLookup:
			return table.Contains(th, t.Arg)
		default:
			return nil, fmt.Errorf("server: unknown opcode %v", t.Op)
		}
	})
	ex, err := kstm.NewExecutor(
		kstm.WithWorkload(workload),
		kstm.WithWorkers(workers),
		kstm.WithSchedulerKind(kstm.SchedAdaptive, 0, kstm.MaxKey, kstm.WithThreshold(5000)),
		kstm.WithBackpressure(kstm.BackpressureReject),
		kstm.WithQueueDepth(4096),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(ex,
		server.WithMaxOp(uint8(kstm.OpNoop)),
		server.WithLogger(log.New(io.Discard, "", 0)))
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(ctx, ln) }()
	addr := ln.Addr().String()
	fmt.Printf("kstmd serving on %s\n", addr)

	// Write fleet: a connection pool shared by goroutine-per-client
	// handlers, pipelining inserts and deletes. DoRetry absorbs shed load
	// (reject-mode backpressure) with jittered exponential backoff, so a
	// queue spike delays a request instead of losing it.
	pool, err := client.DialPool(addr, poolConns)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	var served, shed atomic.Uint64
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := kstm.NewExponentialDefault(uint64(c)*131 + 7)
			for i := 0; i < perOps; i++ {
				key, insert := kstm.SplitKey(src.Next())
				op := kstm.OpDelete
				if insert {
					op = kstm.OpInsert
				}
				if _, err := client.DoRetry(ctx, pool, kstm.Task{Key: uint64(key), Op: op, Arg: key}); err != nil {
					log.Fatal(err)
				}
				served.Add(1)
			}
		}(c)
	}

	// Read-path client: lookup hits come back as typed booleans over its
	// own connection.
	var hits, misses atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		rc, err := client.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer rc.Close()
		src := kstm.NewExponentialDefault(99)
		for i := 0; i < perOps; i++ {
			key, _ := kstm.SplitKey(src.Next())
			found, err := rc.DoBool(ctx, kstm.Task{Key: uint64(key), Op: kstm.OpLookup, Arg: key})
			switch {
			case errors.Is(err, client.ErrBusy):
				shed.Add(1)
			case err != nil:
				log.Fatal(err)
			case found:
				hits.Add(1)
			default:
				misses.Add(1)
			}
		}
	}()

	// Buggy client: an opcode outside the protocol is refused by the
	// server before it ever reaches the executor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		bc, err := client.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer bc.Close()
		if _, err := bc.Do(ctx, kstm.Task{Key: 1, Op: kstm.Op(42), Arg: 1}); errors.Is(err, client.ErrBadRequest) {
			fmt.Printf("bad client rejected: %v\n", err)
		} else {
			log.Fatalf("unknown opcode was accepted: %v", err)
		}
	}()

	// Slow client with a hard deadline. The old in-process demo treated
	// EVERY Submit error as retirement, so a shed request (queue spike)
	// retired it exactly like its deadline. client.DoRetry now owns that
	// loop: shed load (ErrBusy) retries with jittered exponential backoff;
	// the caller's own deadline surfaces as DeadlineExceeded and retires
	// the request — no hand-rolled backoff in the handler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc, err := client.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer sc.Close()
		const deadline = 50 * time.Millisecond
		slowCtx, cancel := context.WithTimeout(ctx, deadline)
		defer cancel()
		switch _, err := client.DoRetry(slowCtx, sc, kstm.Task{Key: 1, Op: kstm.OpLookup, Arg: 1}); {
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Printf("slow client retired its request at the %v deadline (server busy throughout)\n", deadline)
		case err != nil:
			log.Fatalf("slow client: %v", err)
		default:
			fmt.Println("slow client served within its deadline (retries absorbed the spikes)")
		}
	}()

	// Operator view while traffic is in flight.
	time.Sleep(20 * time.Millisecond)
	st := ex.Stats()
	fmt.Printf("mid-run: state=%s in-flight=%d conns=%d\n", st.State, st.InFlight, srv.Stats().OpenConns)

	wg.Wait()
	elapsed := time.Since(start)

	// Graceful shutdown, kstmd-style: drain the executor first (in-flight
	// transactions finish, new requests answer StatusStopped), then close
	// the listener and connections.
	if err := ex.Drain(); err != nil {
		log.Fatal(err)
	}
	if _, err := pool.Do(ctx, kstm.Task{Key: 1, Op: kstm.OpLookup, Arg: 1}); errors.Is(err, client.ErrStopped) {
		fmt.Println("post-drain request answered 'stopped', as it should be")
	}
	pool.Close()
	srv.Close()
	if err := <-srvDone; err != nil {
		log.Fatal(err)
	}

	st = ex.Stats()
	ss := srv.Stats()
	fmt.Printf("served %d requests (%d shed) in %v — %.0f txn/s over the wire\n",
		served.Load(), shed.Load(), elapsed.Round(time.Millisecond),
		float64(served.Load())/elapsed.Seconds())
	fmt.Printf("lookups: %d hits, %d misses\n", hits.Load(), misses.Load())
	fmt.Printf("server: %d conns, %d requests, %d responses, %d busy, %d bad\n",
		ss.Conns, ss.Requests, ss.Responses, ss.Busy, ss.BadRequest)
	fmt.Printf("executor: completed=%d (executed only) cancelled=%d imbalance=%.2f wait_p95=%v svc_p95=%v\n",
		st.Completed, st.Cancelled, st.LoadImbalance(), st.Wait.P95, st.Service.P95)
}
