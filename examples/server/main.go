// Server: the open Executor API under goroutine-per-client traffic — the
// shape a network front-end produces, as opposed to the paper's closed-world
// producer loops. Each client goroutine is a request handler: it submits a
// dictionary transaction with Submit (request/response) and gets back a
// TaskResult with queue-wait and execution latency. The executor runs the
// paper's adaptive PD-partition scheduler, so it learns the clients' hot key
// ranges from live traffic while serving it.
//
// The run demonstrates the full lifecycle: Start, a load phase with
// per-client latency accounting, a live Stats snapshot mid-run, reject-mode
// backpressure (shed load instead of stalling handlers), context
// cancellation of a slow client, and a graceful Drain.
//
//	go run ./examples/server
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"kstm"
)

const (
	workers = 4
	clients = 16
	perOps  = 2500
)

func main() {
	table := kstm.NewHashTable(0)
	// The typed workload: every response carries the operation's value —
	// a lookup's hit travels back inside the TaskResult, so handlers need
	// no side channel into the table. Opcodes outside the protocol are a
	// client bug and are rejected with a real error, not a silent no-op.
	workload := kstm.WorkloadFunc(func(th *kstm.Thread, t kstm.Task) (any, error) {
		switch t.Op {
		case kstm.OpInsert:
			return table.Insert(th, t.Arg)
		case kstm.OpDelete:
			return table.Delete(th, t.Arg)
		case kstm.OpLookup:
			return table.Contains(th, t.Arg)
		default:
			return nil, fmt.Errorf("server: unknown opcode %v", t.Op)
		}
	})

	ex, err := kstm.NewExecutor(
		kstm.WithWorkload(workload),
		kstm.WithWorkers(workers),
		// Route by hash-bucket key so near keys share a worker, and let
		// the adaptive scheduler learn the partition from live traffic.
		kstm.WithSchedulerKind(kstm.SchedAdaptive, 0, uint64(table.Buckets()-1), kstm.WithThreshold(5000)),
		// A server sheds load rather than stalling request handlers.
		kstm.WithBackpressure(kstm.BackpressureReject),
		kstm.WithQueueDepth(4096),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		log.Fatal(err)
	}

	// Load phase: one goroutine per client, Submit per request.
	var wg sync.WaitGroup
	var served, shed atomic.Uint64
	var totalWait, totalExec atomic.Int64
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Clients favor a skewed working set, like real callers.
			src := kstm.NewExponentialDefault(uint64(c)*131 + 7)
			for i := 0; i < perOps; i++ {
				key, insert := kstm.SplitKey(src.Next())
				op := kstm.OpDelete
				if insert {
					op = kstm.OpInsert
				}
				task := kstm.Task{Key: uint64(table.Hash(key)), Op: op, Arg: key}
				res, err := ex.Submit(ctx, task)
				switch {
				case errors.Is(err, kstm.ErrQueueFull):
					shed.Add(1) // a real server would 503 here
				case err != nil:
					log.Fatal(err)
				default:
					served.Add(1)
					totalWait.Add(int64(res.Wait))
					totalExec.Add(int64(res.Exec))
				}
			}
		}(c)
	}

	// A read-path client: lookups return their hit through the typed
	// submission helper, the value a real GET endpoint would serialize.
	var hits, misses atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := kstm.NewExponentialDefault(99)
		for i := 0; i < perOps; i++ {
			key, _ := kstm.SplitKey(src.Next())
			found, err := kstm.SubmitTyped[bool](ctx, ex,
				kstm.Task{Key: uint64(table.Hash(key)), Op: kstm.OpLookup, Arg: key})
			switch {
			case errors.Is(err, kstm.ErrQueueFull):
				shed.Add(1)
			case err != nil:
				log.Fatal(err)
			case found:
				hits.Add(1)
			default:
				misses.Add(1)
			}
		}
	}()

	// A buggy client sends an opcode outside the protocol; the typed
	// workload rejects it with an error instead of silently no-opping.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := ex.Submit(ctx, kstm.Task{Key: 1, Op: kstm.Op(42), Arg: 1}); err == nil {
			log.Fatal("unknown opcode was accepted")
		} else {
			fmt.Printf("bad client rejected: %v\n", err)
		}
	}()

	// A slow client with a deadline: its cancellation must not disturb
	// the executor or other clients.
	slowCtx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := ex.Submit(slowCtx, kstm.Task{Key: 1, Op: kstm.OpLookup, Arg: 1}); err != nil {
				fmt.Printf("slow client retired: %v\n", err)
				return
			}
		}
	}()

	// Operator view: a live snapshot while traffic is in flight.
	time.Sleep(20 * time.Millisecond)
	st := ex.Stats()
	fmt.Printf("mid-run: state=%s in-flight=%d queues=%v\n", st.State, st.InFlight, st.QueueDepths)

	wg.Wait()
	if err := ex.Drain(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	st = ex.Stats()
	fmt.Printf("served %d requests (%d shed) in %v — %.0f txn/s\n",
		served.Load(), shed.Load(), elapsed.Round(time.Millisecond),
		float64(served.Load())/elapsed.Seconds())
	fmt.Printf("lookups: %d hits, %d misses\n", hits.Load(), misses.Load())
	if n := served.Load(); n > 0 {
		fmt.Printf("mean latency: wait %v, exec %v\n",
			time.Duration(totalWait.Load()/int64(n)).Round(time.Microsecond),
			time.Duration(totalExec.Load()/int64(n)).Round(time.Microsecond))
	}
	// The executor's own percentile view, now first-class in ExecStats.
	fmt.Printf("wait: %v\nservice: %v\n", st.Wait, st.Service)
	fmt.Printf("final: state=%s completed=%d imbalance=%.2f commits=%d scheduler=%s\n",
		st.State, st.Completed, st.LoadImbalance(), st.STM.Commits, st.Scheduler)

	// Submission after Drain is refused: the lifecycle is closed.
	if _, err := ex.Submit(ctx, kstm.Task{}); errors.Is(err, kstm.ErrNotRunning) {
		fmt.Println("post-drain submit refused, as it should be")
	}
}
