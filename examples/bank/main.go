// Bank: account transfers through the key-based executor. Transactions
// carry the source account id as their transaction key, so the adaptive
// scheduler learns which accounts are hot (a Zipf-like popularity skew) and
// partitions account ranges so each worker owns a similar transfer volume —
// transfers between nearby accounts run on one worker and never conflict.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"

	"kstm"
)

const (
	accounts       = 4096
	initialBalance = 1000
	transfers      = 40000
)

func main() {
	s := kstm.New()
	ledger := make([]kstm.Box[int], accounts)
	for i := range ledger {
		ledger[i] = kstm.NewBox(initialBalance)
	}

	// Popularity skew: most transfers touch low-numbered accounts (an
	// exponential "working set", like hot customers in a real ledger).
	newSource := func(p int) kstm.TaskSource {
		src := kstm.NewExponentialDefault(uint64(p)*977 + 5)
		return kstm.SourceFunc(func() kstm.Task {
			key, _ := kstm.SplitKey(src.Next())
			from := key % accounts
			// Destination near the source: locality between the two
			// written accounts, as dictionary keys have in the paper.
			to := (from + 1 + key%7) % accounts
			return kstm.Task{Key: uint64(from), Op: kstm.OpInsert, Arg: from<<16 | to}
		})
	}

	workload := kstm.WorkloadFunc(func(th *kstm.Thread, t kstm.Task) (any, error) {
		from, to := t.Arg>>16, t.Arg&0xFFFF
		if from == to {
			return nil, nil
		}
		return nil, th.Atomic(func(tx *kstm.Tx) error {
			src, err := ledger[from].Write(tx)
			if err != nil {
				return err
			}
			dst, err := ledger[to].Write(tx)
			if err != nil {
				return err
			}
			*src--
			*dst++
			return nil
		})
	})

	for _, kind := range []kstm.SchedulerKind{kstm.SchedRoundRobin, kstm.SchedAdaptive} {
		sched, err := kstm.NewScheduler(kind, 0, accounts-1, 4, kstm.WithThreshold(5000))
		if err != nil {
			log.Fatal(err)
		}
		pool, err := kstm.NewPool(kstm.Config{
			STM:       s,
			Workload:  workload,
			NewSource: newSource,
			Workers:   4,
			Producers: 2,
			Scheduler: sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		before := s.Stats()
		res, err := pool.RunCount(transfers)
		if err != nil {
			log.Fatal(err)
		}
		delta := s.Stats().Sub(before)
		fmt.Printf("%-10s: %6d transfers, imbalance %.2f, conflicts %d, enemy aborts %d\n",
			kind, res.Completed, res.LoadImbalance(), delta.Conflicts, delta.EnemyAborts)
	}

	// The invariant that makes this transactional: money is conserved.
	th := s.NewThread()
	total := 0
	err := th.Atomic(func(tx *kstm.Tx) error {
		total = 0
		for i := range ledger {
			v, err := ledger[i].Read(tx)
			if err != nil {
				return err
			}
			total += *v
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ledger total: %d (expected %d) — conserved: %v\n",
		total, accounts*initialBalance, total == accounts*initialBalance)
}
