// Dictionary: the paper's headline experiment in miniature. Runs the hash
// table under all three key distributions and all three dispatch policies on
// the simulated 16-processor testbed, and prints a Figure-3-style table —
// watch fixed partitioning collapse under the exponential distribution while
// the adaptive PD-partition keeps scaling.
//
//	go run ./examples/dictionary
package main

import (
	"fmt"
	"log"

	"kstm"
)

func main() {
	dists := []string{"uniform", "gaussian", "exponential"}
	scheds := []kstm.SchedulerKind{kstm.SchedRoundRobin, kstm.SchedFixed, kstm.SchedAdaptive}

	for _, d := range dists {
		fmt.Printf("hash table, %s keys (simulated txn/s)\n", d)
		fmt.Printf("%8s  %12s  %12s  %12s\n", "workers", "roundrobin", "fixed", "adaptive")
		for _, workers := range []int{2, 4, 8, 16} {
			fmt.Printf("%8d", workers)
			for _, sched := range scheds {
				p := kstm.DefaultSimParams()
				p.Workers = workers
				p.Producers = 8
				p.Dist = d
				p.Scheduler = sched
				r, err := kstm.SimRun(p)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %12.3g", r.Throughput())
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Show what the adaptive scheduler learned under the skewed
	// distribution: non-uniform key ranges with equal probability mass.
	sched, err := kstm.NewAdaptive(0, kstm.MaxKey, 8)
	if err != nil {
		log.Fatal(err)
	}
	src := kstm.NewExponentialDefault(1)
	for i := 0; i < 20000; i++ {
		key, _ := kstm.SplitKey(src.Next())
		sched.Pick(uint64(key))
	}
	fmt.Println("adaptive ranges learned from exponential keys (99% of key mass below 3454):")
	for w := 0; w < sched.Partition().Workers(); w++ {
		lo, hi := sched.Partition().RangeOf(w)
		fmt.Printf("  worker %d: keys %5d .. %5d (width %5d)\n", w, lo, hi, hi-lo+1)
	}
}
