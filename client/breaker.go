package client

import (
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position (DESIGN.md §10.3).
type BreakerState int32

const (
	// BreakerClosed: the connection is healthy; calls flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive transport failures tripped the breaker;
	// calls are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe call is
	// in flight; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker trip/cooldown tuning. Three consecutive transport errors trip it —
// one reset is weather, three is a dead peer. The cooldown starts near a
// redial's cost and doubles per consecutive trip (a peer that fails its
// probe is likelier to fail the next one) up to a cap that keeps recovery
// detection under a second; jitter desynchronizes a fleet's probes.
const (
	breakerThreshold    = 3
	breakerBaseCooldown = 10 * time.Millisecond
	breakerMaxCooldown  = time.Second
)

// breaker is a per-connection circuit breaker: closed (healthy) → open after
// breakerThreshold consecutive transport failures → half-open when the
// cooldown elapses, granting exactly one probe whose outcome decides between
// closed and open-with-longer-cooldown. All methods are safe for concurrent
// use; the zero value is a closed (healthy) breaker.
type breaker struct {
	state    atomic.Int32 // BreakerState
	fails    atomic.Int32 // consecutive transport failures while closed
	trips    atomic.Int64 // consecutive trips (decides cooldown doubling)
	openedAt atomic.Int64 // trip time, ns since start of process-arbitrary epoch
	cooldown atomic.Int64 // current cooldown, ns
	tripped  atomic.Uint64
}

// breakerEpoch anchors the breaker's monotonic clock; only differences of
// time.Since(breakerEpoch) values are ever used.
var breakerEpoch = time.Now()

// allow reports whether a call may proceed. In the open state it flips to
// half-open — claiming the single probe slot — once the cooldown has
// elapsed; every other caller is refused until the probe settles.
func (b *breaker) allow() bool {
	switch BreakerState(b.state.Load()) {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // a probe is already in flight
	default: // BreakerOpen
		if time.Since(breakerEpoch).Nanoseconds()-b.openedAt.Load() < b.cooldown.Load() {
			return false
		}
		// CAS claims the probe: exactly one caller wins the transition.
		return b.state.CompareAndSwap(int32(BreakerOpen), int32(BreakerHalfOpen))
	}
}

// recordSuccess reports a call that completed without a transport error
// (server statuses like ErrBusy count as success here: the CONNECTION
// worked). It fully resets the breaker.
func (b *breaker) recordSuccess() {
	b.fails.Store(0)
	b.trips.Store(0)
	b.state.Store(int32(BreakerClosed))
}

// recordFailure reports a transport failure (isTransport). A half-open
// probe's failure re-opens immediately; in the closed state the breaker
// trips after breakerThreshold consecutive failures.
func (b *breaker) recordFailure() {
	if BreakerState(b.state.Load()) == BreakerHalfOpen {
		b.trip()
		return
	}
	if b.fails.Add(1) >= breakerThreshold {
		b.trip()
	}
}

// trip opens the breaker with a cooldown doubled per consecutive trip, plus
// up to 25% jitter so a fleet's probes spread out.
func (b *breaker) trip() {
	n := b.trips.Add(1)
	cd := breakerBaseCooldown << min(n-1, 30)
	if cd > breakerMaxCooldown || cd <= 0 {
		cd = breakerMaxCooldown
	}
	cd += time.Duration(rand.Int64N(int64(cd)/4 + 1))
	b.cooldown.Store(int64(cd))
	b.openedAt.Store(time.Since(breakerEpoch).Nanoseconds())
	b.fails.Store(0)
	b.tripped.Add(1)
	b.state.Store(int32(BreakerOpen))
}

// snapshot reads the breaker for Pool.Stats.
func (b *breaker) snapshot() BreakerStats {
	return BreakerStats{
		State:   BreakerState(b.state.Load()),
		Tripped: b.tripped.Load(),
	}
}

// BreakerStats is one pool slot's breaker, as reported by Pool.Stats.
type BreakerStats struct {
	// State is the breaker's position at the snapshot.
	State BreakerState
	// Tripped counts closed/half-open → open transitions over the slot's
	// lifetime.
	Tripped uint64
}
