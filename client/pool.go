package client

import (
	"context"
	"sync/atomic"

	"kstm"
)

// Pool stripes calls over a fixed set of connections to one server:
// pipelining gives concurrency within a connection, the pool adds it across
// connections (more TCP buffers, more server-side handler goroutines).
//
// Each slot carries a circuit breaker (DESIGN.md §10.3): transport failures
// trip it, and a tripped slot is skipped by pick — callers ride the healthy
// stripes while a single background probe redials the dead one after a
// jittered cooldown. Callers are never parked behind a redial. When every
// slot is down with its breaker open, calls fail fast with ErrNoHealthyConn
// (retryable — a probe may revive a slot any moment).
//
// All connections share one retry budget, so DoRetry through the pool
// throttles as one fleet. All methods are safe for concurrent use.
type Pool struct {
	addr string
	opts []Option

	slots  []poolSlot
	budget *retryBudget
	closed atomic.Bool
	next   atomic.Uint64
}

type poolSlot struct {
	// c is nil while the slot is down and awaiting a successful probe; it
	// only ever swings nil → fresh client (probe) or live → nil (ejection),
	// so a caller either sees a client that was healthy at publication or
	// skips the slot.
	c  atomic.Pointer[Client]
	br breaker
	// probing single-flights the redial: the CAS winner dials on its own
	// goroutine (never holding any lock), so a full dial timeout stalls no
	// caller.
	probing atomic.Bool
}

// DialPool opens size connections to addr. On any dial failure the already-
// opened connections are closed and the error returned.
func DialPool(addr string, size int, opts ...Option) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	p := &Pool{
		addr:   addr,
		opts:   opts,
		slots:  make([]poolSlot, size),
		budget: newRetryBudget(),
	}
	for i := range p.slots {
		c, err := Dial(addr, opts...)
		if err != nil {
			p.Close()
			return nil, err
		}
		c.budget = p.budget // pooled connections throttle as one fleet
		p.slots[i].c.Store(c)
	}
	return p, nil
}

// Size returns the connection count.
func (p *Pool) Size() int { return len(p.slots) }

// retrySpend / retryRefund implement retryBudgeter over the pool's shared
// budget.
func (p *Pool) retrySpend() bool { return p.budget.retrySpend() }
func (p *Pool) retryRefund()     { p.budget.retryRefund() }

// pick round-robins across healthy slots, skipping any whose breaker is open
// or whose client is down; a slot observed broken is ejected (and its probe
// kicked) in passing. When no slot is usable the call fails fast with
// ErrNoHealthyConn rather than parking the caller behind a redial.
func (p *Pool) pick() (*Client, *poolSlot, error) {
	if p.closed.Load() {
		return nil, nil, ErrClosed
	}
	n := uint64(len(p.slots))
	start := p.next.Add(1)
	for i := uint64(0); i < n; i++ {
		s := &p.slots[(start+i)%n]
		c := s.c.Load()
		if c != nil && c.broken() {
			// The connection died between calls (reader saw EOF). Eject it
			// so later picks skip straight past, and count the death toward
			// the breaker — without this, a quietly-reset idle conn would
			// need fresh caller-visible failures to trip it.
			p.eject(s, c)
			c = nil
		}
		if c == nil {
			s.maybeProbe(p)
			continue
		}
		if !s.br.allow() {
			continue
		}
		return c, s, nil
	}
	return nil, nil, ErrNoHealthyConn
}

// eject removes a dead client from its slot (live → nil only; a racing probe
// that already installed a fresh client is left alone) and records the
// transport failure.
func (p *Pool) eject(s *poolSlot, dead *Client) {
	if s.c.CompareAndSwap(dead, nil) {
		dead.Close() //kstmvet:ignore ejection: the CAS guarantees exactly one closer for the dead client
		s.br.recordFailure()
	}
}

// maybeProbe starts the slot's single-flight background redial if the
// breaker grants a probe. The dial runs on its own goroutine: callers that
// found the slot down have already moved on to healthy stripes.
func (s *poolSlot) maybeProbe(p *Pool) {
	if p.closed.Load() || !s.br.allow() {
		return
	}
	if !s.probing.CompareAndSwap(false, true) {
		// Lost the race — but allow() above may have claimed the half-open
		// probe slot for a flight that will never happen. Re-opening via
		// recordFailure would double the cooldown unfairly, and this window
		// (two callers hitting a cooldown expiry at once) is narrow enough
		// that letting the in-flight probe decide the state is correct: its
		// success resets everything, its failure re-opens.
		return
	}
	go func() {
		defer s.probing.Store(false)
		fresh, err := Dial(p.addr, p.opts...)
		if err != nil {
			s.br.recordFailure() // re-opens with a doubled cooldown
			return
		}
		fresh.budget = p.budget
		if p.closed.Load() || !s.c.CompareAndSwap(nil, fresh) {
			// Pool closed mid-dial, or another path revived the slot.
			fresh.Close() //kstmvet:ignore probe lost its install race; the fresh dial must not leak
			return
		}
		s.br.recordSuccess()
		if p.closed.Load() && s.c.CompareAndSwap(fresh, nil) {
			// Close ran between its own sweep and our install: whoever wins
			// this CAS (us or a concurrent Close) closes the orphan.
			fresh.Close() //kstmvet:ignore shutdown race: the CAS guarantees exactly one closer
		}
	}()
}

// record feeds a call's outcome into the slot's breaker: transport failures
// (isTransport) trip it and eject the connection; anything else — success or
// a server status like ErrBusy — proves the CONNECTION healthy and resets
// it.
func (p *Pool) record(s *poolSlot, c *Client, err error) {
	if isTransport(err) {
		p.eject(s, c)
		return
	}
	s.br.recordSuccess()
}

// Do runs one task on the next healthy connection.
func (p *Pool) Do(ctx context.Context, t kstm.Task) (Result, error) {
	c, s, err := p.pick()
	if err != nil {
		return Result{}, err
	}
	res, err := c.Do(ctx, t)
	p.record(s, c, err)
	return res, err
}

// DoAsync starts one task on the next healthy connection. Only the send's
// outcome feeds the slot's breaker — the response may settle long after, on
// whatever error the Call's waiter alone sees.
func (p *Pool) DoAsync(ctx context.Context, t kstm.Task) (*Call, error) {
	c, s, err := p.pick()
	if err != nil {
		return nil, err
	}
	call, err := c.DoAsync(ctx, t)
	p.record(s, c, err)
	return call, err
}

// PoolStats is a snapshot of the pool's health.
type PoolStats struct {
	// Slots holds each connection's breaker, in slot order.
	Slots []BreakerStats
	// Retry is the pool's shared retry-budget activity.
	Retry RetryStats
}

// Stats snapshots every slot's breaker and the shared retry budget.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{
		Slots: make([]BreakerStats, len(p.slots)),
		Retry: p.budget.stats(),
	}
	for i := range p.slots {
		st.Slots[i] = p.slots[i].br.snapshot()
	}
	return st
}

// Close closes every connection; pending calls settle with ErrClosed.
// It always returns nil (Client.Close cannot fail); the error return keeps
// the io.Closer shape. closed is set first, so a probe completing mid-close
// either observes it or loses its install CAS to the nil swap here.
func (p *Pool) Close() error {
	p.closed.Store(true)
	for i := range p.slots {
		if c := p.slots[i].c.Swap(nil); c != nil {
			c.Close() //kstmvet:ignore pool shutdown: the Swap guarantees exactly one closer per slot
		}
	}
	return nil
}
