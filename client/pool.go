package client

import (
	"context"
	"sync"
	"sync/atomic"

	"kstm"
)

// Pool stripes calls over a fixed set of connections to one server:
// pipelining gives concurrency within a connection, the pool adds it across
// connections (more TCP buffers, more server-side handler goroutines). A
// connection that dies (server restart, network reset) is redialed lazily
// the next time its stripe comes up, so one transient failure does not
// poison 1/size of all future calls. All methods are safe for concurrent
// use.
type Pool struct {
	addr string
	opts []Option

	// Each slot has its own lock, so a redial (which can take a full dial
	// timeout) stalls only callers striped onto the dead slot — never the
	// healthy connections.
	slots  []poolSlot
	closed atomic.Bool
	next   atomic.Uint64
}

type poolSlot struct {
	mu sync.Mutex
	c  *Client
}

// DialPool opens size connections to addr. On any dial failure the already-
// opened connections are closed and the error returned.
func DialPool(addr string, size int, opts ...Option) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	p := &Pool{addr: addr, opts: opts, slots: make([]poolSlot, size)}
	for i := range p.slots {
		c, err := Dial(addr, opts...)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.slots[i].c = c
	}
	return p, nil
}

// Size returns the connection count.
func (p *Pool) Size() int { return len(p.slots) }

// pick round-robins the next connection, redialing a slot whose client has
// failed (single-flight per slot). A redial failure returns the error; the
// slot keeps its dead client and the next pick retries.
func (p *Pool) pick() (*Client, error) {
	s := &p.slots[p.next.Add(1)%uint64(len(p.slots))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.closed.Load() {
		if s.c == nil {
			return nil, ErrClosed
		}
		return s.c, nil // fails with the client's own ErrClosed
	}
	if s.c == nil || s.c.broken() {
		fresh, err := Dial(p.addr, p.opts...)
		if err != nil {
			return nil, err
		}
		if s.c != nil {
			s.c.Close() //kstmvet:ignore redial path: teardown under the slot lock keeps pick from handing out a half-closed client
		}
		s.c = fresh
	}
	return s.c, nil
}

// Do runs one task on the next connection.
func (p *Pool) Do(ctx context.Context, t kstm.Task) (Result, error) {
	c, err := p.pick()
	if err != nil {
		return Result{}, err
	}
	return c.Do(ctx, t)
}

// DoAsync starts one task on the next connection.
func (p *Pool) DoAsync(ctx context.Context, t kstm.Task) (*Call, error) {
	c, err := p.pick()
	if err != nil {
		return nil, err
	}
	return c.DoAsync(ctx, t)
}

// Close closes every connection; pending calls settle with ErrClosed.
// It always returns nil (Client.Close cannot fail); the error return keeps
// the io.Closer shape. closed is set before the slot locks are taken, so a
// pick mid-redial either observes it or has its fresh connection closed
// right here.
func (p *Pool) Close() error {
	p.closed.Store(true)
	for i := range p.slots {
		s := &p.slots[i]
		s.mu.Lock()
		if s.c != nil {
			s.c.Close() //kstmvet:ignore pool shutdown: closing under the slot lock serializes with pick's redial
		}
		s.mu.Unlock()
	}
	return nil
}
