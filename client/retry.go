package client

import (
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"net"
	"sync/atomic"
	"syscall"
	"time"

	"kstm"
	"kstm/internal/wire"
)

// Doer runs one task to completion: *Client and *Pool both implement it,
// so helpers like DoRetry work over a single connection or a striped pool.
type Doer interface {
	Do(ctx context.Context, t kstm.Task) (Result, error)
}

// isRetryable is the package's single transient-error classification: the
// predicate DoRetry, the pool's circuit breaker, and connection ejection all
// share (DESIGN.md §10.3). An error is retryable when trying again can
// plausibly succeed:
//
//   - ErrBusy: shed load — the one status that MEANS "try again";
//   - transport failures before a response: connection reset/EOF/truncated
//     frame (ErrClosed wraps the cause), a timed-out dial, or every pool
//     connection breaker-open (the server may be back any moment);
//
// and NOT retryable when the outcome is a decision: success, a workload
// error, StatusStopped (fail over instead), StatusCancelled,
// StatusBadRequest (resending the same bytes cannot help),
// StatusDeadline (hopeless unless the caller raises its budget), or the
// caller's own context expiring.
func isRetryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrBusy):
		return true
	case errors.Is(err, ErrStopped), errors.Is(err, ErrCancelled),
		errors.Is(err, ErrBadRequest), errors.Is(err, ErrDeadlineExpired):
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	}
	var se *ServerError
	if errors.As(err, &se) {
		return false
	}
	// Transport class: the connection died (or never came up) before a
	// response — ErrClosed wraps the cause for calls that were in flight.
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrNoHealthyConn) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, wire.ErrTruncated) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// isTransport reports the subset of retryable errors that indict the
// CONNECTION rather than the server's load: these feed the pool's circuit
// breaker, while ErrBusy (a healthy connection doing its job) must not.
func isTransport(err error) bool {
	return isRetryable(err) && !errors.Is(err, ErrBusy)
}

// Retry-budget constants, per the gRPC retry-throttling design: a bucket of
// budgetMax milli-tokens shared by everything retrying through one Client or
// Pool. A retry costs a full token and is allowed only while the bucket is
// above half; each success refunds a tenth of a token (capped at full). A
// fleet hammering a failing server drains the bucket after ~5 retries and
// must then earn retries back with successes — the retry storm that keeps a
// recovering server down never forms.
const (
	budgetMax    = 10_000 // 10 tokens, in milli-tokens
	budgetCost   = 1_000  // one token per retry
	budgetRefund = 100    // 0.1 token per success
)

// retryBudget is the shared token bucket. The zero value is invalid; use
// newRetryBudget.
type retryBudget struct {
	tokens atomic.Int64 // milli-tokens remaining
	spent  atomic.Uint64
	denied atomic.Uint64
}

func newRetryBudget() *retryBudget {
	b := &retryBudget{}
	b.tokens.Store(budgetMax)
	return b
}

// retrySpend asks for permission to retry; false means the budget is
// exhausted and the caller should surface its error instead.
func (b *retryBudget) retrySpend() bool {
	for {
		cur := b.tokens.Load()
		if cur <= budgetMax/2 {
			b.denied.Add(1)
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-budgetCost) {
			b.spent.Add(1)
			return true
		}
	}
}

// retryRefund credits a success back into the budget.
func (b *retryBudget) retryRefund() {
	for {
		cur := b.tokens.Load()
		next := min(cur+budgetRefund, budgetMax)
		if next == cur || b.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// stats snapshots the budget for observability.
func (b *retryBudget) stats() RetryStats {
	return RetryStats{
		Spent:  b.spent.Load(),
		Denied: b.denied.Load(),
		Tokens: float64(b.tokens.Load()) / budgetCost,
	}
}

// RetryStats reports a Client's or Pool's retry-budget activity.
type RetryStats struct {
	// Spent counts retries the budget allowed; Denied counts retries it
	// refused (the caller saw its error instead).
	Spent, Denied uint64
	// Tokens is the current budget level (budget full = 10).
	Tokens float64
}

// retryBudgeter is the optional Doer facet DoRetry consults: *Client and
// *Pool implement it over their own budgets.
type retryBudgeter interface {
	retrySpend() bool
	retryRefund()
}

// Retry backoff bounds: full-jitter exponential, doubling from base to cap.
// The base sits just above a loopback RTT so the first retry is nearly
// free; the cap keeps a persistently busy server from parking callers for
// long stretches of their deadline.
const (
	retryBaseDelay = 500 * time.Microsecond
	retryMaxDelay  = 50 * time.Millisecond
)

// DoRetry runs one task, retrying transient failures — per isRetryable:
// shed load (ErrBusy) and transport failures before a response — with
// jittered exponential backoff until the context expires. Every other
// outcome (success, workload error, ErrStopped, ErrCancelled, a queue-
// deadline shed) returns immediately: retrying those either cannot help or
// is the caller's policy decision.
//
// Retries draw on the Doer's shared budget when it has one (*Client and
// *Pool do): when the budget runs dry the error surfaces instead of
// retrying, so a fleet cannot retry-storm a recovering server. A server-
// supplied retry-after hint (BusyError, from admission control) raises the
// backoff floor for that attempt.
//
// This is the loop every busy-aware handler hand-rolled (see DESIGN.md §5.2
// on shed-vs-deadline): shed ≠ dead — back off and try again; retire only
// on your own deadline.
func DoRetry(ctx context.Context, d Doer, t kstm.Task) (Result, error) {
	budget, budgeted := d.(retryBudgeter)
	delay := retryBaseDelay
	for {
		res, err := d.Do(ctx, t)
		if err == nil {
			if budgeted {
				budget.retryRefund()
			}
			return res, nil
		}
		if !isRetryable(err) {
			return res, err
		}
		if budgeted && !budget.retrySpend() {
			return res, err
		}
		// Full jitter over [delay/2, delay]: desynchronizes a fleet of
		// shed clients so their retries don't arrive as one thundering
		// herd exactly when the queue drained.
		wait := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
		var be *BusyError
		if errors.As(err, &be) && be.RetryAfter > wait {
			wait = be.RetryAfter
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
		if delay < retryMaxDelay {
			delay *= 2
			if delay > retryMaxDelay {
				delay = retryMaxDelay
			}
		}
	}
}
