package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"kstm"
	"kstm/internal/wire"
)

// timeoutErr implements net.Error with Timeout() == true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "fake timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestIsRetryableClassification is the satellite's single-predicate table:
// every call site (DoRetry, breaker feed, pool ejection) shares exactly this
// classification, so the table IS the transient-error contract.
func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
		transport bool
	}{
		{"nil", nil, false, false},
		{"busy", ErrBusy, true, false},
		{"busy-hint", &BusyError{RetryAfter: time.Millisecond}, true, false},
		{"wrapped-busy", fmt.Errorf("op: %w", ErrBusy), true, false},
		{"stopped", ErrStopped, false, false},
		{"cancelled", ErrCancelled, false, false},
		{"bad-request", ErrBadRequest, false, false},
		{"deadline-shed", ErrDeadlineExpired, false, false},
		{"ctx-canceled", context.Canceled, false, false},
		{"ctx-deadline", context.DeadlineExceeded, false, false},
		{"server-error", &ServerError{Msg: "boom"}, false, false},
		{"closed", ErrClosed, true, true},
		{"closed-wrapping-eof", fmt.Errorf("%w: %w", ErrClosed, io.EOF), true, true},
		{"no-healthy-conn", ErrNoHealthyConn, true, true},
		{"eof", io.EOF, true, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true, true},
		{"truncated-frame", wire.ErrTruncated, true, true},
		{"net-closed", net.ErrClosed, true, true},
		{"conn-reset", syscall.ECONNRESET, true, true},
		{"epipe", syscall.EPIPE, true, true},
		{"conn-refused", syscall.ECONNREFUSED, true, true},
		{"dial-timeout", &net.OpError{Op: "dial", Err: timeoutErr{}}, true, true},
		{"unknown", errors.New("mystery"), false, false},
	}
	for _, c := range cases {
		if got := isRetryable(c.err); got != c.retryable {
			t.Errorf("isRetryable(%s) = %v, want %v", c.name, got, c.retryable)
		}
		if got := isTransport(c.err); got != c.transport {
			t.Errorf("isTransport(%s) = %v, want %v", c.name, got, c.transport)
		}
	}
}

// fakeDoer scripts Do outcomes and implements retryBudgeter over a real
// budget, so DoRetry's gating is observable.
type fakeDoer struct {
	errs   []error // consumed in order; past the end -> nil
	calls  int
	budget *retryBudget
}

func (f *fakeDoer) Do(ctx context.Context, t kstm.Task) (Result, error) {
	i := f.calls
	f.calls++
	if i < len(f.errs) {
		return Result{}, f.errs[i]
	}
	return Result{Value: true}, nil
}

func (f *fakeDoer) retrySpend() bool { return f.budget.retrySpend() }
func (f *fakeDoer) retryRefund()     { f.budget.retryRefund() }

// TestDoRetryRetriesTransient: retryable failures are retried until success;
// non-retryable ones surface immediately.
func TestDoRetryRetriesTransient(t *testing.T) {
	d := &fakeDoer{errs: []error{ErrBusy, io.EOF}, budget: newRetryBudget()}
	res, err := DoRetry(context.Background(), d, kstm.Task{Key: 1})
	if err != nil {
		t.Fatalf("DoRetry = %v", err)
	}
	if v, _ := res.Value.(bool); !v {
		t.Fatalf("DoRetry result = %+v", res)
	}
	if d.calls != 3 {
		t.Fatalf("Do called %d times, want 3", d.calls)
	}

	d = &fakeDoer{errs: []error{ErrBadRequest}, budget: newRetryBudget()}
	if _, err := DoRetry(context.Background(), d, kstm.Task{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("DoRetry = %v, want ErrBadRequest", err)
	}
	if d.calls != 1 {
		t.Fatalf("non-retryable error retried (%d calls)", d.calls)
	}
}

// TestDoRetryBudgetExhaustion: once the shared budget dips to half, retries
// are denied and the transient error surfaces; successes refund it.
func TestDoRetryBudgetExhaustion(t *testing.T) {
	b := newRetryBudget()
	// budgetMax/budgetCost = 10 tokens; retries allowed while > 5 tokens
	// remain, so exactly 5 spends succeed back to back.
	allowed := 0
	for b.retrySpend() {
		allowed++
	}
	if allowed != 5 {
		t.Fatalf("fresh budget allowed %d retries, want 5", allowed)
	}
	st := b.stats()
	if st.Spent != 5 || st.Denied != 1 {
		t.Fatalf("stats = %+v, want Spent 5, Denied 1", st)
	}
	// A drained budget makes DoRetry surface the transient error.
	d := &fakeDoer{errs: []error{ErrBusy, ErrBusy}, budget: b}
	if _, err := DoRetry(context.Background(), d, kstm.Task{}); !errors.Is(err, ErrBusy) {
		t.Fatalf("budget-denied DoRetry = %v, want ErrBusy", err)
	}
	if d.calls != 1 {
		t.Fatalf("denied retry still called Do %d times", d.calls)
	}
	// 50 successes refund 5 tokens; retries flow again.
	for i := 0; i < 50; i++ {
		b.retryRefund()
	}
	if !b.retrySpend() {
		t.Fatal("refunded budget still denies retries")
	}
}

// TestDoRetryHonorsContext: an expired context stops the retry loop with the
// context's error rather than spinning.
func TestDoRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	d := &fakeDoer{errs: make([]error, 1000), budget: newRetryBudget()}
	for i := range d.errs {
		d.errs[i] = ErrBusy // never succeeds
	}
	if _, err := DoRetry(ctx, d, kstm.Task{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoRetry under dead ctx = %v", err)
	}
}

// TestBreakerStateMachine drives closed -> open -> half-open -> closed and
// the re-open path, pinning the single-probe contract.
func TestBreakerStateMachine(t *testing.T) {
	var b breaker
	if !b.allow() {
		t.Fatal("zero-value breaker must be closed")
	}
	// Two failures: still closed (threshold is 3).
	b.recordFailure()
	b.recordFailure()
	if !b.allow() {
		t.Fatal("breaker tripped below threshold")
	}
	b.recordFailure()
	if b.allow() {
		t.Fatal("breaker allowed a call right after tripping")
	}
	if got := b.snapshot(); got.State != BreakerOpen || got.Tripped != 1 {
		t.Fatalf("snapshot after trip = %+v", got)
	}
	// After the cooldown exactly one caller wins the half-open probe.
	waitForProbe(t, &b)
	if b.allow() {
		t.Fatal("second caller claimed the half-open probe")
	}
	// Probe success closes; traffic flows.
	b.recordSuccess()
	if got := b.snapshot(); got.State != BreakerClosed {
		t.Fatalf("state after probe success = %v", got.State)
	}
	if !b.allow() {
		t.Fatal("closed breaker refused a call")
	}
	// Trip again: a failed probe re-opens immediately (one failure, not
	// three — half-open failures are conclusive).
	b.recordFailure()
	b.recordFailure()
	b.recordFailure()
	waitForProbe(t, &b)
	b.recordFailure()
	if got := b.snapshot(); got.State != BreakerOpen || got.Tripped != 3 {
		t.Fatalf("snapshot after failed probe = %+v (want open, 3 trips)", got)
	}
}

// waitForProbe polls allow until the breaker's cooldown grants the probe.
func waitForProbe(t *testing.T, b *breaker) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !b.allow() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never granted its half-open probe")
		}
		time.Sleep(time.Millisecond)
	}
	if got := b.snapshot().State; got != BreakerHalfOpen {
		t.Fatalf("state after granted probe = %v, want half-open", got)
	}
}

// TestBreakerStateStrings pins the observability labels.
func TestBreakerStateStrings(t *testing.T) {
	for want, s := range map[string]BreakerState{
		"closed": BreakerClosed, "open": BreakerOpen, "half-open": BreakerHalfOpen,
		"unknown": BreakerState(99),
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s, want)
		}
	}
}
