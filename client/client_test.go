package client

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"kstm"
	"kstm/internal/wire"
)

// fakeServer accepts one connection and hands its requests to respond,
// which returns the responses to write (possibly reordered).
func fakeServer(t *testing.T, respond func([]wire.Request) []wire.Response, nreq int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var reqs []wire.Request
		for len(reqs) < nreq {
			f, err := wire.ReadFrame(conn, nil)
			if err != nil || f.Type != wire.TypeRequest {
				return
			}
			reqs = append(reqs, f.Req)
		}
		var buf []byte
		for _, resp := range respond(reqs) {
			buf, err = wire.AppendResponse(buf[:0], resp)
			if err != nil {
				return
			}
			if _, err := conn.Write(buf); err != nil {
				return
			}
		}
		// Hold the connection open briefly so the client reads everything.
		time.Sleep(50 * time.Millisecond)
	}()
	return ln.Addr().String()
}

// TestOutOfOrderResponses: responses arriving in reverse order must settle
// the right calls — the whole point of carrying request ids.
func TestOutOfOrderResponses(t *testing.T) {
	addr := fakeServer(t, func(reqs []wire.Request) []wire.Response {
		out := make([]wire.Response, 0, len(reqs))
		for i := len(reqs) - 1; i >= 0; i-- {
			out = append(out, wire.Response{
				ID: reqs[i].ID, Status: wire.StatusOK, Value: uint64(reqs[i].Arg),
			})
		}
		return out
	}, 3)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	var calls []*Call
	for i := 0; i < 3; i++ {
		call, err := c.DoAsync(ctx, kstm.Task{Key: uint64(i), Arg: uint32(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	for i, call := range calls {
		res, err := call.Wait(ctx)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := res.Value.(uint64); got != uint64(100+i) {
			t.Fatalf("call %d got value %d, want %d (responses crossed)", i, got, 100+i)
		}
	}
}

// TestStatusMapping drives each status through a fake server and checks the
// error vocabulary.
func TestStatusMapping(t *testing.T) {
	statuses := []uint8{wire.StatusBusy, wire.StatusCancelled, wire.StatusStopped, wire.StatusBadRequest, wire.StatusError}
	wants := []error{ErrBusy, ErrCancelled, ErrStopped, ErrBadRequest, nil /* ServerError */}
	addr := fakeServer(t, func(reqs []wire.Request) []wire.Response {
		out := make([]wire.Response, len(reqs))
		for i, r := range reqs {
			out[i] = wire.Response{ID: r.ID, Status: statuses[i], Msg: "m"}
		}
		return out
	}, len(statuses))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	calls := make([]*Call, len(statuses))
	for i := range statuses {
		if calls[i], err = c.DoAsync(ctx, kstm.Task{}); err != nil {
			t.Fatal(err)
		}
	}
	for i, call := range calls {
		_, err := call.Wait(ctx)
		if wants[i] != nil {
			if !errors.Is(err, wants[i]) {
				t.Errorf("status %s: got %v, want %v", wire.StatusName(statuses[i]), err, wants[i])
			}
			continue
		}
		var se *ServerError
		if !errors.As(err, &se) || se.Msg != "m" {
			t.Errorf("StatusError: got %v, want ServerError(m)", err)
		}
	}
}

// TestPoolReconnects: a pool slot whose connection has failed is redialed
// on its next turn, so one reset does not permanently poison the stripe.
func TestPoolReconnects(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A minimal always-OK server that keeps accepting connections.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var buf []byte
				for {
					f, err := wire.ReadFrame(conn, nil)
					if err != nil || f.Type != wire.TypeRequest {
						return
					}
					buf, err = wire.AppendResponse(buf[:0], wire.Response{
						ID: f.Req.ID, Status: wire.StatusOK, Value: true,
					})
					if err != nil {
						return
					}
					if _, err := conn.Write(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	p, err := DialPool(ln.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	if _, err := p.Do(ctx, kstm.Task{Key: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a reset on both slots. Dead connections are ejected and
	// redialed by background probes — callers fail fast (ErrNoHealthyConn)
	// instead of blocking on the dial — so poll until the pool recovers.
	p.slots[0].c.Load().fail(errors.New("simulated reset"))
	p.slots[1].c.Load().fail(errors.New("simulated reset"))
	recoverDeadline := time.Now().Add(5 * time.Second)
	for {
		_, err := p.Do(ctx, kstm.Task{Key: 2})
		if err == nil {
			break
		}
		if !isRetryable(err) {
			t.Fatalf("call after reset: %v, want nil or a retryable error", err)
		}
		if time.Now().After(recoverDeadline) {
			t.Fatalf("pool did not recover: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		if _, err := p.Do(ctx, kstm.Task{Key: uint64(i)}); err != nil {
			t.Fatalf("call %d after recovery: %v", i, err)
		}
	}
	// After Close, calls fail and no redial happens.
	p.Close()
	if _, err := p.Do(ctx, kstm.Task{Key: 9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close call: %v, want ErrClosed", err)
	}
}

// TestPendingFailOnPeerClose: when the server vanishes mid-call, pending
// calls settle with ErrClosed instead of hanging.
func TestPendingFailOnPeerClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read one frame, then hang up without answering.
		wire.ReadFrame(conn, nil)
		conn.Close()
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	call, err := c.DoAsync(context.Background(), kstm.Task{Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := call.Wait(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	// New calls on the dead client fail fast.
	if _, err := c.DoAsync(context.Background(), kstm.Task{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("DoAsync on dead client: %v, want ErrClosed", err)
	}
}

// busyDoer sheds the first busyFor calls with ErrBusy, then succeeds.
type busyDoer struct {
	busyFor int
	calls   int
}

func (d *busyDoer) Do(ctx context.Context, t kstm.Task) (Result, error) {
	d.calls++
	if d.calls <= d.busyFor {
		return Result{}, ErrBusy
	}
	return Result{Value: true}, nil
}

// TestDoRetryBacksOffThroughBusy: shed load is retried until it clears, and
// the eventual result comes back intact.
func TestDoRetryBacksOffThroughBusy(t *testing.T) {
	d := &busyDoer{busyFor: 3}
	res, err := DoRetry(context.Background(), d, kstm.Task{Key: 1, Op: kstm.OpLookup, Arg: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != true {
		t.Errorf("result value = %v", res.Value)
	}
	if d.calls != 4 {
		t.Errorf("calls = %d, want 4 (3 busy + 1 success)", d.calls)
	}
}

// TestDoRetryStopsAtDeadline: a server that never stops shedding must not
// outlive the caller's deadline, and the deadline surfaces as the caller's
// own ctx error — the shed-vs-deadline split from DESIGN.md §5.2.
func TestDoRetryStopsAtDeadline(t *testing.T) {
	d := &busyDoer{busyFor: 1 << 30}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := DoRetry(ctx, d, kstm.Task{Key: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("DoRetry held the caller %v past a 30ms deadline", elapsed)
	}
	if d.calls < 2 {
		t.Errorf("calls = %d, want at least one retry before the deadline", d.calls)
	}
}

// TestDoRetryPassesOtherErrorsThrough: only ErrBusy retries — terminal
// statuses and workload errors return on the first call.
func TestDoRetryPassesOtherErrorsThrough(t *testing.T) {
	for _, terminal := range []error{ErrStopped, ErrCancelled, ErrBadRequest, &ServerError{Msg: "boom"}} {
		calls := 0
		d := doerFunc(func(ctx context.Context, t kstm.Task) (Result, error) {
			calls++
			return Result{}, terminal
		})
		if _, err := DoRetry(context.Background(), d, kstm.Task{}); !errors.Is(err, terminal) {
			t.Errorf("err = %v, want %v", err, terminal)
		}
		if calls != 1 {
			t.Errorf("%v: calls = %d, want 1", terminal, calls)
		}
	}
	// And a success needs no retries at all.
	d := &busyDoer{}
	if _, err := DoRetry(context.Background(), d, kstm.Task{}); err != nil || d.calls != 1 {
		t.Errorf("success path: err=%v calls=%d", err, d.calls)
	}
}

type doerFunc func(ctx context.Context, t kstm.Task) (Result, error)

func (f doerFunc) Do(ctx context.Context, t kstm.Task) (Result, error) { return f(ctx, t) }

// TestDoRetryOverWire drives DoRetry against a wire server that answers
// each request as it arrives: one busy response, then OK — the client-side
// contract end to end. (fakeServer batches all requests before responding,
// which would deadlock against DoRetry's sequential retries.)
func TestDoRetryOverWire(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var buf []byte
		for n := 0; n < 2; n++ {
			f, err := wire.ReadFrame(conn, nil)
			if err != nil || f.Type != wire.TypeRequest {
				return
			}
			resp := wire.Response{ID: f.Req.ID, Status: wire.StatusBusy, Msg: "server busy"}
			if n == 1 {
				resp = wire.Response{ID: f.Req.ID, Status: wire.StatusOK, Value: true}
			}
			buf, err = wire.AppendResponse(buf[:0], resp)
			if err != nil {
				return
			}
			if _, err := conn.Write(buf); err != nil {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}()
	addr := ln.Addr().String()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := DoRetry(context.Background(), c, kstm.Task{Key: 7, Op: kstm.OpLookup, Arg: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != true {
		t.Errorf("value = %v, want true", res.Value)
	}
}
