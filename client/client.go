// Package client speaks the kstmd wire protocol: Dial a server, Do a task
// and get its value back, or DoAsync many tasks and let them pipeline over
// one connection — requests carry ids, responses return out of order, and a
// single reader goroutine settles each pending call as its frame arrives.
//
// Server statuses surface as errors a handler can branch on:
//
//	res, err := c.Do(ctx, kstm.Task{Key: k, Op: kstm.OpLookup, Arg: k})
//	switch {
//	case errors.Is(err, client.ErrBusy):       // shed: back off and retry
//	case errors.Is(err, client.ErrCancelled):  // abandoned before execution
//	case errors.Is(err, client.ErrStopped):    // server draining: fail over
//	}
//
// For fan-out traffic, Pool stripes calls over several connections.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kstm"
	"kstm/internal/wire"
)

// Errors mapped from response statuses (DESIGN.md "Network front-end").
var (
	// ErrBusy: the server shed the request (reject-mode backpressure).
	// Retry after backoff; the task was never queued.
	ErrBusy = errors.New("client: server busy")
	// ErrCancelled: the task was abandoned before execution (the
	// connection's server-side context was cancelled mid-queue).
	ErrCancelled = errors.New("client: task cancelled before execution")
	// ErrStopped: the server is draining or stopped.
	ErrStopped = errors.New("client: server stopping")
	// ErrBadRequest: the server rejected the request as malformed.
	ErrBadRequest = errors.New("client: bad request")
	// ErrClosed: the connection is closed (locally, by the peer, or by a
	// protocol error); pending calls settle with it, wrapped around the
	// underlying cause.
	ErrClosed = errors.New("client: connection closed")
)

// ServerError is a workload hard error relayed from the server.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "client: server error: " + e.Msg }

// Result is one completed task's payload.
type Result struct {
	// Value is the task's value as decoded from the wire: nil, bool,
	// uint64, int64, float64 or []byte.
	Value any
	// Wait and Exec are the executor-side queue-wait and service times.
	Wait, Exec time.Duration
}

// Call is one pending request (the client-side Future).
type Call struct {
	id   uint64
	done chan struct{}
	res  Result
	err  error
}

// Done returns a channel closed when the response has arrived.
func (c *Call) Done() <-chan struct{} { return c.done }

// Wait blocks for the response or ctx. Like Future.Wait, a ctx.Err() return
// abandons only the wait: the request stays in flight on the server, which
// may still execute it.
func (c *Call) Wait(ctx context.Context) (Result, error) {
	select {
	case <-c.done:
		return c.res, c.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Option configures Dial.
type Option func(*options)

type options struct {
	dialTimeout time.Duration
}

// WithDialTimeout bounds the TCP connect (default 10s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) { o.dialTimeout = d }
}

// Client is one connection to a kstmd server. All methods are safe for
// concurrent use; concurrent calls pipeline over the single connection.
type Client struct {
	conn    net.Conn
	wmu     sync.Mutex // serializes frame writes; guards bw, scratch, needFlush
	bw      *bufio.Writer
	scratch []byte // frame-encoding buffer reused across calls
	// pend counts senders between their declaration of intent and their
	// write: a sender that observes later arrivals skips its Flush and lets
	// the LAST writer in the burst flush once — auto-coalescing that turns N
	// concurrent DoAsync calls into one syscall without any timer.
	pend      atomic.Int64
	needFlush bool // buffered frames awaiting the burst's last writer
	nextID    atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*Call
	closed  bool
	err     error // settled cause, wrapped in ErrClosed

	readerDone chan struct{}
}

// Dial connects to a kstmd server.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{dialTimeout: 10 * time.Second}
	for _, opt := range opts {
		opt(&o)
	}
	conn, err := net.DialTimeout("tcp", addr, o.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (any net.Conn, e.g. a pipe in
// tests) and starts its reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, 32*1024),
		pending:    make(map[uint64]*Call),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// DoAsync sends one task and returns its pending Call. ctx bounds only the
// send; pass it (or another) to Call.Wait for the response. If ctx fires
// while the frame is mid-write (a full send buffer under a stalled server),
// the connection is torn down — a partially written frame is unrecoverable
// on a length-prefixed stream — and pending calls settle with ErrClosed.
func (c *Client) DoAsync(ctx context.Context, t kstm.Task) (*Call, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	call := &Call{id: c.nextID.Add(1), done: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[call.id] = call
	c.mu.Unlock()

	c.pend.Add(1)
	c.wmu.Lock()
	// Re-check after the (possibly long) wait for the write lock, and make
	// a cancellation mid-write unblock the socket: the deadline poisons
	// only writes, and only until stop() disarms it. Both the cancellation
	// plumbing and its allocations are skipped for uncancellable contexts,
	// and the frame is built in a scratch buffer reused under wmu — the
	// pipelining hot path stays allocation-free per call.
	if err := ctx.Err(); err != nil {
		ferr := c.abandonWriteLocked()
		c.wmu.Unlock()
		c.forget(call.id)
		if ferr != nil {
			c.fail(ferr)
		}
		return nil, err
	}
	c.scratch = wire.AppendRequest(c.scratch[:0], wire.Request{
		ID: call.id, Key: t.Key, Op: uint8(t.Op), Arg: t.Arg,
	})
	err := c.writeLocked(ctx, c.scratch) //kstmvet:ignore socket writes serialize under wmu by design; the write-poison handshake bounds the wait
	c.wmu.Unlock()
	if err != nil {
		c.forget(call.id)
		c.fail(err)
		// The connection is gone either way (a partial frame corrupts the
		// stream), but a write the CALLER's context interrupted reports as
		// that context's error, so deadline/cancel branching in handlers
		// stays correct.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("%w: %w", ErrClosed, err)
	}
	return call, nil
}

// DoBatch sends tasks as version-1 batch frames — one frame (one syscall)
// carries up to wire.MaxBatch requests; larger batches split across frames
// but still land in one write burst — and returns their pending Calls,
// position-aligned with tasks. Responses arrive independently and possibly
// out of order; Wait each Call. ctx bounds only the send. On error no task
// was sent (a batch frame is all-or-nothing on the stream).
//
// Talking batch also invites the server to coalesce ITS responses into
// batch frames on this connection, shrinking the return path's syscalls
// symmetrically.
func (c *Client) DoBatch(ctx context.Context, tasks []kstm.Task) ([]*Call, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	calls := make([]*Call, len(tasks))
	reqs := make([]wire.Request, len(tasks))
	for i, t := range tasks {
		calls[i] = &Call{id: c.nextID.Add(1), done: make(chan struct{})}
		reqs[i] = wire.Request{ID: calls[i].id, Key: t.Key, Op: uint8(t.Op), Arg: t.Arg}
	}
	forgetAll := func() {
		c.mu.Lock()
		for _, call := range calls {
			delete(c.pending, call.id)
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	for _, call := range calls {
		c.pending[call.id] = call
	}
	c.mu.Unlock()

	c.pend.Add(1)
	c.wmu.Lock()
	if err := ctx.Err(); err != nil {
		ferr := c.abandonWriteLocked()
		c.wmu.Unlock()
		forgetAll()
		if ferr != nil {
			c.fail(ferr)
		}
		return nil, err
	}
	c.scratch = c.scratch[:0]
	for rest := reqs; len(rest) > 0; {
		n := min(len(rest), wire.MaxBatch)
		// Cannot fail: the chunk is non-empty and within MaxBatch.
		c.scratch, _ = wire.AppendBatchRequest(c.scratch, rest[:n])
		rest = rest[n:]
	}
	err := c.writeLocked(ctx, c.scratch) //kstmvet:ignore socket writes serialize under wmu by design; the write-poison handshake bounds the wait
	c.wmu.Unlock()
	if err != nil {
		forgetAll()
		c.fail(err)
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("%w: %w", ErrClosed, err)
	}
	return calls, nil
}

// writeLocked writes buf into the connection's buffered writer under wmu,
// poisoning the socket write if ctx fires mid-write, and flushes — unless
// another sender has already declared intent (c.pend), in which case the
// flush is deferred to the burst's last writer: back-to-back pipelined
// sends coalesce into one syscall with no timer and no added latency,
// because the last writer always flushes before releasing wmu to a reader
// of its result.
func (c *Client) writeLocked(ctx context.Context, buf []byte) error {
	var poisoned chan struct{}
	var stop func() bool
	if ctx.Done() != nil {
		poisoned = make(chan struct{})
		stop = context.AfterFunc(ctx, func() {
			c.conn.SetWriteDeadline(time.Unix(1, 0)) // long past: fail the write now
			close(poisoned)
		})
	}
	_, err := c.bw.Write(buf)
	if err == nil {
		if c.pend.Add(-1) > 0 {
			c.needFlush = true
		} else {
			c.needFlush = false
			err = c.bw.Flush()
		}
	} else {
		c.pend.Add(-1)
	}
	if stop != nil {
		if !stop() {
			// The poison fired (perhaps after the write already
			// succeeded); wait for it to land before clearing, so the
			// reset below cannot be overwritten and leak a dead deadline
			// to the next caller.
			<-poisoned
		}
		c.conn.SetWriteDeadline(time.Time{})
	}
	return err
}

// abandonWriteLocked settles the coalescing accounting for a sender that
// declared intent but wrote nothing (its ctx died waiting for wmu): if it
// was the burst's last writer and earlier frames await a flush, it must
// flush them — otherwise they would sit in the buffer until the next send.
func (c *Client) abandonWriteLocked() error {
	if c.pend.Add(-1) > 0 || !c.needFlush {
		return nil
	}
	c.needFlush = false
	return c.bw.Flush()
}

// Doer runs one task to completion: *Client and *Pool both implement it,
// so helpers like DoRetry work over a single connection or a striped pool.
type Doer interface {
	Do(ctx context.Context, t kstm.Task) (Result, error)
}

// Retry backoff bounds: full-jitter exponential, doubling from base to cap.
// The base sits just above a loopback RTT so the first retry is nearly
// free; the cap keeps a persistently busy server from parking callers for
// long stretches of their deadline.
const (
	retryBaseDelay = 500 * time.Microsecond
	retryMaxDelay  = 50 * time.Millisecond
)

// DoRetry runs one task, retrying ErrBusy — shed load, the one status that
// MEANS "try again" — with jittered exponential backoff until the context
// expires. Every other outcome (success, workload error, ErrStopped,
// ErrCancelled, connection failure) returns immediately: retrying those
// either cannot help or is the caller's policy decision. On a context with
// no deadline DoRetry keeps trying for as long as the server keeps
// shedding.
//
// This is the loop every busy-aware handler hand-rolled (see DESIGN.md §5.2
// on shed-vs-deadline): shed ≠ dead — back off and try again; retire only
// on your own deadline.
func DoRetry(ctx context.Context, d Doer, t kstm.Task) (Result, error) {
	delay := retryBaseDelay
	for {
		res, err := d.Do(ctx, t)
		if !errors.Is(err, ErrBusy) {
			return res, err
		}
		// Full jitter over [delay/2, delay]: desynchronizes a fleet of
		// shed clients so their retries don't arrive as one thundering
		// herd exactly when the queue drained.
		wait := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
		if delay < retryMaxDelay {
			delay *= 2
			if delay > retryMaxDelay {
				delay = retryMaxDelay
			}
		}
	}
}

// forget drops a call that was registered but never sent.
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// broken reports whether the client has failed and will refuse new calls.
func (c *Client) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Do sends one task and waits for its result: the network analogue of
// kstm.Executor.Submit. The returned error is the task's completion error
// (nil means the transaction committed server-side) or ctx's.
func (c *Client) Do(ctx context.Context, t kstm.Task) (Result, error) {
	call, err := c.DoAsync(ctx, t)
	if err != nil {
		return Result{}, err
	}
	return call.Wait(ctx)
}

// DoBool is Do for boolean-valued dictionary operations (insert's "was
// absent", delete's "was present", lookup's hit).
func (c *Client) DoBool(ctx context.Context, t kstm.Task) (bool, error) {
	res, err := c.Do(ctx, t)
	if err != nil {
		return false, err
	}
	b, ok := res.Value.(bool)
	if !ok {
		return false, fmt.Errorf("client: task value is %T, want bool", res.Value)
	}
	return b, nil
}

// Close tears the connection down; pending calls settle with ErrClosed.
func (c *Client) Close() error {
	c.fail(net.ErrClosed)
	<-c.readerDone
	return nil
}

// fail settles the client exactly once: marks it closed, closes the socket
// (unblocking the reader) and fails every pending call.
func (c *Client) fail(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = fmt.Errorf("%w: %w", ErrClosed, cause)
	pend := c.pending
	c.pending = nil
	err := c.err
	c.mu.Unlock()
	c.conn.Close()
	for _, call := range pend {
		call.err = err
		close(call.done)
	}
}

// readLoop decodes response frames — single or batch — and settles their
// calls.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.conn, 32*1024)
	scratch := make([]byte, 256)
	for {
		frame, err := wire.ReadFrame(br, &scratch)
		if err != nil {
			c.fail(err)
			return
		}
		switch frame.Type {
		case wire.TypeResponse:
			c.settleResp(frame.Resp)
		case wire.TypeBatchResponse:
			for _, resp := range frame.Resps {
				c.settleResp(resp)
			}
		default:
			c.fail(fmt.Errorf("unexpected frame type %d", frame.Type))
			return
		}
	}
}

// settleResp completes the pending call a response answers.
func (c *Client) settleResp(resp wire.Response) {
	c.mu.Lock()
	call := c.pending[resp.ID]
	delete(c.pending, resp.ID)
	c.mu.Unlock()
	if call == nil {
		// A response for a call we no longer track — a server bug
		// or duplicate; drop it rather than kill the connection.
		return
	}
	call.res = Result{
		Value: resp.Value,
		Wait:  time.Duration(resp.WaitNS),
		Exec:  time.Duration(resp.ExecNS),
	}
	call.err = statusError(resp)
	close(call.done)
}

// statusError maps a response status to the package's error vocabulary.
func statusError(resp wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusBusy:
		return ErrBusy
	case wire.StatusCancelled:
		return ErrCancelled
	case wire.StatusStopped:
		return ErrStopped
	case wire.StatusBadRequest:
		if resp.Msg != "" {
			return fmt.Errorf("%w: %s", ErrBadRequest, resp.Msg)
		}
		return ErrBadRequest
	default:
		return &ServerError{Msg: resp.Msg}
	}
}
