// Package client speaks the kstmd wire protocol: Dial a server, Do a task
// and get its value back, or DoAsync many tasks and let them pipeline over
// one connection — requests carry ids, responses return out of order, and a
// single reader goroutine settles each pending call as its frame arrives.
//
// Server statuses surface as errors a handler can branch on:
//
//	res, err := c.Do(ctx, kstm.Task{Key: k, Op: kstm.OpLookup, Arg: k})
//	switch {
//	case errors.Is(err, client.ErrBusy):       // shed: back off and retry
//	case errors.Is(err, client.ErrCancelled):  // abandoned before execution
//	case errors.Is(err, client.ErrStopped):    // server draining: fail over
//	}
//
// For fan-out traffic, Pool stripes calls over several connections.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kstm"
	"kstm/internal/wire"
)

// Errors mapped from response statuses (DESIGN.md "Network front-end").
var (
	// ErrBusy: the server shed the request (reject-mode backpressure).
	// Retry after backoff; the task was never queued.
	ErrBusy = errors.New("client: server busy")
	// ErrCancelled: the task was abandoned before execution (the
	// connection's server-side context was cancelled mid-queue).
	ErrCancelled = errors.New("client: task cancelled before execution")
	// ErrStopped: the server is draining or stopped.
	ErrStopped = errors.New("client: server stopping")
	// ErrBadRequest: the server rejected the request as malformed.
	ErrBadRequest = errors.New("client: bad request")
	// ErrClosed: the connection is closed (locally, by the peer, or by a
	// protocol error); pending calls settle with it, wrapped around the
	// underlying cause.
	ErrClosed = errors.New("client: connection closed")
	// ErrDeadlineExpired: the request's propagated deadline expired while
	// the task sat in the server's queue; it was shed without executing.
	// Retrying with the same budget is pointless — raise the deadline or
	// treat the work as abandoned.
	ErrDeadlineExpired = errors.New("client: deadline expired in server queue")
	// ErrNoHealthyConn: every pool connection is down with its circuit
	// breaker open (no probe due yet). Fail-fast analogue of ErrBusy for
	// transport health; retryable, since a probe may revive a slot any
	// moment.
	ErrNoHealthyConn = errors.New("client: no healthy connection (breaker open)")
)

// ServerError is a workload hard error relayed from the server.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "client: server error: " + e.Msg }

// BusyError is the rich form of ErrBusy carrying the server's retry-after
// hint (admission control answers StatusBusy with the time until the next
// token). errors.Is(err, ErrBusy) matches it, so existing busy handling
// keeps working; DoRetry uses the hint as its backoff floor.
type BusyError struct{ RetryAfter time.Duration }

func (e *BusyError) Error() string {
	return fmt.Sprintf("client: server busy (retry after %v)", e.RetryAfter)
}

// Is makes errors.Is(err, ErrBusy) succeed for BusyError values.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// Result is one completed task's payload.
type Result struct {
	// Value is the task's value as decoded from the wire: nil, bool,
	// uint64, int64, float64 or []byte.
	Value any
	// Wait and Exec are the executor-side queue-wait and service times.
	Wait, Exec time.Duration
}

// Call is one pending request (the client-side Future).
type Call struct {
	id   uint64
	done chan struct{}
	res  Result
	err  error
}

// Done returns a channel closed when the response has arrived.
func (c *Call) Done() <-chan struct{} { return c.done }

// Wait blocks for the response or ctx. Like Future.Wait, a ctx.Err() return
// abandons only the wait: the request stays in flight on the server, which
// may still execute it.
func (c *Call) Wait(ctx context.Context) (Result, error) {
	select {
	case <-c.done:
		return c.res, c.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Option configures Dial.
type Option func(*options)

type options struct {
	dialTimeout time.Duration
}

// WithDialTimeout bounds the TCP connect (default 10s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) { o.dialTimeout = d }
}

// Client is one connection to a kstmd server. All methods are safe for
// concurrent use; concurrent calls pipeline over the single connection.
type Client struct {
	conn    net.Conn
	wmu     sync.Mutex // serializes frame writes; guards bw, scratch, needFlush
	bw      *bufio.Writer
	scratch []byte // frame-encoding buffer reused across calls
	// pend counts senders between their declaration of intent and their
	// write: a sender that observes later arrivals skips its Flush and lets
	// the LAST writer in the burst flush once — auto-coalescing that turns N
	// concurrent DoAsync calls into one syscall without any timer.
	pend      atomic.Int64
	needFlush bool // buffered frames awaiting a flush (last writer or ack)
	nextID    atomic.Uint64

	// inflight counts registered-but-unsettled calls; with unflushed (the
	// requests sitting in bw since the last Flush, guarded by wmu) it gives
	// the burst's last writer the observed wire depth:
	// inflight - unflushed ≥ coalesceMinWire means enough responses are
	// still due that the reader's ack-flush (flushPending) will move these
	// frames soon — so the writer skips its syscall and lets arriving acks
	// clock the flushes, adaptively batching sequential pipelined senders
	// the pend burst counter cannot see. The writer re-checks the depth
	// AFTER setting flushPending (store-then-recheck) against the reader's
	// decrement-then-load in settleResp: one side always sees the other, so
	// a deferred flush can never strand.
	inflight     atomic.Int64
	unflushed    int
	flushPending atomic.Bool
	// flushTimer is the deferral's escape hatch, armed once per defer cycle
	// (guarded by wmu): a server may legitimately withhold every response
	// until it has seen a LATER request (batch semantics), which would
	// starve a purely ack-clocked flush — the Nagle/delayed-ack interlock.
	// The timer bounds how long a deferred frame can sit at
	// coalesceMaxDelay regardless of the peer's behavior.
	flushTimer *time.Timer

	mu      sync.Mutex
	pending map[uint64]*Call
	closed  bool
	err     error // settled cause, wrapped in ErrClosed

	// budget is the connection's shared retry budget (DoRetry spends it;
	// successes refund it). A Client created by a Pool shares the POOL's
	// budget instead, so a fleet of striped connections throttles as one.
	budget *retryBudget

	readerDone chan struct{}
}

// Dial connects to a kstmd server.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{dialTimeout: 10 * time.Second}
	for _, opt := range opts {
		opt(&o)
	}
	conn, err := net.DialTimeout("tcp", addr, o.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (any net.Conn, e.g. a pipe in
// tests) and starts its reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, 32*1024),
		pending:    make(map[uint64]*Call),
		budget:     newRetryBudget(),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// retrySpend / retryRefund implement retryBudgeter over the client's budget.
func (c *Client) retrySpend() bool { return c.budget.retrySpend() }
func (c *Client) retryRefund()     { c.budget.retryRefund() }

// RetryStats reports the client's retry-budget activity.
func (c *Client) RetryStats() RetryStats { return c.budget.stats() }

// reqDeadline derives the wire deadline from the caller's context: the
// remaining budget, as relative nanoseconds, so the server can shed the task
// if it is still queued past it (DESIGN.md §10.1). Contexts without a
// deadline propagate none. A context already past its deadline returns
// expired=true — the caller bails with ctx.Err() before touching the wire.
func reqDeadline(ctx context.Context) (ns uint64, expired bool) {
	d, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	rem := time.Until(d)
	if rem <= 0 {
		return 0, true
	}
	return uint64(rem), false
}

// DoAsync sends one task and returns its pending Call. ctx bounds only the
// send; pass it (or another) to Call.Wait for the response. If ctx fires
// while the frame is mid-write (a full send buffer under a stalled server),
// the connection is torn down — a partially written frame is unrecoverable
// on a length-prefixed stream — and pending calls settle with ErrClosed.
//
// When ctx carries a deadline, its remaining budget rides with the request
// (DESIGN.md §10.1): a server whose queue outlives the budget sheds the task
// without executing it (the call settles with ErrDeadlineExpired) instead of
// burning a worker on a result nobody is waiting for.
func (c *Client) DoAsync(ctx context.Context, t kstm.Task) (*Call, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deadlineNS, expired := reqDeadline(ctx)
	if expired {
		return nil, context.DeadlineExceeded
	}
	call := &Call{id: c.nextID.Add(1), done: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[call.id] = call
	c.inflight.Add(1)
	c.mu.Unlock()

	c.pend.Add(1)
	c.wmu.Lock()
	// Re-check after the (possibly long) wait for the write lock, and make
	// a cancellation mid-write unblock the socket: the deadline poisons
	// only writes, and only until stop() disarms it. Both the cancellation
	// plumbing and its allocations are skipped for uncancellable contexts,
	// and the frame is built in a scratch buffer reused under wmu — the
	// pipelining hot path stays allocation-free per call.
	if err := ctx.Err(); err != nil {
		ferr := c.abandonWriteLocked()
		c.wmu.Unlock()
		c.forget(call.id)
		if ferr != nil {
			c.fail(ferr)
		}
		return nil, err
	}
	c.scratch = wire.AppendRequest(c.scratch[:0], wire.Request{
		ID: call.id, Key: t.Key, Op: uint8(t.Op), Arg: t.Arg,
		DeadlineNS: deadlineNS,
	})
	err := c.writeLocked(ctx, c.scratch, 1) //kstmvet:ignore socket writes serialize under wmu by design; the write-poison handshake bounds the wait
	c.wmu.Unlock()
	if err != nil {
		c.forget(call.id)
		c.fail(err)
		// The connection is gone either way (a partial frame corrupts the
		// stream), but a write the CALLER's context interrupted reports as
		// that context's error, so deadline/cancel branching in handlers
		// stays correct.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("%w: %w", ErrClosed, err)
	}
	return call, nil
}

// DoBatch sends tasks as version-1 batch frames — one frame (one syscall)
// carries up to wire.MaxBatch requests; larger batches split across frames
// but still land in one write burst — and returns their pending Calls,
// position-aligned with tasks. Responses arrive independently and possibly
// out of order; Wait each Call. ctx bounds only the send. On error no task
// was sent (a batch frame is all-or-nothing on the stream).
//
// Talking batch also invites the server to coalesce ITS responses into
// batch frames on this connection, shrinking the return path's syscalls
// symmetrically.
//
// A ctx deadline propagates to every task in the batch (they share the one
// context, so the budget is all-or-none); deadline-carrying batch frames hold
// fewer entries (wire.MaxBatchDeadline), which only changes where the chunk
// boundaries fall.
func (c *Client) DoBatch(ctx context.Context, tasks []kstm.Task) ([]*Call, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deadlineNS, expired := reqDeadline(ctx)
	if expired {
		return nil, context.DeadlineExceeded
	}
	calls := make([]*Call, len(tasks))
	reqs := make([]wire.Request, len(tasks))
	for i, t := range tasks {
		calls[i] = &Call{id: c.nextID.Add(1), done: make(chan struct{})}
		reqs[i] = wire.Request{
			ID: calls[i].id, Key: t.Key, Op: uint8(t.Op), Arg: t.Arg,
			DeadlineNS: deadlineNS,
		}
	}
	forgetAll := func() {
		c.mu.Lock()
		for _, call := range calls {
			if _, ok := c.pending[call.id]; ok {
				delete(c.pending, call.id)
				c.inflight.Add(-1)
			}
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	for _, call := range calls {
		c.pending[call.id] = call
	}
	c.inflight.Add(int64(len(calls)))
	c.mu.Unlock()

	c.pend.Add(1)
	c.wmu.Lock()
	if err := ctx.Err(); err != nil {
		ferr := c.abandonWriteLocked()
		c.wmu.Unlock()
		forgetAll()
		if ferr != nil {
			c.fail(ferr)
		}
		return nil, err
	}
	c.scratch = c.scratch[:0]
	chunk := wire.MaxBatch
	if deadlineNS != 0 {
		chunk = wire.MaxBatchDeadline // wider entries, smaller frames
	}
	for rest := reqs; len(rest) > 0; {
		n := min(len(rest), chunk)
		// Cannot fail: the chunk is non-empty and within the type's bound.
		c.scratch, _ = wire.AppendBatchRequest(c.scratch, rest[:n])
		rest = rest[n:]
	}
	err := c.writeLocked(ctx, c.scratch, len(tasks)) //kstmvet:ignore socket writes serialize under wmu by design; the write-poison handshake bounds the wait
	c.wmu.Unlock()
	if err != nil {
		forgetAll()
		c.fail(err)
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("%w: %w", ErrClosed, err)
	}
	return calls, nil
}

// Adaptive-coalescing thresholds: a burst's last writer defers its flush to
// the reader's ack-clock only while at least coalesceMinWire responses are
// still due (so an ack that triggers the flush is guaranteed to arrive) and
// at most coalesceMaxUnflushed requests sit buffered (bounding the latency
// a deferred frame can accrue behind a slow server).
const (
	coalesceMinWire      = 2
	coalesceMaxUnflushed = 64
	// coalesceMaxDelay bounds the extra latency a deferred flush can add
	// when the expected ack never comes (see Client.flushTimer). At a few
	// loopback RTTs it is invisible in the pipelined steady state the
	// deferral targets, where acks flush far sooner.
	coalesceMaxDelay = 200 * time.Microsecond
)

// writeLocked writes buf (carrying n requests) into the connection's
// buffered writer under wmu, poisoning the socket write if ctx fires
// mid-write, and flushes — unless the flush can be safely deferred:
//
//   - another sender has already declared intent (c.pend): the LAST writer
//     of the burst flushes once for everyone — concurrent senders coalesce
//     with no timer and no added latency;
//   - the observed wire depth (inflight - unflushed) is at least
//     coalesceMinWire: enough responses are still due that the reader's
//     ack-flush will carry these frames, so sequential pipelined senders —
//     invisible to the pend burst counter — coalesce too, clocked by acks.
//
// The deferral re-checks the wire depth after publishing flushPending; see
// the field comment for why that makes a stranded flush impossible.
func (c *Client) writeLocked(ctx context.Context, buf []byte, n int) error {
	var poisoned chan struct{}
	var stop func() bool
	if ctx.Done() != nil {
		poisoned = make(chan struct{})
		stop = context.AfterFunc(ctx, func() {
			c.conn.SetWriteDeadline(time.Unix(1, 0)) // long past: fail the write now
			close(poisoned)
		})
	}
	_, err := c.bw.Write(buf)
	if err == nil {
		c.unflushed += n
		if c.pend.Add(-1) > 0 {
			c.needFlush = true
		} else if c.inflight.Load()-int64(c.unflushed) >= coalesceMinWire &&
			c.unflushed <= coalesceMaxUnflushed {
			c.needFlush = true
			if !c.flushPending.Swap(true) {
				if c.flushTimer == nil {
					c.flushTimer = time.AfterFunc(coalesceMaxDelay, c.timerFlush)
				} else {
					c.flushTimer.Reset(coalesceMaxDelay)
				}
			}
			if c.inflight.Load()-int64(c.unflushed) < coalesceMinWire {
				// Store-then-recheck lost: the outstanding responses raced
				// in before the flag was visible. Their readers may have
				// missed it, so nobody would ever ack-flush — do it now.
				c.flushPending.Store(false)
				c.needFlush = false
				c.unflushed = 0
				err = c.bw.Flush()
			}
		} else {
			c.needFlush = false
			c.flushPending.Store(false)
			c.unflushed = 0
			err = c.bw.Flush()
		}
	} else {
		c.pend.Add(-1)
	}
	if stop != nil {
		if !stop() {
			// The poison fired (perhaps after the write already
			// succeeded); wait for it to land before clearing, so the
			// reset below cannot be overwritten and leak a dead deadline
			// to the next caller.
			<-poisoned
		}
		c.conn.SetWriteDeadline(time.Time{})
	}
	return err
}

// abandonWriteLocked settles the coalescing accounting for a sender that
// declared intent but wrote nothing (its ctx died waiting for wmu): if it
// was the burst's last writer and earlier frames await a flush, it must
// flush them — otherwise they would sit in the buffer until the next send.
func (c *Client) abandonWriteLocked() error {
	if c.pend.Add(-1) > 0 || !c.needFlush {
		return nil
	}
	c.needFlush = false
	c.flushPending.Store(false)
	c.unflushed = 0
	return c.bw.Flush()
}

// ackFlush is the reader-side half of adaptive coalescing: each arriving
// response checks whether a writer deferred its flush to the ack-clock and,
// if so, performs it. Flushing whatever has accumulated (not
// one-frame-per-ack) keeps the pipeline self-clocking — every response
// batch pushes the full backlog, so throughput never stop-and-goes waiting
// for the wire to drain. The fast path — nothing deferred — is one atomic
// load.
//
// TryLock, never Lock: the reader must stay available to drain the socket
// even while a writer holds wmu blocked in a Flush the peer has yet to
// absorb — a blocking acquire here closes a deadlock cycle (writer waits on
// peer read, peer waits on our read, reader waits on wmu). A failed try is
// safe to skip: the writer holding wmu either flushes before releasing or
// re-defers with its depth recheck, which (running after this response's
// decrement) guarantees more responses — and so more ackFlush attempts —
// are still due.
func (c *Client) ackFlush() {
	if !c.flushPending.Load() {
		return
	}
	if !c.wmu.TryLock() {
		return
	}
	c.flushDeferredLocked()
}

// timerFlush is flushTimer's callback: the deferral's bounded escape hatch
// when the ack-clock stalls. Unlike the reader it may block on wmu — it
// runs on its own goroutine, so it cannot close the reader's deadlock
// cycle.
func (c *Client) timerFlush() {
	if !c.flushPending.Load() {
		return
	}
	c.wmu.Lock()
	c.flushDeferredLocked()
}

// flushDeferredLocked performs (and disarms) a deferred flush; the caller
// holds wmu, which is released here.
func (c *Client) flushDeferredLocked() {
	c.flushPending.Store(false)
	if c.flushTimer != nil {
		c.flushTimer.Stop()
	}
	var err error
	if c.needFlush {
		c.needFlush = false
		c.unflushed = 0
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
	}
}

// forget drops a call that was registered but never sent. The inflight
// decrement is conditional on the entry still being present — a response
// that raced in already settled (and decremented) it.
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	if _, ok := c.pending[id]; ok {
		delete(c.pending, id)
		c.inflight.Add(-1)
	}
	c.mu.Unlock()
}

// broken reports whether the client has failed and will refuse new calls.
func (c *Client) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Do sends one task and waits for its result: the network analogue of
// kstm.Executor.Submit. The returned error is the task's completion error
// (nil means the transaction committed server-side) or ctx's.
func (c *Client) Do(ctx context.Context, t kstm.Task) (Result, error) {
	call, err := c.DoAsync(ctx, t)
	if err != nil {
		return Result{}, err
	}
	return call.Wait(ctx)
}

// DoBool is Do for boolean-valued dictionary operations (insert's "was
// absent", delete's "was present", lookup's hit).
func (c *Client) DoBool(ctx context.Context, t kstm.Task) (bool, error) {
	res, err := c.Do(ctx, t)
	if err != nil {
		return false, err
	}
	b, ok := res.Value.(bool)
	if !ok {
		return false, fmt.Errorf("client: task value is %T, want bool", res.Value)
	}
	return b, nil
}

// Close tears the connection down; pending calls settle with ErrClosed.
func (c *Client) Close() error {
	c.fail(net.ErrClosed)
	<-c.readerDone
	return nil
}

// fail settles the client exactly once: marks it closed, closes the socket
// (unblocking the reader) and fails every pending call.
func (c *Client) fail(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = fmt.Errorf("%w: %w", ErrClosed, cause)
	pend := c.pending
	c.pending = nil
	err := c.err
	c.mu.Unlock()
	c.conn.Close()
	for _, call := range pend {
		call.err = err
		close(call.done)
	}
}

// readLoop decodes response frames — single or batch — and settles their
// calls.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.conn, 32*1024)
	scratch := make([]byte, 256)
	for {
		frame, err := wire.ReadFrame(br, &scratch)
		if err != nil {
			c.fail(err)
			return
		}
		switch frame.Type {
		case wire.TypeResponse:
			c.settleResp(frame.Resp)
		case wire.TypeBatchResponse:
			for _, resp := range frame.Resps {
				c.settleResp(resp)
			}
		default:
			c.fail(fmt.Errorf("unexpected frame type %d", frame.Type))
			return
		}
	}
}

// settleResp completes the pending call a response answers. The inflight
// decrement precedes the ackFlush flag load — the reader's half of the
// store-then-recheck pairing with writeLocked's deferral.
func (c *Client) settleResp(resp wire.Response) {
	c.mu.Lock()
	call := c.pending[resp.ID]
	if call != nil {
		delete(c.pending, resp.ID)
		c.inflight.Add(-1)
	}
	c.mu.Unlock()
	c.ackFlush()
	if call == nil {
		// A response for a call we no longer track — a server bug
		// or duplicate; drop it rather than kill the connection.
		return
	}
	call.res = Result{
		Value: resp.Value,
		Wait:  time.Duration(resp.WaitNS),
		Exec:  time.Duration(resp.ExecNS),
	}
	call.err = statusError(resp)
	close(call.done)
}

// statusError maps a response status to the package's error vocabulary.
func statusError(resp wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusBusy:
		if resp.WaitNS != 0 {
			// Admission control's retry-after hint rides in WaitNS.
			return &BusyError{RetryAfter: time.Duration(resp.WaitNS)}
		}
		return ErrBusy
	case wire.StatusCancelled:
		return ErrCancelled
	case wire.StatusStopped:
		return ErrStopped
	case wire.StatusDeadline:
		return ErrDeadlineExpired
	case wire.StatusBadRequest:
		if resp.Msg != "" {
			return fmt.Errorf("%w: %s", ErrBadRequest, resp.Msg)
		}
		return ErrBadRequest
	default:
		return &ServerError{Msg: resp.Msg}
	}
}
