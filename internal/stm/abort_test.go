package stm

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestEnemyAbortMidTransactionIsRetryable is the deterministic reproducer
// for the seed flake: under concurrent churn an enemy's contention manager
// could abort a transaction between two of its opens, and the next
// Read/Write then surfaced ErrNotActive — which Atomic treats as a hard
// error — instead of the retryable ErrAborted. TestRBTreeConcurrent in
// internal/txds hit this rarely under -race; here the enemy abort is forced
// at the exact vulnerable instant.
func TestEnemyAbortMidTransactionIsRetryable(t *testing.T) {
	s := New()
	a := NewBox(1)
	b := NewBox(2)
	th := s.NewThread()

	tx := th.Begin()
	if _, err := a.Read(tx); err != nil {
		t.Fatal(err)
	}
	// The enemy path: another transaction wins the conflict arbitration
	// and aborts us while we are between opens.
	if !tx.abortBy() {
		t.Fatal("abortBy on an active transaction failed")
	}
	if _, err := b.Read(tx); !errors.Is(err, ErrAborted) {
		t.Fatalf("Read after enemy abort: err = %v, want ErrAborted", err)
	}
	if _, err := b.Write(tx); !errors.Is(err, ErrAborted) {
		t.Fatalf("Write after enemy abort: err = %v, want ErrAborted", err)
	}
}

// TestAtomicRetriesAfterEnemyAbort drives the same scenario through the
// Atomic retry loop: the first attempt is enemy-aborted mid-body and the
// task must still commit on a later attempt rather than reporting a hard
// error to the caller.
func TestAtomicRetriesAfterEnemyAbort(t *testing.T) {
	s := New()
	box := NewBox(0)
	th := s.NewThread()
	var attempts atomic.Int32
	err := th.Atomic(func(tx *Tx) error {
		if attempts.Add(1) == 1 {
			if !tx.abortBy() {
				t.Error("abortBy failed on first attempt")
			}
		}
		v, err := box.Write(tx)
		if err != nil {
			return err
		}
		*v++
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic after mid-body enemy abort: %v", err)
	}
	if attempts.Load() < 2 {
		t.Fatalf("attempts = %d, want a retry", attempts.Load())
	}
	tx := th.Begin()
	v, err := box.Read(tx)
	if err != nil || *v != 1 {
		t.Fatalf("final value = (%v, %v), want 1", v, err)
	}
}
