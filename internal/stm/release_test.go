package stm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"kstm/internal/rng"
)

func TestReleaseRemovesFromReadSet(t *testing.T) {
	s := New()
	a, b := NewBox(1), NewBox(2)
	th := s.NewThread()
	tx := th.Begin()
	if _, err := a.Read(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(tx); err != nil {
		t.Fatal(err)
	}
	if tx.ReadSetSize() != 2 {
		t.Fatalf("read set = %d", tx.ReadSetSize())
	}
	tx.Release(a.Object())
	if tx.ReadSetSize() != 1 {
		t.Fatalf("read set after release = %d", tx.ReadSetSize())
	}
}

func TestReleasedReadDoesNotAbort(t *testing.T) {
	// After releasing a, a conflicting commit on a must not invalidate us
	// — the whole point of DSTM early release.
	s := New(WithContentionManager(NewAggressive))
	a, b := NewBox(1), NewBox(2)
	thR, thW := s.NewThread(), s.NewThread()

	tx := thR.Begin()
	if _, err := a.Read(tx); err != nil {
		t.Fatal(err)
	}
	tx.Release(a.Object())

	if err := thW.Atomic(func(w *Tx) error {
		v, err := a.Write(w)
		if err != nil {
			return err
		}
		*v = 99
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Reader continues: opens b and commits despite a having changed.
	if _, err := b.Read(tx); err != nil {
		t.Fatalf("read after released-object conflict: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after early release: %v", err)
	}
}

func TestUnreleasedReadStillAborts(t *testing.T) {
	// Control for the test above: without the release, the reader must
	// fail validation.
	s := New(WithContentionManager(NewAggressive))
	a, b := NewBox(1), NewBox(2)
	thR, thW := s.NewThread(), s.NewThread()

	tx := thR.Begin()
	if _, err := a.Read(tx); err != nil {
		t.Fatal(err)
	}
	if err := thW.Atomic(func(w *Tx) error {
		v, err := a.Write(w)
		if err != nil {
			return err
		}
		*v = 99
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(tx); !errors.Is(err, ErrAborted) {
		t.Fatalf("stale unreleased read err = %v, want ErrAborted", err)
	}
}

func TestReleaseRemovesDuplicates(t *testing.T) {
	s := New()
	a := NewBox(1)
	th := s.NewThread()
	tx := th.Begin()
	// Repeated reads record repeated entries; release drops them all.
	for i := 0; i < 5; i++ {
		if _, err := a.Read(tx); err != nil {
			t.Fatal(err)
		}
	}
	tx.Release(a.Object())
	if tx.ReadSetSize() != 0 {
		t.Fatalf("read set after releasing duplicates = %d", tx.ReadSetSize())
	}
}

func TestReleaseUnknownObjectIsNoop(t *testing.T) {
	s := New()
	a, b := NewBox(1), NewBox(2)
	th := s.NewThread()
	tx := th.Begin()
	if _, err := a.Read(tx); err != nil {
		t.Fatal(err)
	}
	tx.Release(b.Object()) // never read
	if tx.ReadSetSize() != 1 {
		t.Fatalf("read set = %d", tx.ReadSetSize())
	}
}

// TestQuickSerializableCounterPair: property — for any interleaving of two
// counters incremented atomically in pairs, the counters never diverge.
func TestQuickSerializableCounterPair(t *testing.T) {
	f := func(seed uint16) bool {
		s := New()
		a, b := NewBox(0), NewBox(0)
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(gs uint64) {
				defer wg.Done()
				th := s.NewThread()
				r := rng.New(gs)
				for i := 0; i < 50; i++ {
					_ = th.Atomic(func(tx *Tx) error {
						av, err := a.Write(tx)
						if err != nil {
							return err
						}
						bv, err := b.Write(tx)
						if err != nil {
							return err
						}
						// Random work order, same invariant.
						if r.Uint64()&1 == 0 {
							*av++
							*bv++
						} else {
							*bv++
							*av++
						}
						return nil
					})
				}
			}(uint64(seed)*4 + uint64(g))
		}
		wg.Wait()
		tx := s.NewThread().Begin()
		av, err := a.Read(tx)
		if err != nil {
			return false
		}
		bv, err := b.Read(tx)
		if err != nil {
			return false
		}
		return *av == *bv && *av == 150
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestWriterIsolationUntilCommit: a reader thread never observes a writer's
// in-progress value.
func TestWriterIsolationUntilCommit(t *testing.T) {
	s := New(WithContentionManager(NewTimid)) // reader defers, never kills writer
	box := NewBox(0)
	thW, thR := s.NewThread(), s.NewThread()

	w := thW.Begin()
	wv, err := box.Write(w)
	if err != nil {
		t.Fatal(err)
	}
	*wv = 42

	// With Timid, the reader aborts itself rather than the writer; retry
	// loops would spin, so read through a fresh transaction and accept
	// either the old value or an abort — never 42.
	for i := 0; i < 10; i++ {
		tx := thR.Begin()
		v, err := box.Read(tx)
		if err == nil && *v == 42 {
			t.Fatal("reader observed uncommitted write")
		}
		tx.Abort()
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := thR.Begin()
	v, err := box.Read(tx)
	if err != nil {
		t.Fatal(err)
	}
	if *v != 42 {
		t.Fatalf("post-commit read = %d", *v)
	}
}

// TestAbortedWriterValueDiscardedUnderChurn hammers a single box with
// writers that abort half the time; committed reads must only ever see
// committed increments (values never decrease, never skip past total).
func TestAbortedWriterValueDiscardedUnderChurn(t *testing.T) {
	s := New()
	box := NewBox(0)
	const writers, per = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.NewThread()
			r := rng.New(uint64(id) + 1)
			for i := 0; i < per; i++ {
				tx := th.Begin()
				v, err := box.Write(tx)
				if err != nil {
					continue
				}
				*v += 1000000 // poison value if leaked via abort
				if r.Uint64()&1 == 0 {
					tx.Abort()
					continue
				}
				// Fix the value to a legal increment and commit.
				*v -= 1000000
				*v++
				tx.Commit()
			}
		}(g)
	}
	wg.Wait()
	tx := s.NewThread().Begin()
	v, err := box.Read(tx)
	if err != nil {
		t.Fatal(err)
	}
	if *v < 0 || *v > writers*per {
		t.Fatalf("final value %d outside [0,%d]", *v, writers*per)
	}
	if *v >= 1000000 {
		t.Fatal("aborted poison value leaked")
	}
}
