package stm

import (
	"errors"
	"sync"
	"testing"
)

func TestBoxReadWriteCommit(t *testing.T) {
	s := New()
	b := NewBox(10)
	th := s.NewThread()

	tx := th.Begin()
	v, err := b.Read(tx)
	if err != nil {
		t.Fatal(err)
	}
	if *v != 10 {
		t.Fatalf("initial read = %d, want 10", *v)
	}
	w, err := b.Write(tx)
	if err != nil {
		t.Fatal(err)
	}
	*w = 42
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	tx2 := th.Begin()
	v2, err := b.Read(tx2)
	if err != nil {
		t.Fatal(err)
	}
	if *v2 != 42 {
		t.Fatalf("read after commit = %d, want 42", *v2)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	s := New()
	b := NewBox(1)
	th := s.NewThread()

	tx := th.Begin()
	w, err := b.Write(tx)
	if err != nil {
		t.Fatal(err)
	}
	*w = 99
	tx.Abort()
	if !tx.Aborted() {
		t.Fatal("tx not aborted")
	}

	tx2 := th.Begin()
	v, err := b.Read(tx2)
	if err != nil {
		t.Fatal(err)
	}
	if *v != 1 {
		t.Fatalf("read after abort = %d, want 1", *v)
	}
}

func TestUseAfterCommitFails(t *testing.T) {
	s := New()
	b := NewBox(0)
	th := s.NewThread()
	tx := th.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(tx); !errors.Is(err, ErrNotActive) {
		t.Errorf("Read after commit: err = %v, want ErrNotActive", err)
	}
	if _, err := b.Write(tx); !errors.Is(err, ErrNotActive) {
		t.Errorf("Write after commit: err = %v, want ErrNotActive", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Errorf("second Commit: err = %v, want ErrAborted", err)
	}
}

func TestReadOwnWrite(t *testing.T) {
	s := New()
	b := NewBox(5)
	th := s.NewThread()
	tx := th.Begin()
	w, _ := b.Write(tx)
	*w = 7
	r, err := b.Read(tx)
	if err != nil {
		t.Fatal(err)
	}
	if *r != 7 {
		t.Fatalf("read own write = %d, want 7", *r)
	}
	// Write again should return the same clone.
	w2, _ := b.Write(tx)
	if w2 != w {
		t.Fatal("second Write returned a different clone")
	}
}

func TestWriteSkewPrevented(t *testing.T) {
	// Classic write-skew: tx1 reads A writes B, tx2 reads B writes A.
	// Serializability requires at least one to abort when interleaved.
	s := New()
	a, b := NewBox(0), NewBox(0)
	th1, th2 := s.NewThread(), s.NewThread()

	tx1 := th1.Begin()
	if _, err := a.Read(tx1); err != nil {
		t.Fatal(err)
	}
	tx2 := th2.Begin()
	if _, err := b.Read(tx2); err != nil {
		t.Fatal(err)
	}
	w1, err := b.Write(tx1)
	if err == nil {
		*w1 = 1
	}
	w2, err2 := a.Write(tx2)
	if err2 == nil {
		*w2 = 1
	}
	err1c := tx1.Commit()
	err2c := tx2.Commit()
	if err1c == nil && err2c == nil {
		t.Fatal("both write-skew transactions committed")
	}
}

func TestConflictingWritersOneWins(t *testing.T) {
	s := New(WithContentionManager(NewAggressive))
	b := NewBox(0)
	th1, th2 := s.NewThread(), s.NewThread()

	tx1 := th1.Begin()
	w1, err := b.Write(tx1)
	if err != nil {
		t.Fatal(err)
	}
	*w1 = 1

	// tx2 steals the object (Aggressive aborts tx1).
	tx2 := th2.Begin()
	w2, err := b.Write(tx2)
	if err != nil {
		t.Fatal(err)
	}
	*w2 = 2
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if !tx1.Aborted() {
		t.Error("victim not aborted")
	}
	if err := tx1.Commit(); !errors.Is(err, ErrAborted) {
		t.Errorf("victim Commit err = %v, want ErrAborted", err)
	}

	tx3 := th1.Begin()
	v, _ := b.Read(tx3)
	if *v != 2 {
		t.Fatalf("final value = %d, want 2", *v)
	}
}

func TestInvisibleReadInvalidation(t *testing.T) {
	// A reader whose read set is invalidated by a competing commit must
	// abort rather than see an inconsistent snapshot.
	s := New(WithContentionManager(NewAggressive))
	a, b := NewBox(0), NewBox(0)
	thR, thW := s.NewThread(), s.NewThread()

	txR := thR.Begin()
	if _, err := a.Read(txR); err != nil {
		t.Fatal(err)
	}

	// Writer updates a and b atomically.
	if err := thW.Atomic(func(tx *Tx) error {
		wa, err := a.Write(tx)
		if err != nil {
			return err
		}
		wb, err := b.Write(tx)
		if err != nil {
			return err
		}
		*wa, *wb = 1, 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The reader's next open must fail validation: a changed after we
	// read it.
	_, err := b.Read(txR)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("stale reader Read err = %v, want ErrAborted", err)
	}
	if !txR.Aborted() {
		t.Error("stale reader not aborted")
	}
}

func TestAtomicRetries(t *testing.T) {
	s := New()
	b := NewBox(0)
	th := s.NewThread()
	attempts := 0
	err := th.Atomic(func(tx *Tx) error {
		attempts++
		if attempts < 3 {
			// Simulate a doomed attempt: abort ourselves.
			tx.Abort()
			return ErrAborted
		}
		w, err := b.Write(tx)
		if err != nil {
			return err
		}
		*w = attempts
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	tx := th.Begin()
	v, _ := b.Read(tx)
	if *v != 3 {
		t.Fatalf("value = %d, want 3", *v)
	}
}

func TestAtomicPropagatesUserError(t *testing.T) {
	s := New()
	th := s.NewThread()
	sentinel := errors.New("user error")
	attempts := 0
	err := th.Atomic(func(tx *Tx) error {
		attempts++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if attempts != 1 {
		t.Fatalf("user error retried %d times", attempts)
	}
}

func TestCounterConcurrent(t *testing.T) {
	// The fundamental STM smoke test: concurrent increments never lose
	// updates.
	s := New()
	b := NewBox(0)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < perG; i++ {
				err := th.Atomic(func(tx *Tx) error {
					w, err := b.Write(tx)
					if err != nil {
						return err
					}
					*w++
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	th := s.NewThread()
	tx := th.Begin()
	v, _ := b.Read(tx)
	if *v != goroutines*perG {
		t.Fatalf("counter = %d, want %d", *v, goroutines*perG)
	}
}

func TestCounterConcurrentAllManagers(t *testing.T) {
	for _, m := range Managers() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			s := New(WithContentionManager(m.New))
			b := NewBox(0)
			const goroutines, perG = 4, 150
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.NewThread()
					for i := 0; i < perG; i++ {
						if err := th.Atomic(func(tx *Tx) error {
							w, err := b.Write(tx)
							if err != nil {
								return err
							}
							*w++
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			tx := s.NewThread().Begin()
			v, _ := b.Read(tx)
			if *v != goroutines*perG {
				t.Fatalf("%s: counter = %d, want %d", m.Name, *v, goroutines*perG)
			}
		})
	}
}

func TestBankInvariant(t *testing.T) {
	// Transfers between accounts must conserve the total (snapshot
	// isolation + serializability check under contention).
	s := New()
	const accounts = 8
	const total = 1000 * accounts
	boxes := make([]Box[int], accounts)
	for i := range boxes {
		boxes[i] = NewBox(1000)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Transfer goroutines.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < 400; i++ {
				from, to := (seed+i)%accounts, (seed+i*7+1)%accounts
				if from == to {
					continue
				}
				err := th.Atomic(func(tx *Tx) error {
					wf, err := boxes[from].Write(tx)
					if err != nil {
						return err
					}
					wt, err := boxes[to].Write(tx)
					if err != nil {
						return err
					}
					*wf--
					*wt++
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Auditor: every observed snapshot must sum to total.
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		th := s.NewThread()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum := 0
			err := th.Atomic(func(tx *Tx) error {
				sum = 0
				for i := range boxes {
					v, err := boxes[i].Read(tx)
					if err != nil {
						return err
					}
					sum += *v
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if sum != total {
				t.Errorf("audit saw total %d, want %d", sum, total)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-auditDone
}

func TestStatsCounting(t *testing.T) {
	s := New()
	b := NewBox(0)
	th := s.NewThread()
	if err := th.Atomic(func(tx *Tx) error {
		if _, err := b.Read(tx); err != nil {
			return err
		}
		w, err := b.Write(tx)
		if err != nil {
			return err
		}
		*w = 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Commits != 1 || st.Begins != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 1/1", st.Reads, st.Writes)
	}
	s.ResetStats()
	if s.Stats().Commits != 0 {
		t.Error("ResetStats did not clear")
	}
	// Snapshot Sub.
	a := StatsSnapshot{Commits: 5, Begins: 7}
	d := a.Sub(StatsSnapshot{Commits: 2, Begins: 3})
	if d.Commits != 3 || d.Begins != 4 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestContentionRate(t *testing.T) {
	st := StatsSnapshot{Conflicts: 5, Commits: 100}
	if got := st.ContentionRate(); got != 0.05 {
		t.Errorf("ContentionRate = %v", got)
	}
	if (StatsSnapshot{}).ContentionRate() != 0 {
		t.Error("empty ContentionRate != 0")
	}
}

func TestNewObjectRequiresClone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewObject(nil clone) did not panic")
		}
	}()
	NewObject(new(int), nil)
}

func TestObjectCustomClone(t *testing.T) {
	// Deep-clone semantics for slice-bearing versions.
	type bucket struct{ items []int }
	clone := func(v any) any {
		b := v.(*bucket)
		c := &bucket{items: make([]int, len(b.items))}
		copy(c.items, b.items)
		return c
	}
	o := NewObject(&bucket{}, clone)
	s := New()
	th := s.NewThread()
	if err := th.Atomic(func(tx *Tx) error {
		v, err := tx.Write(o)
		if err != nil {
			return err
		}
		b := v.(*bucket)
		b.items = append(b.items, 1, 2, 3)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Abort a mutation; committed version must be unaffected.
	tx := th.Begin()
	v, _ := tx.Write(o)
	v.(*bucket).items[0] = 99
	tx.Abort()

	tx2 := th.Begin()
	r, _ := tx2.Read(o)
	if got := r.(*bucket).items[0]; got != 1 {
		t.Fatalf("aborted clone leaked into committed version: %d", got)
	}
}

func TestTxStringAndAccessors(t *testing.T) {
	s := New()
	th := s.NewThread()
	tx := th.Begin()
	if tx.ThreadID() != th.ID() {
		t.Error("ThreadID mismatch")
	}
	if tx.Timestamp() == 0 {
		t.Error("zero timestamp")
	}
	if got := tx.String(); got == "" {
		t.Error("empty String()")
	}
	b := NewBox(1)
	b.Read(tx)
	b.Write(tx)
	if tx.ReadSetSize() != 1 || tx.WriteSetSize() != 1 {
		t.Errorf("set sizes = %d/%d", tx.ReadSetSize(), tx.WriteSetSize())
	}
	tx.Commit()
	if tx.String() == "" || !tx.Committed() {
		t.Error("committed state not reflected")
	}
	if b.Object() == nil {
		t.Error("Box.Object() nil")
	}
}

func TestThreadAccessors(t *testing.T) {
	s := New()
	th := s.NewThread()
	if th.ManagerName() != "polka" {
		t.Errorf("default manager = %q, want polka", th.ManagerName())
	}
	th2 := s.NewThread()
	if th.ID() == th2.ID() {
		t.Error("thread IDs collide")
	}
}

func TestValidateExposed(t *testing.T) {
	s := New(WithContentionManager(NewAggressive))
	b := NewBox(0)
	th1, th2 := s.NewThread(), s.NewThread()
	tx := th1.Begin()
	if _, err := b.Read(tx); err != nil {
		t.Fatal(err)
	}
	if !tx.Validate() {
		t.Fatal("fresh read set failed validation")
	}
	if err := th2.Atomic(func(t2 *Tx) error {
		w, err := b.Write(t2)
		if err != nil {
			return err
		}
		*w = 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tx.Validate() {
		t.Fatal("stale read set passed validation")
	}
}
