package stm

import (
	"testing"
	"time"
)

func TestDecisionString(t *testing.T) {
	cases := map[Decision]string{
		Wait:        "wait",
		AbortOther:  "abort-other",
		AbortSelf:   "abort-self",
		Decision(9): "Decision(9)",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestManagerByName(t *testing.T) {
	for _, m := range Managers() {
		f, err := ManagerByName(m.Name)
		if err != nil {
			t.Fatalf("ManagerByName(%q): %v", m.Name, err)
		}
		if got := f().Name(); got != m.Name {
			t.Errorf("factory for %q built %q", m.Name, got)
		}
	}
	if _, err := ManagerByName("nope"); err == nil {
		t.Error("ManagerByName(nope) succeeded")
	}
}

func TestAggressiveAlwaysAbortsOther(t *testing.T) {
	m := NewAggressive()
	s := New()
	th := s.NewThread()
	me, other := th.Begin(), th.Begin()
	for i := 0; i < 3; i++ {
		if d := m.ResolveConflict(me, other); d != AbortOther {
			t.Fatalf("decision = %v", d)
		}
	}
}

func TestTimidAlwaysAbortsSelf(t *testing.T) {
	m := NewTimid()
	s := New()
	th := s.NewThread()
	me, other := th.Begin(), th.Begin()
	if d := m.ResolveConflict(me, other); d != AbortSelf {
		t.Fatalf("decision = %v", d)
	}
}

func TestPoliteEventuallyAbortsOther(t *testing.T) {
	m := NewPolite()
	s := New()
	th := s.NewThread()
	me, other := th.Begin(), th.Begin()
	waits := 0
	for i := 0; i < politeMaxAttempts+1; i++ {
		switch m.ResolveConflict(me, other) {
		case Wait:
			waits++
		case AbortOther:
			if waits != politeMaxAttempts {
				t.Fatalf("aborted other after %d waits, want %d", waits, politeMaxAttempts)
			}
			return
		default:
			t.Fatal("polite aborted self")
		}
	}
	t.Fatal("polite never aborted other")
}

func TestKarmaPriorityComparison(t *testing.T) {
	m := NewKarma()
	s := New()
	th := s.NewThread()
	me, other := th.Begin(), th.Begin()
	me.priority.Store(10)
	other.priority.Store(5)
	// Enemy has lower karma: immediate abort-other.
	if d := m.ResolveConflict(me, other); d != AbortOther {
		t.Fatalf("decision vs weaker enemy = %v", d)
	}
	// Enemy much stronger: wait (bounded by gap).
	other.priority.Store(1000)
	if d := m.ResolveConflict(me, other); d != Wait {
		t.Fatalf("decision vs stronger enemy = %v", d)
	}
}

func TestKarmaCarriesAcrossAborts(t *testing.T) {
	km := NewKarma().(*Karma)
	s := New(WithContentionManager(NewKarma))
	_ = s
	tx := &Tx{}
	tx.priority.Store(7)
	km.TransactionAborted(tx)
	tx2 := &Tx{}
	km.BeginTransaction(tx2)
	if got := tx2.Priority(); got != 7 {
		t.Fatalf("carried karma = %d, want 7", got)
	}
	km.TransactionCommitted(tx2)
	tx3 := &Tx{}
	km.BeginTransaction(tx3)
	if got := tx3.Priority(); got != 0 {
		t.Fatalf("karma after commit = %d, want 0", got)
	}
}

func TestPolkaCarriesAcrossAborts(t *testing.T) {
	pm := NewPolka().(*Polka)
	tx := &Tx{}
	tx.priority.Store(3)
	pm.TransactionAborted(tx)
	tx2 := &Tx{}
	pm.BeginTransaction(tx2)
	if got := tx2.Priority(); got != 3 {
		t.Fatalf("carried polka priority = %d, want 3", got)
	}
}

func TestPolkaBoundedWaiting(t *testing.T) {
	m := NewPolka()
	s := New()
	th := s.NewThread()
	me, other := th.Begin(), th.Begin()
	other.priority.Store(2) // gap of 2: at most 3 waits
	aborts := 0
	for i := 0; i < 10; i++ {
		if m.ResolveConflict(me, other) == AbortOther {
			aborts++
			break
		}
	}
	if aborts == 0 {
		t.Fatal("polka waited forever despite small gap")
	}
}

func TestEruptionTransfersMomentum(t *testing.T) {
	m := NewEruption()
	s := New()
	th := s.NewThread()
	me, other := th.Begin(), th.Begin()
	me.priority.Store(5)
	other.priority.Store(100)
	before := other.Priority()
	if d := m.ResolveConflict(me, other); d != Wait {
		t.Fatalf("decision = %v, want wait", d)
	}
	if after := other.Priority(); after <= before {
		t.Fatalf("momentum not transferred: %d -> %d", before, after)
	}
}

func TestKindergartenTakesTurns(t *testing.T) {
	m := NewKindergarten()
	s := New()
	thA, thB := s.NewThread(), s.NewThread()
	me := thA.Begin()
	other := thB.Begin()
	if d := m.ResolveConflict(me, other); d != AbortSelf {
		t.Fatalf("first conflict decision = %v, want abort-self", d)
	}
	// Same enemy thread again (fresh tx, same thread): our turn now.
	other2 := thB.Begin()
	if d := m.ResolveConflict(me, other2); d != AbortOther {
		t.Fatalf("second conflict decision = %v, want abort-other", d)
	}
}

func TestTimestampOlderWins(t *testing.T) {
	m := NewTimestamp()
	s := New()
	th := s.NewThread()
	older := th.Begin()
	younger := th.Begin() // strictly later logical clock
	if older.Timestamp() >= younger.Timestamp() {
		t.Fatal("clock not monotone")
	}
	if d := m.ResolveConflict(older, younger); d != AbortOther {
		t.Fatalf("older vs younger = %v, want abort-other", d)
	}
	if d := m.ResolveConflict(younger, older); d != Wait {
		t.Fatalf("younger vs older = %v, want wait", d)
	}
}

func TestTimestampBoundedPatience(t *testing.T) {
	m := NewTimestamp()
	s := New()
	th := s.NewThread()
	older := th.Begin()
	younger := th.Begin()
	got := Wait
	for i := 0; i < timestampMaxWaits+1; i++ {
		got = m.ResolveConflict(younger, older)
		if got == AbortOther {
			break
		}
	}
	if got != AbortOther {
		t.Fatal("timestamp manager waited unboundedly")
	}
}

func TestGreedyRules(t *testing.T) {
	m := NewGreedy()
	s := New()
	th := s.NewThread()
	older := th.Begin()
	younger := th.Begin()
	if d := m.ResolveConflict(older, younger); d != AbortOther {
		t.Fatalf("greedy older vs younger = %v", d)
	}
	if d := m.ResolveConflict(younger, older); d != Wait {
		t.Fatalf("greedy younger vs running older = %v", d)
	}
	older.waiting.Store(true)
	if d := m.ResolveConflict(younger, older); d != AbortOther {
		t.Fatalf("greedy younger vs waiting older = %v", d)
	}
}

func TestRandomizedBothOutcomes(t *testing.T) {
	m := NewRandomized()
	s := New()
	th := s.NewThread()
	me, other := th.Begin(), th.Begin()
	seen := map[Decision]bool{}
	for i := 0; i < 200; i++ {
		seen[m.ResolveConflict(me, other)] = true
	}
	if !seen[AbortOther] || !seen[AbortSelf] {
		t.Fatalf("randomized outcomes seen: %v", seen)
	}
}

func TestBackoffBounded(t *testing.T) {
	start := time.Now()
	backoff(nil, 0, false)
	backoff(nil, 20, false) // attempt clamped; must stay well under 1ms... allow 10ms
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("backoff took %v", d)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[uint64]uint64{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
