package stm

import (
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"kstm/internal/rng"
)

// Decision is a contention manager's verdict on a conflict between the
// calling transaction ("me") and an enemy that holds an object me wants.
type Decision int

const (
	// Wait means the manager has already delayed the caller (backoff,
	// spin); the open loop should re-examine the object.
	Wait Decision = iota
	// AbortOther tells the caller to abort the enemy and take the object.
	AbortOther
	// AbortSelf tells the caller to abort itself; the surrounding Atomic
	// loop will retry the whole transaction.
	AbortSelf
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Wait:
		return "wait"
	case AbortOther:
		return "abort-other"
	case AbortSelf:
		return "abort-self"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// ContentionManager arbitrates conflicts between transactions, in the style
// of Scherer & Scott (PODC'05). Each worker thread owns a private instance;
// methods are invoked only by that thread, but they may read other
// transactions' atomic fields (Priority, Waiting, Timestamp).
type ContentionManager interface {
	// Name identifies the policy in reports.
	Name() string
	// ResolveConflict is called when me, which is active, finds the
	// active enemy other holding an object me needs. The manager may
	// block (backoff) before returning its decision.
	ResolveConflict(me, other *Tx) Decision
	// BeginTransaction notifies that tx has started (first attempt or
	// retry).
	BeginTransaction(tx *Tx)
	// OpenSucceeded notifies that tx acquired an object.
	OpenSucceeded(tx *Tx)
	// TransactionCommitted notifies that tx committed.
	TransactionCommitted(tx *Tx)
	// TransactionAborted notifies that tx aborted (self or enemy).
	TransactionAborted(tx *Tx)
}

// backoff sleeps for roughly base<<attempt nanoseconds, capped, optionally
// randomized. Short waits spin-yield instead of sleeping because the Go
// runtime cannot sleep for tens of nanoseconds.
func backoff(r *rng.Xoshiro256, attempt int, randomize bool) {
	const (
		baseNs = 1 << 7  // 128ns
		capNs  = 1 << 18 // ~262µs
	)
	shift := attempt
	if shift > 11 {
		shift = 11
	}
	ns := int64(baseNs << uint(shift))
	if ns > capNs {
		ns = capNs
	}
	if randomize && r != nil {
		ns = int64(r.Uint64n(uint64(ns))) + 1
	}
	if ns < 10_000 {
		// Too short for the scheduler; yield a proportional number of
		// times instead.
		spins := int(ns/200) + 1
		for i := 0; i < spins; i++ {
			runtime.Gosched()
		}
		return
	}
	time.Sleep(time.Duration(ns))
}

// nilNotify provides no-op notification methods for managers that do not
// track transaction lifecycle.
type nilNotify struct{}

func (nilNotify) BeginTransaction(*Tx)     {}
func (nilNotify) OpenSucceeded(*Tx)        {}
func (nilNotify) TransactionCommitted(*Tx) {}
func (nilNotify) TransactionAborted(*Tx)   {}

// Aggressive always aborts the enemy. It is the simplest manager and the
// usual worst case under contention (mutual aborts, livelock risk bounded
// only by scheduling noise).
type Aggressive struct{ nilNotify }

// NewAggressive returns the Aggressive manager.
func NewAggressive() ContentionManager { return &Aggressive{} }

// Name implements ContentionManager.
func (*Aggressive) Name() string { return "aggressive" }

// ResolveConflict implements ContentionManager.
func (*Aggressive) ResolveConflict(me, other *Tx) Decision { return AbortOther }

// Timid always aborts itself, deferring to any enemy. It never wastes an
// enemy's work but starves easily; useful as a lower bound in ablations.
type Timid struct{ nilNotify }

// NewTimid returns the Timid manager.
func NewTimid() ContentionManager { return &Timid{} }

// Name implements ContentionManager.
func (*Timid) Name() string { return "timid" }

// ResolveConflict implements ContentionManager.
func (*Timid) ResolveConflict(me, other *Tx) Decision { return AbortSelf }

// Polite backs off with randomized exponential delay a bounded number of
// times, then aborts the enemy.
type Polite struct {
	nilNotify
	r        *rng.Xoshiro256
	attempts int
}

// politeMaxAttempts is DSTM's classic bound of backoff rounds.
const politeMaxAttempts = 8

// NewPolite returns the Polite manager.
func NewPolite() ContentionManager { return &Polite{r: rng.New(uint64(time.Now().UnixNano()))} }

// Name implements ContentionManager.
func (*Polite) Name() string { return "polite" }

// ResolveConflict implements ContentionManager.
func (p *Polite) ResolveConflict(me, other *Tx) Decision {
	if p.attempts >= politeMaxAttempts {
		p.attempts = 0
		return AbortOther
	}
	backoff(p.r, p.attempts, true)
	p.attempts++
	return Wait
}

// OpenSucceeded resets the backoff ladder once the conflict clears.
func (p *Polite) OpenSucceeded(*Tx) { p.attempts = 0 }

// Randomized flips a coin between aborting the enemy and aborting itself.
type Randomized struct {
	nilNotify
	r *rng.Xoshiro256
}

// NewRandomized returns the Randomized manager.
func NewRandomized() ContentionManager {
	return &Randomized{r: rng.New(uint64(time.Now().UnixNano()))}
}

// Name implements ContentionManager.
func (*Randomized) Name() string { return "randomized" }

// ResolveConflict implements ContentionManager.
func (m *Randomized) ResolveConflict(me, other *Tx) Decision {
	if m.r.Uint64()&1 == 0 {
		return AbortOther
	}
	return AbortSelf
}

// Karma accumulates priority — one point per object opened — that persists
// across aborts, so a transaction that keeps losing eventually outranks its
// killers. On conflict it compares priorities: if the enemy's karma is not
// higher, abort it; otherwise wait one fixed-length beat per point of
// difference before giving up and aborting the enemy anyway.
type Karma struct {
	r        *rng.Xoshiro256
	carried  int64 // karma preserved across aborted attempts
	attempts int
}

// NewKarma returns the Karma manager.
func NewKarma() ContentionManager { return &Karma{r: rng.New(uint64(time.Now().UnixNano()))} }

// Name implements ContentionManager.
func (*Karma) Name() string { return "karma" }

// BeginTransaction seeds the transaction with carried karma.
func (k *Karma) BeginTransaction(tx *Tx) {
	tx.priority.Store(k.carried)
	k.attempts = 0
}

// OpenSucceeded implements ContentionManager (priority is bumped by the STM
// core itself; nothing extra to do).
func (k *Karma) OpenSucceeded(*Tx) {}

// TransactionCommitted implements ContentionManager: spent karma is reset.
func (k *Karma) TransactionCommitted(tx *Tx) { k.carried = 0 }

// TransactionAborted implements ContentionManager: karma survives aborts.
func (k *Karma) TransactionAborted(tx *Tx) { k.carried = tx.priority.Load() }

// ResolveConflict implements ContentionManager.
func (k *Karma) ResolveConflict(me, other *Tx) Decision {
	diff := other.Priority() - me.Priority()
	if diff <= 0 || int64(k.attempts) > diff {
		k.attempts = 0
		return AbortOther
	}
	backoff(k.r, 0, false) // fixed short beat
	k.attempts++
	return Wait
}

// Polka is Karma with randomized exponential (rather than fixed) backoff
// between the priority-gap beats — the manager used for all experiments in
// the paper (§4.3; Scherer & Scott call it their overall best).
type Polka struct {
	r        *rng.Xoshiro256
	carried  int64
	attempts int
}

// NewPolka returns the Polka manager.
func NewPolka() ContentionManager { return &Polka{r: rng.New(uint64(time.Now().UnixNano()))} }

// Name implements ContentionManager.
func (*Polka) Name() string { return "polka" }

// BeginTransaction seeds the transaction with carried karma.
func (p *Polka) BeginTransaction(tx *Tx) {
	tx.priority.Store(p.carried)
	p.attempts = 0
}

// OpenSucceeded implements ContentionManager.
func (p *Polka) OpenSucceeded(*Tx) {}

// TransactionCommitted implements ContentionManager.
func (p *Polka) TransactionCommitted(tx *Tx) { p.carried = 0 }

// TransactionAborted implements ContentionManager.
func (p *Polka) TransactionAborted(tx *Tx) { p.carried = tx.priority.Load() }

// ResolveConflict implements ContentionManager.
func (p *Polka) ResolveConflict(me, other *Tx) Decision {
	diff := other.Priority() - me.Priority()
	if diff <= 0 || int64(p.attempts) > diff {
		p.attempts = 0
		return AbortOther
	}
	backoff(p.r, p.attempts, true)
	p.attempts++
	return Wait
}

// Eruption adds the blocked transaction's priority to the blocker
// ("momentum"), so hot spots resolve quickly: a transaction blocking many
// others erupts through its own conflicts.
type Eruption struct {
	r        *rng.Xoshiro256
	attempts int
}

// NewEruption returns the Eruption manager.
func NewEruption() ContentionManager { return &Eruption{r: rng.New(uint64(time.Now().UnixNano()))} }

// Name implements ContentionManager.
func (*Eruption) Name() string { return "eruption" }

// BeginTransaction implements ContentionManager.
func (e *Eruption) BeginTransaction(tx *Tx) { e.attempts = 0 }

// OpenSucceeded implements ContentionManager.
func (e *Eruption) OpenSucceeded(*Tx) {}

// TransactionCommitted implements ContentionManager.
func (e *Eruption) TransactionCommitted(*Tx) {}

// TransactionAborted implements ContentionManager.
func (e *Eruption) TransactionAborted(*Tx) {}

// ResolveConflict implements ContentionManager.
func (e *Eruption) ResolveConflict(me, other *Tx) Decision {
	diff := other.Priority() - me.Priority()
	if diff <= 0 || e.attempts > 10 {
		e.attempts = 0
		return AbortOther
	}
	// Transfer momentum: our priority pushes the blocker forward.
	other.priority.Add(me.Priority() + 1)
	backoff(e.r, e.attempts, true)
	e.attempts++
	return Wait
}

// Kindergarten enforces sharing: the first time we meet a particular enemy
// thread we politely step aside (abort self); if the same thread blocks us
// again on a later attempt, it has had its turn and we abort it.
type Kindergarten struct {
	r *rng.Xoshiro256
	// hits counts conflicts per enemy thread for the current task.
	hits map[int64]int
}

// NewKindergarten returns the Kindergarten manager.
func NewKindergarten() ContentionManager {
	return &Kindergarten{r: rng.New(uint64(time.Now().UnixNano())), hits: map[int64]int{}}
}

// Name implements ContentionManager.
func (*Kindergarten) Name() string { return "kindergarten" }

// BeginTransaction implements ContentionManager.
func (k *Kindergarten) BeginTransaction(*Tx) {}

// OpenSucceeded implements ContentionManager.
func (k *Kindergarten) OpenSucceeded(*Tx) {}

// TransactionCommitted clears the sharing ledger for the next task.
func (k *Kindergarten) TransactionCommitted(*Tx) { clear(k.hits) }

// TransactionAborted implements ContentionManager (ledger survives retries
// of the same task — that is the point).
func (k *Kindergarten) TransactionAborted(*Tx) {}

// ResolveConflict implements ContentionManager.
func (k *Kindergarten) ResolveConflict(me, other *Tx) Decision {
	id := other.ThreadID()
	k.hits[id]++
	if k.hits[id] > 1 {
		k.hits[id] = 0
		return AbortOther
	}
	backoff(k.r, 2, true)
	return AbortSelf
}

// Timestamp lets the older task win: a transaction aborts enemies younger
// than itself and waits (boundedly) for older ones. Because timestamps are
// retained across retries, every task eventually becomes the oldest and
// completes — this gives livelock freedom.
type Timestamp struct {
	r        *rng.Xoshiro256
	attempts int
}

// timestampMaxWaits bounds politeness toward older transactions.
const timestampMaxWaits = 16

// NewTimestamp returns the Timestamp manager.
func NewTimestamp() ContentionManager { return &Timestamp{r: rng.New(uint64(time.Now().UnixNano()))} }

// Name implements ContentionManager.
func (*Timestamp) Name() string { return "timestamp" }

// BeginTransaction implements ContentionManager.
func (t *Timestamp) BeginTransaction(*Tx) { t.attempts = 0 }

// OpenSucceeded implements ContentionManager.
func (t *Timestamp) OpenSucceeded(*Tx) { t.attempts = 0 }

// TransactionCommitted implements ContentionManager.
func (t *Timestamp) TransactionCommitted(*Tx) {}

// TransactionAborted implements ContentionManager.
func (t *Timestamp) TransactionAborted(*Tx) {}

// ResolveConflict implements ContentionManager.
func (t *Timestamp) ResolveConflict(me, other *Tx) Decision {
	if me.Timestamp() < other.Timestamp() {
		return AbortOther
	}
	if t.attempts >= timestampMaxWaits {
		t.attempts = 0
		return AbortOther
	}
	backoff(t.r, t.attempts, false)
	t.attempts++
	return Wait
}

// Greedy (Guerraoui, Herlihy & Pochon, PODC'05) aborts the enemy if it is
// younger or itself waiting; otherwise it waits. Unlike Timestamp it never
// aborts an older, running enemy, which yields provable progress bounds.
type Greedy struct{ nilNotify }

// NewGreedy returns the Greedy manager.
func NewGreedy() ContentionManager { return &Greedy{} }

// Name implements ContentionManager.
func (*Greedy) Name() string { return "greedy" }

// ResolveConflict implements ContentionManager.
func (*Greedy) ResolveConflict(me, other *Tx) Decision {
	if me.Timestamp() < other.Timestamp() || other.Waiting() {
		return AbortOther
	}
	// Busy-wait one beat; the Wait decision loops us back here.
	runtime.Gosched()
	return Wait
}

// Managers maps manager names to factories; kbench flags and the contention
// ablation iterate over it. Polka first — the paper's choice.
func Managers() []struct {
	Name string
	New  func() ContentionManager
} {
	return []struct {
		Name string
		New  func() ContentionManager
	}{
		{"polka", NewPolka},
		{"karma", NewKarma},
		{"eruption", NewEruption},
		{"kindergarten", NewKindergarten},
		{"timestamp", NewTimestamp},
		{"greedy", NewGreedy},
		{"polite", NewPolite},
		{"randomized", NewRandomized},
		{"aggressive", NewAggressive},
		{"timid", NewTimid},
	}
}

// ManagerByName returns the factory for a named manager, or an error listing
// the valid names.
func ManagerByName(name string) (func() ContentionManager, error) {
	for _, m := range Managers() {
		if m.Name == name {
			return m.New, nil
		}
	}
	names := make([]string, 0, len(Managers()))
	for _, m := range Managers() {
		names = append(names, m.Name)
	}
	return nil, fmt.Errorf("stm: unknown contention manager %q (want one of %v)", name, names)
}

// nextPow2 rounds up to a power of two; used by tests sizing backoff tables.
func nextPow2(v uint64) uint64 {
	if v <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(v-1))
}
