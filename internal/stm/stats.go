package stm

import (
	"fmt"
	"sync/atomic"
)

// Stats holds the STM's global counters. All fields are updated with atomic
// adds on hot paths; reading a snapshot is racy-but-monotone, which is all
// throughput reporting needs.
type Stats struct {
	begins          atomic.Uint64
	commits         atomic.Uint64
	selfAborts      atomic.Uint64
	enemyAborts     atomic.Uint64
	retries         atomic.Uint64
	conflicts       atomic.Uint64
	validationFails atomic.Uint64
	reads           atomic.Uint64
	writes          atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	Begins          uint64 // transactions started (including retries)
	Commits         uint64 // successful commits
	SelfAborts      uint64 // aborts initiated by the owning thread
	EnemyAborts     uint64 // aborts initiated by competitors
	Retries         uint64 // re-executions of a task after an abort
	Conflicts       uint64 // contention-manager invocations
	ValidationFails uint64 // aborts due to read-set invalidation
	Reads           uint64 // object opens for reading
	Writes          uint64 // object opens for writing
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Begins:          s.begins.Load(),
		Commits:         s.commits.Load(),
		SelfAborts:      s.selfAborts.Load(),
		EnemyAborts:     s.enemyAborts.Load(),
		Retries:         s.retries.Load(),
		Conflicts:       s.conflicts.Load(),
		ValidationFails: s.validationFails.Load(),
		Reads:           s.reads.Load(),
		Writes:          s.writes.Load(),
	}
}

func (s *Stats) reset() {
	s.begins.Store(0)
	s.commits.Store(0)
	s.selfAborts.Store(0)
	s.enemyAborts.Store(0)
	s.retries.Store(0)
	s.conflicts.Store(0)
	s.validationFails.Store(0)
	s.reads.Store(0)
	s.writes.Store(0)
}

// Aborts returns total aborts from both sources.
func (s StatsSnapshot) Aborts() uint64 { return s.SelfAborts + s.EnemyAborts }

// ContentionRate returns conflicts per committed transaction — the paper's
// "frequency of contentions" metric (§4.4). Zero commits yields zero.
func (s StatsSnapshot) ContentionRate() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Conflicts) / float64(s.Commits)
}

// String renders the snapshot compactly.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("begins=%d commits=%d aborts=%d (self=%d enemy=%d) retries=%d conflicts=%d validationFails=%d reads=%d writes=%d",
		s.Begins, s.Commits, s.Aborts(), s.SelfAborts, s.EnemyAborts,
		s.Retries, s.Conflicts, s.ValidationFails, s.Reads, s.Writes)
}

// Add returns the field-wise sum s + other; the sharded executor uses it to
// aggregate per-shard STM deltas into one run-wide snapshot.
func (s StatsSnapshot) Add(other StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Begins:          s.Begins + other.Begins,
		Commits:         s.Commits + other.Commits,
		SelfAborts:      s.SelfAborts + other.SelfAborts,
		EnemyAborts:     s.EnemyAborts + other.EnemyAborts,
		Retries:         s.Retries + other.Retries,
		Conflicts:       s.Conflicts + other.Conflicts,
		ValidationFails: s.ValidationFails + other.ValidationFails,
		Reads:           s.Reads + other.Reads,
		Writes:          s.Writes + other.Writes,
	}
}

// Sub returns the counter deltas s - earlier; the harness uses it to scope
// statistics to a measurement window.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Begins:          s.Begins - earlier.Begins,
		Commits:         s.Commits - earlier.Commits,
		SelfAborts:      s.SelfAborts - earlier.SelfAborts,
		EnemyAborts:     s.EnemyAborts - earlier.EnemyAborts,
		Retries:         s.Retries - earlier.Retries,
		Conflicts:       s.Conflicts - earlier.Conflicts,
		ValidationFails: s.ValidationFails - earlier.ValidationFails,
		Reads:           s.Reads - earlier.Reads,
		Writes:          s.Writes - earlier.Writes,
	}
}
