// Package stm is a Go reimplementation of the Dynamic Software Transactional
// Memory (DSTM) system of Herlihy, Luchangco, Moir & Scherer (PODC'03) that
// the paper builds its executor on (§4.1).
//
// DSTM is object-based and obstruction-free. Every transactional object
// holds an atomic pointer to a Locator — a triple (writer, oldVersion,
// newVersion). A transaction acquires an object for writing by installing,
// with a single compare-and-swap, a fresh locator whose old version is the
// currently committed one and whose new version is a private clone. Commit
// is one compare-and-swap of the transaction's status word from ACTIVE to
// COMMITTED, which atomically makes every installed new version current.
// Reads are invisible: the transaction records (object, version) pairs and
// re-validates the whole set on every subsequent open and at commit, so a
// transaction can never observe an inconsistent snapshot without finding out
// before it acts on it.
//
// Conflicts between active transactions are arbitrated by a pluggable
// contention manager (Scherer & Scott, PODC'05); the paper's experiments use
// Polka, which combines randomized exponential backoff with priority
// accumulation.
//
// Versions stored in objects must be pointers (the implementation compares
// versions by interface identity); the typed Box[T] wrapper enforces this.
package stm

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Transaction status values. A transaction's status word is its single
// point of atomicity: the CAS ACTIVE→COMMITTED commits every object the
// transaction has acquired at once.
const (
	statusActive uint32 = iota
	statusCommitted
	statusAborted
)

// ErrAborted is returned by Read, Write and Commit when the transaction has
// been aborted, either by a competitor (through the contention manager) or
// by failed validation. Callers inside an Atomic block should propagate it
// unchanged so the block retries.
var ErrAborted = errors.New("stm: transaction aborted")

// ErrNotActive is returned when a transaction is used after it committed.
// It indicates a programming error, not a transient condition. (An aborted
// transaction's operations return ErrAborted instead: aborts can be inflicted
// by enemy transactions at any instant, so they must stay retryable.)
var ErrNotActive = errors.New("stm: transaction no longer active")

// STM owns global configuration and statistics. All transactions created
// from the same STM instance may share objects.
type STM struct {
	newCM    func() ContentionManager
	stats    Stats
	clock    atomic.Int64 // logical timestamps for timestamp-based managers
	threadID atomic.Int64
}

// Option configures an STM instance.
type Option func(*STM)

// WithContentionManager selects the contention-manager factory; each worker
// thread gets a private instance, as in DSTM. The default is Polka, the
// manager used for all of the paper's experiments.
func WithContentionManager(factory func() ContentionManager) Option {
	return func(s *STM) { s.newCM = factory }
}

// New returns an STM instance.
func New(opts ...Option) *STM {
	s := &STM{newCM: NewPolka}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stats returns a snapshot of the global counters.
func (s *STM) Stats() StatsSnapshot { return s.stats.snapshot() }

// ResetStats zeroes the global counters (between experiment runs).
func (s *STM) ResetStats() { s.stats.reset() }

// A Thread is the per-worker handle from which transactions are begun. It
// owns a private contention-manager instance, mirroring DSTM's thread-local
// managers. A Thread must not be used concurrently from multiple goroutines;
// create one Thread per worker.
type Thread struct {
	s  *STM
	id int64
	cm ContentionManager
	// cur is the thread's active transaction, if any. Kept so enemy
	// threads never need it — all cross-thread state lives in Tx.
	cur *Tx
}

// NewThread returns a worker handle with its own contention manager.
func (s *STM) NewThread() *Thread {
	return &Thread{s: s, id: s.threadID.Add(1), cm: s.newCM()}
}

// ID returns the thread's unique identifier.
func (t *Thread) ID() int64 { return t.id }

// ManagerName reports the contention manager driving this thread.
func (t *Thread) ManagerName() string { return t.cm.Name() }

// Tx is one transaction attempt. It is created by Thread.Begin and used by
// exactly one goroutine; other threads interact with it only through its
// atomic status and priority words.
type Tx struct {
	s      *STM
	thread *Thread
	status atomic.Uint32

	// priority is read by enemy threads' contention managers (Karma,
	// Polka, Eruption), hence atomic.
	priority atomic.Int64
	// waiting is set while the transaction spins on a conflict; the
	// Greedy manager consults it.
	waiting atomic.Bool
	// timestamp orders transactions for Timestamp/Greedy. Assigned at
	// first Begin of a task and retained across retries so that old
	// transactions eventually win.
	timestamp int64

	reads  []readEntry
	writes int
}

type readEntry struct {
	obj *Object
	ver any
}

// committedSentinel is the writer of every freshly created object's locator:
// a permanently committed transaction.
var committedSentinel = func() *Tx {
	tx := &Tx{}
	tx.status.Store(statusCommitted)
	return tx
}()

// Begin starts a new transaction on this thread.
func (t *Thread) Begin() *Tx {
	tx := &Tx{s: t.s, thread: t, timestamp: t.s.clock.Add(1)}
	t.cur = tx
	t.s.stats.begins.Add(1)
	t.cm.BeginTransaction(tx)
	return tx
}

// beginRetry starts a replacement transaction for a retried task, keeping
// the original timestamp so that timestamp-ordered managers guarantee
// progress for long-suffering tasks.
func (t *Thread) beginRetry(prev *Tx) *Tx {
	tx := &Tx{s: t.s, thread: t, timestamp: prev.timestamp}
	t.cur = tx
	t.s.stats.begins.Add(1)
	t.s.stats.retries.Add(1)
	t.cm.BeginTransaction(tx)
	return tx
}

// Status helpers ------------------------------------------------------------

// Active reports whether the transaction can still read, write and commit.
func (tx *Tx) Active() bool { return tx.status.Load() == statusActive }

// Committed reports whether the transaction committed.
func (tx *Tx) Committed() bool { return tx.status.Load() == statusCommitted }

// Aborted reports whether the transaction aborted.
func (tx *Tx) Aborted() bool { return tx.status.Load() == statusAborted }

// Priority returns the transaction's contention-manager priority. Enemy
// threads may call this concurrently.
func (tx *Tx) Priority() int64 { return tx.priority.Load() }

// Timestamp returns the logical begin time of the task this transaction
// belongs to (stable across retries).
func (tx *Tx) Timestamp() int64 { return tx.timestamp }

// Waiting reports whether the transaction is currently spinning on a
// conflict (used by the Greedy manager).
func (tx *Tx) Waiting() bool { return tx.waiting.Load() }

// ThreadID returns the owning thread's ID; contention managers use it to
// recognize repeat adversaries across transaction retries.
func (tx *Tx) ThreadID() int64 {
	if tx.thread == nil {
		return 0
	}
	return tx.thread.id
}

// ReadSetSize returns the number of recorded invisible reads.
func (tx *Tx) ReadSetSize() int { return len(tx.reads) }

// WriteSetSize returns the number of objects acquired for writing.
func (tx *Tx) WriteSetSize() int { return tx.writes }

// abortBy attempts to abort the transaction on behalf of an enemy. It
// reports whether the status transitioned (false if the target already
// committed or aborted).
func (tx *Tx) abortBy() bool {
	return tx.status.CompareAndSwap(statusActive, statusAborted)
}

// Abort aborts the transaction from its own thread. Aborting a completed
// transaction is a no-op.
func (tx *Tx) Abort() {
	if tx.status.CompareAndSwap(statusActive, statusAborted) {
		tx.s.stats.selfAborts.Add(1)
		tx.thread.cm.TransactionAborted(tx)
	}
}

// Commit attempts to atomically commit every write this transaction has
// made. It returns nil on success and ErrAborted if the transaction lost a
// conflict or failed validation.
func (tx *Tx) Commit() error {
	if tx.status.Load() != statusActive {
		tx.s.stats.enemyAborts.Add(1)
		tx.thread.cm.TransactionAborted(tx)
		return ErrAborted
	}
	if !tx.validate() {
		tx.Abort()
		tx.s.stats.validationFails.Add(1)
		return ErrAborted
	}
	if !tx.status.CompareAndSwap(statusActive, statusCommitted) {
		// An enemy aborted us between validation and the CAS.
		tx.s.stats.enemyAborts.Add(1)
		tx.thread.cm.TransactionAborted(tx)
		return ErrAborted
	}
	tx.s.stats.commits.Add(1)
	tx.thread.cm.TransactionCommitted(tx)
	return nil
}

// usable gates Read/Write on the transaction's status. An aborted
// transaction returns ErrAborted — the abort may have come from an enemy
// between two opens, which is a transient loss the Atomic retry loop must
// absorb, not a programming error (returning ErrNotActive here was the
// long-standing "stm: transaction no longer active" flake under concurrent
// churn). Only use after commit reports ErrNotActive.
func (tx *Tx) usable() error {
	switch tx.status.Load() {
	case statusActive:
		return nil
	case statusAborted:
		return ErrAborted
	default:
		return ErrNotActive
	}
}

// validate re-checks every recorded read against the object's currently
// committed version, and that the transaction is still active. DSTM calls
// this on every open and at commit, which gives transactions a consistent
// view at all times.
func (tx *Tx) validate() bool {
	for _, r := range tx.reads {
		if r.obj.committedVersion() != r.ver {
			return false
		}
	}
	return tx.status.Load() == statusActive
}

// Validate exposes validation for callers that want to fail fast inside
// long transactions (used by the sorted-list traversal).
func (tx *Tx) Validate() bool { return tx.validate() }

// Release drops the object from tx's read set — DSTM's "early release"
// (Herlihy et al. §2). A linked-list traversal releases nodes it has passed
// so that its read set stays O(1) and concurrent updates to distant parts of
// the list no longer conflict with it. The caller asserts that dropping the
// read cannot violate the transaction's correctness; misuse can break
// serializability, exactly as in DSTM.
func (tx *Tx) Release(o *Object) {
	kept := tx.reads[:0]
	for _, r := range tx.reads {
		if r.obj != o {
			kept = append(kept, r)
		}
	}
	// Zero the tail so released entries do not pin versions in memory.
	for i := len(kept); i < len(tx.reads); i++ {
		tx.reads[i] = readEntry{}
	}
	tx.reads = kept
}

// Object is a transactional object: an atomic pointer to a locator plus the
// clone function used for copy-on-write. Versions must be pointers; the
// clone function must return a copy that the new transaction may mutate
// freely (deep enough that committed versions are never written again).
type Object struct {
	clone func(any) any
	loc   atomic.Pointer[locator]
}

type locator struct {
	writer *Tx
	oldVal any
	newVal any
}

// NewObject creates a transactional object with the given initial version
// and clone function. initial must be a pointer value; it becomes the
// committed version.
func NewObject(initial any, clone func(any) any) *Object {
	if clone == nil {
		panic("stm: NewObject requires a clone function")
	}
	o := &Object{clone: clone}
	o.loc.Store(&locator{writer: committedSentinel, newVal: initial})
	return o
}

// committedVersion resolves the object's currently committed version from
// its locator, per the DSTM rules: a committed writer's new version is
// current; an aborted or still-active writer's old version is current.
func (o *Object) committedVersion() any {
	loc := o.loc.Load()
	if loc.writer.status.Load() == statusCommitted {
		return loc.newVal
	}
	return loc.oldVal
}

// Read opens the object for reading and returns the version visible to tx.
// The read is invisible to other transactions; it is recorded and will be
// re-validated on every later open and at commit.
func (tx *Tx) Read(o *Object) (any, error) {
	if err := tx.usable(); err != nil {
		return nil, err
	}
	tx.s.stats.reads.Add(1)
	for {
		loc := o.loc.Load()
		w := loc.writer
		if w == tx {
			// Read our own uncommitted write.
			return loc.newVal, nil
		}
		var cur any
		switch w.status.Load() {
		case statusCommitted:
			cur = loc.newVal
		case statusAborted:
			cur = loc.oldVal
		default:
			// Conflict with an active writer; arbitrate.
			if !tx.resolve(w) {
				return nil, ErrAborted
			}
			continue
		}
		tx.reads = append(tx.reads, readEntry{obj: o, ver: cur})
		if !tx.validate() {
			tx.Abort()
			tx.s.stats.validationFails.Add(1)
			return nil, ErrAborted
		}
		return cur, nil
	}
}

// Write opens the object for writing and returns tx's private, mutable
// clone of the current version. The clone becomes the committed version if
// and when tx commits.
func (tx *Tx) Write(o *Object) (any, error) {
	if err := tx.usable(); err != nil {
		return nil, err
	}
	tx.s.stats.writes.Add(1)
	for {
		loc := o.loc.Load()
		w := loc.writer
		if w == tx {
			// Already acquired; return the same clone.
			return loc.newVal, nil
		}
		var cur any
		switch w.status.Load() {
		case statusCommitted:
			cur = loc.newVal
		case statusAborted:
			cur = loc.oldVal
		default:
			if !tx.resolve(w) {
				return nil, ErrAborted
			}
			continue
		}
		newLoc := &locator{writer: tx, oldVal: cur, newVal: o.clone(cur)}
		if o.loc.CompareAndSwap(loc, newLoc) {
			tx.writes++
			tx.priority.Add(1) // priority accumulation (Karma/Polka)
			tx.thread.cm.OpenSucceeded(tx)
			if !tx.validate() {
				tx.Abort()
				tx.s.stats.validationFails.Add(1)
				return nil, ErrAborted
			}
			return newLoc.newVal, nil
		}
		// CAS lost to a competitor; loop and re-arbitrate.
	}
}

// resolve arbitrates a conflict between tx and the active enemy writer w.
// It returns false if tx itself has been aborted and should give up.
func (tx *Tx) resolve(w *Tx) bool {
	tx.s.stats.conflicts.Add(1)
	tx.waiting.Store(true)
	decision := tx.thread.cm.ResolveConflict(tx, w)
	tx.waiting.Store(false)
	switch decision {
	case AbortOther:
		if w.abortBy() {
			tx.s.stats.enemyAborts.Add(1)
		}
		return true
	case AbortSelf:
		tx.Abort()
		return false
	default: // Wait: the manager already delayed us; just retry.
		return tx.status.Load() == statusActive
	}
}

// Atomic runs fn inside a transaction, retrying on aborts until it commits.
// A non-ErrAborted error from fn aborts the transaction and is returned to
// the caller unchanged. fn must propagate errors from Read/Write so the
// retry loop can observe them; it may be re-executed many times and must not
// have side effects outside the STM.
func (t *Thread) Atomic(fn func(tx *Tx) error) error {
	tx := t.Begin()
	for {
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		}
		if !errors.Is(err, ErrAborted) {
			tx.Abort()
			return err
		}
		tx.Abort() // no-op if an enemy already aborted us
		tx = t.beginRetry(tx)
	}
}

// Box is a typed wrapper over Object for plain values: it stores *T versions
// and clones by shallow copy. Use it for scalars and for node structs whose
// fields are themselves immutable or transactional references; use NewObject
// with a deep clone for versions containing slices or maps.
type Box[T any] struct {
	o *Object
}

// NewBox creates a Box holding a copy of initial.
func NewBox[T any](initial T) Box[T] {
	v := initial
	return Box[T]{o: NewObject(&v, func(x any) any {
		c := *x.(*T)
		return &c
	})}
}

// Read returns the version of the boxed value visible to tx. The caller
// must not mutate it.
func (b Box[T]) Read(tx *Tx) (*T, error) {
	v, err := tx.Read(b.o)
	if err != nil {
		return nil, err
	}
	return v.(*T), nil
}

// Write returns tx's private clone of the boxed value; mutations become
// visible atomically when tx commits.
func (b Box[T]) Write(tx *Tx) (*T, error) {
	v, err := tx.Write(b.o)
	if err != nil {
		return nil, err
	}
	return v.(*T), nil
}

// Object returns the underlying transactional object (for tests and stats).
func (b Box[T]) Object() *Object { return b.o }

// String renders a short debugging description of a transaction.
func (tx *Tx) String() string {
	st := "active"
	switch tx.status.Load() {
	case statusCommitted:
		st = "committed"
	case statusAborted:
		st = "aborted"
	}
	return fmt.Sprintf("tx(thread=%d ts=%d %s reads=%d writes=%d)",
		tx.ThreadID(), tx.timestamp, st, len(tx.reads), tx.writes)
}
