// Package hist implements the probability-distribution machinery behind the
// paper's adaptive scheduler (§3.2, Figure 2): an equal-width sample
// histogram, a piecewise-linear estimate of the cumulative distribution
// function, and the PD-partition that converts the estimated CDF into
// equal-probability key ranges (Shen & Ding, ICPP'04; Janus & Lamagna,
// IEEE ToC 1985).
//
// It also implements the multinomial-proportion sample-size bound the paper
// cites: 10,000 samples guarantee with 95% confidence that the estimated CDF
// is 99% accurate.
package hist

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram counts samples in equal-width cells over the closed key range
// [min, max]. Add is safe for concurrent use (atomic per-cell counters), so
// parallel producers can sample into a shared histogram without locks, as
// the parallel-executor model requires.
type Histogram struct {
	min, max uint64
	width    float64 // cell width in key units
	cells    []atomic.Uint64
	total    atomic.Uint64
}

// NewHistogram returns a histogram with the given number of cells over
// [min, max]. It panics if cells <= 0 or max < min; these are programming
// errors, not runtime conditions.
func NewHistogram(min, max uint64, cells int) *Histogram {
	if cells <= 0 {
		panic("hist: NewHistogram with non-positive cell count")
	}
	if max < min {
		panic("hist: NewHistogram with max < min")
	}
	return &Histogram{
		min:   min,
		max:   max,
		width: float64(max-min+1) / float64(cells),
		cells: make([]atomic.Uint64, cells),
	}
}

// Cells returns the number of cells.
func (h *Histogram) Cells() int { return len(h.cells) }

// Range returns the key range covered.
func (h *Histogram) Range() (min, max uint64) { return h.min, h.max }

// cellOf maps a key to its cell index, clamping out-of-range keys to the
// boundary cells so that stray samples never panic mid-experiment.
func (h *Histogram) cellOf(key uint64) int {
	if key <= h.min {
		return 0
	}
	if key >= h.max {
		return len(h.cells) - 1
	}
	i := int(float64(key-h.min) / h.width)
	if i >= len(h.cells) {
		i = len(h.cells) - 1
	}
	return i
}

// Add records one sample.
func (h *Histogram) Add(key uint64) {
	h.cells[h.cellOf(key)].Add(1)
	h.total.Add(1)
}

// Total returns the number of samples recorded so far.
func (h *Histogram) Total() uint64 { return h.total.Load() }

// Count returns the count in cell i.
func (h *Histogram) Count(i int) uint64 { return h.cells[i].Load() }

// Snapshot copies the current counts. The copy is internally consistent
// enough for partitioning: each counter is read once, monotonically.
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, len(h.cells))
	for i := range h.cells {
		out[i] = h.cells[i].Load()
	}
	return out
}

// Reset zeroes all counters. Used by the re-adaptation extension between
// sampling windows; not concurrent-safe with Add.
func (h *Histogram) Reset() {
	for i := range h.cells {
		h.cells[i].Store(0)
	}
	h.total.Store(0)
}

// CDF is a piecewise-linear estimate of the cumulative distribution function
// over [min, max], built from a histogram snapshot — step (d) of Figure 2.
// cum[i] is the estimated probability that a key falls in cells 0..i.
type CDF struct {
	min, max uint64
	width    float64
	cum      []float64
	total    uint64
}

// NewCDF builds a CDF from a histogram. It returns an error if the
// histogram has no samples, since an empty CDF defines no partition.
func NewCDF(h *Histogram) (*CDF, error) {
	return newCDF(h.min, h.max, h.width, h.Snapshot())
}

// NewCDFFromCounts builds a CDF from raw cell counts over [min, max]; it is
// the testable core of NewCDF.
func NewCDFFromCounts(min, max uint64, counts []uint64) (*CDF, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("hist: no cells")
	}
	width := float64(max-min+1) / float64(len(counts))
	return newCDF(min, max, width, counts)
}

func newCDF(min, max uint64, width float64, counts []uint64) (*CDF, error) {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("hist: cannot estimate CDF from zero samples")
	}
	cum := make([]float64, len(counts))
	var running uint64
	for i, c := range counts {
		running += c
		cum[i] = float64(running) / float64(total)
	}
	return &CDF{min: min, max: max, width: width, cum: cum, total: total}, nil
}

// Total returns the number of samples the estimate is based on.
func (c *CDF) Total() uint64 { return c.total }

// At returns the estimated P(key <= x), interpolating linearly within a
// cell, matching the piecewise-linear approximation of Figure 2(d).
func (c *CDF) At(x uint64) float64 {
	if x < c.min {
		return 0
	}
	if x >= c.max {
		return 1
	}
	pos := float64(x-c.min+1) / c.width // in units of cells
	i := int(pos)
	if i >= len(c.cum) {
		return 1
	}
	frac := pos - float64(i)
	lo := 0.0
	if i > 0 {
		lo = c.cum[i-1]
	}
	return lo + frac*(c.cum[i]-lo)
}

// Quantile returns the smallest key x such that the estimated P(key <= x)
// is at least p — the "project down onto the x axis" step of Figure 2(e).
// p is clamped to [0, 1].
func (c *CDF) Quantile(p float64) uint64 {
	if p <= 0 {
		return c.min
	}
	if p >= 1 {
		return c.max
	}
	// Binary search for the first cell whose cumulative probability
	// reaches p, then interpolate linearly inside it.
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cellStart := 0.0
	if lo > 0 {
		cellStart = c.cum[lo-1]
	}
	cellMass := c.cum[lo] - cellStart
	frac := 1.0
	if cellMass > 0 {
		frac = (p - cellStart) / cellMass
	}
	key := float64(c.min) + (float64(lo)+frac)*c.width
	k := uint64(key)
	if k > c.max {
		k = c.max
	}
	if k < c.min {
		k = c.min
	}
	return k
}

// Partition is the output of PD-partitioning: w contiguous key ranges with
// approximately equal probability mass. Bounds holds the w-1 interior
// boundaries; range i is [Bounds[i-1]+1, Bounds[i]] with the outer edges at
// min and max. Lookup is by binary search.
type Partition struct {
	min, max uint64
	bounds   []uint64 // len w-1, strictly increasing
}

// PDPartition divides the key space into w equal-probability ranges using
// the estimated CDF — the complete Figure 2 pipeline. It returns an error
// if w <= 0.
func PDPartition(c *CDF, w int) (*Partition, error) {
	if w <= 0 {
		return nil, fmt.Errorf("hist: PDPartition with %d workers", w)
	}
	bounds := make([]uint64, 0, w-1)
	prev := c.min
	for i := 1; i < w; i++ {
		b := c.Quantile(float64(i) / float64(w))
		// Keep boundaries strictly increasing so every range is
		// non-empty even under degenerate (point-mass) distributions.
		if b <= prev {
			b = prev + 1
		}
		if b > c.max {
			b = c.max
		}
		bounds = append(bounds, b)
		prev = b
	}
	return &Partition{min: c.min, max: c.max, bounds: bounds}, nil
}

// UniformPartition returns the fixed scheduler's partition: w equal-width
// ranges over [min, max].
func UniformPartition(min, max uint64, w int) (*Partition, error) {
	if w <= 0 {
		return nil, fmt.Errorf("hist: UniformPartition with %d workers", w)
	}
	if max < min {
		return nil, fmt.Errorf("hist: UniformPartition with max < min")
	}
	span := float64(max-min+1) / float64(w)
	bounds := make([]uint64, 0, w-1)
	prev := min
	for i := 1; i < w; i++ {
		b := min + uint64(span*float64(i)) - 1
		if b <= prev {
			b = prev + 1
		}
		if b > max {
			b = max
		}
		bounds = append(bounds, b)
		prev = b
	}
	return &Partition{min: min, max: max, bounds: bounds}, nil
}

// Workers returns the number of ranges.
func (p *Partition) Workers() int { return len(p.bounds) + 1 }

// Pick returns the index of the range containing key, clamping out-of-range
// keys to the edge ranges.
func (p *Partition) Pick(key uint64) int {
	// Binary search over bounds: the answer is the first bound >= key.
	lo, hi := 0, len(p.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.bounds[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Bounds returns a copy of the interior boundaries.
func (p *Partition) Bounds() []uint64 {
	out := make([]uint64, len(p.bounds))
	copy(out, p.bounds)
	return out
}

// RangeOf returns the closed key range assigned to worker i.
func (p *Partition) RangeOf(i int) (lo, hi uint64) {
	if i < 0 || i >= p.Workers() {
		panic(fmt.Sprintf("hist: RangeOf(%d) with %d workers", i, p.Workers()))
	}
	lo, hi = p.min, p.max
	if i > 0 {
		lo = p.bounds[i-1] + 1
	}
	if i < len(p.bounds) {
		hi = p.bounds[i]
	}
	return lo, hi
}

// String renders the partition compactly for logs and reports.
func (p *Partition) String() string {
	s := "["
	for i := 0; i < p.Workers(); i++ {
		lo, hi := p.RangeOf(i)
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d..%d", i, lo, hi)
	}
	return s + "]"
}

// Imbalance measures how far a partition is from perfectly balancing the
// given sample counts: it returns max over ranges of (range mass / ideal
// mass). 1.0 is perfect balance; the fixed partition under the paper's
// exponential distribution scores near w.
func (p *Partition) Imbalance(keys []uint64) float64 {
	if len(keys) == 0 {
		return 1
	}
	loads := make([]int, p.Workers())
	for _, k := range keys {
		loads[p.Pick(k)]++
	}
	ideal := float64(len(keys)) / float64(p.Workers())
	worst := 0.0
	for _, l := range loads {
		if r := float64(l) / ideal; r > worst {
			worst = r
		}
	}
	return worst
}

// SampleSize returns the number of samples needed so that, with the given
// confidence, every estimated CDF value is within (1-accuracy) of the truth.
// This is the multinomial/binomial proportion estimation bound the paper
// cites from Shen & Ding: using the worst-case variance p(1-p) <= 1/4 and
// the normal approximation,
//
//	n >= z^2 / (4 d^2),  z = Phi^-1(1 - alpha/2),  d = 1 - accuracy.
//
// With confidence 0.95 and accuracy 0.99 it yields 9,604, which the paper
// rounds up to its 10,000-sample threshold.
func SampleSize(confidence, accuracy float64) (int, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("hist: confidence %v out of (0,1)", confidence)
	}
	if accuracy <= 0 || accuracy >= 1 {
		return 0, fmt.Errorf("hist: accuracy %v out of (0,1)", accuracy)
	}
	alpha := 1 - confidence
	d := 1 - accuracy
	z := normQuantile(1 - alpha/2)
	n := z * z / (4 * d * d)
	return int(math.Ceil(n)), nil
}

// SampleSizeBonferroni is the stricter simultaneous bound: it Bonferroni-
// corrects across histogram cells so that all cell proportions are accurate
// at once. It is used by the threshold ablation to show the paper's simple
// bound is already adequate in practice.
func SampleSizeBonferroni(confidence, accuracy float64, cells int) (int, error) {
	if cells <= 0 {
		return 0, fmt.Errorf("hist: %d cells", cells)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("hist: confidence %v out of (0,1)", confidence)
	}
	alpha := (1 - confidence) / float64(cells)
	return SampleSize(1-alpha, accuracy)
}

// DefaultSampleThreshold is the paper's confidence threshold: 10,000 samples
// guarantee with 95% confidence a 99%-accurate CDF.
const DefaultSampleThreshold = 10000

// normQuantile returns the p-quantile of the standard normal distribution
// via the inverse error function.
func normQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}
