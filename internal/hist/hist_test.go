package hist

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"kstm/internal/dist"
	"kstm/internal/rng"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 99, 10)
	if h.Cells() != 10 {
		t.Fatalf("Cells = %d", h.Cells())
	}
	for i := uint64(0); i < 100; i++ {
		h.Add(i)
	}
	if h.Total() != 100 {
		t.Fatalf("Total = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if c := h.Count(i); c != 10 {
			t.Errorf("cell %d = %d, want 10", i, c)
		}
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(10, 19, 2)
	h.Add(0)    // below min -> cell 0
	h.Add(1000) // above max -> last cell
	if h.Count(0) != 1 || h.Count(1) != 1 {
		t.Errorf("clamping failed: counts %d,%d", h.Count(0), h.Count(1))
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero cells": func() { NewHistogram(0, 9, 0) },
		"max<min":    func() { NewHistogram(9, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramConcurrentAdd(t *testing.T) {
	h := NewHistogram(0, 1023, 16)
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < per; i++ {
				h.Add(r.Uint64n(1024))
			}
		}(uint64(w))
	}
	wg.Wait()
	if h.Total() != workers*per {
		t.Fatalf("Total = %d, want %d", h.Total(), workers*per)
	}
	var sum uint64
	for i := 0; i < h.Cells(); i++ {
		sum += h.Count(i)
	}
	if sum != workers*per {
		t.Fatalf("cell sum = %d, want %d", sum, workers*per)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0, 9, 2)
	h.Add(1)
	h.Reset()
	if h.Total() != 0 || h.Count(0) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestCDFRejectsEmpty(t *testing.T) {
	h := NewHistogram(0, 9, 2)
	if _, err := NewCDF(h); err == nil {
		t.Error("NewCDF on empty histogram succeeded")
	}
	if _, err := NewCDFFromCounts(0, 9, nil); err == nil {
		t.Error("NewCDFFromCounts with no cells succeeded")
	}
}

func TestCDFUniformAt(t *testing.T) {
	counts := []uint64{10, 10, 10, 10}
	c, err := NewCDFFromCounts(0, 99, counts)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    uint64
		want float64
	}{
		{24, 0.25}, {49, 0.5}, {74, 0.75}, {99, 1}, {0, 0.01},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 0.02 {
			t.Errorf("At(%d) = %v, want ~%v", cse.x, got, cse.want)
		}
	}
	if got := c.At(1000); got != 1 {
		t.Errorf("At(beyond max) = %v, want 1", got)
	}
}

func TestCDFQuantileMonotone(t *testing.T) {
	counts := []uint64{1, 0, 0, 50, 3, 0, 10, 7}
	c, err := NewCDFFromCounts(0, 799, counts)
	if err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := c.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone at p=%v: %d < %d", p, q, prev)
		}
		prev = q
	}
	if c.Quantile(-1) != 0 || c.Quantile(2) != 799 {
		t.Error("Quantile clamping broken")
	}
}

func TestQuantileInvertsAt(t *testing.T) {
	// On a distribution with no empty cells, Quantile should approximately
	// invert At.
	counts := []uint64{5, 9, 21, 40, 13, 7, 3, 2}
	c, err := NewCDFFromCounts(0, 7999, counts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		q := c.Quantile(p)
		if got := c.At(q); math.Abs(got-p) > 0.01 {
			t.Errorf("At(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestPDPartitionBalancesSkew(t *testing.T) {
	// Build a histogram from the paper's exponential distribution and
	// check that the PD-partition balances it while the uniform partition
	// does not.
	src := dist.NewExponentialDefault(9)
	// 256 cells: the exponential packs ~87% of its key mass below 1024,
	// so coarse cells leave the piecewise-linear CDF too blunt to balance.
	h := NewHistogram(0, dist.MaxKey, 256)
	keys := make([]uint64, 0, DefaultSampleThreshold)
	for i := 0; i < DefaultSampleThreshold; i++ {
		key, _ := dist.Split(src.Next())
		k := uint64(key)
		h.Add(k)
		keys = append(keys, k)
	}
	c, err := NewCDF(h)
	if err != nil {
		t.Fatal(err)
	}
	const w = 8
	adaptive, err := PDPartition(c, w)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := UniformPartition(0, dist.MaxKey, w)
	if err != nil {
		t.Fatal(err)
	}
	ai := adaptive.Imbalance(keys)
	fi := fixed.Imbalance(keys)
	if ai > 1.6 {
		t.Errorf("adaptive imbalance = %v, want near 1", ai)
	}
	if fi < 6 {
		t.Errorf("fixed imbalance under exponential = %v, want near %d", fi, w)
	}
	if ai >= fi {
		t.Errorf("adaptive (%v) not better than fixed (%v)", ai, fi)
	}
}

func TestPDPartitionUniformMatchesFixed(t *testing.T) {
	// Under a uniform distribution the adaptive boundaries should be close
	// to the equal-width ones.
	src := dist.NewUniform(10)
	h := NewHistogram(0, dist.MaxKey, 64)
	for i := 0; i < 50000; i++ {
		key, _ := dist.Split(src.Next())
		h.Add(uint64(key))
	}
	c, _ := NewCDF(h)
	const w = 4
	adaptive, _ := PDPartition(c, w)
	fixed, _ := UniformPartition(0, dist.MaxKey, w)
	ab, fb := adaptive.Bounds(), fixed.Bounds()
	for i := range ab {
		diff := math.Abs(float64(ab[i]) - float64(fb[i]))
		if diff > float64(dist.MaxKey)/20 {
			t.Errorf("bound %d: adaptive %d vs fixed %d (diff %v)", i, ab[i], fb[i], diff)
		}
	}
}

func TestPartitionPick(t *testing.T) {
	p, err := UniformPartition(0, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  uint64
		want int
	}{
		{0, 0}, {24, 0}, {25, 1}, {49, 1}, {50, 2}, {74, 2}, {75, 3}, {99, 3}, {1000, 3},
	}
	for _, c := range cases {
		if got := p.Pick(c.key); got != c.want {
			t.Errorf("Pick(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestPartitionRangesCoverSpace(t *testing.T) {
	p, err := UniformPartition(0, 65535, 7)
	if err != nil {
		t.Fatal(err)
	}
	prevHi := uint64(0)
	for i := 0; i < p.Workers(); i++ {
		lo, hi := p.RangeOf(i)
		if i == 0 && lo != 0 {
			t.Errorf("first range starts at %d", lo)
		}
		if i > 0 && lo != prevHi+1 {
			t.Errorf("range %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Errorf("range %d inverted: %d..%d", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != 65535 {
		t.Errorf("last range ends at %d", prevHi)
	}
}

func TestPartitionSingleWorker(t *testing.T) {
	p, err := UniformPartition(0, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() != 1 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	if p.Pick(50) != 0 {
		t.Error("single-worker Pick != 0")
	}
}

func TestPDPartitionPointMass(t *testing.T) {
	// All samples on one key: boundaries must still be strictly increasing
	// and Pick must be total.
	counts := make([]uint64, 16)
	counts[3] = 1000
	c, err := NewCDFFromCounts(0, 1599, counts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PDPartition(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Bounds()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", b)
		}
	}
	for k := uint64(0); k < 1600; k += 7 {
		w := p.Pick(k)
		if w < 0 || w >= 8 {
			t.Fatalf("Pick(%d) = %d", k, w)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	c, _ := NewCDFFromCounts(0, 9, []uint64{1})
	if _, err := PDPartition(c, 0); err == nil {
		t.Error("PDPartition(w=0) succeeded")
	}
	if _, err := UniformPartition(0, 9, 0); err == nil {
		t.Error("UniformPartition(w=0) succeeded")
	}
	if _, err := UniformPartition(9, 0, 2); err == nil {
		t.Error("UniformPartition(max<min) succeeded")
	}
}

func TestRangeOfPanicsOutOfBounds(t *testing.T) {
	p, _ := UniformPartition(0, 9, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("RangeOf(5) did not panic")
		}
	}()
	p.RangeOf(5)
}

func TestPartitionString(t *testing.T) {
	p, _ := UniformPartition(0, 99, 2)
	if s := p.String(); s == "" || s[0] != '[' {
		t.Errorf("String() = %q", s)
	}
}

func TestSampleSizePaperThreshold(t *testing.T) {
	// The paper: 10,000 samples give 95% confidence of a 99%-accurate
	// CDF. The Shen & Ding bound evaluates to 9,604, which the paper
	// rounds up to 10,000.
	n, err := SampleSize(0.95, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if n < 9500 || n > DefaultSampleThreshold {
		t.Errorf("SampleSize(0.95, 0.99) = %d, want 9604 (paper rounds to %d)", n, DefaultSampleThreshold)
	}
}

func TestSampleSizeMonotonicity(t *testing.T) {
	n1, _ := SampleSize(0.95, 0.99)
	n2, _ := SampleSize(0.99, 0.99) // more confidence -> more samples
	n3, _ := SampleSize(0.95, 0.999)
	if n2 <= n1 {
		t.Errorf("higher confidence needs %d <= %d samples", n2, n1)
	}
	if n3 <= n1 {
		t.Errorf("higher accuracy needs %d <= %d samples", n3, n1)
	}
}

func TestSampleSizeBonferroniStricter(t *testing.T) {
	n1, _ := SampleSize(0.95, 0.99)
	n2, err := SampleSizeBonferroni(0.95, 0.99, 20)
	if err != nil {
		t.Fatal(err)
	}
	if n2 <= n1 {
		t.Errorf("Bonferroni bound %d not stricter than simple bound %d", n2, n1)
	}
	if _, err := SampleSizeBonferroni(0.95, 0.99, 0); err == nil {
		t.Error("SampleSizeBonferroni(cells=0) succeeded")
	}
}

func TestSampleSizeErrors(t *testing.T) {
	for _, c := range []struct {
		conf, acc float64
	}{
		{0, 0.99}, {1, 0.99}, {0.95, 0}, {0.95, 1},
	} {
		if _, err := SampleSize(c.conf, c.acc); err == nil {
			t.Errorf("SampleSize(%v,%v) succeeded", c.conf, c.acc)
		}
	}
}

func TestQuickPartitionPickMatchesLinearScan(t *testing.T) {
	p, err := UniformPartition(0, 1<<16-1, 13)
	if err != nil {
		t.Fatal(err)
	}
	bounds := p.Bounds()
	f := func(key uint16) bool {
		k := uint64(key)
		want := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= k })
		return p.Pick(k) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickPDPartitionBalanced(t *testing.T) {
	// Property: for random histograms with plenty of mass, the adaptive
	// partition's imbalance on the sampled keys is bounded by histogram
	// granularity. One cell is the partition's atomic unit — a contiguous
	// range cannot split a cell — so the heaviest worker can be forced to
	// hold the heaviest single cell: maxShare <= maxCellFrac + slack, i.e.
	// imbalance <= maxCellFrac*w + slack*w. (The previous form of this test
	// asserted a flat < 3.5, which is false whenever the 70% mass band —
	// 1024 keys wide, exactly one 64-cell histogram cell — lands inside a
	// single cell or clamps onto one key, and flaked at roughly 1 in 8 runs
	// because testing/quick draws time-seeded inputs. The bound below held
	// across 5000 seeds x workers 2..15 with >= 1.08 margin.)
	r := rng.New(123)
	f := func(seed uint32) bool {
		gen := rng.New(uint64(seed))
		h := NewHistogram(0, 1<<16-1, 64)
		keys := make([]uint64, 0, 20000)
		// Random mixture: a point mass region plus uniform noise.
		center := gen.Uint64n(1 << 16)
		for i := 0; i < 20000; i++ {
			var k uint64
			if gen.Float64() < 0.7 {
				k = center + gen.Uint64n(1024)
				if k > 1<<16-1 {
					k = 1<<16 - 1
				}
			} else {
				k = gen.Uint64n(1 << 16)
			}
			h.Add(k)
			keys = append(keys, k)
		}
		var maxCell uint64
		for i := 0; i < h.Cells(); i++ {
			if c := h.Count(i); c > maxCell {
				maxCell = c
			}
		}
		maxCellFrac := float64(maxCell) / float64(h.Total())
		c, err := NewCDF(h)
		if err != nil {
			return false
		}
		w := 2 + int(r.Uint64n(14))
		p, err := PDPartition(c, w)
		if err != nil {
			return false
		}
		return p.Imbalance(keys) < maxCellFrac*float64(w)+2.0
	}
	// A deterministic input stream keeps the property reproducible run to
	// run; the generator mixture already varies widely across these seeds.
	if err := quick.Check(f, &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(7)),
	}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(0, dist.MaxKey, 64)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(r.Uint64n(1 << 16))
	}
}

func BenchmarkPartitionPick(b *testing.B) {
	src := dist.NewExponentialDefault(1)
	h := NewHistogram(0, dist.MaxKey, 64)
	for i := 0; i < 10000; i++ {
		key, _ := dist.Split(src.Next())
		h.Add(uint64(key))
	}
	c, _ := NewCDF(h)
	p, _ := PDPartition(c, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Pick(uint64(i) & dist.KeyMask)
	}
}

func BenchmarkPDPartitionBuild(b *testing.B) {
	src := dist.NewGaussianDefault(1)
	h := NewHistogram(0, dist.MaxKey, 64)
	for i := 0; i < 10000; i++ {
		key, _ := dist.Split(src.Next())
		h.Add(uint64(key))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _ := NewCDF(h)
		_, _ = PDPartition(c, 16)
	}
}
