// Package stats provides the summary statistics the paper's data collection
// uses (§4.3: "we take the mean throughput of ten runs"), plus confidence
// intervals and speedup helpers for EXPERIMENTS.md tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	Stdev  float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary; it panics on an empty sample (a harness
// bug, not a runtime condition).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stdev = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval for the mean,
// using the normal approximation (adequate for the harness's ≥5 runs).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stdev / math.Sqrt(float64(s.N))
}

// RelStdev returns the coefficient of variation (stdev/mean), or 0 for a
// zero mean.
func (s Summary) RelStdev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stdev / s.Mean
}

// String renders "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// Speedup returns b/a, guarding a zero baseline.
func Speedup(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return improved / baseline
}

// GeoMean returns the geometric mean of positive values; non-positive
// entries are skipped (they would make the product meaningless).
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
