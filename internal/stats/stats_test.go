package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.Stdev-want) > 1e-12 {
		t.Errorf("Stdev = %v, want %v", s.Stdev, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stdev != 0 || s.CI95() != 0 || s.Median != 7 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Errorf("Median = %v, want 2.5", s.Median)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestCI95ShrinksWithN(t *testing.T) {
	a := Summarize([]float64{1, 2, 3, 4})
	b := Summarize([]float64{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4})
	if b.CI95() >= a.CI95() {
		t.Errorf("CI did not shrink: %v -> %v", a.CI95(), b.CI95())
	}
}

func TestRelStdev(t *testing.T) {
	s := Summary{Mean: 10, Stdev: 1}
	if s.RelStdev() != 0.1 {
		t.Errorf("RelStdev = %v", s.RelStdev())
	}
	if (Summary{}).RelStdev() != 0 {
		t.Error("zero-mean RelStdev != 0")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(2, 6) != 3 {
		t.Error("Speedup(2,6) != 3")
	}
	if Speedup(0, 6) != 0 {
		t.Error("Speedup(0,6) != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Errorf("GeoMean = %v, want 2", g)
	}
	if g := GeoMean([]float64{2, 8, 0, -3}); g != 4 {
		t.Errorf("GeoMean with skips = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
}

func TestStringNonEmpty(t *testing.T) {
	if Summarize([]float64{1, 2}).String() == "" {
		t.Error("empty String")
	}
}

func TestQuickMeanWithinBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min && s.Mean <= s.Max && s.Median >= s.Min && s.Median <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
