// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the reproduction.
//
// The paper's workload generators must be reproducible across runs and across
// machines so that the harness can compare schedulers on identical task
// streams. math/rand's global state is shared and lockful; these generators
// are value types that each producer owns privately, seeded from a single
// experiment seed via SplitMix64 stream splitting.
package rng

import "math"

// SplitMix64 is the 64-bit state splitter from Steele, Lea & Flood
// (OOPSLA'14). It is used both as a standalone generator and to seed the
// larger-state xoshiro generator, so that nearby seeds yield independent
// streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements xoshiro256** by Blackman & Vigna. It has 256 bits of
// state, passes BigCrush, and is the workhorse generator for the workload
// producers.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 seeded from seed via SplitMix64, per the authors'
// recommendation. Distinct seeds give statistically independent streams.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// An all-zero state would be absorbing; SplitMix64 cannot produce four
	// consecutive zeros from any seed, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64-bit value.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint32 returns the next 32-bit value (upper bits of Uint64, which are the
// strongest bits of xoshiro256**).
func (x *Xoshiro256) Uint32() uint32 { return uint32(x.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(x.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Rejection sampling on the top bits: unbiased and branch-cheap.
	mask := ^uint64(0)
	if n&(n-1) == 0 { // power of two
		return x.Uint64() & (n - 1)
	}
	limit := mask - mask%n
	for {
		v := x.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform. Box–Muller is exact (no tail truncation) and needs no tables,
// which keeps the generator allocation-free and portable.
func (x *Xoshiro256) NormFloat64() float64 {
	// Draw u1 in (0,1] so that Log never sees zero.
	u1 := 1.0 - x.Float64()
	u2 := x.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	return r * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponential variate with rate 1 via inverse-CDF,
// matching the paper's generator: -log(1-r).
func (x *Xoshiro256) ExpFloat64() float64 {
	return -math.Log(1.0 - x.Float64())
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls to
// Uint64. It is used to derive non-overlapping parallel substreams from a
// single seeded generator.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// Split returns a new generator whose stream does not overlap with x's next
// 2^128 outputs; x itself is advanced past the returned substream.
func (x *Xoshiro256) Split() *Xoshiro256 {
	child := *x
	x.Jump()
	return &child
}
