package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the public-domain reference
	// implementation (Vigna).
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("SplitMix64(1234567) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestIntnRange(t *testing.T) {
	x := New(7)
	for _, n := range []int{1, 2, 3, 7, 100, 30031, 1 << 16} {
		for i := 0; i < 200; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	x := New(3)
	for i := 0; i < 1000; i++ {
		if v := x.Uint64n(1 << 10); v >= 1<<10 {
			t.Fatalf("Uint64n(1024) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(11)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	x := New(17)
	const n = 400000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	x := New(23)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := x.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	parent := New(77)
	child := parent.Split()
	// The child must replay what the parent would have produced, and the
	// parent must now be 2^128 steps ahead (different stream).
	ref := New(77)
	for i := 0; i < 100; i++ {
		if child.Uint64() != ref.Uint64() {
			t.Fatalf("child stream diverged from pre-split parent at %d", i)
		}
	}
	same := 0
	childCopy := New(77)
	for i := 0; i < 100; i++ {
		if parent.Uint64() == childCopy.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("parent after Jump overlaps child stream: %d/100 equal", same)
	}
}

func TestJumpChangesState(t *testing.T) {
	x := New(7)
	before := *x
	x.Jump()
	if x.s == before.s {
		t.Fatal("Jump left state unchanged")
	}
}

func TestUint32MatchesTopBits(t *testing.T) {
	a, b := New(13), New(13)
	for i := 0; i < 100; i++ {
		if got, want := a.Uint32(), uint32(b.Uint64()>>32); got != want {
			t.Fatalf("Uint32 = %#x, want top bits %#x", got, want)
		}
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	x := New(31)
	f := func(n uint16) bool {
		m := int(n%10000) + 1
		v := x.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-ish check: 8 cells, 80k draws, each cell should be close
	// to 10k.
	x := New(41)
	var cells [8]int
	const draws = 80000
	for i := 0; i < draws; i++ {
		cells[x.Uint64n(8)]++
	}
	for i, c := range cells {
		if c < 9500 || c > 10500 {
			t.Errorf("cell %d has %d draws, want ~10000", i, c)
		}
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	x := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += x.NormFloat64()
	}
	_ = sink
}
