// Fixtures for the padalign analyzer: //kstmvet:padalign structs must keep
// a size that is a positive multiple of their declared cache-line width, so
// arrays of them (the executor's per-worker counter blocks) never share a
// line between workers.
package fixture

import "sync/atomic"

// padded matches core's per-worker counter discipline: one counter plus a
// trailing pad filling the 64-byte line.
//
//kstmvet:padalign
type padded struct {
	n atomic.Uint64
	_ [56]byte
}

// wideCounters spans exactly two lines — multiples are fine.
//
//kstmvet:padalign
type wideCounters struct {
	a, b, c, d, e, f, g, h atomic.Uint64
	_                      [64]byte
}

// truncated simulates the field-evolution failure: someone deleted the pad
// (or added a field) and the block no longer tiles cache lines.
//
//kstmvet:padalign
type truncated struct { // want `struct truncated is 40 bytes, not a multiple of its declared 64-byte cache line`
	completed atomic.Uint64
	cancelled atomic.Uint64
	failed    atomic.Uint64
	empty     atomic.Uint64
	steals    atomic.Uint64
}

// wide128 declares a bigger line explicitly.
//
//kstmvet:padalign 128
type wide128 struct {
	_ [128]byte
}

// short128 misses its declared line size even though it is a 64-multiple.
//
//kstmvet:padalign 128
type short128 struct { // want `struct short128 is 64 bytes, not a multiple of its declared 128-byte cache line`
	_ [64]byte
}

// badSize has an unparsable directive argument.
//
//kstmvet:padalign cacheline
type badSize struct { // want `bad padalign directive on badSize`
	_ [64]byte
}

// notAStruct cannot carry a layout contract.
//
//kstmvet:padalign
type notAStruct int // want `padalign directive on notAStruct, which is not a struct`

// unmarked structs are never checked, whatever their size.
type unmarked struct {
	x uint32
}

// suppressed shows the audited escape hatch.
//
//kstmvet:padalign
type suppressed struct { //kstmvet:ignore fixture: transitional layout during a counter-block split
	x uint64
}
