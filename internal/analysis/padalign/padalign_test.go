package padalign_test

import (
	"strings"
	"testing"

	"kstm/internal/analysis/analysistest"
	"kstm/internal/analysis/padalign"
)

func TestFixtures(t *testing.T) {
	diags := analysistest.Run(t, padalign.Analyzer, "testdata")
	found := false
	for _, d := range diags {
		if d.Suppressed && strings.Contains(d.SuppressReason, "transitional layout") {
			found = true
		}
	}
	if !found {
		t.Errorf("suppressed transitional-layout finding missing from inventory: %+v", diags)
	}
}
