// Package padalign verifies cache-line padding contracts. Structs marked
//
//	//kstmvet:padalign        (default 64 bytes)
//	//kstmvet:padalign 128    (explicit line size)
//
// must have a gc layout whose size is a positive multiple of the declared
// line size. The executor's per-worker counter blocks (core.workerCounters,
// core.paddedCounter) rely on this: each worker's counters live on a private
// cache line so per-task increments never bounce a shared line between cores
// — an invariant that silently evaporates when someone adds a field and
// forgets to shrink the trailing pad. The directive makes the contract
// checkable: field evolution that changes the size to a non-multiple is a
// kstmvet failure with the exact byte count to fix.
package padalign

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"kstm/internal/analysis"
)

// Analyzer is the padalign pass.
var Analyzer = &analysis.Analyzer{
	Name: "padalign",
	Doc:  "verify //kstmvet:padalign structs stay a multiple of their cache-line size",
	Run:  run,
}

// directive is the marker scanned for in type doc comments.
const directive = "//kstmvet:padalign"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				line, ok := findDirective(doc)
				if !ok {
					continue
				}
				checkType(pass, ts, line)
			}
		}
	}
	return nil
}

// findDirective returns the directive line, if present.
func findDirective(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return c.Text, true
		}
	}
	return "", false
}

func checkType(pass *analysis.Pass, ts *ast.TypeSpec, line string) {
	lineSize, err := parseLineSize(line)
	if err != nil {
		pass.Reportf(ts.Pos(), "bad padalign directive on %s: %v", ts.Name.Name, err)
		return
	}
	obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	if ts.TypeParams != nil {
		pass.Reportf(ts.Pos(), "padalign cannot verify generic type %s: layout depends on instantiation", ts.Name.Name)
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "padalign directive on %s, which is not a struct", ts.Name.Name)
		return
	}
	size := pass.Sizes.Sizeof(st)
	if size <= 0 || size%lineSize != 0 {
		short := (lineSize - size%lineSize) % lineSize
		pass.Reportf(ts.Pos(),
			"struct %s is %d bytes, not a multiple of its declared %d-byte cache line; adjust the trailing pad by %d bytes so neighbouring blocks never share a line",
			ts.Name.Name, size, lineSize, short)
	}
}

// parseLineSize extracts the optional byte count (default 64).
func parseLineSize(line string) (int64, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, directive))
	if rest == "" {
		return 64, nil
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("want %q or %q, got %q", directive, directive+" <bytes>", line)
	}
	return n, nil
}
