package analysis

import (
	"go/ast"
	"go/types"
)

// Package paths of the repo layers whose contracts the analyzers encode.
const (
	StmPath  = "kstm/internal/stm"
	TxdsPath = "kstm/internal/txds"
	CorePath = "kstm/internal/core"
)

// AtomicFuncLits returns every function literal passed directly to
// (*stm.Thread).Atomic in the file — the retryable transaction closures whose
// bodies may be re-executed after an abort. Closures passed indirectly (via a
// variable or a wrapper) are not tracked.
func AtomicFuncLits(info *types.Info, file *ast.File) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn := Callee(info, call)
		if fn == nil || fn.Name() != "Atomic" || fn.Pkg() == nil || fn.Pkg().Path() != StmPath {
			return true
		}
		if lit, ok := call.Args[0].(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// Callee resolves the function or method object a call invokes, or nil for
// builtins, function values, type conversions, and other dynamic calls.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Mentions reports whether the subtree under n references obj.
func Mentions(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// VarOf returns the variable object an identifier expression denotes, or nil
// if the expression is not a plain identifier bound to a variable.
func VarOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}

// NamedType returns the defined (named) type of t after stripping one level
// of pointer and any aliases, or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	u := types.Unalias(t)
	if p, ok := u.(*types.Pointer); ok {
		u = types.Unalias(p.Elem())
	}
	n, _ := u.(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind a pointer or alias) is the
// named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// LastResultIsError reports whether fn's final result is the error type.
func LastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
