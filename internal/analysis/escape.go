package analysis

// Escape-diagnostic collection: hotpathalloc's ground truth for "does this
// function heap-allocate" is the compiler's own escape analysis, not a
// syntactic guess. `go build -gcflags=-m` emits one diagnostic per escaping
// value; the build cache replays them on subsequent runs, so the collection
// costs one no-op build. Facts built with this data are marked
// EscapeDerived; packages without it (the fixture harness, which
// type-checks testdata packages the go tool cannot build) fall back to the
// static approximation in facts.go.

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// EscapeDiag is one compiler escape diagnostic, positioned within its file.
type EscapeDiag struct {
	Line int
	Col  int
	Msg  string // e.g. "&e escapes to heap" / "moved to heap: lenBuf"
}

// Escapes holds the escape diagnostics for a set of packages.
type Escapes struct {
	byFile map[string][]EscapeDiag // absolute file path → diagnostics
	pkgs   map[string]bool         // import paths the build covered
}

// Covers reports whether the build produced (possibly empty) escape data for
// the package — the signal to trust compiler facts over the static
// approximation.
func (e *Escapes) Covers(pkgPath string) bool { return e != nil && e.pkgs[pkgPath] }

// File returns the diagnostics recorded for an absolute file path, in
// emission order.
func (e *Escapes) File(file string) []EscapeDiag {
	if e == nil {
		return nil
	}
	return e.byFile[file]
}

// escapeLineRE matches the positioned diagnostic lines of -gcflags=-m.
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// CollectEscapes builds the named packages with -gcflags=-m and gathers the
// "escapes to heap" / "moved to heap" diagnostics. dir is the working
// directory for the build ("" = current); diagnostic paths, which the go
// tool prints relative to it, are normalized to absolute so they line up
// with the loader's FileSet positions.
func CollectEscapes(dir string, pkgPaths []string) (*Escapes, error) {
	if len(pkgPaths) == 0 {
		return &Escapes{byFile: map[string][]EscapeDiag{}, pkgs: map[string]bool{}}, nil
	}
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{"build", "-gcflags=-m"}, buildOutputArgs(pkgPaths)...)
	args = append(args, pkgPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = abs
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, stderr.String())
	}
	esc := &Escapes{byFile: map[string][]EscapeDiag{}, pkgs: map[string]bool{}}
	for _, p := range pkgPaths {
		esc.pkgs[p] = true
	}
	seen := map[string]bool{}
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := escapeLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(abs, file)
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		key := fmt.Sprintf("%s:%d:%d:%s", file, line, col, msg)
		if seen[key] {
			continue // -m repeats diagnostics for generic instantiations
		}
		seen[key] = true
		esc.byFile[file] = append(esc.byFile[file], EscapeDiag{Line: line, Col: col, Msg: msg})
	}
	return esc, sc.Err()
}

// buildOutputArgs discards the build outputs. With several packages the go
// tool already discards them; a lone main package would write a binary into
// the working directory, so that case gets an explicit -o to the null
// device.
func buildOutputArgs(pkgPaths []string) []string {
	if len(pkgPaths) == 1 {
		return []string{"-o", os.DevNull}
	}
	return nil
}
