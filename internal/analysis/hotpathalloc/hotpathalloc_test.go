package hotpathalloc_test

import (
	"testing"

	"kstm/internal/analysis/analysistest"
	"kstm/internal/analysis/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	diags := analysistest.Run(t, hotpathalloc.Analyzer, "testdata")
	// The suppressed make in suppressed() must be present in the inventory
	// with its reason, not silently dropped.
	found := false
	for _, d := range diags {
		if d.Suppressed && d.SuppressReason != "" {
			found = true
		}
	}
	if !found {
		t.Error("expected a suppressed diagnostic with a reason in the inventory")
	}
}
