// Package hotpathalloc enforces the allocation-free contract on functions
// marked //kstmvet:hotpath: the submission, dispatch, settle/recycle, and
// wire encode/decode paths whose per-operation budget (DESIGN.md §5, §8.5)
// leaves no room for heap traffic.
//
// An annotated function must not:
//
//   - heap-allocate (verified against the compiler's own -gcflags=-m escape
//     diagnostics when the CLI collected them, else against the static
//     approximation — see internal/analysis/facts.go);
//   - box a value into an interface, capture variables in a closure, or
//     spawn a goroutine;
//   - read the clock (time.Now / time.Since);
//   - block (channel operations, select without default, Future.Wait);
//   - call deny-listed formatting/logging/reflection APIs;
//   - call a module function whose facts say it heap-allocates (the
//     one-level-deep interprocedural check).
//
// Error construction on a failure return (`return fmt.Errorf(...)`) is
// tolerated: it executes once per failure, not per operation. The runtime
// AllocsPerRun gates in bench/ remain the ground truth; this analyzer turns
// the same budget into a build break (bench/README.md).
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"kstm/internal/analysis"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "//kstmvet:hotpath functions must not allocate, block, or read the clock",
	Run:  run,
}

// denyPrefixes lists callee-key prefixes banned on the hot path outright,
// with the reason reported. fmt.Errorf is exempted separately: it appears
// only on cold error returns, which the allocation check already tolerates.
var denyPrefixes = []struct{ prefix, why string }{
	{"fmt.", "formats into fresh allocations"},
	{"log.", "logging belongs off the hot path"},
	{"sort.Slice", "boxes the slice into an interface per call"},
	{"reflect.", "reflection allocates and defeats inlining"},
	{"os.", "operating-system calls are unbounded"},
	{"runtime.GC", "forces a collection"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, analysis.HotpathDirective) {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			check(pass, analysis.FuncKey(fn))
		}
	}
	return nil
}

// check reports every hot-path contract violation recorded in one annotated
// function's facts.
func check(pass *analysis.Pass, key string) {
	ff := pass.Facts.Of(key)
	if ff == nil {
		return
	}
	for _, a := range ff.Allocs {
		if a.ColdErrPath {
			continue
		}
		if a.File != "" {
			pass.ReportLinef(a.File, a.Line, a.Col, "hot path heap allocation: %s", a.What)
		} else {
			pass.Reportf(a.Pos, "hot path heap allocation: %s", a.What)
		}
	}
	for _, c := range ff.Clocks {
		pass.Reportf(c.Pos, "hot path reads the clock: %s", c.What)
	}
	for _, cl := range ff.Closures {
		if cl.Captures {
			pass.Reportf(cl.Pos, "hot path closure captures variables (allocates per evaluation)")
		}
	}
	for _, g := range ff.Gos {
		pass.Reportf(g, "hot path spawns a goroutine")
	}
	for _, b := range ff.Blocks {
		pass.Reportf(b.Pos, "hot path blocking operation: %s", b.What)
	}
	for _, c := range ff.Calls {
		if c.Callee == "fmt.Errorf" {
			continue
		}
		if deny, why := denied(c.Callee); deny {
			pass.Reportf(c.Pos, "hot path calls deny-listed %s: %s", c.Callee, why)
			continue
		}
		// One level deep: a call into a summarized (module or fixture)
		// function that itself heap-allocates on its warm path. Annotated
		// callees are skipped — they are checked at their own declaration.
		cf := pass.Facts.Of(c.Callee)
		if cf == nil || cf.Hotpath {
			continue
		}
		if warmAllocates(cf) {
			pass.Reportf(c.Pos, "hot path calls %s, which heap-allocates", c.Callee)
		}
	}
}

// warmAllocates reports whether a callee's facts record an allocation
// outside cold error returns.
func warmAllocates(ff *analysis.FuncFacts) bool {
	for _, a := range ff.Allocs {
		if !a.ColdErrPath {
			return true
		}
	}
	return false
}

// denied matches a callee key against the deny list.
func denied(key string) (bool, string) {
	for _, d := range denyPrefixes {
		if strings.HasPrefix(key, d.prefix) {
			return true, d.why
		}
	}
	return false, ""
}
