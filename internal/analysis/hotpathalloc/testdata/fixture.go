// Fixture for hotpathalloc: planted violations of the //kstmvet:hotpath
// allocation-free contract. Facts here use the static approximation (the go
// tool cannot build testdata packages, so no escape diagnostics exist).
package fixture

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

type item struct {
	k int
	v string
}

// clean is the shape the contract wants: index arithmetic, field writes,
// reslicing — nothing that touches the heap.
//
//kstmvet:hotpath
func clean(items []item, k int) int {
	n := 0
	for i := range items {
		if items[i].k == k {
			n++
		}
	}
	return n
}

//kstmvet:hotpath
func allocs(xs []int, v string) []byte {
	m := make(map[string]int) // want `hot path heap allocation: make`
	m[v] = 1
	_ = &item{k: 1}    // want `hot path heap allocation: address of composite literal`
	_ = "prefix: " + v // want `hot path heap allocation: string concatenation`
	xs = append(xs, 1) // want `hot path heap allocation: append`
	_ = xs
	return []byte(v) // want `hot path heap allocation: \[\]byte/string conversion`
}

//kstmvet:hotpath
func boxes(v int) any {
	return any(v) // want `hot path heap allocation: boxes int into interface`
}

//kstmvet:hotpath
func clocky() time.Time {
	return time.Now() // want `hot path reads the clock: time.Now`
}

//kstmvet:hotpath
func closurey(n int) func() int {
	return func() int { return n } // want `hot path closure captures variables`
}

//kstmvet:hotpath
func spawns(ch chan int) {
	go drain(ch) // want `hot path spawns a goroutine`
}

//kstmvet:hotpath
func blocky(ch chan int) int {
	return <-ch // want `hot path blocking operation: channel receive`
}

//kstmvet:hotpath
func sleepy() {
	time.Sleep(time.Millisecond) // want `hot path blocking operation: time.Sleep`
}

//kstmvet:hotpath
func selecty(a, b chan int) int {
	select { // want `hot path blocking operation: select without default`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

//kstmvet:hotpath
func denies(v int) string {
	return fmt.Sprintf("%d", v) // want `hot path calls deny-listed fmt.Sprintf`
}

//kstmvet:hotpath
func sorts(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `deny-listed sort.Slice` `closure captures`
}

// coldError shows the tolerated shape: error construction on the failure
// return — including its string concatenation — is cold-path by contract.
//
//kstmvet:hotpath
func coldError(v int, what string) error {
	if v < 0 {
		return errors.New("negative " + what)
	}
	if v > 1<<20 {
		return fmt.Errorf("oversized %s: %d", what, v)
	}
	return nil
}

//kstmvet:hotpath
func callsHelper(n int) []int {
	return sliceHelper(n) // want `hot path calls .*sliceHelper, which heap-allocates`
}

// sliceHelper is not annotated, but its facts record the make — the
// one-level-deep check flags its hot-path callers.
func sliceHelper(n int) []int {
	return make([]int, n)
}

//kstmvet:hotpath
func suppressed(n int) []int {
	return make([]int, n) //kstmvet:ignore fixture demonstrates suppression carries an auditable reason
}

// wakeSpine mirrors the executor's enqueue→wake spine (core/wake.go
// tryWake): a CAS-guarded NON-blocking token send into a reusable cap-1
// channel. This is the legal allocation-free shape — the select has a
// default, so neither a blocking diagnostic nor an allocation fires.
//
//kstmvet:hotpath
func wakeSpine(idle *uint32, token chan struct{}) bool {
	if *idle == 0 {
		return false
	}
	*idle = 0
	select {
	case token <- struct{}{}:
	default:
	}
	return true
}

// wakeSpineAlloc plants the regression this fixture exists to prove caught:
// building the wake token ON the wake path instead of reusing the
// per-worker channel — exactly the bug that would silently turn every
// targeted wake into a heap allocation.
//
//kstmvet:hotpath
func wakeSpineAlloc(idle *uint32) chan struct{} {
	if *idle == 0 {
		return nil
	}
	*idle = 0
	token := make(chan struct{}, 1) // want `hot path heap allocation: make`
	select {
	case token <- struct{}{}:
	default:
	}
	return token
}

// drain keeps the goroutine fixture honest.
func drain(ch chan int) {
	for range ch {
	}
}
