package lockorder_test

import (
	"testing"

	"kstm/internal/analysis/analysistest"
	"kstm/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	diags := analysistest.Run(t, lockorder.Analyzer, "testdata")
	found := false
	for _, d := range diags {
		if d.Suppressed && d.SuppressReason != "" {
			found = true
		}
	}
	if !found {
		t.Error("expected the audited handoff to appear suppressed in the inventory")
	}
}
