// Package lockorder checks the repo's lock discipline using the
// fact-propagation core: it builds the program-wide lock-acquisition graph
// (an edge A → B for every site that acquires B while holding A, including
// acquisitions one call level deep) and reports
//
//   - cyclic acquisition order — two sites that nest the same locks in
//     opposite orders can deadlock even if neither ever has (DESIGN.md §8.6);
//   - blocking operations performed while a lock is held — channel
//     send/receive, select without default, Future.Wait, Cond.Wait,
//     time.Sleep — directly or via a called module function.
//
// Lock identities name declaration sites (pkg.Owner.field, pkg.var,
// pkg.func.var), so the ordering contract is stated per lock declaration,
// not per instance. The fence/gate/hold-queue mutexes of internal/core
// (§4.1, §9) are ordinary sync.Mutex/RWMutex fields and are covered by the
// same identity scheme. Dynamic calls are invisible to the facts; a cycle
// threaded through an interface method will not be seen.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kstm/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "cyclic lock acquisition order and blocking while a lock is held",
	Run:  run,
}

// edge is one acquisition edge: to was acquired while from was held, at pos
// (via names the callee when the acquisition is one call level deep).
type edge struct {
	to  string
	pos token.Pos
	via string
}

func run(pass *analysis.Pass) error {
	reportBlocking(pass)
	reportCycles(pass)
	return nil
}

// reportBlocking walks this package's functions and flags blocking with a
// lock held, both directly and through a summarized callee.
func reportBlocking(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			key := analysis.FuncKey(fn)
			ff := pass.Facts.Of(key)
			if ff == nil {
				continue
			}
			direct := map[token.Pos]bool{}
			for _, b := range ff.Blocks {
				direct[b.Pos] = true
				if len(b.Held) > 0 {
					pass.Reportf(b.Pos, "blocking operation (%s) while holding %s", b.What, strings.Join(b.Held, ", "))
				}
			}
			for _, c := range ff.Calls {
				if len(c.Held) == 0 || c.Callee == key || direct[c.Pos] {
					continue
				}
				cf := pass.Facts.Of(c.Callee)
				if cf == nil || !cf.BlocksDirectly() {
					continue
				}
				pass.Reportf(c.Pos, "call to %s blocks (%s) while holding %s",
					c.Callee, cf.Blocks[0].What, strings.Join(c.Held, ", "))
			}
		}
	}
}

// reportCycles builds the global acquisition graph from every summarized
// function and reports each cycle exactly once: at the minimal-position edge
// leaving the cycle's lexicographically smallest lock, and only from the
// pass whose files contain that edge (so multi-package runs never duplicate
// a finding).
func reportCycles(pass *analysis.Pass) {
	edges := map[string]map[string]edge{} // from → to → representative edge
	add := func(from string, e edge) {
		if from == e.to {
			// A self-edge is re-acquisition of the same declaration-site
			// lock (two instances, e.g. ordered shard locks) — an ordering
			// question the per-declaration identity cannot decide.
			return
		}
		m := edges[from]
		if m == nil {
			m = map[string]edge{}
			edges[from] = m
		}
		if old, ok := m[e.to]; !ok || e.pos < old.pos {
			m[e.to] = e
		}
	}
	for _, ff := range pass.Facts.Fns {
		for _, l := range ff.Locks {
			for _, held := range l.Held {
				add(held, edge{to: l.ID, pos: l.Pos})
			}
		}
		// One level deep: calling a function that acquires locks is an
		// acquisition under whatever the caller holds.
		for _, c := range ff.Calls {
			if len(c.Held) == 0 {
				continue
			}
			cf := pass.Facts.Of(c.Callee)
			if cf == nil {
				continue
			}
			for _, l := range cf.Locks {
				for _, held := range c.Held {
					add(held, edge{to: l.ID, pos: c.Pos, via: c.Callee})
				}
			}
		}
	}

	inPass := map[string]bool{}
	for _, f := range pass.Files {
		inPass[pass.Fset.Position(f.Pos()).Filename] = true
	}

	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, start := range nodes {
		cycle := findCycle(edges, start)
		if cycle == nil {
			continue
		}
		rep := edges[start][cycle[1]]
		if !inPass[pass.Fset.Position(rep.pos).Filename] {
			continue
		}
		msg := "lock acquisition cycle: " + strings.Join(cycle, " -> ")
		if rep.via != "" {
			msg += " (edge via call to " + rep.via + ")"
		}
		pass.Reportf(rep.pos, "%s", msg)
	}
}

// findCycle returns the first cycle through start visiting only nodes ≥
// start (so each cycle is found exactly once, from its smallest node), as
// the node path start, ..., start. Neighbors are explored in sorted order,
// making the choice deterministic.
func findCycle(edges map[string]map[string]edge, start string) []string {
	var path []string
	onPath := map[string]bool{}
	var dfs func(n string) []string
	dfs = func(n string) []string {
		path = append(path, n)
		onPath[n] = true
		defer func() {
			path = path[:len(path)-1]
			delete(onPath, n)
		}()
		next := make([]string, 0, len(edges[n]))
		for to := range edges[n] {
			next = append(next, to)
		}
		sort.Strings(next)
		for _, to := range next {
			if to == start && len(path) > 1 {
				return append(append([]string{}, path...), start)
			}
			if to < start || onPath[to] {
				continue
			}
			if c := dfs(to); c != nil {
				return c
			}
		}
		return nil
	}
	return dfs(start)
}
