// Fixture for lockorder: a planted acquisition cycle (direct and via a
// callee), blocking operations under a lock, and the tolerated shapes.
package fixture

import "sync"

type pair struct {
	a  sync.Mutex
	b  sync.Mutex
	ch chan int
}

// ab nests b under a; ba below nests the opposite way — the planted cycle.
func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want `lock acquisition cycle: .*pair\.a -> .*pair\.b -> .*pair\.a`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

func (p *pair) sendLocked() {
	p.a.Lock()
	p.ch <- 1 // want `blocking operation \(channel send\) while holding .*pair\.a`
	p.a.Unlock()
}

func (p *pair) deferHeld() int {
	p.a.Lock()
	defer p.a.Unlock()
	return <-p.ch // want `blocking operation \(channel receive\) while holding .*pair\.a`
}

// cleanSend blocks with no lock held: not a finding.
func (p *pair) cleanSend() {
	p.ch <- 2
}

func (p *pair) rangeLocked() {
	p.a.Lock()
	for range p.ch { // want `blocking operation \(range over channel\) while holding .*pair\.a`
	}
	p.a.Unlock()
}

func waitHelper(ch chan int) int {
	return <-ch
}

// callBlocks reaches the receive one call level deep.
func (p *pair) callBlocks() int {
	p.a.Lock()
	defer p.a.Unlock()
	return waitHelper(p.ch) // want `call to .*waitHelper blocks \(channel receive\) while holding .*pair\.a`
}

var (
	regMu  sync.Mutex
	statMu sync.Mutex
)

func lockStat() {
	statMu.Lock()
	statMu.Unlock()
}

// regThenStat acquires statMu via lockStat while holding regMu;
// statThenReg nests the other way — a cycle threaded through a call.
func regThenStat() {
	regMu.Lock()
	lockStat() // want `lock acquisition cycle: .*regMu -> .*statMu -> .*regMu \(edge via call to .*lockStat\)`
	regMu.Unlock()
}

func statThenReg() {
	statMu.Lock()
	regMu.Lock()
	regMu.Unlock()
	statMu.Unlock()
}

// suppressedSend is an audited handoff under lock.
func (p *pair) suppressedSend() {
	p.a.Lock()
	p.ch <- 3 //kstmvet:ignore fixture demonstrates an audited handoff under lock
	p.a.Unlock()
}
