// Package statsfold makes the "added a counter, forgot the fold" bug class
// impossible: a struct annotated
//
//	//kstmvet:statsfold <target> [<target>...]
//
// requires every named field to be referenced by each target function. A
// target is a function or method in the same package ("Executor.Stats") or,
// with a slash, fully qualified in another package
// ("kstm/cmd/kstmd.logStats") — the cross-package form is what ties
// server.Stats to the kstmd stats log line. Field references come from the
// fact core's FieldRefs summaries: selector reads/writes and composite-lit
// keys all count, and an unkeyed literal positionally references every
// field (DESIGN.md §8.7).
package statsfold

import (
	"go/ast"
	"go/types"
	"strings"

	"kstm/internal/analysis"
)

// Directive marks a struct whose fields must all be folded by the targets.
const Directive = "//kstmvet:statsfold"

// Analyzer is the statsfold check.
var Analyzer = &analysis.Analyzer{
	Name: "statsfold",
	Doc:  "every field of a //kstmvet:statsfold struct is folded by its target functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				targets, found := directiveTargets(doc)
				if !found {
					continue
				}
				checkType(pass, ts, targets)
			}
		}
	}
	return nil
}

// directiveTargets extracts the target list from a statsfold directive.
func directiveTargets(doc *ast.CommentGroup) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, Directive)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		return strings.Fields(rest), true
	}
	return nil, false
}

// checkType verifies one annotated struct against its targets.
func checkType(pass *analysis.Pass, ts *ast.TypeSpec, targets []string) {
	if len(targets) == 0 {
		pass.Reportf(ts.Pos(), "statsfold requires at least one target function: %s <func> [<pkgpath.func>...]", Directive)
		return
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		pass.Reportf(ts.Pos(), "statsfold directive on non-struct type %s", ts.Name.Name)
		return
	}
	tn, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
	if tn == nil || tn.Pkg() == nil {
		return
	}
	for _, target := range targets {
		key := target
		if !strings.Contains(target, "/") {
			key = tn.Pkg().Path() + "." + target
		}
		cf := pass.Facts.Of(key)
		if cf == nil {
			pass.Reportf(ts.Pos(), "unknown statsfold target %q: no summarized function %s", target, key)
			continue
		}
		for _, fl := range st.Fields.List {
			for _, name := range fl.Names {
				if name.Name == "_" {
					continue
				}
				id := analysis.FieldID(tn.Pkg(), ts.Name.Name, name.Name)
				if !cf.FieldRefs[id] {
					pass.Reportf(name.Pos(), "field %s.%s is not folded in %s", ts.Name.Name, name.Name, target)
				}
			}
		}
	}
}
