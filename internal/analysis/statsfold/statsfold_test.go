package statsfold_test

import (
	"testing"

	"kstm/internal/analysis/analysistest"
	"kstm/internal/analysis/statsfold"
)

func TestStatsFold(t *testing.T) {
	diags := analysistest.Run(t, statsfold.Analyzer, "testdata")
	found := false
	for _, d := range diags {
		if d.Suppressed && d.SuppressReason != "" {
			found = true
		}
	}
	if !found {
		t.Error("expected the derived-field suppression to appear in the inventory")
	}
}
