// Fixture for statsfold: stats structs whose folds are complete, partial
// (the planted missing-fold case), cross-package, and malformed.
package fixture

// counters has a deliberately unfolded field: foldCounters never reads
// drops, the exact bug class the analyzer exists for.
//
//kstmvet:statsfold foldCounters
type counters struct {
	hits   int
	misses int
	drops  int // want `field counters.drops is not folded in foldCounters`
	_      [8]byte
}

func foldCounters(c *counters) int {
	return c.hits + c.misses
}

// gauges is folded by two targets; the mirror misses one field.
//
//kstmvet:statsfold foldAll mirrorAll
type gauges struct {
	up   int
	down int // want `field gauges.down is not folded in mirrorAll`
}

func foldAll(g gauges) int { return g.up + g.down }

func mirrorAll(g gauges) int { return g.up }

//kstmvet:statsfold rebuild
type snap struct {
	a int
	b int
}

// rebuild references every field positionally: a complete fold.
func rebuild(s snap) snap { return snap{s.a, s.b} }

//kstmvet:statsfold missingFunc
type orphan struct { // want `unknown statsfold target "missingFunc"`
	n int
}

// mirror targets a real method in another package, the server.Stats →
// kstmd pattern: the target resolves (no unknown-target finding) but never
// references this struct's field.
//
//kstmvet:statsfold kstm/internal/core.Executor.Stats
type mirror struct {
	Completed int // want `field mirror.Completed is not folded in kstm/internal/core.Executor.Stats`
}

//kstmvet:statsfold foldCounters
type scalar int // want `statsfold directive on non-struct type scalar`

//kstmvet:statsfold
type bare struct { // want `statsfold requires at least one target function`
	n int
}

//kstmvet:statsfold foldPartial
type partial struct {
	seen int
	skew int //kstmvet:ignore skew is derived at read time by design, not folded
}

func foldPartial(p partial) int { return p.seen }

// keep the otherwise-unused fields and funcs referenced
var _ = []any{foldCounters, foldAll, mirrorAll, rebuild, foldPartial, orphan{}, mirror{}, scalar(0), bare{}}
