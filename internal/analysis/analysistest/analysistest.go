// Package analysistest runs kstmvet analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` golden comments — a
// stdlib-only analogue of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live in each analyzer's testdata/ directory (invisible to the go
// tool, so planted contract violations never reach the real build). They are
// type-checked against the real module graph, so a fixture can import
// kstm/internal/stm or kstm/internal/core and violate the actual contracts
// rather than mocked ones. Expectations are trailing comments on the
// offending line:
//
//	th.Atomic(func(tx *stm.Tx) error {
//	    sum += 1 // want `accumulates inside an Atomic closure`
//	    return nil
//	})
//
// Multiple wants on one line each match one diagnostic. A line with a
// diagnostic and no want, or a want with no diagnostic, fails the test.
// Suppressed diagnostics (kstmvet:ignore) are invisible to matching, which
// is how suppression behavior itself is tested.
package analysistest

import (
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"

	"kstm/internal/analysis"
)

var (
	loadOnce sync.Once
	prog     *analysis.Program
	loadErr  error
)

// depProgram loads the module once per test binary: its export table is what
// lets fixtures import real kstm packages.
func depProgram(t *testing.T) *analysis.Program {
	t.Helper()
	loadOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loadErr = err
			return
		}
		prog, loadErr = analysis.Load(root, []string{"./..."})
	})
	if loadErr != nil {
		t.Fatalf("loading module for fixtures: %v", loadErr)
	}
	return prog
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

// Run type-checks every .go file in dir as one fixture package, runs the
// analyzer, and matches live diagnostics against the fixture's want
// comments. It returns all diagnostics (including suppressed) for extra
// assertions.
func Run(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	prog := depProgram(t)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (err=%v)", dir, err)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(prog.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	tpkg, info, err := prog.TypeCheck("kstmvet.fixture/"+filepath.Base(dir), files)
	if err != nil {
		t.Fatalf("type-checking fixtures in %s: %v", dir, err)
	}
	pkg := &analysis.Package{Path: tpkg.Path(), Dir: dir, Files: files, Types: tpkg, Info: info}
	// Merge the fixture's own summaries into the module-wide fact table so
	// fact-driven analyzers see both: a fixture can call a real kstm function
	// and trip a finding off that callee's facts, exactly as production code
	// would. Fixture facts use the static allocation approximation (testdata
	// packages cannot be built, so no escape diagnostics exist for them).
	facts := prog.Facts()
	facts.AddPackage(prog.Fset, pkg, nil)
	diags, err := analysis.RunPackage(prog.Fset, prog.Sizes, facts, pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	match(t, prog, files, diags)
	return diags
}

// want is one expectation: a regexp on a specific file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("^//\\s*want\\s+(.*)$")
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants parses the fixture files' want comments.
func collectWants(t *testing.T, prog *analysis.Program, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, arg := range args {
					raw := arg[1]
					if raw == "" {
						raw = arg[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// match pairs live diagnostics with wants one-to-one per line.
func match(t *testing.T, prog *analysis.Program, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, prog, files)
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
