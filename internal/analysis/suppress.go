package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnoreDirective is the suppression comment form: a trailing comment on the
// offending line, or a full-line comment on the line directly above it.
// The reason is mandatory — suppressions are an audited inventory, not an
// off-switch — and unreasoned ignores are themselves reported.
const IgnoreDirective = "//kstmvet:ignore"

// suppressions maps file → line → reason for one package.
type suppressions struct {
	byLine    map[string]map[int]string
	malformed []malformedIgnore
}

type malformedIgnore struct {
	file      string
	line, col int
}

// scanSuppressions collects every kstmvet:ignore directive in the files.
func scanSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue // run-on like //kstmvet:ignoreme — not our directive
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(text)
				if reason == "" {
					s.malformed = append(s.malformed, malformedIgnore{pos.Filename, pos.Line, pos.Column})
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]string)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = reason
			}
		}
	}
	return s
}

// match reports whether a diagnostic at file:line is suppressed — by a
// directive on the same line (trailing comment) or on the line above.
func (s *suppressions) match(file string, line int) (reason string, ok bool) {
	lines := s.byLine[file]
	if lines == nil {
		return "", false
	}
	if r, ok := lines[line]; ok {
		return r, true
	}
	if r, ok := lines[line-1]; ok {
		return r, true
	}
	return "", false
}
