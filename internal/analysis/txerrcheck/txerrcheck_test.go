package txerrcheck_test

import (
	"testing"

	"kstm/internal/analysis/analysistest"
	"kstm/internal/analysis/txerrcheck"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, txerrcheck.Analyzer, "testdata")
}
