// Fixtures for the txerrcheck analyzer: dropped and swallowed errors from
// stm/txds operations. The seedBugClass function reproduces the PR 2 seed
// bug class — an enemy abort surfaced as a non-retryable error, so the
// executor retry loop treated a routine optimistic-concurrency abort as a
// hard failure.
package fixture

import (
	"errors"
	"fmt"

	"kstm/internal/stm"
	"kstm/internal/txds"
)

var errBusy = errors.New("bank busy")

// seedBugClass: the PR 2 regression — replacing the op error on the abort
// path hides stm.ErrAborted from the retry loop.
func seedBugClass(th *stm.Thread, box stm.Box[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		v, err := box.Write(tx)
		if err != nil {
			return errBusy // want `error from Box.Write is replaced on the error path`
		}
		*v++
		return nil
	})
}

// swallowedNil: eating the error entirely is the same bug.
func swallowedNil(th *stm.Thread, box stm.Box[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		_, err := box.Read(tx)
		if err != nil {
			return nil // want `error from Box.Read is replaced on the error path`
		}
		return nil
	})
}

// flattened: %v strips the error identity errors.Is needs.
func flattened(th *stm.Thread, box stm.Box[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		_, err := box.Write(tx)
		if err != nil {
			return fmt.Errorf("write failed: %v", err) // want `use %w so errors.Is can still see stm.ErrAborted`
		}
		return nil
	})
}

// wrapped: %w preserves the chain — accepted.
func wrapped(th *stm.Thread, box stm.Box[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		_, err := box.Write(tx)
		if err != nil {
			return fmt.Errorf("write failed: %w", err)
		}
		return nil
	})
}

// propagated: the plain idiom — accepted.
func propagated(th *stm.Thread, box stm.Box[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		v, err := box.Write(tx)
		if err != nil {
			return err
		}
		*v = 7
		return nil
	})
}

// inspected: branching on the error first (errors.Is) is a deliberate
// decision — accepted.
func inspected(th *stm.Thread, box stm.Box[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		_, err := box.Read(tx)
		if err != nil {
			if errors.Is(err, stm.ErrNotActive) {
				return errBusy
			}
			return err
		}
		return nil
	})
}

// dropped: discarding a txds op result loses conflicts and aborts alike.
func dropped(th *stm.Thread, set *txds.HashTable) {
	set.Insert(th, 1)        // want `error from HashTable.Insert is dropped`
	_, _ = set.Delete(th, 1) // want `error from HashTable.Delete assigned to _`
	ok, err := set.Insert(th, 2)
	_, _ = ok, err
}

// droppedTx: Tx methods carry the same contract.
func droppedTx(th *stm.Thread, box stm.Box[int]) {
	tx := th.Begin()
	box.Read(tx)      // want `error from Box.Read is dropped`
	defer tx.Commit() // want `error from Tx.Commit is dropped by defer`
}

// suppressedDrop: a justified drop stays out of the live set.
func suppressedDrop(th *stm.Thread, set *txds.HashTable) {
	set.Insert(th, 3) //kstmvet:ignore fixture: best-effort cache warm-up, failure is benign
}
