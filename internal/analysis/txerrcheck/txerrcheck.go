// Package txerrcheck flags dropped or swallowed errors from STM and
// transactional-data-structure operations. Every error these APIs return is
// load-bearing: inside a transaction, stm.ErrAborted is the retry loop's
// signal — a closure that discards it, or maps it to some other error, turns
// a routine optimistic-concurrency abort into a spurious failure (the PR 2
// seed bug was exactly this: an enemy abort surfaced as ErrNotActive instead
// of the retryable ErrAborted). Outside transactions, a dropped error hides
// real conflicts and invariant violations.
//
// Two rules:
//
//  1. dropped — a call to a kstm/internal/stm or kstm/internal/txds function
//     whose error result is discarded (expression statement, go/defer, or
//     assigned to _) is flagged everywhere.
//  2. swallowed — inside an Atomic closure, an `if err != nil` branch that
//     returns anything not derived from err (or wraps it with %v instead of
//     %w) is flagged: the retry loop can no longer see ErrAborted through it.
//     Branches that inspect the error first (a nested if mentioning err,
//     e.g. errors.Is) are trusted and skipped.
package txerrcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kstm/internal/analysis"
)

// Analyzer is the txerrcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "txerrcheck",
	Doc:  "flag dropped or swallowed errors from stm/txds operations (ErrAborted must reach the retry loop)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkDropped(pass, f)
		for _, lit := range analysis.AtomicFuncLits(pass.Info, f) {
			checkSwallowed(pass, lit)
		}
	}
	return nil
}

// tracked reports whether fn is an stm/txds function whose last result is an
// error the caller must not lose.
func tracked(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case analysis.StmPath, analysis.TxdsPath:
		return analysis.LastResultIsError(fn)
	}
	return false
}

// callName renders a tracked call for diagnostics, e.g. "Box.Write".
func callName(fn *types.Func) string {
	if recv := fn.Signature().Recv(); recv != nil {
		if n := analysis.NamedType(recv.Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// checkDropped flags rule 1 across the whole file.
func checkDropped(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fn := analysis.Callee(pass.Info, call); tracked(fn) {
					pass.Reportf(call.Pos(), "error from %s is dropped; inside a transaction that error can be stm.ErrAborted, which the retry loop must see", callName(fn))
				}
			}
		case *ast.GoStmt:
			if fn := analysis.Callee(pass.Info, n.Call); tracked(fn) {
				pass.Reportf(n.Call.Pos(), "error from %s is dropped by go statement; run it in a function that checks the error", callName(fn))
			}
		case *ast.DeferStmt:
			if fn := analysis.Callee(pass.Info, n.Call); tracked(fn) {
				pass.Reportf(n.Call.Pos(), "error from %s is dropped by defer; check it in a deferred closure instead", callName(fn))
			}
		case *ast.AssignStmt:
			checkBlankAssign(pass, n)
		}
		return true
	})
}

// checkBlankAssign flags tracked calls whose error result lands in _.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// v, err := call(...) — the error is the last LHS.
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.Callee(pass.Info, call)
		if tracked(fn) && isBlank(as.Lhs[len(as.Lhs)-1]) {
			pass.Reportf(as.Lhs[len(as.Lhs)-1].Pos(), "error from %s assigned to _; inside a transaction that error can be stm.ErrAborted, which the retry loop must see", callName(fn))
		}
		return
	}
	// Parallel form: a, b = f(), g() — single-result calls only.
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := analysis.Callee(pass.Info, call)
		if tracked(fn) && isBlank(as.Lhs[i]) {
			pass.Reportf(as.Lhs[i].Pos(), "error from %s assigned to _; inside a transaction that error can be stm.ErrAborted, which the retry loop must see", callName(fn))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// checkSwallowed flags rule 2 inside one Atomic closure.
func checkSwallowed(pass *analysis.Pass, lit *ast.FuncLit) {
	// errSources: error variables assigned from tracked calls, with the call
	// they came from.
	errSources := map[*types.Var]*types.Func{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.Info, call)
		if !tracked(fn) {
			return true
		}
		if v := analysis.VarOf(pass.Info, as.Lhs[len(as.Lhs)-1]); v != nil {
			errSources[v] = fn
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		errVar := errNilCheck(pass.Info, ifs.Cond)
		src, ok := errSources[errVar]
		if !ok {
			return true
		}
		checkAbortPath(pass, ifs.Body, errVar, src)
		return true
	})
}

// errNilCheck matches `err != nil` (either operand order) and returns the
// error variable, or nil.
func errNilCheck(info *types.Info, cond ast.Expr) *types.Var {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return nil
	}
	x, y := bin.X, bin.Y
	if isNil(info, x) {
		x, y = y, x
	}
	if !isNil(info, y) {
		return nil
	}
	return analysis.VarOf(info, x)
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == types.Universe.Lookup("nil")
}

// checkAbortPath walks the error branch looking for returns that lose err.
// It does not descend into nested function literals (different return), nor
// into nested ifs that mention err (the code inspected the error — e.g.
// errors.Is(err, ...) — and made a deliberate choice).
func checkAbortPath(pass *analysis.Pass, body *ast.BlockStmt, errVar *types.Var, src *types.Func) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if analysis.Mentions(pass.Info, n.Cond, errVar) {
				return false
			}
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				return true
			}
			res := n.Results[len(n.Results)-1]
			if !analysis.Mentions(pass.Info, res, errVar) {
				pass.Reportf(res.Pos(),
					"error from %s is replaced on the error path; if it is stm.ErrAborted the retry loop never sees it and the transaction fails instead of retrying — return err (or wrap it with %%w)",
					callName(src))
				return true
			}
			checkErrorfWrap(pass, res, errVar)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkErrorfWrap flags fmt.Errorf(..., err) whose format verb is not %w:
// %v/%s flattening strips the error's identity, so errors.Is(err,
// stm.ErrAborted) — and the executor retry loop built on it — stops working.
func checkErrorfWrap(pass *analysis.Pass, res ast.Expr, errVar *types.Var) {
	call, ok := ast.Unparen(res).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	if !strings.Contains(lit.Value, "%w") {
		pass.Reportf(call.Pos(),
			"fmt.Errorf flattens the error with %%v/%%s; use %%w so errors.Is can still see stm.ErrAborted through the wrap")
	}
}
