package analysis

import (
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"testing"
)

// factsSrc exercises every fact class the walker records: lock transitions
// with held-sets, blocking operations, clock reads, closures, static
// allocations, and struct field references.
const factsSrc = `package factprobe

import (
	"sync"
	"time"
)

type Box struct {
	mu    sync.Mutex
	inner sync.Mutex
	A     int
	B     int
}

var globalMu sync.Mutex

func (b *Box) Nested(ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inner.Lock()
	ch <- 1
	b.inner.Unlock()
}

func (b *Box) Branchy(cond bool) {
	if cond {
		b.mu.Lock()
		b.mu.Unlock()
	}
	globalMu.Lock()
	globalMu.Unlock()
}

func Clocky() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func Sleepy() {
	time.Sleep(time.Millisecond)
}

func Closures(n int) func() int {
	free := func() int { return 1 }
	_ = free
	return func() int { return n }
}

type Pair struct {
	X int
	Y int
}

func Alloc(b *Box) *Box {
	m := make(map[string]int)
	m["x"] = 1
	_ = map[string]int{"y": 2}
	_ = &Pair{X: 1}
	_ = Pair{1, 2}.X + b.B
	return new(Box)
}

func Selecty(ch chan int) {
	select {
	case <-ch:
	default:
	}
	select {
	case <-ch:
	}
}
`

// loadFactProbe type-checks factsSrc against real export data (sync, time)
// and summarizes it with the static allocation approximation.
func loadFactProbe(t *testing.T) *Facts {
	t.Helper()
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root = filepath.Dir(filepath.Dir(root)) // internal/analysis → module root
	prog, err := Load(root, []string{"./internal/core"})
	if err != nil {
		t.Fatalf("loading export data: %v", err)
	}
	f, err := parser.ParseFile(prog.Fset, "factprobe.go", factsSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	tpkg, info, err := prog.TypeCheck("kstmvet.fixture/factprobe", []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	facts := NewFacts()
	facts.AddPackage(prog.Fset, &Package{Path: tpkg.Path(), Files: []*ast.File{f}, Types: tpkg, Info: info}, nil)
	return facts
}

func TestFacts(t *testing.T) {
	facts := loadFactProbe(t)
	const pp = "kstmvet.fixture/factprobe"

	t.Run("lock edges and held sets", func(t *testing.T) {
		ff := facts.Of(pp + ".Box.Nested")
		if ff == nil {
			t.Fatal("no facts for Box.Nested")
		}
		var sawEdge, sawSend bool
		for _, l := range ff.Locks {
			if l.ID == pp+".Box.inner" && len(l.Held) == 1 && l.Held[0] == pp+".Box.mu" {
				sawEdge = true
			}
		}
		for _, b := range ff.Blocks {
			if b.What == "channel send" && len(b.Held) == 2 {
				sawSend = true
			}
		}
		if !sawEdge {
			t.Errorf("missing inner-under-mu lock edge; locks = %+v", ff.Locks)
		}
		if !sawSend {
			t.Errorf("missing channel send with both locks held; blocks = %+v", ff.Blocks)
		}
	})

	t.Run("branch-local lock does not leak", func(t *testing.T) {
		ff := facts.Of(pp + ".Box.Branchy")
		for _, l := range ff.Locks {
			if l.ID == pp+".globalMu" && len(l.Held) != 0 {
				t.Errorf("globalMu acquisition records stale held set %v", l.Held)
			}
		}
		ids := map[string]bool{}
		for _, l := range ff.Locks {
			ids[l.ID] = true
		}
		if !ids[pp+".globalMu"] || !ids[pp+".Box.mu"] {
			t.Errorf("expected both lock IDs, got %v", ids)
		}
	})

	t.Run("clock and sleep", func(t *testing.T) {
		if ff := facts.Of(pp + ".Clocky"); len(ff.Clocks) != 2 {
			t.Errorf("Clocky: want 2 clock reads, got %+v", ff.Clocks)
		}
		ff := facts.Of(pp + ".Sleepy")
		if !ff.BlocksDirectly() || ff.Blocks[0].What != "time.Sleep" {
			t.Errorf("Sleepy: want time.Sleep block, got %+v", ff.Blocks)
		}
	})

	t.Run("closure capture detection", func(t *testing.T) {
		ff := facts.Of(pp + ".Closures")
		if len(ff.Closures) != 2 {
			t.Fatalf("want 2 closures, got %+v", ff.Closures)
		}
		// Source order: the captureless literal first, the capturing second.
		if ff.Closures[0].Captures {
			t.Error("captureless literal flagged as capturing")
		}
		if !ff.Closures[1].Captures {
			t.Error("capturing literal (closes over n) not flagged")
		}
	})

	t.Run("static allocations and field refs", func(t *testing.T) {
		ff := facts.Of(pp + ".Alloc")
		if !ff.Allocates() || ff.EscapeDerived {
			t.Fatalf("Alloc: want static allocation facts, got %+v", ff)
		}
		whats := map[string]bool{}
		for _, a := range ff.Allocs {
			whats[a.What] = true
		}
		for _, want := range []string{"make", "new", "address of composite literal", "map literal"} {
			if !whats[want] {
				t.Errorf("missing static alloc %q in %v", want, whats)
			}
		}
		// Keyed literal names X; unkeyed literal references every field;
		// b.B is a selector reference.
		for _, want := range []string{".Pair.X", ".Pair.Y", ".Box.B"} {
			if !ff.FieldRefs[pp+want] {
				t.Errorf("missing field ref %s%s in %v", pp, want, ff.FieldRefs)
			}
		}
	})

	t.Run("select blocking", func(t *testing.T) {
		ff := facts.Of(pp + ".Selecty")
		if len(ff.Blocks) != 1 || ff.Blocks[0].What != "select without default" {
			t.Errorf("want exactly the no-default select as blocking, got %+v", ff.Blocks)
		}
	})
}

func TestFuncKeyStripsPointerReceiver(t *testing.T) {
	facts := loadFactProbe(t)
	if facts.Of("kstmvet.fixture/factprobe.Box.Nested") == nil {
		t.Error("pointer-receiver method not keyed as Pkg.Type.Name")
	}
}
