package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up to the module root so the loader resolves patterns the
// same way CI does.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

func TestLoadTypeChecksPackage(t *testing.T) {
	prog, err := Load(repoRoot(t), []string{"./internal/rng"})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("got %d packages, want 1", len(prog.Packages))
	}
	pkg := prog.Packages[0]
	if pkg.Path != "kstm/internal/rng" {
		t.Errorf("Path = %q", pkg.Path)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("New") == nil {
		t.Errorf("type information missing: %v", pkg.Types)
	}
	if len(pkg.Files) == 0 {
		t.Errorf("no parsed files")
	}
}

func TestLoadResolvesCrossModuleImports(t *testing.T) {
	// internal/txds imports internal/stm; both must resolve through export
	// data without parsing stm from source twice.
	prog, err := Load(repoRoot(t), []string{"./internal/txds"})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("got %d packages, want 1 (deps must not become targets)", len(prog.Packages))
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load(repoRoot(t), []string{"./does-not-exist/..."}); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}
