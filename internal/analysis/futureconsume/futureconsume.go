// Package futureconsume flags uses of a core.Future after it has been
// consumed. Futures are pooled single-consumer shells (DESIGN.md §3.5): the
// Wait/WaitValue call that returns the task's result recycles the shell into
// the pool, where it is immediately reusable by another Submit — so any
// later method call on the same value touches (at best) a dead shell and (at
// worst) another task's pending result. A Wait that returns the caller's
// context error does NOT consume, which is why the orphaned-task re-wait
// idiom is legal; the analyzer recognizes it by the error-variable guard:
//
//	res, err := fut.Wait(ctx)
//	if err != nil {            // ctx expired — fut NOT consumed
//	    res, err = fut.Wait(ctx2) // legal re-wait, not flagged
//	}
//
// The analysis is intraprocedural and flow-aware along statement order:
// consumes recorded in a block flow into later statements and nested
// blocks, branch-local consumes do not escape their branch, and a consume
// with a context that cannot expire (nil, context.Background, context.TODO)
// inside a loop is flagged as a guaranteed double consume.
package futureconsume

import (
	"go/ast"
	"go/token"
	"go/types"

	"kstm/internal/analysis"
)

// Analyzer is the futureconsume pass.
var Analyzer = &analysis.Analyzer{
	Name: "futureconsume",
	Doc:  "flag uses of a Future after a consuming Wait/WaitValue (the shell is recycled, §3.5)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				w := &walker{pass: pass}
				w.stmts(body.List, consumeState{})
			}
			return true
		})
	}
	return nil
}

// consume records one consuming call: where, by which method, the error
// variable its caller bound (the re-wait guard), and whether the call's
// context makes consumption certain.
type consume struct {
	pos     token.Pos
	method  string
	errVar  *types.Var
	certain bool
}

// consumeState maps future variables to their most recent consume along the
// current path.
type consumeState map[*types.Var]*consume

func (s consumeState) clone() consumeState {
	c := make(consumeState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// dropGuarded removes entries whose error variable is mentioned by cond: the
// code is branching on the Wait's error, which is exactly the legal re-wait
// idiom, so uses inside the guarded branches are not second-guessed.
func (s consumeState) dropGuarded(info *types.Info, cond ast.Expr) {
	for v, c := range s {
		if c.errVar != nil && analysis.Mentions(info, cond, c.errVar) {
			delete(s, v)
		}
	}
}

type walker struct {
	pass *analysis.Pass
}

func (w *walker) stmts(list []ast.Stmt, state consumeState) {
	for _, s := range list {
		w.stmt(s, state)
	}
}

// stmt dispatches one statement, threading state through sequential flow and
// cloning it into branches (branch-local consumes must not leak out: an
// if/else that each consume once is fine).
func (w *walker) stmt(s ast.Stmt, state consumeState) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, state)
	case *ast.BlockStmt:
		w.stmts(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			w.simple(s.Init, state)
		}
		w.checkUses(s.Cond, state, nil, nil)
		branch := state.clone()
		branch.dropGuarded(w.pass.Info, s.Cond)
		w.stmts(s.Body.List, branch.clone())
		if s.Else != nil {
			w.stmt(s.Else, branch.clone())
		}
	case *ast.ForStmt:
		inner := state.clone()
		if s.Init != nil {
			w.simple(s.Init, inner)
		}
		if s.Cond != nil {
			w.checkUses(s.Cond, inner, nil, nil)
		}
		w.stmts(s.Body.List, inner.clone())
		w.loopCarried(s.Pos(), s.Body)
	case *ast.RangeStmt:
		w.checkUses(s.X, state, nil, nil)
		w.stmts(s.Body.List, state.clone())
		w.loopCarried(s.Pos(), s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.simple(s.Init, state)
		}
		if s.Tag != nil {
			w.checkUses(s.Tag, state, nil, nil)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, state.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, state.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, state.clone())
			}
		}
	case *ast.GoStmt, *ast.DeferStmt:
		// Runs later or concurrently — not part of this sequential flow.
	default:
		w.simple(s, state)
	}
}

// simple handles a straight-line statement: check uses against the state,
// apply reassignment kills, then record this statement's own consumes.
func (w *walker) simple(s ast.Stmt, state consumeState) {
	consumes := consumingCalls(w.pass.Info, s)
	kills := killTargets(w.pass.Info, s)
	w.checkUses(s, state, consumes, kills)
	for _, id := range kills {
		if v := analysis.VarOf(w.pass.Info, id); v != nil {
			delete(state, v)
		}
	}
	for _, cc := range consumes {
		state[cc.recvVar] = &consume{
			pos:     cc.call.Pos(),
			method:  cc.method,
			errVar:  errVarOf(w.pass.Info, s, cc.call),
			certain: certainCtx(w.pass.Info, cc.call),
		}
	}
}

// checkUses reports every mention of an already-consumed future within n.
// Receivers of this statement's own consuming calls get the sharper
// "consumed twice" wording; identifiers being overwritten (kill targets) are
// not uses.
func (w *walker) checkUses(n ast.Node, state consumeState, consumes []consumingCall, kills []*ast.Ident) {
	if n == nil || len(state) == 0 {
		return
	}
	killSet := make(map[*ast.Ident]bool, len(kills))
	for _, id := range kills {
		killSet[id] = true
	}
	recvSet := make(map[*ast.Ident]string, len(consumes))
	for _, cc := range consumes {
		recvSet[cc.recvIdent] = cc.method
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // different flow; captured futures are on their own
		}
		id, ok := n.(*ast.Ident)
		if !ok || killSet[id] {
			return true
		}
		v, ok := w.pass.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		prev, consumed := state[v]
		if !consumed {
			return true
		}
		line := w.pass.Fset.Position(prev.pos).Line
		if method, ok := recvSet[id]; ok {
			w.pass.Reportf(id.Pos(),
				"Future %s consumed twice: %s here after %s on line %d already returned its result — the shell is recycled and may belong to another task (§3.5)",
				id.Name, method, prev.method, line)
			return true
		}
		w.pass.Reportf(id.Pos(),
			"Future %s used after being consumed by %s on line %d; the shell is recycled and must not be touched (§3.5)",
			id.Name, prev.method, line)
		return true
	})
}

// loopCarried flags consumes that provably repeat across iterations: the
// future is declared outside the loop, never reassigned in the body, and the
// consuming call's context cannot expire (so the first iteration definitely
// consumed it). Bodies containing break/return/goto are skipped — the loop
// may be a single-shot retry scaffold.
func (w *walker) loopCarried(loopPos token.Pos, body *ast.BlockStmt) {
	if hasEscape(body) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false // nested loops report for themselves
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cc, ok := consumingCall1(w.pass.Info, call)
		if !ok || cc.recvVar.Pos() >= loopPos {
			return true
		}
		if !certainCtx(w.pass.Info, call) || reassignedIn(w.pass.Info, body, cc.recvVar) {
			return true
		}
		w.pass.Reportf(call.Pos(),
			"Future %s is consumed on every iteration of this loop but never reassigned; the second iteration waits on a recycled shell (§3.5)",
			cc.recvIdent.Name)
		return true
	})
}

// hasEscape reports whether the body contains break, goto, or return.
func hasEscape(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		}
		return !found
	})
	return found
}

// reassignedIn reports whether v is assigned anywhere in body.
func reassignedIn(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if analysis.VarOf(info, lhs) == v {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// consumingCall is one Wait/WaitValue call on a plain-identifier receiver.
type consumingCall struct {
	call      *ast.CallExpr
	method    string
	recvIdent *ast.Ident
	recvVar   *types.Var
}

// consumingCall1 matches a single call expression.
func consumingCall1(info *types.Info, call *ast.CallExpr) (consumingCall, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != analysis.CorePath {
		return consumingCall{}, false
	}
	if fn.Name() != "Wait" && fn.Name() != "WaitValue" {
		return consumingCall{}, false
	}
	recv := fn.Signature().Recv()
	if recv == nil || !analysis.IsNamed(recv.Type(), analysis.CorePath, "Future") {
		return consumingCall{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return consumingCall{}, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return consumingCall{}, false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return consumingCall{}, false
	}
	return consumingCall{call: call, method: fn.Name(), recvIdent: id, recvVar: v}, true
}

// consumingCalls collects the consuming calls in one statement (not
// descending into nested function literals).
func consumingCalls(info *types.Info, s ast.Stmt) []consumingCall {
	var out []consumingCall
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if cc, ok := consumingCall1(info, call); ok {
				out = append(out, cc)
			}
		}
		return true
	})
	return out
}

// killTargets returns the plain identifiers a statement assigns over.
func killTargets(info *types.Info, s ast.Stmt) []*ast.Ident {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var out []*ast.Ident
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			out = append(out, id)
		}
	}
	return out
}

// errVarOf returns the variable bound to the consuming call's error result,
// when the statement is `res, err := f.Wait(ctx)` (any assignment token).
func errVarOf(info *types.Info, s ast.Stmt, call *ast.CallExpr) *types.Var {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != call || len(as.Lhs) == 0 {
		return nil
	}
	return analysis.VarOf(info, as.Lhs[len(as.Lhs)-1])
}

// certainCtx reports whether the call's context argument can never expire:
// nil, context.Background(), or context.TODO(). Such a Wait consumes on
// every return.
func certainCtx(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if id, ok := arg.(*ast.Ident); ok {
		return info.Uses[id] == types.Universe.Lookup("nil")
	}
	inner, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.Callee(info, inner)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}
