package futureconsume_test

import (
	"testing"

	"kstm/internal/analysis/analysistest"
	"kstm/internal/analysis/futureconsume"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, futureconsume.Analyzer, "testdata")
}
