// Fixtures for the futureconsume analyzer: the §3.5 settle-then-recycle
// contract. A Wait/WaitValue that returns the task's result consumes the
// Future — the pooled shell is recycled immediately and may already carry
// another task's result — while a ctx.Err() return does not consume, which
// makes the error-guarded re-wait idiom legal.
package fixture

import (
	"context"

	"kstm/internal/core"
)

// doubleWait: the recycled-future double-Wait bug.
func doubleWait(f *core.Future) {
	res, err := f.Wait(nil)
	_, _ = res, err
	res2, err2 := f.Wait(nil) // want `Future f consumed twice`
	_, _ = res2, err2
}

// useAfterConsume: any touch after the consuming call hits a dead shell.
func useAfterConsume(f *core.Future) {
	v, err := f.WaitValue(context.Background())
	_, _ = v, err
	res, ok := f.Poll() // want `Future f used after being consumed by WaitValue`
	_, _ = res, ok
}

// passAfterConsume: handing the dead shell to someone else is a use too.
func passAfterConsume(f *core.Future, sink func(*core.Future)) {
	_, _ = f.Wait(nil)
	sink(f) // want `Future f used after being consumed by Wait`
}

// legalRewait: a ctx-bounded Wait may not have consumed; re-waiting under
// the error guard is the documented orphaned-task idiom.
func legalRewait(ctx context.Context, f *core.Future) error {
	res, err := f.Wait(ctx)
	if err != nil {
		res, err = f.Wait(context.Background())
	}
	_ = res
	return err
}

// branches: one consume per exclusive path is fine.
func branches(cond bool, f *core.Future) {
	if cond {
		_, _ = f.Wait(nil)
	} else {
		_, _ = f.Wait(nil)
	}
}

// reassigned: a fresh shell resets the tracking.
func reassigned(f *core.Future, fresh func() *core.Future) {
	_, _ = f.Wait(nil)
	f = fresh()
	_, _ = f.Wait(nil)
}

// perIteration: one Wait per loop-local future is the normal fan-in.
func perIteration(futs []*core.Future) {
	for _, g := range futs {
		_, _ = g.Wait(nil)
	}
}

// loopConsume: an outer future consumed with an unexpirable context on
// every iteration is a guaranteed double consume.
func loopConsume(futs []*core.Future, f *core.Future) {
	for range futs {
		_, _ = f.Wait(nil) // want `Future f is consumed on every iteration`
	}
}

// pollThenWait: Poll never consumes; observing before the Wait is fine.
func pollThenWait(f *core.Future) {
	if _, ok := f.Poll(); ok {
		return
	}
	<-f.Done()
	_, _ = f.Wait(nil)
}

// suppressed: a justified post-consume touch stays out of the live set.
func suppressed(f *core.Future) {
	_, _ = f.Wait(nil)
	_, _ = f.Poll() //kstmvet:ignore fixture: demonstrating the suppression form on a dead-shell read
}
