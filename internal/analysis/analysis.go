// Package analysis is kstmvet's stdlib-only analyzer driver: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis, sized for this
// repository. It loads type-checked packages through `go list -export -json
// -deps` (export data resolves every import, so only the packages under
// analysis are parsed from source), runs repo-specific analyzers over them,
// and filters the diagnostics through `//kstmvet:ignore <reason>` suppression
// comments.
//
// The analyzers themselves live in subpackages (atomiceffect, txerrcheck,
// futureconsume, padalign); cmd/kstmvet is the CLI front-end and DESIGN.md §8
// documents the contract each analyzer encodes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. Run inspects a single type-checked package
// through its Pass and reports findings via Pass.Reportf; returning an error
// aborts the whole kstmvet run (reserved for internal failures, not
// findings).
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "atomiceffect"
	Doc  string // one-line contract description
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one package: the parsed files (with
// comments), the type-checked package, the program-wide fact table, and the
// reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Sizes    types.Sizes
	Facts    *Facts // program-wide per-function summaries (never nil)

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.ReportLinef(position.Filename, position.Line, position.Column, format, args...)
}

// ReportLinef records a finding at an explicit file position — the form used
// for compiler-derived diagnostics (escape analysis), which carry file/line
// coordinates rather than token.Pos values. Suppression matching is
// line-based, so these findings honor kstmvet:ignore like any other.
func (p *Pass) ReportLinef(file string, line, col int, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     file,
		Line:     line,
		Col:      col,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, located by file:line:col. Suppressed findings
// are kept (they appear in -json output as an auditable inventory) but do not
// fail the run.
type Diagnostic struct {
	Analyzer       string `json:"analyzer"`
	File           string `json:"file"`
	Line           int    `json:"line"`
	Col            int    `json:"col"`
	Message        string `json:"message"`
	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppress_reason,omitempty"`
}

// String renders the go-vet-style human form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Run executes the analyzers over every package of the program and returns
// all diagnostics — suppressed ones marked, the rest live — sorted and
// deduplicated (deterministic output is part of the CLI contract; the
// golden-file test pins it). Facts for the whole program are computed before
// any analyzer runs, so a pass over one package can consult summaries of
// every other. The error return is an analyzer crash, not a finding.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := prog.Facts()
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		ds, err := RunPackage(prog.Fset, prog.Sizes, facts, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	Sort(diags)
	return Dedupe(diags), nil
}

// RunPackage executes the analyzers over one package, applying suppression
// directives found in its files. The fixture test harness calls this
// directly on testdata packages the go tool does not list. facts may be nil
// for analyzers that never consult the fact table.
func RunPackage(fset *token.FileSet, sizes types.Sizes, facts *Facts, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFacts()
	}
	var diags []Diagnostic
	sup := scanSuppressions(fset, pkg.Files)
	sink := func(d Diagnostic) {
		if reason, ok := sup.match(d.File, d.Line); ok {
			d.Suppressed = true
			d.SuppressReason = reason
		}
		diags = append(diags, d)
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Sizes:    sizes,
			Facts:    facts,
			report:   sink,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	// Malformed suppressions are findings in their own right: an ignore
	// without a reason defeats the audit trail the form exists for.
	for _, bad := range sup.malformed {
		diags = append(diags, Diagnostic{
			Analyzer: "kstmvet",
			File:     bad.file,
			Line:     bad.line,
			Col:      bad.col,
			Message:  "kstmvet:ignore requires a reason: //kstmvet:ignore <why this finding is safe>",
		})
	}
	return diags, nil
}

// Sort orders diagnostics by (file, line, analyzer, column, message) — the
// deterministic order the CLI and -json output promise regardless of
// analyzer registration order or map iteration inside a pass.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
}

// Dedupe removes exactly-identical adjacent diagnostics from a sorted slice.
// Duplicates arise when two evaluation paths reach the same site (a lock
// edge seen both intraprocedurally and through a callee summary); reporting
// one is strictly more readable and keeps counts stable.
func Dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Live reports how many diagnostics are not suppressed.
func Live(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if !d.Suppressed {
			n++
		}
	}
	return n
}
