package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

func f() {
	a() //kstmvet:ignore trailing reason
	//kstmvet:ignore preceding reason
	b()
	c() //kstmvet:ignore
	d() //kstmvet:ignoreme not a directive
	e()
}
`

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestSuppressions(t *testing.T) {
	fset, files := parseOne(t, suppressSrc)
	sup := scanSuppressions(fset, files)

	if reason, ok := sup.match("p.go", 4); !ok || reason != "trailing reason" {
		t.Errorf("line 4: got (%q, %v), want trailing reason", reason, ok)
	}
	if reason, ok := sup.match("p.go", 6); !ok || reason != "preceding reason" {
		t.Errorf("line 6: got (%q, %v), want preceding reason", reason, ok)
	}
	if _, ok := sup.match("p.go", 8); ok {
		t.Errorf("line 8: run-on directive must not suppress")
	}
	if _, ok := sup.match("p.go", 9); ok {
		t.Errorf("line 9: nothing suppresses here")
	}
	if len(sup.malformed) != 1 || sup.malformed[0].line != 7 {
		t.Errorf("malformed = %+v, want exactly line 7", sup.malformed)
	}
}

func TestRunPackageMarksSuppressed(t *testing.T) {
	fset, files := parseOne(t, suppressSrc)
	pkg := &Package{Path: "p", Files: files}
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports once per line 4 and 9",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "a" || id.Name == "e") {
						pass.Reportf(call.Pos(), "probe hit %s", id.Name)
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := RunPackage(fset, Sizes(), nil, pkg, []*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	var live, suppressed int
	for _, d := range diags {
		switch {
		case d.Analyzer == "kstmvet" && strings.Contains(d.Message, "requires a reason"):
			// the bare //kstmvet:ignore on line 7
		case d.Suppressed:
			suppressed++
		default:
			live++
		}
	}
	if live != 1 || suppressed != 1 {
		t.Errorf("live=%d suppressed=%d, want 1 and 1: %+v", live, suppressed, diags)
	}
	if got := Live(diags); got != 2 {
		// probe hit e (live) + the malformed-ignore driver finding
		t.Errorf("Live = %d, want 2", got)
	}
}
