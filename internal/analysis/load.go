package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Package is one type-checked target package: the unit analyzers run over.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded view of the packages matched by a set of patterns.
type Program struct {
	Fset     *token.FileSet
	Sizes    types.Sizes
	Packages []*Package

	exports  map[string]string // import path → export-data file, whole graph
	importer types.ImporterFrom

	escapes   *Escapes
	facts     *Facts
	factsOnce sync.Once
}

// SetEscapes attaches compiler escape diagnostics (CollectEscapes) to the
// program. Must be called before the first Facts()/Run call to take effect:
// allocation facts for covered packages then come from the compiler instead
// of the static approximation.
func (prog *Program) SetEscapes(esc *Escapes) { prog.escapes = esc }

// Facts returns the program-wide fact table, computed on first use. go list
// -deps emits packages in dependency order and the loader preserves it, so
// summaries are built bottom-up: by the time a package is summarized, every
// module function it can statically call already has facts.
func (prog *Program) Facts() *Facts {
	prog.factsOnce.Do(func() {
		prog.facts = NewFacts()
		for _, pkg := range prog.Packages {
			prog.facts.AddPackage(prog.Fset, pkg, prog.escapes)
		}
	})
	return prog.facts
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go command and type-checks every matched
// package from source. Imports — including the standard library and other
// packages in this module — are satisfied from compiler export data, so the
// loader needs no third-party machinery and never parses a dependency.
// dir is the working directory for pattern resolution ("" = current).
//
// Test files are not loaded: kstmvet checks the contracts production code
// must honor; _test.go files exercise deliberate edge cases (and the fixture
// harness plants deliberate violations).
func Load(dir string, patterns []string) (*Program, error) {
	prog, targets, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	for _, lp := range targets {
		pkg, err := prog.check(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// listPackages runs `go list -export -json -deps` and splits the graph into
// the export lookup table (everything) and the target list (non-dep
// packages with Go sources).
func listPackages(dir string, patterns []string) (*Program, []listPkg, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	prog := &Program{
		Fset:    token.NewFileSet(),
		Sizes:   Sizes(),
		exports: make(map[string]string),
	}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			prog.exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}
	prog.importer = newExportImporter(prog.Fset, prog.exports)
	return prog, targets, nil
}

// check parses and type-checks one package's files.
func (prog *Program) check(path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tpkg, info, err := prog.TypeCheck(path, files)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// TypeCheck type-checks already-parsed files as one package against the
// program's export-data importer. The fixture test harness uses it directly
// to check testdata packages (which the go tool does not list) against the
// real module dependencies.
func (prog *Program) TypeCheck(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: prog.importer, Sizes: prog.Sizes}
	tpkg, err := conf.Check(path, prog.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return tpkg, info, nil
}

// newExportImporter wraps the standard gc importer with a lookup into the
// export files `go list -export` reported; the gc importer understands the
// build cache's export-data format directly.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the go list -deps graph)", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// Sizes returns the gc memory layout for the host architecture — the layout
// padalign verifies. Falls back to amd64 if the architecture is unknown to
// go/types (the cache-line contract is identical on all 64-bit targets).
func Sizes() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}
