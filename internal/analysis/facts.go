package analysis

// Fact propagation: per-function summaries computed over every loaded
// package, giving analyzers one-level-deep interprocedural power while
// staying stdlib-only and offline.
//
// The go list -deps loader emits packages in dependency order, so by the
// time a package is summarized every module function it can statically call
// has already been summarized — the summaries are therefore available across
// package boundaries (a pass over kstm/server can ask what a kstm/cmd/kstmd
// function touches, because facts for the whole program are computed before
// any analyzer runs). Summaries are intraprocedural on purpose: a consumer
// looking one call level deep sees precise per-body information instead of a
// transitively-smeared approximation that would flag every entry point.
//
// Each summary records, with source positions:
//
//   - heap allocations: from the compiler's -gcflags=-m escape diagnostics
//     when available (see escape.go), else a static approximation (make,
//     new, &T{...}, map/slice literals, append, string concatenation,
//     []byte/string conversions);
//   - blocking operations: channel send/receive, select without default,
//     sync.Cond.Wait, sync.WaitGroup.Wait, time.Sleep, core.Future.Wait —
//     each with the set of locks held at that point;
//   - clock reads: time.Now and time.Since;
//   - lock acquisitions: sync.Mutex/RWMutex Lock/RLock with the locks
//     already held at the acquisition (the lock-order graph's edges);
//   - static calls: every resolvable callee with the locks held at the call
//     site (how lockorder and hotpathalloc look one level deep);
//   - struct field references: every field read, written, or named in a
//     composite literal (how statsfold checks cross-package folds);
//   - closures and go statements (hot-path capture/spawn bans).
//
// Dynamic dispatch (interface method calls, function values) is invisible to
// the call records: a callee that cannot be resolved statically simply has
// no summary, and consumers treat the call as opaque. DESIGN.md §8 states
// this limitation alongside each analyzer's contract.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FuncKey returns the canonical fact-table key for a function or method:
// pkgpath.Name for functions, pkgpath.Recv.Name for methods (pointer
// receivers stripped, so (*Executor).Stats and Executor.Stats share a key).
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := NamedType(sig.Recv().Type()); n != nil {
			return fn.Pkg().Path() + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// HotpathDirective marks a function whose body must satisfy the
// allocation-free contract hotpathalloc enforces.
const HotpathDirective = "//kstmvet:hotpath"

// AllocUse is one heap allocation in a function body. Escape-derived entries
// carry the compiler's own diagnostic and a file position; static entries
// carry a syntactic description and a token.Pos. ColdErrPath marks
// allocations inside a `return fmt.Errorf(...)`/`errors.New` statement:
// error construction happens once on the failure path, and the hot-path
// contract deliberately tolerates it (DESIGN.md §8.5).
type AllocUse struct {
	What        string
	Pos         token.Pos // static entries
	File        string    // escape-derived entries
	Line        int
	Col         int
	ColdErrPath bool
}

// BlockUse is one potentially-blocking operation, with the locks held there.
type BlockUse struct {
	What string
	Pos  token.Pos
	Held []string
}

// ClockUse is one time.Now/time.Since read.
type ClockUse struct {
	What string
	Pos  token.Pos
}

// LockUse is one lock acquisition, with the locks already held before it —
// each (held, acquired) pair is an edge of the lock-order graph.
type LockUse struct {
	ID   string
	Pos  token.Pos
	Held []string
}

// CallUse is one statically-resolved call, with the locks held at the site.
type CallUse struct {
	Callee string
	Pos    token.Pos
	Held   []string
}

// Closure is one function literal; Captures reports whether it closes over
// variables of the enclosing function (a heap allocation per evaluation).
type Closure struct {
	Pos      token.Pos
	Captures bool
}

// FuncFacts is one function's summary.
type FuncFacts struct {
	Key           string
	Hotpath       bool // declaration carries //kstmvet:hotpath
	Allocs        []AllocUse
	EscapeDerived bool // Allocs came from compiler escape diagnostics
	Blocks        []BlockUse
	Clocks        []ClockUse
	Locks         []LockUse
	Calls         []CallUse
	Closures      []Closure
	Gos           []token.Pos
	FieldRefs     map[string]bool // "pkgpath.Type.Field"
}

// Allocates reports whether the function's body heap-allocates.
func (ff *FuncFacts) Allocates() bool { return ff != nil && len(ff.Allocs) > 0 }

// BlocksDirectly reports whether the body contains a blocking operation.
func (ff *FuncFacts) BlocksDirectly() bool { return ff != nil && len(ff.Blocks) > 0 }

// ReadsClock reports whether the body reads the monotonic clock.
func (ff *FuncFacts) ReadsClock() bool { return ff != nil && len(ff.Clocks) > 0 }

// Facts is the program-wide fact table: one summary per function, keyed by
// FuncKey.
type Facts struct {
	Fns map[string]*FuncFacts
}

// NewFacts returns an empty table.
func NewFacts() *Facts { return &Facts{Fns: make(map[string]*FuncFacts)} }

// Of returns the summary for key, or nil if the function was not summarized
// (not loaded from source — stdlib, or reached only dynamically).
func (f *Facts) Of(key string) *FuncFacts { return f.Fns[key] }

// AddPackage summarizes every function declaration in pkg and installs the
// summaries. When esc carries escape diagnostics for the package, allocation
// facts come from the compiler; otherwise from the static approximation.
func (f *Facts) AddPackage(fset *token.FileSet, pkg *Package, esc *Escapes) {
	useEscape := esc != nil && esc.Covers(pkg.Path)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			key := FuncKey(fn)
			if key == "" {
				continue
			}
			ff := summarize(pkg.Info, fd, key, !useEscape)
			ff.Hotpath = HasDirective(fd.Doc, HotpathDirective)
			if useEscape {
				ff.EscapeDerived = true
				ff.Allocs = escapeAllocs(fset, fd, esc)
			}
			markColdErrPaths(fset, pkg.Info, fd, ff.Allocs)
			f.Fns[key] = ff
		}
	}
}

// escapeAllocs selects the escape diagnostics that fall inside fd's body.
func escapeAllocs(fset *token.FileSet, fd *ast.FuncDecl, esc *Escapes) []AllocUse {
	start := fset.Position(fd.Pos())
	end := fset.Position(fd.End())
	var out []AllocUse
	for _, d := range esc.File(start.Filename) {
		if d.Line >= start.Line && d.Line <= end.Line {
			out = append(out, AllocUse{What: d.Msg, File: start.Filename, Line: d.Line, Col: d.Col})
		}
	}
	return out
}

// heldSet tracks the locks held at a program point.
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

func (h heldSet) snapshot() []string {
	if len(h) == 0 {
		return nil
	}
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// factWalker performs the statement-ordered walk of one function body. The
// flow model matches futureconsume's: statements in order, branch bodies
// analyzed with a copy of the current held set (a branch-local unlock does
// not release the lock for the code after the branch — conservative in the
// direction that finds misordered acquisitions), defer Unlock keeps the lock
// held to function end, closure bodies walked with an empty held set (they
// run later, under whatever locks their caller holds).
type factWalker struct {
	info        *types.Info
	ff          *FuncFacts
	static      bool // record static allocation approximations
	noChanBlock bool // inside a select comm clause: the select governs blocking
}

// summarize walks one function declaration.
func summarize(info *types.Info, fd *ast.FuncDecl, key string, static bool) *FuncFacts {
	ff := &FuncFacts{Key: key, FieldRefs: make(map[string]bool)}
	w := &factWalker{info: info, ff: ff, static: static}
	w.walkStmt(fd.Body, make(heldSet))
	return ff
}

func (w *factWalker) walkStmt(s ast.Stmt, held heldSet) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s2 := range st.List {
			w.walkStmt(s2, held)
		}
	case *ast.ExprStmt:
		w.walkExpr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.walkExpr(e, held)
		}
		for _, e := range st.Lhs {
			w.walkExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.walkExpr(st.X, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.walkExpr(e, held)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the remainder of the
		// function (which is exactly how the held set already models it —
		// simply do not release). Other deferred calls are walked normally;
		// a deferred closure runs at exit under an unknowable held set.
		if id := w.lockCallID(st.Call); id != "" && isReleaseName(calleeName(w.info, st.Call)) {
			for _, a := range st.Call.Args {
				w.walkExpr(a, held)
			}
			return
		}
		w.walkExpr(st.Call, held)
	case *ast.GoStmt:
		w.ff.Gos = append(w.ff.Gos, st.Pos())
		w.walkExpr(st.Call, held)
	case *ast.SendStmt:
		if !w.noChanBlock {
			w.ff.Blocks = append(w.ff.Blocks, BlockUse{What: "channel send", Pos: st.Pos(), Held: held.snapshot()})
		}
		w.walkExpr(st.Chan, held)
		w.walkExpr(st.Value, held)
	case *ast.IfStmt:
		w.walkStmt(st.Init, held)
		w.walkExpr(st.Cond, held)
		w.walkStmt(st.Body, held.clone())
		w.walkStmt(st.Else, held.clone())
	case *ast.ForStmt:
		w.walkStmt(st.Init, held)
		w.walkExpr(st.Cond, held)
		body := held.clone()
		w.walkStmt(st.Body, body)
		w.walkStmt(st.Post, body)
	case *ast.RangeStmt:
		w.walkExpr(st.X, held)
		if t := w.typ(st.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok && !w.noChanBlock {
				w.ff.Blocks = append(w.ff.Blocks, BlockUse{What: "range over channel", Pos: st.Pos(), Held: held.snapshot()})
			}
		}
		w.walkStmt(st.Body, held.clone())
	case *ast.SwitchStmt:
		w.walkStmt(st.Init, held)
		w.walkExpr(st.Tag, held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			branch := held.clone()
			for _, e := range cc.List {
				w.walkExpr(e, branch)
			}
			for _, s2 := range cc.Body {
				w.walkStmt(s2, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init, held)
		w.walkStmt(st.Assign, held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			branch := held.clone()
			for _, s2 := range cc.Body {
				w.walkStmt(s2, branch)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.ff.Blocks = append(w.ff.Blocks, BlockUse{What: "select without default", Pos: st.Pos(), Held: held.snapshot()})
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			branch := held.clone()
			// The comm clause's channel operation is governed by the select
			// itself (non-blocking when a default exists), so the walk must
			// not double-count it as an independent blocking site.
			w.noChanBlock = true
			w.walkStmt(cc.Comm, branch)
			w.noChanBlock = false
			for _, s2 := range cc.Body {
				w.walkStmt(s2, branch)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	}
}

func (w *factWalker) walkExpr(e ast.Expr, held heldSet) {
	switch ex := e.(type) {
	case nil:
	case *ast.ParenExpr:
		w.walkExpr(ex.X, held)
	case *ast.CallExpr:
		w.walkCall(ex, held)
	case *ast.FuncLit:
		w.ff.Closures = append(w.ff.Closures, Closure{Pos: ex.Pos(), Captures: capturesOuter(w.info, ex)})
		w.walkStmt(ex.Body, make(heldSet))
	case *ast.UnaryExpr:
		if ex.Op == token.ARROW && !w.noChanBlock {
			w.ff.Blocks = append(w.ff.Blocks, BlockUse{What: "channel receive", Pos: ex.Pos(), Held: held.snapshot()})
		}
		if ex.Op == token.AND && w.static {
			if _, ok := ex.X.(*ast.CompositeLit); ok {
				w.staticAlloc("address of composite literal", ex.Pos())
			}
		}
		w.walkExpr(ex.X, held)
	case *ast.BinaryExpr:
		if ex.Op == token.ADD && w.static {
			if t := w.typ(ex.X); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.staticAlloc("string concatenation", ex.Pos())
				}
			}
		}
		w.walkExpr(ex.X, held)
		w.walkExpr(ex.Y, held)
	case *ast.CompositeLit:
		w.fieldRefsOfLit(ex)
		if w.static {
			if t := w.typ(ex); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					w.staticAlloc("map literal", ex.Pos())
				case *types.Slice:
					w.staticAlloc("slice literal", ex.Pos())
				}
			}
		}
		for _, elt := range ex.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				w.walkExpr(kv.Value, held)
				continue
			}
			w.walkExpr(elt, held)
		}
	case *ast.SelectorExpr:
		if sel := w.info.Selections[ex]; sel != nil && sel.Kind() == types.FieldVal {
			w.addFieldRef(sel.Recv(), sel.Obj().Name())
		}
		w.walkExpr(ex.X, held)
	case *ast.IndexExpr:
		w.walkExpr(ex.X, held)
		w.walkExpr(ex.Index, held)
	case *ast.IndexListExpr:
		w.walkExpr(ex.X, held)
	case *ast.SliceExpr:
		w.walkExpr(ex.X, held)
		w.walkExpr(ex.Low, held)
		w.walkExpr(ex.High, held)
		w.walkExpr(ex.Max, held)
	case *ast.StarExpr:
		w.walkExpr(ex.X, held)
	case *ast.TypeAssertExpr:
		w.walkExpr(ex.X, held)
	case *ast.KeyValueExpr:
		w.walkExpr(ex.Value, held)
	}
}

// walkCall handles one call expression: lock transitions, blocking and clock
// tables, static-callee records, builtin/conversion allocations, and boxing.
func (w *factWalker) walkCall(call *ast.CallExpr, held heldSet) {
	// Builtins and conversions first: they have no *types.Func callee.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			if w.static {
				switch b.Name() {
				case "make":
					w.staticAlloc("make", call.Pos())
				case "new":
					w.staticAlloc("new", call.Pos())
				case "append":
					w.staticAlloc("append", call.Pos())
				}
			}
			for _, a := range call.Args {
				w.walkExpr(a, held)
			}
			return
		}
	}
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion. []byte(s) / string(b) copy into fresh storage; a
		// conversion of a non-pointer concrete value to an interface boxes.
		if w.static {
			dst := tv.Type
			src := w.typ(call.Args[0])
			if isByteStringConv(dst, src) {
				w.staticAlloc("[]byte/string conversion", call.Pos())
			}
			if types.IsInterface(dst.Underlying()) && src != nil && !types.IsInterface(src.Underlying()) {
				if _, isPtr := src.Underlying().(*types.Pointer); !isPtr {
					w.staticAlloc("boxes "+src.String()+" into interface", call.Pos())
				}
			}
		}
		for _, a := range call.Args {
			w.walkExpr(a, held)
		}
		return
	}

	fn := Callee(w.info, call)
	if fn != nil {
		key := FuncKey(fn)
		if id := w.lockCallID(call); id != "" {
			name := fn.Name()
			switch {
			case name == "Lock" || name == "RLock":
				w.ff.Locks = append(w.ff.Locks, LockUse{ID: id, Pos: call.Pos(), Held: held.snapshot()})
				held[id] = true
			case isReleaseName(name):
				delete(held, id)
			}
		} else if what, ok := blockingCalls[key]; ok {
			w.ff.Blocks = append(w.ff.Blocks, BlockUse{What: what, Pos: call.Pos(), Held: held.snapshot()})
		} else if key == "time.Now" || key == "time.Since" {
			w.ff.Clocks = append(w.ff.Clocks, ClockUse{What: key, Pos: call.Pos()})
		}
		w.ff.Calls = append(w.ff.Calls, CallUse{Callee: key, Pos: call.Pos(), Held: held.snapshot()})
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X, held)
	}
	for _, a := range call.Args {
		w.walkExpr(a, held)
	}
}

// blockingCalls names functions that block by contract: the deny-list the
// summaries consult directly (one level deeper than syntax can see).
var blockingCalls = map[string]string{
	"time.Sleep":                   "time.Sleep",
	"sync.Cond.Wait":               "sync.Cond.Wait",
	"sync.WaitGroup.Wait":          "sync.WaitGroup.Wait",
	CorePath + ".Future.Wait":      "Future.Wait",
	CorePath + ".Future.WaitValue": "Future.WaitValue",
}

// lockCallID reports the lock identity a call acquires or releases, or ""
// when the call is not a sync.Mutex/RWMutex method. Identities name the
// declaration site, not the instance: a struct field lock is
// "pkgpath.Owner.field", a package-level lock "pkgpath.name", a
// function-local lock "funckey.name" — the granularity at which an
// acquisition ORDER is a meaningful global contract.
func (w *factWalker) lockCallID(call *ast.CallExpr) string {
	fn := Callee(w.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return ""
	}
	recv := NamedType(recvType(fn))
	if recv == nil {
		return ""
	}
	switch recv.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return w.lockID(sel.X)
}

// lockID names the lock an expression denotes; see lockCallID.
func (w *factWalker) lockID(x ast.Expr) string {
	x = ast.Unparen(x)
	switch v := x.(type) {
	case *ast.SelectorExpr:
		if sel := w.info.Selections[v]; sel != nil && sel.Kind() == types.FieldVal {
			if owner := NamedType(sel.Recv()); owner != nil && owner.Obj().Pkg() != nil {
				return owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + sel.Obj().Name()
			}
		}
		if v2, ok := w.info.Uses[v.Sel].(*types.Var); ok && v2.Pkg() != nil {
			return v2.Pkg().Path() + "." + v2.Name()
		}
	case *ast.Ident:
		if v2 := VarOf(w.info, v); v2 != nil && v2.Pkg() != nil {
			if v2.Parent() == v2.Pkg().Scope() {
				return v2.Pkg().Path() + "." + v2.Name()
			}
			return w.ff.Key + "." + v2.Name()
		}
	case *ast.IndexExpr:
		// locks[i] — conflate all elements: ordering contracts are stated
		// per declaration, and a same-slice nested acquisition shows up as a
		// (skipped) self-edge rather than a false cycle.
		if t := w.typ(v); t != nil {
			if n := NamedType(t); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "[]"
			}
		}
		return w.lockID(v.X)
	}
	return ""
}

func (w *factWalker) typ(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := w.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *factWalker) staticAlloc(what string, pos token.Pos) {
	w.ff.Allocs = append(w.ff.Allocs, AllocUse{What: what, Pos: pos})
}

// fieldRefsOfLit records the fields a struct composite literal names: keyed
// elements reference their keys; an unkeyed literal positionally references
// every field (which is exactly why statsfold accepts it as a full fold).
func (w *factWalker) fieldRefsOfLit(lit *ast.CompositeLit) {
	t := w.typ(lit)
	n := NamedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	keyed := false
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			keyed = true
			if id, ok := kv.Key.(*ast.Ident); ok {
				w.addFieldRef(t, id.Name)
			}
		}
	}
	if !keyed && len(lit.Elts) > 0 {
		for i := 0; i < st.NumFields(); i++ {
			w.addFieldRef(t, st.Field(i).Name())
		}
	}
}

func (w *factWalker) addFieldRef(owner types.Type, field string) {
	n := NamedType(owner)
	if n == nil || n.Obj().Pkg() == nil {
		return
	}
	w.ff.FieldRefs[n.Obj().Pkg().Path()+"."+n.Obj().Name()+"."+field] = true
}

// FieldID is the fact-table key for a struct field, matching FieldRefs.
func FieldID(pkg *types.Package, typeName, field string) string {
	return pkg.Path() + "." + typeName + "." + field
}

// recvType returns fn's receiver type, or nil for plain functions.
func recvType(fn *types.Func) types.Type {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return sig.Recv().Type()
	}
	return nil
}

func isReleaseName(name string) bool { return name == "Unlock" || name == "RUnlock" }

// calleeName is the bare method/function name of a call, or "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := Callee(info, call); fn != nil {
		return fn.Name()
	}
	return ""
}

// isByteStringConv reports []byte(string) and string([]byte) conversions.
func isByteStringConv(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return (isStr(dst) && isBytes(src)) || (isBytes(dst) && isStr(src))
}

// HasDirective reports whether a comment group contains the directive as a
// standalone line comment (optionally followed by arguments).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || (len(c.Text) > len(directive) &&
			c.Text[:len(directive)] == directive && (c.Text[len(directive)] == ' ' || c.Text[len(directive)] == '\t')) {
			return true
		}
	}
	return false
}

// markColdErrPaths flags allocations positioned inside a return statement
// that constructs an error (fmt.Errorf, errors.New): the once-per-failure
// cold path the hot-path contract tolerates.
func markColdErrPaths(fset *token.FileSet, info *types.Info, fd *ast.FuncDecl, allocs []AllocUse) {
	if len(allocs) == 0 {
		return
	}
	var errReturns []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		inErr := false
		ast.Inspect(ret, func(n2 ast.Node) bool {
			if inErr {
				return false
			}
			if call, ok := n2.(*ast.CallExpr); ok {
				switch FuncKey(Callee(info, call)) {
				case "fmt.Errorf", "errors.New", "errors.Join":
					inErr = true
				}
			}
			return true
		})
		if inErr {
			errReturns = append(errReturns, ret)
		}
		return true
	})
	if len(errReturns) == 0 {
		return
	}
	tf := fset.File(fd.Pos())
	for i := range allocs {
		pos := allocs[i].Pos
		if !pos.IsValid() {
			// Escape-derived entry: rebuild a Pos from the file coordinates.
			if tf == nil || allocs[i].Line < 1 || allocs[i].Line > tf.LineCount() {
				continue
			}
			pos = tf.LineStart(allocs[i].Line) + token.Pos(allocs[i].Col-1)
		}
		for _, ret := range errReturns {
			if ret.Pos() <= pos && pos < ret.End() {
				allocs[i].ColdErrPath = true
				break
			}
		}
	}
}

// capturesOuter reports whether a function literal references variables
// declared outside itself (other than package-level ones) — the captures
// that force a closure allocation per evaluation.
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	return captures
}
