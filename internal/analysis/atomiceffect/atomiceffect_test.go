package atomiceffect_test

import (
	"strings"
	"testing"

	"kstm/internal/analysis/analysistest"
	"kstm/internal/analysis/atomiceffect"
)

func TestFixtures(t *testing.T) {
	diags := analysistest.Run(t, atomiceffect.Analyzer, "testdata")
	// The suppressed attempt-counter finding must still appear in the
	// inventory, tagged with its reason.
	found := false
	for _, d := range diags {
		if d.Suppressed && strings.Contains(d.SuppressReason, "counting attempts") {
			found = true
		}
	}
	if !found {
		t.Errorf("suppressed attempt-counter finding missing from inventory: %+v", diags)
	}
}
