// Package atomiceffect flags side effects inside Atomic transaction
// closures. The STM's optimistic retry loop re-executes an aborted closure
// from the top, so anything the closure does outside transactional state
// happens once per ATTEMPT, not once per transaction: accumulating writes to
// captured variables double-count, channel operations repeat, and I/O or
// time reads observe each attempt. The safe idioms are (a) keep all effects
// on Box/Object state the transaction manages, (b) reinitialize any captured
// accumulator at closure entry so every attempt starts from the same value
// (the `sum = 0` idiom in cmd/stmcheck), or (c) move the effect after the
// Atomic call.
package atomiceffect

import (
	"go/ast"
	"go/token"
	"go/types"

	"kstm/internal/analysis"
)

// Analyzer is the atomiceffect pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomiceffect",
	Doc:  "flag side effects inside Atomic closures that aborted transactions would repeat",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, lit := range analysis.AtomicFuncLits(pass.Info, f) {
			checkClosure(pass, lit)
		}
	}
	return nil
}

func checkClosure(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				root := rootVar(pass.Info, lhs)
				if root == nil || !captured(root, lit) {
					continue
				}
				selfRef := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
				if !selfRef && i < len(n.Rhs) {
					// Position-matched RHS for 1:1 assigns; for the
					// call-tuple form (1 RHS, many LHS) check the lone RHS.
					rhs := n.Rhs[min(i, len(n.Rhs)-1)]
					selfRef = analysis.Mentions(pass.Info, rhs, root)
				}
				if selfRef && !reinitializedAtEntry(pass.Info, lit, root) {
					pass.Reportf(lhs.Pos(),
						"captured variable %s accumulates inside an Atomic closure; an aborted transaction re-runs the closure and repeats the write — reinitialize %s at closure entry or declare it inside",
						root.Name(), root.Name())
				}
			}
		case *ast.IncDecStmt:
			root := rootVar(pass.Info, n.X)
			if root != nil && captured(root, lit) && !reinitializedAtEntry(pass.Info, lit, root) {
				pass.Reportf(n.Pos(),
					"captured variable %s accumulates inside an Atomic closure; an aborted transaction re-runs the closure and repeats the %s — reinitialize %s at closure entry or declare it inside",
					root.Name(), n.Tok, root.Name())
			}
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "channel send inside an Atomic closure; an aborted transaction re-runs the closure and sends again — move it after the Atomic call")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive inside an Atomic closure; an aborted transaction re-runs the closure and receives again — move it after the Atomic call")
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine started inside an Atomic closure; an aborted transaction re-runs the closure and spawns it again")
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

// checkCall flags calls with effects the transaction machinery cannot undo:
// builtin close, and a deny-list of I/O, logging, time, and randomness.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
			pass.Reportf(call.Pos(), "close of a channel inside an Atomic closure; an aborted transaction re-runs the closure and closes it twice (panic)")
			return
		}
	}
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if why := impure(fn); why != "" {
		pass.Reportf(call.Pos(),
			"call to %s.%s inside an Atomic closure %s; an aborted transaction re-runs the closure — move it out of the transaction",
			fn.Pkg().Name(), fn.Name(), why)
	}
}

// impurePkgs are packages whose functions AND methods do I/O (or otherwise
// touch the world): any call into them from a retryable closure repeats on
// abort.
var impurePkgs = map[string]string{
	"os":           "performs I/O",
	"net":          "performs network I/O",
	"net/http":     "performs network I/O",
	"log":          "writes a log line per attempt",
	"log/slog":     "writes a log line per attempt",
	"bufio":        "performs I/O",
	"io":           "performs I/O",
	"io/fs":        "performs I/O",
	"syscall":      "performs a system call",
	"math/rand":    "draws from shared PRNG state, so each attempt sees different values",
	"math/rand/v2": "draws from shared PRNG state, so each attempt sees different values",
}

// splitphaseMutators are the split-phase accumulator and detector methods
// that mutate per-worker state outside any transaction: an aborted closure
// re-runs and re-applies the delta (Apply, Sample) or re-drains state that
// is already gone (Take, Fold, Restore). The merge protocol calls them
// strictly OUTSIDE transactions — accumulate first, then install the taken
// aggregate transactionally (txds.Counters.MergeAgg). Pure helpers like
// MergeTop are package functions, not methods, and stay legal inside
// closures (they operate on the transaction's cloned state).
var splitphaseMutators = map[string]bool{
	"Apply": true, "Take": true, "Restore": true, // Accum
	"Sample": true, "Fold": true, // Detector
}

// impureTimeFuncs are the time functions that read the clock or arm timers;
// pure constructors (time.Date, time.ParseDuration) are allowed.
var impureTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
}

// impureFmtFuncs are the fmt functions that write to or read from streams;
// Sprintf/Errorf and friends are pure.
var impureFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Scan": true, "Scanf": true, "Scanln": true,
	"Fscan": true, "Fscanf": true, "Fscanln": true,
}

func impure(fn *types.Func) string {
	switch path := fn.Pkg().Path(); path {
	case "time":
		if fn.Signature().Recv() == nil && impureTimeFuncs[fn.Name()] {
			return "reads the clock (or arms a timer) once per attempt"
		}
	case "fmt":
		if fn.Signature().Recv() == nil && impureFmtFuncs[fn.Name()] {
			return "performs I/O"
		}
	case "kstm/internal/splitphase":
		if fn.Signature().Recv() != nil && splitphaseMutators[fn.Name()] {
			return "mutates per-worker split-phase state the STM cannot roll back, so each attempt re-applies it"
		}
	default:
		if why, ok := impurePkgs[path]; ok {
			return why
		}
	}
	return ""
}

// rootVar resolves the base variable of an lvalue: the x in x, x.f, x[i],
// *x, and combinations thereof. Returns nil for non-variable roots (package
// selectors, function results, blank).
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			return analysis.VarOf(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// captured reports whether the variable is declared outside the closure.
func captured(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// reinitializedAtEntry reports whether the first top-level statement of the
// closure body that mentions v resets it to an attempt-invariant value, so
// every attempt starts from the same state. Three idioms qualify:
//
//	sum = 0            // stmcheck: plain assignment, RHS not derived from v
//	out = out[:mark]   // txds: truncate to a snapshot taken before Atomic
//	for i := range out { out[i] = out[i][:marks[i]] }   // batch truncation
//
// The truncation forms are attempt-invariant as long as the bounds don't
// depend on v: re-running rewinds the length and the appends overwrite the
// same backing slots.
func reinitializedAtEntry(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	for _, stmt := range lit.Body.List {
		if !analysis.Mentions(info, stmt, v) {
			continue
		}
		return resetsToEntryState(info, stmt, v)
	}
	return false
}

// resetsToEntryState reports whether stmt, as the first statement touching v,
// restores v to the state it held when the Atomic call began.
func resetsToEntryState(info *types.Info, stmt ast.Stmt, v *types.Var) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if s.Tok != token.ASSIGN {
			return false
		}
		for _, rhs := range s.Rhs {
			if analysis.Mentions(info, rhs, v) && !isTruncation(info, rhs, v) {
				return false
			}
		}
		for _, lhs := range s.Lhs {
			if rootVar(info, lhs) == v {
				return true
			}
		}
		return false
	case *ast.RangeStmt:
		// The per-element reset loop: every body statement touching v must
		// itself be a reset, and at least one must assign through v.
		hit := false
		for _, inner := range s.Body.List {
			if !analysis.Mentions(info, inner, v) {
				continue
			}
			if !resetsToEntryState(info, inner, v) {
				return false
			}
			hit = true
		}
		return hit
	}
	return false
}

// isTruncation matches slice expressions rooted at v (v[:mark] or
// v[i][:marks[i]]) whose bounds do not depend on v.
func isTruncation(info *types.Info, rhs ast.Expr, v *types.Var) bool {
	sl, ok := ast.Unparen(rhs).(*ast.SliceExpr)
	if !ok || rootVar(info, sl.X) != v {
		return false
	}
	for _, bound := range []ast.Expr{sl.Low, sl.High, sl.Max} {
		if bound != nil && analysis.Mentions(info, bound, v) {
			return false
		}
	}
	return true
}
