// Fixtures for the atomiceffect analyzer: side effects inside Atomic
// closures. Lines marked `// want` plant deliberate contract violations;
// unmarked transactional code shows the accepted idioms.
package fixture

import (
	"fmt"
	"os"
	"time"

	"kstm/internal/splitphase"
	"kstm/internal/stm"
)

// accumulate: the classic bug — a captured accumulator without the
// reinitialize-at-entry idiom double-counts when an abort re-runs the
// closure.
func accumulate(th *stm.Thread, box stm.Box[int]) (int, error) {
	sum := 0
	err := th.Atomic(func(tx *stm.Tx) error {
		v, err := box.Read(tx)
		if err != nil {
			return err
		}
		sum += *v // want `captured variable sum accumulates inside an Atomic closure`
		return nil
	})
	return sum, err
}

// reinitialized: the stmcheck idiom — resetting the accumulator as the first
// touch makes every attempt start from the same value.
func reinitialized(th *stm.Thread, boxes []stm.Box[int]) (int, error) {
	sum := 0
	err := th.Atomic(func(tx *stm.Tx) error {
		sum = 0
		for i := range boxes {
			v, err := boxes[i].Read(tx)
			if err != nil {
				return err
			}
			sum += *v
		}
		return nil
	})
	return sum, err
}

// flagAssign: a plain idempotent write to a captured flag is fine — re-runs
// converge to the same value.
func flagAssign(th *stm.Thread, box stm.Box[int]) (bool, error) {
	var present bool
	err := th.Atomic(func(tx *stm.Tx) error {
		present = false
		v, err := box.Read(tx)
		if err != nil {
			return err
		}
		present = *v != 0
		return nil
	})
	return present, err
}

// truncated: the txds snapshot-collection idiom — rewinding the slice to an
// attempt-invariant mark before appending is abort-safe.
func truncated(th *stm.Thread, boxes []stm.Box[int]) ([]int, error) {
	var out []int
	mark := len(out)
	err := th.Atomic(func(tx *stm.Tx) error {
		out = out[:mark]
		for i := range boxes {
			v, err := boxes[i].Read(tx)
			if err != nil {
				return err
			}
			out = append(out, *v)
		}
		return nil
	})
	return out, err
}

// truncatedBatch: the per-element form from HashTable.ExtractKeyRanges — a
// range loop rewinding each sub-slice to its pre-attempt mark.
func truncatedBatch(th *stm.Thread, boxes []stm.Box[int]) ([][]int, error) {
	out := make([][]int, 2)
	marks := make([]int, len(out))
	for i := range out {
		marks[i] = len(out[i])
	}
	err := th.Atomic(func(tx *stm.Tx) error {
		for i := range out {
			out[i] = out[i][:marks[i]]
		}
		for i := range boxes {
			v, err := boxes[i].Read(tx)
			if err != nil {
				return err
			}
			out[*v%2] = append(out[*v%2], *v)
		}
		return nil
	})
	return out, err
}

// truncatedSelfBound: bounds derived from the slice itself are NOT
// attempt-invariant — this "reset" keeps whatever the failed attempt left.
func truncatedSelfBound(th *stm.Thread, box stm.Box[int]) ([]int, error) {
	var out []int
	err := th.Atomic(func(tx *stm.Tx) error {
		out = out[:len(out)] // want `captured variable out accumulates inside an Atomic closure`
		v, err := box.Read(tx)
		if err != nil {
			return err
		}
		out = append(out, *v) // want `captured variable out accumulates inside an Atomic closure`
		return nil
	})
	return out, err
}

// incDec: ++/-- on captured state accumulates too.
func incDec(th *stm.Thread, box stm.Box[int]) error {
	retries := 0
	return th.Atomic(func(tx *stm.Tx) error {
		retries++ // want `captured variable retries accumulates inside an Atomic closure`
		v, err := box.Write(tx)
		if err != nil {
			return err
		}
		*v++ // pointer target comes from the transaction; abort discards it
		return nil
	})
}

// appendSelf: self-referential append grows once per attempt.
func appendSelf(th *stm.Thread, box stm.Box[int]) ([]int, error) {
	var seen []int
	err := th.Atomic(func(tx *stm.Tx) error {
		v, err := box.Read(tx)
		if err != nil {
			return err
		}
		seen = append(seen, *v) // want `captured variable seen accumulates inside an Atomic closure`
		return nil
	})
	return seen, err
}

// channels: every channel operation repeats per attempt.
func channels(th *stm.Thread, ch chan int, done chan struct{}) error {
	return th.Atomic(func(tx *stm.Tx) error {
		ch <- 1     // want `channel send inside an Atomic closure`
		<-ch        // want `channel receive inside an Atomic closure`
		close(done) // want `close of a channel inside an Atomic closure`
		return nil
	})
}

// spawn: goroutines fork once per attempt.
func spawn(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		go func() {}() // want `goroutine started inside an Atomic closure`
		return nil
	})
}

// impureCalls: clock reads, stdio, and process I/O repeat per attempt;
// pure formatting does not.
func impureCalls(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		t := time.Now()        // want `call to time.Now inside an Atomic closure reads the clock`
		fmt.Println("attempt") // want `call to fmt.Println inside an Atomic closure performs I/O`
		_ = os.Getenv("HOME")  // want `call to os.Getenv inside an Atomic closure performs I/O`
		_ = fmt.Sprintf("%v", t)
		_ = time.Duration(3).String()
		return nil
	})
}

// splitAccum: the split-phase accumulator and detector mutate per-worker
// state the STM cannot roll back — every mutating method call inside a
// closure re-applies on abort. The protocol is accumulate OUTSIDE the
// transaction, then install the taken aggregate transactionally.
func splitAccum(th *stm.Thread, acc *splitphase.Accum, det *splitphase.Detector) error {
	return th.Atomic(func(tx *stm.Tx) error {
		acc.Apply(0, splitphase.KindAdd, 1) // want `call to splitphase.Apply inside an Atomic closure mutates per-worker split-phase state`
		det.Sample(0, 42)                   // want `call to splitphase.Sample inside an Atomic closure mutates per-worker split-phase state`
		agg, _ := acc.Take()                // want `call to splitphase.Take inside an Atomic closure mutates per-worker split-phase state`
		acc.Restore(agg)                    // want `call to splitphase.Restore inside an Atomic closure mutates per-worker split-phase state`
		_, _, _ = det.Fold(1)               // want `call to splitphase.Fold inside an Atomic closure mutates per-worker split-phase state`
		return nil
	})
}

// splitMergeTop: the pure top-K helper is legal inside a closure — it
// returns a new bounded slice over the transaction's cloned state, exactly
// how txds.Counters.MergeAgg installs a taken aggregate.
func splitMergeTop(th *stm.Thread, box stm.Box[[]uint32], agg splitphase.Agg) error {
	return th.Atomic(func(tx *stm.Tx) error {
		top, err := box.Write(tx)
		if err != nil {
			return err
		}
		for _, v := range agg.Top {
			*top = splitphase.MergeTop(*top, v)
		}
		return nil
	})
}

// suppressed: kstmvet:ignore keeps a justified effect out of the live set.
func suppressed(th *stm.Thread) error {
	attempts := 0
	return th.Atomic(func(tx *stm.Tx) error {
		attempts++ //kstmvet:ignore fixture: counting attempts across retries is the point of this metric
		_ = attempts
		return nil
	})
}
