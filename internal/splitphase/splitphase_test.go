package splitphase

import (
	"sort"
	"sync"
	"testing"

	"kstm/internal/rng"
)

func TestAccumTakeMergesAllKinds(t *testing.T) {
	a := NewAccum(4)
	a.Apply(0, KindAdd, uint32(int32(5)))
	negTwo := int32(-2)
	a.Apply(1, KindAdd, uint32(negTwo))
	a.Apply(2, KindMax, 7)
	a.Apply(3, KindMax, 40)
	a.Apply(0, KindMin, 9)
	a.Apply(1, KindMin, 3)
	a.Apply(2, KindTopK, 10)
	a.Apply(3, KindTopK, 30)
	a.Apply(3, KindTopK, 20)

	agg, ok := a.Take()
	if !ok {
		t.Fatal("Take reported empty aggregate")
	}
	if agg.Add != 3 {
		t.Errorf("Add = %d, want 3", agg.Add)
	}
	if !agg.HasMax || agg.Max != 40 {
		t.Errorf("Max = %v/%d, want true/40", agg.HasMax, agg.Max)
	}
	if !agg.HasMin || agg.Min != 3 {
		t.Errorf("Min = %v/%d, want true/3", agg.HasMin, agg.Min)
	}
	want := []uint32{30, 20, 10}
	if len(agg.Top) != len(want) {
		t.Fatalf("Top = %v, want %v", agg.Top, want)
	}
	for i, v := range want {
		if agg.Top[i] != v {
			t.Fatalf("Top = %v, want %v", agg.Top, want)
		}
	}

	// Second take: everything was reset.
	if agg2, ok2 := a.Take(); ok2 || !agg2.Empty() {
		t.Errorf("second Take = %+v ok=%v, want empty", agg2, ok2)
	}
	if a.Dirty() {
		t.Error("Dirty after Take, want clean")
	}
}

func TestAccumRestoreRejoinsNextEpoch(t *testing.T) {
	a := NewAccum(2)
	a.Apply(0, KindAdd, uint32(int32(10)))
	a.Apply(1, KindMax, 99)
	agg, _ := a.Take()

	// Install failed; the deltas must not be lost.
	a.Restore(agg)
	if !a.Dirty() {
		t.Fatal("Restore left accumulator clean")
	}
	a.Apply(1, KindAdd, uint32(int32(1)))
	agg2, ok := a.Take()
	if !ok || agg2.Add != 11 || !agg2.HasMax || agg2.Max != 99 {
		t.Errorf("after Restore+Apply: %+v ok=%v, want Add=11 Max=99", agg2, ok)
	}
}

func TestMergeTopBounded(t *testing.T) {
	var top []uint32
	for v := uint32(0); v < 100; v++ {
		top = MergeTop(top, v)
	}
	if len(top) != TopKSize {
		t.Fatalf("len(top) = %d, want %d", len(top), TopKSize)
	}
	for i, v := range top {
		if want := uint32(99 - i); v != want {
			t.Fatalf("top[%d] = %d, want %d (top=%v)", i, v, want, top)
		}
	}
	// Duplicates are kept (multiset semantics keep the merge commutative).
	top = MergeTop(top[:0], 5)
	top = MergeTop(top, 5)
	if len(top) != 2 || top[0] != 5 || top[1] != 5 {
		t.Errorf("duplicate insert: %v, want [5 5]", top)
	}
}

func TestAggMergeCommutative(t *testing.T) {
	mk := func() []Agg {
		return []Agg{
			{Add: 4, HasMax: true, Max: 10, Top: []uint32{9, 2}},
			{Add: -1, HasMin: true, Min: 7},
			{Add: 3, HasMax: true, Max: 15, HasMin: true, Min: 2, Top: []uint32{15}},
		}
	}
	fold := func(order []int) Agg {
		var out Agg
		parts := mk()
		for _, i := range order {
			out.Merge(parts[i])
		}
		return out
	}
	a := fold([]int{0, 1, 2})
	b := fold([]int{2, 0, 1})
	if a.Add != b.Add || a.Max != b.Max || a.Min != b.Min || len(a.Top) != len(b.Top) {
		t.Fatalf("merge order changed result: %+v vs %+v", a, b)
	}
	for i := range a.Top {
		if a.Top[i] != b.Top[i] {
			t.Fatalf("merge order changed Top: %v vs %v", a.Top, b.Top)
		}
	}
}

// Concurrent Applies interleaved with Takes must conserve the Add sum: every
// delta lands in exactly one epoch. Run with -race.
func TestAccumConcurrentApplyTakeConservesSum(t *testing.T) {
	const workers, perWorker = 4, 5000
	a := NewAccum(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a.Apply(w, KindAdd, 1)
			}
		}(w)
	}
	applied := make(chan struct{})
	go func() { wg.Wait(); close(applied) }()
	var total int64
	for {
		agg, _ := a.Take()
		total += agg.Add
		select {
		case <-applied:
			agg, _ := a.Take() // final sweep after every Apply returned
			total += agg.Add
			if want := int64(workers * perWorker); total != want {
				t.Fatalf("sum across epochs = %d, want %d", total, want)
			}
			return
		default:
		}
	}
}

func TestDetectorDeterministic(t *testing.T) {
	run := func() map[uint64]float64 {
		d := NewDetector(2, 64, 42)
		r := rng.New(7)
		for i := 0; i < 10000; i++ {
			d.Sample(int(r.Uint64n(2)), r.Uint64n(100))
		}
		shares, _, ok := d.Fold(1)
		if !ok {
			t.Fatal("Fold refused with 10000 samples")
		}
		return shares
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic fold: %d vs %d keys", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("non-deterministic share for key %d: %v vs %v", k, v, b[k])
		}
	}
}

func TestDetectorHotKeyDominates(t *testing.T) {
	d := NewDetector(4, 256, 1)
	r := rng.New(3)
	// 50% of traffic on key 0, the rest uniform over 1..1000.
	for i := 0; i < 40000; i++ {
		w := int(r.Uint64n(4))
		if r.Uint64n(2) == 0 {
			d.Sample(w, 0)
		} else {
			d.Sample(w, 1+r.Uint64n(1000))
		}
	}
	shares, total, ok := d.Fold(1)
	if !ok || total == 0 {
		t.Fatalf("Fold failed: ok=%v total=%d", ok, total)
	}
	if s := shares[0]; s < 0.35 || s > 0.65 {
		t.Errorf("hot key share = %v, want ~0.5", s)
	}
	// The hot key must rank first by a wide margin.
	type kv struct {
		k uint64
		s float64
	}
	var all []kv
	for k, s := range shares {
		all = append(all, kv{k, s})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
	if all[0].k != 0 {
		t.Errorf("top key = %d (share %v), want 0", all[0].k, all[0].s)
	}
	if len(all) > 1 && all[1].s > 0.2 {
		t.Errorf("runner-up share = %v, want << hot key", all[1].s)
	}
}

func TestDetectorBelowWindowKeepsAccumulating(t *testing.T) {
	d := NewDetector(1, 16, 9)
	for i := 0; i < 10; i++ {
		d.Sample(0, 5)
	}
	if shares, total, ok := d.Fold(100); ok || shares != nil || total != 10 {
		t.Fatalf("Fold below window: shares=%v total=%d ok=%v, want nil/10/false", shares, total, ok)
	}
	for i := 0; i < 90; i++ {
		d.Sample(0, 5)
	}
	shares, total, ok := d.Fold(100)
	if !ok || total != 100 {
		t.Fatalf("Fold at window: total=%d ok=%v, want 100/true", total, ok)
	}
	if s := shares[5]; s < 0.99 {
		t.Errorf("single-key share = %v, want ~1", s)
	}
	// Window reset: the next fold starts from zero.
	if _, total, ok := d.Fold(1); ok || total != 0 {
		t.Errorf("post-reset Fold: total=%d ok=%v, want 0/false", total, ok)
	}
}
