// Package splitphase holds the executor-independent pieces of split-phase
// execution for contended keys (Doppel-style phase reconciliation, Narula et
// al., OSDI'14, adapted to the key-routed executor): a contention detector
// that samples per-worker key traffic and nominates hot keys, and per-worker
// local accumulators that absorb commutative operations (Add, Max, Min,
// TopK-insert) on a split key with zero STM traffic — each worker mutates
// only its own cache-line-padded slot, and an epoch-merge coordinator folds
// the slots into the owning shard's transactional store at epoch close.
//
// The package deliberately knows nothing about envelopes, queues or the STM:
// internal/core wires Detector and Accum into the dispatch path, the worker
// loop and the merge coordinator, and internal/txds installs folded Aggs
// into stores. That keeps the accumulator/detector contracts independently
// testable and keeps the import direction acyclic (core → splitphase,
// txds → splitphase).
//
// Concurrency contract: worker w calls Accum.Apply(w, ...) only from its own
// worker loop; the coordinator's Take/Dirty/Restore may run concurrently
// with any Apply. Every slot carries its own mutex, so the fast path is an
// uncontended lock on a line no other worker touches. Accumulator state must
// NEVER be mutated inside an Atomic closure: an aborted transaction re-runs
// the closure and the delta double-counts (kstmvet's atomiceffect analyzer
// enforces this). Worker-local writes outside transactions are the legal —
// and the entire point of the — idiom.
package splitphase

import (
	"fmt"
	"sync"
)

// Kind classifies a workload op's merge semantics. A workload opts its ops
// into split-phase execution by publishing an op → Kind table; every kind
// here is commutative and associative, so per-worker partial aggregates
// merge into the same result regardless of interleaving.
type Kind uint8

// Commutative op kinds.
const (
	// KindNone: not commutative; on a split key the op parks on the key's
	// hold queue until the next epoch merge lands.
	KindNone Kind = iota
	// KindAdd: signed addition (the op's Arg is interpreted as an int32
	// delta in two's complement).
	KindAdd
	// KindMax: running maximum of the Arg values.
	KindMax
	// KindMin: running minimum of the Arg values.
	KindMin
	// KindTopK: keep the TopKSize largest Arg values seen.
	KindTopK
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindAdd:
		return "add"
	case KindMax:
		return "max"
	case KindMin:
		return "min"
	case KindTopK:
		return "topk"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// TopKSize is the capacity of the KindTopK aggregate: accumulators and
// stores keep at most this many of the largest inserted values.
const TopKSize = 8

// Agg is one split key's folded aggregate: the merged effect of every
// commutative op absorbed by the local accumulators since the last epoch
// merge. Merging Aggs (and applying one to a store) is commutative and
// associative, so the coordinator may fold worker slots in any order.
type Agg struct {
	// Add is the summed KindAdd delta.
	Add int64
	// Max/HasMax carry the running KindMax maximum, when any was applied.
	Max    uint32
	HasMax bool
	// Min/HasMin carry the running KindMin minimum, when any was applied.
	Min    uint32
	HasMin bool
	// Top holds the largest KindTopK values, descending, at most TopKSize.
	Top []uint32
}

// Empty reports whether the aggregate carries no effect at all.
func (a Agg) Empty() bool {
	return a.Add == 0 && !a.HasMax && !a.HasMin && len(a.Top) == 0
}

// Merge folds other into a.
func (a *Agg) Merge(other Agg) {
	a.Add += other.Add
	if other.HasMax && (!a.HasMax || other.Max > a.Max) {
		a.Max, a.HasMax = other.Max, true
	}
	if other.HasMin && (!a.HasMin || other.Min < a.Min) {
		a.Min, a.HasMin = other.Min, true
	}
	for _, v := range other.Top {
		a.Top = MergeTop(a.Top, v)
	}
}

// MergeTop inserts v into a descending top-K list, keeping at most TopKSize
// entries (duplicates allowed — the aggregate is a multiset truncation,
// which keeps the merge commutative). It returns the updated list.
func MergeTop(top []uint32, v uint32) []uint32 {
	i := 0
	for i < len(top) && top[i] >= v {
		i++
	}
	if i == TopKSize {
		return top // v is smaller than every kept entry
	}
	if len(top) < TopKSize {
		top = append(top, 0)
	}
	copy(top[i+1:], top[i:])
	top[i] = v
	return top
}

// slot is one worker's share of a split key's local state. Each slot is
// padded out to two cache lines so neighbouring workers' hot Apply paths
// never share a line; the mutex is effectively uncontended (its only other
// taker is the coordinator's rare fold).
//
//kstmvet:padalign 128
type slot struct {
	mu     sync.Mutex
	add    int64
	top    []uint32
	max    uint32
	min    uint32
	hasMax bool
	hasMin bool
	_      [72]byte
}

// Accum is one split key's per-worker local accumulator array: slot w
// belongs to worker w. Apply is the zero-STM-traffic write path for
// commutative ops on the split key; Take is the coordinator's epoch fold.
type Accum struct {
	slots []slot
}

// NewAccum returns an accumulator with one padded slot per worker.
func NewAccum(workers int) *Accum {
	if workers < 1 {
		workers = 1
	}
	return &Accum{slots: make([]slot, workers)}
}

// Workers returns the slot count.
func (a *Accum) Workers() int { return len(a.slots) }

// Apply absorbs one commutative op into worker w's slot. KindNone is a
// caller bug and ignored.
func (a *Accum) Apply(worker int, kind Kind, arg uint32) {
	s := &a.slots[worker]
	s.mu.Lock()
	switch kind {
	case KindAdd:
		s.add += int64(int32(arg))
	case KindMax:
		if !s.hasMax || arg > s.max {
			s.max, s.hasMax = arg, true
		}
	case KindMin:
		if !s.hasMin || arg < s.min {
			s.min, s.hasMin = arg, true
		}
	case KindTopK:
		s.top = MergeTop(s.top, arg)
	}
	s.mu.Unlock()
}

// Take removes and returns the merged aggregate of every slot, resetting
// each slot to empty. Applies racing with Take land wholly in the old or
// wholly in the new epoch (the slot mutex decides); the executor's drain
// barriers give the ordering guarantee that everything enqueued before the
// epoch's capture point has already been applied.
func (a *Accum) Take() (Agg, bool) {
	var agg Agg
	for i := range a.slots {
		s := &a.slots[i]
		s.mu.Lock()
		agg.Add += s.add
		if s.hasMax && (!agg.HasMax || s.max > agg.Max) {
			agg.Max, agg.HasMax = s.max, true
		}
		if s.hasMin && (!agg.HasMin || s.min < agg.Min) {
			agg.Min, agg.HasMin = s.min, true
		}
		for _, v := range s.top {
			agg.Top = MergeTop(agg.Top, v)
		}
		s.add, s.hasMax, s.hasMin = 0, false, false
		s.top = s.top[:0]
		s.mu.Unlock()
	}
	return agg, !agg.Empty()
}

// Dirty reports whether any slot holds an unfolded effect; the coordinator
// uses it to skip merge epochs for quiescent keys without paying a fold.
func (a *Accum) Dirty() bool {
	for i := range a.slots {
		s := &a.slots[i]
		s.mu.Lock()
		d := s.add != 0 || s.hasMax || s.hasMin || len(s.top) > 0
		s.mu.Unlock()
		if d {
			return true
		}
	}
	return false
}

// Restore merges a previously taken aggregate back into slot 0 — the
// failure path when an epoch's store install did not commit, so the deltas
// rejoin the next epoch instead of being lost.
func (a *Accum) Restore(agg Agg) {
	if agg.Empty() {
		return
	}
	s := &a.slots[0]
	s.mu.Lock()
	s.add += agg.Add
	if agg.HasMax && (!s.hasMax || agg.Max > s.max) {
		s.max, s.hasMax = agg.Max, true
	}
	if agg.HasMin && (!s.hasMin || agg.Min < s.min) {
		s.min, s.hasMin = agg.Min, true
	}
	for _, v := range agg.Top {
		s.top = MergeTop(s.top, v)
	}
	s.mu.Unlock()
}
