package splitphase

import (
	"sync"

	"kstm/internal/rng"
)

// DefaultReservoir is the per-worker reservoir capacity. 256 uint64 keys is
// 2KB per worker — small enough to fold every epoch, large enough that a key
// carrying ≥5% of traffic is essentially never missed (E[hits] ≈ 13).
const DefaultReservoir = 256

// Detector estimates per-key load concentration from per-worker reservoir
// samples (Vitter's Algorithm R). Every task routed through the split-aware
// dispatch path — and every commutative op absorbed locally — contributes one
// Sample; the coordinator Folds the reservoirs each epoch into per-key
// traffic-share estimates and promotes keys whose share crosses the split
// threshold.
//
// Share of traffic is the contention proxy, rather than STM abort counts:
// under key-affinity routing, same-key transactions already serialize on one
// worker's queue, so the damage a hot key does is queue serialization — load
// concentration — which aborts would undercount (the routed hot key barely
// aborts; it just monopolizes its shard). A reservoir was chosen over a
// count-min sketch (ISSUE allows either) for bounded memory, trivial reset,
// and deterministic testability under internal/rng.
//
// Sample is called from worker loops and the dispatch path; each worker has
// its own padded, mutex-guarded reservoir so samplers never share a cache
// line. Fold may run concurrently with Sample.
type Detector struct {
	samplers []sampler
	k        int
}

// sampler is one worker's reservoir, padded to a cache line.
//
//kstmvet:padalign
type sampler struct {
	mu    sync.Mutex
	total uint64
	keys  []uint64
	r     *rng.Xoshiro256
	_     [16]byte
}

// NewDetector returns a detector with one reservoir of capacity k per
// worker, deterministically seeded from seed (worker i draws from
// rng.New(seed).Split() chains, so runs with the same seed sample
// identically).
func NewDetector(workers, k int, seed uint64) *Detector {
	if workers < 1 {
		workers = 1
	}
	if k < 1 {
		k = DefaultReservoir
	}
	d := &Detector{samplers: make([]sampler, workers), k: k}
	root := rng.New(seed)
	for i := range d.samplers {
		d.samplers[i].r = root.Split()
		d.samplers[i].keys = make([]uint64, 0, k)
	}
	return d
}

// Sample records one observation of key on worker w's reservoir.
func (d *Detector) Sample(worker int, key uint64) {
	s := &d.samplers[worker]
	s.mu.Lock()
	s.total++
	if len(s.keys) < d.k {
		s.keys = append(s.keys, key)
	} else if j := s.r.Uint64n(s.total); j < uint64(d.k) {
		s.keys[j] = key
	}
	s.mu.Unlock()
}

// Fold combines every worker's reservoir into per-key traffic-share
// estimates (0..1, summing to ~1 over sampled keys) and resets the
// reservoirs for the next window. If fewer than minTotal observations have
// accumulated across all workers, Fold returns (nil, total, false) and
// leaves the reservoirs intact — the window keeps filling, so sparse traffic
// never promotes off a handful of samples.
//
// Each reservoir entry on worker w stands for total_w/len(keys_w)
// observations, so shares are weighted by per-worker traffic volume.
func (d *Detector) Fold(minTotal uint64) (map[uint64]float64, uint64, bool) {
	var grand uint64
	for i := range d.samplers {
		s := &d.samplers[i]
		s.mu.Lock()
		grand += s.total
		s.mu.Unlock()
	}
	if grand < minTotal || grand == 0 {
		return nil, grand, false
	}
	weights := make(map[uint64]float64)
	for i := range d.samplers {
		s := &d.samplers[i]
		s.mu.Lock()
		if n := len(s.keys); n > 0 {
			w := float64(s.total) / float64(n)
			for _, k := range s.keys {
				weights[k] += w
			}
		}
		s.total = 0
		s.keys = s.keys[:0]
		s.mu.Unlock()
	}
	for k := range weights {
		weights[k] /= float64(grand)
	}
	return weights, grand, true
}
