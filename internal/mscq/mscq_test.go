package mscq

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyDequeue(t *testing.T) {
	q := New[int]()
	if v, ok := q.Dequeue(); ok {
		t.Fatalf("Dequeue on empty returned (%d, true)", v)
	}
	if !q.Empty() {
		t.Error("Empty() = false on new queue")
	}
	if q.Len() != 0 {
		t.Errorf("Len() = %d on new queue", q.Len())
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New[int]()
	const n = 1000
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
	if q.Empty() {
		t.Fatal("Empty() = true after enqueues")
	}
	if q.Len() != n {
		t.Errorf("Len() = %d, want %d", q.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok {
			t.Fatalf("Dequeue %d failed", i)
		}
		if v != i {
			t.Fatalf("Dequeue %d = %d (FIFO violated)", i, v)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Error("queue not empty after draining")
	}
}

func TestInterleavedOps(t *testing.T) {
	q := New[string]()
	q.Enqueue("a")
	q.Enqueue("b")
	if v, _ := q.Dequeue(); v != "a" {
		t.Fatalf("got %q", v)
	}
	q.Enqueue("c")
	if v, _ := q.Dequeue(); v != "b" {
		t.Fatalf("got %q", v)
	}
	if v, _ := q.Dequeue(); v != "c" {
		t.Fatalf("got %q", v)
	}
}

func TestMPMCAllDelivered(t *testing.T) {
	q := New[int]()
	const producers, consumers, perProducer = 8, 8, 5000
	total := producers * perProducer

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(base + i)
			}
		}(p * perProducer)
	}

	results := make(chan int, total)
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if v, ok := q.Dequeue(); ok {
					results <- v
					continue
				}
				select {
				case <-done:
					// Final drain after producers finish.
					for {
						v, ok := q.Dequeue()
						if !ok {
							return
						}
						results <- v
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	close(results)

	seen := make(map[int]bool, total)
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != total {
		t.Fatalf("delivered %d values, want %d", len(seen), total)
	}
}

func TestPerProducerFIFO(t *testing.T) {
	// Linearizability of MS queue implies per-producer order is preserved.
	q := New[[2]int]() // [producer, seq]
	const producers, per = 4, 3000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue([2]int{id, i})
			}
		}(p)
	}
	wg.Wait()
	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		p, seq := v[0], v[1]
		if seq <= lastSeq[p] {
			t.Fatalf("producer %d: seq %d after %d", p, seq, lastSeq[p])
		}
		lastSeq[p] = seq
	}
	for p, s := range lastSeq {
		if s != per-1 {
			t.Errorf("producer %d: last seq %d, want %d", p, s, per-1)
		}
	}
}

func TestConcurrentEnqueueDequeuePairs(t *testing.T) {
	// Each goroutine enqueues then dequeues; the queue must conserve
	// elements (what goes in comes out exactly once).
	q := New[int]()
	const goroutines, rounds = 16, 2000
	var got [goroutines][]int
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q.Enqueue(id*rounds + i)
				if v, ok := q.Dequeue(); ok {
					got[id] = append(got[id], v)
				}
			}
		}(g)
	}
	wg.Wait()
	// Drain leftovers.
	var leftovers []int
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		leftovers = append(leftovers, v)
	}
	all := append([]int{}, leftovers...)
	for g := range got {
		all = append(all, got[g]...)
	}
	if len(all) != goroutines*rounds {
		t.Fatalf("conservation violated: %d elements, want %d", len(all), goroutines*rounds)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("element %d missing or duplicated (saw %d)", i, v)
		}
	}
}

func TestQuickSequentialMatchesSlice(t *testing.T) {
	// Property: any sequence of enqueue/dequeue matches a slice-based
	// model queue.
	type op struct {
		Enq bool
		V   int8
	}
	f := func(ops []op) bool {
		q := New[int8]()
		var model []int8
		for _, o := range ops {
			if o.Enq {
				q.Enqueue(o.V)
				model = append(model, o.V)
			} else {
				v, ok := q.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEnqueueDequeue(b *testing.B) {
	q := New[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enqueue(1)
			q.Dequeue()
		}
	})
}

func BenchmarkEnqueueOnly(b *testing.B) {
	q := New[int]()
	for i := 0; i < b.N; i++ {
		q.Enqueue(i)
	}
}

// TestEnqueueAllSplice: the batch chain splices atomically (contiguous,
// in order) and coexists with concurrent single enqueues and dequeues.
func TestEnqueueAllSplice(t *testing.T) {
	q := New[int]()
	q.EnqueueAll([]int{1, 2, 3})
	q.EnqueueAll(nil)
	q.Enqueue(4)
	q.EnqueueAll([]int{5, 6})
	if n := q.Len(); n != 6 {
		t.Fatalf("Len = %d, want 6", n)
	}
	for want := 1; want <= 6; want++ {
		got, ok := q.Dequeue()
		if !ok || got != want {
			t.Fatalf("Dequeue = %d,%v want %d", got, ok, want)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty")
	}

	// Concurrent mixed producers + consumers: everything enqueued comes
	// out exactly once, and each batch stays in order relative to itself.
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i += 5 {
				batch := make([]int, 5)
				for j := range batch {
					batch[j] = p*perProducer + i + j
				}
				q.EnqueueAll(batch)
			}
		}(p)
	}
	seen := make(map[int]bool)
	var mu sync.Mutex
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 2; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					select {
					case <-stop:
						if v, ok := q.Dequeue(); ok {
							mu.Lock()
							seen[v] = true
							mu.Unlock()
							continue
						}
						return
					default:
						continue
					}
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d dequeued twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stop)
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("dequeued %d of %d", len(seen), producers*perProducer)
	}
}
