// Package mscq implements the Michael & Scott non-blocking concurrent FIFO
// queue (PODC'96), the algorithm behind java.util.concurrent.
// ConcurrentLinkedQueue that the paper uses for its executor task queues
// (§4.1).
//
// The queue is multi-producer multi-consumer and lock-free: enqueue and
// dequeue each complete in a bounded number of steps unless another thread
// makes progress. Go's garbage collector plays the role of the original
// algorithm's counted pointers: nodes are never reused while reachable, so
// the ABA problem cannot arise.
package mscq

import "sync/atomic"

type node[T any] struct {
	value T
	next  atomic.Pointer[node[T]]
}

// Queue is a lock-free FIFO. The zero value is not ready to use; call New.
type Queue[T any] struct {
	head atomic.Pointer[node[T]] // sentinel; head.next is the first element
	tail atomic.Pointer[node[T]] // last or second-to-last node
	size atomic.Int64            // approximate size, maintained for stats
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &node[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enqueue appends v to the tail of the queue.
func (q *Queue[T]) Enqueue(v T) {
	n := &node[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; re-read
		}
		if next != nil {
			// Tail is lagging; help advance it and retry.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			// Linearization point. Swing tail; failure is benign
			// (someone else helped).
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// EnqueueAll appends vs in order as one splice: the nodes are allocated in a
// single block and linked locally, then the whole chain is attached with one
// successful CAS on the last node's next pointer — the batch is contiguous
// in the queue and the per-element cost drops to a copy.
//
// The tail pointer may lag behind the chain's end until the trailing CAS (or
// a helping operation) advances it; both Enqueue and Dequeue already walk a
// lagging tail forward one step per retry, so the M&S invariant "tail is
// reachable from head and at or behind the last node" is preserved.
func (q *Queue[T]) EnqueueAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	nodes := make([]node[T], len(vs))
	for i := range vs {
		nodes[i].value = vs[i]
		if i > 0 {
			nodes[i-1].next.Store(&nodes[i])
		}
	}
	first, last := &nodes[0], &nodes[len(vs)-1]
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, first) {
			// Linearization point for the whole batch.
			q.tail.CompareAndSwap(tail, last)
			q.size.Add(int64(len(vs)))
			return
		}
	}
}

// Dequeue removes and returns the head element. ok is false if the queue
// was observed empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				return v, false // empty
			}
			// Tail lagging behind an in-flight enqueue; help.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		value := next.value
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			// Clear the value field so the dequeued payload is not
			// kept alive by the new sentinel.
			var zero T
			next.value = zero
			return value, true
		}
	}
}

// Empty reports whether the queue was observed empty. Like all size queries
// on concurrent queues, the answer may be stale by the time it returns.
func (q *Queue[T]) Empty() bool {
	head := q.head.Load()
	return head.next.Load() == nil
}

// Len returns the approximate number of elements. The counter is maintained
// with relaxed ordering relative to the queue operations themselves, so it
// may transiently disagree with the structural state; it is intended for
// load statistics (queue-depth sampling), not for synchronization.
func (q *Queue[T]) Len() int {
	n := q.size.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
