// Package fault is a seeded, rule-driven fault injector for the serving
// stack: net.Conn/net.Listener wrappers that corrupt the transport in
// controlled ways (drop after N bytes, stall for a duration, partial writes,
// read truncation, dial refusal) plus executor-side hooks (task slowdown,
// worker stall). Every decision derives from a fixed seed and a per-
// connection index, so a chaos test that fails replays byte-for-byte with
// the same seed — the injector is the reproducible substrate under the
// chaos e2e matrix and the `faults` harness experiment (DESIGN.md §10.4).
//
// An Injector holds an ordered rule list. Each accepted (or dialed)
// connection gets a monotonically increasing index; the first rule whose
// selector matches the index arms that connection with the rule's faults.
// Connections no rule matches pass traffic through untouched. Rule grammar:
//
//	Rule{Every: 3}                      // match conns 0, 3, 6, ...
//	Rule{Every: 4, Offset: 1}           // match conns 1, 5, 9, ...
//	Rule{Every: 1, DropAfter: 512}      // every conn dies after 512 bytes out
//	Rule{Every: 2, Stall: 5ms, StallAfter: 100}
//	Rule{Every: 1, WriteChunk: 3, ReadChunk: 7}
//	Rule{Every: 5, RefuseDial: true}    // Dial returns ECONNREFUSED-like error
//
// DropAfter counts bytes written by this side; once exceeded the connection
// is closed mid-write, so the peer observes a reset/EOF at an arbitrary
// frame boundary. WriteChunk/ReadChunk bound the bytes moved per Write/Read
// call, forcing every io.ReadFull and bufio flush through short-read/short-
// write paths. Stall sleeps once, after StallAfter bytes have been written,
// simulating a wedged peer.
package fault

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kstm/internal/rng"
)

// ErrInjected marks failures the injector manufactured, so tests can tell a
// deliberate fault from a genuine bug in the stack under test.
var ErrInjected = errors.New("fault: injected failure")

// ErrDialRefused is returned by Dial when a RefuseDial rule matches; it
// wraps ErrInjected and reads like a connection refusal.
var ErrDialRefused = fmt.Errorf("%w: dial refused", ErrInjected)

// Rule describes one fault pattern and which connections it applies to.
// Zero-valued fault fields are inert, so a Rule can combine any subset.
type Rule struct {
	// Every/Offset select connections by index: a rule matches connection i
	// when Every > 0 and i % Every == Offset. The first matching rule in the
	// injector's list wins.
	Every  int
	Offset int

	// DropAfter, when > 0, force-closes the connection once this many bytes
	// have been written through it (the excess write returns ErrInjected).
	DropAfter int64

	// Stall, when > 0, makes the connection sleep once for this duration
	// after StallAfter bytes have been written (0 = stall on first write).
	Stall      time.Duration
	StallAfter int64

	// WriteChunk, when > 0, splits each Write into chunks of at most this
	// many bytes on the underlying connection: a large buffered flush
	// becomes many small segments landing at arbitrary frame boundaries on
	// the peer. The wrapper still honors the io.Writer contract (full
	// delivery or an error), so bufio on top keeps working.
	WriteChunk int

	// ReadChunk, when > 0, caps the bytes returned per Read call, driving
	// every decoder through its short-read path.
	ReadChunk int

	// RefuseDial, when set, makes Dial fail for matching connection indexes
	// without touching the network.
	RefuseDial bool

	// Jitter, when > 0, perturbs DropAfter/StallAfter per connection by a
	// seeded amount in [0, Jitter) bytes, so repeated connections fault at
	// different (but reproducible) points.
	Jitter int64
}

func (r Rule) matches(index int) bool {
	return r.Every > 0 && index%r.Every == r.Offset%r.Every
}

// Injector hands out faulty connections according to its rules. The zero
// value injects nothing; use New.
type Injector struct {
	rules []Rule
	seed  uint64
	next  atomic.Int64 // next connection index
}

// New returns an injector with the given seed and rules. Rules are checked
// in order per connection; the first match arms the connection.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{rules: rules, seed: seed}
}

// index allocates the next connection index.
func (in *Injector) index() int { return int(in.next.Add(1) - 1) }

// armed returns the matched rule (with per-connection jitter resolved) for
// a connection index, or ok=false when no rule matches.
func (in *Injector) armed(index int) (Rule, bool) {
	for _, r := range in.rules {
		if !r.matches(index) {
			continue
		}
		if r.Jitter > 0 {
			// Derive the jitter from (seed, index) only — independent of
			// scheduling, so reruns fault at identical byte offsets.
			g := rng.New(in.seed ^ uint64(index)*0x9e3779b97f4a7c15)
			j := int64(g.Uint64n(uint64(r.Jitter)))
			if r.DropAfter > 0 {
				r.DropAfter += j
			}
			if r.Stall > 0 {
				r.StallAfter += j
			}
		}
		return r, true
	}
	return Rule{}, false
}

// Conn wraps c with the faults selected for the next connection index.
// Connections no rule matches are returned untouched.
func (in *Injector) Conn(c net.Conn) net.Conn {
	r, ok := in.armed(in.index())
	if !ok || (r.DropAfter == 0 && r.Stall == 0 && r.WriteChunk == 0 && r.ReadChunk == 0) {
		return c
	}
	return &conn{Conn: c, rule: r}
}

// Listen wraps l so every accepted connection passes through Conn.
func (in *Injector) Listen(l net.Listener) net.Listener {
	return &listener{Listener: l, in: in}
}

// Dial connects like net.Dial but counts a connection index and applies
// RefuseDial rules before touching the network; successful dials are wrapped
// like accepted connections.
func (in *Injector) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	idx := in.index()
	r, ok := in.armed(idx)
	if ok && r.RefuseDial {
		return nil, ErrDialRefused
	}
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	if !ok || (r.DropAfter == 0 && r.Stall == 0 && r.WriteChunk == 0 && r.ReadChunk == 0) {
		return c, nil
	}
	return &conn{Conn: c, rule: r}, nil
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// conn applies one armed rule to a real connection. The mutex serializes
// the byte counters against concurrent Read/Write (the server writes from
// its writeLoop while the read loop owns Read, and net.Conn must tolerate
// that).
type conn struct {
	net.Conn
	rule Rule

	mu      sync.Mutex
	written int64
	stalled bool
	dropped bool
}

func (c *conn) Read(b []byte) (int, error) {
	if n := c.rule.ReadChunk; n > 0 && len(b) > n {
		b = b[:n]
	}
	return c.Conn.Read(b)
}

func (c *conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.dropped {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if c.rule.Stall > 0 && !c.stalled && c.written >= c.rule.StallAfter {
		c.stalled = true
		d := c.rule.Stall
		c.mu.Unlock()
		time.Sleep(d)
		c.mu.Lock()
	}
	total := 0
	for {
		chunk := b[total:]
		if n := c.rule.WriteChunk; n > 0 && len(chunk) > n {
			chunk = chunk[:n]
		}
		if d := c.rule.DropAfter; d > 0 {
			remaining := d - c.written
			if remaining <= 0 {
				c.dropped = true
				c.mu.Unlock()
				c.Conn.Close()
				return total, ErrInjected
			}
			if int64(len(chunk)) > remaining {
				// Deliver the last allowed bytes, then kill the connection:
				// the peer sees a clean prefix and then a reset mid-frame.
				n, _ := c.Conn.Write(chunk[:remaining])
				c.written += int64(n)
				total += n
				c.dropped = true
				c.mu.Unlock()
				c.Conn.Close()
				return total, ErrInjected
			}
		}
		n, err := c.Conn.Write(chunk)
		c.written += int64(n)
		total += n
		if err != nil {
			c.mu.Unlock()
			return total, err
		}
		if total == len(b) {
			c.mu.Unlock()
			return total, nil
		}
	}
}

// Hooks are executor-side fault points: a harness installs them where the
// transport wrappers cannot reach (inside task execution). Both are
// optional; nil hooks are inert.
type Hooks struct {
	// TaskDelay, when > 0, is slept inside every faulted task execution,
	// simulating slow storage or a contended lock under the workload.
	TaskDelay time.Duration
	// TaskEvery selects which tasks TaskDelay applies to (every Nth call;
	// 0 means every call when TaskDelay > 0).
	TaskEvery int

	calls atomic.Int64
}

// OnTask is called by an instrumented workload at the top of each task
// execution; it sleeps when the hook's selector matches this call.
func (h *Hooks) OnTask() {
	if h == nil || h.TaskDelay <= 0 {
		return
	}
	n := h.calls.Add(1) - 1
	if h.TaskEvery > 1 && n%int64(h.TaskEvery) != 0 {
		return
	}
	time.Sleep(h.TaskDelay)
}
