package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeConn returns both ends of an in-memory connection.
func pipeConn() (net.Conn, net.Conn) { return net.Pipe() }

// TestRuleSelector pins the Every/Offset grammar.
func TestRuleSelector(t *testing.T) {
	cases := []struct {
		rule Rule
		hits []int
		miss []int
	}{
		{Rule{Every: 1}, []int{0, 1, 2, 7}, nil},
		{Rule{Every: 3}, []int{0, 3, 6}, []int{1, 2, 4, 5}},
		{Rule{Every: 4, Offset: 1}, []int{1, 5, 9}, []int{0, 2, 3, 4}},
		{Rule{}, nil, []int{0, 1, 2}}, // Every 0: matches nothing
	}
	for _, c := range cases {
		for _, i := range c.hits {
			if !c.rule.matches(i) {
				t.Errorf("%+v should match %d", c.rule, i)
			}
		}
		for _, i := range c.miss {
			if c.rule.matches(i) {
				t.Errorf("%+v should not match %d", c.rule, i)
			}
		}
	}
}

// TestDropAfterCutsMidStream: the writer side sees ErrInjected once the
// byte budget is spent, and the reader sees a clean prefix then EOF/reset —
// never corrupted bytes.
func TestDropAfterCutsMidStream(t *testing.T) {
	in := New(1, Rule{Every: 1, DropAfter: 10})
	a, b := pipeConn()
	fc := in.Conn(a)

	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(b)
		got <- data
	}()
	payload := bytes.Repeat([]byte{0xAB}, 64)
	n, err := fc.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write past budget: n=%d err=%v, want ErrInjected", n, err)
	}
	if n != 10 {
		t.Fatalf("delivered %d bytes before the cut, want 10", n)
	}
	data := <-got
	if !bytes.Equal(data, payload[:10]) {
		t.Fatalf("peer read %x, want the clean 10-byte prefix", data)
	}
	// The connection stays dead: later writes fail without touching the net.
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after drop: %v, want ErrInjected", err)
	}
}

// TestChunkingCapsTransfers: WriteChunk segments delivery on the underlying
// connection (the peer sees <= chunk bytes per segment) while still honoring
// the io.Writer contract — one Write call delivers everything. ReadChunk
// bounds bytes returned per Read. Data survives both intact.
func TestChunkingCapsTransfers(t *testing.T) {
	in := New(1, Rule{Every: 1, WriteChunk: 3})
	a, b := pipeConn()
	fc := in.Conn(a)

	payload := []byte("0123456789abcdef")
	go func() {
		n, err := fc.Write(payload)
		if err != nil || n != len(payload) {
			t.Errorf("chunked write = %d, %v; want full delivery", n, err)
		}
		fc.Close()
	}()
	// net.Pipe preserves write boundaries: each Read consumes at most one
	// underlying segment, so a 3-byte WriteChunk shows up as <= 3 bytes per
	// read even with a larger buffer. Wrap the read side to exercise
	// ReadChunk's cap too.
	rc := New(1, Rule{Every: 1, ReadChunk: 2}).Conn(b)
	var got []byte
	buf := make([]byte, 8)
	for {
		n, err := rc.Read(buf)
		if n > 2 {
			t.Fatalf("read moved %d bytes, chunk is 2", n)
		}
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %q, want %q", got, payload)
	}
}

// TestStallSleepsOnce: the first write past StallAfter blocks for the stall
// duration; later writes are full speed.
func TestStallSleepsOnce(t *testing.T) {
	const stall = 30 * time.Millisecond
	in := New(1, Rule{Every: 1, Stall: stall})
	a, b := pipeConn()
	fc := in.Conn(a)
	go io.Copy(io.Discard, b)

	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("first write took %v, want >= %v", d, stall)
	}
	start = time.Now()
	if _, err := fc.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > stall {
		t.Fatalf("second write took %v; the stall must fire once", d)
	}
}

// TestJitterDeterministic: with Jitter set, the armed DropAfter varies per
// connection index but is a pure function of (seed, index) — two injectors
// with the same seed arm identical rules; a different seed diverges.
func TestJitterDeterministic(t *testing.T) {
	base := Rule{Every: 1, DropAfter: 100, Jitter: 1000}
	armA := func(seed uint64, idx int) int64 {
		r, ok := New(seed, base).armed(idx)
		if !ok {
			t.Fatalf("rule must match index %d", idx)
		}
		return r.DropAfter
	}
	var diverged bool
	for idx := 0; idx < 16; idx++ {
		a, b := armA(7, idx), armA(7, idx)
		if a != b {
			t.Fatalf("index %d: same seed armed %d and %d", idx, a, b)
		}
		if a < 100 || a >= 1100 {
			t.Fatalf("index %d: DropAfter %d outside [100, 1100)", idx, a)
		}
		if armA(8, idx) != a {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 7 and 8 armed identical jitter at every index")
	}
}

// TestRefuseDialAndIndexing: the first matching rule wins per connection
// index, and RefuseDial fails without a network round trip.
func TestRefuseDialAndIndexing(t *testing.T) {
	in := New(1,
		Rule{Every: 2, RefuseDial: true}, // conns 0, 2, 4...
		Rule{Every: 1},                   // everything else: pass-through
	)
	// Index 0 matches the refusal rule.
	if _, err := in.Dial("tcp", "127.0.0.1:1", time.Second); !errors.Is(err, ErrDialRefused) {
		t.Fatalf("dial 0: %v, want ErrDialRefused", err)
	}
	// Index 1 falls through to the inert rule and really dials; use a
	// listener so it succeeds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ln.Accept()
	c, err := in.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	c.Close()
	if !errors.Is(ErrDialRefused, ErrInjected) {
		t.Error("ErrDialRefused must wrap ErrInjected")
	}
}

// TestHooksSelector: TaskEvery gates the delay to every Nth call; nil hooks
// are inert.
func TestHooksSelector(t *testing.T) {
	var nilHooks *Hooks
	nilHooks.OnTask() // must not panic

	h := &Hooks{TaskDelay: 10 * time.Millisecond, TaskEvery: 4}
	start := time.Now()
	for i := 0; i < 4; i++ {
		h.OnTask() // one in four sleeps
	}
	elapsed := time.Since(start)
	if elapsed < 10*time.Millisecond || elapsed > 35*time.Millisecond {
		t.Fatalf("4 calls at every=4 slept %v, want ~10ms", elapsed)
	}
}
