package latency

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotoneAndInBounds(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 100, 1000, 1 << 20, 1 << 40, 1<<62 + 12345} {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of bounds", v, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		lo, hi := bucketBounds(i)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside its bucket [%d,%d)", v, lo, hi)
		}
	}
	if bucketIndex(-5) != 0 {
		t.Error("negative values must clamp to bucket 0")
	}
}

func TestBucketBoundsRoundTrip(t *testing.T) {
	for i := 0; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		if hi <= lo {
			t.Fatalf("bucket %d empty: [%d,%d)", i, lo, hi)
		}
		if lo >= 0 && bucketIndex(lo) != i {
			t.Fatalf("bucketIndex(bucketBounds(%d).lo=%d) = %d", i, lo, bucketIndex(lo))
		}
	}
}

func TestEmptySummary(t *testing.T) {
	h := New()
	s := h.Snapshot().Summary()
	if s.Count != 0 || s.P50 != 0 || s.Max != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

// TestQuantileAccuracyKnownDistribution checks the satellite requirement:
// percentiles against a known distribution stay within the log-linear
// bucketing's guaranteed relative error (1/16, padded slightly for the
// midpoint rule).
func TestQuantileAccuracyKnownDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200_000
	h := New()
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform over ~6 decades, exercising many octaves, plus a
		// heavy tail — the shape of real latency data.
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v)
		vals[i] = v
		h.Observe(time.Duration(v))
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	snap := h.Snapshot()
	if snap.Count() != n {
		t.Fatalf("count = %d, want %d", snap.Count(), n)
	}
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999} {
		got := float64(snap.Quantile(q))
		exact := float64(vals[int(q*float64(n-1))])
		relErr := (got - exact) / exact
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 2.0/subBuckets {
			t.Errorf("q=%.3f: got %v, exact %v, rel err %.3f > %.3f",
				q, time.Duration(int64(got)), time.Duration(int64(exact)), relErr, 2.0/subBuckets)
		}
	}
	if snap.Max() != time.Duration(vals[n-1]) {
		t.Errorf("max = %v, want %v", snap.Max(), time.Duration(vals[n-1]))
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if snap.Mean() != time.Duration(sum/n) {
		t.Errorf("mean = %v, want %v", snap.Mean(), time.Duration(sum/n))
	}
}

func TestQuantileSingleValue(t *testing.T) {
	h := New()
	h.Observe(1500 * time.Nanosecond)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		got := s.Quantile(q)
		// One observation: every quantile is that bucket, clamped to max.
		if got > 1500 || got < 1500*15/16 {
			t.Errorf("Quantile(%v) = %v, want ~1.5µs", q, got)
		}
	}
}

func TestMergeAcrossHistograms(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 100; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	sum := Merge(a, b, nil)
	if sum.Count != 200 {
		t.Fatalf("merged count = %d", sum.Count)
	}
	if sum.P50 > 2*time.Millisecond || sum.P95 < 900*time.Millisecond {
		t.Errorf("merged percentiles wrong: %v", sum)
	}
	if sum.Max < time.Second*15/16 {
		t.Errorf("merged max = %v", sum.Max)
	}
}

// TestConcurrentObserve is the -race exercise: many writers, snapshots taken
// mid-flight, final count exact.
func TestConcurrentObserve(t *testing.T) {
	h := New()
	const goroutines, per = 8, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Nanosecond)
				if i%2048 == 0 {
					_ = h.Snapshot().Summary()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}
