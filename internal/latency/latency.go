// Package latency provides a concurrent, fixed-memory duration histogram in
// the HDR style: log-linear buckets whose width grows with the recorded
// value, so quantile estimates carry a bounded relative error (at most
// 1/subBuckets ≈ 6%) across the nine decades between a nanosecond and
// minutes, with no allocation on the record path.
//
// The executor keeps one Histogram per worker per metric and merges them
// into a Summary when a stats snapshot is taken; Observe is a single atomic
// add, cheap enough for every task.
package latency

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits sets the linear resolution within one power of two:
	// 2^subBits sub-buckets per octave, bounding quantile error at
	// 1/2^subBits of the value.
	subBits    = 4
	subBuckets = 1 << subBits
	// numBuckets covers every non-negative int64 nanosecond value: the
	// largest index is (63-subBits)*subBuckets + (subBuckets-1).
	numBuckets = (64 - subBits) * subBuckets
)

// bucketIndex maps a nanosecond value to its bucket. Values below
// subBuckets get exact buckets; above, the value is split into an octave
// exponent and a subBits-bit mantissa, so buckets widen geometrically.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - subBits - 1
	mant := u >> uint(exp) // in [subBuckets, 2*subBuckets)
	return exp*subBuckets + int(mant)
}

// bucketBounds returns the half-open value range [lo, hi) of a bucket.
func bucketBounds(i int) (lo, hi int64) {
	if i < subBuckets {
		return int64(i), int64(i) + 1
	}
	exp := i/subBuckets - 1 // inverse of bucketIndex: recover shift
	mant := int64(i%subBuckets + subBuckets)
	lo = mant << uint(exp)
	hi = (mant + 1) << uint(exp)
	if hi <= lo { // the topmost bucket's upper bound is 2^63: clamp
		hi = 1<<63 - 1
	}
	return lo, hi
}

// Histogram is a concurrent duration recorder. The zero value is NOT ready;
// use New. All methods are safe for concurrent use.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// Observe records one duration. Negative durations (clock steps) count as
// zero rather than corrupting a bucket index.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot is a point-in-time copy of one or more histograms, from which
// quantiles are computed. Taking a snapshot while recording continues is
// racy-but-monotone, like every other counter in this repository.
type Snapshot struct {
	counts [numBuckets]uint64
	count  uint64
	sum    int64
	max    int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() *Snapshot {
	s := &Snapshot{}
	s.add(h)
	return s
}

// MergeSnapshot combines any number of histograms (e.g. one per worker)
// into a single snapshot. Nil entries are skipped.
func MergeSnapshot(hs ...*Histogram) *Snapshot {
	s := &Snapshot{}
	for _, h := range hs {
		if h != nil {
			s.add(h)
		}
	}
	return s
}

func (s *Snapshot) add(h *Histogram) {
	for i := range s.counts {
		s.counts[i] += h.counts[i].Load()
	}
	s.count += h.count.Load()
	s.sum += h.sum.Load()
	if m := h.max.Load(); m > s.max {
		s.max = m
	}
}

// Count returns the number of observations in the snapshot.
func (s *Snapshot) Count() uint64 { return s.count }

// Quantile returns the value at quantile q in [0, 1]: the midpoint of the
// bucket containing the q-th ranked observation, clamped to the observed
// maximum. An empty snapshot returns 0.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based; q=0 is the first.
	rank := uint64(q*float64(s.count-1)) + 1
	var seen uint64
	for i, c := range s.counts {
		seen += c
		if seen >= rank {
			lo, hi := bucketBounds(i)
			mid := lo + (hi-lo)/2
			if mid > s.max {
				mid = s.max
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(s.max)
}

// Mean returns the exact arithmetic mean (the sum is tracked separately, so
// the mean carries no bucketing error).
func (s *Snapshot) Mean() time.Duration {
	if s.count == 0 {
		return 0
	}
	return time.Duration(s.sum / int64(s.count))
}

// Max returns the largest recorded value.
func (s *Snapshot) Max() time.Duration { return time.Duration(s.max) }

// Summary reports the percentiles operators actually read. It is a plain
// value, safe to copy and embed in stats structs.
type Summary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summary computes the standard percentile set from the snapshot.
func (s *Snapshot) Summary() Summary {
	return Summary{
		Count: s.count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   s.Max(),
	}
}

// Merge combines histograms directly into a Summary — the executor's
// one-call path from per-worker recorders to ExecStats fields.
func Merge(hs ...*Histogram) Summary { return MergeSnapshot(hs...).Summary() }

// String renders the summary compactly for reports.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}
