package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/queue"
	"kstm/internal/rng"
	"kstm/internal/sim"
	"kstm/internal/stats"
	"kstm/internal/stm"
	"kstm/internal/txds"
)

// Mode selects how experiments execute.
type Mode string

// Execution modes.
const (
	// ModeSim runs the discrete-event simulator: deterministic,
	// reproduces the 16-processor testbed shape on any host.
	ModeSim Mode = "sim"
	// ModeReal runs the actual STM and executor on host goroutines.
	// Scaling curves are only meaningful with as many hardware threads
	// as workers.
	ModeReal Mode = "real"
)

// Options configure an experiment run.
type Options struct {
	Mode Mode
	// Runs is the repetition count per data point (the paper uses 10).
	Runs int
	// Threads lists worker counts for the x axis (the paper sweeps 2-16).
	Threads []int
	// DurationCycles overrides the simulated horizon (0 = default).
	DurationCycles uint64
	// RealTasks is the per-point task count in real mode.
	RealTasks int
	// Seed is the base PRNG seed; repetition i uses Seed+i.
	Seed uint64
}

// DefaultOptions mirror the paper's sweep at CI-friendly durations.
func DefaultOptions() Options {
	return Options{
		Mode:      ModeSim,
		Runs:      3,
		Threads:   []int{2, 4, 6, 8, 10, 12, 14, 16},
		RealTasks: 20000,
		Seed:      1,
	}
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper cites the figure/table/section being reproduced.
	Paper string
	Run   func(Options) ([]*Table, error)
}

// Experiments returns the registry in DESIGN.md §7 order.
func Experiments() []Experiment {
	exps := []Experiment{}
	for _, d := range dist.Names() {
		d := d
		exps = append(exps, Experiment{
			ID:    "fig3-" + d,
			Title: fmt.Sprintf("Hash table throughput vs. threads, %s keys", d),
			Paper: "Figure 3 (" + d + ")",
			Run: func(o Options) ([]*Table, error) {
				t, err := schedulerSweep(o, txds.KindHashTable, d, 8)
				if err != nil {
					return nil, err
				}
				t.ID = "fig3-" + d
				return []*Table{t}, nil
			},
		})
	}
	exps = append(exps,
		Experiment{
			ID:    "fig4-overhead",
			Title: "Executor overhead: bare threads vs. executor on trivial transactions",
			Paper: "Figure 4",
			Run:   runFig4,
		},
		Experiment{
			ID:    "tr-rbtree",
			Title: "Red-black tree throughput vs. threads (all distributions)",
			Paper: "§4.2/§4.4 tech-report companion",
			Run: func(o Options) ([]*Table, error) {
				return structureSweep(o, txds.KindRBTree, 4)
			},
		},
		Experiment{
			ID:    "tr-sortedlist",
			Title: "Sorted linked list throughput vs. threads (all distributions)",
			Paper: "§4.2/§4.4 tech-report companion",
			Run: func(o Options) ([]*Table, error) {
				return structureSweep(o, txds.KindSortedList, 4)
			},
		},
		Experiment{
			ID:    "tr-contention",
			Title: "Contention frequency (conflicts per committed transaction)",
			Paper: "§4.4 contention data",
			Run:   runContention,
		},
		Experiment{
			ID:    "tr-balance",
			Title: "Per-worker load imbalance by scheduler and distribution",
			Paper: "§3.2/§4.4 load-balance claims",
			Run:   runBalance,
		},
		Experiment{
			ID:    "ablation-threshold",
			Title: "Adaptive sample-threshold sweep (exponential keys)",
			Paper: "§3.2 sample-size analysis (ablation)",
			Run:   runThresholdAblation,
		},
		Experiment{
			ID:    "ablation-steal",
			Title: "Work stealing under fixed partitioning with skewed keys",
			Paper: "§2 load-balancing discussion (ablation)",
			Run:   runStealAblation,
		},
		Experiment{
			ID:    "ablation-readapt",
			Title: "One-shot adaptation vs. re-adaptation under key drift",
			Paper: "§3.2 extension (ablation)",
			Run:   runReAdaptAblation,
		},
		Experiment{
			ID:    "ablation-queue",
			Title: "Task-queue implementation comparison (real executor)",
			Paper: "§4.1 ConcurrentLinkedQueue choice (ablation)",
			Run:   runQueueAblation,
		},
		Experiment{
			ID:    "ablation-cm",
			Title: "Contention manager comparison on the real STM",
			Paper: "§4.3 Polka choice (ablation)",
			Run:   runCMAblation,
		},
		Experiment{
			ID:    "ablation-sortbatch",
			Title: "Worker-buffer key ordering (real executor)",
			Paper: "§2 buffer-reordering capability (ablation)",
			Run:   runSortBatchAblation,
		},
		Experiment{
			ID:    "open-submit",
			Title: "Open submission: per-client Submit vs. batched SubmitAll (real executor)",
			Paper: "beyond the paper: open Executor API (ROADMAP)",
			Run:   runOpenSubmit,
		},
		Experiment{
			ID:    "sharding",
			Title: "Shared STM vs. per-worker sharded STM, gaussian keys (real executor)",
			Paper: "beyond the paper: sharded executor v2 (ROADMAP)",
			Run:   runSharding,
		},
		Experiment{
			ID:    "network",
			Title: "In-process submission vs. loopback wire protocol (kstmd front-end)",
			Paper: "beyond the paper: network front-end (ROADMAP)",
			Run:   runNetwork,
		},
		Experiment{
			ID:    "migration",
			Title: "Sharded re-adaptation under key drift: state migration off vs. on",
			Paper: "beyond the paper: epoch-fenced shard-state migration (ROADMAP)",
			Run:   runMigration,
		},
		Experiment{
			ID:    "batching",
			Title: "Per-task vs. batched submission, in-process and over the wire",
			Paper: "beyond the paper: hot-path batching overhaul (ROADMAP)",
			Run:   runBatching,
		},
		Experiment{
			ID:    "contention",
			Title: "Zipf-skewed counters: split-phase execution off vs. on",
			Paper: "beyond the paper: split-phase execution for contended keys (ROADMAP)",
			Run:   runContentionSplit,
		},
		Experiment{
			ID:    "wake-latency",
			Title: "Submit round trip against a parked vs. hot executor",
			Paper: "beyond the paper: event-driven dispatch (ROADMAP)",
			Run:   runWakeLatency,
		},
		Experiment{
			ID:    "faults",
			Title: "Goodput and visibility under injected transport faults (kstmd serving stack)",
			Paper: "beyond the paper: fault-tolerant serving (ROADMAP)",
			Run:   runFaults,
		},
	)
	return exps
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (run `kbench -list`)", id)
}

// simPoint runs one simulator configuration Runs times and returns mean
// throughput plus the last run's detail.
func simPoint(o Options, p sim.Params) (float64, sim.Result, error) {
	var xs []float64
	var last sim.Result
	for i := 0; i < max(1, o.Runs); i++ {
		p.Seed = o.Seed + uint64(i)
		if o.DurationCycles > 0 {
			p.DurationCycles = o.DurationCycles
			p.WarmupCycles = o.DurationCycles * 2 / 5
		}
		r, err := sim.Run(p)
		if err != nil {
			return 0, sim.Result{}, err
		}
		xs = append(xs, r.Throughput())
		last = r
	}
	return stats.Summarize(xs).Mean, last, nil
}

// realPoint runs one real-executor configuration Runs times.
func realPoint(o Options, kind txds.Kind, distName string, sched core.SchedulerKind, workers, producers int) (float64, core.Result, error) {
	var xs []float64
	var last core.Result
	tasks := o.RealTasks
	if kind == txds.KindSortedList {
		// List operations are O(n); keep real-mode points tractable.
		tasks = min(tasks, 1500)
	}
	for i := 0; i < max(1, o.Runs); i++ {
		cfg, err := NewRealConfig(kind, distName, sched, workers, producers, o.Seed+uint64(i))
		if err != nil {
			return 0, core.Result{}, err
		}
		pool, err := core.NewPool(cfg)
		if err != nil {
			return 0, core.Result{}, err
		}
		r, err := pool.RunCount(tasks)
		if err != nil {
			return 0, core.Result{}, err
		}
		xs = append(xs, r.Throughput())
		last = r
	}
	return stats.Summarize(xs).Mean, last, nil
}

// schedulerSweep builds one Figure-3-style table: threads on the x axis,
// one throughput series per scheduler.
func schedulerSweep(o Options, kind txds.Kind, distName string, producers int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("%s, %s keys (%s mode, %d producers, mean of %d)",
			kind, distName, o.Mode, producers, max(1, o.Runs)),
		Cols: []string{"threads", "roundrobin", "fixed", "adaptive"},
	}
	for _, workers := range o.Threads {
		row := []float64{float64(workers)}
		for _, sched := range core.SchedulerKinds() {
			var thr float64
			var err error
			switch o.Mode {
			case ModeReal:
				thr, _, err = realPoint(o, kind, distName, sched, workers, producers)
			default:
				p := sim.DefaultParams()
				p.Workers = workers
				p.Producers = producers
				p.Scheduler = sched
				p.Structure = kind
				p.Dist = distName
				thr, _, err = simPoint(o, p)
			}
			if err != nil {
				return nil, err
			}
			row = append(row, thr)
		}
		t.Rows = append(t.Rows, row)
	}
	if o.Mode == ModeReal {
		t.Notes = append(t.Notes, "real mode: scaling is only meaningful with >= threads hardware CPUs")
	}
	return t, nil
}

// structureSweep renders one table per distribution for a structure.
func structureSweep(o Options, kind txds.Kind, producers int) ([]*Table, error) {
	var out []*Table
	for _, d := range dist.Names() {
		t, err := schedulerSweep(o, kind, d, producers)
		if err != nil {
			return nil, err
		}
		t.ID = fmt.Sprintf("tr-%s-%s", kind, d)
		out = append(out, t)
	}
	return out, nil
}

// runFig4 compares bare looping threads against the executor on trivial
// transactions, with the paper's six producers.
func runFig4(o Options) ([]*Table, error) {
	t := &Table{
		ID:    "fig4-overhead",
		Title: fmt.Sprintf("Trivial transactions: no executor vs. executor (6 producers, %s mode)", o.Mode),
		Cols:  []string{"threads", "noexecutor", "executor", "ratio"},
	}
	for _, workers := range o.Threads {
		var bare, exec float64
		switch o.Mode {
		case ModeReal:
			bare1, _, err := realFig4Point(o, workers, true)
			if err != nil {
				return nil, err
			}
			exec1, _, err := realFig4Point(o, workers, false)
			if err != nil {
				return nil, err
			}
			bare, exec = bare1, exec1
		default:
			p := sim.DefaultParams()
			p.Structure = sim.Empty
			p.Workers = workers
			p.NoExecutor = true
			var err error
			bare, _, err = simPoint(o, p)
			if err != nil {
				return nil, err
			}
			p.NoExecutor = false
			p.Producers = 6
			p.Scheduler = core.SchedRoundRobin
			exec, _, err = simPoint(o, p)
			if err != nil {
				return nil, err
			}
		}
		ratio := 0.0
		if exec > 0 {
			ratio = bare / exec
		}
		t.Rows = append(t.Rows, []float64{float64(workers), bare, exec, ratio})
	}
	t.Notes = append(t.Notes, "paper: executor roughly doubles trivial-transaction cost at 2 workers; ratio shrinks at higher counts")
	return []*Table{t}, nil
}

// realFig4Point measures trivial-transaction throughput on the real
// executor (or bare self-producing workers).
func realFig4Point(o Options, workers int, bare bool) (float64, core.Result, error) {
	var xs []float64
	var last core.Result
	for i := 0; i < max(1, o.Runs); i++ {
		s := stm.New()
		counter := stm.NewBox(uint64(0))
		cfg := core.Config{
			STM: s,
			Workload: core.WorkloadFunc(func(th *stm.Thread, t core.Task) (any, error) {
				// A minimal but real transaction, like the paper's
				// "simple transactional executor" test.
				return nil, th.Atomic(func(tx *stm.Tx) error {
					v, err := counter.Write(tx)
					if err != nil {
						return err
					}
					*v++
					return nil
				})
			}),
			NewSource: func(p int) core.TaskSource {
				src := dist.NewUniform(o.Seed + uint64(i*31+p))
				return core.SourceFunc(func() core.Task {
					k, _ := dist.Split(src.Next())
					return core.Task{Key: uint64(k), Op: core.OpNoop, Arg: k}
				})
			},
			Workers:   workers,
			Producers: 6,
			Model:     core.ModelParallel,
		}
		if bare {
			cfg.Model = core.ModelNoExecutor
			cfg.Producers = 0
		} else {
			sched, err := core.NewScheduler(core.SchedRoundRobin, 0, dist.MaxKey, workers)
			if err != nil {
				return 0, core.Result{}, err
			}
			cfg.Scheduler = sched
		}
		pool, err := core.NewPool(cfg)
		if err != nil {
			return 0, core.Result{}, err
		}
		r, err := pool.RunCount(min(o.RealTasks, 20000))
		if err != nil {
			return 0, core.Result{}, err
		}
		xs = append(xs, r.Throughput())
		last = r
	}
	return stats.Summarize(xs).Mean, last, nil
}

// runContention reproduces the §4.4 contention-frequency observations at 8
// workers: conflicts per committed transaction for each structure,
// distribution and scheduler.
func runContention(o Options) ([]*Table, error) {
	t := &Table{
		ID:    "tr-contention",
		Title: "Conflicts per transaction at 8 workers (sim)",
		Cols:  []string{"structure", "dist", "roundrobin", "fixed", "adaptive"},
	}
	structIdx := map[txds.Kind]float64{txds.KindHashTable: 0, txds.KindRBTree: 1, txds.KindSortedList: 2}
	for _, kind := range txds.Kinds() {
		for di, d := range dist.Names() {
			row := []float64{structIdx[kind], float64(di)}
			for _, sched := range core.SchedulerKinds() {
				p := sim.DefaultParams()
				p.Workers = 8
				p.Scheduler = sched
				p.Structure = kind
				p.Dist = d
				_, last, err := simPoint(o, p)
				if err != nil {
					return nil, err
				}
				row = append(row, last.ContentionRate())
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"structure: 0=hashtable 1=rbtree 2=sortedlist; dist: 0=uniform 1=gaussian 2=exponential",
		"paper: hashtable contention negligible (<1/100); rbtree and exponential list below 1/4; key partitioning reduces it further")
	return []*Table{t}, nil
}

// runBalance reproduces the load-balance analysis: per-scheduler imbalance
// at 8 workers for each distribution.
func runBalance(o Options) ([]*Table, error) {
	t := &Table{
		ID:    "tr-balance",
		Title: "Load imbalance (max worker share / ideal) at 8 workers, hash table (sim)",
		Cols:  []string{"dist", "roundrobin", "fixed", "adaptive"},
	}
	for di, d := range dist.Names() {
		row := []float64{float64(di)}
		for _, sched := range core.SchedulerKinds() {
			p := sim.DefaultParams()
			p.Workers = 8
			p.Scheduler = sched
			p.Dist = d
			_, last, err := simPoint(o, p)
			if err != nil {
				return nil, err
			}
			row = append(row, last.LoadImbalance())
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"dist: 0=uniform 1=gaussian 2=exponential",
		"paper: round robin balances perfectly; fixed suffers the modulo low-end excess (uniform) and collapses under skew; adaptive rebalances via uneven ranges")
	return []*Table{t}, nil
}

// runThresholdAblation sweeps the adaptive sample threshold under the
// harshest distribution.
func runThresholdAblation(o Options) ([]*Table, error) {
	t := &Table{
		ID:    "ablation-threshold",
		Title: "Adaptive threshold sweep, hash table, exponential keys, 8 workers (sim)",
		Cols:  []string{"threshold", "throughput", "imbalance"},
	}
	for _, th := range []int{100, 1000, 10000, 50000} {
		p := sim.DefaultParams()
		p.Workers = 8
		p.Scheduler = core.SchedAdaptive
		p.Dist = "exponential"
		p.Threshold = th
		thr, last, err := simPoint(o, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []float64{float64(th), thr, last.LoadImbalance()})
	}
	t.Notes = append(t.Notes, "paper's 10,000 gives 95% confidence of 99% CDF accuracy; smaller thresholds adapt sooner but on noisier estimates")
	return []*Table{t}, nil
}

// runStealAblation compares fixed partitioning with and without work
// stealing under skew.
func runStealAblation(o Options) ([]*Table, error) {
	t := &Table{
		ID:    "ablation-steal",
		Title: "Fixed scheduler, exponential keys: work stealing off vs. on (sim)",
		Cols:  []string{"threads", "nosteal", "steal", "adaptive"},
	}
	for _, workers := range o.Threads {
		p := sim.DefaultParams()
		p.Workers = workers
		p.Scheduler = core.SchedFixed
		p.Dist = "exponential"
		off, _, err := simPoint(o, p)
		if err != nil {
			return nil, err
		}
		p.WorkSteal = true
		on, _, err := simPoint(o, p)
		if err != nil {
			return nil, err
		}
		p.WorkSteal = false
		p.Scheduler = core.SchedAdaptive
		ad, _, err := simPoint(o, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []float64{float64(workers), off, on, ad})
	}
	t.Notes = append(t.Notes, "stealing recovers throughput but sacrifices the locality that key partitioning bought; adaptive keeps both")
	return []*Table{t}, nil
}

// runReAdaptAblation compares one-shot adaptation against periodic
// re-adaptation when the key distribution drifts mid-run.
func runReAdaptAblation(o Options) ([]*Table, error) {
	t := &Table{
		ID:    "ablation-readapt",
		Title: "Drifting keys: one-shot adaptation vs. re-adaptation, 8 workers (sim)",
		Cols:  []string{"mode", "throughput", "imbalance"},
	}
	for i, re := range []bool{false, true} {
		p := sim.DefaultParams()
		p.Workers = 8
		p.Scheduler = core.SchedAdaptive
		p.Dist = "drift"
		p.ReAdapt = re
		thr, last, err := simPoint(o, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []float64{float64(i), thr, last.LoadImbalance()})
	}
	t.Notes = append(t.Notes,
		"mode: 0=adapt once (paper) 1=re-adapt every window (extension)",
		"the drift source moves its key mass mid-run; one-shot partitions go stale")
	return []*Table{t}, nil
}

// runQueueAblation compares queue implementations on the real executor.
func runQueueAblation(o Options) ([]*Table, error) {
	t := &Table{
		ID:    "ablation-queue",
		Title: "Queue implementations, real executor, hash table, uniform keys",
		Cols:  []string{"kind", "throughput"},
	}
	for i, k := range queue.Kinds() {
		var xs []float64
		for r := 0; r < max(1, o.Runs); r++ {
			cfg, err := NewRealConfig(txds.KindHashTable, "uniform", core.SchedAdaptive, 2, 2, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			cfg.QueueKind = k
			pool, err := core.NewPool(cfg)
			if err != nil {
				return nil, err
			}
			res, err := pool.RunCount(min(o.RealTasks, 20000))
			if err != nil {
				return nil, err
			}
			xs = append(xs, res.Throughput())
		}
		t.Rows = append(t.Rows, []float64{float64(i), stats.Summarize(xs).Mean})
	}
	t.Notes = append(t.Notes, "kind: 0=mscq (paper's ConcurrentLinkedQueue) 1=mutex ring 2=channel")
	return []*Table{t}, nil
}

// runCMAblation compares contention managers on the real STM under forced
// contention (a small hash table).
func runCMAblation(o Options) ([]*Table, error) {
	t := &Table{
		ID:    "ablation-cm",
		Title: "Contention managers, real STM, 31-bucket hash table, 4 workers",
		Cols:  []string{"manager", "throughput", "aborts_per_commit"},
	}
	for i, m := range stm.Managers() {
		var thr, aborts []float64
		for r := 0; r < max(1, o.Runs); r++ {
			s := stm.New(stm.WithContentionManager(m.New))
			set := txds.NewHashTable(31)
			sched, err := core.NewScheduler(core.SchedRoundRobin, 0, 30, 4)
			if err != nil {
				return nil, err
			}
			cfg := core.Config{
				STM:      s,
				Workload: NewDictWorkload(set),
				NewSource: func(p int) core.TaskSource {
					src := dist.NewUniform(o.Seed + uint64(r*17+p))
					return NewDictSource(src, func(k uint32) uint64 { return uint64(k % 31) })
				},
				Workers:   4,
				Producers: 2,
				Model:     core.ModelParallel,
				Scheduler: sched,
			}
			pool, err := core.NewPool(cfg)
			if err != nil {
				return nil, err
			}
			res, err := pool.RunCount(min(o.RealTasks, 10000))
			if err != nil {
				return nil, err
			}
			thr = append(thr, res.Throughput())
			if res.STM.Commits > 0 {
				aborts = append(aborts, float64(res.STM.Aborts())/float64(res.STM.Commits))
			} else {
				aborts = append(aborts, 0)
			}
		}
		t.Rows = append(t.Rows, []float64{float64(i), stats.Summarize(thr).Mean, stats.Summarize(aborts).Mean})
	}
	names := ""
	for i, m := range stm.Managers() {
		if i > 0 {
			names += " "
		}
		names += fmt.Sprintf("%d=%s", i, m.Name)
	}
	t.Notes = append(t.Notes, "manager: "+names)
	return []*Table{t}, nil
}

// runSortBatchAblation measures the §2 buffer-reordering capability the
// paper describes but does not use: workers drain batches and execute them
// in key order.
func runSortBatchAblation(o Options) ([]*Table, error) {
	t := &Table{
		ID:    "ablation-sortbatch",
		Title: "Sorted worker buffers, real executor, hash table, gaussian keys",
		Cols:  []string{"batch", "throughput"},
	}
	for _, batch := range []int{0, 16, 64, 256} {
		var xs []float64
		for r := 0; r < max(1, o.Runs); r++ {
			cfg, err := NewRealConfig(txds.KindHashTable, "gaussian", core.SchedAdaptive, 2, 2, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			cfg.SortBatch = batch
			pool, err := core.NewPool(cfg)
			if err != nil {
				return nil, err
			}
			res, err := pool.RunCount(min(o.RealTasks, 20000))
			if err != nil {
				return nil, err
			}
			xs = append(xs, res.Throughput())
		}
		t.Rows = append(t.Rows, []float64{float64(batch), stats.Summarize(xs).Mean})
	}
	t.Notes = append(t.Notes,
		"batch 0 = FIFO (the paper's configuration); larger batches trade dispatch latency for within-worker key locality",
		"wall-clock benefit requires real parallelism and cache pressure; the key-locality effect itself is asserted by core's unit tests")
	return []*Table{t}, nil
}

// runOpenSubmit measures the open Executor API under goroutine-per-client
// traffic: external clients call Submit (request/response) or SubmitAll
// (batched) against an adaptive executor, instead of the closed-world
// producer loops every paper experiment uses. The adaptive scheduler
// learns its PD-partition from the live submissions.
func runOpenSubmit(o Options) ([]*Table, error) {
	const workers, clients = 8, 16
	t := &Table{
		ID: "open-submit",
		Title: fmt.Sprintf("Open submission, hash table, adaptive, %d workers, %d clients (real)",
			workers, clients),
		Cols: []string{"dist", "submit", "submitall", "imbalance"},
	}
	for di, d := range dist.Names() {
		var syncThr, batchThr, imb []float64
		for r := 0; r < max(1, o.Runs); r++ {
			thr1, im, err := openSubmitPoint(o, d, workers, clients, false, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			thr2, _, err := openSubmitPoint(o, d, workers, clients, true, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			syncThr = append(syncThr, thr1)
			batchThr = append(batchThr, thr2)
			imb = append(imb, im)
		}
		t.Rows = append(t.Rows, []float64{float64(di),
			stats.Summarize(syncThr).Mean, stats.Summarize(batchThr).Mean, stats.Summarize(imb).Mean})
	}
	t.Notes = append(t.Notes,
		"dist: 0=uniform 1=gaussian 2=exponential",
		"submit: one synchronous Submit per client request; submitall: clients batch and await futures",
		"imbalance is per-worker completion balance under the live-learned adaptive partition")
	return []*Table{t}, nil
}

// openSubmitPoint runs one open-submission configuration and returns
// throughput plus the final per-worker load imbalance.
func openSubmitPoint(o Options, distName string, workers, clients int, batched bool, seed uint64) (thr, imb float64, err error) {
	// A reduced sample threshold lets adaptation land within CI-sized
	// traffic; production callers keep the paper's 10,000 default.
	ex, keyFn, err := NewOpenExecutor(txds.KindHashTable, core.SchedAdaptive, workers, core.WithThreshold(1000))
	if err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		return 0, 0, err
	}
	per := max(1, o.RealTasks/clients)
	makeTask := func(src dist.Source) core.Task {
		k, insert := dist.Split(src.Next())
		op := core.OpDelete
		if insert {
			op = core.OpInsert
		}
		return core.Task{Key: keyFn(k), Op: op, Arg: k}
	}
	errCh := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src, err := dist.ByName(distName, seed+uint64(c)*0x9e37)
			if err != nil {
				errCh <- err
				return
			}
			if batched {
				tasks := make([]core.Task, per)
				for i := range tasks {
					tasks[i] = makeTask(src)
				}
				futs, err := ex.SubmitAll(ctx, tasks)
				if err != nil {
					errCh <- err
					return
				}
				for _, f := range futs {
					if _, err := f.Wait(ctx); err != nil {
						errCh <- err
						return
					}
				}
				return
			}
			for i := 0; i < per; i++ {
				if _, err := ex.Submit(ctx, makeTask(src)); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := ex.Drain(); err != nil {
		return 0, 0, err
	}
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	st := ex.Stats()
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0, st.LoadImbalance(), nil
	}
	return float64(st.Completed) / elapsed.Seconds(), st.LoadImbalance(), nil
}

// runSharding is the executor-v2 acceptance experiment: the Gaussian
// adaptive hash-table workload at 8 workers, shared single-STM mode against
// ShardPerWorker, reporting throughput and the wait/service latency
// percentiles ExecStats now carries. Sharding removes the cross-worker STM
// entirely (each worker commits into a private instance), so its throughput
// should meet or beat shared mode once the adaptive partition has localized
// the key ranges.
func runSharding(o Options) ([]*Table, error) {
	const workers, clients = 8, 16
	t := &Table{
		ID: "sharding",
		Title: fmt.Sprintf("Shared vs. per-worker STM, hash table, gaussian, adaptive, %d workers, %d clients (real)",
			workers, clients),
		Cols: []string{"mode", "throughput", "wait_p50_us", "wait_p95_us", "wait_p99_us", "svc_p50_us", "svc_p95_us", "svc_p99_us"},
	}
	for mi, mode := range []core.ShardMode{core.ShardShared, core.ShardPerWorker} {
		var thr []float64
		var last core.ExecStats
		// One unrecorded warmup run per mode: heap growth and scheduler
		// ramp-up otherwise bill the first-measured mode.
		if _, _, err := ShardingPoint(o, "gaussian", mode, workers, clients, o.Seed); err != nil {
			return nil, err
		}
		for r := 0; r < max(1, o.Runs); r++ {
			st, elapsed, err := ShardingPoint(o, "gaussian", mode, workers, clients, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			if elapsed > 0 {
				thr = append(thr, float64(st.Completed)/elapsed.Seconds())
			}
			last = st
		}
		us := func(d time.Duration) float64 { return float64(d.Microseconds()) }
		t.Rows = append(t.Rows, []float64{float64(mi), stats.Summarize(thr).Mean,
			us(last.Wait.P50), us(last.Wait.P95), us(last.Wait.P99),
			us(last.Service.P50), us(last.Service.P95), us(last.Service.P99)})
	}
	t.Notes = append(t.Notes,
		"mode: 0=shared (one STM for all workers) 1=perworker (private STM + dictionary per worker)",
		"latency columns are the final run's ExecStats percentiles in microseconds",
		"sharded mode removes cross-worker STM conflicts by construction; the adaptive PD-partition already sends each key range to one worker")
	return []*Table{t}, nil
}

// ShardingPoint runs one shared-vs-sharded configuration under open
// goroutine-per-client submission and returns the final ExecStats and the
// load phase's wall-clock. Exported for the harness tests and kbench -json.
func ShardingPoint(o Options, distName string, mode core.ShardMode, workers, clients int, seed uint64) (core.ExecStats, time.Duration, error) {
	var (
		ex    *core.Executor
		keyFn func(uint32) uint64
		err   error
	)
	// A reduced sample threshold lets adaptation land within CI-sized
	// traffic; production callers keep the paper's 10,000 default.
	if mode == core.ShardPerWorker {
		ex, keyFn, err = NewShardedExecutor(txds.KindHashTable, core.SchedAdaptive, workers, core.WithThreshold(1000))
	} else {
		ex, keyFn, err = NewOpenExecutor(txds.KindHashTable, core.SchedAdaptive, workers, core.WithThreshold(1000))
	}
	if err != nil {
		return core.ExecStats{}, 0, err
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		return core.ExecStats{}, 0, err
	}
	per := max(1, o.RealTasks/clients)
	errCh := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src, err := dist.ByName(distName, seed+uint64(c)*0x9e37)
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < per; i++ {
				k, insert := dist.Split(src.Next())
				op := core.OpDelete
				if insert {
					op = core.OpInsert
				}
				if _, err := ex.Submit(ctx, core.Task{Key: keyFn(k), Op: op, Arg: k}); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := ex.Drain(); err != nil {
		return core.ExecStats{}, 0, err
	}
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return core.ExecStats{}, 0, err
	default:
	}
	return ex.Stats(), elapsed, nil
}

// runMigration is the tentpole acceptance experiment: ShardPerWorker with
// re-adaptation under a drifting Gaussian key stream, with shard-state
// migration off (the DESIGN.md §4.1 visibility trade) and on (epoch-fenced
// hand-off). Clients insert fresh keys and re-look-up their own earlier
// inserts; since nothing ever deletes, every lookup miss is a visibility
// error — a key stranded in a shard its range was re-routed away from.
// Wait percentiles double as the pause measure: a parked task's wait
// includes its time on the fence's hold queue.
func runMigration(o Options) ([]*Table, error) {
	const workers, clients = 8, 8
	t := &Table{
		ID: "migration",
		Title: fmt.Sprintf("Sharded re-adaptation, drifting gaussian, migration off vs. on, %d workers, %d clients (real)",
			workers, clients),
		Cols: []string{"mode", "throughput", "vis_errors", "epochs", "keys_moved", "pause_ms",
			"wait_p50_us", "wait_p95_us", "wait_p99_us"},
	}
	for mi, mode := range []core.MigrationMode{core.MigrateOff, core.MigrateOnRepartition} {
		var thr, errs []float64
		var last core.ExecStats
		// One unrecorded warmup run per mode, mirroring runSharding.
		if _, _, _, err := MigrationPoint(o, mode, workers, clients, o.Seed); err != nil {
			return nil, err
		}
		for r := 0; r < max(1, o.Runs); r++ {
			st, vis, elapsed, err := MigrationPoint(o, mode, workers, clients, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			if elapsed > 0 {
				thr = append(thr, float64(st.Completed)/elapsed.Seconds())
			}
			errs = append(errs, float64(vis))
			last = st
		}
		us := func(d time.Duration) float64 { return float64(d.Microseconds()) }
		epochs := float64(last.Migrations.Epochs)
		if mode == core.MigrateOff {
			// Off mode still re-partitions; count the scheduler's epochs so
			// the A/B shows both sides adapting.
			epochs = float64(last.SchedulerEpochs)
		}
		t.Rows = append(t.Rows, []float64{float64(mi), stats.Summarize(thr).Mean,
			stats.Summarize(errs).Mean, epochs, float64(last.Migrations.KeysMoved),
			float64(last.Migrations.PauseNs) / 1e6,
			us(last.Wait.P50), us(last.Wait.P95), us(last.Wait.P99)})
	}
	t.Notes = append(t.Notes,
		"mode: 0=MigrateOff (re-routes ranges without their state — the §4.1 trade) 1=MigrateOnRepartition (epoch-fenced hand-off)",
		"vis_errors: lookups of a client's own earlier insert that missed (mean per run); nothing deletes, so every miss is a stranded key",
		"epochs/keys_moved/pause_ms are the final run's ExecStats.Migrations (off mode reports scheduler re-partitions as epochs)",
		"wait percentiles include hold-queue time for fenced tasks; only moved ranges pause")
	return []*Table{t}, nil
}

// MigrationPoint runs one migration-experiment configuration and returns the
// final ExecStats, the visibility-error count, and the load wall-clock.
// Exported for the harness tests and kbench -json.
func MigrationPoint(o Options, mode core.MigrationMode, workers, clients int, seed uint64) (core.ExecStats, uint64, time.Duration, error) {
	// A low threshold gives several re-adaptation windows within CI-sized
	// traffic; production callers keep the paper's 10,000 default.
	const threshold = 1500
	ex, keyFn, err := NewMigratableShardedExecutor(txds.KindHashTable, workers, mode,
		core.WithThreshold(threshold), core.WithReAdaptation())
	if err != nil {
		return core.ExecStats{}, 0, 0, err
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		return core.ExecStats{}, 0, 0, err
	}
	total := max(clients, o.RealTasks)
	per := total / clients
	// The key stream drifts as a function of GLOBAL progress: a Gaussian
	// whose mean slides from 1/8 to 7/8 of the key space over the run, so
	// every adaptation window sees a different mass profile and the learned
	// partitions genuinely move.
	var progress atomic.Uint64
	const (
		keyStart, keyEnd = 8192.0, 57344.0
		keyStddev        = 3000.0
	)
	var visErrors atomic.Uint64
	errCh := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(seed + uint64(c)*0x9e37)
			var inserted []uint32
			for i := 0; i < per; i++ {
				frac := float64(progress.Add(1)) / float64(total)
				mean := keyStart + frac*(keyEnd-keyStart)
				kf := mean + keyStddev*r.NormFloat64()
				if kf < 0 {
					kf = 0
				}
				if kf > dist.MaxKey {
					kf = dist.MaxKey
				}
				k := uint32(kf)
				if _, err := ex.Submit(ctx, core.Task{Key: keyFn(k), Op: core.OpInsert, Arg: k}); err != nil {
					errCh <- err
					return
				}
				inserted = append(inserted, k)
				if i%4 == 3 {
					// Re-read one of this client's own earlier inserts.
					q := inserted[r.Intn(len(inserted))]
					res, err := ex.Submit(ctx, core.Task{Key: keyFn(q), Op: core.OpLookup, Arg: q})
					if err != nil {
						errCh <- err
						return
					}
					if found, _ := res.Value.(bool); !found {
						visErrors.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if err := ex.Drain(); err != nil {
		return core.ExecStats{}, 0, 0, err
	}
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return core.ExecStats{}, 0, 0, err
	default:
	}
	if err := ex.MigrationErr(); err != nil {
		return core.ExecStats{}, 0, 0, err
	}
	return ex.Stats(), visErrors.Load(), elapsed, nil
}

// RunAll executes every experiment and returns the tables in registry
// order; it is what `kbench -experiment all` uses.
func RunAll(o Options) ([]*Table, error) {
	var out []*Table
	for _, e := range Experiments() {
		start := time.Now()
		tables, err := e.Run(o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			t.Notes = append(t.Notes, fmt.Sprintf("generated in %v", time.Since(start).Round(time.Millisecond)))
		}
		out = append(out, tables...)
	}
	return out, nil
}
