package harness

import (
	"testing"

	"kstm/internal/txds"
)

// TestNetworkPointLoopback runs one loopback configuration at a tiny scale:
// every submitted task must come back over the wire and the client-observed
// RTT must dominate the executor-side wait+service times.
func TestNetworkPointLoopback(t *testing.T) {
	o := fastOptions()
	o.RealTasks = 400
	res, err := NetworkPoint(o, NetLoopback, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed == 0 || res.Stats.Cancelled != 0 {
		t.Fatalf("Completed/Cancelled = %d/%d, want all completed",
			res.Stats.Completed, res.Stats.Cancelled)
	}
	if res.RTT.Count != res.Stats.Completed {
		t.Errorf("client RTT observations %d != completed %d", res.RTT.Count, res.Stats.Completed)
	}
	if res.RTT.P50 < res.Stats.Service.P50 {
		t.Errorf("RTT p50 %v below server-side service p50 %v", res.RTT.P50, res.Stats.Service.P50)
	}
	if res.Throughput() <= 0 {
		t.Errorf("non-positive throughput")
	}
}

// TestNetworkExperiment runs the registered experiment end to end in both
// modes and sanity-checks the table shape.
func TestNetworkExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("two warmups + two modes over TCP; skipped under -short")
	}
	e, err := ByID("network")
	if err != nil {
		t.Fatal(err)
	}
	o := fastOptions()
	o.RealTasks = 800
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (inproc, loopback)", len(tb.Rows))
	}
	thr, err := tb.Series("throughput")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range thr {
		if v <= 0 {
			t.Errorf("mode %d: non-positive throughput %v", i, v)
		}
	}
	rtt, err := tb.Series("rtt_p50_us")
	if err != nil {
		t.Fatal(err)
	}
	if rtt[1] < rtt[0] {
		t.Logf("loopback rtt p50 %vus below inproc %vus (unexpected but not fatal)", rtt[1], rtt[0])
	}
}

// TestDictFactoryKinds guards the factory the network/sharding stacks build
// shards with.
func TestNetworkUsesSameKeySpace(t *testing.T) {
	// The network experiment routes by hash-bucket key; the factory's
	// prototype and NewOpenExecutor's key function must agree on the
	// bucket count so dispatch stays inside the scheduler's key range.
	ex, keyFn, err := NewOpenExecutor(txds.KindHashTable, "adaptive", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Stop()
	proto := txds.NewHashTable(0)
	for k := uint32(0); k < 1000; k += 37 {
		if got, want := keyFn(k), uint64(proto.Hash(k)); got != want {
			t.Fatalf("keyFn(%d) = %d, want %d", k, got, want)
		}
		if keyFn(k) >= uint64(proto.Buckets()) {
			t.Fatalf("key %d outside bucket space", k)
		}
	}
}
