package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/stm"
	"kstm/internal/txds"
)

// fastOptions keep harness tests quick: 1 run, short horizon, few points.
func fastOptions() Options {
	o := DefaultOptions()
	o.Runs = 1
	o.Threads = []int{2, 8}
	o.DurationCycles = 40_000_000
	o.RealTasks = 2000
	return o
}

func TestTableRenderAndSeries(t *testing.T) {
	tb := &Table{
		ID:    "demo",
		Title: "Demo",
		Cols:  []string{"x", "y"},
		Rows:  [][]float64{{1, 2.5}, {2, 3.25}},
		Notes: []string{"a note"},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "Demo", "x", "y", "2.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	tb.RenderCSV(&buf)
	if !strings.HasPrefix(buf.String(), "x,y\n1,2.5\n") {
		t.Errorf("csv = %q", buf.String())
	}
	ys, err := tb.Series("y")
	if err != nil || len(ys) != 2 || ys[1] != 3.25 {
		t.Fatalf("Series = %v, %v", ys, err)
	}
	if _, err := tb.Series("z"); err == nil {
		t.Error("Series(z) succeeded")
	}
}

func TestFormatCell(t *testing.T) {
	if formatCell(3) != "3" {
		t.Errorf("formatCell(3) = %q", formatCell(3))
	}
	if formatCell(3.14159) != "3.142" {
		t.Errorf("formatCell(pi) = %q", formatCell(3.14159))
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 10 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"fig3-uniform", "fig3-gaussian", "fig3-exponential", "fig4-overhead", "tr-contention"} {
		if !seen[id] {
			t.Errorf("missing required experiment %q", id)
		}
	}
	if _, err := ByID("fig3-uniform"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID(nope) succeeded")
	}
}

func TestFig3UniformShape(t *testing.T) {
	e, err := ByID("fig3-uniform")
	if err != nil {
		t.Fatal(err)
	}
	o := fastOptions()
	o.DurationCycles = 0 // default horizon: needed for warm caches
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("%d tables", len(tables))
	}
	tb := tables[0]
	rr, _ := tb.Series("roundrobin")
	ad, _ := tb.Series("adaptive")
	for i := range rr {
		if ad[i] <= rr[i] {
			t.Errorf("row %d: adaptive %.3g <= roundrobin %.3g", i, ad[i], rr[i])
		}
	}
}

func TestFig3ExponentialShape(t *testing.T) {
	e, err := ByID("fig3-exponential")
	if err != nil {
		t.Fatal(err)
	}
	o := fastOptions()
	o.DurationCycles = 0
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	fx, _ := tb.Series("fixed")
	ad, _ := tb.Series("adaptive")
	// Fixed flat: last point not much above first; adaptive clearly above
	// fixed at high worker counts.
	if fx[len(fx)-1] > fx[0]*1.4 {
		t.Errorf("fixed not flat under exponential: %v", fx)
	}
	if ad[len(ad)-1] < fx[len(fx)-1]*1.5 {
		t.Errorf("adaptive (%v) not well above fixed (%v) at high workers", ad, fx)
	}
}

func TestFig4Shape(t *testing.T) {
	e, _ := ByID("fig4-overhead")
	o := fastOptions()
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	ratios, _ := tb.Series("ratio")
	if ratios[0] < 1.2 {
		t.Errorf("overhead ratio at 2 threads = %.2f, want > 1.2", ratios[0])
	}
	if ratios[len(ratios)-1] > ratios[0] {
		t.Errorf("ratio did not shrink with threads: %v", ratios)
	}
}

func TestContentionExperiment(t *testing.T) {
	e, _ := ByID("tr-contention")
	o := fastOptions()
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 9 { // 3 structures x 3 distributions
		t.Fatalf("%d rows", len(tb.Rows))
	}
	rr, _ := tb.Series("roundrobin")
	// Hash-table rows (structure index 0) must show negligible contention.
	for i, row := range tb.Rows {
		if row[0] == 0 && rr[i] > 0.02 {
			t.Errorf("hashtable contention %.4f > 0.02 (row %d)", rr[i], i)
		}
	}
}

func TestBalanceExperiment(t *testing.T) {
	e, _ := ByID("tr-balance")
	tables, err := e.Run(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	fx, _ := tb.Series("fixed")
	ad, _ := tb.Series("adaptive")
	// Exponential row (index 2): fixed severely imbalanced, adaptive not.
	if fx[2] < 3 {
		t.Errorf("fixed imbalance under exponential = %.2f", fx[2])
	}
	if ad[2] > 2 {
		t.Errorf("adaptive imbalance under exponential = %.2f", ad[2])
	}
}

func TestThresholdAblation(t *testing.T) {
	e, _ := ByID("ablation-threshold")
	tables, err := e.Run(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 4 {
		t.Fatalf("rows = %d", len(tables[0].Rows))
	}
}

func TestStealAblation(t *testing.T) {
	e, _ := ByID("ablation-steal")
	o := fastOptions()
	o.Threads = []int{8}
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	off, _ := tb.Series("nosteal")
	on, _ := tb.Series("steal")
	if on[0] <= off[0] {
		t.Errorf("stealing did not help fixed under skew: %v vs %v", on[0], off[0])
	}
}

func TestReAdaptAblation(t *testing.T) {
	e, _ := ByID("ablation-readapt")
	tables, err := e.Run(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	imb, _ := tb.Series("imbalance")
	if imb[1] >= imb[0] {
		t.Errorf("re-adaptation (%.2f) not better balanced than one-shot (%.2f) under drift", imb[1], imb[0])
	}
}

func TestQueueAblationReal(t *testing.T) {
	e, _ := ByID("ablation-queue")
	tables, err := e.Run(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	thr, _ := tables[0].Series("throughput")
	for i, v := range thr {
		if v <= 0 {
			t.Errorf("queue kind %d throughput %v", i, v)
		}
	}
}

func TestSortBatchAblationReal(t *testing.T) {
	e, _ := ByID("ablation-sortbatch")
	o := fastOptions()
	o.RealTasks = 1500
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	thr, _ := tables[0].Series("throughput")
	if len(thr) != 4 {
		t.Fatalf("rows = %d", len(thr))
	}
	for i, v := range thr {
		if v <= 0 {
			t.Errorf("batch row %d throughput %v", i, v)
		}
	}
}

func TestCMAblationReal(t *testing.T) {
	e, _ := ByID("ablation-cm")
	o := fastOptions()
	o.RealTasks = 1000
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	thr, _ := tables[0].Series("throughput")
	if len(thr) < 10 {
		t.Fatalf("only %d managers measured", len(thr))
	}
}

func TestRealModeFig3Point(t *testing.T) {
	// Real mode end-to-end: hash table on the actual STM through the
	// executor (scaling is not asserted — single-CPU hosts).
	o := fastOptions()
	o.Mode = ModeReal
	o.Threads = []int{2}
	tb, err := schedulerSweep(o, txds.KindHashTable, "uniform", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"roundrobin", "fixed", "adaptive"} {
		s, err := tb.Series(col)
		if err != nil {
			t.Fatal(err)
		}
		if s[0] <= 0 {
			t.Errorf("%s real throughput = %v", col, s[0])
		}
	}
}

func TestRealModeRBTreePoint(t *testing.T) {
	o := fastOptions()
	o.Mode = ModeReal
	o.RealTasks = 800
	thr, res, err := realPoint(o, txds.KindRBTree, "gaussian", core.SchedAdaptive, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 || res.Completed == 0 {
		t.Fatalf("rbtree real: thr=%v res=%+v", thr, res)
	}
}

func TestRealModeSortedListCapped(t *testing.T) {
	o := fastOptions()
	o.Mode = ModeReal
	o.RealTasks = 100000 // should be capped internally for the list
	thr, _, err := realPoint(o, txds.KindSortedList, "exponential", core.SchedRoundRobin, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 {
		t.Fatal("list real throughput <= 0")
	}
}

func TestDictSourceSplitsOps(t *testing.T) {
	src := NewDictSource(dist.NewUniform(1), nil)
	inserts, deletes := 0, 0
	for i := 0; i < 1000; i++ {
		task := src.Next()
		switch task.Op {
		case core.OpInsert:
			inserts++
		case core.OpDelete:
			deletes++
		default:
			t.Fatalf("unexpected op %v", task.Op)
		}
		if task.Key != uint64(task.Arg) {
			t.Fatal("nil keyFn should use identity")
		}
	}
	if inserts == 0 || deletes == 0 {
		t.Fatalf("ops not mixed: %d/%d", inserts, deletes)
	}
}

func TestNewRealConfigHashKeyFn(t *testing.T) {
	cfg, err := NewRealConfig(txds.KindHashTable, "uniform", core.SchedFixed, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := cfg.NewSource(0)
	for i := 0; i < 100; i++ {
		task := src.Next()
		if task.Key >= txds.DefaultBuckets {
			t.Fatalf("hash txn key %d outside bucket space", task.Key)
		}
	}
	if _, err := NewRealConfig(txds.KindHashTable, "pareto", core.SchedFixed, 2, 2, 1); err == nil {
		t.Error("bad dist accepted")
	}
	if _, err := NewRealConfig("btree", "uniform", core.SchedFixed, 2, 2, 1); err == nil {
		t.Error("bad structure accepted")
	}
}

func TestDictWorkloadOps(t *testing.T) {
	set := txds.NewHashTable(16)
	w := NewDictWorkload(set)
	th := stm.New().NewThread()
	// Each op returns its logical result as the typed task value.
	want := map[core.Op]any{
		core.OpInsert: true, // was absent
		core.OpLookup: true, // present now
		core.OpDelete: true, // was present
		core.OpNoop:   nil,
	}
	for _, op := range []core.Op{core.OpInsert, core.OpLookup, core.OpDelete, core.OpNoop} {
		v, err := w.Execute(th, core.Task{Op: op, Arg: 3})
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		if v != want[op] {
			t.Errorf("op %v value = %v, want %v", op, v, want[op])
		}
	}
	// Lookup after delete reports the miss.
	if v, err := w.Execute(th, core.Task{Op: core.OpLookup, Arg: 3}); err != nil || v != false {
		t.Errorf("lookup after delete = (%v, %v), want (false, nil)", v, err)
	}
	if _, err := w.Execute(th, core.Task{Op: core.Op(99)}); err == nil {
		t.Error("unknown op accepted")
	}
	if w.Set() != set {
		t.Error("Set() does not return the wrapped dictionary")
	}
}

func TestOpenSubmitExperiment(t *testing.T) {
	e, err := ByID("open-submit")
	if err != nil {
		t.Fatal(err)
	}
	o := fastOptions()
	o.RealTasks = 1600
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	sync1, _ := tb.Series("submit")
	batch, _ := tb.Series("submitall")
	for i := range sync1 {
		if sync1[i] <= 0 || batch[i] <= 0 {
			t.Errorf("dist %d: non-positive throughput (%v, %v)", i, sync1[i], batch[i])
		}
	}
}

func TestShardingExperiment(t *testing.T) {
	e, err := ByID("sharding")
	if err != nil {
		t.Fatal(err)
	}
	o := fastOptions()
	o.RealTasks = 1600
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (shared, perworker)", len(tb.Rows))
	}
	thr, err := tb.Series("throughput")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range thr {
		if v <= 0 {
			t.Errorf("mode %d: non-positive throughput %v", i, v)
		}
	}
	for _, col := range []string{"wait_p99_us", "svc_p50_us", "svc_p99_us"} {
		s, err := tb.Series(col)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range s {
			if v < 0 {
				t.Errorf("mode %d: negative %s %v", i, col, v)
			}
		}
	}
	t.Logf("sharding table: shared=%.0f txn/s, perworker=%.0f txn/s", thr[0], thr[1])
}

// TestMigrationExperiment is the tentpole acceptance in test form: under
// ShardPerWorker + re-adaptation on a drifting key stream, the migration
// point must report ZERO visibility errors with MigrateOnRepartition while
// completing at least one hand-off epoch — and the MigrateOff side of the
// A/B must still run (its error count is workload-timing dependent, so only
// the migrated side is asserted exactly; the deterministic off-mode
// reproducer lives in internal/core).
func TestMigrationExperiment(t *testing.T) {
	o := fastOptions()
	o.RealTasks = 8000 // enough for several 1500-sample re-adaptation windows
	st, vis, elapsed, err := MigrationPoint(o, core.MigrateOnRepartition, 4, 4, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if vis != 0 {
		t.Errorf("MigrateOnRepartition: %d visibility errors, want 0", vis)
	}
	if st.Migrations.Epochs == 0 {
		t.Error("no migration epoch completed — the drift did not force a re-partition")
	}
	if st.Migrations.Epochs > 0 && st.Migrations.KeysMoved == 0 {
		t.Error("migration epochs completed without moving keys")
	}
	if elapsed <= 0 || st.Completed == 0 {
		t.Errorf("degenerate run: completed=%d elapsed=%v", st.Completed, elapsed)
	}
	// The off side of the A/B stays runnable on the identical layout.
	stOff, _, _, err := MigrationPoint(o, core.MigrateOff, 4, 4, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if stOff.Migrations.Epochs != 0 || stOff.Migrations.KeysMoved != 0 {
		t.Errorf("MigrateOff reported migrations: %+v", stOff.Migrations)
	}
	if stOff.SchedulerEpochs == 0 {
		t.Error("MigrateOff: scheduler never re-partitioned")
	}
}

// TestKeyRangeDictFactoryAliasing pins the kstmd store pairing: with
// dict-key dispatch (Task.Key == Arg), hand-off ranges are dictionary-key
// ranges — a hash-table store must move ONLY the keys in the range, not
// every key aliased into the same buckets (k and k+30031 share a bucket).
func TestKeyRangeDictFactoryAliasing(t *testing.T) {
	f := NewKeyRangeDictFactory(txds.KindHashTable)
	f.NewShard(0)
	f.NewShard(1)
	src, dst := f.Store(0), f.Store(1)
	if src == nil || dst == nil {
		t.Fatal("key-range factory returned nil stores")
	}
	s := stm.New()
	th := s.NewThread()
	table := f.Shard(0).(*txds.HashTable)
	alias := uint32(table.Buckets()) + 7 // same bucket as key 7
	for _, k := range []uint32{7, alias} {
		if _, err := table.Insert(th, k); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := src.ExtractRange(th, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != 7 {
		t.Fatalf("ExtractRange(0,1000) = %v, want [7] (alias %d must stay)", keys, alias)
	}
	if err := dst.InstallKeys(th, keys); err != nil {
		t.Fatal(err)
	}
	if found, err := table.Contains(th, alias); err != nil || !found {
		t.Fatalf("aliased key %d lost from the source shard: %v %v", alias, found, err)
	}
	// The structure-space factory keeps bucket semantics for the harness
	// executors (keyFn = Hash): the same range moves the whole bucket.
	g := NewMigratableDictFactory(txds.KindHashTable)
	g.NewShard(0)
	gt := g.Shard(0).(*txds.HashTable)
	for _, k := range []uint32{7, alias} {
		if _, err := gt.Insert(th, k); err != nil {
			t.Fatal(err)
		}
	}
	bkeys, err := g.Store(0).ExtractRange(th, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(bkeys) != 2 {
		t.Fatalf("bucket-space ExtractRange(0,1000) = %v, want both aliases", bkeys)
	}
}

// TestShardedThroughputNotWorse is the acceptance guard in test form:
// ShardPerWorker must not fall meaningfully below shared-mode throughput on
// the Gaussian adaptive workload at 8 workers. The hard "≥" demonstration
// lives in the kbench sharding experiment (see BENCH_smoke.json in CI); the
// margin here absorbs single-host scheduling noise so tier-1 stays stable.
func TestShardedThroughputNotWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("perf-ratio comparison is meaningless under -short/race instrumentation")
	}
	o := fastOptions()
	o.RealTasks = 6000
	best := func(mode core.ShardMode) float64 {
		var b float64
		for r := 0; r < 3; r++ {
			st, elapsed, err := ShardingPoint(o, "gaussian", mode, 8, 16, o.Seed+uint64(r))
			if err != nil {
				t.Fatal(err)
			}
			if thr := float64(st.Completed) / elapsed.Seconds(); thr > b {
				b = thr
			}
		}
		return b
	}
	shared := best(core.ShardShared)
	sharded := best(core.ShardPerWorker)
	t.Logf("shared %.0f txn/s, sharded %.0f txn/s (x%.2f)", shared, sharded, sharded/shared)
	// Regression guard only: on a loaded or single-core host the two modes
	// are expected to tie, so the margin is generous. The ≥ demonstration
	// lives in the kbench `sharding` experiment on real multicore hardware.
	if sharded < shared*0.5 {
		t.Errorf("sharded throughput %.0f fell below 0.5x shared %.0f", sharded, shared)
	}
}

func TestNewShardedExecutorIsolation(t *testing.T) {
	ex, keyFn, err := NewShardedExecutor(txds.KindHashTable, core.SchedFixed, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// One insert per fixed key range: each lands in its worker's shard.
	keys := []uint32{9, 29000}
	for _, k := range keys {
		v, err := ex.Submit(ctx, core.Task{Key: keyFn(k), Op: core.OpInsert, Arg: k})
		if err != nil || v.Value != true {
			t.Fatalf("insert %d = (%v, %v)", k, v.Value, err)
		}
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	if ex.NumShards() != 2 {
		t.Fatalf("NumShards = %d", ex.NumShards())
	}
	// Shard workloads are private DictWorkloads over distinct sets; each
	// saw exactly its own range's key.
	th0 := ex.ShardSTM(0).NewThread()
	th1 := ex.ShardSTM(1).NewThread()
	set0 := ex.ShardWorkload(0).(*DictWorkload).Set()
	set1 := ex.ShardWorkload(1).(*DictWorkload).Set()
	if set0 == set1 {
		t.Fatal("shards share a dictionary")
	}
	if found, _ := set0.Contains(th0, 9); !found {
		t.Error("shard 0 missing its key")
	}
	if found, _ := set0.Contains(th0, 29000); found {
		t.Error("shard 0 holds shard 1's key")
	}
	if found, _ := set1.Contains(th1, 29000); !found {
		t.Error("shard 1 missing its key")
	}
}

func TestNewOpenExecutorLifecycle(t *testing.T) {
	ex, keyFn, err := NewOpenExecutor(txds.KindHashTable, core.SchedAdaptive, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Hash-table transaction keys must live in bucket space.
	if k := keyFn(1 << 15); k >= txds.DefaultBuckets {
		t.Fatalf("keyFn(32768) = %d outside bucket space", k)
	}
	res, err := ex.Submit(context.Background(), core.Task{Key: keyFn(9), Op: core.OpInsert, Arg: 9})
	if err != nil || res.Err != nil {
		t.Fatalf("Submit = (%+v, %v)", res, err)
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := ex.Stats(); st.Completed != 1 || st.STM.Commits == 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, _, err := NewOpenExecutor("btree", core.SchedAdaptive, 2); err == nil {
		t.Error("bad structure accepted")
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	o := fastOptions()
	o.Threads = []int{2}
	o.RealTasks = 500
	tables, err := RunAll(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 12 {
		t.Fatalf("RunAll produced %d tables", len(tables))
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Render(&buf)
	}
	if buf.Len() == 0 {
		t.Fatal("no rendered output")
	}
}
