package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/stats"
	"kstm/internal/txds"
)

// runWakeLatency is the event-driven-dispatch acceptance experiment
// (DESIGN.md §5.4): the synchronous submit round trip against a PARKED
// executor versus a kept-hot one, on the real dictionary workload. Before
// the park/wake handshake, a task landing on a parked worker ate up to a
// full 100µs sleep quantum before its first poll; the parked series should
// now sit within a few µs of the hot baseline. Values are round trips per
// second (1e9 / median ns), so a latency regression reads as a DROP and the
// kbench -gate direction applies unchanged.
func runWakeLatency(o Options) ([]*Table, error) {
	const workers = 4
	t := &Table{
		ID: "wake-latency",
		Title: fmt.Sprintf("Submit round trip, parked vs. hot executor, hash table, %d workers (real)",
			workers),
		Cols: []string{"config", "round_trips_per_sec"},
	}
	for _, c := range []struct {
		cfg    float64
		parked bool
	}{{0, true}, {1, false}} {
		var rates []float64
		// Unrecorded warmup, mirroring the other real-mode experiments.
		if _, err := WakeLatencyPoint(o, c.parked, workers, o.Seed); err != nil {
			return nil, err
		}
		for r := 0; r < max(1, o.Runs); r++ {
			rate, err := WakeLatencyPoint(o, c.parked, workers, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			rates = append(rates, rate)
		}
		t.Rows = append(t.Rows, []float64{c.cfg, stats.Summarize(rates).Mean})
	}
	t.Notes = append(t.Notes,
		"config 0 = parked: each submit waits out an idle gap first, so the worker has blocked on its wake token and the round trip pays the targeted wake (core/wake.go)",
		"config 1 = hot: back-to-back submits keep the worker spinning; the delta between the rows IS the wake cost",
		"value = 1e9 / median submit-to-result ns — a rate, so the -gate drop direction matches the throughput series",
		"pre-event-driven dispatch the parked row was bounded by the 100µs backoffPark quantum (~10k/s); the handshake puts it within a few µs of hot")
	return []*Table{t}, nil
}

// WakeLatencyPoint measures one configuration and returns round trips per
// second derived from the median submit-to-result latency. Exported for the
// harness tests and kbench -json.
func WakeLatencyPoint(o Options, parked bool, workers int, seed uint64) (float64, error) {
	ex, keyFn, err := NewOpenExecutor(txds.KindHashTable, core.SchedFixed, workers)
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		return 0, err
	}
	defer ex.Stop()

	src, err := dist.ByName("gaussian", seed)
	if err != nil {
		return 0, err
	}
	// Parked rounds each spend an off-the-clock idle gap, so cap them well
	// below the hot round count to keep the point CI-sized.
	rounds := max(1, o.RealTasks/100)
	if !parked {
		rounds = max(1, o.RealTasks/10)
	}
	// idleGap comfortably outlasts the worker's parkSpins Gosched window
	// (microseconds), so every parked-mode submit finds the owner blocked.
	const idleGap = 200 * time.Microsecond
	lat := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		k, insert := dist.Split(src.Next())
		op := core.OpDelete
		if insert {
			op = core.OpInsert
		}
		task := core.Task{Key: keyFn(k), Op: op, Arg: k}
		if parked {
			time.Sleep(idleGap)
		}
		start := time.Now()
		if _, err := ex.Submit(ctx, task); err != nil {
			return 0, err
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	median := lat[len(lat)/2]
	if median <= 0 {
		median = time.Nanosecond
	}
	return float64(time.Second) / float64(median), nil
}
