package harness

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"kstm/client"
	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/latency"
	"kstm/internal/stats"
	"kstm/internal/txds"
	"kstm/server"
)

// NetworkMode selects how the network experiment's clients reach the
// executor.
type NetworkMode int

// Network experiment modes.
const (
	// NetInProc: clients call Executor.Submit directly — the zero-wire
	// baseline.
	NetInProc NetworkMode = iota
	// NetLoopback: the same executor behind a kstmd wire server on a
	// loopback TCP listener; clients each dial one connection and call
	// client.Do. The delta against NetInProc is the wire + kernel cost.
	NetLoopback
)

func (m NetworkMode) String() string {
	if m == NetLoopback {
		return "loopback"
	}
	return "inproc"
}

// NetworkResult is one network-experiment configuration's outcome.
type NetworkResult struct {
	// Stats is the executor's final snapshot: its Wait/Service percentiles
	// are the server-side half of the latency story.
	Stats core.ExecStats
	// RTT is the client-observed request latency (submit-to-result); the
	// gap between RTT and Wait+Service is the wire overhead.
	RTT latency.Summary
	// Elapsed is the load phase's wall clock.
	Elapsed time.Duration
}

// Throughput returns executed tasks per wall-clock second.
func (r NetworkResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Completed) / r.Elapsed.Seconds()
}

// NetworkPoint runs one configuration of the network experiment: a
// goroutine-per-client fleet driving the gaussian dictionary workload at an
// adaptive executor, either in-process or over loopback TCP through the wire
// protocol. Exported for the harness tests and kbench.
func NetworkPoint(o Options, mode NetworkMode, workers, clients int, seed uint64) (NetworkResult, error) {
	ex, keyFn, err := NewOpenExecutor(txds.KindHashTable, core.SchedAdaptive, workers, core.WithThreshold(1000))
	if err != nil {
		return NetworkResult{}, err
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		return NetworkResult{}, err
	}

	var (
		addr    string
		srv     *server.Server
		srvDone chan error
	)
	if mode == NetLoopback {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ex.Stop()
			return NetworkResult{}, err
		}
		addr = ln.Addr().String()
		srv = server.New(ex)
		srvDone = make(chan error, 1)
		go func() { srvDone <- srv.Serve(ctx, ln) }()
	}

	per := max(1, o.RealTasks/clients)
	hists := make([]*latency.Histogram, clients)
	errCh := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		hists[c] = latency.New()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src, err := dist.ByName("gaussian", seed+uint64(c)*0x9e37)
			if err != nil {
				errCh <- err
				return
			}
			do := func(t core.Task) error { _, err := ex.Submit(ctx, t); return err }
			if mode == NetLoopback {
				cl, err := client.Dial(addr)
				if err != nil {
					errCh <- err
					return
				}
				defer cl.Close()
				do = func(t core.Task) error { _, err := cl.Do(ctx, t); return err }
			}
			for i := 0; i < per; i++ {
				k, insert := dist.Split(src.Next())
				op := core.OpDelete
				if insert {
					op = core.OpInsert
				}
				t0 := time.Now()
				if err := do(core.Task{Key: keyFn(k), Op: op, Arg: k}); err != nil {
					errCh <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				hists[c].Observe(time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	drainErr := ex.Drain()
	elapsed := time.Since(start)
	// Tear the loopback server down on every path — including drain
	// failure — so repeated points never leak listeners or handlers.
	if srv != nil {
		srv.Close()
		if err := <-srvDone; err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if drainErr != nil {
		return NetworkResult{}, drainErr
	}
	select {
	case err := <-errCh:
		return NetworkResult{}, err
	default:
	}
	return NetworkResult{
		Stats:   ex.Stats(),
		RTT:     latency.Merge(hists...),
		Elapsed: elapsed,
	}, nil
}

// runNetwork is the network-front-end experiment: the same executor and
// workload driven in-process and over the loopback wire protocol, so the
// throughput and latency deltas isolate what the network layer costs. The
// executor-side Wait/Service percentiles come from ExecStats; RTT is
// measured at the clients.
func runNetwork(o Options) ([]*Table, error) {
	const workers, clients = 4, 8
	t := &Table{
		ID: "network",
		Title: fmt.Sprintf("In-process vs. loopback wire protocol, hash table, gaussian, adaptive, %d workers, %d clients (real)",
			workers, clients),
		Cols: []string{"mode", "throughput", "rtt_p50_us", "rtt_p95_us", "wait_p50_us", "wait_p95_us", "svc_p50_us", "svc_p95_us"},
	}
	us := func(d time.Duration) float64 { return float64(d.Microseconds()) }
	for mi, mode := range []NetworkMode{NetInProc, NetLoopback} {
		var thr []float64
		var last NetworkResult
		// One unrecorded warmup run per mode (heap growth, adaptive
		// ramp-up, and for loopback the TCP stack).
		if _, err := NetworkPoint(o, mode, workers, clients, o.Seed); err != nil {
			return nil, err
		}
		for r := 0; r < max(1, o.Runs); r++ {
			res, err := NetworkPoint(o, mode, workers, clients, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			thr = append(thr, res.Throughput())
			last = res
		}
		t.Rows = append(t.Rows, []float64{float64(mi), stats.Summarize(thr).Mean,
			us(last.RTT.P50), us(last.RTT.P95),
			us(last.Stats.Wait.P50), us(last.Stats.Wait.P95),
			us(last.Stats.Service.P50), us(last.Stats.Service.P95)})
	}
	t.Notes = append(t.Notes,
		"mode: 0=inproc (Executor.Submit) 1=loopback (kstmd wire protocol over 127.0.0.1 TCP)",
		"rtt is client-observed submit-to-result latency; wait/svc are the executor-side ExecStats percentiles",
		"the rtt-vs-(wait+svc) gap and the throughput delta are the wire + kernel overhead")
	return []*Table{t}, nil
}
