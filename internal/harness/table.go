// Package harness regenerates every table and figure in the paper's
// evaluation (and the tech-report companions described in §4.2/§4.4), in
// either simulator mode (deterministic, reproduces the 16-processor shape on
// any host) or real mode (actual STM + goroutines on the local machine).
// DESIGN.md §7 maps each experiment ID to the paper artifact it reproduces.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment artifact: a named grid of numeric series,
// matching a figure's curves or a table's rows.
type Table struct {
	ID    string
	Title string
	// Cols[0] names the x column (e.g. "threads"); the rest name series.
	Cols []string
	Rows [][]float64
	// Notes carry paper-vs-measured commentary into EXPERIMENTS.md.
	Notes []string
}

// Render writes a fixed-width text rendering.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	widths := make([]int, len(t.Cols))
	cells := make([][]string, len(t.Rows))
	for i, col := range t.Cols {
		widths[i] = len(col)
	}
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := formatCell(v)
			cells[r][c] = s
			if c < len(widths) && len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for i, col := range t.Cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%*s", widths[i], col)
	}
	fmt.Fprintln(w)
	for i := range t.Cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprint(w, strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w)
	for _, row := range cells {
		for c, s := range row {
			if c > 0 {
				fmt.Fprint(w, "  ")
			}
			width := widths[len(widths)-1]
			if c < len(widths) {
				width = widths[c]
			}
			fmt.Fprintf(w, "%*s", width, s)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (one header row, numeric cells).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Cols, ","))
	for _, row := range t.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = formatCell(v)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
}

// formatCell renders integers plainly and non-integers with 4 significant
// digits, keeping throughput columns readable.
func formatCell(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// Series extracts the named column as a slice (for tests and comparisons).
func (t *Table) Series(col string) ([]float64, error) {
	idx := -1
	for i, c := range t.Cols {
		if c == col {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("harness: table %s has no column %q", t.ID, col)
	}
	out := make([]float64, 0, len(t.Rows))
	for _, row := range t.Rows {
		if idx >= len(row) {
			return nil, fmt.Errorf("harness: table %s row too short for column %q", t.ID, col)
		}
		out = append(out, row[idx])
	}
	return out, nil
}
