package harness

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kstm/client"
	"kstm/internal/core"
	"kstm/internal/fault"
	"kstm/internal/latency"
	"kstm/internal/stats"
	"kstm/internal/txds"
	"kstm/server"
)

// FaultsScenario is one transport-fault pattern the faults experiment runs
// the serving stack under. A zero Rule is the clean baseline.
type FaultsScenario struct {
	Name string
	Rule fault.Rule
}

// FaultsScenarios returns the experiment's fixed scenario set, in row order.
func FaultsScenarios() []FaultsScenario {
	return []FaultsScenario{
		// Row 0: no injector at all — the goodput ceiling every faulted row
		// is read against.
		{Name: "clean"},
		// Half the connections die after ~600±400 bytes: lost acks
		// mid-pipeline, pool ejection, breaker probes, redials.
		{Name: "drop", Rule: fault.Rule{Every: 2, DropAfter: 600, Jitter: 400}},
		// Half the connections freeze once for 2ms mid-stream: tail latency
		// without any byte loss.
		{Name: "stall", Rule: fault.Rule{Every: 2, Stall: 2 * time.Millisecond, StallAfter: 400}},
		// Every connection moves tiny segments: pure reassembly stress; the
		// goodput delta against clean is the syscall amplification.
		{Name: "partial", Rule: fault.Rule{Every: 1, WriteChunk: 3, ReadChunk: 5}},
	}
}

// FaultsResult is one faults-experiment configuration's outcome.
type FaultsResult struct {
	// Acked counts inserts acknowledged OK during the chaos phase; goodput
	// only credits those.
	Acked int
	// VisErrors counts acked inserts a post-fault lookup could not see.
	// Anything other than zero is a correctness bug (DESIGN.md §10).
	VisErrors int
	// Retry is the pool's shared retry-budget activity over the run.
	Retry client.RetryStats
	// RTT is the client-observed latency of acknowledged operations,
	// retries included — the tail shows what the faults cost callers.
	RTT latency.Summary
	// Elapsed is the chaos phase's wall clock.
	Elapsed time.Duration
}

// Goodput returns acknowledged operations per wall-clock second.
func (r FaultsResult) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Acked) / r.Elapsed.Seconds()
}

// FaultsPoint runs one faults-experiment configuration: a loopback wire
// server whose accepted connections pass through a seeded fault injector,
// driven by pool clients inserting unique keys through DoRetry. After the
// load phase the fault clears and every acknowledged insert is checked for
// visibility. Exported for the harness tests and kbench.
func FaultsPoint(o Options, sc FaultsScenario, workers, clients int, seed uint64) (FaultsResult, error) {
	ex, keyFn, err := NewOpenExecutor(txds.KindHashTable, core.SchedAdaptive, workers, core.WithThreshold(1000))
	if err != nil {
		return FaultsResult{}, err
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		return FaultsResult{}, err
	}

	// The wrapper injects only while faulting is set; the verification phase
	// clears it so recovery is the stack's job (breaker probes, redials),
	// not the injector's mercy.
	var faulting atomic.Bool
	inj := fault.New(seed, sc.Rule)
	faulting.Store(sc.Rule.Every > 0)
	wrapper := func(c net.Conn) net.Conn {
		if !faulting.Load() {
			return c
		}
		return inj.Conn(c)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ex.Stop()
		return FaultsResult{}, err
	}
	srv := server.New(ex, server.WithConnWrapper(wrapper))
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(ctx, ln) }()

	finish := func(res FaultsResult, err error) (FaultsResult, error) {
		drainErr := ex.Drain()
		srv.Close()
		if serveErr := <-srvDone; serveErr != nil && err == nil {
			err = serveErr
		}
		if drainErr != nil && err == nil {
			err = drainErr
		}
		return res, err
	}

	p, err := client.DialPool(ln.Addr().String(), 2)
	if err != nil {
		return finish(FaultsResult{}, err)
	}
	defer p.Close()

	// Bound the chaos phase: faulted operations pay retry backoff, so the
	// point caps at faultsMaxOps even when Options asks for more (noted in
	// the table).
	const faultsMaxOps = 4000
	per := max(1, min(o.RealTasks, faultsMaxOps)/clients)

	ackedLists := make([][]uint64, clients)
	hists := make([]*latency.Histogram, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		hists[c] = latency.New()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := uint64(c*per + i + 1)
				opCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
				t0 := time.Now()
				_, err := client.DoRetry(opCtx, p, core.Task{
					Key: keyFn(uint32(key)), Op: core.OpInsert, Arg: uint32(key),
				})
				cancel()
				if err == nil {
					hists[c].Observe(time.Since(t0))
					ackedLists[c] = append(ackedLists[c], key)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var acked []uint64
	for _, l := range ackedLists {
		acked = append(acked, l...)
	}
	if len(acked) == 0 {
		return finish(FaultsResult{}, fmt.Errorf("faults/%s: no insert was ever acknowledged", sc.Name))
	}

	// Fault clears; wait for the pool to recover before auditing.
	faulting.Store(false)
	recoverBy := time.Now().Add(10 * time.Second)
	for {
		_, err := client.DoRetry(ctx, p, core.Task{Key: keyFn(1), Op: core.OpLookup, Arg: 1})
		if err == nil {
			break
		}
		if time.Now().After(recoverBy) {
			return finish(FaultsResult{}, fmt.Errorf("faults/%s: pool did not recover: %w", sc.Name, err))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Visibility audit: every acknowledged insert must be present.
	visErrors := 0
	for _, key := range acked {
		res, err := client.DoRetry(ctx, p, core.Task{Key: keyFn(uint32(key)), Op: core.OpLookup, Arg: uint32(key)})
		if err != nil {
			return finish(FaultsResult{}, fmt.Errorf("faults/%s: lookup of acked key %d: %w", sc.Name, key, err))
		}
		if hit, _ := res.Value.(bool); !hit {
			visErrors++
		}
	}

	return finish(FaultsResult{
		Acked:     len(acked),
		VisErrors: visErrors,
		Retry:     p.Stats().Retry,
		RTT:       latency.Merge(hists...),
		Elapsed:   elapsed,
	}, nil)
}

// runFaults is the fault-tolerance experiment: the loopback serving stack
// under the seeded fault scenarios, with goodput, retry spend, tail latency,
// and — the proof obligation — the acked-insert visibility-error count,
// which must be zero in every row (DESIGN.md §10).
func runFaults(o Options) ([]*Table, error) {
	const workers, clients = 4, 4
	t := &Table{
		ID: "faults",
		Title: fmt.Sprintf("Goodput and visibility under injected transport faults, %d workers, %d pool clients (real)",
			workers, clients),
		Cols: []string{"scenario", "throughput", "acked", "retries", "rtt_p95_us", "rtt_p99_us", "vis_errors"},
	}
	us := func(d time.Duration) float64 { return float64(d.Microseconds()) }
	for si, sc := range FaultsScenarios() {
		var thr []float64
		var last FaultsResult
		visErrors := 0
		// One unrecorded warmup run per scenario (TCP stack, adaptive
		// ramp-up, breaker state pools).
		if _, err := FaultsPoint(o, sc, workers, clients, o.Seed); err != nil {
			return nil, err
		}
		for r := 0; r < max(1, o.Runs); r++ {
			res, err := FaultsPoint(o, sc, workers, clients, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			thr = append(thr, res.Goodput())
			visErrors += res.VisErrors
			last = res
		}
		t.Rows = append(t.Rows, []float64{float64(si), stats.Summarize(thr).Mean,
			float64(last.Acked), float64(last.Retry.Spent),
			us(last.RTT.P95), us(last.RTT.P99), float64(visErrors)})
	}
	t.Notes = append(t.Notes,
		"scenario: 0=clean 1=drop (half the conns die after ~600±400B) 2=stall (half freeze 2ms once) 3=partial (3B writes / 5B reads)",
		"throughput is goodput: only inserts acknowledged OK count; rtt includes retry backoff, so the tail shows what faults cost callers",
		"vis_errors sums over runs and must be zero: every acked insert must be visible after the fault clears (DESIGN.md §10)",
		"retries is the shared budget's spent count on the last run; the chaos phase caps at 4000 ops regardless of -tasks")
	return []*Table{t}, nil
}
