package harness

import (
	"testing"
)

// The contention experiment's two arms at CI-test size: both must be free
// of visibility errors, and the split-on arm must actually promote keys and
// merge epochs under the Zipf head's load.
func TestContentionPointBothModes(t *testing.T) {
	o := DefaultOptions()
	o.RealTasks = 4000
	o.Runs = 1
	for _, split := range []bool{false, true} {
		st, vis, _, err := ContentionPoint(o, split, 4, 8, o.Seed)
		if err != nil {
			t.Fatalf("split=%v: %v", split, err)
		}
		if vis != 0 {
			t.Errorf("split=%v: %d visibility errors, want 0", split, vis)
		}
		if st.Completed == 0 {
			t.Errorf("split=%v: no tasks completed", split)
		}
		if split {
			if st.Split.Keys == 0 && st.Split.Demoted == 0 {
				t.Errorf("split on: no key ever promoted: %+v", st.Split)
			}
			if st.Split.MergedEpochs == 0 {
				t.Errorf("split on: no merge epochs: %+v", st.Split)
			}
		} else if st.Split.Keys != 0 || st.Split.MergedEpochs != 0 {
			t.Errorf("split off: nonzero split stats %+v", st.Split)
		}
	}
}

func TestContentionExperimentRegistered(t *testing.T) {
	e, err := ByID("contention")
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.RealTasks = 1200
	o.Runs = 1
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "contention" {
		t.Fatalf("tables = %v", tables)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (off, on)", len(tbl.Rows))
	}
	visCol := -1
	for i, c := range tbl.Cols {
		if c == "vis_errors" {
			visCol = i
		}
	}
	if visCol < 0 {
		t.Fatalf("no vis_errors column in %v", tbl.Cols)
	}
	for _, row := range tbl.Rows {
		if row[visCol] != 0 {
			t.Errorf("mode %v: vis_errors = %v, want 0", row[0], row[visCol])
		}
	}
}
