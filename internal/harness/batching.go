package harness

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"kstm/client"
	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/stats"
	"kstm/internal/txds"
	"kstm/server"
)

// BatchMode selects one batching-experiment configuration: how clients hand
// work to the executor.
type BatchMode int

// Batching experiment modes.
const (
	// BatchSubmitLoop: per-task SubmitAsync calls (the per-call dispatch
	// stack paid once per task), awaiting each batch's futures together.
	BatchSubmitLoop BatchMode = iota
	// BatchSubmitAll: one SubmitAll per batch — single clock read, one
	// partition read, grouped contiguous enqueues.
	BatchSubmitAll
	// BatchWireFrame: loopback TCP, one request frame (and one flush) per
	// task via DoAsync.
	BatchWireFrame
	// BatchWireBatch: loopback TCP, one TypeBatchRequest frame per batch
	// via DoBatch; the server coalesces responses into batch frames too.
	BatchWireBatch
)

func (m BatchMode) String() string {
	switch m {
	case BatchSubmitLoop:
		return "submit-loop"
	case BatchSubmitAll:
		return "submitall"
	case BatchWireFrame:
		return "wire-frame"
	case BatchWireBatch:
		return "wire-batch"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// BatchModes lists the experiment's configurations in table order.
func BatchModes() []BatchMode {
	return []BatchMode{BatchSubmitLoop, BatchSubmitAll, BatchWireFrame, BatchWireBatch}
}

// BatchSizes are the per-call batch sizes the experiment sweeps.
func BatchSizes() []int { return []int{1, 8, 64} }

// runBatching is the hot-path-overhaul acceptance experiment: the gaussian
// dictionary workload under goroutine-per-client traffic, submitted per-task
// versus batched — both in-process (SubmitAsync loop vs SubmitAll) and over
// the wire (per-frame DoAsync vs DoBatch) — at batch sizes 1, 8 and 64.
// Batched submission amortizes the clock read, the dispatch-policy read and
// the queue operation per batch; batched frames amortize the syscall.
func runBatching(o Options) ([]*Table, error) {
	const workers, clients = 8, 8
	t := &Table{
		ID: "batching",
		Title: fmt.Sprintf("Per-task vs. batched submission, hash table, gaussian, %d workers, %d clients (real)",
			workers, clients),
		Cols: []string{"config", "throughput"},
	}
	for _, mode := range BatchModes() {
		for _, size := range BatchSizes() {
			var thr []float64
			// One unrecorded warmup run per configuration, mirroring
			// runSharding: heap growth and scheduler ramp-up must not bill
			// the first-measured mode.
			if _, err := BatchingPoint(o, mode, size, workers, clients, o.Seed); err != nil {
				return nil, err
			}
			for r := 0; r < max(1, o.Runs); r++ {
				thr1, err := BatchingPoint(o, mode, size, workers, clients, o.Seed+uint64(r))
				if err != nil {
					return nil, err
				}
				thr = append(thr, thr1)
			}
			t.Rows = append(t.Rows, []float64{float64(int(mode)*100 + size), stats.Summarize(thr).Mean})
		}
	}
	t.Notes = append(t.Notes,
		"config = mode*100 + batch size: mode 0=SubmitAsync loop 1=SubmitAll 2=wire per-frame (DoAsync) 3=wire batch frames (DoBatch); batch sizes 1/8/64",
		"each client submits its stream in batches of the given size and awaits the batch before the next",
		"wire modes run the same executor behind kstmd's server on loopback TCP; batch frames carry many requests per syscall",
		"headline: wire batching (3xx vs 2xx) wins from batch >= 8 on any host; the in-proc win (1xx vs 0xx) needs real parallelism — single-core hosts show parity (cf. the sharding caveat), see internal/core's SubmitAll/SubmitLoop microbenchmarks for the isolated dispatch cost")
	return []*Table{t}, nil
}

// BatchingPoint runs one batching configuration and returns its throughput
// (executed tasks per wall-clock second). Exported for the harness tests and
// kbench -json.
func BatchingPoint(o Options, mode BatchMode, batchSize, workers, clients int, seed uint64) (float64, error) {
	if batchSize <= 0 {
		return 0, fmt.Errorf("harness: batch size %d, want > 0", batchSize)
	}
	ex, keyFn, err := NewOpenExecutor(txds.KindHashTable, core.SchedAdaptive, workers, core.WithThreshold(1000))
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		return 0, err
	}

	var (
		addr    string
		srv     *server.Server
		srvDone chan error
	)
	wired := mode == BatchWireFrame || mode == BatchWireBatch
	if wired {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ex.Stop()
			return 0, err
		}
		addr = ln.Addr().String()
		srv = server.New(ex)
		srvDone = make(chan error, 1)
		go func() { srvDone <- srv.Serve(ctx, ln) }()
	}

	per := max(1, o.RealTasks/clients)
	errCh := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src, err := dist.ByName("gaussian", seed+uint64(c)*0x9e37)
			if err != nil {
				errCh <- err
				return
			}
			makeBatch := func(n int) []core.Task {
				tasks := make([]core.Task, n)
				for i := range tasks {
					k, insert := dist.Split(src.Next())
					op := core.OpDelete
					if insert {
						op = core.OpInsert
					}
					tasks[i] = core.Task{Key: keyFn(k), Op: op, Arg: k}
				}
				return tasks
			}
			var cl *client.Client
			if wired {
				if cl, err = client.Dial(addr); err != nil {
					errCh <- err
					return
				}
				defer cl.Close()
			}
			for done := 0; done < per; {
				n := min(batchSize, per-done)
				tasks := makeBatch(n)
				switch mode {
				case BatchSubmitLoop:
					futs := make([]*core.Future, 0, n)
					for _, task := range tasks {
						fut, err := ex.SubmitAsync(ctx, task)
						if err != nil {
							errCh <- err
							return
						}
						futs = append(futs, fut)
					}
					for _, f := range futs {
						if _, err := f.Wait(ctx); err != nil {
							errCh <- err
							return
						}
					}
				case BatchSubmitAll:
					futs, err := ex.SubmitAll(ctx, tasks)
					if err != nil {
						errCh <- err
						return
					}
					for _, f := range futs {
						if _, err := f.Wait(ctx); err != nil {
							errCh <- err
							return
						}
					}
				case BatchWireFrame:
					calls := make([]*client.Call, 0, n)
					for _, task := range tasks {
						call, err := cl.DoAsync(ctx, task)
						if err != nil {
							errCh <- err
							return
						}
						calls = append(calls, call)
					}
					for _, call := range calls {
						if _, err := call.Wait(ctx); err != nil {
							errCh <- err
							return
						}
					}
				case BatchWireBatch:
					calls, err := cl.DoBatch(ctx, tasks)
					if err != nil {
						errCh <- err
						return
					}
					for _, call := range calls {
						if _, err := call.Wait(ctx); err != nil {
							errCh <- err
							return
						}
					}
				default:
					errCh <- fmt.Errorf("harness: unknown batch mode %d", mode)
					return
				}
				done += n
			}
		}(c)
	}
	wg.Wait()
	if err := ex.Drain(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if wired {
		srv.Close()
		if err := <-srvDone; err != nil {
			return 0, err
		}
	}
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	st := ex.Stats()
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(st.Completed) / elapsed.Seconds(), nil
}
