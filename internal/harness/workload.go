package harness

import (
	"fmt"

	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/stm"
	"kstm/internal/txds"
)

// DictSource adapts a key-distribution source into the executor's task
// stream: each 17-bit draw splits into a 16-bit dictionary key and an
// insert/delete bit (§4.4), and the transaction key is derived with keyFn
// (the hash output for hash tables, the identity otherwise — §4.2).
type DictSource struct {
	src   dist.Source
	keyFn func(uint32) uint64
}

// NewDictSource builds a task source; a nil keyFn uses the dictionary key
// itself as the transaction key.
func NewDictSource(src dist.Source, keyFn func(uint32) uint64) *DictSource {
	if keyFn == nil {
		keyFn = func(k uint32) uint64 { return uint64(k) }
	}
	return &DictSource{src: src, keyFn: keyFn}
}

// Next implements core.TaskSource.
func (d *DictSource) Next() core.Task {
	key, insert := dist.Split(d.src.Next())
	op := core.OpDelete
	if insert {
		op = core.OpInsert
	}
	return core.Task{Key: d.keyFn(key), Op: op, Arg: key}
}

// DictWorkload executes dictionary tasks against an IntSet — the worker-side
// binding for real-mode experiments. Every operation returns its logical
// result as the task value: OpInsert reports "was absent", OpDelete "was
// present", and OpLookup the hit — so a submitter reads a dictionary answer
// straight off its TaskResult with no side channel.
type DictWorkload struct {
	set txds.IntSet
}

// NewDictWorkload wraps an IntSet as a core.Workload.
func NewDictWorkload(set txds.IntSet) *DictWorkload {
	return &DictWorkload{set: set}
}

// Set returns the wrapped dictionary (e.g. to read a shard back post-run).
func (d *DictWorkload) Set() txds.IntSet { return d.set }

// Execute implements core.Workload.
func (d *DictWorkload) Execute(th *stm.Thread, t core.Task) (any, error) {
	switch t.Op {
	case core.OpInsert:
		return d.set.Insert(th, t.Arg)
	case core.OpDelete:
		return d.set.Delete(th, t.Arg)
	case core.OpLookup:
		return d.set.Contains(th, t.Arg)
	case core.OpNoop:
		// Trivial transaction (Figure 4): nothing to do.
		return nil, nil
	default:
		return nil, fmt.Errorf("harness: unknown op %v", t.Op)
	}
}

// DictFactory builds shard-local dictionaries for sharded executors: every
// shard gets a private structure of the same kind, so the executor's
// per-worker STM instances never share transactional objects. Dispatch
// stays independent of the shard layout: the transaction-key function is
// computed against a full-size prototype, while each shard hash table is
// right-sized to its share of the keys (shardedBuckets), keeping the
// sharded configuration's total footprint equal to the shared one instead
// of multiplying it by the worker count.
//
// A migratable factory (NewMigratableDictFactory) instead keeps every shard
// hash table at the prototype size: shard-state migration moves keys by
// scheduling-key range, so every shard must agree with the dispatch
// partition — and with each other — on the key→bucket mapping. The other
// structures schedule by the dictionary key itself and need no such
// alignment.
type DictFactory struct {
	kind    txds.Kind
	buckets int // per-shard hash-table size; 0 = the structure default
	// keyRange: Store() migrates by DICTIONARY-key range instead of the
	// structure's own scheduling space — for deployments (kstmd) whose
	// dispatch keys are the dictionary keys themselves, not hash outputs.
	keyRange bool
	shards   []txds.IntSet
}

// NewDictFactory returns a factory producing fresh kind-structures per
// shard, sized for the given shard count (workers <= 1 keeps structure
// defaults). Construction cannot fail for the kinds txds.New accepts; the
// kind is validated by the first NewShard call, which panics on an unknown
// kind exactly like an invalid executor configuration would.
func NewDictFactory(kind txds.Kind, workers int) *DictFactory {
	f := &DictFactory{kind: kind}
	if kind == txds.KindHashTable && workers > 1 {
		f.buckets = shardedBuckets(workers)
	}
	return f
}

// NewMigratableDictFactory returns a factory whose shards support
// core.ShardStore hand-off in the STRUCTURE's scheduling space: dictionary
// keys for the ordered structures, bucket indices for the hash table.
// Pair it with a dispatcher whose transaction keys live in that space
// (NewMigratableShardedExecutor's keyFn does; hash tables then dispatch on
// Hash output over [0, buckets-1]).
func NewMigratableDictFactory(kind txds.Kind) *DictFactory {
	return &DictFactory{kind: kind}
}

// NewKeyRangeDictFactory returns a migratable factory whose stores
// interpret hand-off ranges as DICTIONARY-key ranges for every structure —
// the right pairing when dispatch keys are the dictionary keys themselves,
// as with kstmd's wire clients (scheduler over [0, MaxKey], Task.Key ==
// Arg). With the structure-space factory there, a hash table would migrate
// bucket-index ranges while the partition moved raw-key ranges: aliased
// keys (k and k+buckets share a bucket) would be relocated out from under
// live unfenced traffic.
func NewKeyRangeDictFactory(kind txds.Kind) *DictFactory {
	return &DictFactory{kind: kind, keyRange: true}
}

// shardedBuckets returns a prime near DefaultBuckets/workers: each shard
// holds ~1/workers of the keys, so a proportional table preserves the
// paper's load factor per shard.
func shardedBuckets(workers int) int {
	n := txds.DefaultBuckets / workers
	if n < 31 {
		n = 31
	}
	for !isPrime(n) {
		n++
	}
	return n
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NewShard implements core.WorkloadFactory.
func (f *DictFactory) NewShard(worker int) core.Workload {
	var set txds.IntSet
	if f.kind == txds.KindHashTable && f.buckets > 0 {
		set = txds.NewHashTable(f.buckets)
	} else {
		var err error
		set, err = txds.New(f.kind)
		if err != nil {
			panic(fmt.Sprintf("harness: DictFactory kind %q: %v", f.kind, err))
		}
	}
	for len(f.shards) <= worker {
		f.shards = append(f.shards, nil)
	}
	f.shards[worker] = set
	return NewDictWorkload(set)
}

// Shard returns the dictionary built for a worker (nil before NewShard).
func (f *DictFactory) Shard(worker int) txds.IntSet {
	if worker < 0 || worker >= len(f.shards) {
		return nil
	}
	return f.shards[worker]
}

// Store implements core.StoreFactory: the migratable face of the worker's
// shard. It returns nil — disabling migration at executor validation — when
// the shard structure does not implement txds.RangeStore, or when hash-table
// shards were right-sized (their bucket spaces then disagree with the
// dispatch partition's; use NewMigratableDictFactory).
func (f *DictFactory) Store(worker int) core.ShardStore {
	if f.kind == txds.KindHashTable && f.buckets > 0 {
		return nil
	}
	set := f.Shard(worker)
	rs, ok := set.(txds.RangeStore)
	if !ok {
		return nil
	}
	if f.keyRange {
		if ht, isHash := set.(*txds.HashTable); isHash {
			return dictStore{rs: keyRangeHashStore{t: ht}}
		}
		// The ordered structures' scheduling space IS the dictionary key.
	}
	return dictStore{rs: rs}
}

// keyRangeHashStore views a hash table through dictionary-key ranges
// (ExtractKeyRange) instead of its native bucket ranges. It implements
// txds.RangeBatchStore: a dictionary-key extraction is a full-table scan, so
// batching an epoch's ranges into ExtractKeyRanges pays that scan once.
type keyRangeHashStore struct{ t *txds.HashTable }

func (s keyRangeHashStore) ExtractRange(th *stm.Thread, lo, hi uint32) ([]uint32, error) {
	return s.t.ExtractKeyRange(th, lo, hi)
}

func (s keyRangeHashStore) ExtractRanges(th *stm.Thread, ranges []txds.KeyRange) ([][]uint32, error) {
	return s.t.ExtractKeyRanges(th, ranges)
}

func (s keyRangeHashStore) InstallKeys(th *stm.Thread, keys []uint32) error {
	return s.t.InstallKeys(th, keys)
}

// dictStore adapts a txds.RangeStore (32-bit scheduling keys) to
// core.ShardStore (the partition's 64-bit key space). It always offers the
// core.RangeBatchStore face: wrapped stores that batch natively (the
// dictionary-key hash view) extract every range in one pass, the rest fall
// back to a per-range loop with identical semantics.
type dictStore struct{ rs txds.RangeStore }

// clampRange folds a 64-bit partition range into the 32-bit dictionary
// space; ok is false when the whole range lies above it.
func clampRange(lo, hi uint64) (lo32, hi32 uint32, ok bool) {
	const max32 = uint64(^uint32(0))
	if lo > max32 {
		return 0, 0, false
	}
	if hi > max32 {
		hi = max32
	}
	return uint32(lo), uint32(hi), true
}

func (s dictStore) ExtractRange(th *stm.Thread, lo, hi uint64) ([]uint32, error) {
	lo32, hi32, ok := clampRange(lo, hi)
	if !ok {
		return nil, nil // whole range above the 32-bit dictionary space
	}
	return s.rs.ExtractRange(th, lo32, hi32)
}

func (s dictStore) ExtractRanges(th *stm.Thread, ranges []core.Range) ([][]uint32, error) {
	out := make([][]uint32, len(ranges))
	if bs, ok := s.rs.(txds.RangeBatchStore); ok {
		// One structure pass for the whole epoch. Ranges above the 32-bit
		// space extract nothing; their output slot stays empty.
		krs := make([]txds.KeyRange, 0, len(ranges))
		slot := make([]int, 0, len(ranges))
		for i, r := range ranges {
			if lo32, hi32, ok := clampRange(r.Lo, r.Hi); ok {
				krs = append(krs, txds.KeyRange{Lo: lo32, Hi: hi32})
				slot = append(slot, i)
			}
		}
		got, err := bs.ExtractRanges(th, krs)
		for i, keys := range got {
			out[slot[i]] = keys
		}
		return out, err
	}
	for i, r := range ranges {
		keys, err := s.ExtractRange(th, r.Lo, r.Hi)
		out[i] = keys
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

func (s dictStore) InstallKeys(th *stm.Thread, keys []uint32) error {
	return s.rs.InstallKeys(th, keys)
}

// NewRealConfig assembles a real-mode executor config for a benchmark
// structure: fresh STM, the structure, its transaction-key function, per-
// producer sources split from seed, and the requested scheduler.
func NewRealConfig(kind txds.Kind, distName string, sched core.SchedulerKind, workers, producers int, seed uint64) (core.Config, error) {
	set, err := txds.New(kind)
	if err != nil {
		return core.Config{}, err
	}
	var keyFn func(uint32) uint64
	maxKey := uint64(dist.MaxKey)
	if ht, ok := set.(*txds.HashTable); ok {
		keyFn = func(k uint32) uint64 { return uint64(ht.Hash(k)) }
		maxKey = uint64(ht.Buckets() - 1)
	}
	scheduler, err := core.NewScheduler(sched, 0, maxKey, workers)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		STM:      stm.New(),
		Workload: NewDictWorkload(set),
		NewSource: func(p int) core.TaskSource {
			src, err := dist.ByName(distName, seed+uint64(p)*0x9e37)
			if err != nil {
				// Validated below before use; return a constant
				// stream to keep the signature simple.
				return core.SourceFunc(func() core.Task { return core.Task{} })
			}
			return NewDictSource(src, keyFn)
		},
		Workers:   workers,
		Producers: producers,
		Model:     core.ModelParallel,
		Scheduler: scheduler,
	}, validateDist(distName)
}

func validateDist(name string) error {
	_, err := dist.ByName(name, 0)
	return err
}

// NewOpenExecutor assembles an open-submission executor for a benchmark
// structure: fresh STM, the structure as workload, and the requested
// dispatch policy over the structure's transaction-key space (adaptive
// options apply only to SchedAdaptive). Callers own the lifecycle
// (Start/Drain/Stop) and the traffic; keyFn converts a dictionary key into
// the transaction key to submit with.
func NewOpenExecutor(kind txds.Kind, sched core.SchedulerKind, workers int, opts ...core.AdaptiveOption) (ex *core.Executor, keyFn func(uint32) uint64, err error) {
	set, err := txds.New(kind)
	if err != nil {
		return nil, nil, err
	}
	keyFn = func(k uint32) uint64 { return uint64(k) }
	maxKey := uint64(dist.MaxKey)
	if ht, ok := set.(*txds.HashTable); ok {
		keyFn = func(k uint32) uint64 { return uint64(ht.Hash(k)) }
		maxKey = uint64(ht.Buckets() - 1)
	}
	ex, err = core.NewExecutor(
		core.WithSTM(stm.New()),
		core.WithWorkload(NewDictWorkload(set)),
		core.WithWorkers(workers),
		core.WithSchedulerKind(sched, 0, maxKey, opts...),
	)
	if err != nil {
		return nil, nil, err
	}
	return ex, keyFn, nil
}

// NewMigratableShardedExecutor assembles a ShardPerWorker adaptive executor
// whose shards support epoch-fenced state hand-off (migratable DictFactory:
// structure defaults in every shard, so hash-table shards share the
// prototype's bucket space). mode selects whether the hand-off runs —
// MigrateOff keeps the §4 visibility trade on an otherwise identical
// configuration, which is exactly the A/B the migration experiment needs.
func NewMigratableShardedExecutor(kind txds.Kind, workers int, mode core.MigrationMode, opts ...core.AdaptiveOption) (ex *core.Executor, keyFn func(uint32) uint64, err error) {
	proto, err := txds.New(kind)
	if err != nil {
		return nil, nil, err
	}
	keyFn = func(k uint32) uint64 { return uint64(k) }
	maxKey := uint64(dist.MaxKey)
	if ht, ok := proto.(*txds.HashTable); ok {
		keyFn = func(k uint32) uint64 { return uint64(ht.Hash(k)) }
		maxKey = uint64(ht.Buckets() - 1)
	}
	eopts := []core.Option{
		core.WithSharding(core.ShardPerWorker),
		core.WithWorkloadFactory(NewMigratableDictFactory(kind)),
		core.WithWorkers(workers),
		core.WithSchedulerKind(core.SchedAdaptive, 0, maxKey, opts...),
	}
	if mode != "" && mode != core.MigrateOff {
		eopts = append(eopts, core.WithMigration(mode))
	}
	ex, err = core.NewExecutor(eopts...)
	if err != nil {
		return nil, nil, err
	}
	return ex, keyFn, nil
}

// NewShardedExecutor assembles an open-submission executor in ShardPerWorker
// mode: every worker owns a private STM instance and a private dictionary of
// the given kind built through DictFactory. The transaction-key function is
// derived from a prototype structure (hash output for hash tables, identity
// otherwise) and is valid for every shard, since all shards are built alike.
func NewShardedExecutor(kind txds.Kind, sched core.SchedulerKind, workers int, opts ...core.AdaptiveOption) (ex *core.Executor, keyFn func(uint32) uint64, err error) {
	proto, err := txds.New(kind)
	if err != nil {
		return nil, nil, err
	}
	keyFn = func(k uint32) uint64 { return uint64(k) }
	maxKey := uint64(dist.MaxKey)
	if ht, ok := proto.(*txds.HashTable); ok {
		keyFn = func(k uint32) uint64 { return uint64(ht.Hash(k)) }
		maxKey = uint64(ht.Buckets() - 1)
	}
	ex, err = core.NewExecutor(
		core.WithSharding(core.ShardPerWorker),
		core.WithWorkloadFactory(NewDictFactory(kind, workers)),
		core.WithWorkers(workers),
		core.WithSchedulerKind(sched, 0, maxKey, opts...),
	)
	if err != nil {
		return nil, nil, err
	}
	return ex, keyFn, nil
}
