package harness

import (
	"fmt"

	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/stm"
	"kstm/internal/txds"
)

// DictSource adapts a key-distribution source into the executor's task
// stream: each 17-bit draw splits into a 16-bit dictionary key and an
// insert/delete bit (§4.4), and the transaction key is derived with keyFn
// (the hash output for hash tables, the identity otherwise — §4.2).
type DictSource struct {
	src   dist.Source
	keyFn func(uint32) uint64
}

// NewDictSource builds a task source; a nil keyFn uses the dictionary key
// itself as the transaction key.
func NewDictSource(src dist.Source, keyFn func(uint32) uint64) *DictSource {
	if keyFn == nil {
		keyFn = func(k uint32) uint64 { return uint64(k) }
	}
	return &DictSource{src: src, keyFn: keyFn}
}

// Next implements core.TaskSource.
func (d *DictSource) Next() core.Task {
	key, insert := dist.Split(d.src.Next())
	op := core.OpDelete
	if insert {
		op = core.OpInsert
	}
	return core.Task{Key: d.keyFn(key), Op: op, Arg: key}
}

// DictWorkload executes dictionary tasks against an IntSet — the worker-side
// binding for real-mode experiments.
type DictWorkload struct {
	set txds.IntSet
}

// NewDictWorkload wraps an IntSet as a core.Workload.
func NewDictWorkload(set txds.IntSet) *DictWorkload {
	return &DictWorkload{set: set}
}

// Execute implements core.Workload.
func (d *DictWorkload) Execute(th *stm.Thread, t core.Task) error {
	var err error
	switch t.Op {
	case core.OpInsert:
		_, err = d.set.Insert(th, t.Arg)
	case core.OpDelete:
		_, err = d.set.Delete(th, t.Arg)
	case core.OpLookup:
		_, err = d.set.Contains(th, t.Arg)
	case core.OpNoop:
		// Trivial transaction (Figure 4): nothing to do.
	default:
		err = fmt.Errorf("harness: unknown op %v", t.Op)
	}
	return err
}

// NewRealConfig assembles a real-mode executor config for a benchmark
// structure: fresh STM, the structure, its transaction-key function, per-
// producer sources split from seed, and the requested scheduler.
func NewRealConfig(kind txds.Kind, distName string, sched core.SchedulerKind, workers, producers int, seed uint64) (core.Config, error) {
	set, err := txds.New(kind)
	if err != nil {
		return core.Config{}, err
	}
	var keyFn func(uint32) uint64
	maxKey := uint64(dist.MaxKey)
	if ht, ok := set.(*txds.HashTable); ok {
		keyFn = func(k uint32) uint64 { return uint64(ht.Hash(k)) }
		maxKey = uint64(ht.Buckets() - 1)
	}
	scheduler, err := core.NewScheduler(sched, 0, maxKey, workers)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		STM:      stm.New(),
		Workload: NewDictWorkload(set),
		NewSource: func(p int) core.TaskSource {
			src, err := dist.ByName(distName, seed+uint64(p)*0x9e37)
			if err != nil {
				// Validated below before use; return a constant
				// stream to keep the signature simple.
				return core.SourceFunc(func() core.Task { return core.Task{} })
			}
			return NewDictSource(src, keyFn)
		},
		Workers:   workers,
		Producers: producers,
		Model:     core.ModelParallel,
		Scheduler: scheduler,
	}, validateDist(distName)
}

func validateDist(name string) error {
	_, err := dist.ByName(name, 0)
	return err
}

// NewOpenExecutor assembles an open-submission executor for a benchmark
// structure: fresh STM, the structure as workload, and the requested
// dispatch policy over the structure's transaction-key space (adaptive
// options apply only to SchedAdaptive). Callers own the lifecycle
// (Start/Drain/Stop) and the traffic; keyFn converts a dictionary key into
// the transaction key to submit with.
func NewOpenExecutor(kind txds.Kind, sched core.SchedulerKind, workers int, opts ...core.AdaptiveOption) (ex *core.Executor, keyFn func(uint32) uint64, err error) {
	set, err := txds.New(kind)
	if err != nil {
		return nil, nil, err
	}
	keyFn = func(k uint32) uint64 { return uint64(k) }
	maxKey := uint64(dist.MaxKey)
	if ht, ok := set.(*txds.HashTable); ok {
		keyFn = func(k uint32) uint64 { return uint64(ht.Hash(k)) }
		maxKey = uint64(ht.Buckets() - 1)
	}
	ex, err = core.NewExecutor(
		core.WithSTM(stm.New()),
		core.WithWorkload(NewDictWorkload(set)),
		core.WithWorkers(workers),
		core.WithSchedulerKind(sched, 0, maxKey, opts...),
	)
	if err != nil {
		return nil, nil, err
	}
	return ex, keyFn, nil
}
