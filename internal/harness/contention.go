package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/splitphase"
	"kstm/internal/stats"
	"kstm/internal/stm"
	"kstm/internal/txds"
)

// ContentionCounters is the keyed-aggregate counter space the contention
// experiment (and kstmd -split) runs against: scheduling key == counter
// index, so key-affinity routing and split-phase promotion both see the
// client's hot keys directly.
const ContentionCounters = 1024

// CounterWorkload binds txds.Counters to the executor's commutative-op
// contract: OpAdd/OpMax/OpMin/OpTopK return nil values (so a locally-
// absorbed op is indistinguishable from a transactional one), OpLookup
// returns the counter's sum as int64. It implements core.CommutativeWorkload
// and core.SplitMergeWorkload, making it usable with WithSplitPhase.
type CounterWorkload struct {
	c *txds.Counters
}

// NewCounterWorkload wraps a counter bank as an executor workload.
func NewCounterWorkload(c *txds.Counters) *CounterWorkload {
	return &CounterWorkload{c: c}
}

// Counters returns the wrapped bank (e.g. to read state back post-run).
func (w *CounterWorkload) Counters() *txds.Counters { return w.c }

// Execute implements core.Workload.
func (w *CounterWorkload) Execute(th *stm.Thread, t core.Task) (any, error) {
	k := uint32(t.Key)
	switch t.Op {
	case core.OpAdd:
		return nil, w.c.Add(th, k, int32(t.Arg))
	case core.OpMax:
		return nil, w.c.MergeMax(th, k, t.Arg)
	case core.OpMin:
		return nil, w.c.MergeMin(th, k, t.Arg)
	case core.OpTopK:
		return nil, w.c.TopKInsert(th, k, t.Arg)
	case core.OpLookup:
		v, err := w.c.Value(th, k)
		if err != nil {
			return nil, err
		}
		return v.Sum, nil
	case core.OpNoop:
		return nil, nil
	default:
		return nil, fmt.Errorf("harness: counter workload: unknown op %v", t.Op)
	}
}

// CommutativeOps implements core.CommutativeWorkload.
func (w *CounterWorkload) CommutativeOps() map[core.Op]splitphase.Kind {
	return map[core.Op]splitphase.Kind{
		core.OpAdd:  splitphase.KindAdd,
		core.OpMax:  splitphase.KindMax,
		core.OpMin:  splitphase.KindMin,
		core.OpTopK: splitphase.KindTopK,
	}
}

// ApplyMerged implements core.SplitMergeWorkload.
func (w *CounterWorkload) ApplyMerged(th *stm.Thread, key uint64, agg splitphase.Agg) error {
	return w.c.MergeAgg(th, uint32(key), agg)
}

// NewCounterExecutor assembles an open-submission counter executor: one
// shared counter bank, fixed key-range dispatch over the counter space (so
// each counter has a stable owning worker), and optionally split-phase
// execution with CI-friendly thresholds — a short epoch and a small
// detection window, so promotion lands within benchmark-sized traffic.
func NewCounterExecutor(workers int, split bool, opts ...core.SplitOption) (*core.Executor, *CounterWorkload, error) {
	w := NewCounterWorkload(txds.NewCounters(ContentionCounters))
	eopts := []core.Option{
		core.WithWorkload(w),
		core.WithWorkers(workers),
		core.WithSchedulerKind(core.SchedFixed, 0, ContentionCounters-1),
	}
	if split {
		sopts := append([]core.SplitOption{
			core.SplitEpoch(500 * time.Microsecond),
			core.SplitWindow(1024),
			core.SplitPromoteShare(0.10),
			core.SplitDemoteShare(0.02, 3),
		}, opts...)
		eopts = append(eopts, core.WithSplitPhase(sopts...))
	}
	ex, err := core.NewExecutor(eopts...)
	if err != nil {
		return nil, nil, err
	}
	return ex, w, nil
}

// runContentionSplit is the split-phase acceptance experiment: a
// Zipf(s=1.3)-skewed commutative counter mix under goroutine-per-client
// traffic, split phase off vs. on. The head ranks carry most of the load,
// which key-affinity routing cannot dilute — the owning worker's queue
// serializes them. Split-on absorbs those adds into per-worker local
// accumulators and merges at epoch close; lookups on split keys park until
// the merge lands, so clients never read a partial merge.
func runContentionSplit(o Options) ([]*Table, error) {
	const workers, clients = 8, 16
	t := &Table{
		ID: "contention",
		Title: fmt.Sprintf("Zipf(1.3) counters, split phase off vs. on, %d workers, %d clients (real)",
			workers, clients),
		Cols: []string{"mode", "throughput", "vis_errors", "split_keys", "merged_epochs",
			"parked_tasks", "merge_ms"},
	}
	for mi, split := range []bool{false, true} {
		var thr, errs []float64
		var last core.ExecStats
		// One unrecorded warmup run per mode, mirroring runSharding.
		if _, _, _, err := ContentionPoint(o, split, workers, clients, o.Seed); err != nil {
			return nil, err
		}
		for r := 0; r < max(1, o.Runs); r++ {
			st, vis, elapsed, err := ContentionPoint(o, split, workers, clients, o.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			if elapsed > 0 {
				thr = append(thr, float64(st.Completed)/elapsed.Seconds())
			}
			errs = append(errs, float64(vis))
			last = st
		}
		t.Rows = append(t.Rows, []float64{float64(mi), stats.Summarize(thr).Mean,
			stats.Summarize(errs).Mean, float64(last.Split.Keys), float64(last.Split.MergedEpochs),
			float64(last.Split.ParkedTasks), float64(last.Split.MergeNs) / 1e6})
	}
	t.Notes = append(t.Notes,
		"mode: 0=split off (every op through the STM) 1=split on (commutative ops on promoted keys absorb locally, merge at epoch close)",
		"vis_errors: lookups that returned less than the client's own settled adds to that key (mean per run); split-key lookups park until the covering merge lands, so any shortfall is a broken merge",
		"split columns are the final run's ExecStats.Split; merge_ms is total coordinator merge time",
		"acceptance: split-on throughput >= split-off at this skew on multi-core CI; parity is acceptable at 1 CPU")
	return []*Table{t}, nil
}

// ContentionPoint runs one contention configuration and returns the final
// ExecStats, the visibility-error count, and the load wall-clock. Exported
// for the harness tests and kbench -json.
//
// Traffic: each client draws ranks from a private Zipf(s=1.3) source over
// the counter space and submits ~90% OpAdd(+1) / ~10% OpLookup on its own
// hottest-touched keys. Because Submit is synchronous, every one of the
// client's adds to a key has settled before it submits the lookup, so the
// returned sum must be at least the client's own running count — counting
// any shortfall as a visibility error works identically in both modes.
func ContentionPoint(o Options, split bool, workers, clients int, seed uint64) (core.ExecStats, uint64, time.Duration, error) {
	ex, _, err := NewCounterExecutor(workers, split)
	if err != nil {
		return core.ExecStats{}, 0, 0, err
	}
	ctx := context.Background()
	if err := ex.Start(ctx); err != nil {
		return core.ExecStats{}, 0, 0, err
	}
	per := max(1, o.RealTasks/clients)
	var visErrors atomic.Uint64
	errCh := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			z := dist.NewZipf(seed+uint64(c)*0x9e37, 1.3, ContentionCounters)
			mine := make(map[uint32]int64, 64)
			for i := 0; i < per; i++ {
				k := z.Rank()
				if i%10 == 9 {
					res, err := ex.Submit(ctx, core.Task{Key: uint64(k), Op: core.OpLookup})
					if err != nil {
						errCh <- err
						return
					}
					sum, _ := res.Value.(int64)
					if sum < mine[k] {
						visErrors.Add(1)
					}
					continue
				}
				if _, err := ex.Submit(ctx, core.Task{Key: uint64(k), Op: core.OpAdd, Arg: 1}); err != nil {
					errCh <- err
					return
				}
				mine[k]++
			}
		}(c)
	}
	wg.Wait()
	if err := ex.Drain(); err != nil {
		return core.ExecStats{}, 0, 0, err
	}
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return core.ExecStats{}, 0, 0, err
	default:
	}
	if err := ex.SplitErr(); err != nil {
		return core.ExecStats{}, 0, 0, err
	}
	return ex.Stats(), visErrors.Load(), elapsed, nil
}
