package harness

import (
	"testing"

	"kstm/internal/core"
	"kstm/internal/stm"
	"kstm/internal/txds"
)

// TestBatchingPointModes smokes every batching-experiment configuration at
// CI-friendly sizes: each mode completes its traffic and reports a positive
// throughput (relative ordering is the experiment's job, not this test's).
func TestBatchingPointModes(t *testing.T) {
	o := DefaultOptions()
	o.Runs = 1
	o.RealTasks = 400
	for _, mode := range BatchModes() {
		for _, size := range []int{1, 8} {
			thr, err := BatchingPoint(o, mode, size, 2, 2, 1)
			if err != nil {
				t.Fatalf("%v size=%d: %v", mode, size, err)
			}
			if thr <= 0 {
				t.Errorf("%v size=%d reported throughput %v", mode, size, thr)
			}
		}
	}
	if _, err := BatchingPoint(o, BatchSubmitAll, 0, 2, 2, 1); err == nil {
		t.Error("batch size 0 accepted")
	}
}

// TestKeyRangeStoreBatches pins the kstmd store pairing: the dictionary-key
// hash store exposes the core.RangeBatchStore face and its one-pass
// extraction matches per-range extraction.
func TestKeyRangeStoreBatches(t *testing.T) {
	f := NewKeyRangeDictFactory(txds.KindHashTable)
	w := f.NewShard(0)
	st := f.Store(0)
	if st == nil {
		t.Fatal("key-range hash store is nil")
	}
	bs, ok := st.(core.RangeBatchStore)
	if !ok {
		t.Fatal("key-range hash store does not implement core.RangeBatchStore")
	}
	th := stm.New().NewThread()
	for _, k := range []uint32{10, 20, 5000, 5001, 60000} {
		if _, err := w.Execute(th, core.Task{Op: core.OpInsert, Arg: k}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := bs.ExtractRanges(th, []core.Range{{Lo: 0, Hi: 100}, {Lo: 4000, Hi: 6000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 2 || len(out[1]) != 2 {
		t.Fatalf("batch extraction = %v", out)
	}
	// The out-of-range key survives; the extracted ones are gone.
	set := f.Shard(0)
	for k, want := range map[uint32]bool{10: false, 5000: false, 60000: true} {
		found, err := set.Contains(th, k)
		if err != nil {
			t.Fatal(err)
		}
		if found != want {
			t.Errorf("key %d present = %v, want %v", k, found, want)
		}
	}
}
