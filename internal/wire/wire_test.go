package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{},
		{ID: 1, Key: 42, Op: 0, Arg: 7},
		{ID: math.MaxUint64, Key: math.MaxUint64, Op: 255, Arg: math.MaxUint32},
	}
	var buf bytes.Buffer
	for _, req := range reqs {
		buf.Write(AppendRequest(nil, req))
	}
	for i, want := range reqs {
		f, err := ReadFrame(&buf, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != TypeRequest || f.Req != want {
			t.Fatalf("frame %d: got %+v, want %+v", i, f.Req, want)
		}
	}
	if _, err := ReadFrame(&buf, nil); err != io.EOF {
		t.Fatalf("after stream end: %v, want io.EOF", err)
	}
}

func TestDeadlineRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Key: 42, Op: 2, Arg: 7, DeadlineNS: 1},
		{ID: 2, Key: 9, DeadlineNS: math.MaxUint64},
	}
	var buf bytes.Buffer
	for _, req := range reqs {
		buf.Write(AppendRequest(nil, req))
	}
	for i, want := range reqs {
		f, err := ReadFrame(&buf, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != TypeRequestDeadline || f.Req != want {
			t.Fatalf("frame %d: type %d, got %+v, want %+v", i, f.Type, f.Req, want)
		}
	}
	// Deadline-less requests must stay byte-identical to protocol v1.
	v1 := AppendRequest(nil, Request{ID: 3, Key: 4, Op: 1, Arg: 2})
	if v1[5] != TypeRequest || len(v1) != 4+2+21 {
		t.Fatalf("deadline-less request changed shape: type %d, %d bytes", v1[5], len(v1))
	}
}

func TestDeadlineBatchRoundTrip(t *testing.T) {
	reqs := make([]Request, 17)
	for i := range reqs {
		reqs[i] = Request{ID: uint64(i + 1), Key: uint64(i * 3), Op: uint8(i % 4)}
	}
	reqs[5].DeadlineNS = 12345 // one deadline widens every entry
	b, err := AppendBatchRequest(nil, reqs)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := ReadFrame(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != TypeBatchRequestDeadline || !reflect.DeepEqual(frame.Reqs, reqs) {
		t.Fatalf("round trip mismatch: type %d, %d requests", frame.Type, len(frame.Reqs))
	}
	// The widened entries tighten the batch bound.
	over := make([]Request, MaxBatchDeadline+1)
	over[0].DeadlineNS = 1
	if _, err := AppendBatchRequest(nil, over); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized deadline batch: %v, want ErrFrameTooLarge", err)
	}
	// Truncated deadline bodies are rejected, not misparsed.
	single := AppendRequest(nil, Request{ID: 1, DeadlineNS: 9})[4:]
	if _, err := DecodeFrame(single[:len(single)-1]); !errors.Is(err, ErrBadBody) {
		t.Errorf("short deadline request: %v, want ErrBadBody", err)
	}
	if _, err := DecodeFrame(b[4 : len(b)-1]); !errors.Is(err, ErrBadBody) {
		t.Errorf("short deadline batch: %v, want ErrBadBody", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Status: StatusOK, Value: nil},
		{ID: 2, Status: StatusOK, Value: true, WaitNS: 123, ExecNS: 456},
		{ID: 3, Status: StatusOK, Value: false},
		{ID: 4, Status: StatusOK, Value: uint64(1 << 60)},
		{ID: 5, Status: StatusOK, Value: int64(-17)},
		{ID: 6, Status: StatusOK, Value: 3.5},
		{ID: 7, Status: StatusError, Value: nil, Msg: "hard failure"},
		{ID: 8, Status: StatusBusy},
		{ID: 9, Status: StatusOK, Value: []byte("hello")},
	}
	var buf bytes.Buffer
	for _, resp := range resps {
		b, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("encode %d: %v", resp.ID, err)
		}
		buf.Write(b)
	}
	scratch := make([]byte, 0, 128)
	for i, want := range resps {
		f, err := ReadFrame(&buf, &scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != TypeResponse {
			t.Fatalf("frame %d: type %d", i, f.Type)
		}
		got := f.Resp
		if got.ID != want.ID || got.Status != want.Status || got.Msg != want.Msg ||
			got.WaitNS != want.WaitNS || got.ExecNS != want.ExecNS {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
		if !reflect.DeepEqual(got.Value, want.Value) {
			t.Fatalf("frame %d: value %#v, want %#v", i, got.Value, want.Value)
		}
	}
}

func TestStringValueArrivesAsBytes(t *testing.T) {
	b, err := AppendResponse(nil, Response{ID: 1, Value: "text"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := f.Resp.Value.([]byte); !ok || string(got) != "text" {
		t.Fatalf("value = %#v, want []byte(\"text\")", f.Resp.Value)
	}
}

func TestEncodeRejectsBadValue(t *testing.T) {
	if _, err := AppendResponse(nil, Response{Value: struct{ X int }{1}}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("struct value: %v, want ErrBadValue", err)
	}
	if _, err := AppendResponse(nil, Response{Value: make([]byte, MaxFrame)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized value: %v, want ErrFrameTooLarge", err)
	}
}

func TestOversizedMessageTruncated(t *testing.T) {
	b, err := AppendResponse(nil, Response{ID: 1, Status: StatusError, Msg: strings.Repeat("x", 1<<17)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > MaxFrame+4 {
		t.Fatalf("frame %d bytes exceeds MaxFrame", len(b))
	}
	if got := f.Resp.Msg; len(got) == 0 || len(got) >= 1<<17 || !strings.HasPrefix(strings.Repeat("x", 1<<17), got) {
		t.Fatalf("message not a truncated prefix: len=%d", len(got))
	}
}

func TestReadFrameRejectsOversizedClaim(t *testing.T) {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, MaxFrame+1)
	b = append(b, make([]byte, 64)...)
	if _, err := ReadFrame(bytes.NewReader(b), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// An undersized claim (shorter than the version+type header) is equally
	// invalid.
	b = binary.BigEndian.AppendUint32(nil, 1)
	b = append(b, 0)
	if _, err := ReadFrame(bytes.NewReader(b), nil); !errors.Is(err, ErrFrameTooSmall) {
		t.Fatalf("got %v, want ErrFrameTooSmall", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	full := AppendRequest(nil, Request{ID: 9, Key: 3, Op: 1, Arg: 2})
	// Every strict prefix must fail with ErrTruncated (or io.EOF at zero
	// bytes), never hang or panic.
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]), nil)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(full))
		}
		if cut >= 4 && !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix %d: %v, want ErrTruncated", cut, err)
		}
	}
	if _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	req := AppendRequest(nil, Request{ID: 1})[4:] // strip length prefix
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrFrameTooSmall},
		{"one byte", []byte{Version}, ErrFrameTooSmall},
		{"bad version", append([]byte{Version + 1}, req[1:]...), ErrBadVersion},
		{"bad type", []byte{Version, 99, 0}, ErrBadType},
		{"short request", req[:len(req)-1], ErrBadBody},
		{"long request", append(append([]byte{}, req...), 0), ErrBadBody},
		{"short response", []byte{Version, TypeResponse, 1, 2, 3}, ErrBadBody},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeResponseBodyRejects(t *testing.T) {
	// A well-formed response, then surgical corruption of the value/message
	// region (everything after the fixed fields).
	full, err := AppendResponse(nil, Response{ID: 1, Status: StatusOK, Value: []byte("abcd"), Msg: "m"})
	if err != nil {
		t.Fatal(err)
	}
	payload := full[4:]
	const fixedEnd = 2 + 8 + 1 + 8 + 8 // header + id + status + wait + exec
	// Truncate inside the value.
	if _, err := DecodeFrame(payload[:fixedEnd+2]); !errors.Is(err, ErrBadBody) {
		t.Errorf("truncated value: %v, want ErrBadBody", err)
	}
	// Unknown value tag.
	corrupt := append([]byte{}, payload...)
	corrupt[fixedEnd] = 200
	if _, err := DecodeFrame(corrupt); !errors.Is(err, ErrBadBody) {
		t.Errorf("bad value tag: %v, want ErrBadBody", err)
	}
	// Message length pointing past the frame end.
	corrupt = append([]byte{}, payload...)
	corrupt[len(corrupt)-3] = 0xff // message length high byte
	if _, err := DecodeFrame(corrupt); !errors.Is(err, ErrBadBody) {
		t.Errorf("overlong message claim: %v, want ErrBadBody", err)
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	reqs := make([]Request, 37)
	for i := range reqs {
		reqs[i] = Request{ID: uint64(i + 1), Key: uint64(i * 31), Op: uint8(i % 4), Arg: uint32(i * 7)}
	}
	b, err := AppendBatchRequest(nil, reqs)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := ReadFrame(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != TypeBatchRequest || !reflect.DeepEqual(frame.Reqs, reqs) {
		t.Fatalf("round trip mismatch: type %d, %d requests", frame.Type, len(frame.Reqs))
	}
	if _, err := AppendBatchRequest(nil, nil); err == nil {
		t.Error("empty batch encoded")
	}
	if _, err := AppendBatchRequest(nil, make([]Request, MaxBatch+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized batch: %v, want ErrFrameTooLarge", err)
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Status: StatusOK, Value: true, WaitNS: 10, ExecNS: 20},
		{ID: 2, Status: StatusError, Value: nil, Msg: "boom"},
		{ID: 3, Status: StatusOK, Value: uint64(99)},
		{ID: 4, Status: StatusOK, Value: []byte("bytes")},
	}
	b, consumed, err := AppendBatchResponses(nil, resps)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(resps) {
		t.Fatalf("consumed %d of %d", consumed, len(resps))
	}
	frame, err := ReadFrame(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != TypeBatchResponse || !reflect.DeepEqual(frame.Resps, resps) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", frame.Resps, resps)
	}
}

// TestBatchResponseSplitsAtFrameBound pins the greedy packing: when the
// batch overflows MaxFrame, AppendBatchResponses consumes a prefix and the
// caller loops — and the two frames decode back to the full set.
func TestBatchResponseSplitsAtFrameBound(t *testing.T) {
	big := make([]byte, 20*1024)
	resps := make([]Response, 5)
	for i := range resps {
		resps[i] = Response{ID: uint64(i), Status: StatusOK, Value: big}
	}
	var frames [][]byte
	rest := resps
	for len(rest) > 0 {
		b, n, err := AppendBatchResponses(nil, rest)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("no progress")
		}
		frames = append(frames, b)
		rest = rest[n:]
	}
	if len(frames) < 2 {
		t.Fatalf("expected a split, got %d frame(s)", len(frames))
	}
	var got []Response
	for _, fb := range frames {
		frame, err := ReadFrame(bytes.NewReader(fb), nil)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, frame.Resps...)
	}
	if !reflect.DeepEqual(got, resps) {
		t.Fatal("split batch did not reassemble")
	}
}

func TestBatchDecodeRejects(t *testing.T) {
	good, err := AppendBatchRequest(nil, []Request{{ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte{}, good[4:]...)
	// Count says two, body holds one.
	payload[3] = 2
	if _, err := DecodeFrame(payload); !errors.Is(err, ErrBadBody) {
		t.Errorf("count mismatch: %v, want ErrBadBody", err)
	}
	// Zero-count batches are invalid.
	if _, err := DecodeFrame([]byte{Version, TypeBatchRequest, 0, 0}); !errors.Is(err, ErrBadBody) {
		t.Errorf("zero count: %v, want ErrBadBody", err)
	}
	// A hostile response count cannot force a large allocation: the body
	// cannot hold the claimed entries.
	hostile := []byte{Version, TypeBatchResponse, 0xff, 0xff}
	if _, err := DecodeFrame(hostile); !errors.Is(err, ErrBadBody) {
		t.Errorf("hostile count: %v, want ErrBadBody", err)
	}
}

func TestCheckValue(t *testing.T) {
	for _, v := range []any{nil, true, uint64(1), int64(-1), 1, uint32(2), 1.5, "s", []byte("b")} {
		if err := CheckValue(v); err != nil {
			t.Errorf("CheckValue(%T) = %v", v, err)
		}
	}
	if err := CheckValue(struct{}{}); !errors.Is(err, ErrBadValue) {
		t.Errorf("struct: %v, want ErrBadValue", err)
	}
	if err := CheckValue(make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized bytes: %v, want ErrFrameTooLarge", err)
	}
}

func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendRequest(nil, Request{ID: 1, Key: 2, Op: 3, Arg: 4})[4:])
	if b, err := AppendResponse(nil, Response{ID: 5, Status: StatusOK, Value: true, Msg: ""}); err == nil {
		f.Add(b[4:])
	}
	if b, err := AppendResponse(nil, Response{ID: 6, Status: StatusError, Value: []byte("v"), Msg: "boom"}); err == nil {
		f.Add(b[4:])
	}
	if b, err := AppendBatchRequest(nil, []Request{{ID: 1}, {ID: 2, Key: 3, Op: 1, Arg: 4}}); err == nil {
		f.Add(b[4:])
	}
	f.Add(AppendRequest(nil, Request{ID: 1, Key: 2, Op: 3, Arg: 4, DeadlineNS: 5_000_000})[4:])
	if b, err := AppendBatchRequest(nil, []Request{{ID: 1, DeadlineNS: 1}, {ID: 2, Key: 3}}); err == nil {
		f.Add(b[4:])
	}
	if b, _, err := AppendBatchResponses(nil, []Response{{ID: 7, Status: StatusOK, Value: 1.5}, {ID: 8, Status: StatusBusy, Msg: "busy"}}); err == nil {
		f.Add(b[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{Version, TypeResponse})
	f.Add([]byte{Version, TypeBatchRequest, 0, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		frame, err := DecodeFrame(b)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same frame
		// (requests are fixed-size; responses must round-trip exactly).
		switch frame.Type {
		case TypeRequest, TypeRequestDeadline:
			// A decoded deadline frame with DeadlineNS == 0 re-encodes as a
			// v1 frame; the decoded request must still match.
			again, err := DecodeFrame(AppendRequest(nil, frame.Req)[4:])
			if err != nil || again.Req != frame.Req {
				t.Fatalf("request re-encode mismatch: %v %+v %+v", err, again.Req, frame.Req)
			}
		case TypeResponse:
			enc, err := AppendResponse(nil, frame.Resp)
			if err != nil {
				t.Fatalf("decoded response does not re-encode: %v", err)
			}
			again, err := DecodeFrame(enc[4:])
			if err != nil || !reflect.DeepEqual(again.Resp, frame.Resp) {
				t.Fatalf("response re-encode mismatch: %v\n got %+v\nwant %+v", err, again.Resp, frame.Resp)
			}
		case TypeBatchRequest, TypeBatchRequestDeadline:
			enc, err := AppendBatchRequest(nil, frame.Reqs)
			if err != nil {
				t.Fatalf("decoded batch does not re-encode: %v", err)
			}
			again, err := DecodeFrame(enc[4:])
			if err != nil || !reflect.DeepEqual(again.Reqs, frame.Reqs) {
				t.Fatalf("batch request re-encode mismatch: %v", err)
			}
		case TypeBatchResponse:
			enc, n, err := AppendBatchResponses(nil, frame.Resps)
			if err != nil || n != len(frame.Resps) {
				// A decoded batch always fits one frame by construction.
				t.Fatalf("decoded batch does not re-encode: %v (consumed %d/%d)", err, n, len(frame.Resps))
			}
			again, err := DecodeFrame(enc[4:])
			if err != nil || !reflect.DeepEqual(again.Resps, frame.Resps) {
				t.Fatalf("batch response re-encode mismatch: %v", err)
			}
		}
	})
}
