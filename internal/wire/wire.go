// Package wire is the kstmd network protocol: a compact binary framing for
// submitting executor tasks over a byte stream and reading their results
// back, designed for pipelining (requests carry ids; responses may arrive
// out of order) and for hostile input (the decoder bounds every length it
// reads before allocating).
//
// Frame layout (all integers big-endian):
//
//	+--------+---------+--------+----------------------+
//	| len u32| ver  u8 | typ u8 | body (len-2 bytes)   |
//	+--------+---------+--------+----------------------+
//
// len counts the bytes after the length field (version, type and body) and
// is bounded by MaxFrame. Version is Version (1); a decoder rejects frames
// from any other version so the format can evolve.
//
// Request body (TypeRequest):
//
//	id u64 | key u64 | op u8 | arg u32
//
// Deadline-carrying request body (TypeRequestDeadline, and per-entry in
// TypeBatchRequestDeadline):
//
//	id u64 | key u64 | op u8 | arg u32 | deadline u64 (relative ns, 0 = none)
//
// The deadline is RELATIVE (nanoseconds from the moment the server decodes
// the frame), so client and server clocks never need to agree; the server
// sheds tasks still queued past it with StatusDeadline (DESIGN.md §10.1).
// Encoders emit the deadline-less v1 bodies whenever DeadlineNS is zero, so
// a client that never sets deadlines produces byte-identical traffic to
// protocol version 1.
//
// Response body (TypeResponse):
//
//	id u64 | status u8 | wait u64 (ns) | exec u64 (ns) | value | msg
//
// where value is a tagged scalar (TagNil/TagFalse/TagTrue/TagUint/TagInt/
// TagFloat/TagBytes) and msg is a u16-length-prefixed UTF-8 error message,
// empty for StatusOK.
//
// Batch frames amortize the per-frame syscall for pipelined traffic:
//
//	TypeBatchRequest body:  count u16 | count × request body
//	TypeBatchResponse body: count u16 | count × response body
//
// A batch request frame carries at most MaxBatch requests; batch responses
// pack greedily up to MaxFrame. Servers answer with batch frames only on
// connections that have sent one (older clients keep getting TypeResponse).
// See DESIGN.md "Network front-end" for the status ↔ executor error mapping.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version this package speaks.
const Version = 1

// MaxFrame bounds the length field: no legal frame is larger, and a decoder
// must reject bigger claims before allocating. Responses carry at most a
// small scalar and a short message; 64 KiB leaves generous headroom.
const MaxFrame = 64 * 1024

// Frame types.
const (
	TypeRequest  uint8 = 1
	TypeResponse uint8 = 2
	// TypeBatchRequest carries many requests in one frame (one syscall):
	// body is a u16 count followed by count request bodies back to back.
	TypeBatchRequest uint8 = 3
	// TypeBatchResponse carries many responses in one frame: a u16 count
	// followed by count response bodies back to back. A server sends it
	// only to peers that have sent a TypeBatchRequest on the connection
	// (proof they speak version-1 batching); plain clients keep receiving
	// TypeResponse frames.
	TypeBatchResponse uint8 = 4
	// TypeRequestDeadline is a request whose body carries a trailing relative
	// deadline (u64 nanoseconds). Emitted only when the deadline is non-zero,
	// so deadline-less clients stay wire-compatible with v1 servers.
	TypeRequestDeadline uint8 = 5
	// TypeBatchRequestDeadline is TypeBatchRequest with deadline-carrying
	// entries: u16 count, then count × (request body + deadline u64).
	TypeBatchRequestDeadline uint8 = 6
)

// MaxBatch is the most requests one TypeBatchRequest frame can carry; bigger
// batches must be split across frames.
const MaxBatch = (MaxFrame - headerSize - 2) / requestSize

// MaxBatchDeadline is the analogous bound for TypeBatchRequestDeadline
// frames, whose entries are 8 bytes wider.
const MaxBatchDeadline = (MaxFrame - headerSize - 2) / requestDeadlineSize

// Status codes carried in responses.
const (
	// StatusOK: the task executed; Value holds its result.
	StatusOK uint8 = 0
	// StatusBusy: the executor shed the task (reject-mode backpressure,
	// core.ErrQueueFull). The client may retry.
	StatusBusy uint8 = 1
	// StatusCancelled: the task was abandoned before execution because its
	// connection's context was cancelled (counted under ExecStats.Cancelled).
	StatusCancelled uint8 = 2
	// StatusStopped: the server is draining or stopped and no longer
	// accepts or executes work (core.ErrNotRunning / core.ErrStopped).
	StatusStopped uint8 = 3
	// StatusBadRequest: the frame decoded but the request is malformed
	// (e.g. an opcode the server's workload rejects).
	StatusBadRequest uint8 = 4
	// StatusError: the workload returned a hard error; Msg carries it.
	StatusError uint8 = 5
	// StatusDeadline: the request's relative deadline expired while the task
	// was still queued, so the server shed it without executing (counted
	// under ExecStats.DeadlineExpired). Retrying is pointless unless the
	// client also raises the deadline.
	StatusDeadline uint8 = 6
)

// StatusName returns a human-readable status label.
func StatusName(s uint8) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBusy:
		return "busy"
	case StatusCancelled:
		return "cancelled"
	case StatusStopped:
		return "stopped"
	case StatusBadRequest:
		return "bad-request"
	case StatusError:
		return "error"
	case StatusDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("status(%d)", s)
	}
}

// Value tags.
const (
	TagNil   uint8 = 0
	TagFalse uint8 = 1
	TagTrue  uint8 = 2
	TagUint  uint8 = 3 // u64
	TagInt   uint8 = 4 // i64 (two's complement u64)
	TagFloat uint8 = 5 // IEEE-754 bits as u64
	TagBytes uint8 = 6 // u16 length + bytes (strings travel as bytes)
)

// Decoder errors. ErrTruncated wraps io errors from short reads so callers
// can distinguish "peer hung up mid-frame" from protocol violations.
var (
	ErrFrameTooLarge = errors.New("wire: frame length exceeds MaxFrame")
	ErrFrameTooSmall = errors.New("wire: frame shorter than header")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrBadType       = errors.New("wire: unknown frame type")
	ErrBadBody       = errors.New("wire: malformed frame body")
	ErrBadValue      = errors.New("wire: unencodable task value")
	ErrTruncated     = errors.New("wire: truncated frame")
)

// Request is one task submission. ID is chosen by the client and echoed in
// the matching Response; the server treats it as opaque.
type Request struct {
	ID  uint64
	Key uint64
	Op  uint8
	Arg uint32
	// DeadlineNS is the task's relative deadline in nanoseconds from server
	// receipt; zero means none. Encoders pick the deadline-carrying frame
	// types only when it is set.
	DeadlineNS uint64
}

// Response is one task outcome.
type Response struct {
	ID     uint64
	Status uint8
	// WaitNS/ExecNS are the executor's queue-wait and service time for the
	// task in nanoseconds (zero when the task never executed).
	WaitNS uint64
	ExecNS uint64
	// Value is the workload's task value: nil, bool, uint64, int64,
	// float64 or []byte (strings arrive as []byte).
	Value any
	// Msg is the error message for non-OK statuses.
	Msg string
}

// Body sizes.
const (
	headerSize          = 2               // version + type, after the length field
	requestSize         = 8 + 8 + 1 + 4   // id + key + op + arg
	requestDeadlineSize = requestSize + 8 // + deadline
	respFixed           = 8 + 1 + 8 + 8   // id + status + wait + exec
	maxMsgLen           = math.MaxUint16  // msg length field is u16
	maxValueLen         = MaxFrame - 1024 // sanity bound for TagBytes payloads
)

// AppendRequest appends req as one frame to dst and returns the extended
// slice; it never fails. Requests with a deadline travel as
// TypeRequestDeadline frames; deadline-less requests stay byte-identical to
// protocol v1.
//
//kstmvet:hotpath
func AppendRequest(dst []byte, req Request) []byte {
	if req.DeadlineNS == 0 {
		dst = binary.BigEndian.AppendUint32(dst, uint32(headerSize+requestSize))
		dst = append(dst, Version, TypeRequest)
	} else {
		dst = binary.BigEndian.AppendUint32(dst, uint32(headerSize+requestDeadlineSize))
		dst = append(dst, Version, TypeRequestDeadline)
	}
	dst = binary.BigEndian.AppendUint64(dst, req.ID)
	dst = binary.BigEndian.AppendUint64(dst, req.Key)
	dst = append(dst, req.Op)
	dst = binary.BigEndian.AppendUint32(dst, req.Arg)
	if req.DeadlineNS != 0 {
		dst = binary.BigEndian.AppendUint64(dst, req.DeadlineNS)
	}
	return dst
}

// AppendBatchRequest appends reqs as one batch frame to dst: a v1
// TypeBatchRequest when no request carries a deadline, otherwise a
// TypeBatchRequestDeadline with every entry widened. It fails only on an
// empty batch or one above the applicable bound (MaxBatch, or
// MaxBatchDeadline when any deadline is set — split those).
//
//kstmvet:hotpath
func AppendBatchRequest(dst []byte, reqs []Request) ([]byte, error) {
	if len(reqs) == 0 {
		return dst, fmt.Errorf("%w: empty batch", ErrBadBody)
	}
	deadline := false
	for i := range reqs {
		if reqs[i].DeadlineNS != 0 {
			deadline = true
			break
		}
	}
	if deadline {
		if len(reqs) > MaxBatchDeadline {
			return dst, ErrFrameTooLarge
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(headerSize+2+len(reqs)*requestDeadlineSize))
		dst = append(dst, Version, TypeBatchRequestDeadline)
	} else {
		if len(reqs) > MaxBatch {
			return dst, ErrFrameTooLarge
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(headerSize+2+len(reqs)*requestSize))
		dst = append(dst, Version, TypeBatchRequest)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(reqs)))
	for _, req := range reqs {
		dst = binary.BigEndian.AppendUint64(dst, req.ID)
		dst = binary.BigEndian.AppendUint64(dst, req.Key)
		dst = append(dst, req.Op)
		dst = binary.BigEndian.AppendUint32(dst, req.Arg)
		if deadline {
			dst = binary.BigEndian.AppendUint64(dst, req.DeadlineNS)
		}
	}
	return dst, nil
}

// AppendBatchResponses appends as many of resps as fit one TypeBatchResponse
// frame (greedy, in order, at least one) and returns the extended slice and
// the count consumed; callers loop until the batch is drained. Values must
// already be wire-encodable (CheckValue) — an unencodable value aborts the
// frame with ErrBadValue and consumed 0.
//
//kstmvet:hotpath
func AppendBatchResponses(dst []byte, resps []Response) (out []byte, consumed int, err error) {
	if len(resps) == 0 {
		return dst, 0, fmt.Errorf("%w: empty batch", ErrBadBody)
	}
	frameStart := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 0) // length patched below
	dst = append(dst, Version, TypeBatchResponse)
	dst = binary.BigEndian.AppendUint16(dst, 0) // count patched below
	for _, resp := range resps {
		mark := len(dst)
		var aerr error
		dst, aerr = appendResponseBody(dst, resp)
		if aerr != nil {
			if consumed == 0 {
				return dst[:frameStart], 0, aerr
			}
			dst = dst[:mark]
			break
		}
		if len(dst)-frameStart-4 > MaxFrame {
			// This response overflows the frame: roll it back. consumed==0
			// means the single response alone is too large — the caller
			// should fall back to AppendResponse, which truncates.
			dst = dst[:mark]
			if consumed == 0 {
				return dst[:frameStart], 0, ErrFrameTooLarge
			}
			break
		}
		consumed++
	}
	binary.BigEndian.PutUint32(dst[frameStart:], uint32(len(dst)-frameStart-4))
	binary.BigEndian.PutUint16(dst[frameStart+6:], uint16(consumed))
	return dst, consumed, nil
}

// appendResponseBody appends one response body (no frame header) to dst,
// rolling back on an unencodable value. Messages truncate to the u16 bound.
//
//kstmvet:hotpath
func appendResponseBody(dst []byte, resp Response) ([]byte, error) {
	start := len(dst)
	dst = binary.BigEndian.AppendUint64(dst, resp.ID)
	dst = append(dst, resp.Status)
	dst = binary.BigEndian.AppendUint64(dst, resp.WaitNS)
	dst = binary.BigEndian.AppendUint64(dst, resp.ExecNS)
	var err error
	dst, err = appendValue(dst, resp.Value)
	if err != nil {
		return dst[:start], err
	}
	msg := resp.Msg
	if len(msg) > maxMsgLen {
		msg = msg[:maxMsgLen]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...), nil
}

// CheckValue reports whether v is in the wire's tagged-scalar vocabulary
// (and, for byte/string payloads, within the size bound) — the pre-flight a
// server runs before batching a response, so encoding cannot fail mid-frame.
func CheckValue(v any) error {
	switch x := v.(type) {
	case nil, bool, uint64, uint32, int64, int, float64:
		return nil
	case string:
		if len(x) > maxValueLen || len(x) > maxMsgLen {
			return ErrFrameTooLarge
		}
		return nil
	case []byte:
		if len(x) > maxValueLen || len(x) > maxMsgLen {
			return ErrFrameTooLarge
		}
		return nil
	default:
		return fmt.Errorf("%w: %T", ErrBadValue, v)
	}
}

// AppendResponse appends resp as one frame to dst. It fails only on a value
// outside the tagged-scalar vocabulary or an oversized payload; messages are
// truncated to the u16 bound rather than rejected.
//
//kstmvet:hotpath
func AppendResponse(dst []byte, resp Response) ([]byte, error) {
	val, err := appendValue(nil, resp.Value)
	if err != nil {
		return dst, err
	}
	msg := resp.Msg
	if limit := min(maxMsgLen, MaxFrame-headerSize-respFixed-len(val)-2); len(msg) > limit {
		msg = msg[:limit]
	}
	bodyLen := headerSize + respFixed + len(val) + 2 + len(msg)
	if bodyLen > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(bodyLen))
	dst = append(dst, Version, TypeResponse)
	dst = binary.BigEndian.AppendUint64(dst, resp.ID)
	dst = append(dst, resp.Status)
	dst = binary.BigEndian.AppendUint64(dst, resp.WaitNS)
	dst = binary.BigEndian.AppendUint64(dst, resp.ExecNS)
	dst = append(dst, val...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	return dst, nil
}

// appendValue encodes a task value as a tagged scalar.
//
//kstmvet:hotpath
func appendValue(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, TagNil), nil
	case bool:
		if x {
			return append(dst, TagTrue), nil
		}
		return append(dst, TagFalse), nil
	case uint64:
		return binary.BigEndian.AppendUint64(append(dst, TagUint), x), nil
	case uint32:
		return binary.BigEndian.AppendUint64(append(dst, TagUint), uint64(x)), nil
	case int64:
		return binary.BigEndian.AppendUint64(append(dst, TagInt), uint64(x)), nil
	case int:
		return binary.BigEndian.AppendUint64(append(dst, TagInt), uint64(x)), nil
	case float64:
		return binary.BigEndian.AppendUint64(append(dst, TagFloat), math.Float64bits(x)), nil
	case string:
		return appendBytesValue(dst, []byte(x))
	case []byte:
		return appendBytesValue(dst, x)
	default:
		return dst, fmt.Errorf("%w: %T", ErrBadValue, v)
	}
}

//kstmvet:hotpath
func appendBytesValue(dst, b []byte) ([]byte, error) {
	if len(b) > maxValueLen || len(b) > maxMsgLen {
		return dst, ErrFrameTooLarge
	}
	dst = append(dst, TagBytes)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
	return append(dst, b...), nil
}

// decodeValue reads one tagged scalar from b, returning the value and the
// remainder.
func decodeValue(b []byte) (any, []byte, error) {
	if len(b) < 1 {
		return nil, nil, ErrBadBody
	}
	tag, b := b[0], b[1:]
	switch tag {
	case TagNil:
		return nil, b, nil
	case TagFalse:
		return false, b, nil
	case TagTrue:
		return true, b, nil
	case TagUint, TagInt, TagFloat:
		if len(b) < 8 {
			return nil, nil, ErrBadBody
		}
		u := binary.BigEndian.Uint64(b)
		b = b[8:]
		switch tag {
		case TagUint:
			return u, b, nil
		case TagInt:
			return int64(u), b, nil
		default:
			return math.Float64frombits(u), b, nil
		}
	case TagBytes:
		if len(b) < 2 {
			return nil, nil, ErrBadBody
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return nil, nil, ErrBadBody
		}
		out := make([]byte, n)
		copy(out, b[:n])
		return out, b[n:], nil
	default:
		return nil, nil, fmt.Errorf("%w: value tag %d", ErrBadBody, tag)
	}
}

// Frame is one decoded frame, selected by Type: Req for TypeRequest, Resp
// for TypeResponse, Reqs for TypeBatchRequest, Resps for TypeBatchResponse.
type Frame struct {
	Type  uint8
	Req   Request
	Resp  Response
	Reqs  []Request
	Resps []Response
}

// ReadFrame reads and decodes one frame from r. A short read surfaces as
// ErrTruncated (wrapping the io error); a clean EOF on the first length byte
// returns io.EOF unwrapped, so stream consumers can end loops normally.
//
// scratch, when non-nil, is the caller's reusable read buffer: ReadFrame
// grows it as needed and writes the growth back, so a long-lived read loop
// stops allocating once it has seen its largest frame. Pass nil for one-off
// reads.
//
//kstmvet:hotpath
func ReadFrame(r io.Reader, scratch *[]byte) (Frame, error) {
	// The length prefix is read through the scratch buffer too — a local
	// [4]byte array would escape into io.ReadFull's interface call and cost
	// one heap allocation per frame.
	var buf []byte
	if scratch != nil {
		buf = *scratch
	}
	if cap(buf) < 4 {
		buf = make([]byte, 4) //kstmvet:ignore grow-once: the scratch pointer retains the buffer across frames
		if scratch != nil {
			*scratch = buf
		}
	}
	buf = buf[:4]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(buf)
	if n > MaxFrame {
		return Frame{}, ErrFrameTooLarge
	}
	if n < headerSize {
		return Frame{}, ErrFrameTooSmall
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n) //kstmvet:ignore grow-once: the scratch pointer retains the buffer at the high-water mark
		if scratch != nil {
			*scratch = buf
		}
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	return DecodeFrame(buf)
}

// DecodeFrame decodes one frame payload (the bytes after the length field).
// It is the fuzz entry point: any input must return a Frame or an error,
// never panic, and never retain b.
//
//kstmvet:hotpath
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) < headerSize {
		return Frame{}, ErrFrameTooSmall
	}
	if len(b) > MaxFrame {
		return Frame{}, ErrFrameTooLarge
	}
	if b[0] != Version {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	typ, body := b[1], b[2:]
	switch typ {
	case TypeRequest:
		if len(body) != requestSize {
			return Frame{}, fmt.Errorf("%w: request body %d bytes, want %d", ErrBadBody, len(body), requestSize)
		}
		return Frame{Type: TypeRequest, Req: Request{
			ID:  binary.BigEndian.Uint64(body[0:8]),
			Key: binary.BigEndian.Uint64(body[8:16]),
			Op:  body[16],
			Arg: binary.BigEndian.Uint32(body[17:21]),
		}}, nil
	case TypeRequestDeadline:
		if len(body) != requestDeadlineSize {
			return Frame{}, fmt.Errorf("%w: deadline request body %d bytes, want %d", ErrBadBody, len(body), requestDeadlineSize)
		}
		return Frame{Type: TypeRequestDeadline, Req: Request{
			ID:         binary.BigEndian.Uint64(body[0:8]),
			Key:        binary.BigEndian.Uint64(body[8:16]),
			Op:         body[16],
			Arg:        binary.BigEndian.Uint32(body[17:21]),
			DeadlineNS: binary.BigEndian.Uint64(body[21:29]),
		}}, nil
	case TypeResponse:
		resp, rest, err := decodeResponseBody(body) //kstmvet:ignore decoded values and messages are fresh by contract: DecodeFrame never retains b
		if err != nil {
			return Frame{}, err
		}
		if len(rest) != 0 {
			return Frame{}, fmt.Errorf("%w: %d trailing bytes after response", ErrBadBody, len(rest))
		}
		return Frame{Type: TypeResponse, Resp: resp}, nil
	case TypeBatchRequest:
		if len(body) < 2 {
			return Frame{}, fmt.Errorf("%w: missing batch count", ErrBadBody)
		}
		n := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if n == 0 {
			return Frame{}, fmt.Errorf("%w: empty batch", ErrBadBody)
		}
		// The size check precedes the allocation: a hostile count cannot
		// reserve more than the (already MaxFrame-bounded) body justifies.
		if len(body) != n*requestSize {
			return Frame{}, fmt.Errorf("%w: batch body %d bytes, %d requests want %d", ErrBadBody, len(body), n, n*requestSize)
		}
		reqs := make([]Request, n) //kstmvet:ignore the decoded batch is the caller's result; one slice per frame, bounded by MaxFrame
		for i := range reqs {
			b := body[i*requestSize:]
			reqs[i] = Request{
				ID:  binary.BigEndian.Uint64(b[0:8]),
				Key: binary.BigEndian.Uint64(b[8:16]),
				Op:  b[16],
				Arg: binary.BigEndian.Uint32(b[17:21]),
			}
		}
		return Frame{Type: TypeBatchRequest, Reqs: reqs}, nil
	case TypeBatchRequestDeadline:
		if len(body) < 2 {
			return Frame{}, fmt.Errorf("%w: missing batch count", ErrBadBody)
		}
		n := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if n == 0 {
			return Frame{}, fmt.Errorf("%w: empty batch", ErrBadBody)
		}
		if len(body) != n*requestDeadlineSize {
			return Frame{}, fmt.Errorf("%w: deadline batch body %d bytes, %d requests want %d", ErrBadBody, len(body), n, n*requestDeadlineSize)
		}
		reqs := make([]Request, n) //kstmvet:ignore the decoded batch is the caller's result; one slice per frame, bounded by MaxFrame
		for i := range reqs {
			b := body[i*requestDeadlineSize:]
			reqs[i] = Request{
				ID:         binary.BigEndian.Uint64(b[0:8]),
				Key:        binary.BigEndian.Uint64(b[8:16]),
				Op:         b[16],
				Arg:        binary.BigEndian.Uint32(b[17:21]),
				DeadlineNS: binary.BigEndian.Uint64(b[21:29]),
			}
		}
		return Frame{Type: TypeBatchRequestDeadline, Reqs: reqs}, nil
	case TypeBatchResponse:
		if len(body) < 2 {
			return Frame{}, fmt.Errorf("%w: missing batch count", ErrBadBody)
		}
		n := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if n == 0 {
			return Frame{}, fmt.Errorf("%w: empty batch", ErrBadBody)
		}
		// Each response body is at least respFixed+1+2 bytes; bound the
		// allocation by what the body could actually hold.
		if n*(respFixed+3) > len(body) {
			return Frame{}, fmt.Errorf("%w: %d responses cannot fit %d bytes", ErrBadBody, n, len(body))
		}
		resps := make([]Response, 0, n) //kstmvet:ignore the decoded batch is the caller's result; one slice per frame, bounded by MaxFrame
		for i := 0; i < n; i++ {
			resp, rest, err := decodeResponseBody(body) //kstmvet:ignore decoded values and messages are fresh by contract: DecodeFrame never retains b
			if err != nil {
				return Frame{}, err
			}
			resps = append(resps, resp)
			body = rest
		}
		if len(body) != 0 {
			return Frame{}, fmt.Errorf("%w: %d trailing bytes after batch", ErrBadBody, len(body))
		}
		return Frame{Type: TypeBatchResponse, Resps: resps}, nil
	default:
		return Frame{}, fmt.Errorf("%w: %d", ErrBadType, typ)
	}
}

// decodeResponseBody decodes one response body from b, returning the
// remainder (batch frames concatenate several).
func decodeResponseBody(b []byte) (Response, []byte, error) {
	if len(b) < respFixed {
		return Response{}, nil, fmt.Errorf("%w: response body %d bytes, want >= %d", ErrBadBody, len(b), respFixed)
	}
	resp := Response{
		ID:     binary.BigEndian.Uint64(b[0:8]),
		Status: b[8],
		WaitNS: binary.BigEndian.Uint64(b[9:17]),
		ExecNS: binary.BigEndian.Uint64(b[17:25]),
	}
	val, rest, err := decodeValue(b[respFixed:])
	if err != nil {
		return Response{}, nil, err
	}
	resp.Value = val
	if len(rest) < 2 {
		return Response{}, nil, fmt.Errorf("%w: missing message length", ErrBadBody)
	}
	msgLen := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < msgLen {
		return Response{}, nil, fmt.Errorf("%w: message %d bytes, length says %d", ErrBadBody, len(rest), msgLen)
	}
	resp.Msg = string(rest[:msgLen])
	return resp, rest[msgLen:], nil
}
