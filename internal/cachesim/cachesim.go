// Package cachesim models a per-processor set-associative LRU cache with a
// simple coherence approximation, standing in for the SunFire 6800's 8 MB
// per-processor L2 caches in the discrete-event simulator (DESIGN.md §6).
//
// Coherence is modelled with block versions: every write to a block bumps a
// global version counter, and a cached copy hits only if its stored version
// is current. A block repeatedly written by one processor therefore stays
// hot in that processor's cache, while a block written from many processors
// misses almost every time — exactly the invalidation traffic that makes the
// paper's round-robin executor slow and its key-partitioned executors fast.
package cachesim

import "math/bits"

// Cache is one processor's cache. It is not safe for concurrent use; the
// simulator gives each simulated processor its own instance and runs
// single-threaded.
type Cache struct {
	setMask uint32
	ways    int
	// tags and versions are sets*ways entries, way-major within a set.
	// tag 0 means empty; stored tags are block+1.
	tags     []uint32
	versions []uint32
	hits     uint64
	misses   uint64
}

// New returns a cache with the given total line count and associativity.
// lines is rounded up to a power of two; ways is clamped to [1, lines].
func New(lines, ways int) *Cache {
	if lines <= 0 {
		lines = 1
	}
	if ways <= 0 {
		ways = 1
	}
	if ways > lines {
		ways = lines
	}
	l := 1 << uint(bits.Len(uint(lines-1)))
	if l < lines {
		l = lines
	}
	sets := l / ways
	if sets == 0 {
		sets = 1
	}
	// Sets must be a power of two for the mask; round down.
	sets = 1 << uint(bits.Len(uint(sets))-1)
	return &Cache{
		setMask:  uint32(sets - 1),
		ways:     ways,
		tags:     make([]uint32, sets*ways),
		versions: make([]uint32, sets*ways),
	}
}

// Access looks up the block with the given current version. A hit requires
// the block to be cached with a matching version (a stale copy counts as a
// coherence miss). The block is installed/promoted to most-recently-used
// either way, with its current version.
func (c *Cache) Access(block uint32, version uint32) bool {
	set := int(block&c.setMask) * c.ways
	tag := block + 1
	for i := 0; i < c.ways; i++ {
		if c.tags[set+i] == tag {
			hit := c.versions[set+i] == version
			// Promote to MRU (slot set+0) by shifting the earlier
			// entries down.
			t, v := c.tags[set+i], version
			copy(c.tags[set+1:set+i+1], c.tags[set:set+i])
			copy(c.versions[set+1:set+i+1], c.versions[set:set+i])
			c.tags[set], c.versions[set] = t, v
			if hit {
				c.hits++
			} else {
				c.misses++
			}
			return hit
		}
	}
	// Miss: evict LRU (last way), install as MRU.
	copy(c.tags[set+1:set+c.ways], c.tags[set:set+c.ways-1])
	copy(c.versions[set+1:set+c.ways], c.versions[set:set+c.ways-1])
	c.tags[set], c.versions[set] = tag, version
	c.misses++
	return false
}

// Install places the block with the given version without charging a hit or
// a miss. The simulator uses it for write-after-read upgrades: the read
// already paid the coherence transfer, and the store merely upgrades the
// line to modified state.
func (c *Cache) Install(block uint32, version uint32) {
	set := int(block&c.setMask) * c.ways
	tag := block + 1
	for i := 0; i < c.ways; i++ {
		if c.tags[set+i] == tag {
			t := c.tags[set+i]
			copy(c.tags[set+1:set+i+1], c.tags[set:set+i])
			copy(c.versions[set+1:set+i+1], c.versions[set:set+i])
			c.tags[set], c.versions[set] = t, version
			return
		}
	}
	copy(c.tags[set+1:set+c.ways], c.tags[set:set+c.ways-1])
	copy(c.versions[set+1:set+c.ways], c.versions[set:set+c.ways-1])
	c.tags[set], c.versions[set] = tag, version
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns hits / accesses, or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.versions[i] = 0
	}
	c.hits, c.misses = 0, 0
}
