package cachesim

import (
	"testing"

	"kstm/internal/rng"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(64, 4)
	if c.Access(10, 0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(10, 0) {
		t.Fatal("warm access missed")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d,%d)", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
}

func TestVersionMismatchIsCoherenceMiss(t *testing.T) {
	c := New(64, 4)
	c.Access(10, 0)
	if c.Access(10, 1) {
		t.Fatal("stale version hit")
	}
	if !c.Access(10, 1) {
		t.Fatal("refreshed version missed")
	}
}

func TestLRUEviction(t *testing.T) {
	// 4 lines, 4 ways = one set. Fill it, touch the oldest, insert a new
	// block: the LRU (not the recently touched) must be evicted.
	c := New(4, 4)
	for b := uint32(0); b < 4; b++ {
		c.Access(b, 0)
	}
	c.Access(0, 0) // promote block 0
	c.Access(9, 0) // evicts block 1 (LRU)
	if !c.Access(0, 0) {
		t.Error("recently used block 0 was evicted")
	}
	if c.Access(1, 0) {
		t.Error("LRU block 1 survived eviction")
	}
}

func TestSetIsolation(t *testing.T) {
	// Blocks in different sets must not evict one another.
	c := New(8, 1) // 8 direct-mapped sets
	c.Access(0, 0)
	c.Access(1, 0)
	if !c.Access(0, 0) || !c.Access(1, 0) {
		t.Error("different sets interfered")
	}
	// Same set (0 and 8 with 8 sets) conflict in a direct-mapped cache.
	c.Access(8, 0)
	if c.Access(0, 0) {
		t.Error("direct-mapped conflict did not evict")
	}
}

func TestDegenerateSizes(t *testing.T) {
	for _, c := range []*Cache{New(0, 0), New(1, 1), New(3, 8), New(5, 2)} {
		if c.Access(42, 0) {
			t.Error("cold hit on degenerate cache")
		}
		if !c.Access(42, 0) {
			t.Error("warm miss on degenerate cache")
		}
	}
}

func TestReset(t *testing.T) {
	c := New(16, 2)
	c.Access(1, 0)
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("stats not reset")
	}
	if c.Access(1, 0) {
		t.Fatal("contents not reset")
	}
	if c.HitRate() != 0 {
		t.Fatal("HitRate after reset != 0")
	}
}

func TestWorkingSetBehaviour(t *testing.T) {
	// A working set smaller than the cache converges to ~100% hits; one
	// much larger stays mostly misses.
	small := New(1024, 8)
	r := rng.New(1)
	for i := 0; i < 20000; i++ {
		small.Access(uint32(r.Uint64n(512)), 0)
	}
	if small.HitRate() < 0.9 {
		t.Errorf("small working set hit rate = %v", small.HitRate())
	}
	big := New(1024, 8)
	for i := 0; i < 20000; i++ {
		big.Access(uint32(r.Uint64n(1<<17)), 0)
	}
	if big.HitRate() > 0.2 {
		t.Errorf("huge working set hit rate = %v", big.HitRate())
	}
}

func TestCoherencePingPong(t *testing.T) {
	// Two processors alternately writing the same block: with versions
	// bumped on every write, both always miss — the invalidation traffic
	// the executor removes by key partitioning.
	a, b := New(64, 4), New(64, 4)
	version := uint32(0)
	missesA, missesB := 0, 0
	for i := 0; i < 100; i++ {
		version++
		if !a.Access(7, version) {
			missesA++
		}
		version++
		if !b.Access(7, version) {
			missesB++
		}
	}
	if missesA != 100 || missesB != 100 {
		t.Errorf("ping-pong misses = %d/%d, want 100/100", missesA, missesB)
	}
	// Single-owner writes: after the first, always hits.
	solo := New(64, 4)
	version = 0
	misses := 0
	for i := 0; i < 100; i++ {
		if !solo.Access(7, version) {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("single-owner misses = %d, want 1", misses)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(1<<17, 8)
	r := rng.New(1)
	blocks := make([]uint32, 4096)
	for i := range blocks {
		blocks[i] = uint32(r.Uint64n(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(blocks[i&4095], 0)
	}
}
