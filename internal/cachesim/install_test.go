package cachesim

import "testing"

func TestInstallDoesNotCountStats(t *testing.T) {
	c := New(64, 4)
	c.Install(5, 1)
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("Install counted stats: %d/%d", h, m)
	}
	// The installed line must hit at the installed version.
	if !c.Access(5, 1) {
		t.Fatal("installed line missed")
	}
}

func TestInstallRefreshesExistingLine(t *testing.T) {
	c := New(64, 4)
	c.Access(5, 1) // miss, install v1
	c.Install(5, 2)
	if !c.Access(5, 2) {
		t.Fatal("refreshed version missed")
	}
	if c.Access(5, 1) {
		t.Fatal("stale version hit after refresh")
	}
}

func TestInstallPromotesToMRU(t *testing.T) {
	c := New(4, 4) // single set
	for b := uint32(0); b < 4; b++ {
		c.Access(b, 0)
	}
	c.Install(0, 0) // promote block 0
	c.Access(9, 0)  // evict LRU (block 1)
	if !c.Access(0, 0) {
		t.Fatal("Install did not promote block 0")
	}
	if c.Access(1, 0) {
		t.Fatal("expected block 1 evicted")
	}
}

func TestInstallEvictsLRUOnMiss(t *testing.T) {
	c := New(2, 2) // one set, two ways
	c.Access(1, 0)
	c.Access(2, 0)
	c.Install(3, 0) // evicts block 1
	if c.Access(1, 0) {
		t.Fatal("LRU survived Install eviction")
	}
	if !c.Access(3, 0) {
		t.Fatal("installed block missing")
	}
}
