package sim

import (
	"testing"

	"kstm/internal/txds"
)

func TestNewModelKinds(t *testing.T) {
	for _, kind := range []txds.Kind{txds.KindHashTable, txds.KindRBTree, txds.KindSortedList, emptyKind} {
		m, err := newModel(kind, 1)
		if err != nil {
			t.Fatalf("newModel(%q): %v", kind, err)
		}
		if m.name() == "" {
			t.Errorf("%q: empty name", kind)
		}
		p := m.plan(100, true)
		if p.baseCost == 0 && kind != emptyKind {
			t.Errorf("%q: zero base cost", kind)
		}
		for _, b := range append(append([]uint32{}, p.reads...), p.writes...) {
			if b >= BlockSpace {
				t.Errorf("%q: block %#x outside space", kind, b)
			}
		}
	}
	if _, err := newModel("btree", 1); err == nil {
		t.Error("newModel(btree) succeeded")
	}
}

func TestEmptyModelHasNoBlocks(t *testing.T) {
	m := &emptyModel{}
	p := m.plan(42, true)
	if len(p.reads) != 0 || len(p.writes) != 0 || len(p.confReads) != 0 {
		t.Fatalf("empty model touched blocks: %+v", p)
	}
	if p.baseCost == 0 {
		t.Fatal("empty model has zero cost")
	}
	if m.txnKey(7) != 7 {
		t.Fatal("empty txnKey not identity")
	}
}

func TestHashModelTxnKeyIsHashOutput(t *testing.T) {
	m := newHashModel()
	if got := m.txnKey(txds.DefaultBuckets + 5); got != 5 {
		t.Fatalf("txnKey = %d, want 5 (bucket index)", got)
	}
}

func TestTreeModelFlipsWriteInteriorNodes(t *testing.T) {
	m := newTreeModel(3)
	for k := uint32(0); k < 4096; k++ {
		m.plan(k*16, true)
	}
	// Over many read-mostly descents (duplicate inserts are logical
	// no-ops), colour flips must still produce occasional interior
	// writes.
	writes := 0
	ops := 3000
	for i := 0; i < ops; i++ {
		p := m.plan(uint32(i%4096)*16, true) // all present: no structural change
		writes += len(p.writes)
	}
	if writes == 0 {
		t.Fatal("no colour-flip writes on read-mostly descents")
	}
	if writes > ops {
		t.Fatalf("flip writes %d out of %d descents — far too many", writes, ops)
	}
}

func TestTreeModelDepthGrowsWithSize(t *testing.T) {
	m := newTreeModel(1)
	small := m.plan(1000, true)
	for k := uint32(0); k < 30000; k++ {
		m.plan(k*2, true)
	}
	big := m.plan(1001, true)
	if len(big.reads) <= len(small.reads) {
		t.Errorf("path length did not grow with tree size: %d vs %d", len(big.reads), len(small.reads))
	}
}

func TestListModelConflictWindowIsPredOnly(t *testing.T) {
	m := newListModel()
	for k := uint32(0); k < 4000; k += 2 {
		m.plan(k, true)
	}
	p := m.plan(3999, true) // long traversal
	if len(p.reads) < 10 {
		t.Fatalf("traversal reads = %d, expected a long prefix", len(p.reads))
	}
	if len(p.confReads) != 1 {
		t.Fatalf("conflict window = %d blocks, want 1 (early release)", len(p.confReads))
	}
	if p.confReads[0] != listBase+3999/4 {
		t.Fatalf("conflict window block %#x, want pred block", p.confReads[0])
	}
}

func TestListModelRankMaintainedAcrossDeletes(t *testing.T) {
	m := newListModel()
	for k := uint32(0); k < 1000; k++ {
		m.plan(k, true)
	}
	before := m.plan(1001, false) // rank ~1000
	for k := uint32(0); k < 1000; k += 2 {
		m.plan(k, false) // delete half
	}
	after := m.plan(1001, false)
	if after.baseCost >= before.baseCost {
		t.Errorf("rank cost did not drop after deletes: %d -> %d", before.baseCost, after.baseCost)
	}
}

func TestOverlapsBernstein(t *testing.T) {
	w := &simWorker{curReads: []uint32{10, 11}, curWrites: []uint32{20}}
	cases := []struct {
		plan accessPlan
		want bool
	}{
		{accessPlan{writes: []uint32{20}}, true},                              // write/write
		{accessPlan{writes: []uint32{10}}, true},                              // write vs their read
		{accessPlan{confReads: []uint32{20}}, true},                           // read vs their write
		{accessPlan{confReads: []uint32{10}}, false},                          // read/read
		{accessPlan{writes: []uint32{30}, confReads: []uint32{31}}, false},    // disjoint
		{accessPlan{}, false},                                                 // empty
		{accessPlan{writes: []uint32{11}, confReads: []uint32{999}}, true},    // second read hit
		{accessPlan{confReads: []uint32{999, 20}, writes: []uint32{5}}, true}, // late conflict
	}
	for i, c := range cases {
		if got := overlaps(c.plan, w); got != c.want {
			t.Errorf("case %d: overlaps = %v, want %v", i, got, c.want)
		}
	}
}

func TestListContentionShapeMatchesPaper(t *testing.T) {
	// §4.4: "In the hash table and the uniform and Gaussian distributions
	// of the sorted list, the total number of contention instances is
	// small (less than 1/100th the number of completed transactions)...
	// in the exponential distribution of the sorted list, fewer than one
	// in four transactions encounters contention."
	p := DefaultParams()
	p.Structure = txds.KindSortedList
	p.Workers = 8
	p.Producers = 4
	p.Scheduler = "roundrobin"
	p.Dist = "uniform"
	uni, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if uni.ContentionRate() > 0.05 {
		t.Errorf("uniform list contention = %.4f, want small", uni.ContentionRate())
	}
	p.Dist = "exponential"
	exp, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ContentionRate() <= uni.ContentionRate() {
		t.Errorf("exponential list contention (%.4f) not above uniform (%.4f)",
			exp.ContentionRate(), uni.ContentionRate())
	}
	if exp.ContentionRate() > 0.5 {
		t.Errorf("exponential list contention = %.4f, paper says < 1/4", exp.ContentionRate())
	}
}
