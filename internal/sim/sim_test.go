package sim

import (
	"testing"

	"kstm/internal/core"
	"kstm/internal/txds"
)

// quick returns paper-shaped params for tests (the default horizon is
// already sized so caches reach steady state at low worker counts).
func quick() Params {
	return DefaultParams()
}

func runOrFatal(t *testing.T, p Params) Result {
	t.Helper()
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatalf("no completions: %+v", r)
	}
	return r
}

func TestRunValidation(t *testing.T) {
	p := quick()
	p.Workers = 0
	if _, err := Run(p); err == nil {
		t.Error("Workers=0 accepted")
	}
	p = quick()
	p.Producers = 0
	if _, err := Run(p); err == nil {
		t.Error("Producers=0 accepted")
	}
	p = quick()
	p.Dist = "cauchy"
	if _, err := Run(p); err == nil {
		t.Error("unknown dist accepted")
	}
	p = quick()
	p.Structure = "btree"
	if _, err := Run(p); err == nil {
		t.Error("unknown structure accepted")
	}
	p = quick()
	p.Scheduler = "lifo"
	if _, err := Run(p); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, sched := range core.SchedulerKinds() {
		p := quick()
		p.Scheduler = sched
		p.Workers = 4
		a := runOrFatal(t, p)
		b := runOrFatal(t, p)
		if a.Completed != b.Completed || a.Conflicts != b.Conflicts || a.CacheMiss != b.CacheMiss {
			t.Errorf("%s: same seed diverged: %+v vs %+v", sched, a, b)
		}
		for i := range a.PerWorker {
			if a.PerWorker[i] != b.PerWorker[i] {
				t.Errorf("%s: per-worker diverged at %d", sched, i)
			}
		}
	}
}

func TestSeedChangesRun(t *testing.T) {
	p := quick()
	a := runOrFatal(t, p)
	p.Seed = 999
	b := runOrFatal(t, p)
	if a.Completed == b.Completed && a.CacheMiss == b.CacheMiss {
		t.Error("different seeds gave identical results (suspicious)")
	}
}

func TestKeyPartitioningBeatsRoundRobinUniform(t *testing.T) {
	// Figure 3 (left), the paper's headline: with uniform keys both
	// key-based executors beat round robin on the hash table (25%+ at 2
	// workers), because partitioned workers keep their buckets cached.
	for _, workers := range []int{2, 8} {
		p := quick()
		p.Workers = workers
		p.Scheduler = core.SchedRoundRobin
		rr := runOrFatal(t, p)
		p.Scheduler = core.SchedFixed
		fx := runOrFatal(t, p)
		p.Scheduler = core.SchedAdaptive
		ad := runOrFatal(t, p)
		minGain := 1.2
		if workers == 2 {
			// At two workers round robin still owns each bucket half the
			// time, so the locality gap is structurally smaller.
			minGain = 1.12
		}
		if fx.Throughput() < rr.Throughput()*minGain {
			t.Errorf("w=%d: fixed %.3g not >=%.2fx round robin %.3g", workers, fx.Throughput(), minGain, rr.Throughput())
		}
		if ad.Throughput() < rr.Throughput()*minGain {
			t.Errorf("w=%d: adaptive %.3g not >=%.2fx round robin %.3g", workers, ad.Throughput(), minGain, rr.Throughput())
		}
		if rr.HitRate() >= fx.HitRate() {
			t.Errorf("w=%d: round robin hit rate %.3f >= fixed %.3f (locality model broken)",
				workers, rr.HitRate(), fx.HitRate())
		}
	}
}

func TestFixedFlatlinesUnderExponential(t *testing.T) {
	// Figure 3 (right): with exponential keys the fixed executor shows no
	// speedup beyond two workers; adaptive keeps scaling.
	p := quick()
	p.Dist = "exponential"
	p.Scheduler = core.SchedFixed
	p.Workers = 2
	fixed2 := runOrFatal(t, p)
	p.Workers = 8
	fixed8 := runOrFatal(t, p)
	if gain := fixed8.Throughput() / fixed2.Throughput(); gain > 1.3 {
		t.Errorf("fixed speedup 2->8 workers = %.2fx, paper expects ~flat", gain)
	}

	p.Scheduler = core.SchedAdaptive
	p.Workers = 8
	ad8 := runOrFatal(t, p)
	if ad8.Throughput() < fixed8.Throughput()*1.5 {
		t.Errorf("adaptive at 8 workers (%.3g) not well above fixed (%.3g)",
			ad8.Throughput(), fixed8.Throughput())
	}
	// Load: fixed piles everything on few workers; adaptive balances.
	if fixed8.LoadImbalance() < 3 {
		t.Errorf("fixed imbalance = %.2f, want severe under exponential", fixed8.LoadImbalance())
	}
	if ad8.LoadImbalance() > 2 {
		t.Errorf("adaptive imbalance = %.2f, want balanced", ad8.LoadImbalance())
	}
}

func TestAdaptiveScalesWithWorkers(t *testing.T) {
	// Adaptive throughput should grow with worker count until producers
	// saturate (the paper's crossover around ten workers).
	p := quick()
	p.Scheduler = core.SchedAdaptive
	var prev float64
	for _, w := range []int{1, 2, 4, 8} {
		p.Workers = w
		r := runOrFatal(t, p)
		if w > 1 && r.Throughput() < prev*1.1 {
			t.Errorf("adaptive did not scale %d workers: %.3g after %.3g", w, r.Throughput(), prev)
		}
		prev = r.Throughput()
	}
}

func TestProducerSaturation(t *testing.T) {
	// With very few producers, adding workers stops helping: the paper's
	// "fixed number of producers are unable to satisfy the processing
	// capacity of additional workers".
	p := quick()
	p.Scheduler = core.SchedAdaptive
	p.Producers = 1
	p.Workers = 2
	two := runOrFatal(t, p)
	p.Workers = 12
	twelve := runOrFatal(t, p)
	if gain := twelve.Throughput() / two.Throughput(); gain > 2 {
		t.Errorf("1 producer fed 12 workers %.2fx faster than 2 (should saturate)", gain)
	}
}

func TestNoExecutorOverheadShape(t *testing.T) {
	// Figure 4: on trivial transactions, k bare threads beat an executor
	// with k workers (the paper sees ~2x overhead at k=2), and the gap
	// narrows as k grows.
	p := quick()
	p.Structure = Empty
	p.NoExecutor = true
	p.Workers = 2
	bare2 := runOrFatal(t, p)

	q := quick()
	q.Structure = Empty
	q.Producers = 6 // paper uses six producers for this test
	q.Scheduler = core.SchedRoundRobin
	q.Workers = 2
	exec2 := runOrFatal(t, q)

	ratio2 := bare2.Throughput() / exec2.Throughput()
	if ratio2 < 1.3 || ratio2 > 4 {
		t.Errorf("overhead ratio at 2 threads = %.2f, want ~2x", ratio2)
	}

	p.Workers = 12
	bare12 := runOrFatal(t, p)
	q.Workers = 12
	exec12 := runOrFatal(t, q)
	ratio12 := bare12.Throughput() / exec12.Throughput()
	if ratio12 > ratio2 {
		t.Errorf("overhead ratio grew with threads: %.2f at 2 vs %.2f at 12", ratio2, ratio12)
	}
}

func TestContentionHigherOnTreeThanHashtable(t *testing.T) {
	// §4.4: hash-table contention is negligible (<1/100 per txn); the
	// red-black tree sees much more (up to ~1/4 under round robin).
	p := quick()
	p.Workers = 8
	p.Scheduler = core.SchedRoundRobin
	ht := runOrFatal(t, p)
	p.Structure = txds.KindRBTree
	tree := runOrFatal(t, p)
	if ht.ContentionRate() > 0.02 {
		t.Errorf("hashtable contention = %.4f, want < 0.02", ht.ContentionRate())
	}
	if tree.ContentionRate() <= ht.ContentionRate() {
		t.Errorf("tree contention (%.4f) not above hashtable (%.4f)",
			tree.ContentionRate(), ht.ContentionRate())
	}
}

func TestKeyPartitioningReducesConflicts(t *testing.T) {
	// §1/§4.4: scheduling similar keys to the same worker removes
	// concurrent execution of conflicting transactions.
	p := quick()
	p.Structure = txds.KindRBTree
	p.Workers = 8
	p.Scheduler = core.SchedRoundRobin
	rr := runOrFatal(t, p)
	p.Scheduler = core.SchedAdaptive
	ad := runOrFatal(t, p)
	if ad.ContentionRate() >= rr.ContentionRate() {
		t.Errorf("adaptive contention %.4f not below round robin %.4f",
			ad.ContentionRate(), rr.ContentionRate())
	}
}

func TestSortedListModelCostsGrowWithRank(t *testing.T) {
	m := newListModel()
	// Fill low keys so a high key's traversal is long.
	for k := uint32(0); k < 8000; k += 2 {
		m.plan(k, true)
	}
	low := m.plan(10, false)     // near the head (key absent: read-only)
	high := m.plan(60001, false) // deep traversal
	if high.baseCost <= low.baseCost {
		t.Errorf("list cost did not grow with rank: %d vs %d", low.baseCost, high.baseCost)
	}
	if len(high.reads) <= len(low.reads) {
		t.Errorf("list reads did not grow with rank: %d vs %d", len(high.reads), len(low.reads))
	}
}

func TestTreeModelSharedPrefixBlocks(t *testing.T) {
	m := newTreeModel(1)
	for k := uint32(0); k < 1024; k++ {
		m.plan(k*64, true)
	}
	a := m.plan(1000, false)
	b := m.plan(1001, false) // adjacent key: nearly identical path
	shared := 0
	set := map[uint32]bool{}
	for _, r := range a.reads {
		set[r] = true
	}
	for _, r := range b.reads {
		if set[r] {
			shared++
		}
	}
	if shared < len(a.reads)-2 {
		t.Errorf("near keys share only %d/%d path blocks", shared, len(a.reads))
	}
	far := m.plan(60000, false)
	sharedFar := 0
	for _, r := range far.reads {
		if set[r] {
			sharedFar++
		}
	}
	if sharedFar > 3 {
		t.Errorf("distant keys share %d path blocks, want only the top", sharedFar)
	}
}

func TestHashModelWriteOpensBucket(t *testing.T) {
	// DSTM IntSet semantics: inserts and deletes open the bucket for
	// writing whether or not the key is present — locator plus chain.
	m := newHashModel()
	for _, insert := range []bool{true, true, false, false} {
		p := m.plan(5, insert)
		if len(p.writes) != 2 {
			t.Fatalf("insert=%v writes = %v, want locator+chain", insert, p.writes)
		}
		if len(p.reads) != 3 {
			t.Fatalf("insert=%v reads = %v, want array+locator+chain", insert, p.reads)
		}
	}
	// Different buckets touch different blocks.
	a := m.plan(5, true)
	aw := append([]uint32{}, a.writes...)
	b := m.plan(6, true)
	for _, x := range aw {
		for _, y := range b.writes {
			if x == y {
				t.Fatalf("buckets 5 and 6 share write block %#x", x)
			}
		}
	}
}

func TestMembership(t *testing.T) {
	var m membership
	if m.has(100) {
		t.Fatal("empty membership has 100")
	}
	if !m.set(100, true) || m.size != 1 {
		t.Fatal("insert failed")
	}
	if m.set(100, true) {
		t.Fatal("duplicate insert changed state")
	}
	if !m.set(100, false) || m.size != 0 {
		t.Fatal("delete failed")
	}
	if m.set(100, false) {
		t.Fatal("absent delete changed state")
	}
}

func TestFenwick(t *testing.T) {
	var f fenwick
	f.add(10, 1)
	f.add(20, 1)
	f.add(30, 1)
	cases := map[uint32]int{0: 0, 10: 0, 11: 1, 20: 1, 21: 2, 31: 3, 65535: 3}
	for k, want := range cases {
		if got := f.prefix(k); got != want {
			t.Errorf("prefix(%d) = %d, want %d", k, got, want)
		}
	}
	f.add(20, -1)
	if got := f.prefix(31); got != 2 {
		t.Errorf("after removal prefix(31) = %d, want 2", got)
	}
}

func TestWorkStealingHelpsFixedUnderSkew(t *testing.T) {
	// The §2 "load balancing" alternative: stealing lets idle workers
	// relieve the overloaded one under the fixed scheduler.
	p := quick()
	p.Dist = "exponential"
	p.Scheduler = core.SchedFixed
	p.Workers = 8
	noSteal := runOrFatal(t, p)
	p.WorkSteal = true
	steal := runOrFatal(t, p)
	if steal.Throughput() < noSteal.Throughput()*1.2 {
		t.Errorf("stealing gained only %.2fx under skewed fixed partitioning",
			steal.Throughput()/noSteal.Throughput())
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Completed: 100, SimSeconds: 2, PerWorker: []uint64{60, 40}, CacheHits: 3, CacheMiss: 1, Conflicts: 10}
	if r.Throughput() != 50 {
		t.Errorf("Throughput = %v", r.Throughput())
	}
	if r.LoadImbalance() != 1.2 {
		t.Errorf("LoadImbalance = %v", r.LoadImbalance())
	}
	if r.HitRate() != 0.75 {
		t.Errorf("HitRate = %v", r.HitRate())
	}
	if r.ContentionRate() != 0.1 {
		t.Errorf("ContentionRate = %v", r.ContentionRate())
	}
	if r.String() == "" {
		t.Error("empty String")
	}
	var zero Result
	if zero.Throughput() != 0 || zero.LoadImbalance() != 1 || zero.HitRate() != 0 || zero.ContentionRate() != 0 {
		t.Error("zero-value accessors wrong")
	}
}

func BenchmarkSimHashtableAdaptive(b *testing.B) {
	p := quick()
	p.Scheduler = core.SchedAdaptive
	p.Workers = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
