package sim

import (
	"fmt"
	"math/bits"

	"kstm/internal/rng"
	"kstm/internal/txds"
)

// Block-ID layout for the simulator's 2^18-entry version table. Each model
// maps its logical structure into a disjoint region so coherence state never
// aliases across structures.
const (
	blockSpaceBits = 19
	// BlockSpace is the number of distinct cache blocks the simulator
	// models.
	BlockSpace = 1 << blockSpaceBits

	hashArrayBase = 0x00000 // bucket-array headers, 4 per line
	hashLocBase   = 0x10000 // per-bucket DSTM locator (CASed on every open-for-write)
	hashChainBase = 0x20000 // one chain block per bucket
	treeBase      = 0x40000 // binary-prefix node ids (spans 2^17)
	listBase      = 0x60000 // list nodes laid out in key order
)

// accessPlan describes one transaction's memory behaviour: which blocks it
// reads and writes (for caching), which reads remain conflict-relevant at
// any instant (the DSTM read set after early release — for the sorted list
// this is just the traversal window, not the whole prefix), and the
// non-memory base cost in cycles.
type accessPlan struct {
	reads     []uint32
	writes    []uint32
	confReads []uint32 // reads that participate in conflict detection
	baseCost  uint64
}

// accessModel turns a dictionary operation into an access plan and tracks
// the abstract set's state (membership, size) so costs evolve as the
// structure fills — e.g. list traversal length grows with the list.
type accessModel interface {
	// plan computes the access plan for op(dictKey) and applies the
	// logical effect to the model's state. The returned slices are valid
	// until the next call.
	plan(dictKey uint32, insert bool) accessPlan
	// txnKey maps the dictionary key to the transaction key handed to
	// the scheduler — the hash output for the hash table (§4.2), the
	// dictionary key itself otherwise.
	txnKey(dictKey uint32) uint64
	name() string
}

// newModel builds the access model for a benchmark structure.
func newModel(kind txds.Kind, seed uint64) (accessModel, error) {
	switch kind {
	case txds.KindHashTable:
		return newHashModel(), nil
	case txds.KindRBTree:
		return newTreeModel(seed), nil
	case txds.KindSortedList:
		return newListModel(), nil
	case emptyKind:
		return &emptyModel{}, nil
	default:
		return nil, fmt.Errorf("sim: unknown model kind %q", kind)
	}
}

// emptyKind selects the trivial transaction of the Figure 4 overhead test.
const emptyKind txds.Kind = "empty"

// membership tracks which of the 2^16 keys are present.
type membership struct {
	bits [1 << 16 / 64]uint64
	size int
}

func (m *membership) has(k uint32) bool { return m.bits[k>>6]&(1<<(k&63)) != 0 }

// set inserts or removes k; it reports whether the operation changed state.
func (m *membership) set(k uint32, present bool) bool {
	if m.has(k) == present {
		return false
	}
	m.bits[k>>6] ^= 1 << (k & 63)
	if present {
		m.size++
	} else {
		m.size--
	}
	return true
}

// hashModel: the paper's 30031-bucket chained table over DSTM. An operation
// reads the bucket-array header, then opens the bucket's transactional
// object for writing — as the DSTM IntSet benchmarks do for both inserts and
// deletes, whether or not the key turns out to be present — which CASes the
// bucket's locator line and rewrites the chain version. Conflict granularity
// is the bucket (§4.2); the two written lines are the coherence traffic that
// key partitioning eliminates.
type hashModel struct {
	plans planBuf
}

// costs in cycles (1.2 GHz UltraSPARC III scale): hash + compare + DSTM
// open/commit logic.
const hashBaseCost = 250

func newHashModel() *hashModel { return &hashModel{} }

func (h *hashModel) name() string { return string(txds.KindHashTable) }

func (h *hashModel) txnKey(dictKey uint32) uint64 {
	return uint64(dictKey % txds.DefaultBuckets)
}

func (h *hashModel) plan(dictKey uint32, insert bool) accessPlan {
	bucket := dictKey % txds.DefaultBuckets
	h.plans.reset()
	h.plans.read(hashArrayBase + bucket/4)
	h.plans.read(hashLocBase + bucket)
	h.plans.read(hashChainBase + bucket)
	h.plans.write(hashLocBase + bucket)
	h.plans.write(hashChainBase + bucket)
	return h.plans.plan(hashBaseCost)
}

// treeModel: a balanced binary tree over the present keys. A node at depth d
// is identified by the d-bit prefix of the key, so near keys share deep path
// nodes — the mechanism that makes key proximity predict both locality and
// conflicts for the red-black tree (§4.4). Structural writes climb from the
// leaf with geometrically decreasing probability (rotation fixups), and
// every descent recolours path nodes with a small independent probability
// (the colour flips of red-black insertion), which is what gives the tree
// its visible contention in the paper — writes near the root collide with
// everyone's search path.
type treeModel struct {
	mem   membership
	r     *rng.Xoshiro256
	plans planBuf
}

const (
	treeBaseCost    = 350
	treePerLevel    = 25
	rebalanceChance = 0.35  // geometric climb probability per level
	flipChance      = 0.012 // independent recolour probability per path level
)

func newTreeModel(seed uint64) *treeModel { return &treeModel{r: rng.New(seed)} }

func (t *treeModel) name() string { return string(txds.KindRBTree) }

func (t *treeModel) txnKey(dictKey uint32) uint64 { return uint64(dictKey) }

// depth returns the current expected search depth: log2(size) bounded to
// the 16-bit prefix space.
func (t *treeModel) depth() int {
	d := bits.Len(uint(t.mem.size))
	if d < 1 {
		d = 1
	}
	if d > 16 {
		d = 16
	}
	return d
}

// nodeBlock maps the depth-d prefix of key to a block id.
func nodeBlock(key uint32, d int) uint32 {
	return treeBase + 1<<uint(d) + key>>uint(16-d)
}

func (t *treeModel) plan(dictKey uint32, insert bool) accessPlan {
	d := t.depth()
	t.plans.reset()
	for lvl := 0; lvl <= d; lvl++ {
		t.plans.read(nodeBlock(dictKey, lvl))
		// Top-down colour flips: occasional recolouring of interior
		// path nodes on any mutating descent. The top two levels are
		// exempt: in a red-black tree the root is pinned black and its
		// children recolour rarely, and exempting them keeps simulated
		// contention inside the paper's "fewer than one in four
		// transactions" bound.
		if lvl >= 2 && lvl < d && t.r.Float64() < flipChance {
			t.plans.write(nodeBlock(dictKey, lvl))
		}
	}
	if t.mem.set(dictKey, insert) {
		// Structural change at the leaf, with rebalancing writes
		// climbing while the geometric coin keeps coming up heads.
		lvl := d
		t.plans.write(nodeBlock(dictKey, lvl))
		for lvl > 0 && t.r.Float64() < rebalanceChance {
			lvl--
			t.plans.write(nodeBlock(dictKey, lvl))
		}
	}
	return t.plans.plan(treeBaseCost + uint64(d)*treePerLevel)
}

// listModel: a sorted linked list with DSTM early release. Traversal visits
// every node with a smaller key, so service time is proportional to the
// key's rank among present keys (ranks come from a Fenwick tree); the cache
// is charged for the whole traversal, but only the final window — the
// predecessor — stays in the read set for conflict purposes, exactly as
// early release leaves it (§2 of Herlihy et al.; txds.SortedList).
type listModel struct {
	mem   membership
	fen   fenwick
	plans planBuf
}

const (
	listBaseCost    = 200
	listPerNode     = 12  // CPU cycles per node visited (compare + next)
	listNodesPerBlk = 16  // nodes sampled per cached block touched
	listMaxBlocks   = 192 // cap on modelled blocks per traversal
)

func newListModel() *listModel { return &listModel{} }

func (l *listModel) name() string { return string(txds.KindSortedList) }

func (l *listModel) txnKey(dictKey uint32) uint64 { return uint64(dictKey) }

func (l *listModel) plan(dictKey uint32, insert bool) accessPlan {
	rank := l.fen.prefix(dictKey) // nodes strictly before dictKey
	l.plans.reset()
	// Sample traversal blocks in key order up to the target; one block
	// per listNodesPerBlk visited nodes, capped.
	nblocks := rank/listNodesPerBlk + 1
	if nblocks > listMaxBlocks {
		nblocks = listMaxBlocks
	}
	for j := 0; j < nblocks; j++ {
		// Position of the j-th sampled node, spread over [0, dictKey).
		pos := uint32(uint64(dictKey) * uint64(j) / uint64(nblocks))
		l.plans.read(listBase + pos/4)
	}
	predBlock := listBase + dictKey/4
	l.plans.read(predBlock)
	// Early release: only the window stays conflict-relevant.
	l.plans.confRead(predBlock)
	if l.mem.set(dictKey, insert) {
		l.plans.write(predBlock)
		if insert {
			l.fen.add(dictKey, 1)
		} else {
			l.fen.add(dictKey, -1)
		}
	}
	return l.plans.plan(listBaseCost + uint64(rank)*listPerNode)
}

// emptyModel: the trivial transaction of the Figure 4 overhead experiment —
// fixed small cost, no shared data.
type emptyModel struct{ plans planBuf }

const emptyBaseCost = 400

func (e *emptyModel) name() string { return "empty" }

func (e *emptyModel) txnKey(dictKey uint32) uint64 { return uint64(dictKey) }

func (e *emptyModel) plan(dictKey uint32, insert bool) accessPlan {
	e.plans.reset()
	return e.plans.plan(emptyBaseCost)
}

// planBuf reuses read/write slices across plan calls.
type planBuf struct {
	readsBuf  []uint32
	writesBuf []uint32
	confBuf   []uint32
	confSet   bool
}

func (p *planBuf) reset() {
	p.readsBuf = p.readsBuf[:0]
	p.writesBuf = p.writesBuf[:0]
	p.confBuf = p.confBuf[:0]
	p.confSet = false
}

func (p *planBuf) read(b uint32)  { p.readsBuf = append(p.readsBuf, b%BlockSpace) }
func (p *planBuf) write(b uint32) { p.writesBuf = append(p.writesBuf, b%BlockSpace) }

// confRead marks a block as conflict-relevant; once used, only explicitly
// marked reads participate in conflict detection (early-release semantics).
func (p *planBuf) confRead(b uint32) {
	p.confBuf = append(p.confBuf, b%BlockSpace)
	p.confSet = true
}

func (p *planBuf) plan(base uint64) accessPlan {
	conf := p.readsBuf
	if p.confSet {
		conf = p.confBuf
	}
	return accessPlan{reads: p.readsBuf, writes: p.writesBuf, confReads: conf, baseCost: base}
}

// fenwick is a binary indexed tree over the 16-bit key space, giving
// O(log n) rank queries for the list model.
type fenwick struct {
	tree [1<<16 + 1]int32
}

// add adds delta at key.
func (f *fenwick) add(key uint32, delta int32) {
	for i := key + 1; i <= 1<<16; i += i & (^i + 1) {
		f.tree[i] += delta
	}
}

// prefix returns the number of present keys strictly less than key.
func (f *fenwick) prefix(key uint32) int {
	var sum int32
	for i := key; i > 0; i -= i & (^i + 1) {
		sum += f.tree[i]
	}
	return int(sum)
}
