// Package sim is a deterministic discrete-event simulator of the paper's
// testbed: a 16-processor SunFire 6800 running the key-based executor over
// DSTM (DESIGN.md §6 documents the substitution). Producers, the dispatch
// policies, per-worker task queues, per-processor caches with coherence,
// bucket/path-granularity transaction conflicts, and finite producer
// bandwidth are all explicit, so the simulator reproduces the *shape* of the
// paper's Figures 3 and 4 — which scheduler wins, by what factor, and where
// the curves flatten — on any host, independent of the host's core count.
package sim

import (
	"container/heap"
	"fmt"

	"kstm/internal/cachesim"
	"kstm/internal/core"
	"kstm/internal/dist"
	"kstm/internal/txds"
)

// Params configures one simulated run.
type Params struct {
	// Workers is the worker-thread (processor) count.
	Workers int
	// Producers is the producer-thread count.
	Producers int
	// Scheduler selects the dispatch policy.
	Scheduler core.SchedulerKind
	// Threshold overrides the adaptive sample threshold (0 = paper's
	// 10,000).
	Threshold int
	// ReAdapt enables periodic re-estimation (extension experiments).
	ReAdapt bool
	// Structure picks the benchmark data structure; use Empty for the
	// Figure 4 trivial-transaction test.
	Structure txds.Kind
	// Dist names the key distribution (uniform, gaussian, exponential).
	Dist string
	// Seed drives all pseudo-randomness; equal seeds give identical runs.
	Seed uint64
	// NoExecutor switches to the Figure 1(a) model: each worker
	// generates and executes its own transactions with no queues.
	NoExecutor bool
	// WorkSteal lets idle workers take tasks from other queues.
	WorkSteal bool
	// DurationCycles is the simulated time horizon.
	DurationCycles uint64
	// WarmupCycles excludes the cache-cold, pre-adaptation transient from
	// the measured window (the paper runs a full GC before starting its
	// clock). 0 means DurationCycles/3.
	WarmupCycles uint64
	// ClockHz converts cycles to seconds for throughput reporting.
	ClockHz float64

	// Cost model, in cycles. Zero values take defaults.
	GenCost           uint64 // producer: create one task
	DispatchCost      uint64 // producer: scheduler pick + enqueue
	PopCost           uint64 // worker: dequeue
	QueueTransferCost uint64 // coherence cost of moving a queue node across processors
	HitCost           uint64 // cache hit per block
	MissCost          uint64 // cache miss per block (memory/coherence)
	ConflictCost      uint64 // abort + contention-manager backoff + retry overhead
	QueueCap          int    // producer backpressure bound per queue
	CacheLines        int    // per-processor cache size in lines
	CacheWays         int
	// QueueContentionFactor scales queue-transfer cost with the number of
	// producers per queue: M&S enqueue CAS retries and head/tail line
	// ping-pong grow as more producers share a queue. This is why the
	// paper's executor overhead is ~2x at two workers but "much less
	// pronounced" at higher worker counts (Figure 4), and why the
	// key-partitioning advantage grows with workers (Figure 3). <0
	// disables; 0 means the default.
	QueueContentionFactor float64
}

// Empty is the Figure 4 trivial transaction "structure".
const Empty = emptyKind

// DefaultParams returns the cost model calibrated to the paper's testbed
// scale (1.2 GHz UltraSPARC III, 8 MB L2 at 64-byte lines, memory at a few
// hundred cycles).
func DefaultParams() Params {
	return Params{
		Workers:               2,
		Producers:             8,
		Scheduler:             core.SchedRoundRobin,
		Structure:             txds.KindHashTable,
		Dist:                  "uniform",
		Seed:                  1,
		DurationCycles:        120_000_000, // 100 simulated milliseconds
		WarmupCycles:          48_000_000,
		ClockHz:               1.2e9,
		GenCost:               300,
		DispatchCost:          200,
		PopCost:               150,
		QueueTransferCost:     250,
		HitCost:               15,
		MissCost:              450, // dirty/coherence miss on a 1.2 GHz SMP
		ConflictCost:          2500,
		QueueCap:              1024,
		CacheLines:            1 << 17, // 8 MB / 64 B
		CacheWays:             8,
		QueueContentionFactor: 0.5,
	}
}

// Result reports a simulated run.
type Result struct {
	Workers    int
	Producers  int
	Scheduler  string
	Structure  string
	Dist       string
	Completed  uint64
	Produced   uint64
	Conflicts  uint64
	PerWorker  []uint64
	CacheHits  uint64
	CacheMiss  uint64
	SimSeconds float64
}

// Throughput returns completed transactions per simulated second — the
// y-axis of Figures 3 and 4.
func (r Result) Throughput() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.Completed) / r.SimSeconds
}

// LoadImbalance returns max per-worker share over the ideal share.
func (r Result) LoadImbalance() float64 {
	if r.Completed == 0 || len(r.PerWorker) == 0 {
		return 1
	}
	ideal := float64(r.Completed) / float64(len(r.PerWorker))
	worst := 0.0
	for _, n := range r.PerWorker {
		if v := float64(n) / ideal; v > worst {
			worst = v
		}
	}
	return worst
}

// HitRate returns the aggregate cache hit rate across workers.
func (r Result) HitRate() float64 {
	total := r.CacheHits + r.CacheMiss
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// ContentionRate returns conflicts per completed transaction (§4.4).
func (r Result) ContentionRate() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.Conflicts) / float64(r.Completed)
}

// String summarizes the run.
func (r Result) String() string {
	return fmt.Sprintf("sim %s/%s/%s w=%d p=%d: %.3g txn/s (hit %.2f, imb %.2f, cont %.4f)",
		r.Structure, r.Dist, r.Scheduler, r.Workers, r.Producers,
		r.Throughput(), r.HitRate(), r.LoadImbalance(), r.ContentionRate())
}

// event kinds, ordered for deterministic tie-breaking.
const (
	evProducer = iota
	evWorker
)

type event struct {
	t    uint64
	kind int
	id   int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(t uint64, kind, id int) {
	heap.Push(h, event{t: t, kind: kind, id: id})
}

type simTask struct {
	key     uint64
	dictKey uint32
	insert  bool
}

type simWorker struct {
	cache     *cachesim.Cache
	queue     []simTask
	head      int
	idle      bool
	busyUntil uint64
	// Current in-flight access sets (copies) for conflict detection.
	curReads  []uint32
	curWrites []uint32
	completed uint64
	conflicts uint64
	enqueued  uint64      // tasks routed to this queue (queue-pressure share)
	src       dist.Source // NoExecutor mode: private source
}

func (w *simWorker) qlen() int { return len(w.queue) - w.head }

func (w *simWorker) pop() (simTask, bool) {
	if w.head >= len(w.queue) {
		return simTask{}, false
	}
	t := w.queue[w.head]
	w.head++
	if w.head > 4096 && w.head*2 > len(w.queue) {
		n := copy(w.queue, w.queue[w.head:])
		w.queue = w.queue[:n]
		w.head = 0
	}
	return t, true
}

type simProducer struct {
	src     dist.Source
	pending simTask
	blocked bool
}

type simulator struct {
	p         Params
	model     accessModel
	sched     core.Scheduler
	workers   []simWorker
	producers []simProducer
	blockedOn [][]int // per worker queue: producer ids awaiting space
	versions  []uint32
	events    eventHeap
	produced  uint64
}

// Run simulates one configuration and returns its result.
func Run(p Params) (Result, error) {
	d := DefaultParams()
	if p.ClockHz == 0 {
		p.ClockHz = d.ClockHz
	}
	if p.DurationCycles == 0 {
		p.DurationCycles = d.DurationCycles
	}
	if p.WarmupCycles == 0 {
		p.WarmupCycles = p.DurationCycles / 3
	}
	if p.WarmupCycles >= p.DurationCycles {
		return Result{}, fmt.Errorf("sim: warmup %d >= duration %d", p.WarmupCycles, p.DurationCycles)
	}
	switch {
	case p.QueueContentionFactor < 0:
		p.QueueContentionFactor = 0
	case p.QueueContentionFactor == 0:
		p.QueueContentionFactor = d.QueueContentionFactor
	}
	if p.GenCost == 0 {
		p.GenCost = d.GenCost
	}
	if p.DispatchCost == 0 {
		p.DispatchCost = d.DispatchCost
	}
	if p.PopCost == 0 {
		p.PopCost = d.PopCost
	}
	if p.QueueTransferCost == 0 {
		p.QueueTransferCost = d.QueueTransferCost
	}
	if p.HitCost == 0 {
		p.HitCost = d.HitCost
	}
	if p.MissCost == 0 {
		p.MissCost = d.MissCost
	}
	if p.ConflictCost == 0 {
		p.ConflictCost = d.ConflictCost
	}
	if p.QueueCap == 0 {
		p.QueueCap = d.QueueCap
	}
	if p.CacheLines == 0 {
		p.CacheLines = d.CacheLines
	}
	if p.CacheWays == 0 {
		p.CacheWays = d.CacheWays
	}
	if p.Structure == "" {
		p.Structure = d.Structure
	}
	if p.Dist == "" {
		p.Dist = d.Dist
	}
	if p.Scheduler == "" {
		p.Scheduler = d.Scheduler
	}
	if p.Workers <= 0 {
		return Result{}, fmt.Errorf("sim: Workers = %d, want > 0", p.Workers)
	}
	if !p.NoExecutor && p.Producers <= 0 {
		return Result{}, fmt.Errorf("sim: Producers = %d, want > 0", p.Producers)
	}

	model, err := newModel(p.Structure, p.Seed^0x9e3779b97f4a7c15)
	if err != nil {
		return Result{}, err
	}
	maxKey := uint64(dist.MaxKey)
	if p.Structure == txds.KindHashTable {
		maxKey = txds.DefaultBuckets - 1
	}
	var opts []core.AdaptiveOption
	if p.Threshold > 0 {
		opts = append(opts, core.WithThreshold(p.Threshold))
	}
	if p.ReAdapt {
		opts = append(opts, core.WithReAdaptation())
	}
	sched, err := core.NewScheduler(p.Scheduler, 0, maxKey, p.Workers, opts...)
	if err != nil {
		return Result{}, err
	}

	s := &simulator{
		p:         p,
		model:     model,
		sched:     sched,
		workers:   make([]simWorker, p.Workers),
		blockedOn: make([][]int, p.Workers),
		versions:  make([]uint32, BlockSpace),
	}
	for i := range s.workers {
		s.workers[i].cache = cachesim.New(p.CacheLines, p.CacheWays)
		s.workers[i].idle = true
	}

	if p.NoExecutor {
		// Figure 1(a): workers self-produce. Seed each from the run
		// seed so streams are independent and deterministic.
		for i := range s.workers {
			src, err := dist.ByName(p.Dist, p.Seed+uint64(i)*0x51_7c_c1)
			if err != nil {
				return Result{}, err
			}
			s.workers[i].src = src
			s.events.push(uint64(i), evWorker, i)
		}
	} else {
		s.producers = make([]simProducer, p.Producers)
		for i := range s.producers {
			src, err := dist.ByName(p.Dist, p.Seed+uint64(i)*0x51_7c_c1)
			if err != nil {
				return Result{}, err
			}
			s.producers[i].src = src
			s.events.push(uint64(i), evProducer, i)
		}
	}
	heap.Init(&s.events)
	s.run()

	res := Result{
		Workers:    p.Workers,
		Producers:  p.Producers,
		Scheduler:  sched.Name(),
		Structure:  model.name(),
		Dist:       p.Dist,
		Produced:   s.produced,
		PerWorker:  make([]uint64, p.Workers),
		SimSeconds: float64(p.DurationCycles-p.WarmupCycles) / p.ClockHz,
	}
	if p.NoExecutor {
		res.Scheduler = "none"
		res.Producers = 0
	}
	for i := range s.workers {
		w := &s.workers[i]
		res.PerWorker[i] = w.completed
		res.Completed += w.completed
		res.Conflicts += w.conflicts
		h, m := w.cache.Stats()
		res.CacheHits += h
		res.CacheMiss += m
	}
	return res, nil
}

func (s *simulator) run() {
	horizon := s.p.DurationCycles
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		if ev.t >= horizon {
			return
		}
		switch ev.kind {
		case evProducer:
			s.producerStep(ev.id, ev.t)
		case evWorker:
			if s.p.NoExecutor {
				s.selfStep(ev.id, ev.t)
			} else {
				s.workerStep(ev.id, ev.t)
			}
		}
	}
}

// nextTask draws from a source and forms a task.
func (s *simulator) makeTask(src dist.Source) simTask {
	v := src.Next()
	dictKey, insert := dist.Split(v)
	return simTask{key: s.model.txnKey(dictKey), dictKey: dictKey, insert: insert}
}

// producerStep: generate one task and dispatch it (Figure 1c: dispatch is
// inline in the producer).
func (s *simulator) producerStep(id int, now uint64) {
	p := &s.producers[id]
	t := s.makeTask(p.src)
	w := s.sched.Pick(t.key) % len(s.workers)
	if s.workers[w].qlen() >= s.p.QueueCap {
		// Backpressure: park until worker w dequeues.
		p.pending = t
		p.blocked = true
		s.blockedOn[w] = append(s.blockedOn[w], id)
		return
	}
	s.enqueue(w, t, now)
	s.events.push(now+s.p.GenCost+s.p.DispatchCost, evProducer, id)
}

// enqueue places a task and wakes an idle worker.
func (s *simulator) enqueue(w int, t simTask, now uint64) {
	wk := &s.workers[w]
	wk.queue = append(wk.queue, t)
	wk.enqueued++
	s.produced++
	if wk.idle {
		wk.idle = false
		start := now
		if wk.busyUntil > start {
			start = wk.busyUntil
		}
		s.events.push(start, evWorker, w)
	}
}

// workerStep: pop and execute one task (Figure 1c worker loop).
func (s *simulator) workerStep(id int, now uint64) {
	wk := &s.workers[id]
	t, ok := wk.pop()
	if !ok && s.p.WorkSteal {
		for off := 1; off < len(s.workers); off++ {
			v := &s.workers[(id+off)%len(s.workers)]
			if t, ok = v.pop(); ok {
				s.unblock((id+off)%len(s.workers), now)
				break
			}
		}
	}
	if !ok {
		wk.idle = true
		return
	}
	s.unblock(id, now)

	plan := s.model.plan(t.dictKey, t.insert)
	service := s.queueOverhead(wk) + plan.baseCost
	service += s.memoryCost(wk, plan)
	service += s.conflictCost(id, now, plan)
	s.retire(wk, plan)

	end := now + service
	if end <= s.p.DurationCycles && end > s.p.WarmupCycles {
		wk.completed++
	}
	wk.busyUntil = end
	s.events.push(end, evWorker, id)
}

// queueOverhead is the worker-side cost of taking one task from this
// worker's queue. The transfer component grows with the number of producers
// effectively feeding the queue (its share of all dispatched tasks times the
// producer count): more producers on one M&S queue means more tail-CAS
// retries and more head/tail cache-line ping-pong at the consumer. A queue
// that receives everything (fixed partitioning under a skewed distribution)
// keeps full contention no matter how many idle workers exist.
func (s *simulator) queueOverhead(wk *simWorker) uint64 {
	share := 1.0 / float64(len(s.workers))
	if s.produced > 0 {
		share = float64(wk.enqueued) / float64(s.produced)
	}
	perQueue := float64(s.p.Producers) * share
	return s.p.PopCost + uint64(float64(s.p.QueueTransferCost)*(1+s.p.QueueContentionFactor*perQueue))
}

// selfStep: Figure 1(a) — generate and execute inline, no queues.
func (s *simulator) selfStep(id int, now uint64) {
	wk := &s.workers[id]
	t := s.makeTask(wk.src)
	s.produced++
	plan := s.model.plan(t.dictKey, t.insert)
	service := s.p.GenCost + plan.baseCost
	service += s.memoryCost(wk, plan)
	service += s.conflictCost(id, now, plan)
	s.retire(wk, plan)
	end := now + service
	if end <= s.p.DurationCycles && end > s.p.WarmupCycles {
		wk.completed++
	}
	wk.busyUntil = end
	s.events.push(end, evWorker, id)
}

// unblock resumes one producer parked on worker w's queue, if any.
func (s *simulator) unblock(w int, now uint64) {
	if len(s.blockedOn[w]) == 0 {
		return
	}
	id := s.blockedOn[w][0]
	s.blockedOn[w] = s.blockedOn[w][1:]
	p := &s.producers[id]
	p.blocked = false
	s.enqueue(w, p.pending, now)
	s.events.push(now+s.p.GenCost+s.p.DispatchCost, evProducer, id)
}

// memoryCost charges the plan's block accesses through the worker's cache.
// Writes bump the global block version first, so the writer holds the fresh
// copy and every other processor's copy is invalidated — the coherence
// behaviour that rewards key partitioning. A write to a block the same plan
// just read is an ownership upgrade: the read already paid the transfer, so
// the store costs only a hit.
func (s *simulator) memoryCost(wk *simWorker, plan accessPlan) uint64 {
	var c uint64
	for _, b := range plan.reads {
		if wk.cache.Access(b, s.versions[b]) {
			c += s.p.HitCost
		} else {
			c += s.p.MissCost
		}
	}
	for _, b := range plan.writes {
		s.versions[b]++
		upgraded := false
		for _, rb := range plan.reads {
			if rb == b {
				upgraded = true
				break
			}
		}
		if upgraded {
			wk.cache.Install(b, s.versions[b])
			c += s.p.HitCost
			continue
		}
		if wk.cache.Access(b, s.versions[b]) {
			c += s.p.HitCost
		} else {
			c += s.p.MissCost
		}
	}
	return c
}

// conflictCost detects overlap between this task's access sets and every
// other in-flight transaction (Bernstein's condition: write/write or
// write/read on the same block), charging abort-and-retry time.
func (s *simulator) conflictCost(id int, now uint64, plan accessPlan) uint64 {
	var hits uint64
	wk := &s.workers[id]
	for i := range s.workers {
		if i == id {
			continue
		}
		v := &s.workers[i]
		if v.busyUntil <= now {
			continue
		}
		if overlaps(plan, v) {
			hits++
			if hits >= 3 {
				break
			}
		}
	}
	if hits > 0 {
		if now > s.p.WarmupCycles {
			wk.conflicts += hits
		}
		return hits * (s.p.ConflictCost + plan.baseCost)
	}
	return 0
}

// retire records the plan as the worker's in-flight access sets. Only the
// conflict-relevant reads (the post-early-release read set) are kept.
func (s *simulator) retire(wk *simWorker, plan accessPlan) {
	wk.curReads = append(wk.curReads[:0], plan.confReads...)
	wk.curWrites = append(wk.curWrites[:0], plan.writes...)
}

// overlaps applies Bernstein's condition between the new plan and a
// worker's in-flight sets: a conflict needs a common block with at least
// one writer.
func overlaps(plan accessPlan, v *simWorker) bool {
	for _, b := range plan.writes {
		for _, ob := range v.curWrites {
			if b == ob {
				return true
			}
		}
		for _, ob := range v.curReads {
			if b == ob {
				return true
			}
		}
	}
	for _, b := range plan.confReads {
		for _, ob := range v.curWrites {
			if b == ob {
				return true
			}
		}
	}
	return false
}
