package queue

import (
	"sort"
	"sync"
	"testing"
)

func allKinds(t *testing.T) map[Kind]Queue[int] {
	t.Helper()
	out := map[Kind]Queue[int]{}
	for _, k := range Kinds() {
		q, err := New[int](k)
		if err != nil {
			t.Fatalf("New(%q): %v", k, err)
		}
		out[k] = q
	}
	return out
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New[int](Kind("bogus")); err == nil {
		t.Fatal("New(bogus) succeeded")
	}
}

func TestFIFOAllKinds(t *testing.T) {
	for k, q := range allKinds(t) {
		const n = 500
		for i := 0; i < n; i++ {
			q.Put(i)
		}
		if q.Len() != n {
			t.Errorf("%s: Len = %d, want %d", k, q.Len(), n)
		}
		for i := 0; i < n; i++ {
			v, ok := q.Get()
			if !ok || v != i {
				t.Fatalf("%s: Get %d = (%d,%v)", k, i, v, ok)
			}
		}
		if _, ok := q.Get(); ok {
			t.Errorf("%s: not empty after drain", k)
		}
	}
}

func TestEmptyGetAllKinds(t *testing.T) {
	for k, q := range allKinds(t) {
		if v, ok := q.Get(); ok {
			t.Errorf("%s: Get on empty = (%d,true)", k, v)
		}
		if q.Len() != 0 {
			t.Errorf("%s: Len on empty = %d", k, q.Len())
		}
	}
}

func TestMutexRingGrowth(t *testing.T) {
	q := NewMutex[int]()
	// Interleave puts and gets so head is non-zero when growth happens.
	for i := 0; i < 10; i++ {
		q.Put(i)
	}
	for i := 0; i < 5; i++ {
		q.Get()
	}
	for i := 10; i < 200; i++ {
		q.Put(i)
	}
	for want := 5; want < 200; want++ {
		v, ok := q.Get()
		if !ok || v != want {
			t.Fatalf("after growth: Get = (%d,%v), want %d", v, ok, want)
		}
	}
}

func TestChanOverflowPreservesFIFO(t *testing.T) {
	q := NewChan[int](4) // tiny buffer forces the overflow path
	const n = 100
	for i := 0; i < n; i++ {
		q.Put(i)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Get()
		if !ok || v != i {
			t.Fatalf("overflowed chan: Get %d = (%d,%v)", i, v, ok)
		}
	}
}

func TestChanDefaultCapacity(t *testing.T) {
	q := NewChan[int](0)
	q.Put(7)
	if v, ok := q.Get(); !ok || v != 7 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
}

func TestMPMCConservationAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			t.Parallel()
			q, err := New[int](k)
			if err != nil {
				t.Fatal(err)
			}
			const producers, per = 4, 3000
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(base int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						q.Put(base + i)
					}
				}(p * per)
			}
			var mu sync.Mutex
			var got []int
			var cwg sync.WaitGroup
			done := make(chan struct{})
			for c := 0; c < 4; c++ {
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					for {
						v, ok := q.Get()
						if ok {
							mu.Lock()
							got = append(got, v)
							mu.Unlock()
							continue
						}
						select {
						case <-done:
							for {
								v, ok := q.Get()
								if !ok {
									return
								}
								mu.Lock()
								got = append(got, v)
								mu.Unlock()
							}
						default:
						}
					}
				}()
			}
			wg.Wait()
			close(done)
			cwg.Wait()
			if len(got) != producers*per {
				t.Fatalf("got %d elements, want %d", len(got), producers*per)
			}
			sort.Ints(got)
			for i, v := range got {
				if v != i {
					t.Fatalf("element %d missing or duplicated", i)
				}
			}
		})
	}
}

func BenchmarkQueues(b *testing.B) {
	for _, k := range Kinds() {
		k := k
		b.Run(string(k), func(b *testing.B) {
			q, err := New[int](k)
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q.Put(1)
					q.Get()
				}
			})
		})
	}
}

// TestPutAllFIFOAndContiguity: every implementation delivers a PutAll batch
// in order, and concurrent batches never interleave their elements.
func TestPutAllFIFOAndContiguity(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			q, err := New[int](k)
			if err != nil {
				t.Fatal(err)
			}
			// Order within a batch, across batches from one producer.
			q.PutAll([]int{1, 2, 3})
			q.Put(4)
			q.PutAll([]int{5})
			q.PutAll(nil) // no-op
			for want := 1; want <= 5; want++ {
				got, ok := q.Get()
				if !ok || got != want {
					t.Fatalf("Get = %d,%v want %d", got, ok, want)
				}
			}
			if _, ok := q.Get(); ok {
				t.Fatal("queue not empty")
			}
			// Contiguity under concurrency: producers tag elements with
			// their batch, consumers must see each batch's elements in
			// order and adjacent.
			const producers, batches, batchLen = 4, 50, 8
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for b := 0; b < batches; b++ {
						batch := make([]int, batchLen)
						for i := range batch {
							batch[i] = (p*batches+b)*batchLen + i
						}
						q.PutAll(batch)
					}
				}(p)
			}
			wg.Wait()
			total := producers * batches * batchLen
			got := make([]int, 0, total)
			for {
				v, ok := q.Get()
				if !ok {
					break
				}
				got = append(got, v)
			}
			if len(got) != total {
				t.Fatalf("drained %d of %d", len(got), total)
			}
			for i := 0; i < total; i += batchLen {
				base := got[i]
				if base%batchLen != 0 {
					t.Fatalf("batch boundary at %d starts mid-batch (%d)", i, base)
				}
				for j := 1; j < batchLen; j++ {
					if got[i+j] != base+j {
						t.Fatalf("batch starting %d interleaved: element %d is %d", base, j, got[i+j])
					}
				}
			}
		})
	}
}
