// Package queue provides the task-queue abstraction between the executor
// and its workers, with three interchangeable implementations used by the
// queue ablation study:
//
//   - "mscq": the lock-free Michael & Scott queue, matching the paper's use
//     of java.util.concurrent.ConcurrentLinkedQueue;
//   - "mutex": a mutex-protected ring buffer (the "obvious" alternative);
//   - "chan": a buffered Go channel.
//
// All implementations are unbounded from the producer's point of view (the
// channel variant grows by chaining), multi-producer and multi-consumer.
//
// The interface is deliberately wake-free: the executor's event-driven
// dispatch (core/wake.go, DESIGN.md §5.4) keeps its park/wake hooks on the
// EXECUTOR side of every Put/PutAll, not inside the queue, so
// implementations stay pure transports (and the amortized-queue-ops
// contract — one PutAll per worker group, nothing else — stays testable by
// wrapping a Queue). What the executor does rely on is that each kind's
// Get synchronizes with an earlier Put (mscq's seq-cst atomics, the ring's
// mutex, the channel's internal ordering): a parked worker's final Get
// after publishing its idle flag is guaranteed to observe any envelope
// enqueued before the flag was read — the queue half of the wake
// handshake's Dekker argument.
package queue

import (
	"fmt"
	"sync"

	"kstm/internal/mscq"
)

// Queue is the executor's task transport. Implementations must be safe for
// concurrent use by multiple producers and consumers.
type Queue[T any] interface {
	// Put appends v.
	Put(v T)
	// PutAll appends vs in order as one operation, amortizing the cost to
	// one synchronization per batch where the implementation allows (one
	// CAS splice for mscq, one lock acquisition for the mutex ring — both
	// of which also keep the batch contiguous; the channel variant keeps
	// order but a concurrent fast-path Put may interleave).
	PutAll(vs []T)
	// Get removes the oldest element; ok is false if empty.
	Get() (v T, ok bool)
	// Len returns the approximate queue depth (for load statistics).
	Len() int
}

// Kind selects a queue implementation by name.
type Kind string

// Available queue kinds.
const (
	KindMSCQ  Kind = "mscq"
	KindMutex Kind = "mutex"
	KindChan  Kind = "chan"
)

// Kinds lists all implementations, M&S first (the paper's configuration).
func Kinds() []Kind { return []Kind{KindMSCQ, KindMutex, KindChan} }

// New constructs a queue of the given kind. It returns an error for unknown
// kinds so the CLI can report bad flags cleanly.
func New[T any](k Kind) (Queue[T], error) {
	switch k {
	case KindMSCQ:
		return NewMS[T](), nil
	case KindMutex:
		return NewMutex[T](), nil
	case KindChan:
		return NewChan[T](defaultChanCapacity), nil
	default:
		return nil, fmt.Errorf("queue: unknown kind %q (want mscq, mutex or chan)", k)
	}
}

// MS adapts mscq.Queue to the Queue interface.
type MS[T any] struct {
	q *mscq.Queue[T]
}

// NewMS returns a lock-free Michael & Scott backed queue.
func NewMS[T any]() *MS[T] { return &MS[T]{q: mscq.New[T]()} }

// Put implements Queue.
func (m *MS[T]) Put(v T) { m.q.Enqueue(v) }

// PutAll implements Queue: one node block, one CAS splice.
func (m *MS[T]) PutAll(vs []T) { m.q.EnqueueAll(vs) }

// Get implements Queue.
func (m *MS[T]) Get() (T, bool) { return m.q.Dequeue() }

// Len implements Queue.
func (m *MS[T]) Len() int { return m.q.Len() }

// Mutex is a mutex-protected growable ring buffer.
type Mutex[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int // index of oldest element
	n    int // number of elements
}

// NewMutex returns an empty mutex-protected queue.
func NewMutex[T any]() *Mutex[T] {
	return &Mutex[T]{buf: make([]T, 16)}
}

// Put implements Queue.
func (q *Mutex[T]) Put(v T) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.mu.Unlock()
}

// PutAll implements Queue: one lock acquisition for the whole batch.
func (q *Mutex[T]) PutAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	q.mu.Lock()
	for q.n+len(vs) > len(q.buf) {
		q.grow()
	}
	for _, v := range vs {
		q.buf[(q.head+q.n)%len(q.buf)] = v
		q.n++
	}
	q.mu.Unlock()
}

// grow doubles the buffer; caller holds the lock.
func (q *Mutex[T]) grow() {
	newBuf := make([]T, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		newBuf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = newBuf
	q.head = 0
}

// Get implements Queue.
func (q *Mutex[T]) Get() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release reference
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}

// Len implements Queue.
func (q *Mutex[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

const defaultChanCapacity = 1 << 16

// Chan wraps a buffered channel. Put falls back to a mutex-protected
// overflow list if the channel fills, keeping the producer non-blocking like
// the other implementations (the executor model assumes unbounded queues).
type Chan[T any] struct {
	ch       chan T
	mu       sync.Mutex
	overflow []T
}

// NewChan returns a channel-backed queue with the given buffer capacity.
func NewChan[T any](capacity int) *Chan[T] {
	if capacity <= 0 {
		capacity = defaultChanCapacity
	}
	return &Chan[T]{ch: make(chan T, capacity)}
}

// Put implements Queue.
func (q *Chan[T]) Put(v T) {
	// Preserve FIFO: once anything has overflowed, keep appending to the
	// overflow list until it has drained back into the channel.
	q.mu.Lock()
	if len(q.overflow) > 0 {
		q.overflow = append(q.overflow, v)
		q.refillLocked()
		q.mu.Unlock()
		return
	}
	q.mu.Unlock()
	select {
	case q.ch <- v:
	default:
		q.mu.Lock()
		q.overflow = append(q.overflow, v)
		q.mu.Unlock()
	}
}

// PutAll implements Queue: the batch is appended in order under one lock —
// through the overflow list when anything already waits there (preserving
// FIFO), the channel otherwise. A concurrent fast-path Put (which skips the
// lock when nothing has overflowed) may interleave between batch elements;
// per-producer FIFO still holds, which is all the executor relies on.
func (q *Chan[T]) PutAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	q.mu.Lock()
	if len(q.overflow) > 0 {
		q.overflow = append(q.overflow, vs...)
		q.refillLocked()
		q.mu.Unlock()
		return
	}
	for i, v := range vs {
		select {
		case q.ch <- v:
		default:
			q.overflow = append(q.overflow, vs[i:]...)
			q.mu.Unlock()
			return
		}
	}
	q.mu.Unlock()
}

// refillLocked moves overflow entries into the channel while space permits.
func (q *Chan[T]) refillLocked() {
	for len(q.overflow) > 0 {
		select {
		case q.ch <- q.overflow[0]:
			q.overflow = q.overflow[1:]
		default:
			return
		}
	}
}

// Get implements Queue.
func (q *Chan[T]) Get() (T, bool) {
	select {
	case v := <-q.ch:
		q.mu.Lock()
		q.refillLocked()
		q.mu.Unlock()
		return v, true
	default:
	}
	// Channel looked empty; check overflow.
	q.mu.Lock()
	q.refillLocked()
	q.mu.Unlock()
	select {
	case v := <-q.ch:
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// Len implements Queue.
func (q *Chan[T]) Len() int {
	q.mu.Lock()
	n := len(q.overflow)
	q.mu.Unlock()
	return len(q.ch) + n
}
