package dist

import (
	"math"
	"testing"
)

func TestSplitPackRoundTrip(t *testing.T) {
	cases := []struct {
		key    uint32
		insert bool
	}{{0, false}, {0, true}, {1, true}, {MaxKey, false}, {MaxKey, true}, {12345, true}}
	for _, c := range cases {
		key, insert := Split(pack(c.key, c.insert))
		if key != c.key || insert != c.insert {
			t.Errorf("Split(pack(%d,%v)) = (%d,%v)", c.key, c.insert, key, insert)
		}
	}
	// High bits beyond the 17-bit value must not leak into the key.
	if key, _ := Split(1 << 20); key > MaxKey {
		t.Errorf("key %d overflows the key space", key)
	}
}

func TestSourcesDeterministic(t *testing.T) {
	for _, name := range append(Names(), "drift") {
		a, _ := ByName(name, 42)
		b, _ := ByName(name, 42)
		for i := 0; i < 1000; i++ {
			if a.Next() != b.Next() {
				t.Errorf("%s: equal seeds diverge at draw %d", name, i)
				break
			}
		}
	}
}

// drawKeys collects n split keys and the insert-bit count.
func drawKeys(s Source, n int) (keys []uint32, inserts int) {
	keys = make([]uint32, n)
	for i := range keys {
		k, ins := Split(s.Next())
		keys[i] = k
		if ins {
			inserts++
		}
	}
	return keys, inserts
}

func TestOperationBitsFair(t *testing.T) {
	for _, name := range append(Names(), "drift") {
		s, _ := ByName(name, 7)
		const n = 20000
		_, inserts := drawKeys(s, n)
		if ratio := float64(inserts) / n; ratio < 0.45 || ratio > 0.55 {
			t.Errorf("%s: insert ratio %.3f, want ~0.5", name, ratio)
		}
	}
}

func TestUniformCoversKeySpace(t *testing.T) {
	keys, _ := drawKeys(NewUniform(1), 50000)
	var mean float64
	var quarters [4]int
	for _, k := range keys {
		if k > MaxKey {
			t.Fatalf("key %d out of range", k)
		}
		mean += float64(k)
		quarters[k/((MaxKey+1)/4)]++
	}
	mean /= float64(len(keys))
	if math.Abs(mean-float64(MaxKey)/2) > 500 {
		t.Errorf("uniform mean = %.0f, want ~%d", mean, MaxKey/2)
	}
	for i, q := range quarters {
		if q < len(keys)/5 {
			t.Errorf("quarter %d underpopulated: %d/%d", i, q, len(keys))
		}
	}
}

func TestGaussianCentered(t *testing.T) {
	keys, _ := drawKeys(NewGaussianDefault(2), 50000)
	var mean float64
	within := 0
	for _, k := range keys {
		mean += float64(k)
		if k >= 1<<15-1<<13 && k < 1<<15+1<<13 {
			within++
		}
	}
	mean /= float64(len(keys))
	if math.Abs(mean-1<<15) > 300 {
		t.Errorf("gaussian mean = %.0f, want ~%d", mean, 1<<15)
	}
	// ~68% of a normal falls within one standard deviation.
	if ratio := float64(within) / float64(len(keys)); ratio < 0.6 || ratio > 0.76 {
		t.Errorf("mass within 1 stddev = %.3f, want ~0.68", ratio)
	}
}

func TestExponentialSkew(t *testing.T) {
	keys, _ := drawKeys(NewExponentialDefault(3), 50000)
	below1024 := 0
	for _, k := range keys {
		if k < 1024 {
			below1024++
		}
	}
	// Mean 512 puts 1 - e^-2 ~ 86.5% of the mass below 1024.
	ratio := float64(below1024) / float64(len(keys))
	if ratio < 0.84 || ratio > 0.89 {
		t.Errorf("exponential mass below 1024 = %.3f, want ~0.87", ratio)
	}
}

func TestDriftMovesMass(t *testing.T) {
	s := NewDrift(4)
	const window = 5000
	meanOf := func() float64 {
		keys, _ := drawKeys(s, window)
		var m float64
		for _, k := range keys {
			m += float64(k)
		}
		return m / window
	}
	early := meanOf()
	for i := 0; i < 4*driftDraws/5; i++ {
		s.Next()
	}
	late := meanOf()
	if late < early+float64(MaxKey)/4 {
		t.Errorf("drift did not move: early mean %.0f, late mean %.0f", early, late)
	}
	// Saturation: far past the trajectory the mean stays near the limit.
	for i := 0; i < driftDraws; i++ {
		s.Next()
	}
	saturated := meanOf()
	if math.Abs(saturated-driftLimit) > 2000 {
		t.Errorf("saturated mean = %.0f, want ~%d", saturated, driftLimit)
	}
}

func TestNamesAndByName(t *testing.T) {
	want := []string{"uniform", "gaussian", "exponential"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (table indices depend on this order)", i, got[i], want[i])
		}
	}
	for _, name := range append(want, "drift") {
		if _, err := ByName(name, 1); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("pareto", 1); err == nil {
		t.Error("ByName(pareto) succeeded")
	}
}
