package dist

import "testing"

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(11, 1.3, 4096)
	b := NewZipf(11, 1.3, 4096)
	for i := 0; i < 5000; i++ {
		if va, vb := a.Next(), b.Next(); va != vb {
			t.Fatalf("draw %d diverged: %d vs %d", i, va, vb)
		}
	}
	c := NewZipf(12, 1.3, 4096)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

// Frequencies must be monotone non-increasing in rank (up to sampling
// noise): rank 0 strictly hottest, head heavier than tail.
func TestZipfSkewMonotoneInRank(t *testing.T) {
	z := NewZipf(5, 1.3, 1024)
	counts := make([]int, 1024)
	const draws = 200000
	for i := 0; i < draws; i++ {
		key, _ := Split(z.Next())
		counts[key]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[4] {
		t.Errorf("head not monotone: c0=%d c1=%d c4=%d", counts[0], counts[1], counts[4])
	}
	// Zipf s=1.3 over 1024 ranks: rank 0 holds ~35% of the mass.
	if frac := float64(counts[0]) / draws; frac < 0.25 {
		t.Errorf("rank-0 share = %v, want ≥ 0.25 at s=1.3", frac)
	}
	head, tail := 0, 0
	for r := 0; r < 8; r++ {
		head += counts[r]
	}
	for r := 512; r < 520; r++ {
		tail += counts[r]
	}
	if head <= tail*10 {
		t.Errorf("head(0..7)=%d not ≫ tail(512..519)=%d", head, tail)
	}
}

// Raising s must concentrate more mass on the hottest rank.
func TestZipfSkewMonotoneInS(t *testing.T) {
	const draws = 100000
	share := func(s float64) float64 {
		z := NewZipf(7, s, 1024)
		hot := 0
		for i := 0; i < draws; i++ {
			if key, _ := Split(z.Next()); key == 0 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	s08, s13, s20 := share(0.8), share(1.3), share(2.0)
	if !(s08 < s13 && s13 < s20) {
		t.Errorf("rank-0 share not monotone in s: s=0.8→%v s=1.3→%v s=2.0→%v", s08, s13, s20)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(3, 1.2, 16)
	for i := 0; i < 10000; i++ {
		key, _ := Split(z.Next())
		if key > 15 {
			t.Fatalf("draw %d: key %d outside rank space [0,16)", i, key)
		}
	}
	// Clamped construction must not panic and must stay in the key space.
	w := NewZipf(3, -1, MaxKey+100)
	for i := 0; i < 1000; i++ {
		key, _ := Split(w.Next())
		if key > MaxKey {
			t.Fatalf("clamped source drew key %d > MaxKey", key)
		}
	}
}

func TestZipfByName(t *testing.T) {
	s, err := ByName("zipf", 42)
	if err != nil {
		t.Fatalf("ByName(zipf): %v", err)
	}
	if _, ok := s.(*Zipf); !ok {
		t.Fatalf("ByName(zipf) = %T, want *Zipf", s)
	}
	// zipf is an ablation source like drift: not in the paper's Names() set.
	for _, n := range Names() {
		if n == "zipf" {
			t.Error("zipf must not appear in Names()")
		}
	}
}
