// Package dist implements the paper's workload value sources (§4.4): each
// draw is a 17-bit value whose low bit selects insert vs. delete and whose
// high 16 bits are the dictionary key. Keeping insert and delete equally
// likely holds the dictionaries at a steady-state size of half the key
// space, as the paper's generators do.
//
// Three key distributions match the paper's evaluation:
//
//   - uniform over the full 16-bit key space;
//   - Gaussian centered mid-space (mean 2^15, deviation 2^13);
//   - exponential with mean 512, packing ~87% of the key mass below 1024 —
//     the distribution that defeats fixed equal-width partitioning.
//
// A fourth source, "drift" (ByName only; not part of the paper's set),
// moves a Gaussian's mean across the key space over the run. It exists for
// the re-adaptation ablation: a one-shot PD-partition goes stale under it.
//
// Sources are deterministic: equal seeds give equal streams. They are not
// safe for concurrent use; every producer owns a private source.
package dist

import (
	"fmt"

	"kstm/internal/rng"
)

// KeyBits is the width of the dictionary key space.
const KeyBits = 16

// MaxKey is the largest 16-bit dictionary key.
const MaxKey = 1<<KeyBits - 1

// KeyMask masks a value down to the key space.
const KeyMask = MaxKey

// Source generates 17-bit workload values; pass each to Split. Sources are
// private per producer and need not be safe for concurrent use.
type Source interface {
	Next() uint32
}

// Split decomposes a generated 17-bit value into its 16-bit dictionary key
// (the high bits) and its insert/delete type bit (the low bit, §4.4): true
// means insert.
func Split(v uint32) (key uint32, insert bool) {
	return (v >> 1) & KeyMask, v&1 == 1
}

// pack is Split's inverse; the shaped sources draw a key from their
// distribution and a fair operation bit, then pack both.
func pack(key uint32, insert bool) uint32 {
	v := (key & KeyMask) << 1
	if insert {
		v |= 1
	}
	return v
}

// clampKey converts a real-valued key draw to the closed key range.
func clampKey(k float64) uint32 {
	if k < 0 {
		return 0
	}
	if k > MaxKey {
		return MaxKey
	}
	return uint32(k)
}

// Uniform draws values uniformly over the whole 17-bit space, so both the
// key and the operation bit are uniform.
type Uniform struct {
	r *rng.Xoshiro256
}

// NewUniform returns a uniform source.
func NewUniform(seed uint64) *Uniform {
	return &Uniform{r: rng.New(seed)}
}

// Next implements Source.
func (u *Uniform) Next() uint32 {
	return uint32(u.r.Uint64n(1 << (KeyBits + 1)))
}

// Gaussian draws keys from a normal distribution clamped to the key space,
// with a fair operation bit.
type Gaussian struct {
	r            *rng.Xoshiro256
	mean, stddev float64
}

// NewGaussian returns a Gaussian source with the given key mean and
// standard deviation.
func NewGaussian(seed uint64, mean, stddev float64) *Gaussian {
	return &Gaussian{r: rng.New(seed), mean: mean, stddev: stddev}
}

// NewGaussianDefault returns the paper's Gaussian: centered at 2^15 with
// deviation 2^13, concentrating ~2/3 of the mass in the middle quarter of
// the key space.
func NewGaussianDefault(seed uint64) *Gaussian {
	return NewGaussian(seed, 1<<15, 1<<13)
}

// Next implements Source.
func (g *Gaussian) Next() uint32 {
	key := clampKey(g.mean + g.stddev*g.r.NormFloat64())
	return pack(key, g.r.Uint64()&1 == 1)
}

// Exponential draws keys from an exponential distribution clamped to the
// key space, with a fair operation bit.
type Exponential struct {
	r    *rng.Xoshiro256
	mean float64
}

// NewExponential returns an exponential source with the given key mean.
func NewExponential(seed uint64, mean float64) *Exponential {
	return &Exponential{r: rng.New(seed), mean: mean}
}

// NewExponentialDefault returns the paper's exponential: mean 512, so ~63%
// of keys fall below 512 and ~87% below 1024 — under 2% of the key space.
func NewExponentialDefault(seed uint64) *Exponential {
	return NewExponential(seed, 512)
}

// Next implements Source.
func (e *Exponential) Next() uint32 {
	key := clampKey(e.mean * e.r.ExpFloat64())
	return pack(key, e.r.Uint64()&1 == 1)
}

// Drift is a Gaussian whose mean advances a fixed step per draw from a low
// start toward a high limit, then saturates. It models a workload whose hot
// key range migrates mid-run: a partition learned from the first sample
// window concentrates later load on the top worker, which is exactly what
// the re-adaptation extension corrects.
type Drift struct {
	r            *rng.Xoshiro256
	mean, stddev float64
	step, limit  float64
}

// Drift trajectory: start at 1/8 of the key space, saturate at 7/8 after
// driftDraws draws — short enough that even abbreviated simulated runs see
// substantial movement.
const (
	driftStart  = (MaxKey + 1) / 8
	driftLimit  = 7 * (MaxKey + 1) / 8
	driftStddev = 3000
	driftDraws  = 30000
)

// NewDrift returns a drifting source.
func NewDrift(seed uint64) *Drift {
	return &Drift{
		r:      rng.New(seed),
		mean:   driftStart,
		stddev: driftStddev,
		step:   float64(driftLimit-driftStart) / driftDraws,
		limit:  driftLimit,
	}
}

// Next implements Source.
func (d *Drift) Next() uint32 {
	key := clampKey(d.mean + d.stddev*d.r.NormFloat64())
	if d.mean < d.limit {
		d.mean += d.step
	}
	return pack(key, d.r.Uint64()&1 == 1)
}

// Names lists the paper's distributions in presentation order. The drift
// source is deliberately excluded: it is an ablation device, not part of
// the paper's workload set.
func Names() []string {
	return []string{"uniform", "gaussian", "exponential"}
}

// ByName constructs a source by name; it accepts the paper's three
// distributions plus "drift" and "zipf".
func ByName(name string, seed uint64) (Source, error) {
	switch name {
	case "uniform":
		return NewUniform(seed), nil
	case "gaussian":
		return NewGaussianDefault(seed), nil
	case "exponential":
		return NewExponentialDefault(seed), nil
	case "drift":
		return NewDrift(seed), nil
	case "zipf":
		return NewZipfDefault(seed), nil
	default:
		return nil, fmt.Errorf("dist: unknown distribution %q (want uniform, gaussian, exponential, drift or zipf)", name)
	}
}
