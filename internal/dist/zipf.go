package dist

import (
	"math"
	"sync"

	"kstm/internal/rng"
)

// Zipf draws keys from a Zipf(s) distribution over ranks 0..n-1 (rank r has
// weight 1/(r+1)^s; rank 0 is the hottest key), with a fair operation bit.
// It exists for the split-phase contention experiment: at s ≥ 1.2 a handful
// of head keys carry most of the traffic, which key-affinity routing cannot
// dilute — the serialization class split-phase execution targets.
//
// Sampling is by inversion over a precomputed cumulative table (one binary
// search per draw). Tables are cached per (s, n) so constructing many
// per-client sources shares one table; the draw path itself is
// deterministic per seed like every other source here.
//
// Zipf is ByName-constructible ("zipf", default s=1.2 over the full key
// space) but, like drift, excluded from Names(): it is an ablation device
// for the contention experiment, not part of the paper's workload set.
type Zipf struct {
	r   *rng.Xoshiro256
	cdf []float64
}

// zipfCDFs caches cumulative tables keyed by the (s, n) parameter pair.
var zipfCDFs sync.Map

type zipfParams struct {
	s float64
	n int
}

func zipfCDF(s float64, n int) []float64 {
	if v, ok := zipfCDFs.Load(zipfParams{s, n}); ok {
		return v.([]float64)
	}
	cdf := make([]float64, n)
	var sum float64
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), s)
		cdf[r] = sum
	}
	inv := 1 / sum
	for r := range cdf {
		cdf[r] *= inv
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail unreachable
	v, _ := zipfCDFs.LoadOrStore(zipfParams{s, n}, cdf)
	return v.([]float64)
}

// NewZipf returns a Zipf source over ranks 0..n-1 with exponent s. s is
// clamped to ≥ 0.01 (s=0 would be uniform and breaks no math, but a
// near-zero exponent signals a configuration mistake in a contention
// experiment); n is clamped to the key space.
func NewZipf(seed uint64, s float64, n int) *Zipf {
	if s < 0.01 {
		s = 0.01
	}
	if n < 1 {
		n = 1
	}
	if n > MaxKey+1 {
		n = MaxKey + 1
	}
	return &Zipf{r: rng.New(seed), cdf: zipfCDF(s, n)}
}

// NewZipfDefault returns the contention experiment's default: s=1.2 over
// the full 16-bit key space (the acceptance threshold's skew floor).
func NewZipfDefault(seed uint64) *Zipf {
	return NewZipf(seed, 1.2, MaxKey+1)
}

// Rank draws a key rank without the operation bit (rank 0 hottest).
func (z *Zipf) Rank() uint32 {
	u := z.r.Float64()
	// Binary search for the first rank whose cumulative mass covers u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

// Next implements Source: the drawn rank IS the key, so key 0 is the
// hottest, matching the head-of-distribution hot-key shape the contention
// experiment wants.
func (z *Zipf) Next() uint32 {
	return pack(z.Rank(), z.r.Uint64()&1 == 1)
}
