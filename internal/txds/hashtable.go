package txds

import (
	"kstm/internal/stm"
)

// DefaultBuckets is the paper's table size: a prime close to half the
// 16-bit value range, so the load factor at steady state is about 1 (§4.2).
const DefaultBuckets = 30031

// HashTable is a transactional hash table with external chaining. Each
// bucket is one transactional object holding the bucket's key list, so two
// transactions conflict exactly when they modify the same bucket — the
// conflict granularity the paper's transaction keys are designed around.
type HashTable struct {
	buckets []*stm.Object // each holds *bucket
}

// bucket is a bucket version: an unordered key list. Versions are
// copy-on-write: clone deep-copies the slice so a transaction's private
// version never aliases a committed one.
type bucket struct {
	keys []uint32
}

func cloneBucket(v any) any {
	b := v.(*bucket)
	c := &bucket{keys: make([]uint32, len(b.keys))}
	copy(c.keys, b.keys)
	return c
}

// NewHashTable returns a table with the given bucket count; zero or
// negative uses DefaultBuckets.
func NewHashTable(buckets int) *HashTable {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	t := &HashTable{buckets: make([]*stm.Object, buckets)}
	for i := range t.buckets {
		t.buckets[i] = stm.NewObject(&bucket{}, cloneBucket)
	}
	return t
}

// Name implements IntSet.
func (t *HashTable) Name() string { return string(KindHashTable) }

// Buckets returns the bucket count.
func (t *HashTable) Buckets() int { return len(t.buckets) }

// Hash is the paper's hash function: the key modulo the bucket count. The
// executor uses this value (not the dictionary key) as the transaction key.
func (t *HashTable) Hash(key uint32) uint32 { return key % uint32(len(t.buckets)) }

// Insert implements IntSet.
func (t *HashTable) Insert(th *stm.Thread, key uint32) (bool, error) {
	obj := t.buckets[t.Hash(key)]
	var added bool
	err := th.Atomic(func(tx *stm.Tx) error {
		added = false
		// Read first: an insert of a present key must not acquire the
		// bucket for writing (no write conflict for a logical no-op).
		v, err := tx.Read(obj)
		if err != nil {
			return err
		}
		if containsKey(v.(*bucket).keys, key) {
			return nil
		}
		w, err := tx.Write(obj)
		if err != nil {
			return err
		}
		b := w.(*bucket)
		// Re-check on the written clone: the versions are identical by
		// construction, but keeping the check here makes the operation
		// correct even if the read is someday removed.
		if containsKey(b.keys, key) {
			return nil
		}
		b.keys = append(b.keys, key)
		added = true
		return nil
	})
	return added, err
}

// Delete implements IntSet.
func (t *HashTable) Delete(th *stm.Thread, key uint32) (bool, error) {
	obj := t.buckets[t.Hash(key)]
	var removed bool
	err := th.Atomic(func(tx *stm.Tx) error {
		removed = false
		v, err := tx.Read(obj)
		if err != nil {
			return err
		}
		if !containsKey(v.(*bucket).keys, key) {
			return nil
		}
		w, err := tx.Write(obj)
		if err != nil {
			return err
		}
		b := w.(*bucket)
		for i, k := range b.keys {
			if k == key {
				b.keys[i] = b.keys[len(b.keys)-1]
				b.keys = b.keys[:len(b.keys)-1]
				removed = true
				return nil
			}
		}
		return nil
	})
	return removed, err
}

// Contains implements IntSet.
func (t *HashTable) Contains(th *stm.Thread, key uint32) (bool, error) {
	obj := t.buckets[t.Hash(key)]
	var found bool
	err := th.Atomic(func(tx *stm.Tx) error {
		v, err := tx.Read(obj)
		if err != nil {
			return err
		}
		found = containsKey(v.(*bucket).keys, key)
		return nil
	})
	return found, err
}

// Len returns the total number of keys, counted in one transaction. It is
// O(buckets) and intended for tests, not hot paths.
func (t *HashTable) Len(th *stm.Thread) (int, error) {
	var n int
	err := th.Atomic(func(tx *stm.Tx) error {
		n = 0
		for _, obj := range t.buckets {
			v, err := tx.Read(obj)
			if err != nil {
				return err
			}
			n += len(v.(*bucket).keys)
			// A full-table scan would otherwise build a 30031-entry
			// read set and abort on any concurrent write; release as
			// we go, accepting a non-atomic count like `size()` in
			// java.util.concurrent collections.
			tx.Release(obj)
		}
		return nil
	})
	return n, err
}

// ExtractRange implements RangeStore. For the hash table the scheduling key
// is the bucket index (the Hash output the executor dispatches on), so
// [lo, hi] selects whole buckets; hi clamps to the table size. Each bucket
// drains in its own transaction: the moved range is quiesced by the caller,
// so per-bucket atomicity is enough and keeps the operation obstruction-
// friendly against concurrent traffic on other buckets.
func (t *HashTable) ExtractRange(th *stm.Thread, lo, hi uint32) ([]uint32, error) {
	if int(hi) >= len(t.buckets) {
		hi = uint32(len(t.buckets) - 1)
	}
	var out []uint32
	for b := lo; b <= hi; b++ {
		obj := t.buckets[b]
		mark := len(out)
		err := th.Atomic(func(tx *stm.Tx) error {
			out = out[:mark] // an aborted attempt must not leave its appends
			v, err := tx.Read(obj)
			if err != nil {
				return err
			}
			if len(v.(*bucket).keys) == 0 {
				return nil // empty bucket: no write acquisition
			}
			w, err := tx.Write(obj)
			if err != nil {
				return err
			}
			bk := w.(*bucket)
			out = append(out, bk.keys...)
			bk.keys = nil
			return nil
		})
		if err != nil {
			return out, err
		}
		if b == hi {
			break // hi may be the maximum uint32; b++ would wrap
		}
	}
	return out, nil
}

// ExtractKeyRange removes and returns every DICTIONARY key in [lo, hi] —
// for deployments that dispatch on the dictionary key itself rather than
// the hash output (e.g. kstmd's wire clients, which choose their own
// scheduling keys). A dictionary-key range is scattered across buckets, so
// this scans the whole table, filtering per bucket; migration is rare and
// fenced, so the O(buckets) pass is paid off the execution path.
func (t *HashTable) ExtractKeyRange(th *stm.Thread, lo, hi uint32) ([]uint32, error) {
	var out []uint32
	for _, obj := range t.buckets {
		obj := obj
		mark := len(out)
		err := th.Atomic(func(tx *stm.Tx) error {
			out = out[:mark]
			v, err := tx.Read(obj)
			if err != nil {
				return err
			}
			hit := false
			for _, k := range v.(*bucket).keys {
				if k >= lo && k <= hi {
					hit = true
					break
				}
			}
			if !hit {
				return nil
			}
			w, err := tx.Write(obj)
			if err != nil {
				return err
			}
			bk := w.(*bucket)
			kept := bk.keys[:0]
			for _, k := range bk.keys {
				if k >= lo && k <= hi {
					out = append(out, k)
				} else {
					kept = append(kept, k)
				}
			}
			bk.keys = kept
			return nil
		})
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ExtractKeyRanges is the batch form of ExtractKeyRange: one pass over the
// table's buckets removes every dictionary key falling in ANY of the given
// disjoint closed ranges, returning the removed keys per range (out[i]
// belongs to ranges[i]). A multi-range re-partition epoch therefore costs
// one O(buckets) scan instead of one per range — the fence-window saving
// the epoch-fenced migrator batches for.
func (t *HashTable) ExtractKeyRanges(th *stm.Thread, ranges []KeyRange) ([][]uint32, error) {
	out := make([][]uint32, len(ranges))
	if len(ranges) == 0 {
		return out, nil
	}
	rangeOf := func(k uint32) int {
		for i, r := range ranges {
			if k >= r.Lo && k <= r.Hi {
				return i
			}
		}
		return -1
	}
	marks := make([]int, len(ranges))
	for _, obj := range t.buckets {
		for i := range out {
			marks[i] = len(out[i])
		}
		err := th.Atomic(func(tx *stm.Tx) error {
			// An aborted attempt must not leave its appends.
			for i := range out {
				out[i] = out[i][:marks[i]]
			}
			v, err := tx.Read(obj)
			if err != nil {
				return err
			}
			hit := false
			for _, k := range v.(*bucket).keys {
				if rangeOf(k) >= 0 {
					hit = true
					break
				}
			}
			if !hit {
				return nil // no write acquisition for untouched buckets
			}
			w, err := tx.Write(obj)
			if err != nil {
				return err
			}
			bk := w.(*bucket)
			kept := bk.keys[:0]
			for _, k := range bk.keys {
				if ri := rangeOf(k); ri >= 0 {
					out[ri] = append(out[ri], k)
				} else {
					kept = append(kept, k)
				}
			}
			bk.keys = kept
			return nil
		})
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// InstallKeys implements RangeStore.
func (t *HashTable) InstallKeys(th *stm.Thread, keys []uint32) error {
	for _, k := range keys {
		if _, err := t.Insert(th, k); err != nil {
			return err
		}
	}
	return nil
}

func containsKey(keys []uint32, key uint32) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}
