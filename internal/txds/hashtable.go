package txds

import (
	"kstm/internal/stm"
)

// DefaultBuckets is the paper's table size: a prime close to half the
// 16-bit value range, so the load factor at steady state is about 1 (§4.2).
const DefaultBuckets = 30031

// HashTable is a transactional hash table with external chaining. Each
// bucket is one transactional object holding the bucket's key list, so two
// transactions conflict exactly when they modify the same bucket — the
// conflict granularity the paper's transaction keys are designed around.
type HashTable struct {
	buckets []*stm.Object // each holds *bucket
}

// bucket is a bucket version: an unordered key list. Versions are
// copy-on-write: clone deep-copies the slice so a transaction's private
// version never aliases a committed one.
type bucket struct {
	keys []uint32
}

func cloneBucket(v any) any {
	b := v.(*bucket)
	c := &bucket{keys: make([]uint32, len(b.keys))}
	copy(c.keys, b.keys)
	return c
}

// NewHashTable returns a table with the given bucket count; zero or
// negative uses DefaultBuckets.
func NewHashTable(buckets int) *HashTable {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	t := &HashTable{buckets: make([]*stm.Object, buckets)}
	for i := range t.buckets {
		t.buckets[i] = stm.NewObject(&bucket{}, cloneBucket)
	}
	return t
}

// Name implements IntSet.
func (t *HashTable) Name() string { return string(KindHashTable) }

// Buckets returns the bucket count.
func (t *HashTable) Buckets() int { return len(t.buckets) }

// Hash is the paper's hash function: the key modulo the bucket count. The
// executor uses this value (not the dictionary key) as the transaction key.
func (t *HashTable) Hash(key uint32) uint32 { return key % uint32(len(t.buckets)) }

// Insert implements IntSet.
func (t *HashTable) Insert(th *stm.Thread, key uint32) (bool, error) {
	obj := t.buckets[t.Hash(key)]
	var added bool
	err := th.Atomic(func(tx *stm.Tx) error {
		added = false
		// Read first: an insert of a present key must not acquire the
		// bucket for writing (no write conflict for a logical no-op).
		v, err := tx.Read(obj)
		if err != nil {
			return err
		}
		if containsKey(v.(*bucket).keys, key) {
			return nil
		}
		w, err := tx.Write(obj)
		if err != nil {
			return err
		}
		b := w.(*bucket)
		// Re-check on the written clone: the versions are identical by
		// construction, but keeping the check here makes the operation
		// correct even if the read is someday removed.
		if containsKey(b.keys, key) {
			return nil
		}
		b.keys = append(b.keys, key)
		added = true
		return nil
	})
	return added, err
}

// Delete implements IntSet.
func (t *HashTable) Delete(th *stm.Thread, key uint32) (bool, error) {
	obj := t.buckets[t.Hash(key)]
	var removed bool
	err := th.Atomic(func(tx *stm.Tx) error {
		removed = false
		v, err := tx.Read(obj)
		if err != nil {
			return err
		}
		if !containsKey(v.(*bucket).keys, key) {
			return nil
		}
		w, err := tx.Write(obj)
		if err != nil {
			return err
		}
		b := w.(*bucket)
		for i, k := range b.keys {
			if k == key {
				b.keys[i] = b.keys[len(b.keys)-1]
				b.keys = b.keys[:len(b.keys)-1]
				removed = true
				return nil
			}
		}
		return nil
	})
	return removed, err
}

// Contains implements IntSet.
func (t *HashTable) Contains(th *stm.Thread, key uint32) (bool, error) {
	obj := t.buckets[t.Hash(key)]
	var found bool
	err := th.Atomic(func(tx *stm.Tx) error {
		v, err := tx.Read(obj)
		if err != nil {
			return err
		}
		found = containsKey(v.(*bucket).keys, key)
		return nil
	})
	return found, err
}

// Len returns the total number of keys, counted in one transaction. It is
// O(buckets) and intended for tests, not hot paths.
func (t *HashTable) Len(th *stm.Thread) (int, error) {
	var n int
	err := th.Atomic(func(tx *stm.Tx) error {
		n = 0
		for _, obj := range t.buckets {
			v, err := tx.Read(obj)
			if err != nil {
				return err
			}
			n += len(v.(*bucket).keys)
			// A full-table scan would otherwise build a 30031-entry
			// read set and abort on any concurrent write; release as
			// we go, accepting a non-atomic count like `size()` in
			// java.util.concurrent collections.
			tx.Release(obj)
		}
		return nil
	})
	return n, err
}

func containsKey(keys []uint32, key uint32) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}
