package txds

import (
	"sort"
	"sync"
	"testing"

	"kstm/internal/rng"
	"kstm/internal/stm"
)

// oracleCheck runs a long random stream of insert/delete/contains against a
// map oracle on a single thread.
func oracleCheck(t *testing.T, s *stm.STM, set IntSet, ops int, keyRange uint32, seed uint64) {
	t.Helper()
	th := s.NewThread()
	r := rng.New(seed)
	oracle := map[uint32]bool{}
	for i := 0; i < ops; i++ {
		key := uint32(r.Uint64n(uint64(keyRange)))
		switch r.Uint64n(3) {
		case 0:
			added, err := set.Insert(th, key)
			if err != nil {
				t.Fatalf("op %d Insert(%d): %v", i, key, err)
			}
			if added == oracle[key] {
				t.Fatalf("op %d Insert(%d) added=%v but oracle present=%v", i, key, added, oracle[key])
			}
			oracle[key] = true
		case 1:
			removed, err := set.Delete(th, key)
			if err != nil {
				t.Fatalf("op %d Delete(%d): %v", i, key, err)
			}
			if removed != oracle[key] {
				t.Fatalf("op %d Delete(%d) removed=%v but oracle present=%v", i, key, removed, oracle[key])
			}
			delete(oracle, key)
		default:
			found, err := set.Contains(th, key)
			if err != nil {
				t.Fatalf("op %d Contains(%d): %v", i, key, err)
			}
			if found != oracle[key] {
				t.Fatalf("op %d Contains(%d) = %v but oracle = %v", i, key, found, oracle[key])
			}
		}
	}
	// Final sweep: every key agrees with the oracle.
	for key := uint32(0); key < keyRange; key++ {
		found, err := set.Contains(th, key)
		if err != nil {
			t.Fatal(err)
		}
		if found != oracle[key] {
			t.Fatalf("final Contains(%d) = %v, oracle %v", key, found, oracle[key])
		}
	}
}

func TestHashTableOracle(t *testing.T) {
	s := stm.New()
	oracleCheck(t, s, NewHashTable(97), 5000, 300, 1)
}

func TestSortedListOracle(t *testing.T) {
	s := stm.New()
	oracleCheck(t, s, NewSortedList(), 3000, 120, 2)
}

func TestRBTreeOracle(t *testing.T) {
	s := stm.New()
	oracleCheck(t, s, NewRBTree(), 6000, 400, 3)
}

func TestRBTreeInvariantsUnderChurn(t *testing.T) {
	s := stm.New()
	tree := NewRBTree()
	th := s.NewThread()
	r := rng.New(7)
	for i := 0; i < 4000; i++ {
		key := uint32(r.Uint64n(500))
		if r.Uint64()&1 == 0 {
			if _, err := tree.Insert(th, key); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := tree.Delete(th, key); err != nil {
				t.Fatal(err)
			}
		}
		if i%250 == 0 {
			if _, err := tree.CheckInvariants(th); err != nil {
				t.Fatalf("after op %d: %v", i, err)
			}
		}
	}
	if _, err := tree.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeAscendingDescendingInserts(t *testing.T) {
	// Sequential insert orders that break naive BSTs must keep the tree
	// balanced.
	for name, keys := range map[string][]uint32{
		"ascending":  seq(0, 512, 1),
		"descending": seq(511, -1, -1),
	} {
		t.Run(name, func(t *testing.T) {
			s := stm.New()
			tree := NewRBTree()
			th := s.NewThread()
			for _, k := range keys {
				added, err := tree.Insert(th, k)
				if err != nil || !added {
					t.Fatalf("Insert(%d) = (%v,%v)", k, added, err)
				}
			}
			n, err := tree.CheckInvariants(th)
			if err != nil {
				t.Fatal(err)
			}
			if n != 512 {
				t.Fatalf("count = %d, want 512", n)
			}
			got, err := tree.Keys(th)
			if err != nil {
				t.Fatal(err)
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatal("in-order walk not sorted")
			}
			if len(got) != 512 {
				t.Fatalf("Keys len = %d", len(got))
			}
		})
	}
}

func TestRBTreeDeleteAll(t *testing.T) {
	s := stm.New()
	tree := NewRBTree()
	th := s.NewThread()
	const n = 300
	for i := uint32(0); i < n; i++ {
		tree.Insert(th, i)
	}
	// Delete in an awkward order: evens ascending then odds descending.
	for i := uint32(0); i < n; i += 2 {
		removed, err := tree.Delete(th, i)
		if err != nil || !removed {
			t.Fatalf("Delete(%d) = (%v,%v)", i, removed, err)
		}
	}
	for i := int32(n - 1); i >= 0; i -= 2 {
		removed, err := tree.Delete(th, uint32(i))
		if err != nil || !removed {
			t.Fatalf("Delete(%d) = (%v,%v)", i, removed, err)
		}
	}
	cnt, err := tree.CheckInvariants(th)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 0 {
		t.Fatalf("count after delete-all = %d", cnt)
	}
	if removed, _ := tree.Delete(th, 0); removed {
		t.Error("Delete on empty tree reported removal")
	}
}

func seq(start, end, step int) []uint32 {
	var out []uint32
	for i := start; i != end; i += step {
		out = append(out, uint32(i))
	}
	return out
}

func TestHashTableBucketGranularity(t *testing.T) {
	// Keys mapping to different buckets must not conflict; the stats
	// should show zero contention for a disjoint-bucket workload.
	s := stm.New()
	table := NewHashTable(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < 500; i++ {
				// Each goroutine owns bucket id: keys ≡ id (mod 64).
				key := id + uint32(i)*64
				if _, err := table.Insert(th, key); err != nil {
					t.Error(err)
					return
				}
				if _, err := table.Delete(th, key); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint32(g))
	}
	wg.Wait()
	if got := s.Stats().Conflicts; got != 0 {
		t.Errorf("disjoint buckets produced %d conflicts", got)
	}
}

func TestHashTableLenAndDuplicates(t *testing.T) {
	s := stm.New()
	table := NewHashTable(16)
	th := s.NewThread()
	for _, k := range []uint32{1, 2, 3, 1, 2} {
		table.Insert(th, k)
	}
	n, err := table.Len(th)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Len = %d, want 3", n)
	}
	if added, _ := table.Insert(th, 1); added {
		t.Error("duplicate insert reported added")
	}
	if removed, _ := table.Delete(th, 99); removed {
		t.Error("absent delete reported removed")
	}
}

func TestHashTableHash(t *testing.T) {
	table := NewHashTable(0)
	if table.Buckets() != DefaultBuckets {
		t.Fatalf("Buckets = %d, want %d", table.Buckets(), DefaultBuckets)
	}
	// The paper's hash: key mod buckets.
	if got := table.Hash(30031*2 + 7); got != 7 {
		t.Errorf("Hash = %d, want 7", got)
	}
}

func TestSortedListOrderMaintained(t *testing.T) {
	s := stm.New()
	l := NewSortedList()
	th := s.NewThread()
	keys := []uint32{50, 10, 90, 30, 70, 20, 80, 0, 100, 60}
	for _, k := range keys {
		added, err := l.Insert(th, k)
		if err != nil || !added {
			t.Fatalf("Insert(%d) = (%v, %v)", k, added, err)
		}
	}
	got, err := l.Keys(th)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint32{}, keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("Keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	n, err := l.Len(th)
	if err != nil || n != len(keys) {
		t.Fatalf("Len = (%d,%v)", n, err)
	}
}

func TestSortedListEdges(t *testing.T) {
	s := stm.New()
	l := NewSortedList()
	th := s.NewThread()
	if removed, _ := l.Delete(th, 5); removed {
		t.Error("delete from empty list reported removal")
	}
	if found, _ := l.Contains(th, 5); found {
		t.Error("empty list contains 5")
	}
	l.Insert(th, 5)
	if added, _ := l.Insert(th, 5); added {
		t.Error("duplicate insert reported added")
	}
	if removed, _ := l.Delete(th, 5); !removed {
		t.Error("delete of present key failed")
	}
	if n, _ := l.Len(th); n != 0 {
		t.Errorf("Len after removal = %d", n)
	}
}

func concurrentChurn(t *testing.T, s *stm.STM, set IntSet, goroutines, opsPer int, keyRange uint32) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := s.NewThread()
			r := rng.New(seed)
			for i := 0; i < opsPer; i++ {
				key := uint32(r.Uint64n(uint64(keyRange)))
				var err error
				if r.Uint64()&1 == 0 {
					_, err = set.Insert(th, key)
				} else {
					_, err = set.Delete(th, key)
				}
				if err != nil {
					t.Errorf("churn: %v", err)
					return
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
}

func TestHashTableConcurrent(t *testing.T) {
	s := stm.New()
	table := NewHashTable(31) // few buckets -> real contention
	concurrentChurn(t, s, table, 8, 2000, 200)
	// No duplicate keys in any bucket.
	th := s.NewThread()
	for key := uint32(0); key < 200; key++ {
		found1, err := table.Contains(th, key)
		if err != nil {
			t.Fatal(err)
		}
		_ = found1
	}
	st := s.Stats()
	if st.Commits == 0 {
		t.Fatal("no commits recorded")
	}
}

func TestSortedListConcurrent(t *testing.T) {
	s := stm.New()
	l := NewSortedList()
	concurrentChurn(t, s, l, 6, 400, 60)
	th := s.NewThread()
	keys, err := l.Keys(th)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("list unsorted or duplicated after churn: %v", keys)
		}
	}
}

func TestRBTreeConcurrent(t *testing.T) {
	s := stm.New()
	tree := NewRBTree()
	concurrentChurn(t, s, tree, 6, 600, 250)
	th := s.NewThread()
	if _, err := tree.CheckInvariants(th); err != nil {
		t.Fatalf("invariants after concurrent churn: %v", err)
	}
	keys, err := tree.Keys(th)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("tree keys unsorted/duplicated: %v", keys)
		}
	}
}

func TestStackLIFO(t *testing.T) {
	s := stm.New()
	st := NewStack()
	th := s.NewThread()
	if _, ok, _ := st.Pop(th); ok {
		t.Fatal("Pop on empty succeeded")
	}
	if _, ok, _ := st.Peek(th); ok {
		t.Fatal("Peek on empty succeeded")
	}
	for i := uint32(0); i < 100; i++ {
		if err := st.Push(th, i); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := st.Len(th); n != 100 {
		t.Fatalf("Len = %d", n)
	}
	if v, ok, _ := st.Peek(th); !ok || v != 99 {
		t.Fatalf("Peek = (%d,%v)", v, ok)
	}
	for i := int32(99); i >= 0; i-- {
		v, ok, err := st.Pop(th)
		if err != nil || !ok || v != uint32(i) {
			t.Fatalf("Pop = (%d,%v,%v), want %d", v, ok, err, i)
		}
	}
	if st.Key() != 0 {
		t.Error("stack key not constant 0")
	}
}

func TestStackConcurrentConservation(t *testing.T) {
	s := stm.New()
	st := NewStack()
	const goroutines, per = 6, 300
	var wg sync.WaitGroup
	var popped [goroutines][]uint32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < per; i++ {
				v := uint32(id*per + i)
				if err := st.Push(th, v); err != nil {
					t.Error(err)
					return
				}
				if v, ok, err := st.Pop(th); err != nil {
					t.Error(err)
					return
				} else if ok {
					popped[id] = append(popped[id], v)
				}
			}
		}(g)
	}
	wg.Wait()
	th := s.NewThread()
	var rest []uint32
	for {
		v, ok, err := st.Pop(th)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rest = append(rest, v)
	}
	total := len(rest)
	seen := map[uint32]bool{}
	for _, v := range rest {
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	for g := range popped {
		total += len(popped[g])
		for _, v := range popped[g] {
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
		}
	}
	if total != goroutines*per {
		t.Fatalf("conservation violated: %d values, want %d", total, goroutines*per)
	}
}

func TestNewByKind(t *testing.T) {
	for _, k := range Kinds() {
		set, err := New(k)
		if err != nil {
			t.Fatalf("New(%q): %v", k, err)
		}
		if set.Name() != string(k) {
			t.Errorf("New(%q).Name() = %q", k, set.Name())
		}
	}
	if _, err := New(Kind("btree")); err == nil {
		t.Error("New(btree) succeeded")
	}
}

// TestCrossStructureAgreement drives all three structures with the same
// operation stream; they must agree with each other at every step.
func TestCrossStructureAgreement(t *testing.T) {
	s := stm.New()
	sets := []IntSet{NewHashTable(61), NewRBTree(), NewSortedList()}
	th := s.NewThread()
	r := rng.New(11)
	for i := 0; i < 1500; i++ {
		key := uint32(r.Uint64n(100))
		op := r.Uint64n(2)
		var first bool
		for j, set := range sets {
			var got bool
			var err error
			if op == 0 {
				got, err = set.Insert(th, key)
			} else {
				got, err = set.Delete(th, key)
			}
			if err != nil {
				t.Fatal(err)
			}
			if j == 0 {
				first = got
			} else if got != first {
				t.Fatalf("op %d: %s disagrees with %s", i, set.Name(), sets[0].Name())
			}
		}
	}
}
