package txds

import (
	"sync"
	"testing"

	"kstm/internal/splitphase"
	"kstm/internal/stm"
)

func TestCountersBasicOps(t *testing.T) {
	s := stm.New()
	th := s.NewThread()
	c := NewCounters(4)

	if err := c.Add(th, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(th, 0, -3); err != nil {
		t.Fatal(err)
	}
	if err := c.MergeMax(th, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.MergeMax(th, 1, 3); err != nil { // below max: read-only path
		t.Fatal(err)
	}
	if err := c.MergeMin(th, 1, 5); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint32{4, 9, 1} {
		if err := c.TopKInsert(th, 2, v); err != nil {
			t.Fatal(err)
		}
	}

	v0, err := c.Value(th, 0)
	if err != nil || v0.Sum != 7 {
		t.Errorf("counter 0 = %+v err=%v, want Sum=7", v0, err)
	}
	v1, err := c.Value(th, 1)
	if err != nil || !v1.HasMax || v1.Max != 7 || !v1.HasMin || v1.Min != 5 {
		t.Errorf("counter 1 = %+v err=%v, want Max=7 Min=5", v1, err)
	}
	v2, err := c.Value(th, 2)
	if err != nil || len(v2.Top) != 3 || v2.Top[0] != 9 || v2.Top[1] != 4 || v2.Top[2] != 1 {
		t.Errorf("counter 2 = %+v err=%v, want Top=[9 4 1]", v2, err)
	}
	if v3, err := c.Value(th, 3); err != nil || v3.Sum != 0 || v3.HasMax || v3.HasMin || len(v3.Top) != 0 {
		t.Errorf("untouched counter 3 = %+v err=%v, want zero", v3, err)
	}

	if err := c.Add(th, 99, 1); err == nil {
		t.Error("out-of-range Add succeeded, want error")
	}
}

func TestCountersMergeAggMatchesDirectOps(t *testing.T) {
	s := stm.New()
	th := s.NewThread()
	direct, merged := NewCounters(1), NewCounters(1)

	// Direct path: individual transactional ops.
	for _, d := range []int32{5, -2, 9} {
		if err := direct.Add(th, 0, d); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []uint32{3, 11, 6} {
		if err := direct.MergeMax(th, 0, v); err != nil {
			t.Fatal(err)
		}
		if err := direct.MergeMin(th, 0, v); err != nil {
			t.Fatal(err)
		}
		if err := direct.TopKInsert(th, 0, v); err != nil {
			t.Fatal(err)
		}
	}

	// Split path: accumulator fold, then one MergeAgg install.
	acc := splitphase.NewAccum(2)
	negTwo := int32(-2)
	acc.Apply(0, splitphase.KindAdd, 5)
	acc.Apply(1, splitphase.KindAdd, uint32(negTwo))
	acc.Apply(0, splitphase.KindAdd, 9)
	for _, v := range []uint32{3, 11, 6} {
		acc.Apply(int(v)%2, splitphase.KindMax, v)
		acc.Apply(int(v)%2, splitphase.KindMin, v)
		acc.Apply(int(v)%2, splitphase.KindTopK, v)
	}
	agg, ok := acc.Take()
	if !ok {
		t.Fatal("accumulator empty")
	}
	if err := merged.MergeAgg(th, 0, agg); err != nil {
		t.Fatal(err)
	}

	dv, err := direct.Value(th, 0)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := merged.Value(th, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dv.Sum != mv.Sum || dv.Max != mv.Max || dv.HasMax != mv.HasMax ||
		dv.Min != mv.Min || dv.HasMin != mv.HasMin || len(dv.Top) != len(mv.Top) {
		t.Fatalf("direct %+v != merged %+v", dv, mv)
	}
	for i := range dv.Top {
		if dv.Top[i] != mv.Top[i] {
			t.Fatalf("Top diverged: direct %v merged %v", dv.Top, mv.Top)
		}
	}
}

// Concurrent direct Adds from many threads must conserve the sum (the
// baseline the contention experiment's split-off arm relies on). -race.
func TestCountersConcurrentAdds(t *testing.T) {
	s := stm.New()
	c := NewCounters(1)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < perG; i++ {
				if err := c.Add(th, 0, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, err := c.Value(s.NewThread(), 0)
	if err != nil || v.Sum != goroutines*perG {
		t.Fatalf("Sum = %d err=%v, want %d", v.Sum, err, goroutines*perG)
	}
}
