package txds

import (
	"fmt"

	"kstm/internal/splitphase"
	"kstm/internal/stm"
)

// Counters is a transactional array of aggregate cells — the store behind
// the split-phase contention workload. Each cell keeps a signed sum, a
// running max/min and a bounded top-K multiset, i.e. exactly the commutative
// aggregate shapes split-phase accumulators fold (splitphase.Agg), so an
// epoch merge installs with one MergeAgg transaction per split key.
//
// The scheduling key of every operation is the counter index itself: all
// traffic on one counter serializes on one worker under key routing, which
// is the hot-key serialization class split-phase execution exists to break.
type Counters struct {
	cells []*stm.Object // each holds *CounterValue
}

// CounterValue is one cell's aggregate state.
type CounterValue struct {
	// Sum is the signed running total of Add deltas.
	Sum int64
	// Max/HasMax track the largest MergeMax argument seen.
	Max    uint32
	HasMax bool
	// Min/HasMin track the smallest MergeMin argument seen.
	Min    uint32
	HasMin bool
	// Top holds the largest TopKInsert arguments, descending, at most
	// splitphase.TopKSize entries.
	Top []uint32
}

func cloneCounterValue(v any) any {
	c := *v.(*CounterValue)
	if len(c.Top) > 0 {
		c.Top = append([]uint32(nil), c.Top...)
	}
	return &c
}

// NewCounters returns n zeroed counter cells.
func NewCounters(n int) *Counters {
	if n < 1 {
		n = 1
	}
	cells := make([]*stm.Object, n)
	for i := range cells {
		cells[i] = stm.NewObject(&CounterValue{}, cloneCounterValue)
	}
	return &Counters{cells: cells}
}

// Len returns the number of counters.
func (c *Counters) Len() int { return len(c.cells) }

func (c *Counters) cell(key uint32) (*stm.Object, error) {
	if int(key) >= len(c.cells) {
		return nil, fmt.Errorf("txds: counter key %d out of range [0,%d)", key, len(c.cells))
	}
	return c.cells[key], nil
}

// Add adds a signed delta to the counter's sum.
func (c *Counters) Add(th *stm.Thread, key uint32, delta int32) error {
	obj, err := c.cell(key)
	if err != nil {
		return err
	}
	return th.Atomic(func(tx *stm.Tx) error {
		w, err := tx.Write(obj)
		if err != nil {
			return err
		}
		w.(*CounterValue).Sum += int64(delta)
		return nil
	})
}

// MergeMax folds v into the counter's running maximum.
func (c *Counters) MergeMax(th *stm.Thread, key uint32, v uint32) error {
	obj, err := c.cell(key)
	if err != nil {
		return err
	}
	return th.Atomic(func(tx *stm.Tx) error {
		r, err := tx.Read(obj)
		if err != nil {
			return err
		}
		if cv := r.(*CounterValue); cv.HasMax && v <= cv.Max {
			return nil // read-only fast path: no change
		}
		w, err := tx.Write(obj)
		if err != nil {
			return err
		}
		cv := w.(*CounterValue)
		cv.Max, cv.HasMax = v, true
		return nil
	})
}

// MergeMin folds v into the counter's running minimum.
func (c *Counters) MergeMin(th *stm.Thread, key uint32, v uint32) error {
	obj, err := c.cell(key)
	if err != nil {
		return err
	}
	return th.Atomic(func(tx *stm.Tx) error {
		r, err := tx.Read(obj)
		if err != nil {
			return err
		}
		if cv := r.(*CounterValue); cv.HasMin && v >= cv.Min {
			return nil
		}
		w, err := tx.Write(obj)
		if err != nil {
			return err
		}
		cv := w.(*CounterValue)
		cv.Min, cv.HasMin = v, true
		return nil
	})
}

// TopKInsert folds v into the counter's bounded top-K multiset.
func (c *Counters) TopKInsert(th *stm.Thread, key uint32, v uint32) error {
	obj, err := c.cell(key)
	if err != nil {
		return err
	}
	return th.Atomic(func(tx *stm.Tx) error {
		r, err := tx.Read(obj)
		if err != nil {
			return err
		}
		if top := r.(*CounterValue).Top; len(top) == splitphase.TopKSize && v < top[len(top)-1] {
			return nil // below the kept floor: no change
		}
		w, err := tx.Write(obj)
		if err != nil {
			return err
		}
		cv := w.(*CounterValue)
		cv.Top = splitphase.MergeTop(cv.Top, v)
		return nil
	})
}

// Value reads the counter's full aggregate state in one transaction.
func (c *Counters) Value(th *stm.Thread, key uint32) (CounterValue, error) {
	obj, err := c.cell(key)
	if err != nil {
		return CounterValue{}, err
	}
	var out CounterValue
	err = th.Atomic(func(tx *stm.Tx) error {
		r, err := tx.Read(obj)
		if err != nil {
			return err
		}
		out = *r.(*CounterValue)
		if len(out.Top) > 0 {
			out.Top = append([]uint32(nil), out.Top...)
		}
		return nil
	})
	if err != nil {
		return CounterValue{}, err
	}
	return out, nil
}

// MergeAgg installs a folded split-phase aggregate into the counter in a
// single transaction — the epoch-merge coordinator's store hand-off. The
// install is all-or-nothing: on abort-exhaustion the caller restores the
// aggregate into its accumulator and retries next epoch.
func (c *Counters) MergeAgg(th *stm.Thread, key uint32, agg splitphase.Agg) error {
	if agg.Empty() {
		return nil
	}
	obj, err := c.cell(key)
	if err != nil {
		return err
	}
	return th.Atomic(func(tx *stm.Tx) error {
		w, err := tx.Write(obj)
		if err != nil {
			return err
		}
		cv := w.(*CounterValue)
		cv.Sum += agg.Add
		if agg.HasMax && (!cv.HasMax || agg.Max > cv.Max) {
			cv.Max, cv.HasMax = agg.Max, true
		}
		if agg.HasMin && (!cv.HasMin || agg.Min < cv.Min) {
			cv.Min, cv.HasMin = agg.Min, true
		}
		for _, v := range agg.Top {
			cv.Top = splitphase.MergeTop(cv.Top, v)
		}
		return nil
	})
}
