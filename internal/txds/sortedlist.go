package txds

import (
	"kstm/internal/stm"
)

// SortedList is a transactional sorted singly-linked list — the paper's
// third benchmark and the original DSTM IntSet example. Every node is its
// own transactional object, so conflicts happen between operations whose
// keys are adjacent in the list; numerical key proximity predicts conflicts
// only weakly (an insert's neighbours change as the list evolves), which is
// exactly why the paper reports the smallest executor benefit here.
//
// Traversal uses DSTM's early release: nodes behind the current window are
// dropped from the read set, keeping read sets O(1) and letting disjoint
// regions of the list be updated in parallel.
type SortedList struct {
	head *stm.Object // sentinel node with key -1
}

// listNode is a node version. next is a stable object identity; clone
// copies the struct shallowly (key and next pointer).
type listNode struct {
	key  int64 // -1 for the head sentinel
	next *stm.Object
}

func cloneListNode(v any) any {
	c := *v.(*listNode)
	return &c
}

// NewSortedList returns an empty list.
func NewSortedList() *SortedList {
	return &SortedList{head: stm.NewObject(&listNode{key: -1}, cloneListNode)}
}

// Name implements IntSet.
func (l *SortedList) Name() string { return string(KindSortedList) }

// window is a traversal position: prev is the last node with key < target,
// curr is its successor (nil at end of list).
type window struct {
	prevObj *stm.Object
	prev    *listNode
	currObj *stm.Object
	curr    *listNode
}

// find walks the list to the first node with key >= target, releasing
// passed nodes. On return the transaction's read set contains only the
// window nodes.
func (l *SortedList) find(tx *stm.Tx, target int64) (window, error) {
	var w window
	w.prevObj = l.head
	v, err := tx.Read(w.prevObj)
	if err != nil {
		return w, err
	}
	w.prev = v.(*listNode)
	for {
		w.currObj = w.prev.next
		if w.currObj == nil {
			w.curr = nil
			return w, nil
		}
		cv, err := tx.Read(w.currObj)
		if err != nil {
			return w, err
		}
		w.curr = cv.(*listNode)
		if w.curr.key >= target {
			return w, nil
		}
		// Slide the window; the old prev is no longer needed for
		// correctness of the eventual update, so release it.
		tx.Release(w.prevObj)
		w.prevObj, w.prev = w.currObj, w.curr
	}
}

// Insert implements IntSet.
func (l *SortedList) Insert(th *stm.Thread, key uint32) (bool, error) {
	target := int64(key)
	var added bool
	err := th.Atomic(func(tx *stm.Tx) error {
		added = false
		w, err := l.find(tx, target)
		if err != nil {
			return err
		}
		if w.curr != nil && w.curr.key == target {
			return nil // already present
		}
		pw, err := tx.Write(w.prevObj)
		if err != nil {
			return err
		}
		node := stm.NewObject(&listNode{key: target, next: w.currObj}, cloneListNode)
		pw.(*listNode).next = node
		added = true
		return nil
	})
	return added, err
}

// Delete implements IntSet.
func (l *SortedList) Delete(th *stm.Thread, key uint32) (bool, error) {
	target := int64(key)
	var removed bool
	err := th.Atomic(func(tx *stm.Tx) error {
		removed = false
		w, err := l.find(tx, target)
		if err != nil {
			return err
		}
		if w.curr == nil || w.curr.key != target {
			return nil // absent
		}
		// Acquire the victim as well as the predecessor: writing the
		// victim invalidates any transaction that read it and might
		// otherwise update a detached node.
		cw, err := tx.Write(w.currObj)
		if err != nil {
			return err
		}
		pw, err := tx.Write(w.prevObj)
		if err != nil {
			return err
		}
		pw.(*listNode).next = cw.(*listNode).next
		removed = true
		return nil
	})
	return removed, err
}

// Contains implements IntSet.
func (l *SortedList) Contains(th *stm.Thread, key uint32) (bool, error) {
	target := int64(key)
	var found bool
	err := th.Atomic(func(tx *stm.Tx) error {
		w, err := l.find(tx, target)
		if err != nil {
			return err
		}
		found = w.curr != nil && w.curr.key == target
		return nil
	})
	return found, err
}

// ExtractRange implements RangeStore: the list's scheduling key is the
// dictionary key. The whole range is spliced out in one transaction — find
// the predecessor of lo with early release, then unlink through hi, write-
// acquiring each removed node so readers standing on it fail validation.
func (l *SortedList) ExtractRange(th *stm.Thread, lo, hi uint32) ([]uint32, error) {
	var out []uint32
	err := th.Atomic(func(tx *stm.Tx) error {
		out = out[:0]
		w, err := l.find(tx, int64(lo))
		if err != nil {
			return err
		}
		currObj, curr := w.currObj, w.curr
		for currObj != nil && curr.key <= int64(hi) {
			cw, err := tx.Write(currObj)
			if err != nil {
				return err
			}
			victim := cw.(*listNode)
			out = append(out, uint32(victim.key))
			currObj = victim.next
			if currObj != nil {
				cv, err := tx.Read(currObj)
				if err != nil {
					return err
				}
				curr = cv.(*listNode)
			}
		}
		if len(out) == 0 {
			return nil
		}
		pw, err := tx.Write(w.prevObj)
		if err != nil {
			return err
		}
		pw.(*listNode).next = currObj
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InstallKeys implements RangeStore.
func (l *SortedList) InstallKeys(th *stm.Thread, keys []uint32) error {
	for _, k := range keys {
		if _, err := l.Insert(th, k); err != nil {
			return err
		}
	}
	return nil
}

// Len counts the list's nodes in one traversal (with early release).
func (l *SortedList) Len(th *stm.Thread) (int, error) {
	var n int
	err := th.Atomic(func(tx *stm.Tx) error {
		n = 0
		obj := l.head
		v, err := tx.Read(obj)
		if err != nil {
			return err
		}
		node := v.(*listNode)
		for node.next != nil {
			nextObj := node.next
			nv, err := tx.Read(nextObj)
			if err != nil {
				return err
			}
			tx.Release(obj)
			obj, node = nextObj, nv.(*listNode)
			n++
		}
		return nil
	})
	return n, err
}

// Keys returns the list contents in order (tests and the checker use it).
func (l *SortedList) Keys(th *stm.Thread) ([]uint32, error) {
	var out []uint32
	err := th.Atomic(func(tx *stm.Tx) error {
		out = out[:0]
		obj := l.head
		v, err := tx.Read(obj)
		if err != nil {
			return err
		}
		node := v.(*listNode)
		for node.next != nil {
			nextObj := node.next
			nv, err := tx.Read(nextObj)
			if err != nil {
				return err
			}
			tx.Release(obj)
			obj, node = nextObj, nv.(*listNode)
			out = append(out, uint32(node.key))
		}
		return nil
	})
	return out, err
}
