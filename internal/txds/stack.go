package txds

import (
	"kstm/internal/stm"
)

// Stack is the §3.1 example: a transactional stack whose every operation
// begins at the top-of-stack element, so the scheduling key is a constant —
// the executor can tell that all stack transactions race for the same data
// and serialize them on one worker.
//
// The representation is an immutable cons list reached through a single
// transactional object, so conflicts occur exactly as the paper describes:
// every push races with every pop.
type Stack struct {
	top *stm.Object // holds *stackTop
}

// stackTop is the mutable version; cells below it are immutable.
type stackTop struct {
	head *cell
	size int
}

type cell struct {
	value uint32
	next  *cell
}

func cloneStackTop(v any) any {
	c := *v.(*stackTop)
	return &c
}

// NewStack returns an empty stack.
func NewStack() *Stack {
	return &Stack{top: stm.NewObject(&stackTop{}, cloneStackTop)}
}

// Key is the constant transaction key for every stack operation (§3.1: "the
// hint we provide to the scheduler is constant for every transactional
// access to the same stack").
func (s *Stack) Key() uint32 { return 0 }

// Push adds a value.
func (s *Stack) Push(th *stm.Thread, v uint32) error {
	return th.Atomic(func(tx *stm.Tx) error {
		w, err := tx.Write(s.top)
		if err != nil {
			return err
		}
		t := w.(*stackTop)
		t.head = &cell{value: v, next: t.head}
		t.size++
		return nil
	})
}

// Pop removes and returns the top value; ok is false if the stack was
// empty.
func (s *Stack) Pop(th *stm.Thread) (v uint32, ok bool, err error) {
	err = th.Atomic(func(tx *stm.Tx) error {
		ok = false
		r, err := tx.Read(s.top)
		if err != nil {
			return err
		}
		if r.(*stackTop).head == nil {
			return nil // empty: read-only transaction
		}
		w, err := tx.Write(s.top)
		if err != nil {
			return err
		}
		t := w.(*stackTop)
		v = t.head.value
		t.head = t.head.next
		t.size--
		ok = true
		return nil
	})
	return v, ok, err
}

// Peek returns the top value without removing it.
func (s *Stack) Peek(th *stm.Thread) (v uint32, ok bool, err error) {
	err = th.Atomic(func(tx *stm.Tx) error {
		r, err := tx.Read(s.top)
		if err != nil {
			return err
		}
		t := r.(*stackTop)
		if t.head == nil {
			ok = false
			return nil
		}
		v, ok = t.head.value, true
		return nil
	})
	return v, ok, err
}

// Len returns the stack depth.
func (s *Stack) Len(th *stm.Thread) (int, error) {
	var n int
	err := th.Atomic(func(tx *stm.Tx) error {
		r, err := tx.Read(s.top)
		if err != nil {
			return err
		}
		n = r.(*stackTop).size
		return nil
	})
	return n, err
}
