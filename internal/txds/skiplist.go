package txds

import (
	"fmt"
	"math/bits"

	"kstm/internal/stm"
)

// SkipList is a transactional skip list — an extension beyond the paper's
// three benchmark structures. It behaves like the sorted list (keys ordered,
// conflicts between nearby keys) but with O(log n) traversal, so it isolates
// the effect of traversal length on executor benefit: key proximity still
// predicts conflicts, but read sets stay small without early release.
//
// Tower heights are derived deterministically from the key (hash trailing
// zeros), making the structure history-independent: the same key set always
// produces the same shape, which simplifies testing and eliminates one
// source of run-to-run variance in benchmarks.
type SkipList struct {
	head *stm.Object // skipNode with key -1 and a full-height tower
}

// skipMaxLevel bounds towers; 2^16 keys need at most 16 levels at p=1/2.
const skipMaxLevel = 16

// skipNode is a node version. The tower slice is deep-copied on clone so a
// transaction's private version never aliases a committed one.
type skipNode struct {
	key  int64
	next []*stm.Object // len = height; nil entries mean end-of-level
}

func cloneSkipNode(v any) any {
	n := v.(*skipNode)
	c := &skipNode{key: n.key, next: make([]*stm.Object, len(n.next))}
	copy(c.next, n.next)
	return c
}

// NewSkipList returns an empty skip list.
func NewSkipList() *SkipList {
	head := &skipNode{key: -1, next: make([]*stm.Object, skipMaxLevel)}
	return &SkipList{head: stm.NewObject(head, cloneSkipNode)}
}

// KindSkipList identifies the extension structure.
const KindSkipList Kind = "skiplist"

// Name implements IntSet.
func (l *SkipList) Name() string { return string(KindSkipList) }

// keyHeight derives a deterministic tower height in [1, skipMaxLevel] with
// a geometric(1/2) distribution over keys, by hashing and counting trailing
// zeros.
func keyHeight(key uint32) int {
	// SplitMix64-style finalizer for avalanche.
	z := uint64(key) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	h := bits.TrailingZeros64(z) + 1
	if h > skipMaxLevel {
		h = skipMaxLevel
	}
	return h
}

func readSkip(tx *stm.Tx, obj *stm.Object) (*skipNode, error) {
	v, err := tx.Read(obj)
	if err != nil {
		return nil, err
	}
	return v.(*skipNode), nil
}

// findPreds walks the list and returns, for every level, the last node with
// key < target. curr is the candidate match at level 0 (nil at end).
func (l *SkipList) findPreds(tx *stm.Tx, target int64) (preds [skipMaxLevel]*stm.Object, curr *stm.Object, err error) {
	obj := l.head
	node, err := readSkip(tx, obj)
	if err != nil {
		return preds, nil, err
	}
	for level := skipMaxLevel - 1; level >= 0; level-- {
		for {
			nextObj := node.next[level]
			if nextObj == nil {
				break
			}
			nextNode, err := readSkip(tx, nextObj)
			if err != nil {
				return preds, nil, err
			}
			if nextNode.key >= target {
				break
			}
			obj, node = nextObj, nextNode
		}
		preds[level] = obj
	}
	return preds, node.next[0], nil
}

// Insert implements IntSet.
func (l *SkipList) Insert(th *stm.Thread, key uint32) (bool, error) {
	target := int64(key)
	var added bool
	err := th.Atomic(func(tx *stm.Tx) error {
		added = false
		preds, currObj, err := l.findPreds(tx, target)
		if err != nil {
			return err
		}
		if currObj != nil {
			curr, err := readSkip(tx, currObj)
			if err != nil {
				return err
			}
			if curr.key == target {
				return nil // present
			}
		}
		h := keyHeight(key)
		node := &skipNode{key: target, next: make([]*stm.Object, h)}
		// Fill the new tower from the written predecessors, then
		// splice. Writing each pred first gives us its current next
		// pointers under validation.
		written := make([]*skipNode, h)
		for level := 0; level < h; level++ {
			w, err := tx.Write(preds[level])
			if err != nil {
				return err
			}
			written[level] = w.(*skipNode)
			node.next[level] = written[level].next[level]
		}
		nodeObj := stm.NewObject(node, cloneSkipNode)
		for level := 0; level < h; level++ {
			written[level].next[level] = nodeObj
		}
		added = true
		return nil
	})
	return added, err
}

// Delete implements IntSet.
func (l *SkipList) Delete(th *stm.Thread, key uint32) (bool, error) {
	target := int64(key)
	var removed bool
	err := th.Atomic(func(tx *stm.Tx) error {
		removed = false
		preds, currObj, err := l.findPreds(tx, target)
		if err != nil {
			return err
		}
		if currObj == nil {
			return nil
		}
		curr, err := readSkip(tx, currObj)
		if err != nil {
			return err
		}
		if curr.key != target {
			return nil
		}
		// Acquire the victim (invalidates concurrent readers standing
		// on it) and each predecessor whose level points at it.
		vw, err := tx.Write(currObj)
		if err != nil {
			return err
		}
		victim := vw.(*skipNode)
		for level := 0; level < len(victim.next); level++ {
			w, err := tx.Write(preds[level])
			if err != nil {
				return err
			}
			p := w.(*skipNode)
			if p.next[level] == currObj {
				p.next[level] = victim.next[level]
			}
		}
		removed = true
		return nil
	})
	return removed, err
}

// Contains implements IntSet.
func (l *SkipList) Contains(th *stm.Thread, key uint32) (bool, error) {
	target := int64(key)
	var found bool
	err := th.Atomic(func(tx *stm.Tx) error {
		found = false
		_, currObj, err := l.findPreds(tx, target)
		if err != nil {
			return err
		}
		if currObj == nil {
			return nil
		}
		curr, err := readSkip(tx, currObj)
		if err != nil {
			return err
		}
		found = curr.key == target
		return nil
	})
	return found, err
}

// ExtractRange implements RangeStore: the skip list's scheduling key is the
// dictionary key. Keys in [lo, hi] are collected in one bottom-level walk
// transaction and then removed with the ordinary per-key Delete (which
// repairs every affected tower level and retries internally).
func (l *SkipList) ExtractRange(th *stm.Thread, lo, hi uint32) ([]uint32, error) {
	var keys []uint32
	err := th.Atomic(func(tx *stm.Tx) error {
		keys = keys[:0]
		_, currObj, err := l.findPreds(tx, int64(lo))
		if err != nil {
			return err
		}
		for currObj != nil {
			curr, err := readSkip(tx, currObj)
			if err != nil {
				return err
			}
			if curr.key > int64(hi) {
				break
			}
			keys = append(keys, uint32(curr.key))
			currObj = curr.next[0]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		if _, err := l.Delete(th, k); err != nil {
			// Partial extraction: keys[:i] are already unlinked — return
			// them with the error so the caller can restore them.
			return keys[:i], err
		}
	}
	return keys, nil
}

// InstallKeys implements RangeStore.
func (l *SkipList) InstallKeys(th *stm.Thread, keys []uint32) error {
	for _, k := range keys {
		if _, err := l.Insert(th, k); err != nil {
			return err
		}
	}
	return nil
}

// Keys returns the contents in order via the bottom level.
func (l *SkipList) Keys(th *stm.Thread) ([]uint32, error) {
	var out []uint32
	err := th.Atomic(func(tx *stm.Tx) error {
		out = out[:0]
		node, err := readSkip(tx, l.head)
		if err != nil {
			return err
		}
		for node.next[0] != nil {
			nxt, err := readSkip(tx, node.next[0])
			if err != nil {
				return err
			}
			out = append(out, uint32(nxt.key))
			node = nxt
		}
		return nil
	})
	return out, err
}

// Len counts the elements.
func (l *SkipList) Len(th *stm.Thread) (int, error) {
	keys, err := l.Keys(th)
	return len(keys), err
}

// CheckInvariants verifies, in one transaction, that every level is sorted,
// that towers are properly nested (a node present at level L is reachable at
// every level below L), and that level-0 contains exactly the key set.
// It returns the element count.
func (l *SkipList) CheckInvariants(th *stm.Thread) (int, error) {
	var count int
	err := th.Atomic(func(tx *stm.Tx) error {
		count = 0
		// Collect level-0 keys.
		level0 := map[int64]bool{}
		node, err := readSkip(tx, l.head)
		if err != nil {
			return err
		}
		prev := int64(-1)
		for node.next[0] != nil {
			nxt, err := readSkip(tx, node.next[0])
			if err != nil {
				return err
			}
			if nxt.key <= prev {
				return errOutOfOrder(0, prev, nxt.key)
			}
			prev = nxt.key
			level0[nxt.key] = true
			count++
			node = nxt
		}
		// Every higher level must be a sorted subsequence of level 0.
		for level := 1; level < skipMaxLevel; level++ {
			node, err = readSkip(tx, l.head)
			if err != nil {
				return err
			}
			prev = -1
			for len(node.next) > level && node.next[level] != nil {
				nxt, err := readSkip(tx, node.next[level])
				if err != nil {
					return err
				}
				if nxt.key <= prev {
					return errOutOfOrder(level, prev, nxt.key)
				}
				if !level0[nxt.key] {
					return errNotNested(level, nxt.key)
				}
				prev = nxt.key
				node = nxt
			}
		}
		return nil
	})
	return count, err
}

func errOutOfOrder(level int, a, b int64) error {
	return fmt.Errorf("skiplist: level %d out of order: %d before %d", level, a, b)
}

func errNotNested(level int, key int64) error {
	return fmt.Errorf("skiplist: key %d at level %d missing from level 0", key, level)
}
