package txds

import (
	"testing"
	"testing/quick"

	"kstm/internal/rng"
	"kstm/internal/stm"
)

func TestSkipListOracle(t *testing.T) {
	s := stm.New()
	oracleCheck(t, s, NewSkipList(), 5000, 300, 21)
}

func TestSkipListInvariantsUnderChurn(t *testing.T) {
	s := stm.New()
	l := NewSkipList()
	th := s.NewThread()
	r := rng.New(9)
	present := map[uint32]bool{}
	for i := 0; i < 3000; i++ {
		key := uint32(r.Uint64n(400))
		if r.Uint64()&1 == 0 {
			added, err := l.Insert(th, key)
			if err != nil {
				t.Fatal(err)
			}
			if added == present[key] {
				t.Fatalf("Insert(%d) added=%v, present=%v", key, added, present[key])
			}
			present[key] = true
		} else {
			removed, err := l.Delete(th, key)
			if err != nil {
				t.Fatal(err)
			}
			if removed != present[key] {
				t.Fatalf("Delete(%d) removed=%v, present=%v", key, removed, present[key])
			}
			delete(present, key)
		}
		if i%500 == 0 {
			if _, err := l.CheckInvariants(th); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	n, err := l.CheckInvariants(th)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(present) {
		t.Fatalf("count = %d, oracle %d", n, len(present))
	}
}

func TestSkipListKeysSorted(t *testing.T) {
	s := stm.New()
	l := NewSkipList()
	th := s.NewThread()
	for _, k := range []uint32{500, 100, 900, 300, 700} {
		if added, err := l.Insert(th, k); err != nil || !added {
			t.Fatalf("Insert(%d) = (%v,%v)", k, added, err)
		}
	}
	keys, err := l.Keys(th)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{100, 300, 500, 700, 900}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	if n, err := l.Len(th); err != nil || n != 5 {
		t.Fatalf("Len = (%d,%v)", n, err)
	}
}

func TestSkipListEdges(t *testing.T) {
	s := stm.New()
	l := NewSkipList()
	th := s.NewThread()
	if removed, _ := l.Delete(th, 1); removed {
		t.Error("delete from empty reported removal")
	}
	if found, _ := l.Contains(th, 1); found {
		t.Error("empty list contains 1")
	}
	l.Insert(th, 1)
	if added, _ := l.Insert(th, 1); added {
		t.Error("duplicate insert reported added")
	}
	if found, _ := l.Contains(th, 1); !found {
		t.Error("inserted key not found")
	}
	if removed, _ := l.Delete(th, 1); !removed {
		t.Error("delete of present key failed")
	}
	if n, _ := l.Len(th); n != 0 {
		t.Errorf("Len = %d", n)
	}
}

func TestSkipListConcurrent(t *testing.T) {
	s := stm.New()
	l := NewSkipList()
	concurrentChurn(t, s, l, 6, 500, 120)
	th := s.NewThread()
	if _, err := l.CheckInvariants(th); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
}

func TestKeyHeightDistribution(t *testing.T) {
	counts := make([]int, skipMaxLevel+1)
	for k := uint32(0); k < 1<<16; k++ {
		h := keyHeight(k)
		if h < 1 || h > skipMaxLevel {
			t.Fatalf("height(%d) = %d", k, h)
		}
		counts[h]++
	}
	// Geometric(1/2): height 1 should cover about half the keys.
	if frac := float64(counts[1]) / (1 << 16); frac < 0.45 || frac > 0.55 {
		t.Errorf("height-1 fraction = %v, want ~0.5", frac)
	}
	if counts[4] == 0 || counts[8] == 0 {
		t.Error("tall towers never occur")
	}
}

func TestKeyHeightDeterministic(t *testing.T) {
	f := func(k uint32) bool { return keyHeight(k) == keyHeight(k) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSkipListAgreesWithRBTree(t *testing.T) {
	s := stm.New()
	sl, tree := NewSkipList(), NewRBTree()
	th := s.NewThread()
	r := rng.New(31)
	for i := 0; i < 2000; i++ {
		key := uint32(r.Uint64n(200))
		if r.Uint64()&1 == 0 {
			a, err := sl.Insert(th, key)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tree.Insert(th, key)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("op %d: skiplist added=%v rbtree added=%v", i, a, b)
			}
		} else {
			a, err := sl.Delete(th, key)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tree.Delete(th, key)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("op %d: skiplist removed=%v rbtree removed=%v", i, a, b)
			}
		}
	}
	a, err := sl.Keys(th)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tree.Keys(th)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("contents differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
