// Package txds implements the paper's three benchmark data structures —
// chained hash table, red-black tree and sorted linked list (§4.2) — plus
// the constant-key stack of §3.1, all as concurrent dictionaries over the
// DSTM-style STM in internal/stm.
//
// Each structure implements IntSet, the abstract dictionary of the
// microbenchmarks: insertions and deletions of 16-bit search keys (lookups
// exist for completeness but the paper's workloads omit them, since lookups
// do not conflict).
package txds

import (
	"fmt"

	"kstm/internal/stm"
)

// IntSet is the abstract dictionary interface shared by all benchmark
// structures. Operations run as complete transactions on the caller's STM
// thread, retrying internally until they commit; they return the operation's
// logical result.
type IntSet interface {
	// Insert adds key; it reports whether the key was absent.
	Insert(th *stm.Thread, key uint32) (added bool, err error)
	// Delete removes key; it reports whether the key was present.
	Delete(th *stm.Thread, key uint32) (removed bool, err error)
	// Contains reports whether key is present.
	Contains(th *stm.Thread, key uint32) (found bool, err error)
	// Name identifies the structure in reports.
	Name() string
}

// RangeStore is the shard-migration face of a dictionary: extract every key
// in a scheduling-key range, install a batch of keys. The range is expressed
// in the structure's *scheduling-key* space — the space the executor's
// dispatch partition cuts: the dictionary key itself for the ordered
// structures (tree, lists), the bucket index (Hash output) for the hash
// table. All four benchmark structures implement it.
//
// ExtractRange runs one transaction per removed region (per bucket for the
// hash table, one collection pass plus per-key deletes for the ordered
// structures); callers that need the extracted range to stay coherent must
// quiesce operations on it first — the executor's migration fence does
// exactly that.
type RangeStore interface {
	// ExtractRange removes and returns every key whose scheduling key lies
	// in the closed range [lo, hi]. Order is unspecified.
	ExtractRange(th *stm.Thread, lo, hi uint32) ([]uint32, error)
	// InstallKeys inserts the given keys (duplicates are no-ops).
	InstallKeys(th *stm.Thread, keys []uint32) error
}

// KeyRange is one closed scheduling-key interval for batch extraction.
type KeyRange struct{ Lo, Hi uint32 }

// RangeBatchStore is the optional batch face of a RangeStore: extract
// several disjoint ranges in ONE pass over the structure, returning the
// removed keys per range (out[i] belongs to ranges[i]). Implementations
// whose single-range extraction already scans the whole structure (the hash
// table's dictionary-key view) cut a multi-range epoch's cost from one full
// scan per range to one per epoch.
type RangeBatchStore interface {
	RangeStore
	ExtractRanges(th *stm.Thread, ranges []KeyRange) ([][]uint32, error)
}

// Kind names a benchmark data structure.
type Kind string

// The paper's three benchmark structures.
const (
	KindHashTable  Kind = "hashtable"
	KindRBTree     Kind = "rbtree"
	KindSortedList Kind = "sortedlist"
)

// Kinds lists the benchmark structures in the paper's order.
func Kinds() []Kind { return []Kind{KindHashTable, KindRBTree, KindSortedList} }

// New constructs a benchmark structure by kind. KindSkipList is an
// extension beyond the paper's three.
func New(k Kind) (IntSet, error) {
	switch k {
	case KindHashTable:
		return NewHashTable(DefaultBuckets), nil
	case KindRBTree:
		return NewRBTree(), nil
	case KindSortedList:
		return NewSortedList(), nil
	case KindSkipList:
		return NewSkipList(), nil
	default:
		return nil, fmt.Errorf("txds: unknown data structure %q (want hashtable, rbtree, sortedlist or skiplist)", k)
	}
}
