package txds

import (
	"fmt"

	"kstm/internal/stm"
)

// RBTree is a transactional red-black tree, the paper's second benchmark.
// Every node is its own transactional object, so operations conflict when
// they touch overlapping search paths or rebalance the same region; keys
// that are numerically close share most of their path, which is why key
// proximity predicts conflicts well here (§4.4).
//
// Insertion and deletion are single-pass top-down algorithms (in the style
// of Cormen et al.'s exercises as popularized by the jsw/Eternally
// Confuzzled tutorial): rebalancing happens on the way down with a sliding
// window of at most four ancestors, so no parent stack is needed and the
// write set stays proportional to the number of recolourings and rotations
// actually performed.
type RBTree struct {
	root *stm.Object // holds *rbRoot
}

// rbRoot is the version type of the root holder.
type rbRoot struct {
	child *stm.Object
}

func cloneRBRoot(v any) any {
	c := *v.(*rbRoot)
	return &c
}

// rbNode is a node version: key, colour, and the two child object
// identities (0 = left, 1 = right; nil = leaf).
type rbNode struct {
	key  int64
	red  bool
	kids [2]*stm.Object
}

func cloneRBNode(v any) any {
	c := *v.(*rbNode)
	return &c
}

// NewRBTree returns an empty tree.
func NewRBTree() *RBTree {
	return &RBTree{root: stm.NewObject(&rbRoot{}, cloneRBRoot)}
}

// Name implements IntSet.
func (t *RBTree) Name() string { return string(KindRBTree) }

func newRBNodeObj(key int64, red bool) *stm.Object {
	return stm.NewObject(&rbNode{key: key, red: red}, cloneRBNode)
}

func readNode(tx *stm.Tx, obj *stm.Object) (*rbNode, error) {
	v, err := tx.Read(obj)
	if err != nil {
		return nil, err
	}
	return v.(*rbNode), nil
}

func writeNode(tx *stm.Tx, obj *stm.Object) (*rbNode, error) {
	v, err := tx.Write(obj)
	if err != nil {
		return nil, err
	}
	return v.(*rbNode), nil
}

// isRed reports whether obj is a red node; nil leaves are black.
func isRed(tx *stm.Tx, obj *stm.Object) (bool, error) {
	if obj == nil {
		return false, nil
	}
	n, err := readNode(tx, obj)
	if err != nil {
		return false, err
	}
	return n.red, nil
}

// rotateSingle rotates the subtree rooted at obj away from dir and returns
// the new subtree root. It recolours per the top-down protocol: the old
// root becomes red, the new root black.
func rotateSingle(tx *stm.Tx, obj *stm.Object, dir int) (*stm.Object, error) {
	n, err := writeNode(tx, obj)
	if err != nil {
		return nil, err
	}
	save := n.kids[1-dir]
	s, err := writeNode(tx, save)
	if err != nil {
		return nil, err
	}
	n.kids[1-dir] = s.kids[dir]
	s.kids[dir] = obj
	n.red = true
	s.red = false
	return save, nil
}

// rotateDouble performs the two-step rotation for the zig-zag cases.
func rotateDouble(tx *stm.Tx, obj *stm.Object, dir int) (*stm.Object, error) {
	n, err := writeNode(tx, obj)
	if err != nil {
		return nil, err
	}
	sub, err := rotateSingle(tx, n.kids[1-dir], 1-dir)
	if err != nil {
		return nil, err
	}
	n.kids[1-dir] = sub
	return rotateSingle(tx, obj, dir)
}

// Insert implements IntSet.
func (t *RBTree) Insert(th *stm.Thread, key uint32) (bool, error) {
	k := int64(key)
	var added bool
	err := th.Atomic(func(tx *stm.Tx) error {
		added = false
		rv, err := tx.Read(t.root)
		if err != nil {
			return err
		}
		origRoot := rv.(*rbRoot).child
		if origRoot == nil {
			w, err := tx.Write(t.root)
			if err != nil {
				return err
			}
			w.(*rbRoot).child = newRBNodeObj(k, false)
			added = true
			return nil
		}

		// Transient false head: private to this attempt, so writes to
		// it never conflict. Its right child is the tree root.
		head := stm.NewObject(&rbNode{key: -1, kids: [2]*stm.Object{nil, origRoot}}, cloneRBNode)
		var (
			gObj *stm.Object // grandparent
			tObj = head      // great-grandparent
			pObj *stm.Object // parent
			qObj = origRoot  // current
			dir  int
			last int
		)
		for {
			var qKey int64
			var qKids [2]*stm.Object
			if qObj == nil {
				// Insert a new red node under p.
				qObj = newRBNodeObj(k, true)
				pw, err := writeNode(tx, pObj)
				if err != nil {
					return err
				}
				pw.kids[dir] = qObj
				added = true
				qKey = k
			} else {
				qv, err := readNode(tx, qObj)
				if err != nil {
					return err
				}
				qKey, qKids = qv.key, qv.kids
				lRed, err := isRed(tx, qKids[0])
				if err != nil {
					return err
				}
				rRed, err := isRed(tx, qKids[1])
				if err != nil {
					return err
				}
				if lRed && rRed {
					// Colour flip on the way down.
					qw, err := writeNode(tx, qObj)
					if err != nil {
						return err
					}
					qw.red = true
					for _, kid := range qKids {
						kw, err := writeNode(tx, kid)
						if err != nil {
							return err
						}
						kw.red = false
					}
				}
			}

			// Fix a red-red violation between q and p. Violations
			// only arise at depth >= 2, so g and t are non-nil here.
			qRed, err := isRed(tx, qObj)
			if err != nil {
				return err
			}
			pRed, err := isRed(tx, pObj)
			if err != nil {
				return err
			}
			if pObj != nil && qRed && pRed {
				tv, err := readNode(tx, tObj)
				if err != nil {
					return err
				}
				dir2 := 0
				if tv.kids[1] == gObj {
					dir2 = 1
				}
				pv, err := readNode(tx, pObj)
				if err != nil {
					return err
				}
				var sub *stm.Object
				if qObj == pv.kids[last] {
					sub, err = rotateSingle(tx, gObj, 1-last)
				} else {
					sub, err = rotateDouble(tx, gObj, 1-last)
				}
				if err != nil {
					return err
				}
				tw, err := writeNode(tx, tObj)
				if err != nil {
					return err
				}
				tw.kids[dir2] = sub
			}

			if qKey == k {
				break
			}
			last = dir
			dir = 0
			if qKey < k {
				dir = 1
			}
			if gObj != nil {
				tObj = gObj
			}
			gObj, pObj = pObj, qObj
			qObj = qKids[dir]
		}

		// Re-root if rotations moved the root, and force it black.
		hv, err := readNode(tx, head)
		if err != nil {
			return err
		}
		newRoot := hv.kids[1]
		if newRoot != origRoot {
			w, err := tx.Write(t.root)
			if err != nil {
				return err
			}
			w.(*rbRoot).child = newRoot
		}
		rootRed, err := isRed(tx, newRoot)
		if err != nil {
			return err
		}
		if rootRed {
			rw, err := writeNode(tx, newRoot)
			if err != nil {
				return err
			}
			rw.red = false
		}
		return nil
	})
	return added, err
}

// Delete implements IntSet.
func (t *RBTree) Delete(th *stm.Thread, key uint32) (bool, error) {
	k := int64(key)
	var removed bool
	err := th.Atomic(func(tx *stm.Tx) error {
		removed = false
		rv, err := tx.Read(t.root)
		if err != nil {
			return err
		}
		origRoot := rv.(*rbRoot).child
		if origRoot == nil {
			return nil
		}

		head := stm.NewObject(&rbNode{key: -1, kids: [2]*stm.Object{nil, origRoot}}, cloneRBNode)
		var (
			qObj = head
			pObj *stm.Object // parent
			gObj *stm.Object // grandparent
			fObj *stm.Object // node holding the target key, if found
			dir  = 1
			last int
		)
		for {
			qv, err := readNode(tx, qObj)
			if err != nil {
				return err
			}
			if qv.kids[dir] == nil {
				break
			}
			last = dir
			gObj, pObj = pObj, qObj
			qObj = qv.kids[dir]
			qv, err = readNode(tx, qObj)
			if err != nil {
				return err
			}
			dir = 0
			if qv.key < k {
				dir = 1
			}
			if qv.key == k {
				fObj = qObj
			}

			// Push a red down to q so the final removal deletes a
			// red node (or recolours trivially).
			qDirRed, err := isRed(tx, qv.kids[dir])
			if err != nil {
				return err
			}
			if qv.red || qDirRed {
				continue
			}
			oppRed, err := isRed(tx, qv.kids[1-dir])
			if err != nil {
				return err
			}
			if oppRed {
				sub, err := rotateSingle(tx, qObj, dir)
				if err != nil {
					return err
				}
				pw, err := writeNode(tx, pObj)
				if err != nil {
					return err
				}
				pw.kids[last] = sub
				pObj = sub
				continue
			}
			pv, err := readNode(tx, pObj)
			if err != nil {
				return err
			}
			sObj := pv.kids[1-last]
			if sObj == nil {
				continue
			}
			sv, err := readNode(tx, sObj)
			if err != nil {
				return err
			}
			sLastRed, err := isRed(tx, sv.kids[last])
			if err != nil {
				return err
			}
			sOppRed, err := isRed(tx, sv.kids[1-last])
			if err != nil {
				return err
			}
			if !sLastRed && !sOppRed {
				// Colour flip.
				pw, err := writeNode(tx, pObj)
				if err != nil {
					return err
				}
				pw.red = false
				sw, err := writeNode(tx, sObj)
				if err != nil {
					return err
				}
				sw.red = true
				qw, err := writeNode(tx, qObj)
				if err != nil {
					return err
				}
				qw.red = true
				continue
			}
			gv, err := readNode(tx, gObj)
			if err != nil {
				return err
			}
			dir2 := 0
			if gv.kids[1] == pObj {
				dir2 = 1
			}
			var sub *stm.Object
			if sLastRed {
				sub, err = rotateDouble(tx, pObj, last)
			} else {
				sub, err = rotateSingle(tx, pObj, last)
			}
			if err != nil {
				return err
			}
			gw, err := writeNode(tx, gObj)
			if err != nil {
				return err
			}
			gw.kids[dir2] = sub
			// Ensure correct colouring: q and the new subtree root
			// are red, the new root's children black.
			qw, err := writeNode(tx, qObj)
			if err != nil {
				return err
			}
			qw.red = true
			subw, err := writeNode(tx, sub)
			if err != nil {
				return err
			}
			subw.red = true
			for _, kid := range subw.kids {
				if kid == nil {
					continue
				}
				kw, err := writeNode(tx, kid)
				if err != nil {
					return err
				}
				kw.red = false
			}
		}

		// Replace the found node's key with q's and splice q out.
		if fObj != nil {
			qv, err := readNode(tx, qObj)
			if err != nil {
				return err
			}
			fw, err := writeNode(tx, fObj)
			if err != nil {
				return err
			}
			fw.key = qv.key
			pv, err := readNode(tx, pObj)
			if err != nil {
				return err
			}
			pdir := 0
			if pv.kids[1] == qObj {
				pdir = 1
			}
			qdir := 0
			if qv.kids[0] == nil {
				qdir = 1
			}
			pw, err := writeNode(tx, pObj)
			if err != nil {
				return err
			}
			pw.kids[pdir] = qv.kids[qdir]
			// Write-acquire the removed node so transactions that
			// read it (and might update a detached node) fail
			// validation, as in the sorted list.
			qw, err := writeNode(tx, qObj)
			if err != nil {
				return err
			}
			qw.kids = [2]*stm.Object{}
			removed = true
		}

		hv, err := readNode(tx, head)
		if err != nil {
			return err
		}
		newRoot := hv.kids[1]
		if newRoot != origRoot {
			w, err := tx.Write(t.root)
			if err != nil {
				return err
			}
			w.(*rbRoot).child = newRoot
		}
		if newRoot != nil {
			rootRed, err := isRed(tx, newRoot)
			if err != nil {
				return err
			}
			if rootRed {
				rw, err := writeNode(tx, newRoot)
				if err != nil {
					return err
				}
				rw.red = false
			}
		}
		return nil
	})
	return removed, err
}

// Contains implements IntSet.
func (t *RBTree) Contains(th *stm.Thread, key uint32) (bool, error) {
	k := int64(key)
	var found bool
	err := th.Atomic(func(tx *stm.Tx) error {
		found = false
		rv, err := tx.Read(t.root)
		if err != nil {
			return err
		}
		obj := rv.(*rbRoot).child
		for obj != nil {
			n, err := readNode(tx, obj)
			if err != nil {
				return err
			}
			if n.key == k {
				found = true
				return nil
			}
			if n.key < k {
				obj = n.kids[1]
			} else {
				obj = n.kids[0]
			}
		}
		return nil
	})
	return found, err
}

// Keys returns the tree's keys in sorted order (by in-order walk inside one
// transaction). Intended for tests and the checker.
func (t *RBTree) Keys(th *stm.Thread) ([]uint32, error) {
	var out []uint32
	err := th.Atomic(func(tx *stm.Tx) error {
		out = out[:0]
		rv, err := tx.Read(t.root)
		if err != nil {
			return err
		}
		return t.walk(tx, rv.(*rbRoot).child, &out)
	})
	return out, err
}

func (t *RBTree) walk(tx *stm.Tx, obj *stm.Object, out *[]uint32) error {
	if obj == nil {
		return nil
	}
	n, err := readNode(tx, obj)
	if err != nil {
		return err
	}
	if err := t.walk(tx, n.kids[0], out); err != nil {
		return err
	}
	*out = append(*out, uint32(n.key))
	return t.walk(tx, n.kids[1], out)
}

// ExtractRange implements RangeStore: the tree's scheduling key is the
// dictionary key, so [lo, hi] selects keys directly. The keys are collected
// in one range-pruned walk transaction, then removed with the ordinary
// per-key Delete — each operation retries internally, so concurrent traffic
// on keys outside the (caller-quiesced) range cannot wedge the extraction.
func (t *RBTree) ExtractRange(th *stm.Thread, lo, hi uint32) ([]uint32, error) {
	var keys []uint32
	err := th.Atomic(func(tx *stm.Tx) error {
		keys = keys[:0]
		rv, err := tx.Read(t.root)
		if err != nil {
			return err
		}
		return t.walkRange(tx, rv.(*rbRoot).child, int64(lo), int64(hi), &keys)
	})
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		if _, err := t.Delete(th, k); err != nil {
			// Partial extraction: keys[:i] are already out of the tree —
			// return them with the error so the caller can restore or
			// forward them instead of losing them.
			return keys[:i], err
		}
	}
	return keys, nil
}

// walkRange appends the subtree's keys within [lo, hi], pruning branches
// wholly outside the range.
func (t *RBTree) walkRange(tx *stm.Tx, obj *stm.Object, lo, hi int64, out *[]uint32) error {
	if obj == nil {
		return nil
	}
	n, err := readNode(tx, obj)
	if err != nil {
		return err
	}
	if n.key > lo {
		if err := t.walkRange(tx, n.kids[0], lo, hi, out); err != nil {
			return err
		}
	}
	if n.key >= lo && n.key <= hi {
		*out = append(*out, uint32(n.key))
	}
	if n.key < hi {
		return t.walkRange(tx, n.kids[1], lo, hi, out)
	}
	return nil
}

// InstallKeys implements RangeStore.
func (t *RBTree) InstallKeys(th *stm.Thread, keys []uint32) error {
	for _, k := range keys {
		if _, err := t.Insert(th, k); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants verifies the red-black invariants in one transaction:
// binary-search order, no red node with a red child, equal black height on
// every root-leaf path, and a black root. It returns the node count.
func (t *RBTree) CheckInvariants(th *stm.Thread) (int, error) {
	var count int
	err := th.Atomic(func(tx *stm.Tx) error {
		count = 0
		rv, err := tx.Read(t.root)
		if err != nil {
			return err
		}
		root := rv.(*rbRoot).child
		if root == nil {
			return nil
		}
		red, err := isRed(tx, root)
		if err != nil {
			return err
		}
		if red {
			return fmt.Errorf("rbtree: red root")
		}
		_, n, err := t.check(tx, root, -1, 1<<32)
		count = n
		return err
	})
	return count, err
}

// check returns (black height, node count) of the subtree and validates
// order bounds (lo, hi) exclusive.
func (t *RBTree) check(tx *stm.Tx, obj *stm.Object, lo, hi int64) (int, int, error) {
	if obj == nil {
		return 1, 0, nil
	}
	n, err := readNode(tx, obj)
	if err != nil {
		return 0, 0, err
	}
	if n.key <= lo || n.key >= hi {
		return 0, 0, fmt.Errorf("rbtree: key %d violates BST bounds (%d,%d)", n.key, lo, hi)
	}
	if n.red {
		for _, kid := range n.kids {
			kr, err := isRed(tx, kid)
			if err != nil {
				return 0, 0, err
			}
			if kr {
				return 0, 0, fmt.Errorf("rbtree: red-red violation at key %d", n.key)
			}
		}
	}
	lh, lc, err := t.check(tx, n.kids[0], lo, n.key)
	if err != nil {
		return 0, 0, err
	}
	rh, rc, err := t.check(tx, n.kids[1], n.key, hi)
	if err != nil {
		return 0, 0, err
	}
	if lh != rh {
		return 0, 0, fmt.Errorf("rbtree: black height mismatch at key %d (%d vs %d)", n.key, lh, rh)
	}
	h := lh
	if !n.red {
		h++
	}
	return h, lc + rc + 1, nil
}
