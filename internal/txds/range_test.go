package txds

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"kstm/internal/stm"
)

// rangeKinds lists every structure implementing RangeStore, with the mapping
// from a dictionary key to its scheduling key (identity except for the hash
// table, whose scheduling key is the bucket index).
func rangeKinds(t *testing.T) map[Kind]func(IntSet) func(uint32) uint32 {
	t.Helper()
	ident := func(IntSet) func(uint32) uint32 {
		return func(k uint32) uint32 { return k }
	}
	return map[Kind]func(IntSet) func(uint32) uint32{
		KindHashTable: func(s IntSet) func(uint32) uint32 {
			ht := s.(*HashTable)
			return ht.Hash
		},
		KindRBTree:     ident,
		KindSortedList: ident,
		KindSkipList:   ident,
	}
}

// TestExtractInstallRoundTrip seeds each structure, extracts a scheduling-key
// range into a second (empty) instance, and checks the partition: extracted
// keys land in the target, the rest stay in the source, nothing is lost or
// duplicated.
func TestExtractInstallRoundTrip(t *testing.T) {
	for kind, keyFnOf := range rangeKinds(t) {
		kind, keyFnOf := kind, keyFnOf
		t.Run(string(kind), func(t *testing.T) {
			s := stm.New()
			th := s.NewThread()
			src, err := New(kind)
			if err != nil {
				t.Fatal(err)
			}
			dst, err := New(kind)
			if err != nil {
				t.Fatal(err)
			}
			keyFn := keyFnOf(src)
			// A spread of keys (sparse, so list-based structures stay fast).
			var all []uint32
			for k := uint32(0); k < 2000; k += 7 {
				all = append(all, k)
				if added, err := src.Insert(th, k); err != nil || !added {
					t.Fatalf("seed insert %d: added=%v err=%v", k, added, err)
				}
			}
			const lo, hi = 300, 900
			inRange := func(k uint32) bool { sk := keyFn(k); return sk >= lo && sk <= hi }

			rs := src.(RangeStore)
			moved, err := rs.ExtractRange(th, lo, hi)
			if err != nil {
				t.Fatalf("ExtractRange: %v", err)
			}
			if err := dst.(RangeStore).InstallKeys(th, moved); err != nil {
				t.Fatalf("InstallKeys: %v", err)
			}

			var wantMoved []uint32
			for _, k := range all {
				if inRange(k) {
					wantMoved = append(wantMoved, k)
				}
			}
			gotMoved := append([]uint32(nil), moved...)
			sort.Slice(gotMoved, func(i, j int) bool { return gotMoved[i] < gotMoved[j] })
			if len(gotMoved) != len(wantMoved) {
				t.Fatalf("extracted %d keys, want %d", len(gotMoved), len(wantMoved))
			}
			for i := range wantMoved {
				if gotMoved[i] != wantMoved[i] {
					t.Fatalf("extracted[%d] = %d, want %d", i, gotMoved[i], wantMoved[i])
				}
			}
			// Every key is in exactly the structure its scheduling key says.
			for _, k := range all {
				inSrc, err := src.Contains(th, k)
				if err != nil {
					t.Fatal(err)
				}
				inDst, err := dst.Contains(th, k)
				if err != nil {
					t.Fatal(err)
				}
				if inRange(k) && (inSrc || !inDst) {
					t.Fatalf("key %d (moved): src=%v dst=%v", k, inSrc, inDst)
				}
				if !inRange(k) && (!inSrc || inDst) {
					t.Fatalf("key %d (kept): src=%v dst=%v", k, inSrc, inDst)
				}
			}
			// Empty re-extraction: the range is gone from the source.
			again, err := rs.ExtractRange(th, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if len(again) != 0 {
				t.Fatalf("second extract returned %d keys", len(again))
			}
		})
	}
}

// TestExtractRangeEmptyAndEdges exercises empty structures, empty ranges and
// the top of the key space (clamping, no uint32 wraparound).
func TestExtractRangeEmptyAndEdges(t *testing.T) {
	for kind := range rangeKinds(t) {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			s := stm.New()
			th := s.NewThread()
			set, err := New(kind)
			if err != nil {
				t.Fatal(err)
			}
			rs := set.(RangeStore)
			if keys, err := rs.ExtractRange(th, 0, ^uint32(0)); err != nil || len(keys) != 0 {
				t.Fatalf("empty extract = (%v, %v)", keys, err)
			}
			if _, err := set.Insert(th, 5); err != nil {
				t.Fatal(err)
			}
			// A range that misses the only key.
			if keys, err := rs.ExtractRange(th, 100, 200); err != nil || len(keys) != 0 {
				t.Fatalf("miss extract = (%v, %v)", keys, err)
			}
			if found, err := set.Contains(th, 5); err != nil || !found {
				t.Fatalf("key 5 lost by miss extract: found=%v err=%v", found, err)
			}
			if err := rs.InstallKeys(th, nil); err != nil {
				t.Fatalf("empty install: %v", err)
			}
			// Install with a duplicate is a no-op for the existing key.
			if err := rs.InstallKeys(th, []uint32{5, 6}); err != nil {
				t.Fatal(err)
			}
			for _, k := range []uint32{5, 6} {
				if found, err := set.Contains(th, k); err != nil || !found {
					t.Fatalf("key %d after install: found=%v err=%v", k, found, err)
				}
			}
		})
	}
}

// TestHashTableExtractKeyRange pins the dictionary-key-range view of the
// hash table: aliased keys (k and k+buckets share a bucket) must NOT travel
// together — only the keys inside the requested dictionary range move.
func TestHashTableExtractKeyRange(t *testing.T) {
	s := stm.New()
	th := s.NewThread()
	ht := NewHashTable(0)
	alias := uint32(ht.Buckets()) + 5 // same bucket as key 5
	for _, k := range []uint32{5, alias, 42, 60000} {
		if _, err := ht.Insert(th, k); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := ht.ExtractKeyRange(th, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) != 2 || keys[0] != 5 || keys[1] != 42 {
		t.Fatalf("ExtractKeyRange(0,100) = %v, want [5 42]", keys)
	}
	// The aliased key stayed put even though its bucket was touched.
	for k, want := range map[uint32]bool{5: false, 42: false, alias: true, 60000: true} {
		found, err := ht.Contains(th, k)
		if err != nil {
			t.Fatal(err)
		}
		if found != want {
			t.Errorf("key %d: found=%v want=%v", k, found, want)
		}
	}
	// Re-install round-trips.
	if err := ht.InstallKeys(th, keys); err != nil {
		t.Fatal(err)
	}
	if found, err := ht.Contains(th, 5); err != nil || !found {
		t.Fatalf("key 5 after reinstall: %v %v", found, err)
	}
}

// TestExtractRangeUnderConcurrency extracts a quiesced range while other
// goroutines hammer keys outside it — the migration fence's exact contract.
// Run with -race.
func TestExtractRangeUnderConcurrency(t *testing.T) {
	for kind := range rangeKinds(t) {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			s := stm.New()
			th := s.NewThread()
			set, err := New(kind)
			if err != nil {
				t.Fatal(err)
			}
			// Quiesced range [0, 99]; contenders work on [1000, 1100).
			for k := uint32(0); k < 100; k += 3 {
				if _, err := set.Insert(th, k); err != nil {
					t.Fatal(err)
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					gth := s.NewThread()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := uint32(1000 + (g*25+i)%100)
						if i%2 == 0 {
							if _, err := set.Insert(gth, k); err != nil {
								t.Error(err)
								return
							}
						} else {
							if _, err := set.Delete(gth, k); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(g)
			}
			keys, err := set.(RangeStore).ExtractRange(th, 0, 99)
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatalf("ExtractRange under concurrency: %v", err)
			}
			if want := (100 + 2) / 3; len(keys) != want {
				t.Fatalf("extracted %d keys, want %d", len(keys), want)
			}
		})
	}
}

// TestHashTableExtractKeyRanges pins the one-pass multi-range extraction:
// every key lands in ITS range's output slot, aliased and out-of-range keys
// stay, and the result matches what per-range ExtractKeyRange calls would
// have produced — at one table scan instead of one per range.
func TestHashTableExtractKeyRanges(t *testing.T) {
	s := stm.New()
	th := s.NewThread()
	ht := NewHashTable(0)
	alias := uint32(ht.Buckets()) + 5 // same bucket as key 5
	for _, k := range []uint32{5, 42, 99, alias, 300, 301, 60000} {
		if _, err := ht.Insert(th, k); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ht.ExtractKeyRanges(th, []KeyRange{{Lo: 0, Hi: 100}, {Lo: 300, Hi: 400}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d output slots for 2 ranges", len(out))
	}
	sort.Slice(out[0], func(i, j int) bool { return out[0][i] < out[0][j] })
	sort.Slice(out[1], func(i, j int) bool { return out[1][i] < out[1][j] })
	if want := []uint32{5, 42, 99}; !reflect.DeepEqual(out[0], want) {
		t.Fatalf("range [0,100] extracted %v, want %v", out[0], want)
	}
	if want := []uint32{300, 301}; !reflect.DeepEqual(out[1], want) {
		t.Fatalf("range [300,400] extracted %v, want %v", out[1], want)
	}
	// Extracted keys are gone; the aliased and out-of-range keys survive.
	for k, want := range map[uint32]bool{5: false, 42: false, 99: false, 300: false, 301: false, alias: true, 60000: true} {
		found, err := ht.Contains(th, k)
		if err != nil {
			t.Fatal(err)
		}
		if found != want {
			t.Errorf("key %d present = %v, want %v", k, found, want)
		}
	}
	// An empty range list is a no-op, not a scan failure.
	if out, err := ht.ExtractKeyRanges(th, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty ranges: %v, %v", out, err)
	}
}
