package core

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kstm/internal/stm"
)

// hotpathExecutor builds the allocation-test configuration: fixed scheduler
// (adaptive sampling would allocate during partition rebuilds), noop
// workload, one worker so completion timing is deterministic.
func hotpathExecutor(t *testing.T, workers int) *Executor {
	t.Helper()
	ex, err := NewExecutor(
		WithWorkload(WorkloadFunc(func(th *stm.Thread, task Task) (any, error) { return nil, nil })),
		WithWorkers(workers),
		WithSchedulerKind(SchedFixed, 0, 65535),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ex.Stop() })
	return ex
}

// TestSubmitSteadyStateAllocs is the hot-path allocation regression gate:
// a pooled synchronous Submit — future from the pool, reusable wake-up
// channel, recycle on Wait — must allocate at most 1 object per op (the
// M&S queue node; pooling those would reintroduce the ABA problem the GC
// otherwise rules out). GC is disabled across the measurement so pool
// evictions cannot blur the count.
func TestSubmitSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	ex := hotpathExecutor(t, 1)
	ctx := context.Background()
	// Warm the pools (futures, worker batch buffers) before measuring.
	for i := 0; i < 256; i++ {
		if _, err := ex.Submit(ctx, Task{Key: uint64(i), Op: OpNoop}); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	avg := testing.AllocsPerRun(500, func() {
		if _, err := ex.Submit(ctx, Task{Key: 7, Op: OpNoop}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Fatalf("pooled Submit allocates %.2f objects/op, want <= 1 (the queue node)", avg)
	}
}

// TestSubmitFuncTimedAllocs holds the deadline-carrying submission to the
// same hot-path budget as SubmitFunc: the budget rides in the pooled future
// shell, so attaching one must not allocate beyond the queue node.
func TestSubmitFuncTimedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	ex := hotpathExecutor(t, 1)
	ctx := context.Background()
	var done atomic.Int64
	cb := func(TaskResult) { done.Add(1) }
	var want int64
	for i := 0; i < 256; i++ {
		if err := ex.SubmitFuncTimed(ctx, Task{Key: uint64(i), Op: OpNoop}, time.Minute, cb); err != nil {
			t.Fatal(err)
		}
		want++
	}
	waitFor(t, "warmup settled", func() bool { return done.Load() == want })
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	avg := testing.AllocsPerRun(500, func() {
		// Wait out each completion so shell recycling keeps pace with
		// submission — the steady state the gate is about; an unbounded
		// burst legitimately grows the future pool.
		before := done.Load()
		if err := ex.SubmitFuncTimed(ctx, Task{Key: 7, Op: OpNoop}, time.Minute, cb); err != nil {
			t.Fatal(err)
		}
		want++
		for done.Load() == before {
			runtime.Gosched()
		}
	})
	if avg > 1 {
		t.Fatalf("SubmitFuncTimed allocates %.2f objects/op, want <= 1 (the queue node)", avg)
	}
}

// TestSubmitAllAmortizedQueueOps asserts the batch contract directly: a
// SubmitAll batch performs ONE queue operation per destination worker (the
// contiguous PutAll splice), not one per task.
func TestSubmitAllAmortizedQueueOps(t *testing.T) {
	var q countingQueue
	ex, err := NewExecutor(
		WithWorkload(WorkloadFunc(func(th *stm.Thread, task Task) (any, error) { return nil, nil })),
		WithWorkers(1),
		WithScheduler(mustScheduler(t)),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the worker queue for a counting wrapper BEFORE Start.
	q.Queue = ex.queues[0]
	ex.queues[0] = &q
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ex.Stop()
	ctx := context.Background()
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{Key: uint64(i), Op: OpNoop}
	}
	futs, err := ex.SubmitAll(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	puts, putAlls := q.puts.Load(), q.putAlls.Load()
	if puts != 0 || putAlls != 1 {
		t.Fatalf("batch of 64 to one worker: %d Put + %d PutAll calls, want 0 + 1", puts, putAlls)
	}
}

func mustScheduler(t *testing.T) Scheduler {
	t.Helper()
	s, err := NewScheduler(SchedFixed, 0, 65535, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// countingQueue wraps a queue, counting enqueue operations.
type countingQueue struct {
	Queue interface {
		Put(envelope)
		PutAll([]envelope)
		Get() (envelope, bool)
		Len() int
	}
	puts, putAlls atomic.Int64
}

func (q *countingQueue) Put(v envelope)        { q.puts.Add(1); q.Queue.Put(v) }
func (q *countingQueue) PutAll(v []envelope)   { q.putAlls.Add(1); q.Queue.PutAll(v) }
func (q *countingQueue) Get() (envelope, bool) { return q.Queue.Get() }
func (q *countingQueue) Len() int              { return q.Queue.Len() }

// TestFutureRecycleHandshake hammers the settle-then-recycle handshake from
// many submitters at once; under -race this is the no-settle-after-recycle
// proof (a worker touching a recycled shell races the next owner's writes).
func TestFutureRecycleHandshake(t *testing.T) {
	ex := hotpathExecutor(t, 4)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				res, err := ex.Submit(ctx, Task{Key: uint64(g*1000 + i), Op: OpNoop, Arg: uint32(i)})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Task.Arg != uint32(i) {
					t.Errorf("result echoes task %d, want %d — a recycled shell leaked a stale result", res.Task.Arg, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFuturePollAndDoneVsWait drives the lazy-channel paths concurrently
// with settle and consume: Poll never consumes, Done observes completion
// whether its channel was installed before or after the settle, and the one
// Wait that returns the result is the single consumer.
func TestFuturePollAndDoneVsWait(t *testing.T) {
	ex := hotpathExecutor(t, 2)
	ctx := context.Background()
	for i := 0; i < 300; i++ {
		fut, err := ex.SubmitAsync(ctx, Task{Key: uint64(i), Op: OpNoop, Arg: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // Poll-only observer: must never consume.
			defer wg.Done()
			for {
				if _, ok := fut.Poll(); ok {
					return
				}
			}
		}()
		go func() { // Done observer: the lazily-created channel closes.
			defer wg.Done()
			<-fut.Done()
		}()
		wg.Wait() // both observers finish BEFORE the consuming Wait
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Task.Arg != uint32(i) {
			t.Fatalf("result %d echoes task %d", i, res.Task.Arg)
		}
	}
}

// TestFutureWaitCtxThenWait pins the orphaned-wait pattern the server's old
// bridge used: a Wait abandoned by its context does NOT consume the future,
// and a later Wait still observes the settled result.
func TestFutureWaitCtxThenWait(t *testing.T) {
	gate := newGateWorkload()
	ex, err := NewExecutor(WithWorkload(gate), WithWorkers(1), WithSchedulerKind(SchedFixed, 0, 65535))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ex.Stop()
	fut, err := ex.SubmitAsync(context.Background(), Task{Key: 1, Arg: 42})
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := fut.Wait(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gated Wait = %v, want DeadlineExceeded", err)
	}
	gate.release()
	res, err := fut.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Task.Arg != 42 {
		t.Fatalf("second Wait result %+v", res)
	}
}

// TestSubmitFuncCallback pins the callback variant: done runs exactly once
// per task with the task's own result, for executed and abandoned tasks
// alike.
func TestSubmitFuncCallback(t *testing.T) {
	ex := hotpathExecutor(t, 2)
	ctx := context.Background()
	const n = 200
	results := make(chan TaskResult, n)
	for i := 0; i < n; i++ {
		err := ex.SubmitFunc(ctx, Task{Key: uint64(i), Op: OpNoop, Arg: uint32(i)}, func(res TaskResult) {
			results <- res
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		res := <-results
		if res.Err != nil {
			t.Fatalf("task %d settled with %v", res.Task.Arg, res.Err)
		}
		if seen[res.Task.Arg] {
			t.Fatalf("task %d settled twice", res.Task.Arg)
		}
		seen[res.Task.Arg] = true
	}
	if err := ex.SubmitFunc(ctx, Task{}, nil); err == nil {
		t.Error("nil callback accepted")
	}
	// Abandoned-at-stop tasks settle their callbacks with ErrStopped. Pin
	// the worker mid-task, queue a second task behind it, flip the executor
	// to stopped, THEN let the worker finish: the queued task must be
	// abandoned, never executed.
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	gx, err := NewExecutor(
		WithWorkload(WorkloadFunc(func(th *stm.Thread, task Task) (any, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return nil, nil
		})),
		WithWorkers(1),
		WithSchedulerKind(SchedFixed, 0, 65535),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := gx.Start(ctx); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan TaskResult, 2)
	cb := func(res TaskResult) { blocked <- res }
	if err := gx.SubmitFunc(ctx, Task{Key: 1, Arg: 0}, cb); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is inside task 0
	if err := gx.SubmitFunc(ctx, Task{Key: 1, Arg: 1}, cb); err != nil {
		t.Fatal(err)
	}
	stopDone := make(chan struct{})
	go func() { gx.Stop(); close(stopDone) }()
	waitFor(t, "stopped state", func() bool { return gx.Stats().State == "stopped" })
	close(release)
	<-stopDone
	var executedErr, abandonedErr error
	for i := 0; i < 2; i++ {
		res := <-blocked
		if res.Task.Arg == 0 {
			executedErr = res.Err
		} else {
			abandonedErr = res.Err
		}
	}
	if executedErr != nil {
		t.Errorf("mid-flight task settled with %v, want nil", executedErr)
	}
	if !errors.Is(abandonedErr, ErrStopped) {
		t.Errorf("queued task settled with %v, want ErrStopped", abandonedErr)
	}
}
