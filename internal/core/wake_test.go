package core

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"kstm/internal/stm"
)

// Wake-protocol tests (DESIGN.md §5.4). The park/wake handshake replaced
// the poll+sleep backoff loop; these tests pin its three contracts — no
// lost wake (a submit racing a park always executes), no busy idle (a
// parked executor stops polling), and prompt lifecycle exits (Stop/Drain
// reach parked workers). Run them under -race: the handshake is exactly
// the kind of Dekker-style publication pattern the detector understands.

// waitParked blocks until n workers are parked (or the deadline trips).
func waitParked(t *testing.T, ex *Executor, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ex.parked.Load() < int32(n) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers parked after 5s", ex.parked.Load(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestWakeLatencyBudget pins the tentpole's win: submit-to-first-execute on
// a fully parked executor must come in well under the old 100µs sleep
// quantum the backoff loop cost (a task could previously eat the whole
// quantum before its first poll). Median over many round trips, so one
// scheduler hiccup cannot flake the gate; the budget is the FULL Submit +
// execute + Wait round trip, which strictly bounds the wake itself.
func TestWakeLatencyBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("latency budgets are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	ex := hotpathExecutor(t, 1)
	ctx := context.Background()
	const rounds = 200
	lat := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		waitParked(t, ex, 1)
		start := time.Now()
		if _, err := ex.Submit(ctx, Task{Key: 1, Op: OpNoop}); err != nil {
			t.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	median := lat[len(lat)/2]
	// The old poll+park loop put the EXPECTED idle pickup at ~50µs and the
	// worst case at the full 100µs quantum. The event-driven median must
	// beat the old quantum outright; in practice it lands around a few µs
	// (one futex wake), and the generous bound only absorbs CI-runner
	// scheduling noise.
	if median >= 100*time.Microsecond {
		t.Fatalf("parked-executor Submit median latency %v, want < 100µs (old park quantum)", median)
	}
	t.Logf("parked-executor Submit latency: median %v, p90 %v, max %v",
		median, lat[len(lat)*9/10], lat[len(lat)-1])
}

// TestIdleExecutorNoPolling is the idle-CPU gate: once every worker is
// parked, the scheduler-state sample (EmptyPolls) must stay flat — the old
// loop re-polled every backoffPark (100µs) per worker, ~500 polls per
// worker over this window.
func TestIdleExecutorNoPolling(t *testing.T) {
	ex := hotpathExecutor(t, 4)
	ctx := context.Background()
	// Touch every worker once so the test covers post-work parking, not
	// just the initial park.
	for i := 0; i < 64; i++ {
		if _, err := ex.Submit(ctx, Task{Key: uint64(i) & 65535, Op: OpNoop}); err != nil {
			t.Fatal(err)
		}
	}
	waitParked(t, ex, 4)
	before := ex.Stats().EmptyPolls
	time.Sleep(50 * time.Millisecond)
	delta := ex.Stats().EmptyPolls - before
	// A parked worker polls zero times; allow a straggler that was counted
	// mid-park when the snapshot landed.
	if delta > 4 {
		t.Fatalf("parked executor accumulated %d empty polls over 50ms, want ~0", delta)
	}
}

// TestNoLostWake hammers the enqueue-racing-park window: one worker, a few
// producers, and deliberate idle gaps so the worker parks between bursts.
// Every Submit is synchronous — a lost wake would hang it (until the test
// deadline) because nothing else would ever nudge the parked worker.
func TestNoLostWake(t *testing.T) {
	ex := hotpathExecutor(t, 1)
	ctx := context.Background()
	const producers = 4
	const perProducer = 300
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := ex.Submit(ctx, Task{Key: uint64(i) & 65535, Op: OpNoop}); err != nil {
					t.Error(err)
					return
				}
				if i%16 == p {
					// Idle gap: outlast parkSpins so the worker actually
					// parks and the next Submit exercises the wake path.
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(p)
	}
	wg.Wait()
}

// TestStopWhileParked: Stop must reach workers blocked on their wake
// tokens, not just ones mid-poll.
func TestStopWhileParked(t *testing.T) {
	ex := hotpathExecutor(t, 4)
	waitParked(t, ex, 4)
	done := make(chan error, 1)
	go func() { done <- ex.Stop() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on a parked executor")
	}
}

// TestDrainWhileParked: Drain on an idle (all-parked) executor must return
// promptly — the drain path blocks on the drainWake event, and parked
// draining workers exit on the broadcast.
func TestDrainWhileParked(t *testing.T) {
	ex := hotpathExecutor(t, 4)
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		if _, err := ex.Submit(ctx, Task{Key: uint64(i), Op: OpNoop}); err != nil {
			t.Fatal(err)
		}
	}
	waitParked(t, ex, 4)
	done := make(chan error, 1)
	go func() { done <- ex.Drain() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung on a parked executor")
	}
}

// TestDrainWithInflightWhileParked: Drain while tasks are still executing
// must complete them all; the LAST finisher's decInflight — not a poll —
// signals the drain.
func TestDrainWithInflightWhileParked(t *testing.T) {
	var executed sync.WaitGroup
	ex, err := NewExecutor(
		WithWorkload(WorkloadFunc(func(th *stm.Thread, task Task) (any, error) {
			time.Sleep(time.Millisecond)
			executed.Done()
			return nil, nil
		})),
		WithWorkers(2),
		WithSchedulerKind(SchedFixed, 0, 65535),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ex.Stop() })
	const n = 16
	executed.Add(n)
	for i := 0; i < n; i++ {
		if _, err := ex.SubmitAsync(context.Background(), Task{Key: uint64(i), Op: OpNoop}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	executed.Wait() // Drain returned ⇒ every task ran; Wait must not block
}

// TestStealWakeInterplay: with work stealing on, a burst landing on ONE
// worker's queue must recruit parked same-shard peers — wakeWorker's thief
// scan — instead of leaving them blocked while the owner crawls the backlog.
func TestStealWakeInterplay(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	ex, err := NewExecutor(
		WithWorkload(WorkloadFunc(func(th *stm.Thread, task Task) (any, error) {
			mu.Lock()
			seen[int(task.Arg)] = true
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
			return nil, nil
		})),
		WithWorkers(4),
		WithSchedulerKind(SchedFixed, 0, 65535),
		WithWorkSteal(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ex.Stop() })
	waitParked(t, ex, 4)
	ctx := context.Background()
	// One hot key ⇒ one owner queue; the rest of the pool is parked and
	// only reachable through the steal-aware wake.
	const n = 256
	futs := make([]*Future, 0, n)
	for i := 0; i < n; i++ {
		fut, err := ex.SubmitAsync(ctx, Task{Key: 1, Op: OpNoop, Arg: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("executed %d distinct tasks, want %d", len(seen), n)
	}
	if st := ex.Stats(); st.Steals == 0 {
		t.Log("no steals recorded (owner drained the burst alone) — wake path still covered")
	}
}

// TestBackpressureWakeUnderDepthBound: a tiny queue bound with many blocked
// submitters exercises waitSpace/signalSpace — every submitter must
// eventually be admitted (space tokens chain waiter-to-waiter), and no two
// waiters may livelock ping-ponging a token over a still-full queue.
func TestBackpressureWakeUnderDepthBound(t *testing.T) {
	ex, err := NewExecutor(
		WithWorkload(WorkloadFunc(func(th *stm.Thread, task Task) (any, error) {
			time.Sleep(50 * time.Microsecond)
			return nil, nil
		})),
		WithWorkers(1),
		WithSchedulerKind(SchedFixed, 0, 65535),
		WithQueueDepth(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ex.Stop() })
	ctx := context.Background()
	const producers = 8
	const perProducer = 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := ex.Submit(ctx, Task{Key: 1, Op: OpNoop}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("backpressure waiters hung under the depth bound")
	}
}
