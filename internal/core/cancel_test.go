package core

import (
	"context"
	"errors"
	"testing"

	"kstm/internal/stm"
	"kstm/internal/txds"
)

// TestCancelledBeforeExecutionNotCompleted is the deterministic accounting
// test for the cancellation bugfix: tasks whose submission context is
// cancelled while they sit queued must settle with the context error, count
// under Cancelled, and leave Completed (and the Throughput/LoadImbalance
// figures built on it) untouched.
func TestCancelledBeforeExecutionNotCompleted(t *testing.T) {
	gate := newGateWorkload()
	ex, err := NewExecutor(WithWorkload(gate), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The blocker occupies the single worker at the gate; everything after
	// it queues behind it deterministically (same key, one worker).
	blocker, err := ex.SubmitAsync(context.Background(), Task{Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	const queued = 8
	ctx, cancel := context.WithCancel(context.Background())
	futs := make([]*Future, 0, queued)
	for i := 0; i < queued; i++ {
		f, err := ex.SubmitAsync(ctx, Task{Key: 1})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	cancel()
	gate.release()
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	for i, f := range futs {
		res, err := f.Wait(context.Background())
		if !errors.Is(err, context.Canceled) || !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("future %d settled with %v / %v, want context.Canceled", i, err, res.Err)
		}
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.Completed != 1 {
		t.Errorf("Completed = %d, want 1 (cancelled tasks must not count)", st.Completed)
	}
	if st.Cancelled != queued {
		t.Errorf("Cancelled = %d, want %d", st.Cancelled, queued)
	}
	if st.Submitted != queued+1 {
		t.Errorf("Submitted = %d, want %d", st.Submitted, queued+1)
	}
	if n := gate.executed.Load(); n != 1 {
		t.Errorf("workload executed %d tasks, want 1", n)
	}
	if got := st.Throughput() * st.Elapsed.Seconds(); got > 1.5 {
		t.Errorf("throughput implies %.1f tasks, want 1 (inflated by cancellations?)", got)
	}
}

// TestStopAbandonedCountedCancelled checks the executed/abandoned accounting
// identity around Stop: every accepted task lands in exactly one of
// Completed (it ran) or Cancelled (it settled with ErrStopped).
func TestStopAbandonedCountedCancelled(t *testing.T) {
	gate := newGateWorkload()
	ex, err := NewExecutor(WithWorkload(gate), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 20
	futs, err := ex.SubmitAll(context.Background(), make([]Task, n))
	if err != nil {
		t.Fatal(err)
	}
	gate.release()
	if err := ex.Stop(); err != nil {
		t.Fatal(err)
	}
	executed, stopped := uint64(0), uint64(0)
	for i, f := range futs {
		res, ok := f.Poll()
		if !ok {
			t.Fatalf("future %d unresolved after Stop", i)
		}
		switch {
		case res.Err == nil:
			executed++
		case errors.Is(res.Err, ErrStopped):
			stopped++
		default:
			t.Fatalf("future %d: unexpected error %v", i, res.Err)
		}
	}
	st := ex.Stats()
	if st.Completed != executed {
		t.Errorf("Completed = %d, want %d (the tasks that ran)", st.Completed, executed)
	}
	if st.Cancelled != stopped {
		t.Errorf("Cancelled = %d, want %d (the tasks Stop abandoned)", st.Cancelled, stopped)
	}
	if st.Completed+st.Cancelled != n {
		t.Errorf("Completed %d + Cancelled %d != %d accepted", st.Completed, st.Cancelled, n)
	}
}

// TestOrphanedTaskMutationLands pins the documented orphaned-task contract:
// when Future.Wait returns the WAITER's context error, the task itself is
// still accepted — it executes, its mutation lands in transactional state,
// and it counts as Completed. Only cancelling the SUBMISSION context before
// execution prevents the run.
func TestOrphanedTaskMutationLands(t *testing.T) {
	s := stm.New()
	table := txds.NewHashTable(31)
	gate := newGateWorkload()
	wl := WorkloadFunc(func(th *stm.Thread, task Task) (any, error) {
		<-gate.gate
		gate.executed.Add(1)
		return table.Insert(th, task.Arg)
	})
	ex, err := NewExecutor(WithSTM(s), WithWorkload(wl), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Submit with a background context (the task is never cancelled), then
	// abandon the wait with an already-expired context.
	fut, err := ex.SubmitAsync(context.Background(), Task{Key: 7, Op: OpInsert, Arg: 7})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fut.Wait(waitCtx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled context returned %v, want context.Canceled", err)
	}
	// The caller walked away; the task still runs and its insert lands.
	gate.release()
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	res, ok := fut.Poll()
	if !ok || res.Err != nil {
		t.Fatalf("orphaned task did not settle cleanly: ok=%v err=%v", ok, res.Err)
	}
	th := s.NewThread()
	found, err := table.Contains(th, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("orphaned task's insert did not land in the table")
	}
	st := ex.Stats()
	if st.Completed != 1 || st.Cancelled != 0 {
		t.Errorf("Completed/Cancelled = %d/%d, want 1/0", st.Completed, st.Cancelled)
	}
}

// TestCancelledExcludedFromLoadImbalance: cancellations routed to one worker
// must not skew the per-worker balance figure, which is defined over
// executed work.
func TestCancelledExcludedFromLoadImbalance(t *testing.T) {
	gate := newGateWorkload()
	ex, err := NewExecutor(WithWorkload(gate), WithWorkers(2),
		WithSchedulerKind(SchedFixed, 0, 99))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One gated task per worker (keys 0 and 99 land in different fixed
	// ranges), then a pile of doomed tasks all routed to worker 0.
	b0, err := ex.SubmitAsync(context.Background(), Task{Key: 0})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := ex.SubmitAsync(context.Background(), Task{Key: 99})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 10; i++ {
		if _, err := ex.SubmitAsync(ctx, Task{Key: 0}); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	gate.release()
	for _, f := range []*Future{b0, b1} {
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.Completed != 2 || st.Cancelled != 10 {
		t.Fatalf("Completed/Cancelled = %d/%d, want 2/10", st.Completed, st.Cancelled)
	}
	if imb := st.LoadImbalance(); imb != 1.0 {
		t.Errorf("LoadImbalance = %v, want 1.0 (one executed task per worker)", imb)
	}
}
