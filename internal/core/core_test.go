package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"kstm/internal/dist"
	"kstm/internal/queue"
	"kstm/internal/rng"
	"kstm/internal/stm"
)

// countingWorkload counts executed tasks per key region via plain atomics
// (the STM path is exercised by the dictionary workload tests in harness).
type countingWorkload struct {
	mu   sync.Mutex
	seen map[uint32]int
}

func newCountingWorkload() *countingWorkload {
	return &countingWorkload{seen: map[uint32]int{}}
}

func (c *countingWorkload) Execute(th *stm.Thread, t Task) (any, error) {
	c.mu.Lock()
	c.seen[t.Arg]++
	c.mu.Unlock()
	return nil, nil
}

func (c *countingWorkload) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.seen {
		n += v
	}
	return n
}

// seqSource yields tasks with sequential keys.
func seqSource(start uint64) TaskSource {
	n := start
	return SourceFunc(func() Task {
		n++
		return Task{Key: n % 65536, Op: OpInsert, Arg: uint32(n % 65536)}
	})
}

func uniformSource(seed uint64) TaskSource {
	r := rng.New(seed)
	return SourceFunc(func() Task {
		k := r.Uint64n(1 << 16)
		return Task{Key: k, Op: OpInsert, Arg: uint32(k)}
	})
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpInsert: "insert", OpDelete: "delete", OpLookup: "lookup", OpNoop: "noop", Op(9): "Op(9)"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	s := NewRoundRobin(4)
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[s.Pick(uint64(i*7))]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("worker %d got %d tasks, want 100", i, c)
		}
	}
	if s.Name() != "roundrobin" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestRoundRobinPanicsOnBadWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRoundRobin(0) did not panic")
		}
	}()
	NewRoundRobin(0)
}

func TestFixedRanges(t *testing.T) {
	s, err := NewFixed(0, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pick(0) != 0 || s.Pick(99) != 3 || s.Pick(50) != 2 {
		t.Errorf("fixed picks: %d %d %d", s.Pick(0), s.Pick(99), s.Pick(50))
	}
	if s.Name() != "fixed" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Partition().Workers() != 4 {
		t.Error("partition workers != 4")
	}
}

func TestAdaptiveSwitchesAfterThreshold(t *testing.T) {
	a, err := NewAdaptive(0, dist.MaxKey, 4, WithThreshold(1000))
	if err != nil {
		t.Fatal(err)
	}
	src := dist.NewExponentialDefault(3)
	if a.Adapted() {
		t.Fatal("adapted before any samples")
	}
	for i := 0; i < 1100; i++ {
		key, _ := dist.Split(src.Next())
		a.Pick(uint64(key))
	}
	if !a.Adapted() {
		t.Fatal("not adapted after threshold")
	}
	if a.Epochs() != 1 {
		t.Fatalf("epochs = %d, want 1", a.Epochs())
	}
	// The adaptive partition must assign the exponential distribution's
	// dense low range to multiple workers: the first boundary should be
	// far below the uniform partition's first boundary (~16384).
	bounds := a.Partition().Bounds()
	if bounds[0] > 4000 {
		t.Errorf("first adaptive boundary = %d, want << 16384 for exponential keys", bounds[0])
	}
}

func TestAdaptiveOnceByDefault(t *testing.T) {
	a, err := NewAdaptive(0, 65535, 2, WithThreshold(100))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		a.Pick(r.Uint64n(65536))
	}
	if got := a.Epochs(); got != 1 {
		t.Fatalf("epochs = %d, want exactly 1 without re-adaptation", got)
	}
}

func TestAdaptiveReAdaptation(t *testing.T) {
	a, err := NewAdaptive(0, 65535, 4, WithThreshold(500), WithReAdaptation(), WithCells(32))
	if err != nil {
		t.Fatal(err)
	}
	// First window: keys concentrated low. Second: concentrated high.
	for i := 0; i < 600; i++ {
		a.Pick(uint64(i % 1000))
	}
	if !a.Adapted() {
		t.Fatal("no adaptation after first window")
	}
	firstBounds := a.Partition().Bounds()
	for i := 0; i < 600; i++ {
		a.Pick(uint64(64000 + i%1000))
	}
	if a.Epochs() < 2 {
		t.Fatalf("epochs = %d, want >= 2 with re-adaptation", a.Epochs())
	}
	secondBounds := a.Partition().Bounds()
	if firstBounds[0] >= secondBounds[0] {
		t.Errorf("partition did not follow the drift: %v -> %v", firstBounds, secondBounds)
	}
}

func TestAdaptiveConcurrentPick(t *testing.T) {
	a, err := NewAdaptive(0, 65535, 8, WithThreshold(2000))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 5000; i++ {
				w := a.Pick(r.Uint64n(65536))
				if w < 0 || w >= 8 {
					t.Errorf("Pick out of range: %d", w)
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if !a.Adapted() {
		t.Error("not adapted after concurrent sampling")
	}
}

func TestNewScheduler(t *testing.T) {
	for _, k := range SchedulerKinds() {
		s, err := NewScheduler(k, 0, 65535, 4)
		if err != nil {
			t.Fatalf("NewScheduler(%q): %v", k, err)
		}
		if s.Name() != string(k) {
			t.Errorf("Name = %q, want %q", s.Name(), k)
		}
	}
	if _, err := NewScheduler("lifo", 0, 9, 2); err == nil {
		t.Error("NewScheduler(lifo) succeeded")
	}
	if _, err := NewScheduler(SchedRoundRobin, 0, 9, 0); err == nil {
		t.Error("roundrobin with 0 workers succeeded")
	}
	if _, err := NewScheduler(SchedFixed, 9, 0, 2); err == nil {
		t.Error("fixed with inverted range succeeded")
	}
}

func validConfig(w *countingWorkload) Config {
	sched, _ := NewFixed(0, 65535, 3)
	return Config{
		STM:       stm.New(),
		Workload:  w,
		NewSource: func(p int) TaskSource { return uniformSource(uint64(p + 1)) },
		Workers:   3,
		Producers: 2,
		Model:     ModelParallel,
		Scheduler: sched,
	}
}

func TestNewPoolValidation(t *testing.T) {
	w := newCountingWorkload()
	base := validConfig(w)
	if _, err := NewPool(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := map[string]func(c *Config){
		"nil STM":       func(c *Config) { c.STM = nil },
		"nil workload":  func(c *Config) { c.Workload = nil },
		"nil source":    func(c *Config) { c.NewSource = nil },
		"zero workers":  func(c *Config) { c.Workers = 0 },
		"no producers":  func(c *Config) { c.Producers = 0 },
		"nil scheduler": func(c *Config) { c.Scheduler = nil },
		"bad model":     func(c *Config) { c.Model = "quantum" },
		"bad queue":     func(c *Config) { c.QueueKind = "stack" },
	}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		p, err := NewPool(c)
		if err == nil {
			// Queue kind errors surface at run time (queues are
			// built per run).
			if name == "bad queue" {
				if _, err := p.RunCount(1); err == nil {
					t.Errorf("%s: run succeeded", name)
				}
				continue
			}
			t.Errorf("%s: NewPool succeeded", name)
		}
	}
}

func TestRunCountCompletesExactly(t *testing.T) {
	for _, model := range Models() {
		model := model
		t.Run(string(model), func(t *testing.T) {
			w := newCountingWorkload()
			cfg := validConfig(w)
			cfg.Model = model
			pool, err := NewPool(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const n = 2000
			res, err := pool.RunCount(n)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != n {
				t.Fatalf("Completed = %d, want %d", res.Completed, n)
			}
			if w.total() != n {
				t.Fatalf("workload executed %d, want %d", w.total(), n)
			}
			var sum uint64
			for _, pw := range res.PerWorker {
				sum += pw
			}
			if sum != n {
				t.Fatalf("per-worker sum = %d, want %d", sum, n)
			}
			if res.Throughput() <= 0 {
				t.Error("non-positive throughput")
			}
		})
	}
}

func TestRunTimedStops(t *testing.T) {
	w := newCountingWorkload()
	cfg := validConfig(w)
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := pool.Run(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("run took %v", e)
	}
	if res.Completed == 0 {
		t.Fatal("timed run completed nothing")
	}
	if res.Elapsed < 50*time.Millisecond {
		t.Errorf("Elapsed = %v < window", res.Elapsed)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	pool, err := NewPool(validConfig(newCountingWorkload()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Run(0); err == nil {
		t.Error("Run(0) succeeded")
	}
	if _, err := pool.RunCount(0); err == nil {
		t.Error("RunCount(0) succeeded")
	}
}

func TestWorkloadErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	cfg := validConfig(newCountingWorkload())
	n := 0
	cfg.Workload = WorkloadFunc(func(th *stm.Thread, t Task) (any, error) {
		n++
		if n > 10 {
			return nil, sentinel
		}
		return nil, nil
	})
	cfg.Workers = 1
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.RunCount(100000); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestFixedSchedulerRoutesByRange(t *testing.T) {
	// With a fixed scheduler, each worker must see only keys from its
	// range.
	var mu sync.Mutex
	perWorkerKeys := map[int][]uint64{}
	var widx atomic2 // worker identity via goroutine-local trick is not possible; instead check routing directly.
	_ = widx
	sched, err := NewFixed(0, 65535, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Direct check: Pick honors partition ranges on 100k random keys.
	r := rng.New(5)
	for i := 0; i < 100000; i++ {
		k := r.Uint64n(65536)
		w := sched.Pick(k)
		lo, hi := sched.Partition().RangeOf(w)
		if k < lo || k > hi {
			t.Fatalf("key %d routed to worker %d range [%d,%d]", k, w, lo, hi)
		}
		mu.Lock()
		perWorkerKeys[w] = append(perWorkerKeys[w], k)
		mu.Unlock()
	}
	if len(perWorkerKeys) != 4 {
		t.Fatalf("only %d workers used", len(perWorkerKeys))
	}
}

type atomic2 struct{}

func TestWorkStealingDrainsImbalance(t *testing.T) {
	// All keys hash to worker 0's range under the fixed scheduler; with
	// stealing on, other workers should still complete work.
	w := newCountingWorkload()
	sched, err := NewFixed(0, 65535, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Yield after every task so that all workers interleave even on a
	// single-CPU host; otherwise one worker can drain the run alone.
	slow := WorkloadFunc(func(th *stm.Thread, task Task) (any, error) {
		runtime.Gosched()
		return w.Execute(th, task)
	})
	cfg := Config{
		STM:      stm.New(),
		Workload: slow,
		NewSource: func(p int) TaskSource {
			return SourceFunc(func() Task { return Task{Key: 1, Arg: 1} }) // always range 0
		},
		Workers:   4,
		Producers: 2,
		Model:     ModelParallel,
		Scheduler: sched,
		WorkSteal: true,
	}
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.RunCount(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Error("no steals recorded despite total imbalance")
	}
	others := res.Completed - res.PerWorker[0]
	if others == 0 {
		t.Error("stealing workers completed nothing")
	}
}

func TestCentralModelUsesDispatcher(t *testing.T) {
	w := newCountingWorkload()
	cfg := validConfig(w)
	cfg.Model = ModelCentral
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.RunCount(3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3000 {
		t.Fatalf("Completed = %d", res.Completed)
	}
}

func TestQueueKindsAllWork(t *testing.T) {
	for _, k := range queue.Kinds() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			w := newCountingWorkload()
			cfg := validConfig(w)
			cfg.QueueKind = k
			pool, err := NewPool(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pool.RunCount(1000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != 1000 {
				t.Fatalf("Completed = %d", res.Completed)
			}
		})
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{
		Completed: 100,
		Elapsed:   time.Second,
		PerWorker: []uint64{50, 25, 25, 0},
	}
	if got := r.Throughput(); got != 100 {
		t.Errorf("Throughput = %v", got)
	}
	if got := r.LoadImbalance(); got != 2 {
		t.Errorf("LoadImbalance = %v, want 2", got)
	}
	if (Result{}).Throughput() != 0 {
		t.Error("zero result throughput != 0")
	}
	if (Result{}).LoadImbalance() != 1 {
		t.Error("zero result imbalance != 1")
	}
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestSourceFuncAndWorkloadFunc(t *testing.T) {
	src := SourceFunc(func() Task { return Task{Key: 7} })
	if src.Next().Key != 7 {
		t.Error("SourceFunc passthrough broken")
	}
	wf := WorkloadFunc(func(th *stm.Thread, t Task) (any, error) { return t.Key, nil })
	if v, err := wf.Execute(nil, Task{Key: 7}); err != nil || v != uint64(7) {
		t.Errorf("WorkloadFunc passthrough = (%v, %v)", v, err)
	}
}

func TestAdaptiveBalancesExponentialLoad(t *testing.T) {
	// End-to-end scheduler comparison on load balance: route an
	// exponential key stream through fixed and adaptive schedulers and
	// compare per-worker shares. This is the §4.4 load-balance mechanism
	// in isolation (no STM, no timing).
	const workers = 8
	const warmup = 12000 // past the 10,000-sample threshold
	const tasks = 50000
	count := func(s Scheduler) []int {
		src := dist.NewExponentialDefault(42)
		// Warm-up: the adaptive scheduler dispatches via the fixed
		// partition while sampling; measure steady-state balance only.
		for i := 0; i < warmup; i++ {
			key, _ := dist.Split(src.Next())
			s.Pick(uint64(key))
		}
		loads := make([]int, workers)
		for i := 0; i < tasks; i++ {
			key, _ := dist.Split(src.Next())
			loads[s.Pick(uint64(key))]++
		}
		return loads
	}
	fixed, err := NewFixed(0, dist.MaxKey, workers)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := NewAdaptive(0, dist.MaxKey, workers)
	if err != nil {
		t.Fatal(err)
	}
	fixedLoads := count(fixed)
	adaptiveLoads := count(adaptive)

	imbalance := func(loads []int) float64 {
		max := 0
		for _, l := range loads {
			if l > max {
				max = l
			}
		}
		return float64(max) * workers / tasks
	}
	fi, ai := imbalance(fixedLoads), imbalance(adaptiveLoads)
	if fi < 6 {
		t.Errorf("fixed imbalance = %.2f, expected ~%d under exponential keys", fi, workers)
	}
	if ai > 2 {
		t.Errorf("adaptive imbalance = %.2f, want < 2", ai)
	}
	t.Logf("fixed loads: %v (imb %.2f)", fixedLoads, fi)
	t.Logf("adaptive loads: %v (imb %.2f)", adaptiveLoads, ai)
}

func TestSeqSourceHelper(t *testing.T) {
	s := seqSource(0)
	a, b := s.Next(), s.Next()
	if a.Key == b.Key {
		t.Error("seqSource not advancing")
	}
}

func BenchmarkSchedulerPick(b *testing.B) {
	for _, kind := range SchedulerKinds() {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			s, err := NewScheduler(kind, 0, 65535, 16)
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Pick(r.Uint64n(65536))
			}
		})
	}
}

func ExampleRoundRobin() {
	s := NewRoundRobin(2)
	fmt.Println(s.Pick(100), s.Pick(100), s.Pick(100))
	// Output: 0 1 0
}
