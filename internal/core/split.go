package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kstm/internal/splitphase"
	"kstm/internal/stm"
)

// Split-phase execution for contended keys (DESIGN.md §9) — Doppel-style
// phase reconciliation grafted onto the key-routed executor. Key routing
// removes cross-key STM conflicts but concentrates a hot key's entire load
// on one worker queue: the serialization class partitioning cannot dilute.
// Split phase breaks it for commutative operations:
//
//   - a contention detector (per-worker reservoirs, splitphase.Detector)
//     estimates per-key traffic shares each epoch and promotes keys above a
//     threshold into the split table (demoting them when the share decays);
//   - while a key is split, its commutative ops (the workload's
//     CommutativeOps table) are scattered round-robin across ALL workers and
//     absorbed into cache-line-padded per-worker accumulators
//     (splitphase.Accum) — zero STM traffic, no owner-queue serialization;
//   - non-commutative ops on a split key park on the key's hold queue;
//   - an epoch-merge coordinator reuses the §4.1 gate/fence discipline —
//     quiesced table changes, FIFO drain barriers per worker queue — to fold
//     the accumulators into the owning shard's store (SplitMergeWorkload)
//     and then release the parked tasks to the owner, ahead of any
//     post-release traffic, so a parked reader observes every commutative op
//     that preceded it and never a partial merge.
//
// Ordering argument, in brief: dispatch holds the read gate across
// route+enqueue/park, and the coordinator captures a key's hold queue under
// one write-gate acquisition, so every op enqueued before a captured parked
// task is in some worker queue (or accumulator slot) when the capture's
// barriers are enqueued; FIFO queues put those ops ahead of the barriers,
// the barriers complete before the accumulators are folded, and the fold is
// installed before the parked task is released. Tasks parked after the
// capture simply wait one more epoch.
//
// WithSplitPhase is incompatible with WithMigration: both own the epoch
// machinery, and merging a split key's accumulators across a concurrent
// shard hand-off (cross-shard coordination) is explicitly deferred to a
// follow-up. It is also incompatible with WithWorkSteal: a stolen task
// escapes its queue's FIFO order, which the drain-barrier argument needs.

// CommutativeWorkload is a Workload whose ops can be split-phase-absorbed:
// CommutativeOps maps each mergeable opcode to its splitphase.Kind. Ops
// absent from the map are non-commutative (they park while their key is
// split). The mapped ops' Execute implementations must be side-effect-
// equivalent to the accumulator fold (e.g. OpAdd adds int32(Arg) to the
// keyed sum) and must return a nil value, so callers cannot distinguish a
// locally-absorbed op from a transactional one. CommutativeOps is read once
// at construction.
type CommutativeWorkload interface {
	Workload
	CommutativeOps() map[Op]splitphase.Kind
}

// SplitMergeWorkload is a Workload whose keyed state accepts folded
// split-phase aggregates: ApplyMerged installs agg into the state behind
// scheduling key, transactionally, on a coordinator-owned thread of the
// owning shard's STM. It runs concurrently with the shard's worker (which
// the coordinator guarantees is not executing ops for this key) and must be
// all-or-nothing: on error the coordinator restores agg into the
// accumulator and retries next epoch.
type SplitMergeWorkload interface {
	Workload
	ApplyMerged(th *stm.Thread, key uint64, agg splitphase.Agg) error
}

// SplitStats reports the split-phase subsystem's work. All counters except
// Keys (a gauge) are monotone over an executor's lifetime.
type SplitStats struct {
	// Keys is the current split-table size (promoted, not yet demoted).
	Keys uint64
	// Promoted/Demoted count table transitions.
	Promoted uint64
	Demoted  uint64
	// MergedEpochs counts completed merge epochs (ticks that folded
	// accumulators and/or released parked tasks; quiescent ticks are free).
	MergedEpochs uint64
	// ParkedTasks counts tasks that waited on a split key's hold queue.
	ParkedTasks uint64
	// MergeNs sums merge-epoch duration: capture → barriers → fold+install →
	// release. Only split-key parked tasks pause; all other traffic executes
	// throughout.
	MergeNs uint64
}

// splitConfig is the resolved WithSplitPhase option set.
type splitConfig struct {
	epoch        time.Duration
	coalesce     time.Duration
	window       uint64
	reservoir    int
	promoteShare float64
	demoteShare  float64
	demoteGrace  int
	maxKeys      int
	seed         uint64
	static       []uint64
}

// SplitOption tunes split-phase execution.
type SplitOption func(*splitConfig)

// SplitEpoch sets the maximum merge interval: a dirty accumulator or a
// parked task waits at most about this long for a merge (default 1ms).
func SplitEpoch(d time.Duration) SplitOption {
	return func(c *splitConfig) { c.epoch = d }
}

// SplitCoalesce sets the delay between a park-triggered wake and the merge,
// letting a burst of parked readers share one epoch (default 100µs; 0
// merges immediately on wake).
func SplitCoalesce(d time.Duration) SplitOption {
	return func(c *splitConfig) { c.coalesce = d }
}

// SplitWindow sets how many detector samples accumulate before a fold makes
// promote/demote decisions (default 4096).
func SplitWindow(n uint64) SplitOption {
	return func(c *splitConfig) { c.window = n }
}

// SplitPromoteShare sets the traffic share at which a key is promoted into
// split phase (default 0.05 — a key carrying ≥5% of sampled traffic).
func SplitPromoteShare(f float64) SplitOption {
	return func(c *splitConfig) { c.promoteShare = f }
}

// SplitDemoteShare sets the share below which a split key is a demotion
// candidate, and grace the number of consecutive folds it must stay below
// before it actually demotes (defaults 0.02 and 3; hysteresis against
// promote/demote flapping at the threshold).
func SplitDemoteShare(f float64, grace int) SplitOption {
	return func(c *splitConfig) { c.demoteShare, c.demoteGrace = f, grace }
}

// SplitMaxKeys caps the split table (default 16): accumulators cost
// workers × 2 cache lines per key, and merge epochs walk every entry.
func SplitMaxKeys(n int) SplitOption {
	return func(c *splitConfig) { c.maxKeys = n }
}

// SplitKeys pre-splits the given scheduling keys at construction. Static
// keys never demote; the detector still promotes others around them. Tests
// and workloads with known-hot keys use this to skip the detection window.
func SplitKeys(keys ...uint64) SplitOption {
	return func(c *splitConfig) { c.static = append(c.static, keys...) }
}

// WithSplitPhase enables split-phase execution for contended keys. Every
// shard workload must implement CommutativeWorkload and SplitMergeWorkload;
// incompatible with WithMigration(MigrateOnRepartition) and WithWorkSteal.
func WithSplitPhase(opts ...SplitOption) Option {
	return func(c *execConfig) {
		sc := defaultSplitConfig()
		for _, o := range opts {
			o(&sc)
		}
		c.split = &sc
	}
}

func defaultSplitConfig() splitConfig {
	return splitConfig{
		epoch:        time.Millisecond,
		coalesce:     100 * time.Microsecond,
		window:       4096,
		reservoir:    splitphase.DefaultReservoir,
		promoteShare: 0.05,
		demoteShare:  0.02,
		demoteGrace:  3,
		maxKeys:      16,
		seed:         1,
	}
}

// splitKey is one split-table entry: the key's per-worker accumulators and
// its hold queue for parked (non-commutative, or demote-window) tasks.
type splitKey struct {
	key uint64
	acc *splitphase.Accum
	// static keys (SplitKeys) never demote.
	static bool
	// demoting: the key is leaving the table this epoch; ALL its ops park
	// until the final merge lands and the coordinator releases them to the
	// owner — removing the commutative/transactional ambiguity a half-
	// demoted key would have.
	demoting atomic.Bool
	// settled: at least one merge epoch has completed since promotion. Once
	// the first epoch's barriers have drained the queues, the only
	// non-commutative split-key envelopes a worker can dequeue are ones the
	// coordinator itself released after installing the merge — so the worker
	// executes them; before that, they are pre-promotion stragglers and park.
	settled atomic.Bool
	// rr scatters commutative ops round-robin across worker queues.
	rr atomic.Uint32

	mu   sync.Mutex
	held []envelope
}

// park appends env to the key's hold queue, honouring the depth bound
// (0 = unbounded). It reports false when the queue is at the bound — the
// dispatcher applies its backpressure policy and must NOT fall through to a
// worker queue.
func (sk *splitKey) park(env envelope, bound int) bool {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if bound > 0 && len(sk.held) >= bound {
		return false
	}
	sk.held = append(sk.held, env)
	return true
}

// forcePark appends env unconditionally: the worker-side path, where the
// envelope has already been dequeued and consumed — dropping it would lose
// an accepted task, so the bound does not apply.
func (sk *splitKey) forcePark(env envelope) {
	sk.mu.Lock()
	sk.held = append(sk.held, env)
	sk.mu.Unlock()
}

// take removes and returns the current hold-queue generation. Unlike a
// migration fence the key stays split, so parking continues — later parkers
// form the next generation and wait for the next epoch.
func (sk *splitKey) take() []envelope {
	sk.mu.Lock()
	held := sk.held
	sk.held = nil
	sk.mu.Unlock()
	return held
}

// splitTable is the immutable published table: entries sorted by key for
// binary-search lookups on the dispatch and worker hot paths. Replaced
// whole (under the write gate) on promotion and demotion.
type splitTable struct {
	keys []*splitKey
}

func (t *splitTable) lookup(key uint64) *splitKey {
	ks := t.keys
	lo, hi := 0, len(ks)
	for lo < hi {
		mid := (lo + hi) / 2
		if ks[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ks) && ks[lo].key == key {
		return ks[lo]
	}
	return nil
}

// splitRunner owns the executor's split-phase state: detector, split table,
// and the epoch-merge coordinator goroutine. Present (non-nil on the
// Executor) only under WithSplitPhase.
type splitRunner struct {
	e   *Executor
	cfg splitConfig
	det *splitphase.Detector
	// kinds is CommutativeOps resolved into a dense opcode table.
	kinds [256]splitphase.Kind
	// merge holds each shard's SplitMergeWorkload face (validated at
	// construction, cached to skip the per-merge assertion).
	merge []SplitMergeWorkload

	// gate orders dispatch against table changes and hold-queue captures,
	// exactly like the migrator's: every dispatch holds the read side across
	// its table-lookup + enqueue/park, so a capture or a table swap (write
	// side) never interleaves with a half-routed task.
	gate  sync.RWMutex
	table atomic.Pointer[splitTable]
	// wake nudges the coordinator when a task parks (capacity 1; a full
	// channel means a merge is already pending).
	wake chan struct{}

	// started records that Start launched the coordinator; done is closed
	// when it exits. halt waits on done (only if started — a never-started
	// executor would wait forever) before the final accumulator flush so
	// the two never install merges concurrently.
	started atomic.Bool
	done    chan struct{}
	// idle is the coordinator's deep-idle flag: set (by the coordinator)
	// after splitIdleTicks consecutive quiescent epochs, at which point the
	// epoch ticker stops and the coordinator blocks on wake alone. Workers
	// clear it with a CAS-guarded nudge (nudgeIdle) on the first sample or
	// absorb that arrives — so a quiescent executor costs zero coordinator
	// wakeups, and resuming traffic pays one atomic load per task while
	// active.
	idle atomic.Bool

	// low counts consecutive below-demote-share folds per split key
	// (coordinator-only state).
	low map[uint64]int
	// threads are coordinator-owned STM threads, one per shard, for merge
	// installs (lazily built; coordinator-only).
	threads map[int]*stm.Thread

	promoted     atomic.Uint64
	demoted      atomic.Uint64
	mergedEpochs atomic.Uint64
	parkedTasks  atomic.Uint64
	mergeNs      atomic.Uint64
	lastErr      atomic.Pointer[error]
}

// newSplitRunner validates the configuration and workloads and builds the
// runner (coordinator started by Executor.Start).
func newSplitRunner(cfg *execConfig, shards []shardState) (*splitRunner, error) {
	sc := *cfg.split
	if sc.epoch <= 0 {
		return nil, fmt.Errorf("core: SplitEpoch %v, want > 0", sc.epoch)
	}
	if sc.coalesce < 0 {
		return nil, fmt.Errorf("core: SplitCoalesce %v, want >= 0", sc.coalesce)
	}
	if sc.window == 0 {
		return nil, fmt.Errorf("core: SplitWindow 0, want > 0")
	}
	if sc.promoteShare <= 0 || sc.promoteShare > 1 {
		return nil, fmt.Errorf("core: SplitPromoteShare %v, want in (0,1]", sc.promoteShare)
	}
	if sc.demoteShare < 0 || sc.demoteShare >= sc.promoteShare {
		return nil, fmt.Errorf("core: SplitDemoteShare %v, want in [0, promote share %v)", sc.demoteShare, sc.promoteShare)
	}
	if sc.demoteGrace < 1 {
		return nil, fmt.Errorf("core: SplitDemoteShare grace %d, want >= 1", sc.demoteGrace)
	}
	if sc.maxKeys < 1 {
		return nil, fmt.Errorf("core: SplitMaxKeys %d, want >= 1", sc.maxKeys)
	}
	if len(sc.static) > sc.maxKeys {
		return nil, fmt.Errorf("core: SplitKeys lists %d keys, more than SplitMaxKeys %d", len(sc.static), sc.maxKeys)
	}
	s := &splitRunner{
		cfg:     sc,
		det:     splitphase.NewDetector(cfg.workers, sc.reservoir, sc.seed),
		merge:   make([]SplitMergeWorkload, len(shards)),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		low:     make(map[uint64]int),
		threads: make(map[int]*stm.Thread),
	}
	var kinds map[Op]splitphase.Kind
	for i := range shards {
		cw, ok := shards[i].workload.(CommutativeWorkload)
		if !ok {
			return nil, fmt.Errorf("core: WithSplitPhase requires every shard workload to implement CommutativeWorkload (shard %d: %T)", i, shards[i].workload)
		}
		mw, ok := shards[i].workload.(SplitMergeWorkload)
		if !ok {
			return nil, fmt.Errorf("core: WithSplitPhase requires every shard workload to implement SplitMergeWorkload (shard %d: %T)", i, shards[i].workload)
		}
		s.merge[i] = mw
		if kinds == nil {
			kinds = cw.CommutativeOps()
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("core: WithSplitPhase: the workload's CommutativeOps table is empty — nothing to split")
	}
	for op, k := range kinds {
		if k == splitphase.KindNone || k > splitphase.KindTopK {
			return nil, fmt.Errorf("core: CommutativeOps maps %v to invalid kind %v", op, k)
		}
		s.kinds[op] = k
	}
	tbl := &splitTable{}
	seen := make(map[uint64]bool)
	for _, k := range sc.static {
		if seen[k] {
			continue
		}
		seen[k] = true
		tbl.keys = append(tbl.keys, &splitKey{
			key:    k,
			acc:    splitphase.NewAccum(cfg.workers),
			static: true,
		})
	}
	sort.Slice(tbl.keys, func(a, b int) bool { return tbl.keys[a].key < tbl.keys[b].key })
	s.table.Store(tbl)
	s.promoted.Add(uint64(len(tbl.keys)))
	return s, nil
}

func (s *splitRunner) lookup(key uint64) *splitKey {
	return s.table.Load().lookup(key)
}

// requestMerge nudges the coordinator; non-blocking, collapses bursts.
func (s *splitRunner) requestMerge() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// nudgeIdle wakes a deep-idle coordinator. The common case (coordinator
// ticking, or already nudged) is one atomic load; the CAS makes the nudge
// once-per-idle-period. Paired with the coordinator's store-then-recheck in
// loop(): either the worker's Apply/Sample is visible to the recheck, or
// the worker sees the idle flag and nudges — dirt can never strand.
//
//kstmvet:hotpath
func (s *splitRunner) nudgeIdle() {
	if s.idle.Load() && s.idle.CompareAndSwap(true, false) {
		s.requestMerge()
	}
}

// splitAction is the worker-side routing decision for a dequeued envelope.
type splitAction int

const (
	// splitActExec: not a split key (or a coordinator-released task whose
	// merge has landed) — execute transactionally.
	splitActExec splitAction = iota
	// splitActPark: hold until the next epoch merge.
	splitActPark
	// splitActLocal: absorb into the worker's local accumulator slot.
	splitActLocal
)

// route classifies a dequeued task for worker i and feeds the detector.
// Every queue-resident non-commutative envelope for a split key is either a
// pre-promotion straggler (settled false: it was enqueued before the key's
// first merge epoch, whose barriers have not yet passed it — park it) or a
// coordinator release (settled true: the merge is installed — run it).
func (s *splitRunner) route(worker int, t Task) (splitAction, *splitKey, splitphase.Kind) {
	sk := s.lookup(t.Key)
	if sk == nil {
		s.det.Sample(worker, t.Key)
		s.nudgeIdle() // new traffic must restart detector folding
		return splitActExec, nil, splitphase.KindNone
	}
	if sk.demoting.Load() {
		return splitActPark, sk, splitphase.KindNone
	}
	kind := s.kinds[t.Op]
	if kind == splitphase.KindNone {
		if sk.settled.Load() {
			return splitActExec, nil, splitphase.KindNone
		}
		return splitActPark, sk, splitphase.KindNone
	}
	s.det.Sample(worker, t.Key)
	return splitActLocal, sk, kind
}

// dispatchSplit is dispatch under WithSplitPhase: the table lookup and the
// enqueue/park happen under the runner's read gate, so a hold-queue capture
// or table swap (write gate) never interleaves with a half-routed task —
// the same discipline as dispatchGated, with the split table in place of
// the migration fence. Commutative ops on a split key scatter round-robin
// across ALL worker queues (each worker absorbs them into its own
// accumulator slot); everything else on a split key parks. The backpressure
// wait happens outside the gate.
func (e *Executor) dispatchSplit(env envelope, ctx context.Context) error {
	s := e.split
	var b backoff
	for attempt := 0; ; attempt++ {
		s.gate.RLock()
		// Sample into the adaptive histogram on the first attempt only;
		// backpressure retries re-route without re-sampling.
		var w int
		if attempt == 0 {
			w = e.pick(env.task.Key)
		} else {
			w = e.repick(env.task.Key)
		}
		full := false
		if sk := s.lookup(env.task.Key); sk != nil {
			if !sk.demoting.Load() && s.kinds[env.task.Op] != splitphase.KindNone {
				w = int(sk.rr.Add(1)) % len(e.queues)
			} else if sk.park(env, e.cfg.maxDepth) {
				s.gate.RUnlock()
				e.submitted.Add(1)
				s.parkedTasks.Add(1)
				s.requestMerge()
				return nil
			} else {
				// Hold queue at its bound: backpressure, but NEVER a worker
				// queue — the key's pre-merge state must stay ahead of it.
				full = true
			}
		}
		if !full && (e.cfg.maxDepth <= 0 || e.queues[w].Len() < e.cfg.maxDepth) {
			e.queues[w].Put(env)
			s.gate.RUnlock()
			e.submitted.Add(1)
			e.wakeWorker(w)
			return nil
		}
		s.gate.RUnlock()
		if e.cfg.backpressure == BackpressureReject {
			e.decInflight(1)
			e.rejected.Add(1)
			return ErrQueueFull
		}
		if e.state.Load() == stateStopped {
			e.decInflight(1)
			return ErrStopped
		}
		select {
		case <-ctx.Done():
			e.decInflight(1)
			return ctx.Err()
		default:
		}
		if full {
			// Hold-queue bound: space comes from the coordinator's next
			// capture, not a worker dequeue — the space event would never
			// fire. Keep the timed backoff here.
			b.wait()
		} else {
			e.waitSpace(w, ctx)
		}
	}
}

// splitIdleTicks is how many consecutive quiescent epochs the coordinator
// tolerates before entering deep idle (ticker stopped, blocked on wake
// alone). Small enough that a quiescent executor stops ticking within ~10
// epochs; large enough that trickle traffic does not thrash the
// idle/resume transition.
const splitIdleTicks = 8

// loop is the epoch-merge coordinator: it folds the detector and merges
// accumulators every epoch interval, and sooner when a parked task wakes it
// (after a short coalesce window so a burst of parkers shares one epoch).
// It keeps running through the draining state — parked tasks count in
// flight, so Drain completes only after the coordinator releases them — and
// exits when the executor stops.
//
// After splitIdleTicks consecutive quiescent epochs it enters deep idle:
// the ticker stops and the coordinator blocks on the wake channel, so a
// quiescent executor burns no epoch wakeups at all. Parks already
// requestMerge; samples and local absorbs nudge through the idle flag
// (nudgeIdle). The store-then-recheck below closes the race with a worker
// that absorbed between this loop's last tick and the flag store: either
// the recheck sees the dirt, or the worker sees the flag and nudges.
func (s *splitRunner) loop() {
	defer close(s.done)
	e := s.e
	ticker := time.NewTicker(s.cfg.epoch)
	defer ticker.Stop()
	quiet := 0
	for {
		if quiet >= splitIdleTicks {
			quiet = 0
			s.idle.Store(true)
			if s.busyCheck() {
				s.idle.Store(false)
			} else {
				ticker.Stop()
				select {
				case <-e.stopped:
					return
				case <-s.wake:
				}
				s.idle.Store(false)
				ticker.Reset(s.cfg.epoch)
				if !s.coalesce() {
					return
				}
			}
		} else {
			select {
			case <-e.stopped:
				return
			case <-s.wake:
				if !s.coalesce() {
					return
				}
			case <-ticker.C:
			}
		}
		if s.tick() {
			quiet = 0
		} else {
			quiet++
		}
	}
}

// coalesce delays a wake-triggered merge by the configured window so a burst
// of parkers shares one epoch; false means the executor stopped meanwhile.
func (s *splitRunner) coalesce() bool {
	if s.cfg.coalesce <= 0 {
		return true
	}
	t := time.NewTimer(s.cfg.coalesce)
	select {
	case <-s.e.stopped:
		t.Stop()
		return false
	case <-t.C:
		return true
	}
}

// busyCheck reports whether a merge epoch would find work right now —
// the deep-idle entry recheck.
func (s *splitRunner) busyCheck() bool {
	tbl := s.table.Load()
	for _, sk := range tbl.keys {
		if sk.demoting.Load() {
			return true
		}
	}
	return s.pending(tbl)
}

// tick runs one coordinator epoch: fold the detector (promotions and demote
// marks), capture the hold queues, drain every worker queue behind a
// barrier, fold the accumulators into the owning shards' stores, then
// demote marked keys and release the captured tasks to their owners. The
// return reports whether the epoch found work — loop()'s deep-idle counter
// feeds on consecutive false returns.
func (s *splitRunner) tick() bool {
	e := s.e
	s.refold()
	tbl := s.table.Load()
	if len(tbl.keys) == 0 {
		return false
	}
	demotePending := false
	for _, sk := range tbl.keys {
		if sk.demoting.Load() {
			demotePending = true
			break
		}
	}
	if !demotePending && !s.pending(tbl) {
		return false // quiescent epoch: nothing held, nothing dirty
	}
	start := time.Now()
	// Capture one hold-queue generation per key under the write gate: every
	// op enqueued before a captured task was enqueued under the read gate,
	// strictly before this acquisition — so it is in a worker queue (or an
	// accumulator) that the barriers below will cover. Tasks parking after
	// the capture form the next generation and wait one more epoch.
	captured := make([][]envelope, len(tbl.keys))
	s.gate.Lock()
	for i, sk := range tbl.keys {
		captured[i] = sk.take()
	}
	s.gate.Unlock()
	// Drain: one FIFO barrier per worker queue (commutative ops scatter to
	// all of them). When they have all run, every pre-capture op has been
	// executed, locally absorbed, or parked into the next generation.
	if !s.barrierAll() {
		s.abortCaptured(captured)
		return true
	}
	// Deterministic stop re-check: halt's sweep signals unexecuted barriers
	// too, so the waits above may have been satisfied by a stopping
	// executor — a stopped executor must not install merges or mutate stats
	// after Stop/Drain returned.
	select {
	case <-e.stopped:
		s.abortCaptured(captured)
		return true
	default:
	}
	// Merge: fold each key's accumulators and install into the owning
	// shard's store on a coordinator-owned thread. settled flips true first:
	// after this epoch's barriers, no pre-promotion straggler remains in any
	// queue, so a worker dequeuing a non-commutative envelope for this key
	// from now on is holding a coordinator release.
	for _, sk := range tbl.keys {
		sk.settled.Store(true)
		agg, ok := sk.acc.Take()
		if !ok {
			continue
		}
		shard := e.shardOf(e.repick(sk.key))
		if err := s.merge[shard].ApplyMerged(s.thOf(shard), sk.key, agg); err != nil {
			// Deltas are never lost: they rejoin the accumulator and the
			// next epoch retries the install.
			sk.acc.Restore(agg)
			s.fail(fmt.Errorf("core: split merge key %d into shard %d: %w", sk.key, shard, err))
		}
	}
	select {
	case <-e.stopped:
		s.abortCaptured(captured)
		return true
	default:
	}
	// Finalize under the write gate: demote marked keys (their residual
	// parkers join the release), publish the new table, then release every
	// captured task to its owner queue in park order — no new task can slip
	// ahead, dispatchers are excluded until the unlock, and workers route
	// released envelopes by the table published here.
	s.gate.Lock()
	var demoted int
	if demotePending {
		next := &splitTable{keys: make([]*splitKey, 0, len(tbl.keys))}
		for _, sk := range tbl.keys {
			if sk.demoting.Load() {
				demoted++
				delete(s.low, sk.key)
				continue
			}
			next.keys = append(next.keys, sk)
		}
		s.table.Store(next)
	}
	for i, sk := range tbl.keys {
		envs := captured[i]
		if sk.demoting.Load() {
			// Residual generation parked during the demote window: release
			// it too — the key leaves the table, so nothing would ever
			// capture it again.
			envs = append(envs, sk.take()...)
		}
		if len(envs) == 0 {
			continue
		}
		owner := e.repick(sk.key)
		for _, env := range envs {
			e.queues[owner].Put(env)
		}
		e.wakeWorker(owner)
	}
	s.gate.Unlock()
	s.demoted.Add(uint64(demoted))
	s.mergedEpochs.Add(1)
	s.mergeNs.Add(uint64(time.Since(start)))
	return true
}

// pending reports whether the table holds any work a merge epoch would
// perform: parked tasks or dirty accumulators.
func (s *splitRunner) pending(tbl *splitTable) bool {
	for _, sk := range tbl.keys {
		sk.mu.Lock()
		held := len(sk.held) > 0
		sk.mu.Unlock()
		if held || sk.acc.Dirty() {
			return true
		}
	}
	return false
}

// refold folds the detector window (if full) and applies its decisions:
// promote keys above the promote share (bounded by maxKeys), and mark keys
// below the demote share for grace consecutive folds as demoting. Static
// keys never demote. Promotions publish a new table under the write gate;
// no quiesce beyond the gate is needed — ops dispatched before the publish
// legally serialize before the split window (they run or park as
// stragglers ahead of the first epoch's barriers).
func (s *splitRunner) refold() {
	shares, _, ok := s.det.Fold(s.cfg.window)
	if !ok {
		return
	}
	tbl := s.table.Load()
	for _, sk := range tbl.keys {
		if sk.static || sk.demoting.Load() {
			continue
		}
		if shares[sk.key] < s.cfg.demoteShare {
			s.low[sk.key]++
			if s.low[sk.key] >= s.cfg.demoteGrace {
				sk.demoting.Store(true)
			}
		} else {
			s.low[sk.key] = 0
		}
	}
	type cand struct {
		key   uint64
		share float64
	}
	var cands []cand
	for k, share := range shares {
		if share >= s.cfg.promoteShare && tbl.lookup(k) == nil {
			cands = append(cands, cand{k, share})
		}
	}
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].share > cands[b].share })
	room := s.cfg.maxKeys - len(tbl.keys)
	if room <= 0 {
		return
	}
	if len(cands) > room {
		cands = cands[:room]
	}
	next := &splitTable{keys: make([]*splitKey, 0, len(tbl.keys)+len(cands))}
	next.keys = append(next.keys, tbl.keys...)
	for _, c := range cands {
		next.keys = append(next.keys, &splitKey{
			key: c.key,
			acc: splitphase.NewAccum(s.e.cfg.workers),
		})
	}
	sort.Slice(next.keys, func(a, b int) bool { return next.keys[a].key < next.keys[b].key })
	s.gate.Lock()
	s.table.Store(next)
	s.gate.Unlock()
	s.promoted.Add(uint64(len(cands)))
}

// barrierAll enqueues one drain barrier per worker queue and waits for all
// of them; false means the executor stopped first.
func (s *splitRunner) barrierAll() bool {
	e := s.e
	chans := make([]chan struct{}, len(e.queues))
	for i := range e.queues {
		done := make(chan struct{})
		chans[i] = done
		e.queues[i].Put(envelope{barrier: func() { close(done) }})
		e.wakeWorker(i)
	}
	for _, ch := range chans {
		select {
		case <-ch:
		case <-e.stopped:
			return false
		}
	}
	return true
}

// abortCaptured settles a tick cut short by executor stop: the captured
// generations were removed from their hold queues, so halt's sweep cannot
// see them — abandon them here with ErrStopped.
func (s *splitRunner) abortCaptured(captured [][]envelope) {
	for _, envs := range captured {
		for _, env := range envs {
			s.e.abandon(0, env, ErrStopped)
		}
	}
}

// flushFinal installs every accumulator's remaining aggregate at shutdown
// (halt path, after the workers have joined and the coordinator's done
// channel has closed). Locally-absorbed commutative ops were settled as
// completed the moment they hit a worker slot — their submitters were told
// the op committed — so even a hard Stop must fold them into the stores;
// dropping them would un-commit acknowledged work. With the workers gone and
// the coordinator dead there is no concurrency left: no new Apply can race
// the Take, and the coordinator's threads are free to reuse.
func (s *splitRunner) flushFinal() {
	e := s.e
	for _, sk := range s.table.Load().keys {
		agg, ok := sk.acc.Take()
		if !ok {
			continue
		}
		shard := e.shardOf(e.repick(sk.key))
		if err := s.merge[shard].ApplyMerged(s.thOf(shard), sk.key, agg); err != nil {
			s.fail(fmt.Errorf("core: split final flush key %d into shard %d: %w", sk.key, shard, err))
		}
	}
}

// takeHeld strips every split key's hold queue (halt path); the flattened
// envelopes are abandoned by the caller. Racing parkers land in queues halt
// is already sweeping or in hold queues a later halt iteration re-strips.
func (s *splitRunner) takeHeld() []envelope {
	var out []envelope
	for _, sk := range s.table.Load().keys {
		out = append(out, sk.take()...)
	}
	return out
}

// thOf returns the coordinator's STM thread for a shard (coordinator
// goroutine only).
func (s *splitRunner) thOf(shard int) *stm.Thread {
	th, ok := s.threads[shard]
	if !ok {
		th = s.e.shards[shard].stm.NewThread()
		s.threads[shard] = th
	}
	return th
}

// fail records the most recent merge error (stats/debugging).
func (s *splitRunner) fail(err error) {
	p := &err
	s.lastErr.Store(p)
}

// Err returns the most recent merge error, if any.
func (s *splitRunner) Err() error {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// stats snapshots the split-phase counters.
func (s *splitRunner) stats() SplitStats {
	return SplitStats{
		Keys:         uint64(len(s.table.Load().keys)),
		Promoted:     s.promoted.Load(),
		Demoted:      s.demoted.Load(),
		MergedEpochs: s.mergedEpochs.Load(),
		ParkedTasks:  s.parkedTasks.Load(),
		MergeNs:      s.mergeNs.Load(),
	}
}
