package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kstm/internal/queue"
	"kstm/internal/stm"
)

// Model selects the executor architecture of Figure 1.
type Model string

// The three executor models.
const (
	// ModelNoExecutor: each thread generates and synchronously executes
	// its own transactions (Figure 1a). No queuing overhead; no load
	// balancing; parallelism limited to the producer count.
	ModelNoExecutor Model = "noexecutor"
	// ModelCentral: a single executor thread takes tasks from all
	// producers and dispatches to workers (Figure 1b).
	ModelCentral Model = "central"
	// ModelParallel: the executor runs inline in every producer thread
	// (Figure 1c) — the model used for all the paper's measurements.
	ModelParallel Model = "parallel"
)

// Models lists the executor models.
func Models() []Model { return []Model{ModelNoExecutor, ModelCentral, ModelParallel} }

// defaultMaxQueueDepth bounds per-worker queues so that a fast producer
// cannot consume unbounded memory during a timed run; producers spin-yield
// at the bound. The paper's 10-second Java runs relied on producers and
// workers being roughly matched.
const defaultMaxQueueDepth = 8192

// Config describes one executor experiment.
type Config struct {
	// STM is the transactional memory instance shared by the workers.
	STM *stm.STM
	// Workload executes tasks on worker threads.
	Workload Workload
	// NewSource returns producer p's private task stream.
	NewSource func(producer int) TaskSource
	// Workers is the worker-thread count (w in the paper).
	Workers int
	// Producers is the producer-thread count (the paper uses 4, or 8 for
	// the hash table "to prevent worker threads being hungry").
	Producers int
	// Model selects the executor architecture; default ModelParallel.
	Model Model
	// Scheduler maps keys to workers. Required unless Model is
	// ModelNoExecutor.
	Scheduler Scheduler
	// QueueKind selects the task-queue implementation; default mscq.
	QueueKind queue.Kind
	// MaxQueueDepth applies producer backpressure; <0 disables, 0 means
	// the default.
	MaxQueueDepth int
	// WorkSteal lets an idle worker take tasks from other queues — the
	// §2 "load balancing" alternative; off in the paper's experiments.
	WorkSteal bool
	// SortBatch > 1 makes each worker drain up to that many tasks and
	// execute them in ascending key order — the §2 capability of
	// reordering a worker's buffer ("the executor could also control the
	// order in which the worker will execute waiting transactions,
	// though we do not use this capability"). Batching by key improves
	// temporal locality within a worker at the cost of latency.
	SortBatch int
}

// Pool is a reusable executor harness for one Config; each Run builds fresh
// queues and goroutines.
type Pool struct {
	cfg      Config
	maxDepth int
}

// NewPool validates the configuration.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.STM == nil {
		return nil, fmt.Errorf("core: Config.STM is required")
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("core: Config.Workload is required")
	}
	if cfg.NewSource == nil {
		return nil, fmt.Errorf("core: Config.NewSource is required")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("core: Config.Workers = %d, want > 0", cfg.Workers)
	}
	if cfg.Model == "" {
		cfg.Model = ModelParallel
	}
	switch cfg.Model {
	case ModelNoExecutor:
		// Scheduler and producers are unused; workers self-produce.
	case ModelCentral, ModelParallel:
		if cfg.Producers <= 0 {
			return nil, fmt.Errorf("core: Config.Producers = %d, want > 0", cfg.Producers)
		}
		if cfg.Scheduler == nil {
			return nil, fmt.Errorf("core: Config.Scheduler is required for model %q", cfg.Model)
		}
	default:
		return nil, fmt.Errorf("core: unknown model %q", cfg.Model)
	}
	if cfg.QueueKind == "" {
		cfg.QueueKind = queue.KindMSCQ
	}
	maxDepth := cfg.MaxQueueDepth
	switch {
	case maxDepth < 0:
		maxDepth = 0
	case maxDepth == 0:
		maxDepth = defaultMaxQueueDepth
	}
	return &Pool{cfg: cfg, maxDepth: maxDepth}, nil
}

// run-scoped state.
type run struct {
	p         *Pool
	counted   bool
	queues    []queue.Queue[Task]
	stop      atomic.Bool
	produced  atomic.Uint64
	remaining atomic.Int64 // count mode: tasks left to produce
	done      atomic.Int64 // count mode: tasks left to complete
	completed []paddedCounter
	empty     atomic.Uint64
	steals    atomic.Uint64
	workErr   atomic.Pointer[error]
}

// paddedCounter avoids false sharing between per-worker counters, which
// would otherwise serialize the very cache traffic the executor exists to
// remove.
type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// Run executes the workload for roughly d — the paper's timed-driver shape:
// start producers and workers, run the window, stop everything, report.
func (p *Pool) Run(d time.Duration) (Result, error) {
	if d <= 0 {
		return Result{}, fmt.Errorf("core: non-positive run duration %v", d)
	}
	return p.execute(d, -1)
}

// RunCount executes exactly n tasks and reports the elapsed time; used by
// deterministic tests and testing.B benchmarks.
func (p *Pool) RunCount(n int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("core: non-positive task count %d", n)
	}
	return p.execute(0, int64(n))
}

func (p *Pool) execute(d time.Duration, count int64) (Result, error) {
	r := &run{p: p, completed: make([]paddedCounter, p.cfg.Workers)}
	counted := count > 0
	r.counted = counted
	if counted {
		r.remaining.Store(count)
		r.done.Store(count)
	}
	if p.cfg.Model != ModelNoExecutor {
		r.queues = make([]queue.Queue[Task], p.cfg.Workers)
		for i := range r.queues {
			q, err := queue.New[Task](p.cfg.QueueKind)
			if err != nil {
				return Result{}, err
			}
			r.queues[i] = q
		}
	}

	stmBefore := p.cfg.STM.Stats()
	start := time.Now()
	var wg sync.WaitGroup

	switch p.cfg.Model {
	case ModelNoExecutor:
		for i := 0; i < p.cfg.Workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.selfProducer(i)
			}(i)
		}
	case ModelParallel:
		for i := 0; i < p.cfg.Producers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.parallelProducer(i)
			}(i)
		}
		for i := 0; i < p.cfg.Workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.worker(i, counted)
			}(i)
		}
	case ModelCentral:
		inbox, err := queue.New[Task](p.cfg.QueueKind)
		if err != nil {
			return Result{}, err
		}
		for i := 0; i < p.cfg.Producers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.centralProducer(i, inbox)
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.dispatcher(inbox)
		}()
		for i := 0; i < p.cfg.Workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.worker(i, counted)
			}(i)
		}
	}

	if counted {
		// Completion of the last task sets stop; just join.
		wg.Wait()
	} else {
		time.Sleep(d)
		r.stop.Store(true)
		wg.Wait()
	}
	elapsed := time.Since(start)

	res := Result{
		Model:      p.cfg.Model,
		Workers:    p.cfg.Workers,
		Producers:  p.cfg.Producers,
		QueueKind:  p.cfg.QueueKind,
		WorkSteal:  p.cfg.WorkSteal,
		Elapsed:    elapsed,
		Produced:   r.produced.Load(),
		PerWorker:  make([]uint64, p.cfg.Workers),
		EmptyPolls: r.empty.Load(),
		Steals:     r.steals.Load(),
		STM:        p.cfg.STM.Stats().Sub(stmBefore),
	}
	if p.cfg.Scheduler != nil {
		res.Scheduler = p.cfg.Scheduler.Name()
	} else {
		res.Scheduler = "none"
	}
	for i := range r.completed {
		res.PerWorker[i] = r.completed[i].n.Load()
		res.Completed += res.PerWorker[i]
	}
	if errp := r.workErr.Load(); errp != nil {
		return res, *errp
	}
	return res, nil
}

// fail records the first hard workload error and stops the run.
func (r *run) fail(err error) {
	e := err
	if r.workErr.CompareAndSwap(nil, &e) {
		r.stop.Store(true)
	}
}

// claim reserves one task to produce in count mode; it returns false when
// the quota is exhausted. In timed mode it always succeeds.
func (r *run) claim() bool {
	if !r.counted {
		return true
	}
	return r.remaining.Add(-1) >= 0
}

// pick maps a task to a worker queue, clamping a scheduler that was built
// for a different worker count (a configuration mismatch) into range rather
// than crashing mid-run.
func (r *run) pick(key uint64) int {
	w := r.p.cfg.Scheduler.Pick(key)
	if w < 0 || w >= len(r.queues) {
		w = ((w % len(r.queues)) + len(r.queues)) % len(r.queues)
	}
	return w
}

// selfProducer is Figure 1a: generate and execute in the same thread.
func (r *run) selfProducer(i int) {
	src := r.p.cfg.NewSource(i)
	th := r.p.cfg.STM.NewThread()
	for !r.stop.Load() {
		if !r.claim() {
			return
		}
		t := src.Next()
		r.produced.Add(1)
		if err := r.p.cfg.Workload.Execute(th, t); err != nil {
			r.fail(err)
			return
		}
		r.completed[i].n.Add(1)
		if r.counted && r.done.Add(-1) == 0 {
			r.stop.Store(true)
			return
		}
	}
}

// parallelProducer is Figure 1c: the producer dispatches inline.
func (r *run) parallelProducer(i int) {
	src := r.p.cfg.NewSource(i)
	for !r.stop.Load() {
		if !r.claim() {
			return
		}
		t := src.Next()
		r.enqueue(r.pick(t.Key), t)
	}
}

// centralProducer feeds the shared inbox (Figure 1b).
func (r *run) centralProducer(i int, inbox queue.Queue[Task]) {
	src := r.p.cfg.NewSource(i)
	for !r.stop.Load() {
		if !r.claim() {
			return
		}
		t := src.Next()
		if r.p.maxDepth > 0 {
			for inbox.Len() >= r.p.maxDepth && !r.stop.Load() {
				runtime.Gosched()
			}
		}
		inbox.Put(t)
		r.produced.Add(1)
	}
}

// dispatcher is the centralized executor thread (Figure 1b).
func (r *run) dispatcher(inbox queue.Queue[Task]) {
	for {
		t, ok := inbox.Get()
		if !ok {
			if r.stop.Load() {
				return
			}
			runtime.Gosched()
			continue
		}
		r.enqueueDirect(r.pick(t.Key), t)
	}
}

// enqueue adds a task to worker w's queue with backpressure, and counts it
// as produced.
func (r *run) enqueue(w int, t Task) {
	if r.p.maxDepth > 0 {
		for r.queues[w].Len() >= r.p.maxDepth && !r.stop.Load() {
			runtime.Gosched()
		}
	}
	r.queues[w].Put(t)
	r.produced.Add(1)
}

// enqueueDirect adds without counting (the central producer already counted
// it at the inbox).
func (r *run) enqueueDirect(w int, t Task) {
	if r.p.maxDepth > 0 {
		for r.queues[w].Len() >= r.p.maxDepth && !r.stop.Load() {
			runtime.Gosched()
		}
	}
	r.queues[w].Put(t)
}

// worker follows the paper's regimen (§4.1): get the next transaction,
// execute it (the workload retries until success), bump the local counter.
// With SortBatch set, the worker drains a batch and executes it in key
// order (§2's buffer-reordering capability).
func (r *run) worker(i int, counted bool) {
	th := r.p.cfg.STM.NewThread()
	w := r.p.cfg.Workload
	var batch []Task
	if r.p.cfg.SortBatch > 1 {
		batch = make([]Task, 0, r.p.cfg.SortBatch)
	}
	for {
		t, ok := r.queues[i].Get()
		if !ok && r.p.cfg.WorkSteal {
			t, ok = r.steal(i)
		}
		if !ok {
			if r.stop.Load() {
				if counted {
					// Other workers may still be filling; only
					// exit once the quota is done or a failure
					// stopped the run.
					if r.done.Load() <= 0 || r.workErr.Load() != nil {
						return
					}
					runtime.Gosched()
					continue
				}
				return
			}
			r.empty.Add(1)
			runtime.Gosched()
			continue
		}
		if batch == nil {
			if !r.execOne(i, th, w, t, counted) {
				return
			}
			continue
		}
		// Batch mode: drain up to SortBatch tasks, order by key.
		batch = append(batch[:0], t)
		for len(batch) < r.p.cfg.SortBatch {
			more, ok := r.queues[i].Get()
			if !ok {
				break
			}
			batch = append(batch, more)
		}
		sort.Slice(batch, func(a, b int) bool { return batch[a].Key < batch[b].Key })
		for _, bt := range batch {
			if !r.execOne(i, th, w, bt, counted) {
				return
			}
		}
	}
}

// execOne executes a single task and updates completion accounting; it
// reports whether the worker should keep running.
func (r *run) execOne(i int, th *stm.Thread, w Workload, t Task, counted bool) bool {
	if err := w.Execute(th, t); err != nil {
		r.fail(err)
		return false
	}
	r.completed[i].n.Add(1)
	if counted && r.done.Add(-1) == 0 {
		r.stop.Store(true)
		return false
	}
	return true
}

// steal takes one task from another worker's queue.
func (r *run) steal(i int) (Task, bool) {
	n := len(r.queues)
	for off := 1; off < n; off++ {
		if t, ok := r.queues[(i+off)%n].Get(); ok {
			r.steals.Add(1)
			return t, true
		}
	}
	return Task{}, false
}
