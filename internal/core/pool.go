package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kstm/internal/queue"
	"kstm/internal/stm"
)

// Model selects the executor architecture of Figure 1.
type Model string

// The three executor models.
const (
	// ModelNoExecutor: each thread generates and synchronously executes
	// its own transactions (Figure 1a). No queuing overhead; no load
	// balancing; parallelism limited to the producer count.
	ModelNoExecutor Model = "noexecutor"
	// ModelCentral: a single executor thread takes tasks from all
	// producers and dispatches to workers (Figure 1b).
	ModelCentral Model = "central"
	// ModelParallel: the executor runs inline in every producer thread
	// (Figure 1c) — the model used for all the paper's measurements.
	ModelParallel Model = "parallel"
)

// Models lists the executor models.
func Models() []Model { return []Model{ModelNoExecutor, ModelCentral, ModelParallel} }

// defaultMaxQueueDepth bounds per-worker queues so that a fast producer
// cannot consume unbounded memory during a timed run; producers spin-yield
// at the bound. The paper's 10-second Java runs relied on producers and
// workers being roughly matched.
const defaultMaxQueueDepth = 8192

// Config describes one executor experiment.
type Config struct {
	// STM is the transactional memory instance shared by the workers.
	STM *stm.STM
	// Workload executes tasks on worker threads.
	Workload Workload
	// NewSource returns producer p's private task stream.
	NewSource func(producer int) TaskSource
	// Workers is the worker-thread count (w in the paper).
	Workers int
	// Producers is the producer-thread count (the paper uses 4, or 8 for
	// the hash table "to prevent worker threads being hungry").
	Producers int
	// Model selects the executor architecture; default ModelParallel.
	Model Model
	// Scheduler maps keys to workers. Required unless Model is
	// ModelNoExecutor.
	Scheduler Scheduler
	// QueueKind selects the task-queue implementation; default mscq.
	QueueKind queue.Kind
	// MaxQueueDepth applies producer backpressure; <0 disables, 0 means
	// the default.
	MaxQueueDepth int
	// WorkSteal lets an idle worker take tasks from other queues — the
	// §2 "load balancing" alternative; off in the paper's experiments.
	WorkSteal bool
	// SortBatch > 1 makes each worker drain up to that many tasks and
	// execute them in ascending key order (§2's buffer-reordering
	// capability). Batching by key improves temporal locality within a
	// worker at the cost of latency.
	SortBatch int
}

// Pool is the closed-world benchmark harness retained from the paper's
// timed-driver shape: producers synthesize tasks internally and Run reports
// aggregate throughput. It is now a thin compatibility wrapper over the
// open Executor engine — each Run builds a fresh Executor, feeds it from
// the configured producers, and reports the same Result as before. New code
// that has its own callers should use NewExecutor and Submit directly.
type Pool struct {
	cfg      Config
	maxDepth int
}

// NewPool validates the configuration.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.STM == nil {
		return nil, fmt.Errorf("core: Config.STM is required")
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("core: Config.Workload is required")
	}
	if cfg.NewSource == nil {
		return nil, fmt.Errorf("core: Config.NewSource is required")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("core: Config.Workers = %d, want > 0", cfg.Workers)
	}
	if cfg.Model == "" {
		cfg.Model = ModelParallel
	}
	switch cfg.Model {
	case ModelNoExecutor:
		// Scheduler and producers are unused; workers self-produce.
	case ModelCentral, ModelParallel:
		if cfg.Producers <= 0 {
			return nil, fmt.Errorf("core: Config.Producers = %d, want > 0", cfg.Producers)
		}
		if cfg.Scheduler == nil {
			return nil, fmt.Errorf("core: Config.Scheduler is required for model %q", cfg.Model)
		}
	default:
		return nil, fmt.Errorf("core: unknown model %q", cfg.Model)
	}
	if cfg.QueueKind == "" {
		cfg.QueueKind = queue.KindMSCQ
	}
	maxDepth := cfg.MaxQueueDepth
	switch {
	case maxDepth < 0:
		maxDepth = 0
	case maxDepth == 0:
		maxDepth = defaultMaxQueueDepth
	}
	return &Pool{cfg: cfg, maxDepth: maxDepth}, nil
}

// Run executes the workload for roughly d — the paper's timed-driver shape:
// start producers and workers, run the window, stop everything, report.
func (p *Pool) Run(d time.Duration) (Result, error) {
	if d <= 0 {
		return Result{}, fmt.Errorf("core: non-positive run duration %v", d)
	}
	return p.execute(d, -1)
}

// RunCount executes exactly n tasks and reports the elapsed time; used by
// deterministic tests and testing.B benchmarks.
func (p *Pool) RunCount(n int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("core: non-positive task count %d", n)
	}
	return p.execute(0, int64(n))
}

// quota tracks counted-mode production and completion budgets.
type quota struct {
	counted   bool
	remaining atomic.Int64 // tasks left to produce
}

// claim reserves one task to produce; it returns false when the budget is
// exhausted. In timed mode it always succeeds.
func (q *quota) claim() bool {
	if !q.counted {
		return true
	}
	return q.remaining.Add(-1) >= 0
}

func (p *Pool) execute(d time.Duration, count int64) (Result, error) {
	if p.cfg.Model == ModelNoExecutor {
		return p.executeNoExecutor(d, count)
	}

	depth := p.maxDepth
	if depth == 0 {
		depth = -1 // Pool semantics: 0 means "bound disabled" post-validation.
	}
	ex, err := NewExecutor(
		WithSTM(p.cfg.STM),
		WithWorkload(p.cfg.Workload),
		WithWorkers(p.cfg.Workers),
		WithScheduler(p.cfg.Scheduler),
		WithQueue(p.cfg.QueueKind),
		WithQueueDepth(depth),
		WithWorkSteal(p.cfg.WorkSteal),
		WithSortBatch(p.cfg.SortBatch),
	)
	if err != nil {
		return Result{}, err
	}

	q := &quota{counted: count > 0}
	if q.counted {
		q.remaining.Store(count)
		// Stop the engine the instant the last task completes so that
		// RunCount's elapsed time measures exactly n tasks.
		var done atomic.Int64
		done.Store(count)
		ex.onDone = func() {
			if done.Add(-1) == 0 {
				ex.markStopped()
			}
		}
	}

	start := time.Now()
	if err := ex.Start(nil); err != nil {
		return Result{}, err
	}
	var producers sync.WaitGroup
	switch p.cfg.Model {
	case ModelParallel:
		for i := 0; i < p.cfg.Producers; i++ {
			producers.Add(1)
			go func(i int) {
				defer producers.Done()
				p.parallelProducer(ex, q, i)
			}(i)
		}
	case ModelCentral:
		inbox, err := queue.New[Task](p.cfg.QueueKind)
		if err != nil {
			ex.halt()
			return Result{}, err
		}
		ev := newInboxEvents()
		for i := 0; i < p.cfg.Producers; i++ {
			producers.Add(1)
			go func(i int) {
				defer producers.Done()
				p.centralProducer(ex, q, i, inbox, ev)
			}(i)
		}
		producers.Add(1)
		go func() {
			defer producers.Done()
			p.dispatcher(ex, inbox, ev)
		}()
	}

	if q.counted {
		// Producers exhaust the budget; completion of the last task (or
		// the first fatal error) flips the engine to stopped. Block on
		// the signal instead of spinning — a busy-wait here would steal
		// a core from the very run being measured.
		<-ex.Stopped()
	} else {
		time.Sleep(d)
	}
	ex.halt()
	producers.Wait()
	elapsed := time.Since(start)

	return p.buildResult(ex, elapsed), ex.Err()
}

// buildResult converts engine counters into the legacy Result shape. The
// Pool always builds shared-mode executors, so shard 0 holds the run's STM
// baseline.
func (p *Pool) buildResult(ex *Executor, elapsed time.Duration) Result {
	perWorker := make([]uint64, len(ex.wstats))
	var empty, steals uint64
	for i := range ex.wstats {
		perWorker[i] = ex.wstats[i].completed.Load()
		empty += ex.wstats[i].empty.Load()
		steals += ex.wstats[i].steals.Load()
	}
	return p.newResult(elapsed, ex.submitted.Load(), empty, steals,
		perWorker, p.cfg.STM.Stats().Sub(ex.shards[0].before))
}

// newResult assembles a Result from run counters; every model funnels
// through it so a new field cannot silently stay zero for one model.
func (p *Pool) newResult(elapsed time.Duration, produced, emptyPolls, steals uint64,
	perWorker []uint64, stmDelta stm.StatsSnapshot) Result {
	res := Result{
		Model:      p.cfg.Model,
		Workers:    p.cfg.Workers,
		Producers:  p.cfg.Producers,
		QueueKind:  p.cfg.QueueKind,
		WorkSteal:  p.cfg.WorkSteal,
		Elapsed:    elapsed,
		Produced:   produced,
		PerWorker:  perWorker,
		EmptyPolls: emptyPolls,
		Steals:     steals,
		STM:        stmDelta,
	}
	if p.cfg.Scheduler != nil {
		res.Scheduler = p.cfg.Scheduler.Name()
	} else {
		res.Scheduler = "none"
	}
	for _, n := range perWorker {
		res.Completed += n
	}
	return res
}

// parallelProducer is Figure 1c: the producer dispatches inline into the
// engine's worker queues.
func (p *Pool) parallelProducer(ex *Executor, q *quota, i int) {
	src := p.cfg.NewSource(i)
	for !ex.stopping() {
		if !q.claim() {
			return
		}
		if !ex.inject(src.Next(), true) {
			return
		}
	}
}

// inboxEvents is the central model's park/wake pair: items wakes the
// dispatcher after a producer Put, space wakes a depth-blocked producer
// after a dispatcher Get. Both are reusable one-token channels (the
// Future.sem discipline) and both waits are level-triggered — the waiter
// re-checks its condition, so a stale token costs one re-check and a
// missed token is re-sent by the other side's next operation. Every Put
// and every Get signals unconditionally: a non-blocking send into a full
// cap-1 channel is free, and it removes any window between the waiter's
// condition check and its block.
type inboxEvents struct {
	items chan struct{}
	space chan struct{}
}

func newInboxEvents() *inboxEvents {
	return &inboxEvents{
		items: make(chan struct{}, 1),
		space: make(chan struct{}, 1),
	}
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// centralProducer feeds the shared inbox (Figure 1b). At the depth bound it
// blocks on the space event instead of spinning: the dispatcher signals
// after every Get, admitting one producer per freed slot; ex.Stopped()
// unblocks everyone at shutdown.
func (p *Pool) centralProducer(ex *Executor, q *quota, i int, inbox queue.Queue[Task], ev *inboxEvents) {
	src := p.cfg.NewSource(i)
	for !ex.stopping() {
		if !q.claim() {
			return
		}
		t := src.Next()
		if p.maxDepth > 0 {
			for inbox.Len() >= p.maxDepth && !ex.stopping() {
				select {
				case <-ev.space:
				case <-ex.Stopped():
				}
			}
		}
		inbox.Put(t)
		ex.submitted.Add(1)
		signal(ev.items)
	}
}

// dispatcher is the centralized executor thread (Figure 1b); the inbox
// already counted these tasks, so inject does not count them again. An
// empty inbox parks on the items event — producers Put before they signal,
// so either this Get observes the task or the signal lands after it.
func (p *Pool) dispatcher(ex *Executor, inbox queue.Queue[Task], ev *inboxEvents) {
	for {
		t, ok := inbox.Get()
		if !ok {
			if ex.stopping() {
				return
			}
			select {
			case <-ev.items:
			case <-ex.Stopped():
			}
			continue
		}
		signal(ev.space)
		if !ex.inject(t, false) {
			return
		}
	}
}

// executeNoExecutor is Figure 1a: each worker generates and synchronously
// executes its own transactions — no queues, no dispatch, no engine.
func (p *Pool) executeNoExecutor(d time.Duration, count int64) (Result, error) {
	q := &quota{counted: count > 0}
	var done atomic.Int64
	var stop atomic.Bool
	var produced atomic.Uint64
	var workErr atomic.Pointer[error]
	if q.counted {
		q.remaining.Store(count)
		done.Store(count)
	}
	completed := make([]paddedCounter, p.cfg.Workers)

	stmBefore := p.cfg.STM.Stats()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p.cfg.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := p.cfg.NewSource(i)
			th := p.cfg.STM.NewThread()
			for !stop.Load() {
				if !q.claim() {
					return
				}
				t := src.Next()
				produced.Add(1)
				if _, err := p.cfg.Workload.Execute(th, t); err != nil {
					e := err
					if workErr.CompareAndSwap(nil, &e) {
						stop.Store(true)
					}
					return
				}
				completed[i].n.Add(1)
				if q.counted && done.Add(-1) == 0 {
					stop.Store(true)
					return
				}
			}
		}(i)
	}
	if q.counted {
		wg.Wait()
	} else {
		time.Sleep(d)
		stop.Store(true)
		wg.Wait()
	}
	elapsed := time.Since(start)

	perWorker := make([]uint64, len(completed))
	for i := range completed {
		perWorker[i] = completed[i].n.Load()
	}
	res := p.newResult(elapsed, produced.Load(), 0, 0, perWorker, p.cfg.STM.Stats().Sub(stmBefore))
	if errp := workErr.Load(); errp != nil {
		return res, *errp
	}
	return res, nil
}

// paddedCounter avoids false sharing between per-worker counters, which
// would otherwise serialize the very cache traffic the executor exists to
// remove.
//
//kstmvet:padalign
type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte
}
