package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"kstm/internal/stm"
)

// deadlineHarness builds a one-worker executor whose key-0 task blocks on
// the returned channel — so anything submitted after it provably sits in
// queue until the channel closes — and counts executions of every other key.
func deadlineHarness(t *testing.T) (ex *Executor, release chan struct{}, executed *atomic.Int64) {
	t.Helper()
	release = make(chan struct{})
	executed = &atomic.Int64{}
	ex, err := NewExecutor(
		WithWorkers(1),
		WithQueueDepth(64),
		WithBackpressure(BackpressureReject),
		WithWorkload(WorkloadFunc(func(_ *stm.Thread, tk Task) (any, error) {
			if tk.Key == 0 {
				<-release
				return nil, nil
			}
			executed.Add(1)
			return nil, nil
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return ex, release, executed
}

// TestQueuedDeadlineShed is the deadline-propagation acceptance test: a task
// whose budget expires while it is queued behind a blocker is shed — it
// settles with ErrDeadlineExpired, its workload NEVER executes, and it
// counts under ExecStats.DeadlineExpired (not Cancelled, not Completed).
func TestQueuedDeadlineShed(t *testing.T) {
	ex, release, executed := deadlineHarness(t)
	ctx := context.Background()

	blockerDone := make(chan TaskResult, 1)
	if err := ex.SubmitFunc(ctx, Task{Key: 0}, func(r TaskResult) { blockerDone <- r }); err != nil {
		t.Fatal(err)
	}
	victimDone := make(chan TaskResult, 1)
	if err := ex.SubmitFuncTimed(ctx, Task{Key: 1}, time.Millisecond, func(r TaskResult) { victimDone <- r }); err != nil {
		t.Fatal(err)
	}
	// Hold the worker well past the victim's 1ms budget, then let it reach
	// the victim: the dequeue-time check must shed it.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if r := <-victimDone; !errors.Is(r.Err, ErrDeadlineExpired) {
		t.Fatalf("victim err = %v, want ErrDeadlineExpired", r.Err)
	}
	if r := <-blockerDone; r.Err != nil {
		t.Fatalf("blocker err = %v", r.Err)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("shed task executed %d times, want 0", n)
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.DeadlineExpired != 1 {
		t.Errorf("DeadlineExpired = %d, want 1", st.DeadlineExpired)
	}
	if st.Cancelled != 0 {
		t.Errorf("Cancelled = %d, want 0 (shed is its own bucket)", st.Cancelled)
	}
	if st.Completed != 1 {
		t.Errorf("Completed = %d, want 1 (the blocker alone)", st.Completed)
	}
}

// TestDeadlineAmpleBudgetExecutes: a budget that outlives the queue wait is
// inert — the task executes and completes normally.
func TestDeadlineAmpleBudgetExecutes(t *testing.T) {
	ex, release, executed := deadlineHarness(t)
	ctx := context.Background()
	close(release) // no blocking this time

	done := make(chan TaskResult, 1)
	if err := ex.SubmitFuncTimed(ctx, Task{Key: 1}, time.Minute, func(r TaskResult) { done <- r }); err != nil {
		t.Fatal(err)
	}
	if r := <-done; r.Err != nil {
		t.Fatalf("err = %v", r.Err)
	}
	if n := executed.Load(); n != 1 {
		t.Fatalf("executed %d times, want 1", n)
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := ex.Stats(); st.DeadlineExpired != 0 || st.Completed != 1 {
		t.Errorf("DeadlineExpired = %d, Completed = %d; want 0, 1", st.DeadlineExpired, st.Completed)
	}
}

// TestDeadlineZeroBudgetIsSubmitFunc: budget 0 means "no deadline", byte-for-
// byte the SubmitFunc path — the v1 wire back-compat contract depends on it.
func TestDeadlineZeroBudgetIsSubmitFunc(t *testing.T) {
	ex, release, executed := deadlineHarness(t)
	ctx := context.Background()

	blockerDone := make(chan TaskResult, 1)
	if err := ex.SubmitFunc(ctx, Task{Key: 0}, func(r TaskResult) { blockerDone <- r }); err != nil {
		t.Fatal(err)
	}
	done := make(chan TaskResult, 1)
	if err := ex.SubmitFuncTimed(ctx, Task{Key: 1}, 0, func(r TaskResult) { done <- r }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // would shed any positive budget
	close(release)
	<-blockerDone
	if r := <-done; r.Err != nil {
		t.Fatalf("err = %v", r.Err)
	}
	if n := executed.Load(); n != 1 {
		t.Fatalf("executed %d times, want 1", n)
	}
	if err := ex.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := ex.Stats(); st.DeadlineExpired != 0 {
		t.Errorf("DeadlineExpired = %d, want 0", st.DeadlineExpired)
	}
}
